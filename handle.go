package repro

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/eval"
	"repro/internal/instance"
	"repro/internal/intern"
	"repro/internal/obs"
	"repro/internal/plan"
	"repro/internal/wal"
)

// Handle is the unified serving interface over one live database, whether
// it is held in a single instance (the default) or hash-partitioned
// across shards (Open with WithShards). Both engines serve the same
// contract:
//
//   - Execute answers a plan against the CURRENT epoch: the latest
//     published immutable version of the prepared views, fetch indices
//     and statistics. Readers never take a maintenance-scoped lock — the
//     only synchronization they share with a writer is the value
//     dictionary's per-operation mutex (O(1) hold per interned value) —
//     so an overlapping ApplyDelta is invisible until its epoch is
//     published atomically and reads are never torn (on the sharded
//     engine the epoch is cross-shard consistent).
//   - Snapshot pins the current epoch: every read through the snapshot
//     sees exactly that version, no matter how many deltas land after.
//   - ApplyDelta installs the next epoch. Writers serialize among
//     themselves; they never wait for readers.
//
// Epoch lifetime and memory: consecutive epochs share all untouched
// structure (copy-on-write at the patched-structure granularity), so an
// epoch's marginal footprint tracks its batch's delta. Epoch death is
// explicit, not aspirational: the handle keeps the last n published
// epochs (WithRetainEpochs, default 1 — just the current one) in a
// retention ring addressable through At, and every Snapshot holds a
// refcount on its epoch, released by Snapshot.Close or — best-effort —
// by a GC finalizer backstop when a snapshot is dropped unclosed. An
// epoch is reclaimable once it has left the ring and no snapshot pins
// it; its unshared structures become garbage, and the writer reacts to
// such deaths by compacting copy-on-write storage whose live fraction
// fell below the thresholds in lifecycle.go (Lifecycle reports the
// counters; the README's "Memory & retention" section has the full
// story). Holding a Snapshot retains its epoch's versions (not the whole
// history) for as long as the snapshot lives — or until Close releases
// it. Handle.Close fences writers and releases the maintenance
// machinery; snapshots already taken keep working.
//
// Handle is implemented by *Live and *LiveSharded only (the interface is
// sealed by an unexported method).
type Handle interface {
	// Execute runs a plan against the current epoch, returning the answer
	// rows and the number of tuples this call fetched from the underlying
	// database (|Dξ|). Per-call attribution is exact even under
	// concurrent readers and writers.
	Execute(p Plan) ([][]string, int, error)
	// ApplyDelta applies a batch of mutations (deletes first, then
	// inserts; each delete removes one occurrence and is a no-op when
	// absent) and publishes the next epoch.
	ApplyDelta(inserts, deletes []Op) (DeltaStats, error)
	// Snapshot pins the current epoch for isolated, repeatable reads.
	// Close the snapshot when done: it releases the epoch's refcount so
	// superseded epochs can be reclaimed (a GC finalizer backstops
	// forgotten Closes, best-effort).
	Snapshot() *Snapshot
	// At returns a snapshot pinned to a RETAINED epoch by sequence
	// number: the retention ring (WithRetainEpochs) keeps the last n
	// published epochs addressable for point-in-time reads. Requests
	// outside the ring fail with an error wrapping ErrEpochRetired.
	At(seq uint64) (*Snapshot, error)
	// Lifecycle reports the handle's epoch-retention and compaction
	// counters.
	Lifecycle() LifecycleStats
	// Views returns a decoded copy of the current epoch's view extents.
	Views() map[string][][]string
	// Stats returns the current cost-model statistics and their version.
	// The Stats value is immutable once published; treat it as read-only.
	Stats() (*plan.Stats, uint64)
	// Size returns |D| as of the current epoch.
	Size() int
	// FetchedTuples returns the handle-lifetime count of tuples fetched
	// from the database across all calls and snapshots.
	FetchedTuples() int
	// Metrics returns a point-in-time snapshot of the handle's metrics:
	// counters, gauges (sampled from the authoritative engine state at
	// call time) and latency histograms with p50/p99. Empty when the
	// handle was opened WithoutMetrics. See the README's "Observability"
	// section for the metric catalog.
	Metrics() Metrics
	// SlowQueries returns the retained slow-query traces, newest first
	// (nil unless WithSlowQueryThreshold armed the log).
	SlowQueries() []QueryTrace
	// Close fences writers: later ApplyDelta calls fail, reads keep
	// serving the final epoch, and the writer-side maintenance machinery
	// is released. Close is idempotent — the second and later calls are
	// no-ops returning nil.
	Close() error

	handleID() uint64

	// metricsCore exposes the live metrics core (nil when disabled) to
	// the prepared-query layer and the debug exporter. Sealing method.
	metricsCore() *obs.Core

	// executeObserved is Execute plus the run's execution profile — the
	// observation the closed-loop plan selection feeds on (see
	// PreparedQuery.Execute). tc carries the prepared-query identity for
	// slow-query tracing (nil for ad-hoc runs). Sealing method:
	// implemented by *Live and *LiveSharded.
	executeObserved(p Plan, tc *traceCtx) ([][]string, int, *plan.Observation, error)
}

// ErrClosed is returned by ApplyDelta on a closed handle.
var ErrClosed = fmt.Errorf("repro: handle is closed")

// Statistics drift defaults: rebuild when the physical ops since the last
// build exceed the drift fraction of the current |D| (and at least the
// minimum churn, so tiny instances don't rebuild per batch).
const (
	defaultStatsDrift    = 0.2
	defaultStatsMinChurn = 256
)

// defaultCheckpointEvery is the periodic-checkpoint interval (in applied
// batches) when WithDurability is given without WithCheckpointEvery.
const defaultCheckpointEvery = 256

// openConfig collects Open's functional options.
type openConfig struct {
	shards        int
	statsDrift    float64
	statsMinChurn int
	retainEpochs  int
	durDir        string
	ckptEvery     int
	groupCommit   time.Duration
	slowQuery     time.Duration
	noMetrics     bool
}

// OpenOption configures Open.
type OpenOption func(*openConfig)

// WithShards hash-partitions the database into p shards (p >= 1): batched
// deltas are routed per shard and maintained concurrently, and fetches
// whose constraint binds the partition key become single-shard point
// reads. WithShards(1) is the degenerate partition, useful as a scaling
// baseline. Without this option the single-instance engine serves.
func WithShards(p int) OpenOption { return func(c *openConfig) { c.shards = p } }

// WithStatsDrift sets the churn fraction of |D| past which the cost-model
// statistics are rebuilt (default 0.2).
func WithStatsDrift(frac float64) OpenOption {
	return func(c *openConfig) { c.statsDrift = frac }
}

// WithStatsMinChurn sets the minimum physical ops before a statistics
// rebuild is considered (default 256).
func WithStatsMinChurn(n int) OpenOption {
	return func(c *openConfig) { c.statsMinChurn = n }
}

// WithRetainEpochs bounds the handle's retention ring: the last n
// published epochs (including the current one) stay addressable for
// point-in-time reads through Handle.At. n <= 1 (the default) retains
// only the current epoch. Retention is a memory bound, not a history
// log: each retained epoch pins its versions of the fetch indices and
// view extents — shared copy-on-write with its neighbours, so the
// marginal cost per retained epoch tracks the batch deltas between them.
// Epochs evicted from the ring are reclaimed as soon as no Snapshot pins
// them.
func WithRetainEpochs(n int) OpenOption {
	return func(c *openConfig) { c.retainEpochs = n }
}

// WithDurability makes the handle durable: every accepted ApplyDelta batch
// is journaled to a write-ahead log in dir before its epoch is published,
// and checkpoints periodically fold the log into a serialized epoch so a
// restart is "load latest checkpoint + replay the log suffix".
//
// Opening an EMPTY dir seeds it: the opening epoch is checkpointed and the
// given database becomes the durable state. Opening a dir that already
// holds durable state RECOVERS it — the database argument must then be a
// fresh empty one (the recovered rows replace it); a schema or view-set
// mismatch with the writer of the directory is an error. See the Recovery
// method on Live and LiveSharded for what a recovery replayed.
//
// If a journal or checkpoint write ever fails the handle is fenced exactly
// like Close: later ApplyDelta calls fail, reads keep serving the last
// published epoch.
func WithDurability(dir string) OpenOption {
	return func(c *openConfig) { c.durDir = dir }
}

// WithCheckpointEvery sets the periodic-checkpoint interval: a checkpoint
// is written after every n applied batches (default 256). n <= 0 disables
// periodic checkpoints — only the opening checkpoint and the final one on
// Close are written, so recovery replays the whole log. Only meaningful
// with WithDurability.
func WithCheckpointEvery(n int) OpenOption {
	return func(c *openConfig) { c.ckptEvery = n }
}

// WithGroupCommit sets the fsync batching window of the write-ahead log.
// Zero (the default) fsyncs inline on every ApplyDelta — each acked batch
// is durable. A positive window acks after the buffered write and fsyncs
// at most once per window: a crash may lose up to the last window of acked
// batches, but recovery still lands on a consistent epoch prefix (never a
// torn batch). Only meaningful with WithDurability.
func WithGroupCommit(d time.Duration) OpenOption {
	return func(c *openConfig) { c.groupCommit = d }
}

// WithSlowQueryThreshold arms the handle's slow-query log: any plan
// execution slower than d is traced — query key, plan, candidate index,
// epoch sequence, per-constraint probe/row counts, join cardinalities
// and timings — into a ring of the most recent traces, readable through
// Handle.SlowQueries and the debug exporter. The fast path pays one
// duration comparison; the trace itself is only built for executions
// over the threshold. d <= 0 (the default) disables slow logging.
func WithSlowQueryThreshold(d time.Duration) OpenOption {
	return func(c *openConfig) { c.slowQuery = d }
}

// WithoutMetrics opens the handle with the observability core disabled:
// Metrics returns an empty snapshot, no latency is recorded and the
// slow-query log is off. The instrumented path is allocation-free and
// costs a few percent at most (the `benchrun -exp obs` gate bounds it
// at 5% on epoch-reader throughput), so this is mainly the baseline for
// that measurement — production handles should keep metrics on.
func WithoutMetrics() OpenOption {
	return func(c *openConfig) { c.noMetrics = true }
}

// newCoreFor builds the handle's metrics core per the open options
// (nil when disabled — every recording site is nil-safe).
func newCoreFor(cfg openConfig, shards int) *obs.Core {
	if cfg.noMetrics {
		return nil
	}
	met := obs.NewCore(shards)
	met.SetSlowThreshold(cfg.slowQuery)
	return met
}

// Open builds a serving handle over db: fetch indices for the system's
// access schema, incremental maintenance for its views, cost-model
// statistics, and the epoch machinery for lock-free snapshot reads. The
// database must not be used directly afterwards — route all reads and
// writes through the handle (with WithShards the database is consumed:
// its rows move into the partitions).
func (sys *System) Open(db *Database, opts ...OpenOption) (Handle, error) {
	cfg := openConfig{
		statsDrift:    defaultStatsDrift,
		statsMinChurn: defaultStatsMinChurn,
		ckptEvery:     defaultCheckpointEvery,
	}
	for _, o := range opts {
		o(&cfg)
	}
	if cfg.durDir != "" {
		if cfg.shards > 0 {
			return sys.openShardedDurable(db, cfg)
		}
		return sys.openLiveDurable(db, cfg)
	}
	if cfg.shards > 0 {
		return sys.openSharded(db, cfg)
	}
	return sys.openLive(db, cfg)
}

// liveIDs hands every handle a process-unique identity, so prepared
// queries can remember which handle they last selected a plan for without
// retaining the handle (and its database) itself.
var liveIDs atomic.Uint64

// epochState is one published epoch: every structure a reader touches,
// immutable once stored in the handle's atomic pointer. The lifecycle
// fields at the bottom are the only mutable ones — advisory refcounting
// that informs compaction and never gates reads (immutability plus the
// garbage collector keep pinned structures valid without it).
type epochState struct {
	seq      uint64
	src      plan.Source // accounting-free fetch source pinned to this epoch
	pv       *plan.PreparedViews
	dict     *intern.Dict
	viewIDs  func() map[string][][]uint32 // interned extents (lazy on sharded epochs)
	stats    *plan.Stats
	statsVer uint64
	size     int

	refs    atomic.Int64 // pins: retention ring + open snapshots
	retired atomic.Bool  // evicted from the ring (no longer current)
	lc      *lifecycle
}

// countedSource wraps an epoch's fetch source with exact accounting: one
// counter per attribution level (call, snapshot, handle). Counters are
// atomic because independent plan subtrees fetch concurrently.
type countedSource struct {
	src      plan.Source
	counters [3]*atomic.Int64
}

func (c *countedSource) Dict() *intern.Dict { return c.src.Dict() }

func (c *countedSource) FetchIDs(con *Constraint, xval []uint32) ([][]uint32, error) {
	rows, err := c.src.FetchIDs(con, xval)
	if err == nil {
		n := int64(len(rows))
		for _, ctr := range c.counters {
			if ctr != nil {
				ctr.Add(n)
			}
		}
	}
	return rows, err
}

// traceCtx carries the prepared-query identity of an execution into the
// sealed observed-execution path, so slow-query traces can name the
// query and frontier candidate that ran. nil for ad-hoc plan runs.
type traceCtx struct {
	key       string // canonical query key
	candidate int    // index in the prepared frontier
	explore   bool   // exploration probe of a non-incumbent
}

// recordExec folds one observed execution into the metrics core and,
// when it ran over the armed threshold, the slow-query log. The trace —
// including the rendered plan — is built only on the slow path; the
// fast path pays the latency histogram update and one comparison.
func recordExec(met *obs.Core, seq uint64, p Plan, tc *traceCtx, start time.Time, fetched, rows int, ob *plan.Observation) {
	if met == nil {
		return
	}
	d := time.Since(start)
	met.RecordQuery(d)
	if !met.SlowEnabled() || d < met.SlowThreshold {
		return
	}
	t := obs.Trace{
		Start: start, Plan: plan.Render(p), Candidate: -1,
		EpochSeq: seq, Duration: d, Fetched: fetched, Rows: rows,
	}
	if tc != nil {
		t.QueryKey, t.Candidate, t.Explore = tc.key, tc.candidate, tc.explore
	}
	if ob != nil {
		t.JoinIn, t.JoinOut = ob.JoinIn, ob.JoinOut
		keys := make([]string, 0, len(ob.Groups))
		for k := range ob.Groups {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			g := ob.Groups[k]
			t.Groups = append(t.Groups, obs.GroupTrace{Key: k, Probes: g.Probes, Rows: g.Rows})
		}
	}
	met.MaybeSlow(t)
}

// Snapshot is an epoch-pinned, immutable view of a handle's state: every
// read through it — Execute, Views, Fetch, Size — answers against exactly
// the epoch that was current when it was taken, no matter how many deltas
// are applied afterwards, and never blocks on (or is blocked by) writers.
//
// A snapshot retains its epoch's structures; Close it when done so
// superseded epochs can be reclaimed promptly (a GC finalizer backstops
// forgotten Closes, best-effort). Snapshots are safe for concurrent use
// but must not be copied: a *Snapshot is a live pin holding internal
// counters, so share the pointer and Close it exactly once.
type Snapshot struct {
	hid      uint64
	e        *epochState
	fetched  atomic.Int64 // tuples fetched through this snapshot
	hfetched *atomic.Int64

	lc     *lifecycle  // nil on transient internal snapshots (never pinned)
	closed atomic.Bool // Close/finalizer ran; the epoch pin is released
}

// Epoch returns the pinned epoch's sequence number (0 for the state the
// handle was opened with, +1 per applied batch).
func (s *Snapshot) Epoch() uint64 { return s.e.seq }

// Size returns |D| as of the pinned epoch.
func (s *Snapshot) Size() int { return s.e.size }

// Stats returns the pinned epoch's cost-model statistics and version.
func (s *Snapshot) Stats() (*plan.Stats, uint64) { return s.e.stats, s.e.statsVer }

// FetchedTuples returns the tuples fetched through THIS snapshot so far —
// the read-only fetch-accounting accessor that replaces reaching into the
// handle's mutable index. Attribution is exact: concurrent readers on
// other snapshots (or the handle) never inflate it.
func (s *Snapshot) FetchedTuples() int { return int(s.fetched.Load()) }

// met returns the owning handle's metrics core: nil on transient
// internal snapshots and on metrics-disabled handles, which every
// recording site tolerates.
func (s *Snapshot) met() *obs.Core {
	if s.lc == nil {
		return nil
	}
	return s.lc.met
}

// Execute runs a plan against the pinned epoch, returning the answer rows
// and the tuples fetched from the database by this call (exact per-call
// attribution, also under concurrent use).
func (s *Snapshot) Execute(p Plan) ([][]string, int, error) {
	m := s.met()
	if m.SlowEnabled() {
		// Slow logging needs the execution profile for the trace's
		// per-constraint breakdown: upgrade to the observed path (its
		// extra allocation is the documented cost of arming the log).
		rows, n, _, err := s.executeObserved(p, nil)
		return rows, n, err
	}
	var t0 time.Time
	if m != nil {
		t0 = time.Now()
	}
	var call atomic.Int64
	src := &countedSource{src: s.e.src, counters: [3]*atomic.Int64{&call, &s.fetched, s.hfetched}}
	rows, err := plan.RunOn(p, src, s.e.pv)
	if err != nil {
		return nil, 0, err
	}
	if m != nil {
		m.RecordQuery(time.Since(t0))
	}
	return rows, int(call.Load()), nil
}

// executeObserved is Execute plus the run's execution profile, for the
// closed-loop selection in PreparedQuery.ExecuteOn. Observation wraps the
// same epoch source the counters do, so on sharded snapshots the profile
// reflects the cross-shard-deduplicated fetches exactly like the fetch
// accounting.
func (s *Snapshot) executeObserved(p Plan, tc *traceCtx) ([][]string, int, *plan.Observation, error) {
	t0 := time.Now()
	var call atomic.Int64
	src := &countedSource{src: s.e.src, counters: [3]*atomic.Int64{&call, &s.fetched, s.hfetched}}
	rows, ob, err := plan.RunObserved(p, src, s.e.pv)
	if err != nil {
		return nil, 0, nil, err
	}
	recordExec(s.met(), s.e.seq, p, tc, t0, int(call.Load()), len(rows), ob)
	return rows, int(call.Load()), ob, nil
}

// Views returns a decoded copy of the pinned epoch's view extents. The
// returned map and rows are owned by the caller.
func (s *Snapshot) Views() map[string][][]string {
	ids := s.e.viewIDs()
	out := make(map[string][][]string, len(ids))
	for name, rows := range ids {
		out[name] = s.e.dict.DecodeAll(rows)
		if out[name] == nil {
			out[name] = [][]string{}
		}
	}
	return out
}

// Fetch performs fetch(X = xval, R, Y) for constraint c against the
// pinned epoch, decoding the distinct XY-projections. Fetched tuples are
// accounted to the snapshot and the handle.
func (s *Snapshot) Fetch(c *Constraint, xval Tuple) ([]Tuple, error) {
	if len(xval) != len(c.X) {
		return nil, fmt.Errorf("repro: fetch on %s expects %d input values, got %d", c, len(c.X), len(xval))
	}
	key := make([]uint32, len(xval))
	for i, v := range xval {
		id, ok := s.e.dict.Lookup(v)
		if !ok {
			return nil, nil // value never interned: no row can match
		}
		key[i] = id
	}
	src := &countedSource{src: s.e.src, counters: [3]*atomic.Int64{&s.fetched, s.hfetched, nil}}
	idRows, err := src.FetchIDs(c, key)
	if err != nil {
		return nil, err
	}
	rows := make([]Tuple, len(idRows))
	for i, r := range idRows {
		rows[i] = Tuple(s.e.dict.Decode(r))
	}
	return rows, nil
}

// DeltaStats summarizes one applied batch. It is a plain value — safe
// to copy, retains no reference to engine state.
type DeltaStats struct {
	Inserted       int  // tuples physically inserted
	Deleted        int  // tuples physically removed (absent deletes are no-ops)
	ViewsChanged   int  // views whose extents changed in the new epoch
	StatsRefreshed bool // churn drift passed the threshold: statistics rebuilt

	// MaxExclusive is the longest contiguous single-structure maintenance
	// window of the batch: the whole maintenance for the single-instance
	// engine, the slowest shard's slice for the sharded one. Under epoch
	// reads it no longer blocks anyone — readers stay on the previous
	// epoch — but it still bounds the batch's publication lag, which is
	// what the sharded scaling experiment tracks.
	MaxExclusive time.Duration
}

// Live is the single-instance serving handle: the fetch indices, the
// counting-based view maintenance engine and the interned plan inputs are
// kept incrementally consistent as batched deltas arrive, and every batch
// publishes a new immutable epoch. Readers (Execute/Views/Size/Snapshot)
// load the current epoch from an atomic pointer and never take a lock;
// writers (ApplyDelta) serialize among themselves only.
type Live struct {
	sys *System
	id  uint64
	cfg openConfig

	mu         sync.Mutex // serializes writers; readers never take it
	closed     bool       // writers fenced (Close, or a torn/journal failure)
	sealed     bool       // Close ran; teardown done, later Closes are no-ops
	db         *Database
	eng        *eval.DeltaEngine
	vix        *instance.VIndex
	statsChurn int // physical ops applied since stats was built
	statsVer   uint64
	seq        uint64

	lc    *lifecycle
	repub []string // views repacked by compaction, to re-publish next epoch

	// Durability (nil wal on non-durable handles). Each accepted batch is
	// journaled BEFORE its epoch is published; sinceCkpt batches after the
	// last checkpoint trigger the next one (when ckptEvery > 0).
	wal       *wal.Log
	ckptEvery int
	sinceCkpt int
	recovery  RecoveryInfo

	cur     atomic.Pointer[epochState]
	fetched atomic.Int64 // handle-lifetime fetched tuples
	met     *obs.Core    // nil when opened WithoutMetrics
}

func (sys *System) openLive(db *Database, cfg openConfig) (*Live, error) {
	eng, err := eval.NewDeltaEngine(db, sys.Views)
	if err != nil {
		return nil, err
	}
	vix, err := instance.BuildVIndex(db, sys.Access)
	if err != nil {
		return nil, err
	}
	met := newCoreFor(cfg, 0)
	l := &Live{sys: sys, id: liveIDs.Add(1), cfg: cfg, db: db, eng: eng, vix: vix,
		lc: newLifecycle(cfg.retainEpochs, met), met: met}
	l.registerGauges()
	views := make(map[string][][]uint32, len(sys.Views))
	for name := range sys.Views {
		views[name] = eng.PublishExtentIDs(name)
	}
	l.publishLocked(views, l.collectStatsLocked())
	return l, nil
}

// registerGauges installs the handle-state function gauges: they read
// the authoritative counters at snapshot time, so e.g. the exported
// fetched-tuples value can never drift from FetchedTuples().
func (l *Live) registerGauges() {
	if l.met == nil {
		return
	}
	l.met.Reg.GaugeFunc("repro_fetched_tuples_total",
		"handle-lifetime tuples fetched from the database (== FetchedTuples)",
		func() int64 { return l.fetched.Load() })
	l.met.Reg.GaugeFunc("repro_epoch_seq", "current epoch sequence number",
		func() int64 { return int64(l.cur.Load().seq) })
	l.met.Reg.GaugeFunc("repro_db_size", "|D| as of the current epoch",
		func() int64 { return int64(l.cur.Load().size) })
}

// walMetrics extracts the WAL instrument bundle from a core (nil when
// metrics are disabled — the log then records nothing).
func walMetrics(met *obs.Core) *obs.WALMetrics {
	if met == nil {
		return nil
	}
	return &met.WAL
}

// collectStatsLocked builds fresh cost-model statistics from the interned
// table shadows and the live view extents. Callers hold the write lock
// (or have exclusive access, as in openLive).
func (l *Live) collectStatsLocked() *plan.Stats {
	rs := instance.CollectStats(l.db)
	st := &plan.Stats{
		RelRows:      rs.Rows,
		RelDistinct:  make(map[string]map[string]int, len(rs.Rows)),
		ViewRows:     make(map[string]int),
		ViewDistinct: make(map[string][]int),
	}
	for name, counts := range rs.Distinct {
		rel := l.sys.Schema.Relation(name)
		if rel == nil {
			continue
		}
		byAttr := make(map[string]int, len(counts))
		for i, a := range rel.Attrs {
			if i < len(counts) {
				byAttr[a] = counts[i]
			}
		}
		st.RelDistinct[name] = byAttr
	}
	for name, rows := range l.eng.ExtentsIDs() {
		st.ViewRows[name] = len(rows)
		st.ViewDistinct[name] = intern.DistinctCols(rows)
	}
	l.statsVer++
	l.statsChurn = 0
	return st
}

// publishLocked installs the next epoch. stats == nil carries the
// previous epoch's statistics forward.
func (l *Live) publishLocked(views map[string][][]uint32, stats *plan.Stats) {
	prev := l.cur.Load()
	if stats == nil {
		stats = prev.stats
	}
	e := &epochState{
		seq:      l.seq,
		src:      l.vix,
		pv:       plan.NewPreparedViews(l.db.Dict, views),
		dict:     l.db.Dict,
		viewIDs:  func() map[string][][]uint32 { return views },
		stats:    stats,
		statsVer: l.statsVer,
		size:     l.db.Size(),
	}
	l.seq++
	// Ring first, pointer second: an epoch is addressable through At by
	// the time Snapshot can observe it as current.
	l.lc.push(e)
	l.cur.Store(e)
	if l.met != nil {
		l.met.EpochPublishes.Add(1)
	}
}

func (l *Live) handleID() uint64 { return l.id }

// ApplyDelta applies a batch of mutations (deletes first, then inserts)
// and publishes a new epoch with the incrementally maintained row
// shadows, fetch indices, counted view extents and prepared plan inputs.
// Per-batch cost depends on the data the delta's residual joins touch,
// not on |D|. Readers are never blocked: they stay on the previous epoch
// until the new one is published atomically.
func (l *Live) ApplyDelta(inserts, deletes []Op) (DeltaStats, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return DeltaStats{}, ErrClosed
	}
	t0 := time.Now()
	a, err := l.db.ApplyDelta(inserts, deletes)
	if err != nil {
		// The database validates the WHOLE batch before mutating anything,
		// so this failure leaves the handle consistent and open.
		return DeltaStats{}, err
	}
	vix, err := l.vix.Apply(a)
	if err != nil {
		// The database already mutated: db, fetch indices and maintenance
		// engine no longer describe one state. Fence exactly like the
		// journal-failure path — reads keep serving the last published
		// epoch, later writes fail.
		l.closed = true
		return DeltaStats{}, fmt.Errorf("repro: partial apply, handle fenced: %w", err)
	}
	l.vix = vix
	changed, err := l.eng.Apply(a)
	if err != nil {
		l.closed = true
		return DeltaStats{}, fmt.Errorf("repro: partial apply, handle fenced: %w", err)
	}
	prev := l.cur.Load().viewIDs()
	views := make(map[string][][]uint32, len(prev))
	for name, rows := range prev {
		views[name] = rows
	}
	for _, name := range changed {
		views[name] = l.eng.PublishExtentIDs(name)
	}
	// Views the last compaction repacked re-publish here even when their
	// contents did not change: an epoch header pins its WHOLE backing
	// array, so only a fresh header moves later epochs onto the compact
	// one.
	for _, name := range l.repub {
		views[name] = l.eng.PublishExtentIDs(name)
	}
	l.repub = nil
	st := DeltaStats{Inserted: len(a.Inserted), Deleted: len(a.Deleted), ViewsChanged: len(changed)}
	// The drift decision is COMPUTED before the journal append but ACTED ON
	// only after it succeeds: a journal failure must fence the handle with
	// the stats trajectory (version, churn counter) untouched, or a later
	// checkpoint could disagree with the last durable epoch. The decision
	// itself is a pure read, so recovery — which replays with the wal
	// detached — reproduces it identically.
	batch := st.Inserted + st.Deleted
	needStats := float64(l.statsChurn+batch) >= l.cfg.statsDrift*float64(l.db.Size()) &&
		l.statsChurn+batch >= l.cfg.statsMinChurn
	// Journal before publication: an epoch is never visible to readers
	// unless its batch reached the log. EVERY accepted batch journals, even
	// an all-no-op one — the epoch number advances unconditionally and
	// replay must reproduce the exact numbering. A journal failure fences
	// the handle (reads keep serving the last published epoch).
	if l.wal != nil {
		if err := l.wal.Append(l.db.Dict, l.seq, a); err != nil {
			l.closed = true
			return DeltaStats{}, fmt.Errorf("repro: journal: %w", err)
		}
	}
	l.statsChurn += batch
	var stats *plan.Stats
	if needStats {
		stats = l.collectStatsLocked()
		st.StatsRefreshed = true
	}
	l.publishLocked(views, stats)
	l.maybeCompactLocked()
	if l.wal != nil {
		l.sinceCkpt++
		if l.ckptEvery > 0 && l.sinceCkpt >= l.ckptEvery {
			if err := l.checkpointLocked(); err != nil {
				// The batch itself is durable and published; only the fold
				// failed. Fence so no later batch outruns a broken log.
				l.closed = true
				return DeltaStats{}, fmt.Errorf("repro: checkpoint: %w", err)
			}
		}
	}
	st.MaxExclusive = time.Since(t0)
	l.met.RecordApply(st.MaxExclusive, batch)
	return st, nil
}

// maybeCompactLocked runs one compaction scan when at least one retired
// epoch died (last pin dropped) since the previous scan. Extent repacking
// copies only arrays whose live fraction fell below extentCompactFrac;
// the repacked views are queued on l.repub so the NEXT publish pins fresh
// headers (a published header keeps its whole old backing array alive).
// The fetch-index repack is coarser (it walks the whole trie), so it runs
// every vindexCompactEvery scans. Callers hold l.mu.
func (l *Live) maybeCompactLocked() {
	if l.lc.dead.Swap(0) == 0 {
		return
	}
	l.lc.passes.Add(1)
	if names := l.eng.CompactExtents(extentCompactMinCap, extentCompactFrac); len(names) > 0 {
		l.repub = append(l.repub, names...)
		l.lc.extents.Add(int64(len(names)))
	}
	l.lc.scans++
	if l.lc.scans >= vindexCompactEvery {
		l.lc.scans = 0
		vix, n := l.vix.Compact()
		l.vix = vix
		if n > 0 {
			l.lc.groups.Add(int64(n))
		}
	}
}

// checkpointLocked serializes the CURRENT epoch into the log: the tables'
// ID shadows (in schema order), the engine's counted view extents, and the
// cost-model statistics with their drift state. Callers hold l.mu.
func (l *Live) checkpointLocked() error {
	ck := &wal.Checkpoint{
		Seq:        l.seq - 1,
		StatsVer:   l.statsVer,
		StatsChurn: l.statsChurn,
		Stats:      l.cur.Load().stats,
	}
	for _, rel := range l.sys.Schema.Relations {
		ck.Tables = append(ck.Tables, wal.TableRows{Rel: rel.Name, Rows: l.db.Table(rel.Name).IDRows()})
	}
	for name, ext := range l.eng.CheckpointExtents() {
		ck.Views = append(ck.Views, wal.ViewExtent{Name: name, Rows: ext.Rows, Counts: ext.Counts})
	}
	if err := l.wal.WriteCheckpoint(l.db.Dict, ck); err != nil {
		return err
	}
	l.sinceCkpt = 0
	return nil
}

// Recovery reports what opening this handle's durable directory replayed.
// The zero value means the handle was opened fresh (or is not durable).
func (l *Live) Recovery() RecoveryInfo { return l.recovery }

// Snapshot pins the current epoch. See the type's documentation.
func (l *Live) Snapshot() *Snapshot {
	return l.lc.snapshotCur(l.id, l.cur.Load(), &l.fetched)
}

// At returns a snapshot pinned to a retained epoch by sequence number.
// See Handle.At.
func (l *Live) At(seq uint64) (*Snapshot, error) {
	return l.lc.snapshotAt(l.id, seq, &l.fetched)
}

// Lifecycle reports the handle's epoch-retention and compaction counters.
func (l *Live) Lifecycle() LifecycleStats { return l.lc.stats() }

// Execute runs a plan against the current epoch's views and indices,
// returning the answer rows and the tuples fetched from D by this call
// (exact attribution, also under concurrent readers and writers).
func (l *Live) Execute(p Plan) ([][]string, int, error) {
	if l.met.SlowEnabled() {
		// Slow logging needs the execution profile for the trace's
		// per-constraint breakdown: upgrade to the observed path (its
		// extra allocation is the documented cost of arming the log).
		rows, n, _, err := l.executeObserved(p, nil)
		return rows, n, err
	}
	var t0 time.Time
	if l.met != nil {
		t0 = time.Now()
	}
	e := l.cur.Load()
	var call atomic.Int64
	src := &countedSource{src: e.src, counters: [3]*atomic.Int64{&call, &l.fetched, nil}}
	rows, err := plan.RunOn(p, src, e.pv)
	if err != nil {
		return nil, 0, err
	}
	if l.met != nil {
		l.met.RecordQuery(time.Since(t0))
	}
	return rows, int(call.Load()), nil
}

// executeObserved is Execute plus the run's execution profile, for the
// closed-loop selection in PreparedQuery.Execute.
func (l *Live) executeObserved(p Plan, tc *traceCtx) ([][]string, int, *plan.Observation, error) {
	t0 := time.Now()
	e := l.cur.Load()
	var call atomic.Int64
	src := &countedSource{src: e.src, counters: [3]*atomic.Int64{&call, &l.fetched, nil}}
	rows, ob, err := plan.RunObserved(p, src, e.pv)
	if err != nil {
		return nil, 0, nil, err
	}
	recordExec(l.met, e.seq, p, tc, t0, int(call.Load()), len(rows), ob)
	return rows, int(call.Load()), ob, nil
}

// Metrics returns a point-in-time snapshot of the handle's metrics.
func (l *Live) Metrics() Metrics { return l.met.Snapshot() }

// SlowQueries returns the retained slow-query traces, newest first (nil
// unless WithSlowQueryThreshold armed the log).
func (l *Live) SlowQueries() []QueryTrace {
	if l.met == nil {
		return nil
	}
	return l.met.Slow.Snapshot()
}

func (l *Live) metricsCore() *obs.Core { return l.met }

// Views returns a decoded copy of the current epoch's view extents. The
// returned map and rows are fresh copies owned by the caller.
func (l *Live) Views() map[string][][]string {
	return (&Snapshot{e: l.cur.Load()}).Views()
}

// Stats returns the current cost-model statistics and their version. The
// returned Stats is immutable once published; treat it as read-only.
func (l *Live) Stats() (*plan.Stats, uint64) {
	e := l.cur.Load()
	return e.stats, e.statsVer
}

// Size returns |D| as of the current epoch.
func (l *Live) Size() int { return l.cur.Load().size }

// FetchedTuples returns the handle-lifetime count of fetched tuples.
func (l *Live) FetchedTuples() int { return int(l.fetched.Load()) }

// Close fences writers and releases the maintenance machinery. Reads keep
// serving the final epoch; snapshots already taken are unaffected. On a
// durable handle Close first writes a clean final checkpoint (unless the
// handle was already fenced by a journal failure) and closes the log, so
// the next open recovers without replay.
func (l *Live) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.sealed {
		// Close already ran (sealed is set by Close only, never by a
		// fence): the second call is a no-op.
		return nil
	}
	l.sealed = true
	var err error
	if l.wal != nil {
		// A fenced handle (torn apply, journal or checkpoint failure)
		// skips the final checkpoint: its in-memory state may be ahead of
		// — or inconsistent with — the last durable epoch, and a stale
		// "clean" checkpoint would mask the journal's truth on recovery.
		if !l.closed && l.sinceCkpt > 0 {
			err = l.checkpointLocked()
		}
		if cerr := l.wal.Close(); err == nil {
			err = cerr
		}
		l.wal = nil
	}
	l.closed = true
	l.db, l.eng = nil, nil
	l.sys.releaseHandle(l.id)
	return err
}

// OpenLive builds the single-instance live state over db.
//
// Deprecated: use Open, which returns the unified Handle (the same engine
// when no WithShards option is given). OpenLive remains for source
// compatibility and forwards to Open's implementation.
func (sys *System) OpenLive(db *Database) (*Live, error) {
	h, err := sys.Open(db)
	if err != nil {
		return nil, err
	}
	return h.(*Live), nil
}
