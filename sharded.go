package repro

import (
	"time"

	"repro/internal/plan"
	"repro/internal/shard"
)

// LiveSharded is the shard-aware Live handle: the database is
// hash-partitioned into P shards (by the partition key derived from the
// access schema), each owning its own fetch indices, join indexes,
// materialized-view partitions and statistics. Plan execution is
// scatter-gather — fetches whose constraint binds the partition key are
// single-shard point reads, everything else gathers across shards — and
// ApplyDelta routes ops per shard and maintains the shards concurrently,
// so a writer patching one partition never stalls readers on the others.
//
// Semantics match Live exactly on results and fetch accounting (the
// differential harness in sharded_test.go pins this), with one
// concurrency difference: there is no cross-shard snapshot. A read
// overlapping ApplyDelta may see the batch applied on some shards and not
// others; each shard is individually consistent, and reads that do not
// overlap a delta see the fully applied state.
type LiveSharded struct {
	sys *System
	id  uint64 // process-unique handle identity (see PreparedQuery selection)
	sh  *shard.Sharded
}

// OpenLiveSharded builds the sharded live state over db, partitioned into
// the given number of shards. The database is consumed: its rows move
// into the partitions and the original handle must not be used afterwards
// — route all reads and writes through the returned handle. With shards
// == 1 the handle behaves like Live behind the same API (the degenerate
// partition, useful as the baseline in scaling experiments).
func (sys *System) OpenLiveSharded(db *Database, shards int) (*LiveSharded, error) {
	sh, err := shard.Open(db, sys.Schema, sys.Access, sys.Views, shards)
	if err != nil {
		return nil, err
	}
	return &LiveSharded{sys: sys, id: liveIDs.Add(1), sh: sh}, nil
}

// Execute runs a plan scatter-gather against the always-fresh partitions,
// returning the answer rows and the tuples fetched from D by this call
// (per-call attribution is exact when calls do not overlap).
func (l *LiveSharded) Execute(p Plan) ([][]string, int, error) { return l.sh.Execute(p) }

// ApplyDelta applies a batch of mutations with Live.ApplyDelta's
// semantics (deletes first, one occurrence per delete, absent deletes are
// no-ops), routed per shard and maintained concurrently.
func (l *LiveSharded) ApplyDelta(inserts, deletes []Op) (DeltaStats, error) {
	st, err := l.sh.ApplyDelta(inserts, deletes)
	if err != nil {
		return DeltaStats{}, err
	}
	return DeltaStats{
		Inserted:       st.Inserted,
		Deleted:        st.Deleted,
		ViewsChanged:   st.ViewsChanged,
		StatsRefreshed: st.StatsRefreshed,
		MaxExclusive:   st.MaxShardHold,
	}, nil
}

// Views returns a decoded snapshot of the gathered view extents. The
// returned map and rows are fresh copies owned by the caller: mutating
// them never affects what the handle serves next.
func (l *LiveSharded) Views() map[string][][]string { return l.sh.Views() }

// Size returns the current |D| across all shards.
func (l *LiveSharded) Size() int { return l.sh.Size() }

// ShardCount returns the number of partitions.
func (l *LiveSharded) ShardCount() int { return l.sh.ShardCount() }

// ShardSizes returns |D_p| for every partition.
func (l *LiveSharded) ShardSizes() []int { return l.sh.ShardSizes() }

// LocalViews reports which views are maintained shard-locally (their
// joins are co-partitioned) and which by the cross-shard global engine.
func (l *LiveSharded) LocalViews() (local, global []string) { return l.sh.LocalViews() }

// Stats returns the merged per-shard cost-model statistics and their
// version. The returned Stats is shared and immutable: rebuilds install a
// fresh value, so treat it as read-only.
func (l *LiveSharded) Stats() (*plan.Stats, uint64) { return l.sh.Stats() }

// FetchedTuples returns the handle-lifetime count of tuples fetched from
// the partitions (the |Dξ| accounting; deduplicated across shards exactly
// like the unsharded index's).
func (l *LiveSharded) FetchedTuples() int { return l.sh.FetchedTuples() }

// LockStall returns the cumulative time readers spent actually blocked
// behind writer locks — the serving-stall metric the scaling experiment
// tracks (partitioning shrinks the exclusive window a point read can
// collide with from the whole batch to one shard's slice).
func (l *LiveSharded) LockStall() time.Duration { return l.sh.LockStall() }
