package repro

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/plan"
	"repro/internal/shard"
	"repro/internal/wal"
)

// LiveSharded is the shard-aware serving handle: the database is
// hash-partitioned into P shards (by the partition key derived from the
// access schema), each owning its own fetch-index versions, join indexes,
// materialized-view partitions and statistics. Plan execution is
// scatter-gather — fetches whose constraint binds the partition key are
// single-shard point reads, everything else gathers across shards — and
// ApplyDelta routes ops per shard, maintains the shards concurrently, and
// publishes the combined result as ONE cross-shard-consistent epoch.
//
// Semantics match Live exactly, including the snapshot guarantees: a read
// (or Snapshot) pins one epoch covering every shard, so an overlapping
// ApplyDelta is either fully visible or fully invisible — the torn-batch
// window of the lock-based sharded engine is gone, and readers never
// block (the differential harness in snapshot_test.go pins this at
// P ∈ {1, 2, 8}).
type LiveSharded struct {
	sys *System
	id  uint64 // process-unique handle identity (see PreparedQuery selection)
	sh  *shard.Sharded

	mu      sync.Mutex   // serializes Close against ApplyDelta
	closed  bool         // writers fenced (Close, or a torn/journal failure)
	sealed  bool         // Close ran; teardown done, later Closes are no-ops
	fetched atomic.Int64 // handle-lifetime fetched tuples

	lc *lifecycle
	// cur caches ONE epochState wrapper per published shard epoch, so
	// every Snapshot of an epoch pins the same refcounted state (the
	// lifecycle needs identity, which wrapping per call would break).
	cur atomic.Pointer[epochState]

	// Durability (nil wal on non-durable handles). The journal hook on the
	// sharded engine appends each batch's combined physical ops BEFORE the
	// cross-shard epoch is published; periodic checkpoints here are
	// LOGICAL: the concatenated per-shard table shadows plus statistics,
	// with the view extents rebuilt from them on recovery.
	wal       *wal.Log
	ckptEvery int
	sinceCkpt int
	recovery  RecoveryInfo

	met *obs.Core // nil when opened WithoutMetrics
}

func (sys *System) openSharded(db *Database, cfg openConfig) (*LiveSharded, error) {
	met := newCoreFor(cfg, cfg.shards)
	sh, err := shard.Open(db, sys.Schema, sys.Access, sys.Views, shard.Config{
		Shards:         cfg.shards,
		StatsDriftFrac: cfg.statsDrift,
		StatsMinChurn:  cfg.statsMinChurn,
		Probes:         shardProbes(met),
	})
	if err != nil {
		return nil, err
	}
	l := &LiveSharded{sys: sys, id: liveIDs.Add(1), sh: sh, lc: newLifecycle(cfg.retainEpochs, met), met: met}
	l.registerGauges()
	l.publishEpoch()
	return l, nil
}

// shardProbes extracts the per-shard probe counters from a core (nil
// when metrics are disabled).
func shardProbes(met *obs.Core) []*obs.Counter {
	if met == nil {
		return nil
	}
	return met.ShardProbes
}

// registerGauges installs the handle-state function gauges: they read
// the authoritative counters at snapshot time, so e.g. the exported
// fetched-tuples value can never drift from FetchedTuples().
func (l *LiveSharded) registerGauges() {
	if l.met == nil {
		return
	}
	l.met.Reg.GaugeFunc("repro_fetched_tuples_total",
		"handle-lifetime tuples fetched from the partitions (== FetchedTuples)",
		func() int64 { return l.fetched.Load() })
	l.met.Reg.GaugeFunc("repro_epoch_seq", "current epoch sequence number",
		func() int64 { return int64(l.cur.Load().seq) })
	l.met.Reg.GaugeFunc("repro_db_size", "|D| across all shards as of the current epoch",
		func() int64 { return int64(l.cur.Load().size) })
}

// publishEpoch wraps the shard engine's freshly published epoch as the
// facade's refcounted epoch state and installs it: ring first, pointer
// second, so an epoch is addressable through At by the time Snapshot can
// observe it as current. Called with the writer lock held (or exclusive
// access, as in openSharded).
func (l *LiveSharded) publishEpoch() {
	e := l.snapshotEpoch(l.sh.Current())
	l.lc.push(e)
	l.cur.Store(e)
	if l.met != nil {
		l.met.EpochPublishes.Add(1)
	}
}

// OpenLiveSharded builds the sharded live state over db, partitioned into
// the given number of shards. The database is consumed: its rows move
// into the partitions and the original handle must not be used
// afterwards.
//
// Deprecated: use Open with WithShards(shards), which returns the unified
// Handle backed by the same engine.
func (sys *System) OpenLiveSharded(db *Database, shards int) (*LiveSharded, error) {
	h, err := sys.Open(db, WithShards(shards))
	if err != nil {
		return nil, err
	}
	return h.(*LiveSharded), nil
}

func (l *LiveSharded) handleID() uint64 { return l.id }

// snapshotEpoch wraps one shard epoch as the facade's epoch state.
func (l *LiveSharded) snapshotEpoch(e *shard.Epoch) *epochState {
	st, ver := e.Stats()
	return &epochState{
		seq:      e.Seq(),
		src:      e,
		pv:       e.Prepared(),
		dict:     e.Dict(),
		viewIDs:  e.AllViewIDs,
		stats:    st,
		statsVer: ver,
		size:     e.Size(),
	}
}

// Snapshot pins the current cross-shard-consistent epoch: every read
// through it sees one frozen state of ALL partitions and the gathered
// views, regardless of concurrent deltas.
func (l *LiveSharded) Snapshot() *Snapshot {
	return l.lc.snapshotCur(l.id, l.cur.Load(), &l.fetched)
}

// At returns a snapshot pinned to a retained epoch by sequence number.
// See Handle.At.
func (l *LiveSharded) At(seq uint64) (*Snapshot, error) {
	return l.lc.snapshotAt(l.id, seq, &l.fetched)
}

// Lifecycle reports the handle's epoch-retention and compaction counters.
func (l *LiveSharded) Lifecycle() LifecycleStats { return l.lc.stats() }

// Execute runs a plan scatter-gather against the current epoch, returning
// the answer rows and the tuples fetched from D by this call (exact
// attribution, also under concurrent readers and writers).
func (l *LiveSharded) Execute(p Plan) ([][]string, int, error) {
	if l.met.SlowEnabled() {
		// Slow logging needs the execution profile for the trace's
		// per-constraint breakdown: upgrade to the observed path (its
		// extra allocation is the documented cost of arming the log).
		rows, n, _, err := l.executeObserved(p, nil)
		return rows, n, err
	}
	var t0 time.Time
	if l.met != nil {
		t0 = time.Now()
	}
	e := l.cur.Load()
	var call atomic.Int64
	src := &countedSource{src: e.src, counters: [3]*atomic.Int64{&call, &l.fetched, nil}}
	rows, err := plan.RunOn(p, src, e.pv)
	if err != nil {
		return nil, 0, err
	}
	if l.met != nil {
		l.met.RecordQuery(time.Since(t0))
	}
	return rows, int(call.Load()), nil
}

// executeObserved is Execute plus the run's execution profile, for the
// closed-loop selection in PreparedQuery.Execute. The observing source
// wraps the cross-shard epoch exactly like the fetch counters do, so
// observed group widths reflect the deduplicated gather — per-constraint
// probe and row counts merge across shards for free, the same way the
// |Dξ| accounting does.
func (l *LiveSharded) executeObserved(p Plan, tc *traceCtx) ([][]string, int, *plan.Observation, error) {
	t0 := time.Now()
	e := l.cur.Load()
	var call atomic.Int64
	src := &countedSource{src: e.src, counters: [3]*atomic.Int64{&call, &l.fetched, nil}}
	rows, ob, err := plan.RunObserved(p, src, e.pv)
	if err != nil {
		return nil, 0, nil, err
	}
	recordExec(l.met, e.seq, p, tc, t0, int(call.Load()), len(rows), ob)
	return rows, int(call.Load()), ob, nil
}

// Metrics returns a point-in-time snapshot of the handle's metrics.
func (l *LiveSharded) Metrics() Metrics { return l.met.Snapshot() }

// SlowQueries returns the retained slow-query traces, newest first (nil
// unless WithSlowQueryThreshold armed the log).
func (l *LiveSharded) SlowQueries() []QueryTrace {
	if l.met == nil {
		return nil
	}
	return l.met.Slow.Snapshot()
}

func (l *LiveSharded) metricsCore() *obs.Core { return l.met }

// ApplyDelta applies a batch of mutations with Live.ApplyDelta's
// semantics (deletes first, one occurrence per delete, absent deletes are
// no-ops), routed per shard, maintained concurrently and published as the
// next epoch.
func (l *LiveSharded) ApplyDelta(inserts, deletes []Op) (DeltaStats, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return DeltaStats{}, ErrClosed
	}
	t0 := time.Now()
	st, err := l.sh.ApplyDelta(inserts, deletes)
	if err != nil {
		// ErrTorn covers every post-mutation failure (a mid-batch shard
		// error, the global engine, the journal): the writer-side state no
		// longer matches the published epoch, so fence like Close. Pure
		// validation errors leave every shard intact and the handle open.
		if errors.Is(err, shard.ErrTorn) || (l.wal != nil && l.wal.Err() != nil) {
			l.closed = true
		}
		return DeltaStats{}, err
	}
	l.publishEpoch()
	l.maybeCompactLocked()
	if l.wal != nil {
		l.sinceCkpt++
		if l.ckptEvery > 0 && l.sinceCkpt >= l.ckptEvery {
			if cerr := l.checkpointLocked(); cerr != nil {
				// The batch itself is durable and published; only the fold
				// failed. Fence so no later batch outruns a broken log.
				l.closed = true
				return DeltaStats{}, fmt.Errorf("repro: checkpoint: %w", cerr)
			}
		}
	}
	l.met.RecordApply(time.Since(t0), st.Inserted+st.Deleted)
	return DeltaStats{
		Inserted:       st.Inserted,
		Deleted:        st.Deleted,
		ViewsChanged:   st.ViewsChanged,
		StatsRefreshed: st.StatsRefreshed,
		MaxExclusive:   st.MaxShardHold,
	}, nil
}

// checkpointLocked serializes the current cross-shard epoch into the log:
// the concatenated per-shard ID shadows (schema order) plus the merged
// statistics with their drift state. No view extents are stored — the
// sharded engine's are per-shard partitions, rebuilt from the restored
// tables on recovery. Callers hold l.mu.
func (l *LiveSharded) checkpointLocked() error {
	stats, ver, churn := l.sh.StatsState()
	ck := &wal.Checkpoint{
		Seq:        l.sh.Seq(),
		StatsVer:   ver,
		StatsChurn: churn,
		Stats:      stats,
	}
	tables := l.sh.CheckpointTables()
	for _, rel := range l.sys.Schema.Relations {
		ck.Tables = append(ck.Tables, wal.TableRows{Rel: rel.Name, Rows: tables[rel.Name]})
	}
	if err := l.wal.WriteCheckpoint(l.sh.Dict(), ck); err != nil {
		return err
	}
	l.sinceCkpt = 0
	return nil
}

// maybeCompactLocked runs one compaction scan when at least one retired
// epoch died since the previous scan (see Live.maybeCompactLocked; here
// the repacked-view re-pinning lives inside the shard engine's Compact).
// Callers hold l.mu.
func (l *LiveSharded) maybeCompactLocked() {
	if l.lc.dead.Swap(0) == 0 {
		return
	}
	l.lc.passes.Add(1)
	repackIx := false
	l.lc.scans++
	if l.lc.scans >= vindexCompactEvery {
		l.lc.scans = 0
		repackIx = true
	}
	ext, grp := l.sh.Compact(extentCompactMinCap, extentCompactFrac, repackIx)
	if ext > 0 {
		l.lc.extents.Add(int64(ext))
	}
	if grp > 0 {
		l.lc.groups.Add(int64(grp))
	}
}

// Recovery reports what opening this handle's durable directory replayed.
// The zero value means the handle was opened fresh (or is not durable).
func (l *LiveSharded) Recovery() RecoveryInfo { return l.recovery }

// Views returns a decoded copy of the current epoch's gathered view
// extents. The returned map and rows are fresh copies owned by the
// caller.
func (l *LiveSharded) Views() map[string][][]string {
	return (&Snapshot{e: l.cur.Load()}).Views()
}

// Size returns the current |D| across all shards.
func (l *LiveSharded) Size() int { return l.cur.Load().size }

// ShardCount returns the number of partitions.
func (l *LiveSharded) ShardCount() int { return l.sh.ShardCount() }

// ShardSizes returns |D_p| for every partition.
func (l *LiveSharded) ShardSizes() []int { return l.sh.ShardSizes() }

// LocalViews reports which views are maintained shard-locally (their
// joins are co-partitioned) and which by the cross-shard global engine.
func (l *LiveSharded) LocalViews() (local, global []string) { return l.sh.LocalViews() }

// Stats returns the merged per-shard cost-model statistics and their
// version. The returned Stats is shared and immutable: rebuilds install a
// fresh value, so treat it as read-only.
func (l *LiveSharded) Stats() (*plan.Stats, uint64) {
	e := l.cur.Load()
	return e.stats, e.statsVer
}

// FetchedTuples returns the handle-lifetime count of tuples fetched from
// the partitions (the |Dξ| accounting; deduplicated across shards exactly
// like the unsharded index's).
func (l *LiveSharded) FetchedTuples() int { return int(l.fetched.Load()) }

// Close fences writers and releases the per-shard maintenance machinery:
// later ApplyDelta calls fail, reads keep serving the final epoch, and
// snapshots already taken are unaffected. On a durable handle Close first
// writes a clean final checkpoint (unless already fenced by a journal
// failure) and closes the log, so the next open recovers without replay.
func (l *LiveSharded) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.sealed {
		// Close already ran (sealed is set by Close only, never by a
		// fence): the second call is a no-op.
		return nil
	}
	l.sealed = true
	var err error
	if l.wal != nil {
		// A fenced handle (torn apply, journal or checkpoint failure)
		// skips the final checkpoint: its writer-side state may be ahead
		// of — or inconsistent with — the last durable epoch, and a stale
		// "clean" checkpoint would mask the journal's truth on recovery.
		if !l.closed && l.sinceCkpt > 0 {
			err = l.checkpointLocked()
		}
		if cerr := l.wal.Close(); err == nil {
			err = cerr
		}
		l.wal = nil
	}
	l.closed = true
	l.sh.Close()
	l.sys.releaseHandle(l.id)
	return err
}
