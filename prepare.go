package repro

import (
	"fmt"
	"sync"

	"repro/internal/plan"
	"repro/internal/vbrp"
)

// ErrNoBoundedRewriting is returned by Prepare when the query has no
// M-bounded rewriting in the requested language (the exhaustive search
// completed and found nothing).
var ErrNoBoundedRewriting = fmt.Errorf("repro: query has no M-bounded rewriting")

// prepCacheMax bounds the prepared-query cache (positive and negative
// entries alike); see Prepare's eviction note.
const prepCacheMax = 65536

// prepEntry is one slot of the prepared-query cache. The once gates the
// exponential VBRP search: the first Prepare for a canonical key runs it,
// every later (or concurrent) Prepare for an equivalent query waits on the
// same entry and shares the result.
type prepEntry struct {
	once sync.Once
	pq   *PreparedQuery
	err  error
}

// PreparedQuery is a compiled query handle: the full frontier of bounded
// candidate plans found by the VBRP search, plus the cost-model selection
// state. The search runs once per canonical query (Prepare's cache);
// selection is revisited whenever the Live handle it serves publishes new
// statistics — re-selection is a cheap arithmetic pass over the cached
// candidates, never a new search.
//
// Handles are safe for concurrent use; one handle may serve many Execute
// calls in parallel while deltas churn the Live state.
type PreparedQuery struct {
	sys   *System
	key   string
	lang  Language
	cands []vbrp.Candidate

	staticSel  int       // min-cost candidate under static (nil) statistics
	staticCost plan.Cost // its static cost estimate

	mu   sync.Mutex
	sels map[uint64]selState // Live handle id -> selection (bounded, see planFor)
}

// selState is one Live handle's cached plan selection: revisited only
// when that handle's statistics version moves.
type selState struct {
	sel  int
	cost plan.Cost
	ver  uint64
}

// maxLiveSelections bounds the per-handle selection cache; an arbitrary
// entry is dropped beyond it (re-selection is cheap arithmetic).
const maxLiveSelections = 8

// Prepare compiles a UCQ for repeated serving: it canonicalizes the query
// into a cache key (invariant under variable renaming and atom/disjunct
// reordering), runs the full VBRP candidate enumeration once per key, and
// returns a handle that serves the min-cost candidate. Repeated Prepare
// calls with equivalent queries — including renamed ones — hit the cache
// and never pay a second search; negative answers are cached too.
//
// The plan language defaults matter: pass LangUCQ for UCQ queries. The
// system's M is the size bound.
func (sys *System) Prepare(q *UCQ, lang Language) (*PreparedQuery, error) {
	key := lang.String() + "|" + plan.QueryKey(q)
	sys.prepQMu.Lock()
	if sys.prepQ == nil {
		sys.prepQ = make(map[string]*prepEntry)
	}
	e, hit := sys.prepQ[key]
	if !hit {
		// Bound the cache: beyond prepCacheMax distinct canonical queries
		// an arbitrary entry is dropped (in-flight holders keep their
		// shared prepEntry; a later Prepare for the evicted key just
		// re-searches). Keeps a long-running server's memory flat under
		// adversarial or naturally diverse query text.
		if len(sys.prepQ) >= prepCacheMax {
			for k := range sys.prepQ {
				delete(sys.prepQ, k)
				break
			}
		}
		e = &prepEntry{}
		sys.prepQ[key] = e
	}
	sys.prepQMu.Unlock()
	if hit {
		sys.prepHits.Add(1)
	}
	e.once.Do(func() {
		sys.prepSearches.Add(1)
		cands, err := sys.searchCandidates(q, lang)
		if err != nil && err != vbrp.ErrSearchTruncated {
			e.err = err
			return
		}
		if len(cands) == 0 {
			if err == vbrp.ErrSearchTruncated {
				e.err = err // the "no" is unreliable: report the truncation
				return
			}
			e.err = ErrNoBoundedRewriting
			return
		}
		pq := &PreparedQuery{sys: sys, key: key, lang: lang, cands: cands, sels: make(map[uint64]selState)}
		// Static selection so Plan() is meaningful before any Live exists.
		pq.staticSel, pq.staticCost = bestCandidate(cands, nil)
		e.pq = pq
	})
	return e.pq, e.err
}

// PrepareCacheStats reports the prepared-query cache counters: the number
// of VBRP searches actually run and the number of Prepare calls served
// from the cache.
func (sys *System) PrepareCacheStats() (searches, hits int64) {
	return sys.prepSearches.Load(), sys.prepHits.Load()
}

func bestCandidate(cands []vbrp.Candidate, st *plan.Stats) (int, plan.Cost) {
	plans := make([]plan.Node, len(cands))
	for i, c := range cands {
		plans[i] = c.Plan
	}
	return plan.Best(plans, st)
}

// Key returns the canonical cache key the query was prepared under.
func (pq *PreparedQuery) Key() string { return pq.key }

// Candidates returns the enumerated candidate plans (the budgeted
// frontier), in search order. The slice is shared; treat it as read-only.
func (pq *PreparedQuery) Candidates() []Plan {
	out := make([]Plan, len(pq.cands))
	for i, c := range pq.cands {
		out[i] = c.Plan
	}
	return out
}

// Plan returns the statically selected plan and its estimated cost (the
// min-cost candidate under default statistics — what HasBoundedRewriting
// would return). Per-Live selections live with the handles (see Execute).
func (pq *PreparedQuery) Plan() (Plan, plan.Cost) {
	return pq.cands[pq.staticSel].Plan, pq.staticCost
}

// planOn returns the plan to serve the handle with the given identity and
// statistics. Each live handle (Live or LiveSharded) keeps its own cached
// selection (so alternating Executes against several handles do not
// thrash), re-ranked only when that handle's statistics version moved —
// churn past the drift threshold rebuilt them.
func (pq *PreparedQuery) planOn(id uint64, st *plan.Stats, ver uint64) Plan {
	pq.mu.Lock()
	defer pq.mu.Unlock()
	s, ok := pq.sels[id]
	if !ok || s.ver != ver {
		if !ok && len(pq.sels) >= maxLiveSelections {
			for sid := range pq.sels {
				delete(pq.sels, sid)
				break
			}
		}
		s.sel, s.cost = bestCandidate(pq.cands, st)
		s.ver = ver
		pq.sels[id] = s
	}
	return pq.cands[s.sel].Plan
}

// Execute serves the query against any handle — single-instance or
// sharded: the min-cost candidate under the handle's current statistics
// runs over the current epoch's views and indices. Returns the answer
// rows and the tuples this call fetched from the underlying database.
func (pq *PreparedQuery) Execute(h Handle) ([][]string, int, error) {
	st, ver := h.Stats()
	return h.Execute(pq.planOn(h.handleID(), st, ver))
}

// ExecuteOn serves the query against a pinned snapshot: the min-cost
// candidate under the snapshot's statistics runs against exactly the
// snapshot's epoch.
func (pq *PreparedQuery) ExecuteOn(s *Snapshot) ([][]string, int, error) {
	st, ver := s.Stats()
	return s.Execute(pq.planOn(s.hid, st, ver))
}

// ExecuteSharded serves the query against a sharded handle.
//
// Deprecated: Execute accepts any Handle, including *LiveSharded.
func (pq *PreparedQuery) ExecuteSharded(l *LiveSharded) ([][]string, int, error) {
	return pq.Execute(l)
}
