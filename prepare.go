package repro

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"repro/internal/obs"
	"repro/internal/plan"
	"repro/internal/vbrp"
)

// ErrNoBoundedRewriting is returned by Prepare when the query has no
// M-bounded rewriting in the requested language (the exhaustive search
// completed and found nothing).
var ErrNoBoundedRewriting = fmt.Errorf("repro: query has no M-bounded rewriting")

// prepCacheMax bounds the prepared-query cache (positive and negative
// entries alike); see Prepare's eviction note.
const prepCacheMax = 65536

// prepEntry is one slot of the prepared-query cache. The once gates the
// exponential VBRP search: the first Prepare for a canonical key runs it,
// every later (or concurrent) Prepare for an equivalent query waits on the
// same entry and shares the result. done flips after the once completes —
// an entry that is not done is mid-search (or about to be) and must never
// be evicted out from under the searcher.
type prepEntry struct {
	once sync.Once
	done atomic.Bool
	pq   *PreparedQuery
	err  error
}

// Observed-cost feedback knobs (see the README's "Self-tuning selection").
const (
	// feedbackAlpha is the EWMA weight of the newest observation when
	// folding realized group widths into a selection's ObservedStats.
	feedbackAlpha = 0.3
	// feedbackDivergence triggers a re-rank: after absorbing an
	// observation, the incumbent plan's overlaid score must have moved by
	// at least this factor (either direction) from the score it was ranked
	// at. Below it the estimates are deemed "close enough" and selection
	// stays put — the cheap-arithmetic guard that keeps steady state at
	// one Estimate per execution.
	feedbackDivergence = 2.0
	// feedbackHysteresis is the switching margin: a challenger must beat
	// the incumbent's overlaid score by this factor to take over. It is
	// what keeps two genuinely near-tied candidates from flapping as noisy
	// observations leapfrog their scores.
	feedbackHysteresis = 1.3
	// exploreEvery is the exploration budget: at most one execution in
	// this many serves a near-tied runner-up instead of the incumbent, so
	// a candidate whose estimate is pessimistic gets real observations
	// and can be promoted. Every candidate answers the query, so an
	// exploratory execution returns correct answers — it only risks
	// fetching more.
	exploreEvery = 64
	// exploreWithin bounds which runner-up qualifies: its overlaid score
	// must be within this factor of the incumbent's. Far-off candidates
	// are never re-tried — exploration refines ties, it does not
	// periodically re-run the worst plan in the frontier.
	exploreWithin = 4.0
)

// PreparedQuery is a compiled query handle: the full frontier of bounded
// candidate plans found by the VBRP search, plus the cost-model selection
// state. The search runs once per canonical query (Prepare's cache);
// selection is revisited whenever the Live handle it serves publishes new
// statistics — re-selection is a cheap arithmetic pass over the cached
// candidates, never a new search.
//
// Selection is closed-loop: every Execute through the handle profiles the
// run (realized per-constraint fetch groups, join fan-outs, output rows)
// and folds it into the serving handle's ObservedStats. When observation
// diverges from the estimates the current ranking trusted, the cached
// frontier is re-ranked under the observation overlay — switching plans
// is a re-pick, never a re-search — with hysteresis and a bounded
// exploration budget so selection converges instead of thrashing.
//
// Handles are safe for concurrent use; one handle may serve many Execute
// calls in parallel while deltas churn the Live state.
type PreparedQuery struct {
	sys   *System
	key   string
	lang  Language
	cands []vbrp.Candidate

	staticSel  int       // min-cost candidate under static (nil) statistics
	staticCost plan.Cost // its static cost estimate

	mu   sync.Mutex
	sels map[uint64]*selState // Live handle id -> selection (bounded, see selFor)
}

// selState is one Live handle's cached plan selection and its accumulated
// observed-cost feedback. All fields are guarded by the PreparedQuery
// mutex. The state lives as long as the handle does: Handle.Close clears
// it (and a restart therefore starts from estimates again — observed
// statistics are deliberately not durable; see the README).
type selState struct {
	sel    int       // incumbent candidate index
	cost   plan.Cost // incumbent's overlaid cost when last ranked
	ver    uint64    // statistics version the ranking used
	obs    *plan.ObservedStats
	execs  int64 // executions attributed to this (handle, query) pair
	swaps  int64 // incumbent switches (diagnostics; the flap detector)
	probes int64 // exploratory executions of a runner-up
}

// maxLiveSelections bounds the per-handle selection cache; beyond it an
// entry for a handle OTHER than the one being served is dropped
// (re-selection is cheap arithmetic, but evicting the current handle
// would discard the very feedback this call is about to add).
const maxLiveSelections = 8

// SelectionStats reports one handle's closed-loop selection state for a
// prepared query: which candidate is serving, and how the feedback loop
// got there. It is a plain value copy taken under the selection lock;
// safe to copy, never updated after it is returned.
type SelectionStats struct {
	Selected     int   // incumbent candidate index (into Candidates())
	Executions   int64 // executions attributed to this (handle, query) pair
	Switches     int64 // times observation re-ranking changed the incumbent
	Explorations int64 // executions served by a near-tied runner-up
	Samples      int64 // observations absorbed into the overlay
}

// Prepare compiles a UCQ for repeated serving: it canonicalizes the query
// into a cache key (invariant under variable renaming and atom/disjunct
// reordering), runs the full VBRP candidate enumeration once per key, and
// returns a handle that serves the min-cost candidate. Repeated Prepare
// calls with equivalent queries — including renamed ones — hit the cache
// and never pay a second search; negative answers are cached too.
//
// The plan language defaults matter: pass LangUCQ for UCQ queries. The
// system's M is the size bound.
func (sys *System) Prepare(q *UCQ, lang Language) (*PreparedQuery, error) {
	key := lang.String() + "|" + plan.QueryKey(q)
	sys.prepQMu.Lock()
	if sys.prepQ == nil {
		sys.prepQ = make(map[string]*prepEntry)
	}
	e, hit := sys.prepQ[key]
	if !hit {
		// Bound the cache: beyond the cap an entry is evicted — negative
		// entries (no-rewriting and truncated-search results, which are
		// cheap to rediscover and the likeliest product of adversarial
		// query text) go first, and an entry whose search is still
		// in-flight is never touched (its holders share the prepEntry; a
		// later Prepare for an evicted key just re-searches). Keeps a
		// long-running server's memory flat under naturally diverse or
		// adversarial query text.
		if cap := sys.prepCacheCap(); len(sys.prepQ) >= cap {
			sys.evictPrepLocked()
		}
		e = &prepEntry{}
		sys.prepQ[key] = e
	}
	sys.prepQMu.Unlock()
	if hit {
		sys.prepHits.Add(1)
	}
	e.once.Do(func() {
		defer e.done.Store(true)
		sys.prepSearches.Add(1)
		cands, err := sys.searchCandidates(q, lang)
		if err != nil && err != vbrp.ErrSearchTruncated {
			e.err = err
			return
		}
		if len(cands) == 0 {
			if err == vbrp.ErrSearchTruncated {
				e.err = err // the "no" is unreliable: report the truncation
				return
			}
			e.err = ErrNoBoundedRewriting
			return
		}
		pq := &PreparedQuery{sys: sys, key: key, lang: lang, cands: cands, sels: make(map[uint64]*selState)}
		// Static selection so Plan() is meaningful before any Live exists.
		pq.staticSel, pq.staticCost = bestCandidate(cands, nil)
		e.pq = pq
	})
	return e.pq, e.err
}

// prepCacheCap returns the prepared-query cache bound (the test seam
// defaults to prepCacheMax).
func (sys *System) prepCacheCap() int {
	if sys.prepCacheBound > 0 {
		return sys.prepCacheBound
	}
	return prepCacheMax
}

// evictPrepLocked drops one evictable cache entry: a completed negative
// entry if any exists, else a completed positive one. Entries whose
// search is mid-flight are never evicted (the map may transiently exceed
// the cap when every entry is in-flight). Callers hold prepQMu.
func (sys *System) evictPrepLocked() {
	victim := ""
	for k, e := range sys.prepQ {
		if !e.done.Load() {
			continue
		}
		if e.err != nil {
			victim = k // negative entry: evict it and stop looking
			break
		}
		if victim == "" {
			victim = k
		}
	}
	if victim == "" {
		return
	}
	delete(sys.prepQ, victim)
	sys.prepEvicts.Add(1)
}

// PrepareCacheStats reports the prepared-query cache counters: the number
// of VBRP searches actually run, the number of Prepare calls served from
// the cache, and the number of entries evicted by the cache bound.
func (sys *System) PrepareCacheStats() (searches, hits, evictions int64) {
	return sys.prepSearches.Load(), sys.prepHits.Load(), sys.prepEvicts.Load()
}

func bestCandidate(cands []vbrp.Candidate, st *plan.Stats) (int, plan.Cost) {
	return bestObserved(cands, st, nil)
}

func bestObserved(cands []vbrp.Candidate, st *plan.Stats, obs *plan.ObservedStats) (int, plan.Cost) {
	plans := make([]plan.Node, len(cands))
	for i, c := range cands {
		plans[i] = c.Plan
	}
	return plan.BestObserved(plans, st, obs)
}

// Key returns the canonical cache key the query was prepared under.
func (pq *PreparedQuery) Key() string { return pq.key }

// Candidates returns the enumerated candidate plans (the budgeted
// frontier), in search order. The slice is shared; treat it as read-only.
func (pq *PreparedQuery) Candidates() []Plan {
	out := make([]Plan, len(pq.cands))
	for i, c := range pq.cands {
		out[i] = c.Plan
	}
	return out
}

// Plan returns the statically selected plan and its estimated cost (the
// min-cost candidate under default statistics — what HasBoundedRewriting
// would return). Per-Live selections live with the handles (see Execute).
func (pq *PreparedQuery) Plan() (Plan, plan.Cost) {
	return pq.cands[pq.staticSel].Plan, pq.staticCost
}

// SelectionStats reports the closed-loop selection state this prepared
// query holds for the handle (false when the handle never executed the
// query, or its state was cleared by Handle.Close).
func (pq *PreparedQuery) SelectionStats(h Handle) (SelectionStats, bool) {
	pq.mu.Lock()
	defer pq.mu.Unlock()
	s, ok := pq.sels[h.handleID()]
	if !ok {
		return SelectionStats{}, false
	}
	return SelectionStats{
		Selected:     s.sel,
		Executions:   s.execs,
		Switches:     s.swaps,
		Explorations: s.probes,
		Samples:      s.obs.Samples(),
	}, true
}

// selFor returns the handle's selection state, creating or re-ranking it
// as needed. Callers hold pq.mu.
func (pq *PreparedQuery) selFor(id uint64, st *plan.Stats, ver uint64, met *obs.Core) *selState {
	s, ok := pq.sels[id]
	if !ok {
		if len(pq.sels) >= maxLiveSelections {
			pq.evictSelLocked(id)
		}
		s = &selState{obs: plan.NewObservedStats(feedbackAlpha)}
		s.sel, s.cost = bestObserved(pq.cands, st, s.obs)
		s.ver = ver
		pq.sels[id] = s
		return s
	}
	if s.ver != ver {
		// The handle's statistics were rebuilt (churn drift). Re-rank
		// under the fresh estimates WITH the observation overlay — the
		// realized widths survive the rebuild, so a selection that
		// feedback corrected stays corrected instead of reverting to
		// whatever the new skew-blind averages say.
		pq.rerankLocked(s, st, met)
		s.ver = ver
	}
	return s
}

// evictSelLocked drops one selection entry for a handle other than keep.
// Callers hold pq.mu.
func (pq *PreparedQuery) evictSelLocked(keep uint64) {
	for sid := range pq.sels {
		if sid != keep {
			delete(pq.sels, sid)
			return
		}
	}
}

// dropHandle clears a closed handle's selection state so dead handle ids
// stop occupying cache slots (called from Handle.Close via the System).
func (pq *PreparedQuery) dropHandle(id uint64) {
	pq.mu.Lock()
	delete(pq.sels, id)
	pq.mu.Unlock()
}

// rerankLocked re-ranks the frontier under the observation overlay and
// switches the incumbent only when the challenger clears the hysteresis
// margin. Callers hold pq.mu.
func (pq *PreparedQuery) rerankLocked(s *selState, st *plan.Stats, met *obs.Core) {
	if met != nil {
		met.Reranks.Add(1)
	}
	cur := plan.EstimateObserved(pq.cands[s.sel].Plan, st, s.obs)
	best, bc := bestObserved(pq.cands, st, s.obs)
	if best != s.sel && bc.Score()*feedbackHysteresis < cur.Score() {
		s.sel, s.cost = best, bc
		s.swaps++
		if met != nil {
			met.Switches.Add(1)
		}
		return
	}
	s.cost = cur
}

// pickPlan chooses the candidate to execute for this call: the incumbent,
// or — once per exploreEvery executions — a near-tied runner-up, so a
// pessimistically estimated candidate gets real observations and can be
// promoted. Returns the plan and the candidate index the run must be
// attributed to.
func (pq *PreparedQuery) pickPlan(id uint64, st *plan.Stats, ver uint64, met *obs.Core) (Plan, int, bool) {
	pq.mu.Lock()
	defer pq.mu.Unlock()
	s := pq.selFor(id, st, ver, met)
	s.execs++
	idx := s.sel
	explore := false
	if exploreEvery > 0 && s.execs%exploreEvery == 0 && s.obs.Samples() > 0 {
		if ri, rc, ok := pq.runnerUpLocked(s, st); ok && rc.Score() <= s.cost.Score()*exploreWithin {
			s.probes++
			idx = ri
			explore = true
			if met != nil {
				met.Explores.Add(1)
			}
		}
	}
	return pq.cands[idx].Plan, idx, explore
}

// runnerUpLocked returns the best-scored candidate other than the
// incumbent under the overlay. Callers hold pq.mu.
func (pq *PreparedQuery) runnerUpLocked(s *selState, st *plan.Stats) (int, plan.Cost, bool) {
	best, bc := -1, plan.Cost{}
	for i, c := range pq.cands {
		if i == s.sel {
			continue
		}
		cost := plan.EstimateObserved(c.Plan, st, s.obs)
		if best < 0 || cost.Score() < bc.Score() {
			best, bc = i, cost
		}
	}
	return best, bc, best >= 0
}

// feedback folds one run's observation into the handle's selection state
// and re-ranks when the incumbent's overlaid score diverged past the
// threshold from the score it was ranked at (or when the run explored a
// runner-up, whose fresh observations are exactly what a re-rank needs).
func (pq *PreparedQuery) feedback(id uint64, st *plan.Stats, executed int, ob *plan.Observation, met *obs.Core) {
	if ob == nil {
		return
	}
	pq.mu.Lock()
	defer pq.mu.Unlock()
	s, ok := pq.sels[id]
	if !ok {
		// The selection was evicted or the handle closed mid-flight;
		// nothing to attribute the run to.
		return
	}
	s.obs.Absorb(ob)
	cur := plan.EstimateObserved(pq.cands[s.sel].Plan, st, s.obs)
	if executed != s.sel || diverged(cur.Score(), s.cost.Score()) {
		pq.rerankLocked(s, st, met)
	}
}

// diverged reports whether an overlaid score moved past the feedback
// divergence threshold from the score the ranking trusted. Non-finite
// scores always count as diverged.
func diverged(now, ranked float64) bool {
	if math.IsNaN(now) || math.IsInf(now, 0) || math.IsNaN(ranked) || math.IsInf(ranked, 0) {
		return true
	}
	lo, hi := math.Min(now, ranked), math.Max(now, ranked)
	if lo <= 0 {
		return hi > 0
	}
	return hi/lo >= feedbackDivergence
}

// Execute serves the query against any handle — single-instance or
// sharded: the candidate selected by the closed-loop cost model runs over
// the current epoch's views and indices, the run is profiled, and the
// realized costs feed the next selection. Returns the answer rows and the
// tuples this call fetched from the underlying database.
func (pq *PreparedQuery) Execute(h Handle) ([][]string, int, error) {
	st, ver := h.Stats()
	id := h.handleID()
	met := h.metricsCore()
	p, idx, explore := pq.pickPlan(id, st, ver, met)
	rows, fetched, ob, err := h.executeObserved(p, &traceCtx{key: pq.key, candidate: idx, explore: explore})
	if err != nil {
		return nil, 0, err
	}
	pq.feedback(id, st, idx, ob, met)
	return rows, fetched, nil
}

// ExecuteOn serves the query against a pinned snapshot: the selected
// candidate under the snapshot's statistics runs against exactly the
// snapshot's epoch. Observations feed the same per-handle selection state
// as Execute — a snapshot read is a real measurement of its epoch.
func (pq *PreparedQuery) ExecuteOn(s *Snapshot) ([][]string, int, error) {
	st, ver := s.Stats()
	met := s.met()
	p, idx, explore := pq.pickPlan(s.hid, st, ver, met)
	rows, fetched, ob, err := s.executeObserved(p, &traceCtx{key: pq.key, candidate: idx, explore: explore})
	if err != nil {
		return nil, 0, err
	}
	pq.feedback(s.hid, st, idx, ob, met)
	return rows, fetched, nil
}

// ExecuteSharded serves the query against a sharded handle.
//
// Deprecated: Execute accepts any Handle, including *LiveSharded.
func (pq *PreparedQuery) ExecuteSharded(l *LiveSharded) ([][]string, int, error) {
	return pq.Execute(l)
}

// planOn returns the plan the closed-loop selection would serve the
// handle with, without executing it (kept for the serving layers that
// need the plan itself, e.g. open-loop baselines and diagnostics).
func (pq *PreparedQuery) planOn(id uint64, st *plan.Stats, ver uint64) Plan {
	pq.mu.Lock()
	defer pq.mu.Unlock()
	return pq.cands[pq.selFor(id, st, ver, nil).sel].Plan
}
