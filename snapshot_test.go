package repro

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"testing"

	"repro/internal/cq"
	"repro/internal/eval"
	"repro/internal/instance"
	"repro/internal/plan"
	"repro/internal/workload"
)

// snapShardCounts covered by the snapshot differential harness (the
// ISSUE-mandated P ∈ {1, 2, 8} plus the unsharded engine).
var snapShardCounts = []int{1, 2, 8}

// planAnswer canonicalizes one plan execution on a snapshot: rows plus
// the exact per-call fetch total.
func planAnswer(s *Snapshot, p Plan) (string, int, error) {
	rows, fetched, err := s.Execute(p)
	if err != nil {
		return "", 0, err
	}
	eval.SortRows(rows)
	return fmt.Sprint(rows), fetched, nil
}

// frozenState records everything a pinned snapshot promised at pin time.
type frozenState struct {
	snap    *Snapshot
	epoch   uint64
	size    int
	answers []string // per plan: canonical rows
	fetched []int    // per plan: exact fetch total
	views   string   // canonical view snapshot
}

func viewFingerprint(v map[string][][]string) string {
	names := make([]string, 0, len(v))
	for name := range v {
		names = append(names, name)
	}
	sort.Strings(names)
	out := ""
	for _, name := range names {
		ext := v[name]
		eval.SortRows(ext)
		out += name + "=" + fmt.Sprint(ext) + ";"
	}
	return out
}

func freezeSnapshot(t *testing.T, s *Snapshot, plans []Plan) frozenState {
	t.Helper()
	st := frozenState{snap: s, epoch: s.Epoch(), size: s.Size(), views: viewFingerprint(s.Views())}
	for _, p := range plans {
		rows, fetched, err := planAnswer(s, p)
		if err != nil {
			rows, fetched = "err:"+err.Error(), -1
		}
		st.answers = append(st.answers, rows)
		st.fetched = append(st.fetched, fetched)
	}
	return st
}

// recheck re-runs every promise of a pinned snapshot and fails on any
// drift: a snapshot must answer EXACTLY as it did when pinned, no matter
// how many batches landed since.
func (f *frozenState) recheck(t *testing.T, label string, plans []Plan) {
	t.Helper()
	if e := f.snap.Epoch(); e != f.epoch {
		t.Fatalf("%s: pinned epoch moved: %d -> %d", label, f.epoch, e)
	}
	if n := f.snap.Size(); n != f.size {
		t.Fatalf("%s: pinned Size drifted: %d -> %d", label, f.size, n)
	}
	if v := viewFingerprint(f.snap.Views()); v != f.views {
		t.Fatalf("%s: pinned Views drifted after later batches", label)
	}
	for i, p := range plans {
		rows, fetched, err := planAnswer(f.snap, p)
		if err != nil {
			rows, fetched = "err:"+err.Error(), -1
		}
		if rows != f.answers[i] {
			t.Fatalf("%s: plan %d answers drifted on the pinned snapshot:\nwas  %s\nnow  %s\nplan:\n%s",
				label, i, f.answers[i], rows, plan.Render(p))
		}
		if fetched != f.fetched[i] {
			t.Fatalf("%s: plan %d fetch total drifted on the pinned snapshot: was %d, now %d",
				label, i, f.fetched[i], fetched)
		}
	}
}

// TestSnapshotDifferentialRandom is the snapshot-consistency harness: on
// random systems, a reader pinned BEFORE ApplyDelta must keep seeing the
// exact pre-batch rows, views, sizes and fetch totals on both engines —
// the single-instance handle and sharded ones at P ∈ {1, 2, 8} — while
// batches keep landing, and the current epoch must keep matching the
// unsharded reference. CI runs this under -race.
func TestSnapshotDifferentialRandom(t *testing.T) {
	const (
		trials    = 2
		batches   = 14
		batchSize = 18
	)
	for trial := 0; trial < trials; trial++ {
		rng := rand.New(rand.NewSource(int64(9100 + trial)))
		s := diffSchema(rng)
		a := diffAccess(rng, s)
		views := map[string]*UCQ{}
		for v := 0; v < 1+rng.Intn(3); v++ {
			name := fmt.Sprintf("W%d", v)
			views[name] = diffView(rng, s, name)
		}
		sys, err := NewSystem(s, a, views, 5)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		seed := NewDatabase(s)
		for i := 0; i < 80; i++ {
			rel := s.Relations[rng.Intn(len(s.Relations))]
			row := make([]string, rel.Arity())
			for j := range row {
				row[j] = diffVal(rng)
			}
			seed.MustInsert(rel.Name, row...)
		}

		handles := map[string]Handle{}
		lh, err := sys.Open(seed.Clone())
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		handles["live"] = lh
		for _, p := range snapShardCounts {
			h, err := sys.Open(seed.Clone(), WithShards(p))
			if err != nil {
				t.Fatalf("trial %d, P=%d: %v", trial, p, err)
			}
			handles[fmt.Sprintf("P=%d", p)] = h
		}
		plans := diffPlans(t, rng, sys)

		// Pinned snapshots per handle, re-verified after every batch.
		pinned := map[string][]frozenState{}
		for name, h := range handles {
			pinned[name] = append(pinned[name], freezeSnapshot(t, h.Snapshot(), plans))
		}

		live := map[string][]instance.Tuple{}
		for _, rel := range s.Relations {
			for _, tu := range seed.Table(rel.Name).Tuples {
				live[rel.Name] = append(live[rel.Name], tu.Clone())
			}
		}
		for b := 1; b <= batches; b++ {
			var ins, del []Op
			for o := 0; o < batchSize; o++ {
				rel := s.Relations[rng.Intn(len(s.Relations))]
				switch {
				case rng.Float64() < 0.4 && len(live[rel.Name]) > 0:
					i := rng.Intn(len(live[rel.Name]))
					row := live[rel.Name][i]
					live[rel.Name][i] = live[rel.Name][len(live[rel.Name])-1]
					live[rel.Name] = live[rel.Name][:len(live[rel.Name])-1]
					del = append(del, Op{Rel: rel.Name, Row: row})
				default:
					row := make(instance.Tuple, rel.Arity())
					for j := range row {
						row[j] = diffVal(rng)
					}
					live[rel.Name] = append(live[rel.Name], row)
					ins = append(ins, Op{Rel: rel.Name, Row: row.Clone()})
				}
			}
			for name, h := range handles {
				if _, err := h.ApplyDelta(ins, del); err != nil {
					t.Fatalf("trial %d batch %d %s: %v", trial, b, name, err)
				}
			}
			// Every pinned snapshot still answers pre-batch.
			for name, states := range pinned {
				for i := range states {
					states[i].recheck(t, fmt.Sprintf("trial %d batch %d %s pin %d", trial, b, name, i), plans)
				}
			}
			// Fresh snapshots agree across engines (the unsharded handle is
			// the reference).
			ref := freezeSnapshot(t, handles["live"].Snapshot(), plans)
			for name, h := range handles {
				if name == "live" {
					continue
				}
				got := freezeSnapshot(t, h.Snapshot(), plans)
				if got.views != ref.views {
					t.Fatalf("trial %d batch %d: %s current views diverge from unsharded", trial, b, name)
				}
				for i := range plans {
					if got.answers[i] != ref.answers[i] || got.fetched[i] != ref.fetched[i] {
						t.Fatalf("trial %d batch %d: %s plan %d diverges from unsharded (rows or fetch totals)",
							trial, b, name, i)
					}
				}
			}
			// Pin the fresh state too, dropping older pins occasionally so
			// superseded epochs can actually be collected.
			for name, h := range handles {
				pinned[name] = append(pinned[name], freezeSnapshot(t, h.Snapshot(), plans))
				if len(pinned[name]) > 4 {
					pinned[name] = pinned[name][len(pinned[name])-4:]
				}
			}
		}
	}
}

// TestSnapshotCrossShardConsistencyUnderConcurrency is the torn-read
// regression PR 4 documented as an accepted gap: a read overlapping a
// delta could observe the batch applied on some shards and not others.
// Under epochs every snapshot must correspond to EXACTLY one point of the
// batch history on every shard at once. The writer's batch sequence is
// pre-played on a mirror database to record the expected state per epoch;
// concurrent readers then pin snapshots mid-churn and their epoch number
// must fully determine everything they see. Runs under -race in CI.
func TestSnapshotCrossShardConsistencyUnderConcurrency(t *testing.T) {
	const (
		shards  = 8
		batches = 40
		ops     = 60
		readers = 4
	)
	w, sys, db := shardedWorkload(t, 300, 4)
	mirror := db.Clone()
	h, err := sys.Open(db, WithShards(shards))
	if err != nil {
		t.Fatal(err)
	}
	ch := w.NewChurn(mirror.Clone(), 77)

	// Pre-play the batch history: epoch seq -> expected view fingerprint
	// and expected answer of a battery of point queries.
	pqs := make([]*PreparedQuery, 6)
	for i := range pqs {
		pq, err := sys.Prepare(NewUCQ(w.Query(w.UID(i*11))), LangCQ)
		if err != nil {
			t.Fatal(err)
		}
		pqs[i] = pq
	}
	type expect struct {
		views   string
		answers []string
	}
	history := make([]expect, batches+1)
	batchIns := make([][]Op, batches)
	batchDel := make([][]Op, batches)
	record := func(epoch int) {
		views, err := sys.Materialize(mirror)
		if err != nil {
			t.Fatal(err)
		}
		e := expect{views: viewFingerprint(views)}
		for i := range pqs {
			direct, err := sys.EvalDirect(NewUCQ(w.Query(w.UID(i*11))), mirror)
			if err != nil {
				t.Fatal(err)
			}
			eval.SortRows(direct)
			e.answers = append(e.answers, fmt.Sprint(direct))
		}
		history[epoch] = e
	}
	record(0)
	for b := 0; b < batches; b++ {
		ins, del := ch.Batch(ops)
		batchIns[b], batchDel[b] = ins, del
		if _, err := mirror.ApplyDelta(ins, del); err != nil {
			t.Fatal(err)
		}
		record(b + 1)
	}

	var wg sync.WaitGroup
	stop := make(chan struct{})
	errCh := make(chan error, readers+1)
	checked := make([]int, readers)
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				snap := h.Snapshot()
				e := snap.Epoch()
				if e >= uint64(len(history)) {
					errCh <- fmt.Errorf("reader %d: epoch %d beyond the played history", r, e)
					return
				}
				want := history[e]
				if got := viewFingerprint(snap.Views()); got != want.views {
					errCh <- fmt.Errorf("reader %d: TORN READ — snapshot at epoch %d does not match that epoch's cross-shard state", r, e)
					return
				}
				for i, pq := range pqs {
					rows, _, err := pq.ExecuteOn(snap)
					if err != nil {
						errCh <- err
						return
					}
					eval.SortRows(rows)
					if fmt.Sprint(rows) != want.answers[i] {
						errCh <- fmt.Errorf("reader %d: query %d at epoch %d diverges from that epoch's state", r, i, e)
						return
					}
				}
				checked[r]++
			}
		}(r)
	}
	for b := 0; b < batches; b++ {
		if _, err := h.ApplyDelta(batchIns[b], batchDel[b]); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
	select {
	case err := <-errCh:
		t.Fatal(err)
	default:
	}
	total := 0
	for _, n := range checked {
		total += n
	}
	if total == 0 {
		t.Fatal("readers validated no snapshots — the race window was never exercised")
	}
}

// shardedWorkload builds the account/transaction fixture used by the
// cross-shard tests.
func shardedWorkload(t *testing.T, users, txns int) (*workload.Sharded, *System, *Database) {
	t.Helper()
	w := workload.NewSharded(8)
	sys, err := NewSystem(w.Schema, w.Access, w.Views(), w.M)
	if err != nil {
		t.Fatal(err)
	}
	return w, sys, w.Generate(users, txns, 17)
}

// TestSnapshotFetchAccounting pins the per-snapshot and per-handle
// accounting: per-call totals are exact and repeatable on a pinned
// snapshot, snapshot totals accumulate only that snapshot's traffic, and
// the handle totals accumulate everything.
func TestSnapshotFetchAccounting(t *testing.T) {
	_, m, l, _, p := liveMovieFixture(t, 200, 200)
	s1 := l.Snapshot()
	rows1, f1, err := s1.Execute(p)
	if err != nil {
		t.Fatal(err)
	}
	_, f2, err := s1.Execute(p)
	if err != nil {
		t.Fatal(err)
	}
	if f1 != f2 {
		t.Fatalf("repeat Execute on one snapshot fetched %d then %d — per-call attribution broke", f1, f2)
	}
	if got := s1.FetchedTuples(); got != f1+f2 {
		t.Fatalf("snapshot accounted %d, want %d", got, f1+f2)
	}
	s2 := l.Snapshot()
	if got := s2.FetchedTuples(); got != 0 {
		t.Fatalf("fresh snapshot starts with %d fetched tuples", got)
	}
	if got := l.FetchedTuples(); got != f1+f2 {
		t.Fatalf("handle accounted %d, want %d", got, f1+f2)
	}
	if len(rows1) == 0 && f1 > 2*m.N0 {
		t.Fatalf("fetch bound violated: %d", f1)
	}
}

// TestHandleClose pins Close semantics: writes fail, reads keep serving
// the final epoch, pinned snapshots are unaffected.
func TestHandleClose(t *testing.T) {
	for _, opts := range [][]OpenOption{nil, {WithShards(2)}} {
		sys, m := movieSystem(t)
		db := m.Generate(workload.MoviesParams{Persons: 150, Movies: 150, LikesPerPerson: 4, NASAShare: 8, Seed: 2})
		h, err := sys.Open(db, opts...)
		if err != nil {
			t.Fatal(err)
		}
		snap := h.Snapshot()
		before := viewFingerprint(h.Views())
		if err := h.Close(); err != nil {
			t.Fatal(err)
		}
		if _, err := h.ApplyDelta([]Op{{Rel: "rating", Row: Tuple{"m0", "5"}}}, nil); err != ErrClosed {
			t.Fatalf("ApplyDelta after Close: %v, want ErrClosed", err)
		}
		if got := viewFingerprint(h.Views()); got != before {
			t.Fatal("reads after Close must keep serving the final epoch")
		}
		if got := viewFingerprint(snap.Views()); got != before {
			t.Fatal("pinned snapshot changed after Close")
		}
	}
}

// TestDeprecatedEntryPointsStillServe keeps the deprecated constructors
// and executors compiling and behaving until external callers migrate.
func TestDeprecatedEntryPointsStillServe(t *testing.T) {
	w, sys, db := shardedWorkload(t, 120, 3)
	l, err := sys.OpenLive(db.Clone())
	if err != nil {
		t.Fatal(err)
	}
	sl, err := sys.OpenLiveSharded(db, 3)
	if err != nil {
		t.Fatal(err)
	}
	pq, err := sys.Prepare(NewUCQ(w.Query(w.UID(4))), LangCQ)
	if err != nil {
		t.Fatal(err)
	}
	want, _, err := pq.Execute(l)
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := pq.ExecuteSharded(sl)
	if err != nil {
		t.Fatal(err)
	}
	if !cq.RowsEqual(got, want) {
		t.Fatalf("deprecated path diverges: %v vs %v", got, want)
	}
}
