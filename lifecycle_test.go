package repro

import (
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/instance"
	"repro/internal/shard"
	"repro/internal/workload"
)

// desyncLive makes the handle's internal components disagree by slipping a
// row into the database behind the maintenance machinery's back: the next
// facade delete of that row is accepted by the database but detected as
// an out-of-sync retraction by the component named in which ("eng" —
// person rows are view inputs but not constraint keys, so the maintenance
// engine trips; "vix" — movie rows are ϕ1 keys and the versioned index
// trips first).
func desyncLive(t *testing.T, l *Live, which string) Op {
	t.Helper()
	var op Op
	switch which {
	case "eng":
		op = Op{Rel: "person", Row: Tuple{"ghost-p", "Ghost Person", "NASA"}}
	case "vix":
		op = Op{Rel: "movie", Row: Tuple{"ghost-m", "Ghost Movie", "MGM", "2001"}}
	default:
		t.Fatalf("unknown desync target %q", which)
	}
	if _, err := l.db.ApplyDelta([]Op{op}, nil); err != nil {
		t.Fatal(err)
	}
	return op
}

// TestPartialApplyFencesLive proves the single-instance fence: when a
// batch fails AFTER the database mutated (maintenance engine or fetch
// index rejects the delta), the handle must fence — later writes fail
// with ErrClosed while reads keep serving the last published epoch —
// because the writer-side components no longer describe one state.
func TestPartialApplyFencesLive(t *testing.T) {
	for _, which := range []string{"eng", "vix"} {
		t.Run(which, func(t *testing.T) {
			sys, m := movieSystem(t)
			db := m.Generate(workload.MoviesParams{Persons: 120, Movies: 120, LikesPerPerson: 4, NASAShare: 8, Seed: 2})
			h, err := sys.Open(db)
			if err != nil {
				t.Fatal(err)
			}
			l := h.(*Live)
			p := m.Fig1Plan()
			wantRows, _, err := l.Execute(p)
			if err != nil {
				t.Fatal(err)
			}
			wantViews := viewFingerprint(l.Views())
			wantSize := l.Size()

			op := desyncLive(t, l, which)
			_, err = l.ApplyDelta(nil, []Op{op})
			if err == nil {
				t.Fatal("deleting the desynced row must fail")
			}
			if !strings.Contains(err.Error(), "partial apply, handle fenced") {
				t.Fatalf("partial-apply error not marked as fencing: %v", err)
			}

			// Fenced: writes fail, including pure no-op batches.
			if _, err := l.ApplyDelta([]Op{{Rel: "person", Row: Tuple{"p-new", "New", "ESA"}}}, nil); !errors.Is(err, ErrClosed) {
				t.Fatalf("write after fence: got %v, want ErrClosed", err)
			}
			// Reads keep serving the last published epoch, untouched by the
			// torn batch.
			rows, _, err := l.Execute(p)
			if err != nil {
				t.Fatal(err)
			}
			if fmt.Sprint(rows) != fmt.Sprint(wantRows) {
				t.Fatal("fenced handle's answers drifted from the last published epoch")
			}
			if got := viewFingerprint(l.Views()); got != wantViews {
				t.Fatal("fenced handle's views drifted from the last published epoch")
			}
			if l.Size() != wantSize {
				t.Fatalf("fenced handle reports size %d, want the published %d", l.Size(), wantSize)
			}
			s := l.Snapshot()
			if got := viewFingerprint(s.Views()); got != wantViews {
				t.Fatal("snapshot after fence drifted")
			}
			if err := s.Close(); err != nil {
				t.Fatal(err)
			}
			// Close on a fenced handle is clean and idempotent.
			if err := l.Close(); err != nil {
				t.Fatalf("first Close: %v", err)
			}
			if err := l.Close(); err != nil {
				t.Fatalf("second Close must be a no-op nil, got %v", err)
			}
		})
	}
}

// TestValidationErrorDoesNotFence: a batch the database REJECTS before
// mutating anything (unknown relation, wrong arity) leaves the handle
// open — only post-mutation failures fence.
func TestValidationErrorDoesNotFence(t *testing.T) {
	for _, opts := range [][]OpenOption{nil, {WithShards(2)}} {
		t.Run(fmt.Sprintf("shards=%d", len(opts)*2), func(t *testing.T) {
			sys, m := movieSystem(t)
			db := m.Generate(workload.MoviesParams{Persons: 80, Movies: 80, LikesPerPerson: 3, NASAShare: 8, Seed: 4})
			h, err := sys.Open(db, opts...)
			if err != nil {
				t.Fatal(err)
			}
			defer h.Close()
			if _, err := h.ApplyDelta([]Op{{Rel: "nosuch", Row: Tuple{"x"}}}, nil); err == nil {
				t.Fatal("unknown relation must be rejected")
			}
			if _, err := h.ApplyDelta([]Op{{Rel: "person", Row: Tuple{"short"}}}, nil); err == nil {
				t.Fatal("arity mismatch must be rejected")
			}
			// Still open: a valid batch lands and publishes.
			st, err := h.ApplyDelta([]Op{{Rel: "person", Row: Tuple{"p-ok", "Still Open", "NASA"}}}, nil)
			if err != nil {
				t.Fatalf("handle fenced by a pure validation error: %v", err)
			}
			if st.Inserted != 1 {
				t.Fatalf("post-validation batch inserted %d rows, want 1", st.Inserted)
			}
		})
	}
}

// TestPartialApplyFencesSharded proves the sharded fence: any
// post-mutation failure surfaces wrapping shard.ErrTorn (here injected
// through the journal hook, which runs after every shard mutated) and
// fences the facade exactly like Close.
func TestPartialApplyFencesSharded(t *testing.T) {
	sys, m := movieSystem(t)
	db := m.Generate(workload.MoviesParams{Persons: 120, Movies: 120, LikesPerPerson: 4, NASAShare: 8, Seed: 6})
	h, err := sys.Open(db, WithShards(4))
	if err != nil {
		t.Fatal(err)
	}
	l := h.(*LiveSharded)
	p := m.Fig1Plan()
	wantRows, _, err := l.Execute(p)
	if err != nil {
		t.Fatal(err)
	}
	wantViews := viewFingerprint(l.Views())

	// The handle is non-durable, so the journal hook is free for fault
	// injection: it runs only after every shard applied its slice.
	boom := errors.New("boom")
	l.sh.SetJournal(func(uint64, *instance.Applied) error { return boom })
	_, err = l.ApplyDelta([]Op{{Rel: "person", Row: Tuple{"p-torn", "Torn", "NASA"}}}, nil)
	if err == nil {
		t.Fatal("journal failure must surface")
	}
	if !errors.Is(err, shard.ErrTorn) {
		t.Fatalf("post-mutation failure must wrap shard.ErrTorn, got: %v", err)
	}
	if !errors.Is(err, boom) {
		t.Fatalf("cause lost from the torn error chain: %v", err)
	}

	if _, err := l.ApplyDelta([]Op{{Rel: "person", Row: Tuple{"p-after", "After", "ESA"}}}, nil); !errors.Is(err, ErrClosed) {
		t.Fatalf("write after torn fence: got %v, want ErrClosed", err)
	}
	rows, _, err := l.Execute(p)
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(rows) != fmt.Sprint(wantRows) {
		t.Fatal("fenced sharded handle's answers drifted")
	}
	if got := viewFingerprint(l.Views()); got != wantViews {
		t.Fatal("fenced sharded handle's views drifted")
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close on fenced sharded handle: %v", err)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("second Close must be a no-op nil, got %v", err)
	}
}

// TestCloseIdempotent pins Handle.Close's contract on both engines,
// durable or not: the first call tears down, every later call is a no-op
// returning nil, and writes after Close fail with ErrClosed.
func TestCloseIdempotent(t *testing.T) {
	cases := []struct {
		name    string
		shards  int
		durable bool
	}{
		{"live", 0, false},
		{"sharded", 2, false},
		{"live-durable", 0, true},
		{"sharded-durable", 2, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			sys, m := movieSystem(t)
			db := m.Generate(workload.MoviesParams{Persons: 60, Movies: 60, LikesPerPerson: 3, NASAShare: 8, Seed: 8})
			var opts []OpenOption
			if tc.shards > 0 {
				opts = append(opts, WithShards(tc.shards))
			}
			if tc.durable {
				opts = append(opts, WithDurability(t.TempDir()))
			}
			h, err := sys.Open(db, opts...)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := h.ApplyDelta([]Op{{Rel: "person", Row: Tuple{"p-x", "X", "NASA"}}}, nil); err != nil {
				t.Fatal(err)
			}
			if err := h.Close(); err != nil {
				t.Fatalf("first Close: %v", err)
			}
			for i := 0; i < 3; i++ {
				if err := h.Close(); err != nil {
					t.Fatalf("Close #%d must be a no-op nil, got %v", i+2, err)
				}
			}
			if _, err := h.ApplyDelta([]Op{{Rel: "person", Row: Tuple{"p-y", "Y", "ESA"}}}, nil); !errors.Is(err, ErrClosed) {
				t.Fatalf("write after Close: got %v, want ErrClosed", err)
			}
		})
	}
}

// TestCloseAfterFenceSkipsFinalCheckpoint: a fenced durable handle's
// in-memory state is AHEAD of the journal (the torn batch mutated the
// database but never reached the log), so Close must not write its usual
// final checkpoint — recovery must come from the journal's truth. The
// checkpoint interval is disabled, so a recovery that replays exactly the
// k accepted batches proves no stale checkpoint was folded; the clean
// control handle shows the contrast (final checkpoint written, zero
// replay).
func TestCloseAfterFenceSkipsFinalCheckpoint(t *testing.T) {
	const k = 5
	seed := func(t *testing.T, dir string) (*System, string, int) {
		t.Helper()
		sys, m := movieSystem(t)
		db := m.Generate(workload.MoviesParams{Persons: 80, Movies: 80, LikesPerPerson: 3, NASAShare: 8, Seed: 10})
		h, err := sys.Open(db, WithDurability(dir), WithCheckpointEvery(0))
		if err != nil {
			t.Fatal(err)
		}
		l := h.(*Live)
		for i := 0; i < k; i++ {
			if _, err := l.ApplyDelta([]Op{{Rel: "person", Row: Tuple{fmt.Sprintf("d%d", i), "Durable", "NASA"}}}, nil); err != nil {
				t.Fatal(err)
			}
		}
		want := viewFingerprint(l.Views())
		size := l.Size()

		op := desyncLive(t, l, "eng")
		if _, err := l.ApplyDelta(nil, []Op{op}); err == nil {
			t.Fatal("desynced delete must fence")
		}
		if err := l.Close(); err != nil {
			t.Fatalf("Close on the fenced handle: %v", err)
		}
		return sys, want, size
	}

	dir := t.TempDir()
	sys, want, size := seed(t, dir)
	h2, err := sys.Open(NewDatabase(sys.Schema), WithDurability(dir), WithCheckpointEvery(0))
	if err != nil {
		t.Fatal(err)
	}
	defer h2.Close()
	l2 := h2.(*Live)
	if got := l2.Recovery().ReplayedEpochs; got != k {
		t.Fatalf("recovery replayed %d epochs, want %d — a final checkpoint was written despite the fence", got, k)
	}
	// The recovered state is the last PUBLISHED epoch: the fenced batch's
	// database mutations (the ghost insert and its delete) never reached
	// the journal and must be gone.
	if got := viewFingerprint(l2.Views()); got != want {
		t.Fatal("recovered views differ from the last published epoch")
	}
	if l2.Size() != size {
		t.Fatalf("recovered size %d, want %d (torn batch leaked into recovery)", l2.Size(), size)
	}

	// Contrast: a handle closed CLEANLY folds a final checkpoint, so the
	// next open replays nothing.
	dir2 := t.TempDir()
	sys2, m2 := movieSystem(t)
	db2 := m2.Generate(workload.MoviesParams{Persons: 80, Movies: 80, LikesPerPerson: 3, NASAShare: 8, Seed: 10})
	hc, err := sys2.Open(db2, WithDurability(dir2), WithCheckpointEvery(0))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < k; i++ {
		if _, err := hc.ApplyDelta([]Op{{Rel: "person", Row: Tuple{fmt.Sprintf("d%d", i), "Durable", "NASA"}}}, nil); err != nil {
			t.Fatal(err)
		}
	}
	if err := hc.Close(); err != nil {
		t.Fatal(err)
	}
	hr, err := sys2.Open(NewDatabase(sys2.Schema), WithDurability(dir2), WithCheckpointEvery(0))
	if err != nil {
		t.Fatal(err)
	}
	defer hr.Close()
	if got := hr.(*Live).Recovery().ReplayedEpochs; got != 0 {
		t.Fatalf("clean close must fold a final checkpoint; recovery replayed %d epochs", got)
	}
}

// TestAtDifferential drives bounded churn while recording every published
// epoch's fingerprint, then checks the retention ring's contract on both
// engines: At(seq) inside the window answers EXACTLY as epoch seq did
// when it was current; outside the window it fails wrapping
// ErrEpochRetired; and concurrent At readers racing the writer see either
// a historical match or that error, never a torn state.
func TestAtDifferential(t *testing.T) {
	const retain = 6
	for _, shards := range []int{0, 1, 8} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			sys, m := movieSystem(t)
			db := m.Generate(workload.MoviesParams{Persons: 200, Movies: 200, LikesPerPerson: 4, NASAShare: 8, Seed: 5})
			ch := workload.NewSwapChurn(m, db, workload.SwapChurnParams{Seed: 13})
			opts := []OpenOption{WithRetainEpochs(retain)}
			if shards > 0 {
				opts = append(opts, WithShards(shards))
			}
			h, err := sys.Open(db, opts...)
			if err != nil {
				t.Fatal(err)
			}
			defer h.Close()

			var mu sync.Mutex
			history := map[uint64]string{}
			var latest uint64
			fingerprint := func(s *Snapshot) string {
				return fmt.Sprintf("%s|%d", viewFingerprint(s.Views()), s.Size())
			}
			record := func() {
				s := h.Snapshot()
				defer s.Close()
				mu.Lock()
				history[s.Epoch()] = fingerprint(s)
				latest = s.Epoch()
				mu.Unlock()
			}
			record()

			// Phase 1: sequential differential. After every batch the whole
			// retained window must match history and the epoch just beyond it
			// must be gone.
			const batches = 3 * retain
			for b := 0; b < batches; b++ {
				ins, del := ch.Batch(25)
				if _, err := h.ApplyDelta(ins, del); err != nil {
					t.Fatal(err)
				}
				record()
				cur := latest
				lo := uint64(0)
				if cur+1 >= retain {
					lo = cur + 1 - retain
				}
				for seq := lo; seq <= cur; seq++ {
					s, err := h.At(seq)
					if err != nil {
						t.Fatalf("batch %d: At(%d) in window [%d,%d]: %v", b, seq, lo, cur, err)
					}
					if got := fingerprint(s); got != history[seq] {
						t.Fatalf("batch %d: At(%d) diverges from epoch %d's recorded state", b, seq, seq)
					}
					s.Close()
				}
				if lo > 0 {
					if _, err := h.At(lo - 1); !errors.Is(err, ErrEpochRetired) {
						t.Fatalf("batch %d: At(%d) outside the window: got %v, want ErrEpochRetired", b, lo-1, err)
					}
				}
			}

			// Phase 2: concurrent point-in-time readers racing the writer.
			stop := make(chan struct{})
			var wg sync.WaitGroup
			for r := 0; r < 4; r++ {
				wg.Add(1)
				go func(seed int64) {
					defer wg.Done()
					rng := rand.New(rand.NewSource(seed))
					for {
						select {
						case <-stop:
							return
						default:
						}
						mu.Lock()
						cur := latest
						mu.Unlock()
						span := uint64(2 * retain)
						var seq uint64
						if cur > span {
							seq = cur - span + uint64(rng.Intn(int(span)+1))
						} else {
							seq = uint64(rng.Intn(int(cur) + 1))
						}
						s, err := h.At(seq)
						if err != nil {
							if !errors.Is(err, ErrEpochRetired) {
								t.Errorf("At(%d): %v", seq, err)
								return
							}
							continue
						}
						got := fingerprint(s)
						s.Close()
						mu.Lock()
						want := history[seq]
						mu.Unlock()
						if got != want {
							t.Errorf("concurrent At(%d) diverges from recorded history", seq)
							return
						}
					}
				}(int64(100 + r))
			}
			for b := 0; b < batches; b++ {
				ins, del := ch.Batch(25)
				if _, err := h.ApplyDelta(ins, del); err != nil {
					t.Fatal(err)
				}
				record()
			}
			close(stop)
			wg.Wait()

			lc := h.Lifecycle()
			if lc.LiveSnapshots != 0 {
				t.Fatalf("%d snapshots leaked", lc.LiveSnapshots)
			}
			if lc.RetainedEpochs != retain {
				t.Fatalf("ring holds %d epochs, want %d", lc.RetainedEpochs, retain)
			}
			if lc.ReclaimedEpochs == 0 {
				t.Fatal("no epoch was ever reclaimed despite churn far past the retention bound")
			}
		})
	}
}

// TestChurnMemoryBounded is the in-tree leak regression behind the
// benchrun churnmem gate: under closed-universe swap churn (|D| and the
// dictionary plateau by construction) with snapshots taken and closed
// along the way, live heap after thousands of epochs must stay near the
// post-warmup floor. Before the lifecycle layer, superseded epochs and
// their COW slack accumulated without bound.
func TestChurnMemoryBounded(t *testing.T) {
	if testing.Short() {
		t.Skip("heap-plateau measurement: skipped in -short")
	}
	sys, m := movieSystem(t)
	db := m.Generate(workload.MoviesParams{Persons: 1200, Movies: 1200, LikesPerPerson: 4, NASAShare: 10, Seed: 9})
	ch := workload.NewSwapChurn(m, db, workload.SwapChurnParams{Seed: 17})
	h, err := sys.Open(db, WithRetainEpochs(4))
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()
	p := m.Fig1Plan()

	step := func(b int) {
		ins, del := ch.Batch(40)
		if _, err := h.ApplyDelta(ins, del); err != nil {
			t.Fatal(err)
		}
		if b%8 == 0 {
			s := h.Snapshot()
			if _, _, err := s.Execute(p); err != nil {
				t.Fatal(err)
			}
			s.Close()
		}
	}
	liveHeap := func() int64 {
		runtime.GC()
		runtime.GC()
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		return int64(ms.HeapAlloc)
	}

	const warmup, main = 150, 1200
	for b := 0; b < warmup; b++ {
		step(b)
	}
	floor := liveHeap()
	for b := 0; b < main; b++ {
		step(b)
	}
	steady := liveHeap()

	// Generous bound (the race detector and test-process noise inflate
	// absolute heap): catching the pre-lifecycle LINEAR growth, which at
	// 1200 epochs past warmup overshoots any constant slack.
	limit := 2*floor + 32<<20
	if steady > limit {
		t.Fatalf("heap grew from %d to %d after %d churn epochs (limit %d): epoch state is leaking", floor, steady, main, limit)
	}
	lc := h.Lifecycle()
	if lc.LiveSnapshots != 0 {
		t.Fatalf("%d snapshots leaked", lc.LiveSnapshots)
	}
	if lc.ReclaimedEpochs == 0 {
		t.Fatal("no epochs reclaimed: the retention ring is not releasing")
	}
	if lc.CompactionPasses == 0 {
		t.Fatal("no compaction pass ran despite reclaimed epochs")
	}
}

// TestSnapshotFinalizerBackstop: snapshots dropped without Close are
// released by the GC finalizer — best-effort, but it must eventually fire
// and both release the epoch pins and count itself, so leaks are
// observable and superseded epochs still die.
func TestSnapshotFinalizerBackstop(t *testing.T) {
	sys, m := movieSystem(t)
	db := m.Generate(workload.MoviesParams{Persons: 60, Movies: 60, LikesPerPerson: 3, NASAShare: 8, Seed: 12})
	h, err := sys.Open(db)
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()

	const dropped = 8
	func() {
		for i := 0; i < dropped; i++ {
			_ = h.Snapshot() // deliberately not closed
		}
	}()
	deadline := time.Now().Add(10 * time.Second)
	for {
		runtime.GC()
		lc := h.Lifecycle()
		if lc.FinalizedSnapshots >= dropped && lc.LiveSnapshots == 0 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("finalizer backstop never caught up: %+v", lc)
		}
		time.Sleep(20 * time.Millisecond)
	}
}
