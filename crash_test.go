package repro

import (
	"bufio"
	"fmt"
	"math/rand"
	"os"
	"os/exec"
	"strconv"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/workload"
)

// Crash-injection harness: the child half of the test (re-executed test
// binary) opens a durable handle and applies a deterministic batch stream,
// printing "acked N" after each accepted batch; the parent SIGKILLs it at
// a randomized point mid-stream, recovers the directory in-process, and
// differentially compares the recovered handle against an in-memory oracle
// fed the same stream.
//
// The child is selected by CRASH_CHILD=1 (plus CRASH_DIR / CRASH_P /
// CRASH_SEED) so a normal `go test` run skips it.

const (
	crashUsers   = 50
	crashTxns    = 6
	crashBatch   = 20
	crashBatches = 400
)

// crashFixture rebuilds the deterministic system + seed database + churn
// stream both halves of the harness share.
func crashFixture(seed int64) (*workload.Sharded, *System, *Database, *workload.ShardedChurn, error) {
	w := workload.NewSharded(8)
	sys, err := NewSystem(w.Schema, w.Access, w.Views(), w.M)
	if err != nil {
		return nil, nil, nil, nil, err
	}
	db := w.Generate(crashUsers, crashTxns, 17)
	ch := w.NewChurn(db.Clone(), seed)
	return w, sys, db, ch, nil
}

func crashOpts(p int) []OpenOption {
	opts := []OpenOption{WithCheckpointEvery(7)}
	if p > 1 {
		opts = append(opts, WithShards(p))
	}
	return opts
}

// TestCrashChildHelper is the child process body, not a test: it journals
// batches until killed. Selected via -test.run by the parent only.
func TestCrashChildHelper(t *testing.T) {
	if os.Getenv("CRASH_CHILD") != "1" {
		t.Skip("crash-injection child helper; driven by TestCrashRecoveryDifferential")
	}
	dir := os.Getenv("CRASH_DIR")
	p, _ := strconv.Atoi(os.Getenv("CRASH_P"))
	seed, _ := strconv.ParseInt(os.Getenv("CRASH_SEED"), 10, 64)
	_, sys, db, ch, err := crashFixture(seed)
	if err != nil {
		fmt.Println("child error:", err)
		os.Exit(2)
	}
	h, err := sys.Open(db, append(crashOpts(p), WithDurability(dir))...)
	if err != nil {
		fmt.Println("child error:", err)
		os.Exit(2)
	}
	fmt.Println("ready")
	for b := 1; b <= crashBatches; b++ {
		ins, del := ch.Batch(crashBatch)
		if _, err := h.ApplyDelta(ins, del); err != nil {
			fmt.Println("child error:", err)
			os.Exit(2)
		}
		fmt.Println("acked", b)
	}
	fmt.Println("done")
	os.Exit(0)
}

// TestCrashRecoveryDifferential kill-and-restarts the durable engines at
// randomized points and checks recovery is exact: the recovered handle
// must match an in-memory oracle fed the first E batches of the same
// deterministic stream, where E is the recovered epoch — and with inline
// fsync (zero group-commit window) E must cover every acked batch.
// RECOVER_ROUNDS scales the number of kill points (CI sets it higher).
func TestCrashRecoveryDifferential(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns child processes")
	}
	rounds := 3
	if s := os.Getenv("RECOVER_ROUNDS"); s != "" {
		if n, err := strconv.Atoi(s); err == nil && n > 0 {
			rounds = n
		}
	}
	rng := rand.New(rand.NewSource(time.Now().UnixNano()))
	for _, p := range []int{1, 8} {
		t.Run(fmt.Sprintf("P=%d", p), func(t *testing.T) {
			for round := 0; round < rounds; round++ {
				runCrashRound(t, rng, p, int64(1000*p+round))
			}
		})
	}
}

func runCrashRound(t *testing.T, rng *rand.Rand, p int, seed int64) {
	t.Helper()
	dir := t.TempDir()
	cmd := exec.Command(os.Args[0], "-test.run=^TestCrashChildHelper$", "-test.v")
	cmd.Env = append(os.Environ(),
		"CRASH_CHILD=1",
		"CRASH_DIR="+dir,
		"CRASH_P="+strconv.Itoa(p),
		"CRASH_SEED="+strconv.FormatInt(seed, 10),
	)
	out, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}

	// Track the child's progress; arm the kill only once it is serving
	// (initial checkpoint durable), so every round exercises a mid-stream
	// crash rather than a half-initialized directory.
	var lastAcked atomic.Int64
	ready := make(chan struct{})
	scanDone := make(chan error, 1)
	go func() {
		sc := bufio.NewScanner(out)
		readySeen := false
		for sc.Scan() {
			line := strings.TrimSpace(sc.Text())
			switch {
			case line == "ready":
				readySeen = true
				close(ready)
			case strings.HasPrefix(line, "acked "):
				if n, err := strconv.Atoi(strings.TrimPrefix(line, "acked ")); err == nil {
					lastAcked.Store(int64(n))
				}
			case strings.HasPrefix(line, "child error:"):
				scanDone <- fmt.Errorf("%s", line)
				return
			}
		}
		if !readySeen {
			close(ready)
		}
		scanDone <- nil
	}()

	<-ready
	time.Sleep(time.Duration(rng.Intn(120)) * time.Millisecond)
	_ = cmd.Process.Kill()
	_ = cmd.Wait()
	if err := <-scanDone; err != nil {
		t.Fatal(err)
	}
	acked := int(lastAcked.Load())

	// Recover in-process and compare against the oracle at the recovered
	// epoch. Epoch k is batch k (epoch 0 is the opening state).
	w, sys, db, ch, err := crashFixture(seed)
	if err != nil {
		t.Fatal(err)
	}
	h, err := sys.Open(NewDatabase(sys.Schema), append(crashOpts(p), WithDurability(dir))...)
	if err != nil {
		t.Fatalf("recovery after kill at acked=%d failed: %v", acked, err)
	}
	defer h.Close()
	epoch := int(h.Snapshot().Epoch())
	if epoch < acked {
		t.Fatalf("recovered epoch %d lost acked batch %d (inline fsync promises every ack durable)", epoch, acked)
	}
	if epoch > crashBatches {
		t.Fatalf("recovered epoch %d beyond the stream (%d batches)", epoch, crashBatches)
	}
	oracle, err := sys.Open(db, crashOpts(p)...)
	if err != nil {
		t.Fatal(err)
	}
	defer oracle.Close()
	for b := 1; b <= epoch; b++ {
		ins, del := ch.Batch(crashBatch)
		if _, err := oracle.ApplyDelta(ins, del); err != nil {
			t.Fatal(err)
		}
	}
	assertHandlesEqual(t, w, h, oracle, crashUsers)
	t.Logf("P=%d seed=%d: killed at acked=%d, recovered epoch=%d (replayed %d)", p, seed, acked, epoch, recoveryOf(t, h).ReplayedEpochs)
}
