package repro

import (
	"fmt"
	"sort"

	"repro/internal/eval"
	"repro/internal/instance"
	"repro/internal/intern"
	"repro/internal/shard"
	"repro/internal/wal"
)

// RecoveryInfo reports what opening a durable directory had to do to get
// back to serving: the checkpoint it started from, the log suffix it
// replayed on top, and whether an incomplete tail (a batch cut mid-write
// by a crash) was discarded. RecoveryInfo is a plain value — safe to
// copy, retains no reference to engine state.
type RecoveryInfo struct {
	CheckpointSeq  uint64 // epoch the loaded checkpoint serialized
	ReplayedEpochs int    // journal records replayed after the checkpoint
	ReplayedOps    int    // physical ops those records carried
	TornTail       bool   // an incomplete final record was discarded
}

// walOptions derives the log header fingerprints from the system: durable
// state written for a different schema or view set must never be replayed
// here — the interned IDs and plan constants would not line up.
func (sys *System) walOptions(cfg openConfig) wal.Options {
	names := make([]string, 0, len(sys.Views))
	for name := range sys.Views {
		names = append(names, name)
	}
	sort.Strings(names)
	parts := make([]string, 0, len(names))
	for _, n := range names {
		parts = append(parts, n+"="+sys.Views[n].String())
	}
	return wal.Options{
		SchemaFP:    wal.Fingerprint(sys.Schema.String()),
		ViewsFP:     wal.Fingerprint(parts...),
		GroupCommit: cfg.groupCommit,
	}
}

// restoreCheckpointDB rebuilds the dictionary and table shadows serialized
// in a checkpoint. The dictionary prefix restores the exact interned IDs
// (dense, first-intern order), which is what makes log replay reassign
// identical IDs afterwards.
func (sys *System) restoreCheckpointDB(ck *wal.Checkpoint) (*Database, *intern.Dict, error) {
	dict, ok := intern.FromStrings(ck.Dict)
	if !ok {
		return nil, nil, fmt.Errorf("repro: recover: checkpoint dictionary has duplicate strings")
	}
	db := instance.NewDatabaseWith(sys.Schema, dict)
	for _, t := range ck.Tables {
		if err := db.RestoreRows(t.Rel, t.Rows); err != nil {
			return nil, nil, fmt.Errorf("repro: recover: %w", err)
		}
	}
	if ck.Stats == nil {
		return nil, nil, fmt.Errorf("repro: recover: checkpoint carries no statistics")
	}
	return db, dict, nil
}

// decodeReplayOps turns one journal record back into a facade batch. The
// record's dictionary growth is re-interned FIRST, in journal order, and
// each string must land on exactly the ID it had when journaled — any skew
// means the directory does not belong to this state and replay must stop
// rather than silently misbind rows.
func decodeReplayOps(dict *intern.Dict, r *wal.Record) (inserts, deletes []Op, err error) {
	for _, s := range r.Dict {
		want := dict.Len()
		if id := dict.ID(s); int(id) != want {
			return nil, nil, fmt.Errorf("repro: replay epoch %d: dictionary determinism violated: %q interned as id %d, journal expects %d", r.Seq, s, id, want)
		}
	}
	n := dict.Len()
	mk := func(ops []wal.Op) ([]Op, error) {
		out := make([]Op, len(ops))
		for i, op := range ops {
			for _, id := range op.Row {
				if int(id) >= n {
					return nil, fmt.Errorf("repro: replay epoch %d: row references id %d beyond dictionary size %d", r.Seq, id, n)
				}
			}
			out[i] = Op{Rel: r.Rels[op.Rel].Name, Row: Tuple(dict.Decode(op.Row))}
		}
		return out, nil
	}
	if deletes, err = mk(r.Deletes); err != nil {
		return nil, nil, err
	}
	if inserts, err = mk(r.Inserts); err != nil {
		return nil, nil, err
	}
	return inserts, deletes, nil
}

// replayInto drives the recovered log suffix through a handle's normal
// ApplyDelta (journaling still detached), validating after every record
// that the replay applied exactly the ops the journal recorded.
func replayInto(rec *wal.Recovered, dict *intern.Dict, apply func(inserts, deletes []Op) (DeltaStats, error)) (RecoveryInfo, error) {
	info := RecoveryInfo{CheckpointSeq: rec.Checkpoint.Seq, TornTail: rec.TornTail}
	for _, r := range rec.Records {
		ins, dels, err := decodeReplayOps(dict, r)
		if err != nil {
			return info, err
		}
		st, err := apply(ins, dels)
		if err != nil {
			return info, fmt.Errorf("repro: replay epoch %d: %w", r.Seq, err)
		}
		if st.Inserted != len(r.Inserts) || st.Deleted != len(r.Deletes) {
			return info, fmt.Errorf("repro: replay epoch %d diverged: applied %d inserts/%d deletes, journal recorded %d/%d",
				r.Seq, st.Inserted, st.Deleted, len(r.Inserts), len(r.Deletes))
		}
		info.ReplayedEpochs++
		info.ReplayedOps += len(r.Inserts) + len(r.Deletes)
	}
	return info, nil
}

// openLiveDurable opens (or recovers) the single-instance engine over a
// durable directory.
func (sys *System) openLiveDurable(db *Database, cfg openConfig) (*Live, error) {
	log, rec, err := wal.Open(cfg.durDir, sys.walOptions(cfg))
	if err != nil {
		return nil, err
	}
	if rec == nil {
		// Fresh directory: serve the given database and checkpoint the
		// opening epoch so the log has a recovery base.
		l, err := sys.openLive(db, cfg)
		if err != nil {
			log.Close()
			return nil, err
		}
		log.SetMetrics(walMetrics(l.met))
		l.wal, l.ckptEvery = log, cfg.ckptEvery
		if err := l.checkpointLocked(); err != nil {
			l.wal = nil
			log.Close()
			return nil, fmt.Errorf("repro: initial checkpoint: %w", err)
		}
		return l, nil
	}
	if db.Size() != 0 || db.Dict.Len() != 0 {
		log.Close()
		return nil, fmt.Errorf("repro: %s holds durable state; recovery requires an empty database", cfg.durDir)
	}
	l, err := sys.restoreLive(rec, cfg)
	if err != nil {
		log.Close()
		return nil, err
	}
	// Journaling attaches only after replay: the replayed batches are
	// already in the log, and the counter makes them count toward the next
	// periodic checkpoint so a crash-loop cannot replay unboundedly.
	log.SetMetrics(walMetrics(l.met))
	l.wal, l.ckptEvery, l.sinceCkpt = log, cfg.ckptEvery, len(rec.Records)
	return l, nil
}

// restoreLive rebuilds a Live handle from a checkpoint plus log suffix.
func (sys *System) restoreLive(rec *wal.Recovered, cfg openConfig) (*Live, error) {
	ck := rec.Checkpoint
	db, dict, err := sys.restoreCheckpointDB(ck)
	if err != nil {
		return nil, err
	}
	var eng *eval.DeltaEngine
	if len(ck.Views) == 0 && len(sys.Views) > 0 {
		// Logical checkpoint (written by the sharded engine): no extent
		// section, so materialize the views by full enumeration.
		eng, err = eval.NewDeltaEngine(db, sys.Views)
	} else {
		extents := make(map[string]eval.Extent, len(ck.Views))
		for _, v := range ck.Views {
			extents[v.Name] = eval.Extent{Rows: v.Rows, Counts: v.Counts}
		}
		eng, err = eval.NewDeltaEngineWithExtents(db, sys.Views, extents)
	}
	if err != nil {
		return nil, fmt.Errorf("repro: recover: %w", err)
	}
	vix, err := instance.BuildVIndex(db, sys.Access)
	if err != nil {
		return nil, err
	}
	met := newCoreFor(cfg, 0)
	l := &Live{
		sys: sys, id: liveIDs.Add(1), cfg: cfg, db: db, eng: eng, vix: vix,
		seq: ck.Seq, statsVer: ck.StatsVer, statsChurn: ck.StatsChurn,
		lc: newLifecycle(cfg.retainEpochs, met), met: met,
	}
	l.registerGauges()
	views := make(map[string][][]uint32, len(sys.Views))
	for name := range sys.Views {
		views[name] = eng.PublishExtentIDs(name)
	}
	l.publishLocked(views, ck.Stats)
	info, err := replayInto(rec, dict, l.ApplyDelta)
	if err != nil {
		return nil, err
	}
	l.recovery = info
	return l, nil
}

// openShardedDurable opens (or recovers) the sharded engine over a durable
// directory. One log serves all shards: the journal hook receives each
// batch's combined physical ops (deletes then inserts, in shard order)
// before the cross-shard epoch publishes, and replay routes them through
// the normal per-shard paths so recovery reproduces the same epochs.
func (sys *System) openShardedDurable(db *Database, cfg openConfig) (*LiveSharded, error) {
	log, rec, err := wal.Open(cfg.durDir, sys.walOptions(cfg))
	if err != nil {
		return nil, err
	}
	if rec == nil {
		l, err := sys.openSharded(db, cfg)
		if err != nil {
			log.Close()
			return nil, err
		}
		log.SetMetrics(walMetrics(l.met))
		l.wal, l.ckptEvery = log, cfg.ckptEvery
		if err := l.checkpointLocked(); err != nil {
			l.wal = nil
			log.Close()
			return nil, fmt.Errorf("repro: initial checkpoint: %w", err)
		}
		l.attachJournal(log)
		return l, nil
	}
	if db.Size() != 0 || db.Dict.Len() != 0 {
		log.Close()
		return nil, fmt.Errorf("repro: %s holds durable state; recovery requires an empty database", cfg.durDir)
	}
	l, err := sys.restoreSharded(rec, cfg)
	if err != nil {
		log.Close()
		return nil, err
	}
	log.SetMetrics(walMetrics(l.met))
	l.wal, l.ckptEvery, l.sinceCkpt = log, cfg.ckptEvery, len(rec.Records)
	l.attachJournal(log)
	return l, nil
}

// attachJournal hooks the shard engine's pre-publish journal point to the
// log. The dictionary is the shared one all shards intern into, so each
// record's growth section captures the realized (post-routing) intern
// order — exactly what replay needs to reassign identical IDs.
func (l *LiveSharded) attachJournal(log *wal.Log) {
	dict := l.sh.Dict()
	l.sh.SetJournal(func(seq uint64, a *instance.Applied) error {
		return log.Append(dict, seq, a)
	})
}

// restoreSharded rebuilds a LiveSharded handle from a logical checkpoint
// plus log suffix. The checkpoint's tables are the per-shard shadows
// concatenated in shard order; re-routing them by the same hash reproduces
// each shard's contents and row order, and the restored statistics plus
// churn counter make every replayed drift decision identical too.
func (sys *System) restoreSharded(rec *wal.Recovered, cfg openConfig) (*LiveSharded, error) {
	ck := rec.Checkpoint
	db, dict, err := sys.restoreCheckpointDB(ck)
	if err != nil {
		return nil, err
	}
	met := newCoreFor(cfg, cfg.shards)
	sh, err := shard.Open(db, sys.Schema, sys.Access, sys.Views, shard.Config{
		Shards:         cfg.shards,
		StatsDriftFrac: cfg.statsDrift,
		StatsMinChurn:  cfg.statsMinChurn,
		InitialSeq:     ck.Seq,
		Restored:       &shard.RestoredStats{Stats: ck.Stats, StatsVer: ck.StatsVer, StatsChurn: ck.StatsChurn},
		Probes:         shardProbes(met),
	})
	if err != nil {
		return nil, fmt.Errorf("repro: recover: %w", err)
	}
	l := &LiveSharded{sys: sys, id: liveIDs.Add(1), sh: sh, lc: newLifecycle(cfg.retainEpochs, met), met: met}
	l.registerGauges()
	// The checkpoint's epoch enters the ring before replay, so the replayed
	// batches retire it through the normal eviction path.
	l.publishEpoch()
	info, err := replayInto(rec, dict, l.ApplyDelta)
	if err != nil {
		return nil, err
	}
	l.recovery = info
	return l, nil
}
