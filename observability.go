package repro

import (
	"net/http"

	"repro/internal/obs"
)

// Metrics is a point-in-time snapshot of a handle's metrics, returned
// by Handle.Metrics: counters, gauges sampled from the authoritative
// engine state at call time, and latency histograms reduced to
// count/sum/p50/p99. It is a plain value — safe to copy, retains no
// reference to live engine state, and never changes after it is
// returned. See the README's "Observability" section for the catalog
// of metric names.
type Metrics = obs.Snapshot

// HistogramMetric is the per-histogram slice of a Metrics snapshot
// (count, sum, p50, p99). Plain value; safe to copy.
type HistogramMetric = obs.HistogramSnapshot

// QueryTrace is the full record of one slow plan execution, captured
// by the slow-query log (WithSlowQueryThreshold): the canonical query
// key and frontier candidate (for prepared executions), the rendered
// plan, the epoch it read, end-to-end latency, answer cardinality, and
// the per-access-constraint probe/row breakdown whose Rows sum equals
// the execution's fetched-tuple count. A QueryTrace is a plain value
// copy; it retains no reference to engine state.
type QueryTrace = obs.Trace

// GroupTrace is the per-access-constraint slice of a QueryTrace. Plain
// value; safe to copy.
type GroupTrace = obs.GroupTrace

// DebugHandler returns an opt-in HTTP handler exposing the handle's
// live metrics and slow-query log, intended to be mounted at
// /debug/repro:
//
//	mux.Handle("/debug/repro", repro.DebugHandler(h))
//	mux.Handle("/debug/repro/", repro.DebugHandler(h))
//
// GET at the mount point serves an expvar-style JSON document
// (counters, gauges, histogram quantiles, slow-query traces); the
// /metrics suffix — or ?format=prometheus — serves the Prometheus text
// exposition; the /slow suffix serves just the traces. The handler
// only takes snapshots: serving it never blocks ApplyDelta or readers.
// On a handle opened WithoutMetrics the handler serves empty documents.
func DebugHandler(h Handle) http.Handler {
	return obs.HTTPHandler(h.metricsCore())
}
