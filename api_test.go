package repro

import (
	"testing"

	"repro/internal/fo"
	"repro/internal/workload"
)

func movieSystem(t *testing.T) (*System, *workload.Movies) {
	t.Helper()
	m := workload.NewMovies(30)
	sys, err := NewSystem(m.Schema, m.Access, m.Views(), 11)
	if err != nil {
		t.Fatal(err)
	}
	return sys, m
}

func TestSystemValidation(t *testing.T) {
	m := workload.NewMovies(30)
	// A constraint on a missing relation must be rejected.
	badA := NewAccessSchema(NewConstraint("nope", []string{"x"}, []string{"y"}, 1))
	if _, err := NewSystem(m.Schema, badA, nil, 4); err == nil {
		t.Fatal("invalid access schema must be rejected")
	}
	// A view over a missing relation must be rejected.
	badV := map[string]*UCQ{"V": NewUCQ(NewCQ([]Term{Var("x")}, []Atom{NewAtom("nope", Var("x"))}))}
	if _, err := NewSystem(m.Schema, m.Access, badV, 4); err == nil {
		t.Fatal("invalid view must be rejected")
	}
}

func TestSystemEndToEnd(t *testing.T) {
	sys, m := movieSystem(t)
	res := sys.CheckToppedCQ(mustParse(t, `Qxi(mid) :- movie(mid, y, "Universal", "2014"), V1(mid), rating(mid, "5").`))
	if !res.Topped || res.Size != 11 {
		t.Fatalf("Q_ξ should be topped with an 11-node plan: %v/%d (%s)", res.Topped, res.Size, res.Reason)
	}
	okConf, bound, reason := sys.Conforms(res.Plan)
	if !okConf || bound != int64(2*m.N0) {
		t.Fatalf("conformance: %v %d %s", okConf, bound, reason)
	}
	db := m.Generate(workload.MoviesParams{Persons: 400, Movies: 400, LikesPerPerson: 5, NASAShare: 8, Seed: 1})
	views, err := sys.Materialize(db)
	if err != nil {
		t.Fatal(err)
	}
	ix, err := BuildIndexes(db, m.Access)
	if err != nil {
		t.Fatal(err)
	}
	rows, fetched, err := sys.Execute(res.Plan, ix, views)
	if err != nil {
		t.Fatal(err)
	}
	if fetched > 2*m.N0 {
		t.Fatalf("fetched %d > 2N0", fetched)
	}
	direct, err := sys.EvalDirect(NewUCQ(m.Q0), db)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(direct) {
		t.Fatalf("plan %d rows, direct %d rows", len(rows), len(direct))
	}
}

func TestSystemAReasoning(t *testing.T) {
	sys, m := movieSystem(t)
	// rating(m, r1) ∧ rating(m, r2) is A-equivalent to its unified form.
	q1 := NewCQ([]Term{Var("r1"), Var("r2")}, []Atom{
		NewAtom("rating", Var("m"), Var("r1")),
		NewAtom("rating", Var("m"), Var("r2")),
	})
	q2 := NewCQ([]Term{Var("r"), Var("r")}, []Atom{NewAtom("rating", Var("m"), Var("r"))})
	if !sys.AEquivalent(NewUCQ(q1), NewUCQ(q2)) {
		t.Fatal("A-equivalence via the rating FD must hold")
	}
	// rating output per mid is bounded (the FD), whole-table is not.
	perMid := NewCQ([]Term{Var("r")}, []Atom{NewAtom("rating", Cst("m17"), Var("r"))})
	if ok, bound := sys.BoundedOutput(NewUCQ(perMid)); !ok || bound != 1 {
		t.Fatalf("per-mid rating must be bounded by 1, got %v/%d", ok, bound)
	}
	all := NewCQ([]Term{Var("m")}, []Atom{NewAtom("rating", Var("m"), Var("r"))})
	if ok, _ := sys.BoundedOutput(NewUCQ(all)); ok {
		t.Fatal("the whole rating table is unbounded")
	}
	_ = m
}

func TestSystemHasBoundedRewriting(t *testing.T) {
	s := NewSchema(NewRelation("R", "A", "B"))
	a := NewAccessSchema(NewConstraint("R", []string{"A"}, []string{"B"}, 2))
	sys, err := NewSystem(s, a, nil, 3)
	if err != nil {
		t.Fatal(err)
	}
	q := mustParse(t, `Q(x) :- R("a", x).`)
	has, p, err := sys.HasBoundedRewriting(NewUCQ(q), LangCQ)
	if err != nil || !has || p == nil {
		t.Fatalf("expected a rewriting: %v %v", has, err)
	}
	unbounded := mustParse(t, `Q(x, y) :- R(x, y).`)
	has, _, err = sys.HasBoundedRewriting(NewUCQ(unbounded), LangCQ)
	if err != nil || has {
		t.Fatalf("full scan must have no rewriting: %v %v", has, err)
	}
}

func TestSizeBoundedAPI(t *testing.T) {
	inner := &FOQuery{Head: []string{"x"}, Body: FOExpr(fo.NewAtom("R", Var("x")))}
	sb := MakeSizeBounded(inner, 3)
	k, got, ok := IsSizeBounded(sb)
	if !ok || k != 3 || got.Body.String() != inner.Body.String() {
		t.Fatalf("size-bounded round trip failed: %v %d", ok, k)
	}
}

func mustParse(t *testing.T, s string) *CQ {
	t.Helper()
	q, err := ParseQuery(s)
	if err != nil {
		t.Fatal(err)
	}
	return q
}
