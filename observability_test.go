package repro

import (
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/workload"
)

// TestMetricsStressNoBlocking hammers Handle.Metrics and the HTTP
// exporter from concurrent goroutines while a writer churns batches and
// executors serve queries — under -race this proves the observers only
// take snapshots (no data race, no lock shared with ApplyDelta), and
// the post-quiesce counters must reconcile exactly with the engine's
// own accounting.
func TestMetricsStressNoBlocking(t *testing.T) {
	for _, shards := range []int{0, 4} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			sys, m := movieSystem(t)
			db := m.Generate(workload.MoviesParams{Persons: 150, Movies: 150, LikesPerPerson: 4, NASAShare: 8, Seed: 21})
			ch := workload.NewSwapChurn(m, db, workload.SwapChurnParams{Seed: 23})
			var opts []OpenOption
			if shards > 0 {
				opts = append(opts, WithShards(shards))
			}
			h, err := sys.Open(db, opts...)
			if err != nil {
				t.Fatal(err)
			}
			defer h.Close()
			p := m.Fig1Plan()

			const batches = 30
			stop := make(chan struct{})
			var wg sync.WaitGroup
			var execs atomic.Int64

			// Metrics pollers.
			for r := 0; r < 2; r++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for {
						select {
						case <-stop:
							return
						default:
						}
						ms := h.Metrics()
						if ms.Counters == nil {
							t.Error("Metrics returned nil counter map")
							return
						}
					}
				}()
			}
			// HTTP exporter poller, alternating JSON and Prometheus.
			wg.Add(1)
			go func() {
				defer wg.Done()
				dh := DebugHandler(h)
				for i := 0; ; i++ {
					select {
					case <-stop:
						return
					default:
					}
					path := "/debug/repro"
					if i%2 == 1 {
						path = "/debug/repro/metrics"
					}
					rec := httptest.NewRecorder()
					dh.ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
					if rec.Code != 200 || rec.Body.Len() == 0 {
						t.Errorf("exporter %s: code %d, %d bytes", path, rec.Code, rec.Body.Len())
						return
					}
				}
			}()
			// Query executors.
			for r := 0; r < 2; r++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for {
						select {
						case <-stop:
							return
						default:
						}
						if _, _, err := h.Execute(p); err != nil {
							t.Errorf("Execute under churn: %v", err)
							return
						}
						execs.Add(1)
					}
				}()
			}

			// The writer must make progress to completion while every
			// observer above runs full tilt.
			for b := 0; b < batches; b++ {
				ins, del := ch.Batch(20)
				if _, err := h.ApplyDelta(ins, del); err != nil {
					t.Fatal(err)
				}
			}
			close(stop)
			wg.Wait()

			ms := h.Metrics()
			if got := ms.Counters["repro_apply_total"]; got != batches {
				t.Fatalf("apply_total = %d, want %d", got, batches)
			}
			if got := ms.Counters["repro_epoch_publish_total"]; got < batches {
				t.Fatalf("epoch_publish_total = %d, want >= %d", got, batches)
			}
			if got, want := ms.Counters["repro_query_total"], execs.Load(); got != want {
				t.Fatalf("query_total = %d, want %d plain executions", got, want)
			}
			if h := ms.Histograms["repro_apply_seconds"]; h.Count != batches {
				t.Fatalf("apply latency count = %d, want %d", h.Count, batches)
			}
			// The fetch gauge reads the same atomic FetchedTuples reads:
			// after quiescing they must agree exactly.
			if got, want := ms.Gauges["repro_fetched_tuples_total"], int64(fetchedOf(h)); got != want {
				t.Fatalf("fetched gauge = %d, FetchedTuples = %d", got, want)
			}
			s := h.Snapshot()
			if got, want := ms.Gauges["repro_epoch_seq"], int64(s.Epoch()); got != want {
				t.Fatalf("epoch gauge = %d, current epoch = %d", got, want)
			}
			s.Close()
			if shards > 0 && execs.Load() > 0 {
				var probes int64
				for i := 0; i < shards; i++ {
					probes += ms.Counters[fmt.Sprintf("repro_shard_probes_total_%d", i)]
				}
				if probes == 0 {
					t.Fatal("no shard probe was ever counted despite fetching executions")
				}
			}
		})
	}
}

func fetchedOf(h Handle) int {
	switch x := h.(type) {
	case *Live:
		return x.FetchedTuples()
	case *LiveSharded:
		return x.FetchedTuples()
	}
	return -1
}

// TestSlowTraceReconciliation pins an epoch, serves a prepared query on
// it with a zero-ish slow threshold so the execution is traced, and
// checks the trace's accounting against the snapshot's exact fetch
// counter: trace.Fetched, the sum of its per-constraint group rows, and
// Snapshot.FetchedTuples must all be the same number.
func TestSlowTraceReconciliation(t *testing.T) {
	sys, pp := planPickSystem(t)
	db := pp.Generate(4000, 4, 11)
	h, err := sys.Open(db, WithSlowQueryThreshold(time.Nanosecond))
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()
	pq, err := sys.Prepare(NewUCQ(pp.Q), LangCQ)
	if err != nil {
		t.Fatal(err)
	}

	s := h.Snapshot()
	defer s.Close()
	rows, fetched, err := pq.ExecuteOn(s)
	if err != nil {
		t.Fatal(err)
	}
	if got := s.FetchedTuples(); got != fetched {
		t.Fatalf("snapshot counted %d fetched tuples, Execute reported %d", got, fetched)
	}

	traces := h.SlowQueries()
	if len(traces) == 0 {
		t.Fatal("a 1ns threshold must trace every execution")
	}
	tr := traces[0]
	if tr.QueryKey != pq.Key() {
		t.Fatalf("trace key %q, want %q", tr.QueryKey, pq.Key())
	}
	if tr.Candidate < 0 || tr.Candidate >= len(pq.Candidates()) {
		t.Fatalf("trace candidate %d outside the frontier", tr.Candidate)
	}
	if tr.EpochSeq != s.Epoch() {
		t.Fatalf("trace epoch %d, snapshot epoch %d", tr.EpochSeq, s.Epoch())
	}
	if tr.Rows != len(rows) {
		t.Fatalf("trace rows %d, execution produced %d", tr.Rows, len(rows))
	}
	if tr.Plan == "" || tr.Duration <= 0 {
		t.Fatalf("trace missing plan or duration: %+v", tr)
	}
	if tr.Fetched != fetched {
		t.Fatalf("trace fetched %d, execution fetched %d", tr.Fetched, fetched)
	}
	var groupRows, groupProbes int
	for _, g := range tr.Groups {
		if g.Key == "" {
			t.Fatalf("unkeyed group in trace: %+v", tr.Groups)
		}
		groupRows += g.Rows
		groupProbes += g.Probes
	}
	if groupRows != fetched {
		t.Fatalf("per-constraint group rows sum to %d, fetched %d — attribution lost tuples", groupRows, fetched)
	}
	if fetched > 0 && groupProbes == 0 {
		t.Fatal("tuples were fetched but no probe was attributed")
	}

	// The handle-level counters saw the snapshot execution too.
	ms := h.Metrics()
	if ms.Counters["repro_slow_query_total"] < 1 || ms.Counters["repro_query_total"] < 1 {
		t.Fatalf("handle counters missed the snapshot execution: %v", ms.Counters)
	}
	if got, want := ms.Gauges["repro_fetched_tuples_total"], int64(fetched); got != want {
		t.Fatalf("handle fetch gauge = %d, want %d", got, want)
	}

	// The exporter's slow route carries the same trace.
	rec := httptest.NewRecorder()
	DebugHandler(h).ServeHTTP(rec, httptest.NewRequest("GET", "/debug/repro/slow", nil))
	var body struct {
		Slow []struct {
			Fetched int `json:"fetched"`
			Groups  []struct {
				Rows int `json:"rows"`
			} `json:"groups"`
		} `json:"slow"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
		t.Fatalf("slow route JSON: %v", err)
	}
	if len(body.Slow) == 0 || body.Slow[0].Fetched != fetched {
		t.Fatalf("exported slow log diverges: %+v", body.Slow)
	}
}

// TestWithoutMetrics pins the opt-out: a handle opened WithoutMetrics
// serves queries and writes normally, Metrics returns empty (non-nil)
// maps, SlowQueries is nil, and the exporter answers with an empty
// document instead of panicking.
func TestWithoutMetrics(t *testing.T) {
	sys, m := movieSystem(t)
	db := m.Generate(workload.MoviesParams{Persons: 60, Movies: 60, LikesPerPerson: 3, NASAShare: 8, Seed: 31})
	h, err := sys.Open(db, WithoutMetrics())
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()
	if _, _, err := h.Execute(m.Fig1Plan()); err != nil {
		t.Fatal(err)
	}
	if _, err := h.ApplyDelta([]Op{{Rel: "person", Row: Tuple{"p-nm", "NoMetrics", "NASA"}}}, nil); err != nil {
		t.Fatal(err)
	}
	ms := h.Metrics()
	if ms.Counters == nil || len(ms.Counters) != 0 {
		t.Fatalf("WithoutMetrics counters = %v, want empty non-nil", ms.Counters)
	}
	if h.SlowQueries() != nil {
		t.Fatal("WithoutMetrics must have no slow log")
	}
	rec := httptest.NewRecorder()
	DebugHandler(h).ServeHTTP(rec, httptest.NewRequest("GET", "/debug/repro", nil))
	if rec.Code != 200 {
		t.Fatalf("exporter on metrics-less handle: %d", rec.Code)
	}
}

// TestSelectionCountersExported: the closed-loop selection layer's
// rerank/explore/switch instruments are registered on every handle and
// the Prometheus rendering carries them.
func TestSelectionCountersExported(t *testing.T) {
	sys, m := movieSystem(t)
	db := m.Generate(workload.MoviesParams{Persons: 60, Movies: 60, LikesPerPerson: 3, NASAShare: 8, Seed: 33})
	h, err := sys.Open(db)
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()
	ms := h.Metrics()
	for _, name := range []string{"repro_plan_rerank_total", "repro_plan_explore_total", "repro_plan_switch_total",
		"repro_wal_append_total", "repro_wal_fence_total"} {
		if _, ok := ms.Counters[name]; !ok {
			t.Fatalf("counter %s not registered", name)
		}
	}
	rec := httptest.NewRecorder()
	DebugHandler(h).ServeHTTP(rec, httptest.NewRequest("GET", "/debug/repro/metrics", nil))
	if !strings.Contains(rec.Body.String(), "repro_plan_rerank_total") {
		t.Fatal("prometheus rendering misses selection counters")
	}
}
