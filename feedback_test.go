package repro

import (
	"fmt"
	"testing"

	"repro/internal/cq"
	"repro/internal/workload"
)

func feedbackSystem(t *testing.T) (*System, *workload.PlanFeedback) {
	t.Helper()
	fx := workload.NewPlanFeedback()
	sys, err := NewSystem(fx.Schema, fx.Access, fx.Views(), fx.M)
	if err != nil {
		t.Fatal(err)
	}
	return sys, fx
}

// realizedFetches executes every candidate directly (outside the feedback
// loop) and returns the per-candidate |Dξ| plus the minimum.
func realizedFetches(t *testing.T, pq *PreparedQuery, h Handle) ([]int, int) {
	t.Helper()
	cands := pq.Candidates()
	out := make([]int, len(cands))
	minF := -1
	for i, c := range cands {
		_, f, err := h.Execute(c)
		if err != nil {
			t.Fatal(err)
		}
		out[i] = f
		if minF < 0 || f < minF {
			minF = f
		}
	}
	return out, minF
}

// Convergence differential: on the adversarial skew fixture the collected
// statistics misestimate the static pick's fetch volume by >10x; the
// closed loop must switch to the realized-cheapest candidate within k
// executions and hold it — no plan flapping — over 1000 more. Run
// unsharded and at P = 8 (same contract through the sharded gather).
func TestFeedbackConvergence(t *testing.T) {
	for _, shards := range []int{0, 8} {
		name := "unsharded"
		if shards > 0 {
			name = fmt.Sprintf("P=%d", shards)
		}
		t.Run(name, func(t *testing.T) {
			sys, fx := feedbackSystem(t)
			db := fx.Generate()
			direct, err := sys.EvalDirect(NewUCQ(fx.Q), db)
			if err != nil {
				t.Fatal(err)
			}
			var h Handle
			if shards > 0 {
				h, err = sys.Open(db, WithShards(shards))
			} else {
				h, err = sys.Open(db)
			}
			if err != nil {
				t.Fatal(err)
			}
			defer h.Close()
			pq, err := sys.Prepare(NewUCQ(fx.Q), LangCQ)
			if err != nil {
				t.Fatal(err)
			}
			fetches, minF := realizedFetches(t, pq, h)

			// The fixture must be adversarial: the open-loop pick under the
			// handle's collected statistics realizes >= 10x the frontier's
			// cheapest fetch volume.
			st0, _ := h.Stats()
			openLoop, _ := bestCandidate(pq.cands, st0)
			if fetches[openLoop] < 10*max(1, minF) {
				t.Fatalf("fixture not adversarial: open-loop pick fetches %d, frontier min %d",
					fetches[openLoop], minF)
			}

			// Converge within k executions.
			const k = 8
			last := -1
			for i := 0; i < k; i++ {
				rows, f, err := pq.Execute(h)
				if err != nil {
					t.Fatal(err)
				}
				if !cq.RowsEqual(rows, direct) {
					t.Fatalf("exec %d: answers diverge from direct evaluation", i)
				}
				last = f
			}
			bound := 12 * max(1, minF) / 10 // the 1.2x gate
			if last > bound {
				t.Fatalf("no convergence: execution %d fetched %d, frontier min %d (bound %d)",
					k, last, minF, bound)
			}
			st, ok := pq.SelectionStats(h)
			if !ok {
				t.Fatal("no selection state after executing")
			}
			if st.Switches < 1 {
				t.Fatal("feedback never re-ranked away from the misestimated pick")
			}
			if st.Samples < k {
				t.Fatalf("observations not absorbed: %d samples after %d executions", st.Samples, k)
			}

			// Stability: 1000 further executions, every one cheap, zero
			// additional switches (exploration of the near-tied twin
			// candidate is allowed; switching is not).
			swaps := st.Switches
			for i := 0; i < 1000; i++ {
				_, f, err := pq.Execute(h)
				if err != nil {
					t.Fatal(err)
				}
				if f > bound {
					t.Fatalf("post-convergence execution %d fetched %d (> %d): plan flapped", i, f, bound)
				}
			}
			st2, _ := pq.SelectionStats(h)
			if st2.Switches != swaps {
				t.Fatalf("selection oscillated: %d -> %d switches over 1000 stable executions",
					swaps, st2.Switches)
			}
		})
	}
}

// Drift stickiness: a statistics rebuild (churn past the drift threshold)
// bumps the stats version and used to reset selection to the fresh — still
// skew-blind — estimates. The observation overlay must survive the
// rebuild: the corrected selection stays corrected.
func TestFeedbackStickyUnderStatsDrift(t *testing.T) {
	sys, fx := feedbackSystem(t)
	h, err := sys.Open(fx.Generate(), WithStatsDrift(0.01), WithStatsMinChurn(1))
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()
	pq, err := sys.Prepare(NewUCQ(fx.Q), LangCQ)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if _, _, err := pq.Execute(h); err != nil {
			t.Fatal(err)
		}
	}
	st0, ok := pq.SelectionStats(h)
	if !ok || st0.Switches < 1 {
		t.Fatalf("fixture must converge before the drift: %+v (%v)", st0, ok)
	}
	_, ver0 := h.Stats()
	ds, err := h.ApplyDelta(fx.ChurnBatch(0, 200), nil)
	if err != nil {
		t.Fatal(err)
	}
	if !ds.StatsRefreshed {
		t.Fatal("churn batch must trip the drift rebuild")
	}
	if _, ver1 := h.Stats(); ver1 == ver0 {
		t.Fatal("stats version must change on rebuild")
	}
	for i := 0; i < 4; i++ {
		_, f, err := pq.Execute(h)
		if err != nil {
			t.Fatal(err)
		}
		if f > 2*fx.JGroup {
			t.Fatalf("post-drift execution fetched %d: selection reverted to the misestimate", f)
		}
	}
	st1, _ := pq.SelectionStats(h)
	if st1.Selected != st0.Selected || st1.Switches != st0.Switches {
		t.Fatalf("drift rebuild moved the selection: %+v -> %+v", st0, st1)
	}
}

// Observed statistics are NOT durable: they live with the handle, Close
// clears them, and a WAL restart comes up estimate-driven — the first
// execution pays the misestimate once, then re-converges. This pins the
// documented reset-on-restart behavior.
func TestFeedbackResetOnWALRestart(t *testing.T) {
	sys, fx := feedbackSystem(t)
	dir := t.TempDir()
	h, err := sys.Open(fx.Generate(), WithDurability(dir))
	if err != nil {
		t.Fatal(err)
	}
	pq, err := sys.Prepare(NewUCQ(fx.Q), LangCQ)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if _, _, err := pq.Execute(h); err != nil {
			t.Fatal(err)
		}
	}
	if st, ok := pq.SelectionStats(h); !ok || st.Samples < 4 || st.Switches < 1 {
		t.Fatalf("must converge before the restart: %+v (%v)", st, ok)
	}
	if err := h.Close(); err != nil {
		t.Fatal(err)
	}
	if _, ok := pq.SelectionStats(h); ok {
		t.Fatal("Close must clear the handle's selection state")
	}

	h2, err := sys.Open(NewDatabase(fx.Schema), WithDurability(dir))
	if err != nil {
		t.Fatal(err)
	}
	defer h2.Close()
	if _, ok := pq.SelectionStats(h2); ok {
		t.Fatal("restarted handle must start with no observed statistics")
	}
	// First execution is estimate-driven again (pays the hot group), the
	// second has the observation and is cheap: reset, then re-converge.
	_, f1, err := pq.Execute(h2)
	if err != nil {
		t.Fatal(err)
	}
	_, f2, err := pq.Execute(h2)
	if err != nil {
		t.Fatal(err)
	}
	if f1 < 10*max(1, f2) {
		t.Fatalf("restart did not reset observed stats: first exec fetched %d, second %d", f1, f2)
	}
	if st, ok := pq.SelectionStats(h2); !ok || st.Samples < 2 {
		t.Fatalf("re-convergence must accumulate fresh observations: %+v (%v)", st, ok)
	}
}

// The per-handle selection cache must never evict the handle being served
// (the old arbitrary-eviction could drop the current handle's entry —
// discarding the feedback the call was about to add), and Close must
// clear a dead handle's slot.
func TestSelectionEvictionSparesServingHandle(t *testing.T) {
	sys, pp := planPickSystem(t)
	pq, err := sys.Prepare(NewUCQ(pp.Q), LangCQ)
	if err != nil {
		t.Fatal(err)
	}
	var handles []Handle
	for i := 0; i < maxLiveSelections+3; i++ {
		h, err := sys.Open(pp.Generate(300, 3, int64(i)))
		if err != nil {
			t.Fatal(err)
		}
		defer h.Close()
		handles = append(handles, h)
		if _, _, err := pq.Execute(h); err != nil {
			t.Fatal(err)
		}
		if _, ok := pq.SelectionStats(h); !ok {
			t.Fatalf("handle %d: its own fresh selection entry was evicted", i)
		}
	}
	pq.mu.Lock()
	n := len(pq.sels)
	pq.mu.Unlock()
	if n > maxLiveSelections {
		t.Fatalf("selection cache exceeded its bound: %d > %d", n, maxLiveSelections)
	}
	last := handles[len(handles)-1]
	if err := last.Close(); err != nil {
		t.Fatal(err)
	}
	if _, ok := pq.SelectionStats(last); ok {
		t.Fatal("Close must clear the closed handle's selection slot")
	}
}
