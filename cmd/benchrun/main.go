// Command benchrun regenerates the experiment tables of EXPERIMENTS.md:
// every table/figure of the paper plus its quantitative claims, printed as
// markdown. Run with -exp to select one experiment:
//
//	benchrun -exp t1    Table I: decision procedures vs ground truth
//	benchrun -exp f1    Figure 1: plan ξ0 (bound, correctness, speedup)
//	benchrun -exp f3    Figure 3: the 13-node plan for q3
//	benchrun -exp cdr   Section 5.1: CDR speedup table
//	benchrun -exp gs    Introduction: Graph Search scale independence
//	benchrun -exp pct   Introduction: coverage of random CQs
//	benchrun -exp ex33  Example 3.3: bounded output of views
//	benchrun -exp ex63  Example 6.3: FO vs UCQ separation
//	benchrun -exp churn live updates: incremental maintenance vs full refresh
//	benchrun -exp planpick cost-based selection over the full candidate frontier
//	benchrun -exp shard sharded scatter-gather: partitioned maintenance + serving scaling
//	benchrun -exp epoch epoch-pinned reads: reader tail latency under a churning writer
//	benchrun -exp recover durable restart: checkpoint+replay recovery vs cold rebuild
//	benchrun -exp churnmem bounded memory: steady-state heap under sustained swap churn
//	benchrun -exp feedback closed-loop selection: observed-cost re-ranking vs open loop
//	benchrun -exp obs   observability overhead: instrumented vs bare epoch readers
//	benchrun -exp all   everything (default)
//
// With -json FILE, per-experiment wall-clock timings and the individual
// plan-vs-scan measurements are additionally written to FILE as JSON, for
// the machine-readable perf trajectory (BENCH_*.json) tracked by CI.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	repro "repro"

	"repro/internal/access"
	"repro/internal/boundedness"
	"repro/internal/cq"
	"repro/internal/eval"
	"repro/internal/fo"
	"repro/internal/gadgets"
	"repro/internal/instance"
	"repro/internal/plan"
	"repro/internal/schema"
	"repro/internal/topped"
	"repro/internal/vbrp"
	"repro/internal/workload"
)

// expTiming is the wall-clock of one whole experiment.
type expTiming struct {
	ID      string  `json:"id"`
	Seconds float64 `json:"seconds"`
}

// measurement is one plan-vs-scan data point inside an experiment.
type measurement struct {
	Experiment      string  `json:"experiment"`
	Name            string  `json:"name"`
	DBSize          int     `json:"db_size,omitempty"`
	PlanNS          int64   `json:"plan_ns,omitempty"`
	ScanNS          int64   `json:"scan_ns,omitempty"`
	Fetched         int     `json:"fetched_tuples,omitempty"`
	Rows            int     `json:"rows,omitempty"`
	BatchOps        int     `json:"batch_ops,omitempty"`         // churn: ops per applied batch
	MaintainNS      int64   `json:"maintain_ns,omitempty"`       // churn: incremental maintenance per batch
	RefreshNS       int64   `json:"refresh_ns,omitempty"`        // churn: full refresh (materialize+indexes+prepare)
	Speedup         float64 `json:"speedup,omitempty"`           // churn: refresh_ns / maintain_ns; planpick: worst/chosen gap; shard: throughput vs 1 shard
	Candidates      int     `json:"candidates,omitempty"`        // planpick: enumerated candidate plans
	CacheHit        bool    `json:"cache_hit,omitempty"`         // planpick: renamed re-Prepare hit the cache
	P50NS           int64   `json:"p50_ns,omitempty"`            // epoch: median reader latency
	P99NS           int64   `json:"p99_ns,omitempty"`            // epoch: tail reader latency
	Batches         int     `json:"batches,omitempty"`           // epoch: writer batches applied while sampling
	Shards          int     `json:"shards,omitempty"`            // shard: partition count of this run
	OpsPerSec       float64 `json:"ops_per_sec,omitempty"`       // shard: delta ops applied per second
	QPS             float64 `json:"qps,omitempty"`               // shard: point queries served per second under churn
	MaxExclusiveNS  int64   `json:"max_exclusive_ns,omitempty"`  // shard: longest single-lock exclusive window per batch
	ExclCut         float64 `json:"excl_window_cut,omitempty"`   // shard: exclusive-window reduction vs 1 shard
	RecoverNS       int64   `json:"recover_ns,omitempty"`        // recover: open-to-serving wall clock of this path
	ReplayedEpochs  int     `json:"replayed_epochs,omitempty"`   // recover: journal records replayed
	ReplayedOps     int     `json:"replayed_ops,omitempty"`      // recover: physical ops those records carried
	HeapFloorBytes  int64   `json:"heap_floor_bytes,omitempty"`  // churnmem: live heap after warmup
	HeapSteadyBytes int64   `json:"heap_steady_bytes,omitempty"` // churnmem: max live heap over the run
	HeapRatio       float64 `json:"heap_ratio,omitempty"`        // churnmem: steady / floor (gated <= 1.5)
	Reclaimed       int64   `json:"reclaimed_epochs,omitempty"`  // churnmem: epochs whose last pin dropped
	OpenLoopFetch   int     `json:"open_loop_fetched,omitempty"` // feedback: per-exec fetch of the estimate-pinned plan
	ConvergedAt     int     `json:"converged_at,omitempty"`      // feedback: executions until the 1.2x bound held
	Switches        int64   `json:"plan_switches,omitempty"`     // feedback: incumbent changes over the whole run
	Explorations    int64   `json:"explorations,omitempty"`      // feedback: runner-up probe executions
}

// benchSchemaVersion identifies the BENCH_*.json document layout, so
// the trajectory tooling can tell a field rename from a regression.
// Bump whenever a field changes name or meaning.
const benchSchemaVersion = 2

// gateSpec is one pass/fail threshold an experiment enforces: the run
// aborts (log.Fatalf) when the measured value lands on the wrong side
// of Threshold. Stamped into the -json report so a BENCH_*.json is
// self-describing — the recorded numbers carry the bounds they were
// accepted under.
type gateSpec struct {
	Experiment string  `json:"experiment"`
	Name       string  `json:"name"`
	Op         string  `json:"op"` // measured-value comparison: ">=", "<=", "=="
	Threshold  float64 `json:"threshold"`
	Detail     string  `json:"detail"`
}

// gateSpecs are the per-experiment gates, keyed by experiment id; run()
// stamps the entries of every executed experiment into the report.
var gateSpecs = map[string][]gateSpec{
	"churn": {
		{Name: "fetch_bound", Op: "<=", Threshold: 2, Detail: "realized fetches per execution <= 2*N0 across every churn step"},
	},
	"shard": {
		{Name: "delta_throughput_8x", Op: ">=", Threshold: 2.0, Detail: "8-shard delta throughput vs 1 shard (needs GOMAXPROCS >= 4)"},
		{Name: "serve_throughput_8x", Op: ">=", Threshold: 0.6, Detail: "8-shard serving throughput vs 1 shard, no-regression bound"},
	},
	"epoch": {
		{Name: "churn_p99_vs_idle", Op: "<=", Threshold: 3.0, Detail: "reader p99 under churn vs max(idle p99, 250us) (needs GOMAXPROCS >= 2)"},
	},
	"recover": {
		{Name: "checkpoint_vs_cold", Op: ">=", Threshold: 10, Detail: "checkpointed restart speedup over cold rebuild"},
		{Name: "replay_vs_cold", Op: ">=", Threshold: 1.5, Detail: "log-replay recovery speedup over cold rebuild"},
	},
	"churnmem": {
		{Name: "heap_ratio", Op: "<=", Threshold: 1.5, Detail: "max post-warmup live heap vs warmup floor"},
	},
	"feedback": {
		{Name: "converged_fetch", Op: "<=", Threshold: 1.2, Detail: "closed-loop per-exec fetches vs best candidate after convergence"},
	},
	"obs": {
		{Name: "instrumented_throughput", Op: ">=", Threshold: 0.95, Detail: "epoch-reader throughput with metrics on vs WithoutMetrics"},
		{Name: "trace_fetch_delta", Op: "==", Threshold: 0, Detail: "slow-trace per-constraint rows minus the pinned snapshot's exact fetch count"},
	},
}

// report is the -json output document.
type report struct {
	SchemaVersion int           `json:"schema_version"`
	GoMaxProcs    int           `json:"gomaxprocs"`
	Experiments   []expTiming   `json:"experiments"`
	Gates         []gateSpec    `json:"gates"`
	Measurements  []measurement `json:"measurements"`
}

var rep report

// record appends one measurement to the -json report.
func record(m measurement) { rep.Measurements = append(rep.Measurements, m) }

func main() {
	exp := flag.String("exp", "all", "experiment id (t1, f1, f3, cdr, gs, pct, ex33, ex63, churn, planpick, shard, epoch, recover, churnmem, feedback, obs, all)")
	jsonPath := flag.String("json", "", "write per-experiment timings as JSON to this file")
	flag.Parse()
	rep.SchemaVersion = benchSchemaVersion
	rep.Experiments = []expTiming{}
	rep.Gates = []gateSpec{}
	rep.Measurements = []measurement{}
	matched := false
	run := func(id string, f func()) {
		if *exp == "all" || *exp == id {
			matched = true
			t0 := time.Now()
			f()
			rep.Experiments = append(rep.Experiments, expTiming{ID: id, Seconds: time.Since(t0).Seconds()})
			for _, g := range gateSpecs[id] {
				g.Experiment = id
				rep.Gates = append(rep.Gates, g)
			}
		}
	}
	run("t1", expT1)
	run("f1", expF1)
	run("f3", expF3)
	run("cdr", expCDR)
	run("gs", expGS)
	run("pct", expPct)
	run("ex33", expEx33)
	run("ex63", expEx63)
	run("churn", expChurn)
	run("planpick", expPlanPick)
	run("shard", expShard)
	run("epoch", expEpoch)
	run("recover", expRecover)
	run("churnmem", expChurnMem)
	run("feedback", expFeedback)
	run("obs", expObs)
	if !matched {
		log.Fatalf("unknown experiment %q (want t1, f1, f3, cdr, gs, pct, ex33, ex63, churn, planpick, shard, epoch, recover, churnmem, feedback, obs or all)", *exp)
	}
	if *jsonPath != "" {
		rep.GoMaxProcs = runtime.GOMAXPROCS(0)
		data, err := json.MarshalIndent(&rep, "", "  ")
		if err != nil {
			log.Fatal(err)
		}
		data = append(data, '\n')
		if err := os.WriteFile(*jsonPath, data, 0o644); err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", *jsonPath)
	}
}

func header(title string) {
	fmt.Printf("\n## %s\n\n", title)
}

// expT1 validates every decidable row of Table I on labelled gadget
// families and reports wall-clock per decision.
func expT1() {
	header("EXP-T1 — Table I: complexity of VBRP (decision procedures on reduction families)")
	fmt.Println("| row | problem | instance | ground truth | decider verdict | time |")
	fmt.Println("|---|---|---|---|---|---|")

	cnfs := []struct {
		name string
		f    *gadgets.CNF
	}{
		{"sat ψ", &gadgets.CNF{Vars: []string{"x", "y"}, Clauses: []gadgets.Clause{
			{gadgets.Pos("x"), gadgets.Pos("y"), gadgets.Pos("y")},
			{gadgets.Neg("x"), gadgets.Pos("y"), gadgets.Pos("y")}}}},
		{"unsat ψ", &gadgets.CNF{Vars: []string{"x"}, Clauses: []gadgets.Clause{
			{gadgets.Pos("x"), gadgets.Pos("x"), gadgets.Pos("x")},
			{gadgets.Neg("x"), gadgets.Neg("x"), gadgets.Neg("x")}}}},
	}
	for _, tc := range cnfs {
		_, sat := tc.f.Satisfiable()
		r := gadgets.NewBOPReduction(tc.f)
		t0 := time.Now()
		bounded, _ := boundedness.BoundedOutputCQ(r.Q, r.S, r.A)
		fmt.Printf("| BOP(CQ) coNP-c (Th 3.4) | bounded output | %s | %v | %v | %s |\n",
			tc.name, !sat, bounded, time.Since(t0).Round(time.Microsecond))
	}
	for _, tc := range cnfs {
		_, sat := tc.f.Satisfiable()
		r := gadgets.NewFDVBRPReduction(tc.f)
		prob := &vbrp.Problem{S: r.S, A: r.A, Views: r.Views, M: r.M,
			Lang: plan.LangCQ, Consts: r.Q.Constants()}
		t0 := time.Now()
		dec, err := vbrp.DecideBoolean(cq.NewUCQ(r.Q), prob)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("| VBRP(CQ), FDs, NP-c (Prop 4.5) | 1-bounded rewriting | %s | %v | %v | %s |\n",
			tc.name, sat, dec.Has, time.Since(t0).Round(time.Microsecond))
	}
	qbfs := []struct {
		name string
		phi  *gadgets.QBF3
	}{
		{"true φ", &gadgets.QBF3{X: []string{"x1", "x2"}, Y: []string{"y1"}, Z: []string{"z1"},
			Psi: &gadgets.CNF{Vars: []string{"x1", "x2", "y1", "z1"}, Clauses: []gadgets.Clause{
				{gadgets.Pos("x1"), gadgets.Pos("y1"), gadgets.Pos("z1")},
				{gadgets.Pos("x1"), gadgets.Neg("y1"), gadgets.Neg("z1")}}}}},
		{"false φ", &gadgets.QBF3{X: []string{"x1", "x2"}, Y: []string{"y1"}, Z: []string{"z1"},
			Psi: &gadgets.CNF{Vars: []string{"x1", "x2", "y1", "z1"}, Clauses: []gadgets.Clause{
				{gadgets.Pos("y1"), gadgets.Pos("y1"), gadgets.Pos("y1")}}}}},
	}
	for _, tc := range qbfs {
		want := tc.phi.Eval()
		r, err := gadgets.NewSigma3Reduction(tc.phi)
		if err != nil {
			log.Fatal(err)
		}
		t0 := time.Now()
		got, _, err := r.Decide()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("| VBRP(CQ) Σp3-c (Th 3.1) | 6-bounded rewriting | %s | %v | %v | %s |\n",
			tc.name, want, got, time.Since(t0).Round(time.Microsecond))
	}
	colorings := []struct {
		name string
		g    *gadgets.Graph
		pre  gadgets.Precoloring
	}{
		{"path ext.", &gadgets.Graph{Nodes: []string{"a", "b", "c"},
			Edges: [][2]string{{"a", "b"}, {"b", "c"}}}, gadgets.Precoloring{"a": "r", "c": "g"}},
		{"triangle non-ext.", &gadgets.Graph{
			Nodes: []string{"u", "v", "w", "lu", "lv", "lw"},
			Edges: [][2]string{{"u", "v"}, {"v", "w"}, {"w", "u"}, {"u", "lu"}, {"v", "lv"}, {"w", "lw"}}},
			gadgets.Precoloring{"lu": "r", "lv": "r", "lw": "r"}},
	}
	for _, tc := range colorings {
		want := tc.g.ExtendableTo3Coloring(tc.pre)
		r, err := gadgets.NewColoringReduction(tc.g, tc.pre, 0)
		if err != nil {
			log.Fatal(err)
		}
		t0 := time.Now()
		got := boundedness.ASatisfiable(r.Q, r.S, r.A)
		fmt.Printf("| VBRP(ACQ) coNP-c (Th 4.1(1)) | A-satisfiability core | %s | %v | %v | %s |\n",
			tc.name, want, got, time.Since(t0).Round(time.Millisecond))
	}
	// Theorem 4.1(2): 3-colorability under {R(A→B,1), R'(∅→(E,F),6)}.
	for _, tc := range []struct {
		name string
		g    *gadgets.Graph
	}{
		{"triangle (3-col.)", &gadgets.Graph{Nodes: []string{"a", "b", "c"},
			Edges: [][2]string{{"a", "b"}, {"b", "c"}, {"c", "a"}}}},
		{"K4 (not 3-col.)", &gadgets.Graph{Nodes: []string{"a", "b", "c", "d"},
			Edges: [][2]string{{"a", "b"}, {"a", "c"}, {"a", "d"}, {"b", "c"}, {"b", "d"}, {"c", "d"}}}},
	} {
		want := tc.g.ThreeColorable()
		r := gadgets.NewThreeColorReduction(tc.g)
		t0 := time.Now()
		got := boundedness.ASatisfiable(r.Q, r.S, r.A)
		fmt.Printf("| VBRP(ACQ) coNP-c (Th 4.1(2)) | A-satisfiability core | %s | %v | %v | %s |\n",
			tc.name, want, got, time.Since(t0).Round(time.Millisecond))
	}
	// Theorem 4.1(3): 3SAT under {R((A,B)→C,1), R'(∅→E,2)}.
	for _, tc := range cnfs {
		_, want := tc.f.Satisfiable()
		r := gadgets.NewSAT3KeyReduction(tc.f)
		t0 := time.Now()
		got := boundedness.ASatisfiable(r.Q, r.S, r.A)
		fmt.Printf("| VBRP(ACQ) coNP-c (Th 4.1(3)) | A-satisfiability core | %s | %v | %v | %s |\n",
			tc.name, want, got, time.Since(t0).Round(time.Microsecond))
	}
}

func expF1() {
	header("EXP-F1 — Figure 1: the 11-node plan ξ0 for Q0 using V1 under A0")
	const n0 = 50
	m := workload.NewMovies(n0)
	xi0 := m.Fig1Plan()
	rep := plan.Conforms(xi0, m.Schema, m.Access, m.Views())
	fmt.Printf("plan size: %d nodes (paper: 11); conforms: %v; derived fetch bound: %d = 2·N0\n\n",
		xi0.Size(), rep.Conforms, rep.FetchBound)
	fmt.Println("| |D| | ξ0 answers | fetched (≤ 2·N0 = 100) | ξ0 time | direct scan | speedup |")
	fmt.Println("|---|---|---|---|---|---|")
	for _, size := range []int{1000, 10000, 100000} {
		db := m.Generate(workload.MoviesParams{Persons: size, Movies: size, LikesPerPerson: 5, NASAShare: 10, Seed: 7})
		views, err := eval.Materialize(m.Views(), db)
		if err != nil {
			log.Fatal(err)
		}
		ix, err := instance.BuildIndexes(db, m.Access)
		if err != nil {
			log.Fatal(err)
		}
		pv := plan.PrepareViews(ix, views)
		t0 := time.Now()
		rows, err := plan.RunPrepared(xi0, ix, pv)
		if err != nil {
			log.Fatal(err)
		}
		pt := time.Since(t0)
		t0 = time.Now()
		direct, err := eval.CQOnDB(m.Q0, &eval.Source{DB: db})
		if err != nil {
			log.Fatal(err)
		}
		dt := time.Since(t0)
		if !cq.RowsEqual(rows, direct) {
			log.Fatal("ξ0(D) != Q0(D)")
		}
		record(measurement{Experiment: "f1", Name: "xi0", DBSize: db.Size(),
			PlanNS: int64(pt), ScanNS: int64(dt), Fetched: ix.FetchedTuples(), Rows: len(rows)})
		fmt.Printf("| %d | %d | %d | %s | %s | %.0fx |\n",
			db.Size(), len(rows), ix.FetchedTuples(), pt.Round(time.Microsecond), dt.Round(time.Microsecond),
			float64(dt)/float64(pt))
	}
}

func expF3() {
	header("EXP-F3 — Figure 3: the 13-node FO plan for q3 (Examples 5.3/5.4)")
	s := schema.New(schema.NewRelation("R", "A", "B"), schema.NewRelation("T", "C", "E"))
	a := access.NewSchema(
		access.NewConstraint("R", []string{"A"}, []string{"B"}, 3),
		access.NewConstraint("T", []string{"C"}, []string{"E"}, 3),
	)
	v3 := cq.NewCQ([]cq.Term{cq.Var("x"), cq.Var("y")}, []cq.Atom{
		cq.NewAtom("R", cq.Var("y"), cq.Var("y")),
		cq.NewAtom("T", cq.Var("x"), cq.Var("y")),
	})
	views := map[string]*cq.UCQ{"V3": cq.NewUCQ(v3)}
	q2 := &fo.Exists{Vars: []string{"x"}, E: &fo.And{
		L: fo.NewAtom("V3", cq.Var("x"), cq.Var("y")),
		R: fo.Eq(cq.Var("x"), cq.Cst("1")),
	}}
	q4 := &fo.Exists{Vars: []string{"y"}, E: &fo.And{L: q2, R: fo.NewAtom("R", cq.Var("y"), cq.Var("z"))}}
	qp4 := &fo.Exists{Vars: []string{"w"}, E: fo.NewAtom("R", cq.Var("z"), cq.Var("w"))}
	q3 := &fo.Query{Name: "q3", Head: []string{"z"}, Body: &fo.And{L: q4, R: &fo.Not{E: qp4}}}

	c := topped.NewChecker(s, a, views)
	t0 := time.Now()
	res := c.Check(q3, 13)
	fmt.Printf("q3 topped by (R1,V3,A2,13): %v; plan size %d (paper: 13); checked in %s\n\n",
		res.Topped, res.Size, time.Since(t0).Round(time.Microsecond))
	fmt.Println("```")
	fmt.Print(plan.Render(res.Plan))
	fmt.Println("```")
}

func expCDR() {
	header("EXP-CDR — Section 5.1: bounded plans vs full scans on the CDR workload")
	c := workload.NewCDR(20, 5, 100)
	checker := topped.NewChecker(c.Schema, c.Access, nil)
	queries := c.Queries("p0000042", "d07")
	plans := map[string]plan.Node{}
	toppedCount := 0
	for _, q := range queries {
		if res := checker.Check(q.FO, 128); res.Topped {
			plans[q.Name] = res.Plan
			toppedCount++
		}
	}
	fmt.Printf("%d/%d queries topped (paper: >90%% of the workload improved)\n\n", toppedCount, len(queries))
	for _, customers := range []int{2000, 20000, 100000} {
		db := c.Generate(workload.CDRParams{Customers: customers, Days: 30, Seed: 1})
		ix, err := instance.BuildIndexes(db, c.Access)
		if err != nil {
			log.Fatal(err)
		}
		src := &eval.Source{DB: db}
		fmt.Printf("\n|D| = %d tuples (%d customers)\n\n", db.Size(), customers)
		fmt.Println("| query | plan time | full scan | speedup | fetched tuples |")
		fmt.Println("|---|---|---|---|---|")
		for _, q := range queries {
			p, ok := plans[q.Name]
			if !ok {
				fmt.Printf("| %s | — | — | not bounded | — |\n", q.Name)
				continue
			}
			ix.ResetCounters()
			t0 := time.Now()
			rows, err := plan.Run(p, ix, nil)
			if err != nil {
				log.Fatal(err)
			}
			pt := time.Since(t0)
			t0 = time.Now()
			var direct [][]string
			if q.CQ != nil {
				direct, err = eval.CQOnDB(q.CQ, src)
			} else {
				direct, err = eval.FOOnDB(q.FO, src)
			}
			if err != nil {
				log.Fatal(err)
			}
			dt := time.Since(t0)
			if !cq.RowsEqual(rows, direct) {
				log.Fatalf("%s: plan/scan disagree", q.Name)
			}
			record(measurement{Experiment: "cdr", Name: q.Name, DBSize: db.Size(),
				PlanNS: int64(pt), ScanNS: int64(dt), Fetched: ix.FetchedTuples(), Rows: len(rows)})
			fmt.Printf("| %s | %s | %s | %.0fx | %d |\n",
				q.Name, pt.Round(time.Microsecond), dt.Round(time.Microsecond),
				float64(dt)/float64(pt), ix.FetchedTuples())
		}
	}
}

func expGS() {
	header("EXP-GS — Introduction: Graph Search under the friend-cap constraints")
	so := workload.NewSocial(60, 25)
	checker := topped.NewChecker(so.Schema, so.Access, nil)
	q := so.GraphSearchQuery("u000007", "2015-05-03", "city3")
	res := checker.Check(q, 64)
	if !res.Topped {
		log.Fatal(res.Reason)
	}
	rep := plan.Conforms(res.Plan, so.Schema, so.Access, nil)
	fmt.Printf("query topped (%d-node FO plan with negation); structural fetch bound %d tuples\n\n",
		res.Size, rep.FetchBound)
	fmt.Println("| |D| | fetched | plan time | full scan | speedup |")
	fmt.Println("|---|---|---|---|---|")
	for _, persons := range []int{5000, 50000, 200000} {
		db := so.Generate(workload.SocialParams{Persons: persons, Restaurants: 500, Dates: 28, Seed: 3})
		ix, err := instance.BuildIndexes(db, so.Access)
		if err != nil {
			log.Fatal(err)
		}
		t0 := time.Now()
		rows, err := plan.Run(res.Plan, ix, nil)
		if err != nil {
			log.Fatal(err)
		}
		pt := time.Since(t0)
		t0 = time.Now()
		direct, err := eval.FOOnDB(q, &eval.Source{DB: db})
		if err != nil {
			log.Fatal(err)
		}
		dt := time.Since(t0)
		if !cq.RowsEqual(rows, direct) {
			log.Fatal("plan/scan disagree")
		}
		record(measurement{Experiment: "gs", Name: "graph-search", DBSize: db.Size(),
			PlanNS: int64(pt), ScanNS: int64(dt), Fetched: ix.FetchedTuples(), Rows: len(rows)})
		fmt.Printf("| %d | %d | %s | %s | %.0fx |\n",
			db.Size(), ix.FetchedTuples(), pt.Round(time.Microsecond), dt.Round(time.Microsecond),
			float64(dt)/float64(pt))
	}
}

func expPct() {
	header("EXP-PCT — Introduction: share of random CQs with a bounded rewriting vs constraints")
	c := workload.NewCDR(20, 5, 100)
	sets := []struct {
		name string
		a    *access.Schema
	}{
		{"no constraints", access.NewSchema()},
		{"keys only", access.NewSchema(c.CustKey)},
		{"keys + call fan-out", access.NewSchema(c.CustKey, c.CallFan)},
		{"full access schema", c.Access},
	}
	const population = 200
	fmt.Println("| access schema | topped queries | share |")
	fmt.Println("|---|---|---|")
	for _, set := range sets {
		checker := topped.NewChecker(c.Schema, set.a, nil)
		covered := 0
		for seed := int64(0); seed < population; seed++ {
			q := workload.RandomCQ(c.Schema, workload.RandomCQParams{
				Atoms: 2 + int(seed%3), ConstProb: 0.45, JoinProb: 0.5, HeadVars: 1, Seed: seed,
			})
			if res := checker.CheckCQ(q, 256); res.Topped {
				covered++
			}
		}
		fmt.Printf("| %s | %d/%d | %.0f%% |\n", set.name, covered, population,
			100*float64(covered)/float64(population))
	}
	fmt.Println("\n(The paper reports ~77% of random SPC queries boundedly evaluable under a few")
	fmt.Println("hundred constraints; the share grows monotonically with the access schema.)")
}

func expEx33() {
	header("EXP-EX33 — Example 3.3: bounded output of views decides rewritability")
	m := workload.NewMovies(25)
	v2 := cq.NewCQ([]cq.Term{cq.Var("pid")}, []cq.Atom{
		cq.NewAtom("person", cq.Var("pid"), cq.Var("n"), cq.Cst("NASA")),
	})
	ok, _ := boundedness.BoundedOutputCQ(v2, m.Schema, m.Access)
	fmt.Printf("V2(pid) = person(pid, n, \"NASA\") under A0: bounded output = %v (expected false)\n", ok)
	capped := access.NewSchema(m.Phi1, m.Phi2,
		access.NewConstraint("person", []string{"affiliation"}, []string{"pid"}, 200))
	ok2, bound := boundedness.BoundedOutputCQ(v2, m.Schema, capped)
	fmt.Printf("with person(affiliation -> pid, 200) added: bounded output = %v, bound = %d\n", ok2, bound)
	fmt.Println("=> the rewriting Q2 of Example 3.3 is usable exactly when the view output is bounded.")
}

func expEx63() {
	header("EXP-EX63 — Example 6.3: CQ-to-FO beats CQ-to-UCQ at M = 5")
	e := vbrp.NewEx63()
	p := e.FOPlan()
	fmt.Printf("FO plan (V3 \\ V1) ∪ V2: size %d, in FO: %v, in UCQ: %v\n",
		p.Size(), plan.InLanguage(p, plan.LangFO), plan.InLanguage(p, plan.LangUCQ))
	t0 := time.Now()
	prob := &vbrp.Problem{S: e.S, A: e.A, Views: e.Views, M: e.M,
		Lang: plan.LangUCQ, Consts: e.Q.Constants()}
	dec, err := vbrp.Decide(cq.NewUCQ(e.Q), prob)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("exhaustive UCQ search (M=5): rewriting exists = %v, %d candidates checked, exact = %v [%s]\n",
		dec.Has, dec.Checked, dec.Exact, time.Since(t0).Round(time.Millisecond))
	fmt.Println("=> Q has a 5-bounded FO rewriting but no 5-bounded UCQ one (Theorem 6.1 context).")
}

// expChurn measures the live-update subsystem: sustained churn (batches of
// 1% of |D|, 40% deletes) applied through a Live handle, with per-batch
// incremental maintenance compared against a full refresh (re-materialize
// the views, rebuild the fetch indices, re-intern the plan inputs), and
// bounded-plan latency measured while D churns. The paper's
// scale-independence claim extends to updates exactly when the incremental
// path's cost tracks the delta, not |D|.
func expChurn() {
	header("EXP-CHURN — live updates: incremental maintenance vs full refresh, plan latency under churn")
	fmt.Println("| |D| | batch (1%) | apply/batch | full refresh | speedup | plan before | plan after | fetched ≤ 2·N0 |")
	fmt.Println("|---|---|---|---|---|---|---|---|")
	const batches = 25
	for _, n := range []int{1250, 12500, 50000} {
		m := workload.NewMovies(50)
		db := m.Generate(workload.MoviesParams{Persons: n, Movies: n, LikesPerPerson: 5, NASAShare: 10, Seed: 7})
		size0 := db.Size()
		sys, err := repro.NewSystem(m.Schema, m.Access, m.Views(), 11)
		if err != nil {
			log.Fatal(err)
		}

		// Full refresh cost at this size: what every deletion used to pay.
		t0 := time.Now()
		views, err := eval.Materialize(m.Views(), db)
		if err != nil {
			log.Fatal(err)
		}
		ixFresh, err := instance.BuildIndexes(db, m.Access)
		if err != nil {
			log.Fatal(err)
		}
		plan.PrepareViews(ixFresh, views)
		refresh := time.Since(t0)

		l, err := sys.Open(db)
		if err != nil {
			log.Fatal(err)
		}
		xi0 := m.Fig1Plan()
		t0 = time.Now()
		_, fetched0, err := l.Execute(xi0)
		if err != nil {
			log.Fatal(err)
		}
		planBefore := time.Since(t0)

		ch := workload.NewChurn(m, db, workload.ChurnParams{Seed: 1})
		batch := size0 / 100
		// Warm-up batch: pays the one-time lazy builds (table position
		// indexes) that steady-state serving amortizes away.
		ins, del := ch.Batch(batch)
		if _, err := l.ApplyDelta(ins, del); err != nil {
			log.Fatal(err)
		}
		t0 = time.Now()
		for b := 0; b < batches; b++ {
			ins, del := ch.Batch(batch)
			if _, err := l.ApplyDelta(ins, del); err != nil {
				log.Fatal(err)
			}
		}
		perBatch := time.Since(t0) / batches

		t0 = time.Now()
		rows, fetched1, err := l.Execute(xi0)
		if err != nil {
			log.Fatal(err)
		}
		planAfter := time.Since(t0)
		if fetched0 > 2*m.N0 || fetched1 > 2*m.N0 {
			log.Fatalf("fetch bound violated under churn: %d / %d > %d", fetched0, fetched1, 2*m.N0)
		}
		// Cross-check: the live answers equal full recomputation.
		direct, err := eval.CQOnDB(m.Q0, &eval.Source{DB: db})
		if err != nil {
			log.Fatal(err)
		}
		if !cq.RowsEqual(rows, direct) {
			log.Fatal("live plan answers diverge from recomputation after churn")
		}

		speedup := float64(refresh) / float64(perBatch)
		record(measurement{Experiment: "churn", Name: "batch-1pct", DBSize: size0,
			BatchOps: batch, MaintainNS: int64(perBatch), RefreshNS: int64(refresh), Speedup: speedup})
		record(measurement{Experiment: "churn", Name: "plan-latency", DBSize: l.Size(),
			PlanNS: int64(planAfter), Fetched: fetched1, Rows: len(rows)})
		fmt.Printf("| %d | %d ops | %s | %s | %.0fx | %s | %s | %d/%d |\n",
			size0, batch, perBatch.Round(time.Microsecond), refresh.Round(time.Microsecond), speedup,
			planBefore.Round(time.Microsecond), planAfter.Round(time.Microsecond), fetched1, 2*m.N0)
	}
	fmt.Println("\n(Incremental cost tracks the delta, not |D|: the speedup over full refresh")
	fmt.Println("widens as D grows — the live extension of the scale-independence claim.)")
}

// expPlanPick measures cost-based plan selection over the full VBRP
// candidate frontier: every enumerated bounded plan answers the query, but
// their realized fetch volumes differ by orders of magnitude, and the gap
// between the cost-picked and the worst candidate widens with |D|. It also
// demonstrates the prepared-query cache: a renamed, reordered — but
// equivalent — query re-Prepares without a second VBRP search.
func expPlanPick() {
	header("EXP-PLANPICK — cost-based selection over the full candidate frontier")
	pp := workload.NewPlanPick(5, 100_000)
	sys, err := repro.NewSystem(pp.Schema, pp.Access, pp.Views(), pp.M)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("| |D| | candidates | chosen fetch | worst fetch | fetch gap | chosen time | worst time |")
	fmt.Println("|---|---|---|---|---|---|---|")
	for _, rows := range []int{500, 5000, 50000} {
		db := pp.Generate(rows, 4, 7)
		l, err := sys.Open(db)
		if err != nil {
			log.Fatal(err)
		}
		pq, err := sys.Prepare(cq.NewUCQ(pp.Q), plan.LangCQ)
		if err != nil {
			log.Fatal(err)
		}
		direct, err := sys.EvalDirect(cq.NewUCQ(pp.Q), db)
		if err != nil {
			log.Fatal(err)
		}
		worstFetch, worstNS := -1, int64(0)
		for _, c := range pq.Candidates() {
			t0 := time.Now()
			crows, fetched, err := l.Execute(c)
			if err != nil {
				log.Fatal(err)
			}
			dt := int64(time.Since(t0))
			if !cq.RowsEqual(crows, direct) {
				log.Fatalf("candidate plan disagrees with direct evaluation:\n%s", plan.Render(c))
			}
			if fetched > worstFetch {
				worstFetch, worstNS = fetched, dt
			}
		}
		t0 := time.Now()
		arows, chosenFetch, err := pq.Execute(l)
		if err != nil {
			log.Fatal(err)
		}
		chosenNS := int64(time.Since(t0))
		if !cq.RowsEqual(arows, direct) {
			log.Fatal("chosen plan disagrees with direct evaluation")
		}
		gap := float64(worstFetch) / float64(max(1, chosenFetch))
		if gap < 2 {
			log.Fatalf("cost selection regressed: chosen plan fetches %d, worst %d (gap %.1fx < 2x)",
				chosenFetch, worstFetch, gap)
		}
		record(measurement{Experiment: "planpick", Name: "chosen", DBSize: db.Size(),
			PlanNS: chosenNS, Fetched: chosenFetch, Rows: len(arows), Candidates: len(pq.Candidates())})
		record(measurement{Experiment: "planpick", Name: "worst", DBSize: db.Size(),
			PlanNS: worstNS, Fetched: worstFetch, Speedup: gap})
		fmt.Printf("| %d | %d | %d | %d | %.0fx | %s | %s |\n",
			db.Size(), len(pq.Candidates()), chosenFetch, worstFetch, gap,
			time.Duration(chosenNS).Round(time.Microsecond), time.Duration(worstNS).Round(time.Microsecond))
	}

	// Prepared-query cache: a renamed + reordered (but equivalent) query
	// must be served from the cache, with no second exponential search.
	searches0, _, _ := sys.PrepareCacheStats()
	renamed := cq.NewCQ([]cq.Term{cq.Var("out")}, []cq.Atom{
		cq.NewAtom("R", cq.Cst("k"), cq.Var("out")),
	})
	renamed.Name = "Qren"
	pq2, err := sys.Prepare(cq.NewUCQ(renamed), plan.LangCQ)
	if err != nil {
		log.Fatal(err)
	}
	searches1, hits, _ := sys.PrepareCacheStats()
	hit := searches1 == searches0 && hits > 0
	record(measurement{Experiment: "planpick", Name: "renamed-prepare", CacheHit: hit})
	fmt.Printf("\nrenamed query re-Prepare: cache hit = %v (searches %d -> %d, hits %d); key: %s\n",
		hit, searches0, searches1, hits, pq2.Key())
	if !hit {
		log.Fatal("renamed-but-equivalent query missed the prepared-query cache")
	}
}

// expShard measures the sharded scatter-gather subsystem on the
// account/transaction fixture at P = 1, 2, 4, 8 shards:
//
//   - batched-delta throughput: churn batches routed per shard and
//     maintained concurrently (database, fetch indices, co-partitioned
//     view partitions — VPairs makes every txn op real join work).
//   - point-read serving under churn: prepared per-uid queries whose
//     bounded plans route to a single shard, executed by concurrent
//     readers while a writer applies large batches back-to-back. Besides
//     raw throughput, the per-batch maintenance window is tracked: epoch
//     publication means readers never block on it, but it bounds how far
//     the served epoch can lag the writer, and partitioning shrinks it
//     from the whole batch to one shard's slice — the architectural
//     signal, visible at any GOMAXPROCS.
//
// The delta-throughput ratio is a parallel scatter: it needs actual
// cores. With GOMAXPROCS >= 4 (CI and any real deployment) the run FAILS
// unless 8-shard delta throughput is >= 2x the single-shard baseline;
// the window-reduction gate applies everywhere. Serving throughput is
// gated as a NO-REGRESSION bound (8 shards >= 0.6x of 1 shard): under
// epoch-pinned reads serving is lock-free at every shard count, so the
// old >= 2x spread — which existed only because the RWMutex baseline
// stalled single-shard readers behind the writer — is gone by design
// (the epoch experiment gates the latency story directly).
//
// Scale independence is asserted throughout: per-query fetch volume is
// bounded by NTxn and identical at every shard count.
func expShard() {
	header("EXP-SHARD — sharded scatter-gather: partitioned maintenance and point-read serving")
	const (
		users      = 25_000
		txnsPer    = 4
		nTxn       = 8
		batchOps   = 2_000
		batches    = 16
		serveMs    = 900
		readers    = 4
		queryPool  = 24
		writeBatch = 16_000
	)
	w := workload.NewSharded(nTxn)
	sys, err := repro.NewSystem(w.Schema, w.Access, w.Views(), w.M)
	if err != nil {
		log.Fatal(err)
	}
	// One prepared handle per pooled uid; the VBRP search runs once per
	// uid and is shared by every shard count (planpick-style traffic).
	pqs := make([]*repro.PreparedQuery, queryPool)
	for i := range pqs {
		pq, err := sys.Prepare(cq.NewUCQ(w.Query(w.UID(i*97))), plan.LangCQ)
		if err != nil {
			log.Fatal(err)
		}
		pqs[i] = pq
	}

	fmt.Printf("|D| = %d tuples, delta batches of %d ops, %d readers vs %d-op writer batches, GOMAXPROCS=%d\n\n",
		users*(1+txnsPer), batchOps, readers, writeBatch, runtime.GOMAXPROCS(0))
	fmt.Println("| shards | delta ops/s | vs 1 shard | maint window (med) | window cut | serve q/s | vs 1 shard | fetched/query |")
	fmt.Println("|---|---|---|---|---|---|---|---|")

	var deltaBase, serveBase float64
	var exclBase time.Duration
	var deltaRatio, serveRatio, exclRatio float64
	for _, p := range []int{1, 2, 4, 8} {
		db := w.Generate(users, txnsPer, 7)
		mirror := db.Clone()
		h, err := sys.Open(db, repro.WithShards(p))
		if err != nil {
			log.Fatal(err)
		}
		sl := h.(*repro.LiveSharded)
		ch := w.NewChurn(mirror, 11)

		// Correctness preflight: served answers equal recomputation and
		// the fetch volume is bounded and shard-count-independent.
		fetchedPerQuery := 0
		for i, pq := range pqs {
			rows, fetched, err := pq.Execute(sl)
			if err != nil {
				log.Fatal(err)
			}
			if fetched > nTxn {
				log.Fatalf("P=%d: fetched %d > NTxn=%d — bounded plan lost its bound", p, fetched, nTxn)
			}
			fetchedPerQuery += fetched
			if i%6 == 0 {
				direct, err := sys.EvalDirect(cq.NewUCQ(w.Query(w.UID(i*97))), mirror)
				if err != nil {
					log.Fatal(err)
				}
				if !cq.RowsEqual(rows, direct) {
					log.Fatalf("P=%d: sharded answers diverge from recomputation", p)
				}
			}
		}

		// Phase A: batched-delta throughput (warm-up batch pays the lazy
		// one-time builds, mirroring the churn experiment).
		ins, del := ch.Batch(batchOps)
		if _, err := sl.ApplyDelta(ins, del); err != nil {
			log.Fatal(err)
		}
		runtime.GC()
		applied := 0
		excls := make([]time.Duration, 0, batches)
		t0 := time.Now()
		for b := 0; b < batches; b++ {
			ins, del := ch.Batch(batchOps)
			st, err := sl.ApplyDelta(ins, del)
			if err != nil {
				log.Fatal(err)
			}
			excls = append(excls, st.MaxExclusive)
			applied += len(ins) + len(del)
		}
		opsPerSec := float64(applied) / time.Since(t0).Seconds()
		// Median across batches: the typical window, robust against a
		// GC pause landing inside one shard's section.
		sort.Slice(excls, func(i, j int) bool { return excls[i] < excls[j] })
		excl := excls[len(excls)/2]

		// Phase B: point-read serving while a writer churns back-to-back.
		runtime.GC()
		var served atomic.Int64
		stop := make(chan struct{})
		var wg sync.WaitGroup
		for r := 0; r < readers; r++ {
			wg.Add(1)
			go func(r int) {
				defer wg.Done()
				for i := 0; ; i++ {
					select {
					case <-stop:
						return
					default:
					}
					if _, _, err := pqs[(r*5+i)%len(pqs)].Execute(sl); err != nil {
						log.Fatal(err)
					}
					served.Add(1)
				}
			}(r)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				ins, del := ch.Batch(writeBatch)
				if _, err := sl.ApplyDelta(ins, del); err != nil {
					log.Fatal(err)
				}
			}
		}()
		t0 = time.Now()
		time.Sleep(serveMs * time.Millisecond)
		// Wall stops when the readers do: the writer's in-flight batch
		// drains after close(stop) and must not pad the qps denominator
		// (it drains faster at higher shard counts, which would bias the
		// gated 8-vs-1 ratio).
		wall := time.Since(t0).Seconds()
		close(stop)
		wg.Wait()
		qps := float64(served.Load()) / wall

		if p == 1 {
			deltaBase, serveBase, exclBase = opsPerSec, qps, excl
		}
		dR, sR := opsPerSec/deltaBase, qps/serveBase
		eR := float64(exclBase) / float64(excl)
		if p == 8 {
			deltaRatio, serveRatio, exclRatio = dR, sR, eR
		}
		record(measurement{Experiment: "shard", Name: "deltas", Shards: p,
			DBSize: users * (1 + txnsPer), BatchOps: batchOps, OpsPerSec: opsPerSec,
			MaxExclusiveNS: int64(excl), ExclCut: eR, Speedup: dR})
		record(measurement{Experiment: "shard", Name: "serving", Shards: p,
			DBSize: users * (1 + txnsPer), QPS: qps, Speedup: sR,
			Fetched: fetchedPerQuery / len(pqs)})
		fmt.Printf("| %d | %.0f | %.2fx | %s | %.1fx | %.0f | %.2fx | %d |\n",
			p, opsPerSec, dR, excl.Round(time.Microsecond), eR, qps, sR, fetchedPerQuery/len(pqs))
	}

	fmt.Println("\n(The maintenance window is the longest single-shard slice of a batch's")
	fmt.Println("maintenance. Under epoch reads it blocks nobody — readers stay on the")
	fmt.Println("previous epoch, see -exp epoch for the latency proof — but it bounds the")
	fmt.Println("batch's publication lag and shrinks ~P-fold at any GOMAXPROCS. The")
	fmt.Println("wall-clock delta and serving ratios are a parallel scatter: they need")
	fmt.Println("cores, and are gated when GOMAXPROCS >= 4.)")
	if exclRatio < 2 {
		log.Fatalf("per-shard maintenance window at 8 shards shrank only %.2fx vs the single-shard baseline (< 2x)", exclRatio)
	}
	if runtime.GOMAXPROCS(0) >= 4 {
		if deltaRatio < 2 {
			log.Fatalf("delta throughput at 8 shards is %.2fx the single-shard baseline (< 2x with %d procs)",
				deltaRatio, runtime.GOMAXPROCS(0))
		}
		if serveRatio < 0.6 {
			log.Fatalf("serving throughput at 8 shards regressed to %.2fx the single-shard baseline (< 0.6x with %d procs)",
				serveRatio, runtime.GOMAXPROCS(0))
		}
	} else {
		fmt.Printf("\n(GOMAXPROCS=%d: the parallel-scatter throughput gates need >= 4 procs and were\n", runtime.GOMAXPROCS(0))
		fmt.Println("skipped; the maintenance-window gate above ran and is the single-core signal.)")
	}
}

// expEpoch measures what the epoch redesign buys readers: plan latency
// while a writer applies churn batches back-to-back. Under the old
// RWMutex design a read colliding with a batch stalled for up to the
// whole maintenance window (milliseconds at this size — the unbounded
// tail); under epoch-pinned snapshots a reader loads the current epoch
// pointer and never blocks, so its tail latency under churn must stay
// within a small factor of the idle tail.
//
// Gate (GOMAXPROCS >= 2: the reader needs a core the writer is not
// using): reader p99 under churn <= 3x max(idle p99, 250µs). The floor
// absorbs microsecond-scale scheduler noise; an RWMutex-style stall of
// even one maintenance window per 100 reads blows the gate by an order
// of magnitude.
func expEpoch() {
	header("EXP-EPOCH — epoch-pinned snapshot reads: reader latency under a churning writer")
	const (
		n        = 8000
		samples  = 4000
		batchOps = 1500
	)
	m := workload.NewMovies(50)
	db := m.Generate(workload.MoviesParams{Persons: n, Movies: n, LikesPerPerson: 5, NASAShare: 10, Seed: 7})
	size0 := db.Size()
	sys, err := repro.NewSystem(m.Schema, m.Access, m.Views(), 11)
	if err != nil {
		log.Fatal(err)
	}
	l, err := sys.Open(db)
	if err != nil {
		log.Fatal(err)
	}
	xi0 := m.Fig1Plan()
	ch := workload.NewChurn(m, db, workload.ChurnParams{Seed: 1})
	// Warm-up: lazy one-time builds plus one batch so steady state rules.
	ins, del := ch.Batch(batchOps)
	if _, err := l.ApplyDelta(ins, del); err != nil {
		log.Fatal(err)
	}
	if _, _, err := l.Execute(xi0); err != nil {
		log.Fatal(err)
	}

	sample := func() []time.Duration {
		lat := make([]time.Duration, samples)
		for i := range lat {
			t0 := time.Now()
			if _, _, err := l.Execute(xi0); err != nil {
				log.Fatal(err)
			}
			lat[i] = time.Since(t0)
		}
		sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
		return lat
	}
	pct := func(lat []time.Duration, p float64) time.Duration {
		return lat[min(len(lat)-1, int(p*float64(len(lat))))]
	}

	runtime.GC()
	idle := sample()
	idleP50, idleP99 := pct(idle, 0.50), pct(idle, 0.99)

	// Churn phase: a writer applies batches back-to-back while the same
	// reader samples.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	var batches atomic.Int64
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			ins, del := ch.Batch(batchOps)
			if _, err := l.ApplyDelta(ins, del); err != nil {
				log.Fatal(err)
			}
			batches.Add(1)
		}
	}()
	runtime.GC()
	churn := sample()
	close(stop)
	wg.Wait()
	churnP50, churnP99 := pct(churn, 0.50), pct(churn, 0.99)

	record(measurement{Experiment: "epoch", Name: "idle", DBSize: size0,
		P50NS: int64(idleP50), P99NS: int64(idleP99)})
	record(measurement{Experiment: "epoch", Name: "churn", DBSize: size0,
		P50NS: int64(churnP50), P99NS: int64(churnP99), BatchOps: batchOps, Batches: int(batches.Load())})

	fmt.Printf("|D| = %d tuples, %d latency samples per phase, churn batches of %d ops (%d applied while sampling), GOMAXPROCS=%d\n\n",
		size0, samples, batchOps, batches.Load(), runtime.GOMAXPROCS(0))
	fmt.Println("| phase | reader p50 | reader p99 |")
	fmt.Println("|---|---|---|")
	fmt.Printf("| idle | %s | %s |\n", idleP50.Round(time.Microsecond), idleP99.Round(time.Microsecond))
	fmt.Printf("| under churn | %s | %s |\n", churnP50.Round(time.Microsecond), churnP99.Round(time.Microsecond))

	floor := 250 * time.Microsecond
	bound := 3 * max(idleP99, floor)
	fmt.Printf("\ngate: churn p99 %s <= 3 x max(idle p99, %s) = %s\n",
		churnP99.Round(time.Microsecond), floor, bound.Round(time.Microsecond))
	fmt.Println("(readers load an atomic epoch pointer and never take a lock ApplyDelta")
	fmt.Println("holds; the RWMutex baseline stalled reads for whole maintenance windows.)")
	if runtime.GOMAXPROCS(0) >= 2 {
		if batches.Load() == 0 {
			log.Fatal("the churn writer applied no batches while sampling — the gate measured nothing")
		}
		if churnP99 > bound {
			log.Fatalf("reader p99 under churn %s exceeds %s — epoch reads are stalling behind the writer",
				churnP99, bound)
		}
	} else {
		fmt.Println("\n(GOMAXPROCS=1: the latency gate needs the reader and writer on separate procs; skipped.)")
	}
}

// expRecover measures what the WAL + checkpoint subsystem buys a restart:
// the time from process start (well, from sys.Open) to a serving handle,
// three ways over the SAME final state.
//
//   - cold rebuild: no durability — re-enumerate every view from the base
//     tables, rebuild indexes, recollect statistics (the pre-PR6 restart).
//   - log replay: recover a directory whose handle was never cleanly
//     closed — load the small opening checkpoint, replay the whole
//     journal through the incremental maintenance path.
//   - checkpointed restart: recover a directory that checkpointed
//     periodically and closed cleanly — load the newest checkpoint, seed
//     the engine's extents directly, replay (almost) nothing.
//
// Gate: checkpointed restart must reach serving >= 10x faster than the
// cold rebuild (restart = load + seed instead of re-deriving the
// quadratic VPairs join), and log replay must also beat the cold rebuild
// — replaying the history incrementally is cheaper than recomputing the
// final state's views from scratch.
func expRecover() {
	header("EXP-RECOVER — durable restart: checkpoint+replay vs cold rebuild")
	const (
		users    = 400
		txnsPer  = 48
		batches  = 40
		batchOps = 12
		ckptInt  = 16
	)
	w := workload.NewRecovery(2 * txnsPer)
	sys, err := repro.NewSystem(w.Schema, w.Access, w.Views(), 8)
	if err != nil {
		log.Fatal(err)
	}
	db := w.Generate(users, txnsPer, 17)
	size0 := db.Size()

	dirReplay, err := os.MkdirTemp("", "recover-replay-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dirReplay)
	dirCkpt, err := os.MkdirTemp("", "recover-ckpt-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dirCkpt)

	// Drive the identical deterministic stream into both durable dirs and
	// a plain database that becomes the cold-rebuild input.
	hReplay, err := sys.Open(db.Clone(), repro.WithDurability(dirReplay), repro.WithCheckpointEvery(0))
	if err != nil {
		log.Fatal(err)
	}
	hCkpt, err := sys.Open(db.Clone(), repro.WithDurability(dirCkpt), repro.WithCheckpointEvery(ckptInt))
	if err != nil {
		log.Fatal(err)
	}
	final := db.Clone()
	ch := w.NewChurn(db, 5)
	ops := 0
	for b := 0; b < batches; b++ {
		ins, del := ch.Batch(batchOps)
		ops += len(ins) + len(del)
		if _, err := hReplay.ApplyDelta(ins, del); err != nil {
			log.Fatal(err)
		}
		if _, err := hCkpt.ApplyDelta(ins, del); err != nil {
			log.Fatal(err)
		}
		if _, err := final.ApplyDelta(ins, del); err != nil {
			log.Fatal(err)
		}
	}
	// hCkpt closes cleanly (final checkpoint); hReplay is abandoned as a
	// crash would leave it — every batch is in the journal, none folded.
	if err := hCkpt.Close(); err != nil {
		log.Fatal(err)
	}

	recoverInfo := func(h repro.Handle) repro.RecoveryInfo {
		if l, ok := h.(*repro.Live); ok {
			return l.Recovery()
		}
		log.Fatalf("unexpected handle type %T", h)
		return repro.RecoveryInfo{}
	}
	probe := func(h repro.Handle) {
		rows, err := h.Snapshot().Fetch(w.Acct, repro.Tuple{w.UID(3)})
		if err != nil || len(rows) == 0 {
			log.Fatalf("serving probe failed: %d rows, %v", len(rows), err)
		}
	}

	runtime.GC()
	t0 := time.Now()
	hCold, err := sys.Open(final)
	if err != nil {
		log.Fatal(err)
	}
	probe(hCold)
	coldNS := time.Since(t0)

	runtime.GC()
	t0 = time.Now()
	hR, err := sys.Open(repro.NewDatabase(sys.Schema), repro.WithDurability(dirReplay), repro.WithCheckpointEvery(0))
	if err != nil {
		log.Fatal(err)
	}
	probe(hR)
	replayNS := time.Since(t0)
	ri := recoverInfo(hR)
	if ri.ReplayedEpochs != batches {
		log.Fatalf("log-replay recovery replayed %d epochs, want %d", ri.ReplayedEpochs, batches)
	}

	runtime.GC()
	t0 = time.Now()
	hC, err := sys.Open(repro.NewDatabase(sys.Schema), repro.WithDurability(dirCkpt), repro.WithCheckpointEvery(ckptInt))
	if err != nil {
		log.Fatal(err)
	}
	probe(hC)
	ckptNS := time.Since(t0)
	ci := recoverInfo(hC)
	if ci.ReplayedEpochs != 0 {
		log.Fatalf("checkpointed recovery replayed %d epochs, want 0 after a clean close", ci.ReplayedEpochs)
	}

	// The three handles must agree — recovery that is fast but wrong is
	// worthless. Extent row order is not canonical (enumeration vs
	// incremental arrival), so compare sorted.
	canon := func(h repro.Handle) string {
		views := h.Views()
		names := make([]string, 0, len(views))
		for name := range views {
			names = append(names, name)
		}
		sort.Strings(names)
		var b []byte
		for _, name := range names {
			rows := make([]string, len(views[name]))
			for i, r := range views[name] {
				rows[i] = fmt.Sprint(r)
			}
			sort.Strings(rows)
			b = fmt.Appendf(b, "%s%v\n", name, rows)
		}
		return string(b)
	}
	coldViews := canon(hCold)
	if canon(hR) != coldViews {
		log.Fatal("log-replay recovery diverged from the cold rebuild")
	}
	if canon(hC) != coldViews {
		log.Fatal("checkpointed recovery diverged from the cold rebuild")
	}

	record(measurement{Experiment: "recover", Name: "cold", DBSize: final.Size(),
		RecoverNS: int64(coldNS), BatchOps: batchOps, Batches: batches})
	record(measurement{Experiment: "recover", Name: "log-replay", DBSize: final.Size(),
		RecoverNS: int64(replayNS), ReplayedEpochs: ri.ReplayedEpochs, ReplayedOps: ri.ReplayedOps,
		Speedup: float64(coldNS) / float64(replayNS)})
	record(measurement{Experiment: "recover", Name: "checkpointed", DBSize: final.Size(),
		RecoverNS: int64(ckptNS), ReplayedEpochs: ci.ReplayedEpochs, ReplayedOps: ci.ReplayedOps,
		Speedup: float64(coldNS) / float64(ckptNS)})

	replayRate := float64(ri.ReplayedOps) / replayNS.Seconds()
	fmt.Printf("|D0| = %d, |Dfinal| = %d, %d journaled batches of %d ops (%d physical)\n\n",
		size0, final.Size(), batches, batchOps, ops)
	fmt.Println("| restart path | to serving | vs cold |")
	fmt.Println("|---|---|---|")
	fmt.Printf("| cold rebuild (re-enumerate views) | %s | 1.0x |\n", coldNS.Round(time.Microsecond))
	fmt.Printf("| log replay (%d epochs, %d ops) | %s | %.1fx |\n",
		ri.ReplayedEpochs, ri.ReplayedOps, replayNS.Round(time.Microsecond), float64(coldNS)/float64(replayNS))
	fmt.Printf("| checkpointed restart | %s | %.1fx |\n", ckptNS.Round(time.Microsecond), float64(coldNS)/float64(ckptNS))
	fmt.Printf("\nreplay throughput: %.0f ops/s; gate: checkpointed >= 10x cold, log replay >= 1.5x cold\n", replayRate)
	if got := float64(coldNS) / float64(ckptNS); got < 10 {
		log.Fatalf("checkpointed restart is only %.1fx faster than a cold rebuild (gate: >= 10x)", got)
	}
	if got := float64(coldNS) / float64(replayNS); got < 1.5 {
		log.Fatalf("log-replay recovery is only %.1fx faster than a cold rebuild (gate: >= 1.5x)", got)
	}
}

// liveHeap returns the live heap after forcing collection twice (the
// first cycle runs queued finalizers — the snapshot backstop among them —
// the second collects what they released).
func liveHeap() int64 {
	runtime.GC()
	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return int64(ms.HeapAlloc)
}

// expChurnMem measures steady-state memory under sustained bounded-domain
// churn: SwapChurn swaps rows in and out of a CLOSED universe (|D| and
// the dictionary plateau), every batch publishes an epoch, snapshots are
// taken and closed along the way — so any heap growth past the warmup
// floor is retained epoch state. The gate fails the run when the maximal
// post-warmup live heap exceeds 1.5x the floor: that is the bounded-memory
// property the epoch lifecycle layer (refcounted retention ring + COW
// compaction) exists to provide; before it, heap grew linearly with
// batches applied.
func expChurnMem() {
	header("EXP-CHURNMEM — bounded memory: steady-state heap under sustained swap churn")
	batches := 10000
	if s := os.Getenv("CHURNMEM_BATCHES"); s != "" {
		n, err := strconv.Atoi(s)
		if err != nil || n < 200 {
			log.Fatalf("CHURNMEM_BATCHES must be an integer >= 200, got %q", s)
		}
		batches = n
	}
	const retain = 8
	configs := []struct {
		name    string
		shards  int
		batches int
	}{
		{"unsharded", 0, batches},
		{"sharded-4", 4, batches / 4},
	}
	fmt.Println("| engine | batches | batch ops | heap floor | heap steady | ratio | reclaimed epochs | compaction passes |")
	fmt.Println("|---|---|---|---|---|---|---|---|")
	for _, cfg := range configs {
		m := workload.NewMovies(50)
		db := m.Generate(workload.MoviesParams{Persons: 4000, Movies: 4000, LikesPerPerson: 5, NASAShare: 10, Seed: 7})
		sys, err := repro.NewSystem(m.Schema, m.Access, m.Views(), 11)
		if err != nil {
			log.Fatal(err)
		}
		// The generator clones its pools BEFORE Open: the sharded engine
		// consumes the database's row storage.
		ch := workload.NewSwapChurn(m, db, workload.SwapChurnParams{Seed: 1})
		batch := db.Size() / 100
		opts := []repro.OpenOption{repro.WithRetainEpochs(retain)}
		if cfg.shards > 0 {
			opts = append(opts, repro.WithShards(cfg.shards))
		}
		h, err := sys.Open(db, opts...)
		if err != nil {
			log.Fatal(err)
		}
		xi0 := m.Fig1Plan()

		apply := func() {
			ins, del := ch.Batch(batch)
			if _, err := h.ApplyDelta(ins, del); err != nil {
				log.Fatal(err)
			}
		}
		warmup := cfg.batches / 10
		for b := 0; b < warmup; b++ {
			apply()
		}
		floor := liveHeap()

		applied := warmup
		steady := floor
		sampleEvery := cfg.batches / 20
		if sampleEvery < 1 {
			sampleEvery = 1
		}
		for b := warmup; b < cfg.batches; b++ {
			apply()
			applied++
			if b%16 == 0 {
				// Reader traffic: pin the current epoch, read, release.
				s := h.Snapshot()
				if _, _, err := s.Execute(xi0); err != nil {
					log.Fatal(err)
				}
				if err := s.Close(); err != nil {
					log.Fatal(err)
				}
			}
			if b%64 == 0 && applied > retain {
				// Point-in-time traffic through the retention ring.
				s, err := h.At(uint64(applied) - retain/2)
				if err != nil {
					log.Fatal(err)
				}
				if s.Size() == 0 {
					log.Fatal("retained epoch serves an empty instance")
				}
				if err := s.Close(); err != nil {
					log.Fatal(err)
				}
			}
			if b%sampleEvery == 0 {
				if hp := liveHeap(); hp > steady {
					steady = hp
				}
			}
		}
		if hp := liveHeap(); hp > steady {
			steady = hp
		}
		ratio := float64(steady) / float64(floor)
		lc := h.Lifecycle()
		fmt.Printf("| %s | %d | %d | %.1f MB | %.1f MB | %.2fx | %d | %d |\n",
			cfg.name, cfg.batches, batch,
			float64(floor)/(1<<20), float64(steady)/(1<<20), ratio,
			lc.ReclaimedEpochs, lc.CompactionPasses)
		record(measurement{Experiment: "churnmem", Name: cfg.name,
			Shards: cfg.shards, Batches: cfg.batches, BatchOps: batch,
			HeapFloorBytes: floor, HeapSteadyBytes: steady, HeapRatio: ratio,
			Reclaimed: lc.ReclaimedEpochs})
		if lc.LiveSnapshots != 0 {
			log.Fatalf("%s: %d snapshots still pinned after the run (all were closed)", cfg.name, lc.LiveSnapshots)
		}
		if lc.ReclaimedEpochs == 0 {
			log.Fatalf("%s: no epoch was ever reclaimed — the retention ring is not releasing", cfg.name)
		}
		if ratio > 1.5 {
			log.Fatalf("%s: steady-state heap is %.2fx the post-warmup floor (gate: <= 1.5x) — epoch state is leaking", cfg.name, ratio)
		}
		if err := h.Close(); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("\ngate: max post-warmup live heap <= 1.5x the warmup floor (retain = %d epochs)\n", retain)
}

// expFeedback measures the closed-loop optimizer on the adversarial skew
// fixture: the collected statistics misestimate the hot-group probe by
// >1000x, so open-loop selection pins a plan fetching ~375x more than the
// best candidate in its own frontier. The closed loop profiles every
// execution, overlays the realized group widths on the estimates, and
// re-ranks — the run GATES that the chosen plan's realized fetches land
// within 1.2x of the frontier's best after k executions and stay there
// (no flapping) over 1000 more, unsharded and at P = 8.
func expFeedback() {
	header("EXP-FEEDBACK — observed-cost feedback: closed-loop vs open-loop selection")
	const (
		k      = 8    // convergence budget (executions)
		steady = 1000 // stability window (further executions)
	)
	fmt.Println("| engine | candidates | open-loop fetch/exec | closed-loop fetch/exec | improvement | converged at | switches | explorations |")
	fmt.Println("|---|---|---|---|---|---|---|---|")
	for _, shards := range []int{0, 8} {
		fx := workload.NewPlanFeedback()
		sys, err := repro.NewSystem(fx.Schema, fx.Access, fx.Views(), fx.M)
		if err != nil {
			log.Fatal(err)
		}
		db := fx.Generate()
		direct, err := sys.EvalDirect(cq.NewUCQ(fx.Q), db)
		if err != nil {
			log.Fatal(err)
		}
		engine := "single"
		var h repro.Handle
		if shards > 0 {
			engine = fmt.Sprintf("sharded P=%d", shards)
			h, err = sys.Open(db, repro.WithShards(shards))
		} else {
			h, err = sys.Open(db)
		}
		if err != nil {
			log.Fatal(err)
		}
		pq, err := sys.Prepare(cq.NewUCQ(fx.Q), plan.LangCQ)
		if err != nil {
			log.Fatal(err)
		}

		// Frontier ground truth: realized |Dξ| of every candidate.
		cands := pq.Candidates()
		minFetch := -1
		for _, c := range cands {
			crows, fetched, err := h.Execute(c)
			if err != nil {
				log.Fatal(err)
			}
			if !cq.RowsEqual(crows, direct) {
				log.Fatalf("candidate plan disagrees with direct evaluation:\n%s", plan.Render(c))
			}
			if minFetch < 0 || fetched < minFetch {
				minFetch = fetched
			}
		}
		bound := 12 * max(1, minFetch) / 10 // the 1.2x convergence gate

		// Open-loop baseline: the estimate-ranked pick, never corrected.
		st, _ := h.Stats()
		openIdx, _ := plan.Best(cands, st)
		_, openFetch, err := h.Execute(cands[openIdx])
		if err != nil {
			log.Fatal(err)
		}
		if openFetch < 10*max(1, minFetch) {
			log.Fatalf("fixture not adversarial: open-loop pick fetches %d, frontier min %d", openFetch, minFetch)
		}

		// Closed loop: converge within k, then hold for `steady` more.
		convergedAt := -1
		lastFetch := -1
		for i := 1; i <= k; i++ {
			rows, fetched, err := pq.Execute(h)
			if err != nil {
				log.Fatal(err)
			}
			if !cq.RowsEqual(rows, direct) {
				log.Fatal("closed-loop answers diverge from direct evaluation")
			}
			lastFetch = fetched
			if convergedAt < 0 && fetched <= bound {
				convergedAt = i
			}
		}
		if convergedAt < 0 || lastFetch > bound {
			log.Fatalf("%s: no convergence after %d executions: fetched %d, frontier min %d (bound %d)",
				engine, k, lastFetch, minFetch, bound)
		}
		selStats, ok := pq.SelectionStats(h)
		if !ok {
			log.Fatal("no selection state after executing")
		}
		switchesAtK := selStats.Switches
		for i := 0; i < steady; i++ {
			_, fetched, err := pq.Execute(h)
			if err != nil {
				log.Fatal(err)
			}
			if fetched > bound {
				log.Fatalf("%s: plan flapped at steady-state execution %d: fetched %d (bound %d)",
					engine, i, fetched, bound)
			}
		}
		selStats, _ = pq.SelectionStats(h)
		if selStats.Switches != switchesAtK {
			log.Fatalf("%s: selection oscillated: %d -> %d switches over %d stable executions",
				engine, switchesAtK, selStats.Switches, steady)
		}
		improvement := float64(openFetch) / float64(max(1, lastFetch))
		record(measurement{Experiment: "feedback", Name: engine, DBSize: h.Size(),
			Candidates: len(cands), OpenLoopFetch: openFetch, Fetched: lastFetch,
			Speedup: improvement, ConvergedAt: convergedAt,
			Switches: selStats.Switches, Explorations: selStats.Explorations})
		fmt.Printf("| %s | %d | %d | %d | %.0fx | %d | %d | %d |\n",
			engine, len(cands), openFetch, lastFetch, improvement,
			convergedAt, selStats.Switches, selStats.Explorations)
		if err := h.Close(); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Println("\n(The open loop trusts skew-blind distinct-count averages and pins the hot-group")
	fmt.Println("probe forever; the closed loop pays the misestimate once, overlays the realized")
	fmt.Println("group width, and re-ranks its own cached frontier — no new VBRP search.)")
}

// expObs measures the observability tax on the epoch read path and
// verifies the instrumentation's exactness claim.
//
// Overhead: interleaved rounds of identical plan executions against an
// instrumented handle (metrics on, the default) and one opened
// WithoutMetrics, over identical databases. Recording on the read path
// is two clock reads, one histogram observe (three atomic adds) and a
// striped counter increment, so the median-round throughput ratio must
// stay >= 0.95 — metrics are not allowed to buy more than 5% of the
// epoch readers' throughput.
//
// Exactness: a third handle arms the slow-query log with a 1ns
// threshold so every execution is traced, pins a snapshot, and runs
// once; the trace's per-constraint group rows must sum to EXACTLY the
// snapshot's own fetched-tuple counter — the per-constraint attribution
// and the engine's fetch accounting are two views of the same count,
// and any drift between them is a lost or double-counted tuple.
func expObs() {
	header("EXP-OBS — observability overhead: instrumented vs bare epoch readers")
	const (
		n        = 3000
		rounds   = 9
		perRound = 800
	)
	m := workload.NewMovies(50)
	params := workload.MoviesParams{Persons: n, Movies: n, LikesPerPerson: 5, NASAShare: 10, Seed: 7}
	sys, err := repro.NewSystem(m.Schema, m.Access, m.Views(), 11)
	if err != nil {
		log.Fatal(err)
	}
	xi0 := m.Fig1Plan()

	open := func(opts ...repro.OpenOption) repro.Handle {
		h, err := sys.Open(m.Generate(params), opts...)
		if err != nil {
			log.Fatal(err)
		}
		// Warm-up: lazy one-time builds out of the measured rounds.
		if _, _, err := h.Execute(xi0); err != nil {
			log.Fatal(err)
		}
		return h
	}
	inst := open()
	bare := open(repro.WithoutMetrics())
	defer inst.Close()
	defer bare.Close()

	// Per-execution MINIMUM latency, not round throughput: on a shared
	// (often single-core) CI box, scheduler preemption, GC and thermal
	// noise swing whole-round throughput by 10-20% — far coarser than
	// the 5% being gated. Noise only ever ADDS latency, so the minimum
	// over thousands of individually-timed executions converges on the
	// clean cost of one execution, and that best case is exactly where
	// a per-call instrumentation tax must show.
	round := func(h repro.Handle, best time.Duration) time.Duration {
		for i := 0; i < perRound; i++ {
			t0 := time.Now()
			if _, _, err := h.Execute(xi0); err != nil {
				log.Fatal(err)
			}
			if d := time.Since(t0); d < best {
				best = d
			}
		}
		return best
	}
	// Interleave the rounds so clock drift and thermal noise land on
	// both sides evenly.
	instMin, bareMin := time.Duration(1<<62), time.Duration(1<<62)
	runtime.GC()
	for r := 0; r < rounds; r++ {
		instMin = round(inst, instMin)
		bareMin = round(bare, bareMin)
	}
	instPeak := 1 / instMin.Seconds()
	barePeak := 1 / bareMin.Seconds()
	ratio := instPeak / barePeak

	record(measurement{Experiment: "obs", Name: "instrumented", DBSize: inst.Size(), OpsPerSec: instPeak})
	record(measurement{Experiment: "obs", Name: "bare", DBSize: bare.Size(), OpsPerSec: barePeak})
	record(measurement{Experiment: "obs", Name: "overhead", Speedup: ratio})

	fmt.Printf("|D| = %d tuples, %d interleaved rounds of %d timed executions per handle, GOMAXPROCS=%d\n\n",
		inst.Size(), rounds, perRound, runtime.GOMAXPROCS(0))
	fmt.Println("| handle | best-case latency | best-case throughput (exec/s) |")
	fmt.Println("|---|---|---|")
	fmt.Printf("| instrumented (default) | %v | %.0f |\n", instMin, instPeak)
	fmt.Printf("| WithoutMetrics | %v | %.0f |\n", bareMin, barePeak)
	fmt.Printf("\ngate: instrumented/bare = %.3f >= 0.95\n", ratio)
	if ratio < 0.95 {
		log.Fatalf("metrics cost %.1f%% of epoch-reader throughput (gate: <= 5%%)", 100*(1-ratio))
	}

	// Exactness: trace attribution vs the snapshot's fetch counter.
	traced := open(repro.WithSlowQueryThreshold(time.Nanosecond))
	defer traced.Close()
	s := traced.Snapshot()
	defer s.Close()
	base := s.FetchedTuples()
	_, fetched, err := s.Execute(xi0)
	if err != nil {
		log.Fatal(err)
	}
	traces := traced.SlowQueries()
	if len(traces) == 0 {
		log.Fatal("a 1ns slow threshold traced nothing")
	}
	tr := traces[0]
	var groupRows int
	for _, g := range tr.Groups {
		groupRows += g.Rows
	}
	pinned := s.FetchedTuples() - base
	fmt.Printf("\ntrace reconciliation at epoch %d: trace fetched %d, group-rows sum %d, snapshot counted %d\n",
		tr.EpochSeq, tr.Fetched, groupRows, pinned)
	if tr.Fetched != fetched || groupRows != fetched || pinned != fetched {
		log.Fatalf("trace accounting diverged: exec reported %d, trace %d, groups %d, snapshot %d",
			fetched, tr.Fetched, groupRows, pinned)
	}
	fmt.Println("(the fetch gauge, the snapshot counter and the trace groups all read the same")
	fmt.Println("per-call attribution — equality is by construction, and gated here.)")
}
