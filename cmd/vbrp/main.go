// Command vbrp checks bounded rewritability for queries written in the
// text syntax of internal/parse. The input program declares access
// constraints, views and queries; every relation mentioned is inferred
// into the schema with positional attribute names.
//
// Usage:
//
//	vbrp -file program.txt [-M 8] [-lang CQ|UCQ|FO+] [-query Q]
//	vbrp -demo            # run the built-in Example 1.1 program
//
// Program syntax:
//
//	# constraints:         rel(x, y -> z, N)
//	movie(studio, release -> mid, 100)
//	rating(mid -> rank, 1)
//	# views: rules whose name starts with V
//	V1(mid) :- person(p, n, "NASA"), movie(mid, y, s, r), like(p, mid, "movie").
//	# queries: any other rule; repeated names form unions
//	Q0(mid) :- person(p, n, "NASA"), movie(mid, y, "Universal", "2014"), like(p, mid, "movie"), rating(mid, "5").
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"repro/internal/cq"
	"repro/internal/fo"
	"repro/internal/parse"
	"repro/internal/plan"
	"repro/internal/topped"
	"repro/internal/vbrp"
)

const demoProgram = `
# Example 1.1: the movie / Graph-Search workload
rel person(pid, name, affiliation)
rel movie(mid, mname, studio, release)
rel rating(mid, rank)
rel like(pid, id, type)

movie(studio, release -> mid, 100)
rating(mid -> rank, 1)

V1(mid) :- person(p, n, "NASA"), movie(mid, y, s, r), like(p, mid, "movie").
Q0(mid) :- movie(mid, y, "Universal", "2014"), V1(mid), rating(mid, "5").
`

func main() {
	file := flag.String("file", "", "program file (see package comment for syntax)")
	demo := flag.Bool("demo", false, "run the built-in Example 1.1 program")
	m := flag.Int("M", 16, "plan size bound M")
	langName := flag.String("lang", "CQ", "plan language: CQ, UCQ or FO+")
	queryName := flag.String("query", "", "check only this query (default: all)")
	exact := flag.Bool("exact", false, "run the exact enumeration decider instead of the PTIME effective syntax")
	flag.Parse()

	var text string
	switch {
	case *demo:
		text = demoProgram
	case *file != "":
		b, err := os.ReadFile(*file)
		if err != nil {
			log.Fatal(err)
		}
		text = string(b)
	default:
		fmt.Fprintln(os.Stderr, "usage: vbrp -file program.txt | vbrp -demo")
		os.Exit(2)
	}

	prog, err := parse.ParseProgram(text)
	if err != nil {
		log.Fatal(err)
	}
	lang := plan.LangCQ
	switch strings.ToUpper(*langName) {
	case "CQ":
	case "UCQ":
		lang = plan.LangUCQ
	case "FO+", "POSFO", "EFO+":
		lang = plan.LangPosFO
	default:
		log.Fatalf("unknown language %q (want CQ, UCQ or FO+)", *langName)
	}

	// Split rules into views (name starts with V) and queries; infer the
	// schema from all atoms.
	views := map[string]*cq.UCQ{}
	queries := map[string]*cq.UCQ{}
	var queryOrder []string
	for _, name := range prog.Order {
		u := prog.Queries[name]
		if strings.HasPrefix(name, "V") {
			views[name] = u
		} else {
			queries[name] = u
			queryOrder = append(queryOrder, name)
		}
	}
	s := prog.Schema
	if len(s.Relations) == 0 {
		log.Fatal("vbrp: the program declares no relations (add `rel name(attr, ...)` lines)")
	}
	if err := prog.Constraints.Validate(s); err != nil {
		log.Fatal(err)
	}
	viewArity := map[string]int{}
	for name, u := range views {
		viewArity[name] = len(u.Disjuncts[0].Head)
	}
	for name, u := range queries {
		for _, d := range u.Disjuncts {
			if err := d.Validate(s, viewArity); err != nil {
				log.Fatalf("query %s: %v", name, err)
			}
		}
	}
	for name, u := range views {
		for _, d := range u.Disjuncts {
			if err := d.Validate(s, viewArity); err != nil {
				log.Fatalf("view %s: %v", name, err)
			}
		}
	}

	fmt.Printf("schema:\n%s\n\naccess schema:\n%s\n", s, prog.Constraints)
	for _, name := range queryOrder {
		if *queryName != "" && name != *queryName {
			continue
		}
		u := queries[name]
		fmt.Printf("\n=== %s ===\n%s\n", name, u)
		if *exact {
			var consts []string
			for _, d := range u.Disjuncts {
				consts = append(consts, d.Constants()...)
			}
			prob := &vbrp.Problem{S: s, A: prog.Constraints, Views: views, M: *m, Lang: lang, Consts: consts}
			dec, err := vbrp.Decide(u, prob)
			if err != nil {
				log.Fatal(err)
			}
			if dec.Has {
				fmt.Printf("HAS an %d-bounded rewriting in %s (checked %d candidates):\n%s",
					*m, lang, dec.Checked, plan.Render(dec.Plan))
			} else if dec.Exact {
				fmt.Printf("has NO %d-bounded rewriting in %s (checked %d candidates)\n", *m, lang, dec.Checked)
			} else {
				fmt.Printf("search truncated after %d candidates: no witness found\n", dec.Checked)
			}
			continue
		}
		// Effective-syntax path (PTIME): embed as FO (single disjunct) or
		// as a disjunction.
		fq := toFO(u)
		if fq == nil {
			fmt.Println("cannot embed the union into a single safe FO query; use -exact")
			continue
		}
		checker := topped.NewChecker(s, prog.Constraints, views)
		res := checker.Check(fq, *m)
		if res.Topped {
			fmt.Printf("topped by (R, V, A, M=%d): %d-node plan\n%s", *m, res.Size, plan.Render(res.Plan))
			rep := plan.Conforms(res.Plan, s, prog.Constraints, views)
			fmt.Printf("conforms: %v, fetch bound: %d\n", rep.Conforms, rep.FetchBound)
		} else {
			fmt.Printf("not topped: %s\n", res.Reason)
		}
	}
}

// toFO embeds a UCQ into one FO query; nil when the disjunct heads differ
// in arity.
func toFO(u *cq.UCQ) *fo.Query {
	var body fo.Expr
	var head []string
	for i, d := range u.Disjuncts {
		fq := fo.FromCQ(d)
		if i == 0 {
			head = fq.Head
			body = fq.Body
			continue
		}
		if len(fq.Head) != len(head) {
			return nil
		}
		sub := map[string]cq.Term{}
		for j, h := range fq.Head {
			sub[h] = cq.Var(head[j])
		}
		body = &fo.Or{L: body, R: fo.Substitute(fo.Rectify(fq.Body), sub)}
	}
	if body == nil {
		return nil
	}
	return &fo.Query{Name: u.Name, Head: head, Body: body}
}
