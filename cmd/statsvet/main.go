// Command statsvet enforces the repository's stats-struct contract:
// every EXPORTED struct type whose name marks it as a poll-style
// result (…Stats, …Metrics, …Trace, …Snapshot, …Info, …Obs) must
// carry a doc comment that states its copy semantics — whether it is
// a plain value safe to copy, or retains references to live engine
// state. These types cross the API boundary as return values, so a
// reader deciding whether to cache, copy, or share one must not have
// to read the implementation.
//
// Usage: statsvet [dir]   (defaults to ".", walks recursively,
// skipping _test.go files, testdata and dot-directories). Exits
// non-zero listing every violation.
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"strings"
)

// nameRE marks the type names the contract covers.
var nameRE = regexp.MustCompile(`(Stats|Metrics|Trace|Snapshot|Info|Obs)$`)

// copyRE is the statement the doc comment must make: some form of the
// word "copy" (e.g. "safe to copy", "must not be copied", "copies
// share the underlying maps") or the "plain value" idiom.
var copyRE = regexp.MustCompile(`(?i)(cop(y|ies|ied|ying)|plain value)`)

func main() {
	root := "."
	if len(os.Args) > 1 {
		root = os.Args[1]
	}
	fset := token.NewFileSet()
	var bad []string
	checked := 0
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if name != "." && (strings.HasPrefix(name, ".") || name == "testdata" || name == "vendor") {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.TYPE {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok || !ts.Name.IsExported() || !nameRE.MatchString(ts.Name.Name) {
					continue
				}
				// Structs and type aliases are result values; interfaces
				// and other kinds are out of scope.
				if _, isStruct := ts.Type.(*ast.StructType); !isStruct && !ts.Assign.IsValid() {
					continue
				}
				checked++
				doc := ts.Doc
				if doc == nil {
					doc = gd.Doc
				}
				switch {
				case doc == nil:
					bad = append(bad, fmt.Sprintf("%s: %s has no doc comment (must state copy semantics)",
						fset.Position(ts.Pos()), ts.Name.Name))
				case !copyRE.MatchString(doc.Text()):
					bad = append(bad, fmt.Sprintf("%s: %s's doc comment does not state its copy semantics",
						fset.Position(ts.Pos()), ts.Name.Name))
				}
			}
		}
		return nil
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "statsvet:", err)
		os.Exit(2)
	}
	if len(bad) > 0 {
		for _, b := range bad {
			fmt.Fprintln(os.Stderr, b)
		}
		fmt.Fprintf(os.Stderr, "statsvet: %d of %d stats structs violate the doc contract\n", len(bad), checked)
		os.Exit(1)
	}
	fmt.Printf("statsvet: %d stats structs documented\n", checked)
}
