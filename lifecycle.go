package repro

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/obs"
)

// ErrEpochRetired is wrapped by Handle.At when the requested epoch has
// left the retention ring (or was never published).
var ErrEpochRetired = fmt.Errorf("repro: epoch retired from the retention ring")

// Compaction thresholds. A compaction pass runs on the writer after a
// retired epoch's last pin drops; it repacks copy-on-write storage whose
// live fraction fell below these bounds (the pass itself is a cheap
// len/cap scan — actual repacking only happens when a threshold trips).
const (
	// extentCompactMinCap: view-extent backing arrays below this capacity
	// are never repacked — the copy costs more than the slack is worth.
	extentCompactMinCap = 1024
	// extentCompactFrac: repack an extent's backing array when the live
	// rows occupy less than this fraction of its capacity.
	extentCompactFrac = 0.5
	// vindexCompactEvery: compaction passes between full fetch-index
	// repacks. The index repack walks the whole trie (O(index), vs the
	// extent scan's O(views)), so it runs on a coarse cadence; amortized
	// per-batch cost stays O(index)/vindexCompactEvery.
	vindexCompactEvery = 512
)

// LifecycleStats reports a handle's epoch-retention and reclamation
// counters (see Handle.Lifecycle). Reclamation counters are advisory:
// they drive compaction scheduling and observability, never reader
// safety — epoch structures are immutable and garbage-collected, so a
// racy double-count cannot unpublish anything a reader still holds.
// LifecycleStats is a plain value copy; it retains no reference to the
// lifecycle it was read from.
type LifecycleStats struct {
	// RetainedEpochs is the retention ring's current length: the epochs
	// addressable through At (WithRetainEpochs bounds it).
	RetainedEpochs int
	// LiveSnapshots counts snapshots acquired and not yet released by
	// Close or the finalizer backstop.
	LiveSnapshots int
	// ReclaimedEpochs counts epochs whose last pin dropped after they
	// left the ring — the "truly dead" events that trigger compaction.
	ReclaimedEpochs int64
	// FinalizedSnapshots counts snapshots released by the GC finalizer
	// backstop instead of an explicit Close. Nonzero values mean callers
	// are leaking snapshots; the backstop is best-effort (it needs a GC
	// cycle to run) and no substitute for Close.
	FinalizedSnapshots int64
	// CompactionPasses counts writer-side compaction scans.
	CompactionPasses int64
	// RepackedExtents counts view extents whose backing array was
	// repacked below the live-fraction threshold.
	RepackedExtents int64
	// RepackedIndexGroups counts fetch-index groups repacked to exact
	// capacity (summed across shards on the sharded engine).
	RepackedIndexGroups int64
}

// lifecycle tracks one handle's epoch retention: the bounded ring of
// addressable epochs, the advisory refcounts' death notices, and the
// compaction counters. The ring is shared by the writer (push, under the
// handle's write lock) and At readers, so its own mutex guards it; the
// counters are atomics.
type lifecycle struct {
	retain int // ring capacity, >= 1 (the current epoch is always ringed)

	mu   sync.Mutex
	ring []*epochState // oldest first; each entry holds one ring pin

	dead      atomic.Int64 // reclaimed epochs not yet consumed by a compaction scan
	snaps     atomic.Int64
	finalized atomic.Int64
	reclaimed atomic.Int64
	passes    atomic.Int64
	extents   atomic.Int64
	groups    atomic.Int64
	scans     int // writer-side cadence counter for the fetch-index repack

	met *obs.Core // the owning handle's metrics core (nil when disabled)
}

func newLifecycle(retain int, met *obs.Core) *lifecycle {
	if retain < 1 {
		retain = 1
	}
	lc := &lifecycle{retain: retain, met: met}
	if met != nil {
		// Function gauges read the authoritative lifecycle counters at
		// snapshot time instead of maintaining shadow copies, so the
		// exported values can never drift from Handle.Lifecycle.
		met.Reg.GaugeFunc("repro_snapshot_pins",
			"open snapshots pinning an epoch", lc.snaps.Load)
		met.Reg.GaugeFunc("repro_snapshot_finalized_total",
			"snapshots released by the GC backstop instead of Close", lc.finalized.Load)
		met.Reg.GaugeFunc("repro_epochs_retained",
			"retention ring length (epochs addressable through At)",
			func() int64 {
				lc.mu.Lock()
				defer lc.mu.Unlock()
				return int64(len(lc.ring))
			})
		met.Reg.GaugeFunc("repro_epochs_reclaimed_total",
			"epochs whose last pin dropped after leaving the ring", lc.reclaimed.Load)
		met.Reg.GaugeFunc("repro_compaction_passes_total",
			"writer-side compaction scans", lc.passes.Load)
		met.Reg.GaugeFunc("repro_compaction_extents_total",
			"view extents repacked below the live-fraction threshold", lc.extents.Load)
		met.Reg.GaugeFunc("repro_compaction_index_groups_total",
			"fetch-index groups repacked to exact capacity", lc.groups.Load)
	}
	return lc
}

// acquire pins the epoch. Pins are advisory (they inform compaction, not
// reader safety — immutability plus the garbage collector provide that),
// which is why a reader may acquire an epoch it loaded from the handle's
// atomic pointer without coordinating with a concurrent eviction: a
// 0→1 "resurrection" race at worst double-counts a death notice.
func (e *epochState) acquire() { e.refs.Add(1) }

// release drops one pin; the last release of a RETIRED epoch (one the
// ring evicted) files a death notice for the writer's next compaction
// scan.
func (e *epochState) release() {
	if e.refs.Add(-1) == 0 && e.retired.Load() && e.lc != nil {
		e.lc.dead.Add(1)
		e.lc.reclaimed.Add(1)
	}
}

// push appends a freshly published epoch to the ring and evicts beyond
// the retention bound. Called by the publishing writer only.
func (lc *lifecycle) push(e *epochState) {
	e.lc = lc
	e.acquire() // the ring's pin
	lc.mu.Lock()
	lc.ring = append(lc.ring, e)
	var evicted []*epochState
	for len(lc.ring) > lc.retain {
		old := lc.ring[0]
		copy(lc.ring, lc.ring[1:])
		lc.ring[len(lc.ring)-1] = nil
		lc.ring = lc.ring[:len(lc.ring)-1]
		evicted = append(evicted, old)
	}
	lc.mu.Unlock()
	for _, old := range evicted {
		// Retire BEFORE releasing: if no snapshot pins the epoch, this
		// very release files its death notice.
		old.retired.Store(true)
		old.release()
	}
}

// snapshotCur wraps the handle's current epoch as a counted snapshot.
func (lc *lifecycle) snapshotCur(hid uint64, e *epochState, hfetched *atomic.Int64) *Snapshot {
	e.acquire()
	return lc.newSnapshot(hid, e, hfetched)
}

// snapshotAt serves a point-in-time read from the retention ring. The
// acquire happens under the ring lock, so it cannot race an eviction: an
// epoch found in the ring still holds its ring pin.
func (lc *lifecycle) snapshotAt(hid uint64, seq uint64, hfetched *atomic.Int64) (*Snapshot, error) {
	lc.mu.Lock()
	for _, e := range lc.ring {
		if e.seq == seq {
			e.acquire()
			lc.mu.Unlock()
			return lc.newSnapshot(hid, e, hfetched), nil
		}
	}
	var lo, hi uint64
	if len(lc.ring) > 0 {
		lo, hi = lc.ring[0].seq, lc.ring[len(lc.ring)-1].seq
	}
	lc.mu.Unlock()
	return nil, fmt.Errorf("repro: epoch %d not retained (window [%d, %d]; see WithRetainEpochs): %w", seq, lo, hi, ErrEpochRetired)
}

// newSnapshot registers an ALREADY-acquired epoch pin as a snapshot and
// arms the finalizer backstop.
func (lc *lifecycle) newSnapshot(hid uint64, e *epochState, hfetched *atomic.Int64) *Snapshot {
	s := &Snapshot{hid: hid, e: e, hfetched: hfetched, lc: lc}
	lc.snaps.Add(1)
	runtime.SetFinalizer(s, finalizeSnapshot)
	return s
}

// finalizeSnapshot is the GC backstop for snapshots dropped without
// Close: best-effort (it needs a collection cycle to run, and until then
// the epoch stays pinned), counted so leaks are observable.
func finalizeSnapshot(s *Snapshot) {
	if s.closed.CompareAndSwap(false, true) {
		s.lc.finalized.Add(1)
		s.lc.snaps.Add(-1)
		s.e.release()
	}
}

// Close releases the snapshot's epoch pin, letting a superseded epoch be
// reclaimed (and compacted around) as soon as its last pin drops. Close
// is idempotent and safe for concurrent use; it always returns nil (the
// error return keeps it an io.Closer). Reads through a closed snapshot
// still work — the epoch's structures are immutable and garbage-collected
// — but a closed snapshot no longer counts as a pin, so prefer closing
// only when done. Snapshots dropped unclosed are released by a GC
// finalizer backstop; that is best-effort and delays reclamation until a
// collection cycle, so long-running servers should Close explicitly.
func (s *Snapshot) Close() error {
	if s.lc == nil {
		return nil // transient internal snapshot (e.g. Views decoding): never pinned
	}
	if s.closed.CompareAndSwap(false, true) {
		runtime.SetFinalizer(s, nil)
		s.lc.snaps.Add(-1)
		s.e.release()
	}
	return nil
}

// stats snapshots the counters.
func (lc *lifecycle) stats() LifecycleStats {
	lc.mu.Lock()
	n := len(lc.ring)
	lc.mu.Unlock()
	return LifecycleStats{
		RetainedEpochs:      n,
		LiveSnapshots:       int(lc.snaps.Load()),
		ReclaimedEpochs:     lc.reclaimed.Load(),
		FinalizedSnapshots:  lc.finalized.Load(),
		CompactionPasses:    lc.passes.Load(),
		RepackedExtents:     lc.extents.Load(),
		RepackedIndexGroups: lc.groups.Load(),
	}
}
