package repro

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/cq"
	"repro/internal/eval"
	"repro/internal/instance"
	"repro/internal/plan"
	"repro/internal/workload"
)

// shardCounts covered by the differential harness.
var shardCounts = []int{1, 2, 3, 8}

// ---- random system generator (schema, constraints, views, plans) ----

const diffPool = 9 // instance values and query constants share "v0".."v8"

func diffVal(rng *rand.Rand) string { return fmt.Sprintf("v%d", rng.Intn(diffPool)) }

func diffSchema(rng *rand.Rand) *Schema {
	nRel := 2 + rng.Intn(2)
	rels := make([]*Relation, nRel)
	for i := range rels {
		arity := 1 + rng.Intn(3)
		attrs := make([]string, arity)
		for j := range attrs {
			attrs[j] = fmt.Sprintf("a%d", j)
		}
		rels[i] = NewRelation(fmt.Sprintf("R%d", i), attrs...)
	}
	return NewSchema(rels...)
}

// diffAccess draws 1-2 constraints per relation with random X (sometimes
// empty, so broadcast fetches are exercised) and random non-empty Y.
func diffAccess(rng *rand.Rand, s *Schema) *AccessSchema {
	a := NewAccessSchema()
	for _, r := range s.Relations {
		for k := 0; k < 1+rng.Intn(2); k++ {
			var x, y []string
			for _, attr := range r.Attrs {
				if rng.Float64() < 0.4 {
					x = append(x, attr)
				}
				if rng.Float64() < 0.6 {
					y = append(y, attr)
				}
			}
			if rng.Float64() < 0.2 {
				x = nil
			}
			if len(y) == 0 {
				y = []string{r.Attrs[rng.Intn(r.Arity())]}
			}
			a.Add(NewConstraint(r.Name, x, y, 2+rng.Intn(6)))
		}
	}
	return a
}

// diffView draws a random UCQ view (1-2 disjuncts, 1-3 atoms, shared and
// repeated variables, constants from the value pool).
func diffView(rng *rand.Rand, s *Schema, name string) *UCQ {
	arity := 1 + rng.Intn(2)
	u := &UCQ{Name: name}
	for d := 0; d < 1+rng.Intn(2); d++ {
		var atoms []Atom
		var vars []string
		for a := 0; a < 1+rng.Intn(3); a++ {
			rel := s.Relations[rng.Intn(len(s.Relations))]
			args := make([]Term, rel.Arity())
			for i := range args {
				switch {
				case rng.Float64() < 0.15:
					args[i] = Cst(diffVal(rng))
				case len(vars) > 0 && rng.Float64() < 0.5:
					args[i] = Var(vars[rng.Intn(len(vars))])
				default:
					v := fmt.Sprintf("x%d", len(vars))
					vars = append(vars, v)
					args[i] = Var(v)
				}
			}
			atoms = append(atoms, Atom{Rel: rel.Name, Args: args})
		}
		head := make([]Term, arity)
		for i := range head {
			if len(vars) == 0 || rng.Float64() < 0.1 {
				head[i] = Cst(diffVal(rng))
			} else {
				head[i] = Var(vars[rng.Intn(len(vars))])
			}
		}
		u.Disjuncts = append(u.Disjuncts, NewCQ(head, atoms))
	}
	return u
}

// diffPlans builds the plan battery run against every handle: a fetch
// plan per constraint (routed or broadcast, with present and absent
// keys), a selection over every view (the gather path), and whatever
// bounded candidates the VBRP search finds for a couple of small random
// queries (the "random queries" leg of the harness).
func diffPlans(t *testing.T, rng *rand.Rand, sys *System) []Plan {
	var plans []Plan
	for _, c := range sys.Access.Constraints {
		if len(c.X) == 0 {
			plans = append(plans, &plan.Fetch{C: c})
			continue
		}
		for trial := 0; trial < 2; trial++ {
			var child plan.Node
			for _, attr := range c.X {
				leaf := plan.Node(&plan.Const{Attr: attr, Val: diffVal(rng)})
				if child == nil {
					child = leaf
				} else {
					child = &plan.Product{L: child, R: leaf}
				}
			}
			plans = append(plans, &plan.Fetch{Child: child, C: c})
		}
	}
	for name, def := range sys.Views {
		arity := len(def.Disjuncts[0].Head)
		cols := make([]string, arity)
		for i := range cols {
			cols[i] = fmt.Sprintf("h%d", i)
		}
		v := &plan.View{Name: name, Cols: cols}
		plans = append(plans, v,
			&plan.Select{Child: v, Cond: []plan.CondItem{{L: cols[0], RConst: true, R: diffVal(rng)}}})
	}
	for q := 0; q < 2; q++ {
		var atoms []Atom
		var vars []string
		for a := 0; a < 1+rng.Intn(2); a++ {
			rel := sys.Schema.Relations[rng.Intn(len(sys.Schema.Relations))]
			args := make([]Term, rel.Arity())
			for i := range args {
				switch {
				case rng.Float64() < 0.4:
					args[i] = Cst(diffVal(rng))
				case len(vars) > 0 && rng.Float64() < 0.4:
					args[i] = Var(vars[rng.Intn(len(vars))])
				default:
					v := fmt.Sprintf("q%d", len(vars))
					vars = append(vars, v)
					args[i] = Var(v)
				}
			}
			atoms = append(atoms, Atom{Rel: rel.Name, Args: args})
		}
		if len(vars) == 0 {
			continue
		}
		cands, err := sys.searchCandidates(NewUCQ(NewCQ([]Term{Var(vars[0])}, atoms)), LangUCQ)
		if err != nil && len(cands) == 0 {
			continue // truncated or unsupported shape: the battery above still covers
		}
		for i, c := range cands {
			if i >= 3 {
				break
			}
			plans = append(plans, c.Plan)
		}
	}
	if len(plans) == 0 {
		t.Fatal("differential battery is empty")
	}
	return plans
}

// assertHandlesAgree runs every plan on the unsharded handle and each
// sharded one, requiring identical answer rows AND identical fetch
// totals, then compares full view snapshots.
func assertHandlesAgree(t *testing.T, plans []Plan, l Handle, sharded map[int]*LiveSharded) {
	t.Helper()
	for pi, p := range plans {
		wantRows, wantFetched, wantErr := l.Execute(p)
		for _, pcount := range shardCounts {
			sl := sharded[pcount]
			gotRows, gotFetched, gotErr := sl.Execute(p)
			if (wantErr == nil) != (gotErr == nil) {
				t.Fatalf("plan %d, P=%d: error mismatch: unsharded %v, sharded %v", pi, pcount, wantErr, gotErr)
			}
			if wantErr != nil {
				continue
			}
			if !cq.RowsEqual(gotRows, wantRows) {
				eval.SortRows(gotRows)
				eval.SortRows(wantRows)
				t.Fatalf("plan %d, P=%d: results diverge\nplan:\n%ssharded %d rows: %v\nunsharded %d rows: %v",
					pi, pcount, plan.Render(p), len(gotRows), gotRows, len(wantRows), wantRows)
			}
			if gotFetched != wantFetched {
				t.Fatalf("plan %d, P=%d: fetch totals diverge: sharded %d, unsharded %d\nplan:\n%s",
					pi, pcount, gotFetched, wantFetched, plan.Render(p))
			}
		}
	}
	want := l.Views()
	for _, pcount := range shardCounts {
		got := sharded[pcount].Views()
		for name, w := range want {
			if !cq.RowsEqual(got[name], w) {
				t.Fatalf("P=%d: view %s diverges: %d rows vs %d", pcount, name, len(got[name]), len(w))
			}
		}
	}
}

// TestShardedDifferentialRandom is the sharded differential harness:
// random schemas, access constraints, views, plans and delta streams, run
// on the unsharded Live handle and on sharded handles with P ∈ {1,2,3,8}.
// Answer rows, fetch totals, per-batch delta stats and view snapshots
// must all agree at every checkpoint. CI runs this under -race.
func TestShardedDifferentialRandom(t *testing.T) {
	const (
		trials     = 3
		batches    = 24
		batchSize  = 18
		checkEvery = 6
	)
	for trial := 0; trial < trials; trial++ {
		rng := rand.New(rand.NewSource(int64(7000 + trial)))
		s := diffSchema(rng)
		a := diffAccess(rng, s)
		views := map[string]*UCQ{}
		for v := 0; v < 1+rng.Intn(3); v++ {
			name := fmt.Sprintf("W%d", v)
			views[name] = diffView(rng, s, name)
		}
		sys, err := NewSystem(s, a, views, 5)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		seed := NewDatabase(s)
		for i := 0; i < 80; i++ {
			rel := s.Relations[rng.Intn(len(s.Relations))]
			row := make([]string, rel.Arity())
			for j := range row {
				row[j] = diffVal(rng)
			}
			seed.MustInsert(rel.Name, row...)
		}

		l, err := sys.Open(seed.Clone())
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		sharded := map[int]*LiveSharded{}
		for _, p := range shardCounts {
			sl, err := sys.OpenLiveSharded(seed.Clone(), p)
			if err != nil {
				t.Fatalf("trial %d, P=%d: %v", trial, p, err)
			}
			sharded[p] = sl
		}
		plans := diffPlans(t, rng, sys)
		assertHandlesAgree(t, plans, l, sharded)

		// live multiset per relation so deletes usually hit.
		live := map[string][]instance.Tuple{}
		for _, rel := range s.Relations {
			for _, tu := range seed.Table(rel.Name).Tuples {
				live[rel.Name] = append(live[rel.Name], tu.Clone())
			}
		}
		for b := 1; b <= batches; b++ {
			var ins, del []Op
			for o := 0; o < batchSize; o++ {
				rel := s.Relations[rng.Intn(len(s.Relations))]
				switch {
				case rng.Float64() < 0.4 && len(live[rel.Name]) > 0:
					i := rng.Intn(len(live[rel.Name]))
					row := live[rel.Name][i]
					live[rel.Name][i] = live[rel.Name][len(live[rel.Name])-1]
					live[rel.Name] = live[rel.Name][:len(live[rel.Name])-1]
					del = append(del, Op{Rel: rel.Name, Row: row})
				case rng.Float64() < 0.12:
					// Delete of a row that may be absent (no-op path).
					row := make(instance.Tuple, rel.Arity())
					for j := range row {
						row[j] = diffVal(rng)
					}
					del = append(del, Op{Rel: rel.Name, Row: row})
				default:
					row := make(instance.Tuple, rel.Arity())
					for j := range row {
						row[j] = diffVal(rng)
					}
					live[rel.Name] = append(live[rel.Name], row)
					ins = append(ins, Op{Rel: rel.Name, Row: row.Clone()})
				}
			}
			want, err := l.ApplyDelta(ins, del)
			if err != nil {
				t.Fatalf("trial %d batch %d: %v", trial, b, err)
			}
			for _, p := range shardCounts {
				got, err := sharded[p].ApplyDelta(ins, del)
				if err != nil {
					t.Fatalf("trial %d batch %d P=%d: %v", trial, b, p, err)
				}
				if got.Inserted != want.Inserted || got.Deleted != want.Deleted {
					t.Fatalf("trial %d batch %d P=%d: delta stats diverge: sharded %+v, unsharded %+v",
						trial, b, p, got, want)
				}
			}
			if b%checkEvery == 0 || b == batches {
				assertHandlesAgree(t, plans, l, sharded)
			}
		}
	}
}

// ---- fixture-level end-to-end, concurrency and aliasing tests ----

func shardedFixture(t *testing.T, users, txns, shards int) (*System, *workload.Sharded, *LiveSharded, *Database) {
	t.Helper()
	w := workload.NewSharded(8)
	sys, err := NewSystem(w.Schema, w.Access, w.Views(), w.M)
	if err != nil {
		t.Fatal(err)
	}
	db := w.Generate(users, txns, 17)
	snapshot := db.Clone()
	h, err := sys.Open(db, WithShards(shards))
	if err != nil {
		t.Fatal(err)
	}
	return sys, w, h.(*LiveSharded), snapshot
}

// TestShardedFixtureServesPointReadsAndViews checks the fixture
// end-to-end: the join view is classified shard-local, prepared point
// queries stay within the fetch bound at any shard count, and both the
// point-read and the gather execution paths answer exactly like
// recomputation.
func TestShardedFixtureServesPointReadsAndViews(t *testing.T) {
	sys, w, sl, snapshot := shardedFixture(t, 400, 5, 4)
	local, global := sl.LocalViews()
	if len(local) != 2 || len(global) != 0 {
		t.Fatalf("VSpend and VPairs must be shard-local (co-partitioned joins): local=%v global=%v", local, global)
	}
	ch := w.NewChurn(snapshot, 23)
	for b := 0; b < 8; b++ {
		ins, del := ch.Batch(120)
		if _, err := sl.ApplyDelta(ins, del); err != nil {
			t.Fatal(err)
		}
		if _, err := snapshot.ApplyDelta(ins, del); err != nil {
			t.Fatal(err)
		}
	}
	// Point reads: every uid's prepared query routes, stays bounded, and
	// matches direct evaluation over the mirrored database.
	for i := 0; i < 25; i++ {
		uid := w.UID(i * 7)
		pq, err := sys.Prepare(NewUCQ(w.Query(uid)), LangCQ)
		if err != nil {
			t.Fatalf("uid %s: %v", uid, err)
		}
		rows, fetched, err := pq.Execute(sl)
		if err != nil {
			t.Fatal(err)
		}
		if fetched > w.NTxn {
			t.Fatalf("uid %s: fetched %d > NTxn=%d — point read lost its bound under sharding", uid, fetched, w.NTxn)
		}
		direct, err := sys.EvalDirect(NewUCQ(w.Query(uid)), snapshot)
		if err != nil {
			t.Fatal(err)
		}
		if !cq.RowsEqual(rows, direct) {
			t.Fatalf("uid %s: sharded answers diverge from recomputation", uid)
		}
	}
	// Gather path: a selection over the shard-local view.
	vplan := &plan.Select{
		Child: &plan.View{Name: "VSpend", Cols: []string{"u", "i"}},
		Cond:  []plan.CondItem{{L: "u", RConst: true, R: w.UID(0)}},
	}
	rows, fetched, err := sl.Execute(vplan)
	if err != nil {
		t.Fatal(err)
	}
	if fetched != 0 {
		t.Fatalf("view-only plan fetched %d tuples from D", fetched)
	}
	vdef := w.Views()["VSpend"]
	wantAll, err := sys.EvalDirect(vdef, snapshot)
	if err != nil {
		t.Fatal(err)
	}
	var want [][]string
	for _, r := range wantAll {
		if r[0] == w.UID(0) {
			want = append(want, r)
		}
	}
	if !cq.RowsEqual(rows, want) {
		t.Fatalf("gathered view selection diverges: got %v want %v", rows, want)
	}
}

// TestShardedConcurrentReadersAndWriter runs parallel point reads, view
// reads and size probes against a writer applying churn batches — the
// race detector validates the per-shard lock discipline, and every read
// must return well-formed rows, never an error.
func TestShardedConcurrentReadersAndWriter(t *testing.T) {
	sys, w, sl, snapshot := shardedFixture(t, 300, 4, 4)
	ch := w.NewChurn(snapshot, 31)
	queries := make([]*PreparedQuery, 8)
	for i := range queries {
		pq, err := sys.Prepare(NewUCQ(w.Query(w.UID(i*3))), LangCQ)
		if err != nil {
			t.Fatal(err)
		}
		queries[i] = pq
	}
	var wg sync.WaitGroup
	stop := make(chan struct{})
	errCh := make(chan error, 8)
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				pq := queries[(r+i)%len(queries)]
				rows, fetched, err := pq.Execute(sl)
				if err != nil {
					errCh <- err
					return
				}
				if fetched < 0 {
					errCh <- fmt.Errorf("fetched went backwards: %d", fetched)
					return
				}
				for _, row := range rows {
					if len(row) != 2 {
						errCh <- fmt.Errorf("torn row %v", row)
						return
					}
				}
				if i%16 == 0 {
					_ = sl.Views()
					_ = sl.Size()
				}
			}
		}(r)
	}
	for b := 0; b < 30; b++ {
		ins, del := ch.Batch(80)
		if _, err := sl.ApplyDelta(ins, del); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
	select {
	case err := <-errCh:
		t.Fatal(err)
	default:
	}
}

// TestShardedNoAliasingOfViewsAndResults mirrors the PR 3 aliasing
// regression for the sharded handle: corrupting everything a caller can
// reach (view snapshots, prepared results) must not change what is served
// next.
func TestShardedNoAliasingOfViewsAndResults(t *testing.T) {
	sys, w, sl, snapshot := shardedFixture(t, 200, 4, 3)
	pq, err := sys.Prepare(NewUCQ(w.Query(w.UID(2))), LangCQ)
	if err != nil {
		t.Fatal(err)
	}
	want, _, err := pq.Execute(sl)
	if err != nil {
		t.Fatal(err)
	}
	snap := sl.Views()
	for name, rows := range snap {
		for _, row := range rows {
			for i := range row {
				row[i] = "CORRUPTED"
			}
		}
		snap[name] = append(rows, []string{"bogus", "bogus"})
	}
	got1, _, err := pq.Execute(sl)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range got1 {
		for i := range row {
			row[i] = "CORRUPTED"
		}
	}
	fresh := sl.Views()
	mats, err := sys.Materialize(snapshot)
	if err != nil {
		t.Fatal(err)
	}
	for name, wantRows := range mats {
		if !cq.RowsEqual(fresh[name], wantRows) {
			t.Fatalf("view %s served corrupted rows after caller mutation", name)
		}
	}
	got2, _, err := pq.Execute(sl)
	if err != nil {
		t.Fatal(err)
	}
	if !cq.RowsEqual(got2, want) {
		t.Fatalf("prepared results alias internal storage: %v vs %v", got2, want)
	}
}
