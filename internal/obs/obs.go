// Package obs is the engine's zero-dependency observability core:
// striped lock-free counters, gauges, fixed-bucket latency histograms
// with p50/p99 extraction, a metric registry with JSON and Prometheus
// text rendering, a per-execution trace record, and a ring-buffered
// slow-query log.
//
// The package is built for the engine's hot-path contract: recording a
// metric is allocation-free and lock-free (a striped or single atomic
// update), so instrumentation can live inside the epoch read path
// without adding a lock rank or a GC edge. Snapshots are taken by the
// reader and never block writers.
//
// Every metric type tolerates a nil receiver: a nil *Counter,
// *Gauge, *Histogram, *SlowLog or *Core ignores writes and reads as
// zero, so call sites compiled against a metrics-disabled handle pay
// only a predictable branch.
package obs

import (
	"math"
	"math/bits"
	"math/rand/v2"
	"sync"
	"sync/atomic"
	"time"
)

// counterStripes is the fan-out of a striped counter. Eight cache-line
// padded cells are enough to keep a per-probe counter off a single hot
// line at the shard counts the engine runs (P <= 16 in practice).
const counterStripes = 8

type stripe struct {
	v atomic.Int64
	_ [56]byte // pad to a 64-byte cache line
}

// Counter is a monotonically increasing, striped lock-free counter.
// Add distributes increments across cache-line padded cells so
// concurrent writers do not contend on one line; Load sums the cells.
type Counter struct {
	cells [counterStripes]stripe
}

// Add increments the counter by n. Safe for concurrent use;
// allocation-free; no-op on a nil receiver.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	// rand/v2's global generator reads per-thread runtime state: a few
	// nanoseconds, no lock, no allocation — cheap enough per increment
	// and it spreads goroutines across stripes without unsafe tricks.
	c.cells[rand.Uint32()%counterStripes].v.Add(n)
}

// Load returns the current total. The sum is not a single atomic
// snapshot across stripes, but since cells only grow the result is
// always between the counter's value at the start and at the end of
// the call (a linearizable lower/upper bound).
func (c *Counter) Load() int64 {
	if c == nil {
		return 0
	}
	var t int64
	for i := range c.cells {
		t += c.cells[i].v.Load()
	}
	return t
}

// Gauge is a settable instantaneous value.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the gauge value. No-op on a nil receiver.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Add moves the gauge by delta. No-op on a nil receiver.
func (g *Gauge) Add(delta int64) {
	if g == nil {
		return
	}
	g.v.Add(delta)
}

// Load returns the current value (0 on a nil receiver).
func (g *Gauge) Load() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// histBuckets is the fixed bucket count of a latency histogram:
// exponential power-of-two buckets from 1µs up to ~67s, plus an
// overflow bucket. Fixed buckets keep Observe allocation-free and
// branch-cheap (bits.Len64 + one atomic add).
const histBuckets = 28

// Histogram is a fixed-bucket latency histogram. Bucket i counts
// observations whose duration in microseconds has bit length i, i.e.
// durations in (2^(i-1), 2^i] µs; bucket 0 is sub-microsecond and the
// last bucket absorbs everything over ~67s.
type Histogram struct {
	buckets [histBuckets]atomic.Int64
	count   atomic.Int64
	sum     atomic.Int64 // nanoseconds
}

// histBucketIdx maps a duration to its bucket.
func histBucketIdx(d time.Duration) int {
	us := uint64(d / time.Microsecond)
	i := bits.Len64(us)
	if i >= histBuckets {
		i = histBuckets - 1
	}
	return i
}

// histBucketBound is the upper bound of bucket i as a duration.
func histBucketBound(i int) time.Duration {
	return time.Duration(uint64(1)<<uint(i)) * time.Microsecond
}

// Observe records one latency sample. Allocation-free and lock-free;
// no-op on a nil receiver.
func (h *Histogram) Observe(d time.Duration) {
	if h == nil {
		return
	}
	if d < 0 {
		d = 0
	}
	h.buckets[histBucketIdx(d)].Add(1)
	h.count.Add(1)
	h.sum.Add(int64(d))
}

// Count returns the number of recorded samples.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Quantile returns an upper bound for the q-quantile (0 < q <= 1) of
// the recorded samples: the upper bound of the bucket containing the
// q-th sample. Returns 0 when empty.
func (h *Histogram) Quantile(q float64) time.Duration {
	if h == nil {
		return 0
	}
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	// Nearest-rank: the ceiling keeps the top quantiles honest — of 101
	// samples, q=0.999 must land on the 101st, not truncate to the 100th.
	target := int64(math.Ceil(q * float64(total)))
	if target < 1 {
		target = 1
	}
	if target > total {
		target = total
	}
	var cum int64
	for i := 0; i < histBuckets; i++ {
		cum += h.buckets[i].Load()
		if cum >= target {
			return histBucketBound(i)
		}
	}
	return histBucketBound(histBuckets - 1)
}

// Snapshot returns a point-in-time copy of the histogram's state.
func (h *Histogram) Snapshot() HistogramSnapshot {
	var s HistogramSnapshot
	if h == nil {
		return s
	}
	s.Count = h.count.Load()
	s.Sum = time.Duration(h.sum.Load())
	s.P50 = h.Quantile(0.50)
	s.P99 = h.Quantile(0.99)
	return s
}

// HistogramSnapshot is a plain-value copy of a histogram at one point
// in time; it is safe to copy and retains no reference to the live
// histogram.
type HistogramSnapshot struct {
	Count int64
	Sum   time.Duration
	P50   time.Duration
	P99   time.Duration
}

// metricKind tags a registry entry.
type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindGaugeFunc
	kindHistogram
)

// metric is one registered metric: exactly one of c/g/gf/h is set.
type metric struct {
	name string
	help string
	kind metricKind
	c    *Counter
	g    *Gauge
	gf   func() int64
	h    *Histogram
}

// Registry names and orders a set of metrics for export. Registration
// takes a lock (open-time only); readers snapshot under the same lock
// but never touch the hot recording path.
type Registry struct {
	mu      sync.Mutex
	metrics []metric
	names   map[string]struct{}
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{names: make(map[string]struct{})}
}

func (r *Registry) add(m metric) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.names[m.name]; dup {
		panic("obs: duplicate metric " + m.name)
	}
	r.names[m.name] = struct{}{}
	r.metrics = append(r.metrics, m)
}

// Counter registers and returns a new counter.
func (r *Registry) Counter(name, help string) *Counter {
	c := &Counter{}
	r.add(metric{name: name, help: help, kind: kindCounter, c: c})
	return c
}

// Gauge registers and returns a new gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	g := &Gauge{}
	r.add(metric{name: name, help: help, kind: kindGauge, g: g})
	return g
}

// GaugeFunc registers a gauge whose value is sampled by calling f at
// snapshot time — the bridge for values that already live elsewhere
// (the handle's fetch counter, the lifecycle ring depth) so the export
// path reads the authoritative state instead of a shadow copy.
func (r *Registry) GaugeFunc(name, help string, f func() int64) {
	r.add(metric{name: name, help: help, kind: kindGaugeFunc, gf: f})
}

// Histogram registers and returns a new latency histogram.
func (r *Registry) Histogram(name, help string) *Histogram {
	h := &Histogram{}
	r.add(metric{name: name, help: help, kind: kindHistogram, h: h})
	return h
}

// Snapshot is a point-in-time copy of every registered metric, keyed
// by metric name. It is a plain value: safe to copy, retains no
// reference to live metric state, and never changes after it is
// returned.
type Snapshot struct {
	// Counters holds counter totals and function-gauge samples taken
	// at snapshot time.
	Counters map[string]int64
	// Gauges holds settable gauge values.
	Gauges map[string]int64
	// Histograms holds per-histogram count/sum/p50/p99 copies.
	Histograms map[string]HistogramSnapshot
}

// Snapshot samples every registered metric once, in registration
// order, and returns the copies. Counters and gauges are read
// atomically; gauge funcs are invoked at call time.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{
		Counters:   make(map[string]int64),
		Gauges:     make(map[string]int64),
		Histograms: make(map[string]HistogramSnapshot),
	}
	if r == nil {
		return s
	}
	r.mu.Lock()
	metrics := make([]metric, len(r.metrics))
	copy(metrics, r.metrics)
	r.mu.Unlock()
	for _, m := range metrics {
		switch m.kind {
		case kindCounter:
			s.Counters[m.name] = m.c.Load()
		case kindGauge:
			s.Gauges[m.name] = m.g.Load()
		case kindGaugeFunc:
			s.Gauges[m.name] = m.gf()
		case kindHistogram:
			s.Histograms[m.name] = m.h.Snapshot()
		}
	}
	return s
}
