package obs

import (
	"sync"
	"time"
)

// Trace is the record of one plan execution: what ran, over which
// epoch, what it touched per access constraint, and how long it took.
// A Trace is a plain value snapshot — it is safe to copy and retains
// no reference to engine state (the Groups slice is owned by the
// trace).
type Trace struct {
	// Start is the wall-clock time the execution began.
	Start time.Time
	// QueryKey is the canonical (renaming-invariant) query key for
	// prepared executions, or "" for ad-hoc plan runs.
	QueryKey string
	// Plan is the rendered plan tree that ran.
	Plan string
	// Candidate is the index of the executed plan in the prepared
	// frontier (-1 for ad-hoc runs).
	Candidate int
	// Explore reports whether this execution was an exploration probe
	// of a non-incumbent candidate.
	Explore bool
	// EpochSeq is the epoch the execution read.
	EpochSeq uint64
	// Duration is the end-to-end execution latency.
	Duration time.Duration
	// Fetched is the number of tuples fetched from the database by
	// this execution (|Dξ| — the paper's bounded quantity). It equals
	// the sum of Rows over Groups.
	Fetched int
	// Rows is the number of answer rows produced.
	Rows int
	// JoinIn and JoinOut are the summed input and output cardinalities
	// of the plan's join nodes.
	JoinIn, JoinOut int
	// Groups breaks Fetched down per access constraint.
	Groups []GroupTrace
}

// GroupTrace is the per-access-constraint slice of a Trace: how many
// times the constraint's fetch index was probed and how many tuples
// those probes returned. Plain value; safe to copy.
type GroupTrace struct {
	// Key identifies the access constraint (relation + X->Y signature).
	Key string
	// Probes is the number of index probes issued.
	Probes int
	// Rows is the number of tuples the probes fetched.
	Rows int
}

// SlowLog is a fixed-capacity ring of the most recent slow-query
// traces. Writes happen only for executions over the configured
// threshold, so the mutex is off the hot path by construction: a fast
// execution pays one duration comparison and never touches the lock.
type SlowLog struct {
	mu    sync.Mutex
	ring  []Trace
	next  int
	total int64
}

// NewSlowLog returns a ring holding the last n traces (n clamped to
// at least 1).
func NewSlowLog(n int) *SlowLog {
	if n < 1 {
		n = 1
	}
	return &SlowLog{ring: make([]Trace, 0, n)}
}

// Add appends a trace, evicting the oldest when full. No-op on a nil
// receiver.
func (s *SlowLog) Add(t Trace) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.total++
	if len(s.ring) < cap(s.ring) {
		s.ring = append(s.ring, t)
		return
	}
	s.ring[s.next] = t
	s.next = (s.next + 1) % len(s.ring)
}

// Snapshot returns the retained traces, newest first. The result is a
// fresh copy the caller owns.
func (s *SlowLog) Snapshot() []Trace {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Trace, 0, len(s.ring))
	// ring[next-1] is the newest entry once the ring has wrapped;
	// before wrapping the newest is the last appended element.
	for i := 0; i < len(s.ring); i++ {
		idx := (s.next - 1 - i + 2*len(s.ring)) % len(s.ring)
		out = append(out, s.ring[idx])
	}
	return out
}

// Total returns how many traces were ever added (including evicted).
func (s *SlowLog) Total() int64 {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.total
}

// WALMetrics bundles the durability-layer instruments. The wal package
// records into these; a zero/nil field set (metrics disabled) is safe
// because every instrument tolerates nil. Every field is a pointer, so
// copying the struct shares the live instruments, not their values.
type WALMetrics struct {
	Appends       *Counter
	AppendLatency *Histogram
	Fsyncs        *Counter
	FsyncLatency  *Histogram
	Checkpoints   *Counter
	CheckpointDur *Histogram
	Fences        *Counter
}

// slowLogDepth is the slow-query ring capacity per handle.
const slowLogDepth = 128

// Core is the per-handle observability bundle: one registry, the
// engine's named instruments, and the slow-query log. A nil *Core is
// the metrics-disabled state — every method is nil-safe, so call
// sites guard with a single pointer test (or none, for the helpers).
type Core struct {
	Reg *Registry

	// Query read path.
	QueryExecs   *Counter
	QueryLatency *Histogram
	SlowQueries  *Counter

	// Write path / epochs.
	Applies        *Counter
	ApplyRows      *Counter
	ApplyLatency   *Histogram
	EpochPublishes *Counter

	// Closed-loop plan selection.
	Reranks  *Counter
	Explores *Counter
	Switches *Counter

	// Durability.
	WAL WALMetrics

	// Per-shard probe counters (len = shard count; nil when unsharded).
	ShardProbes []*Counter

	// Slow-query log; nil until a threshold is set.
	Slow *SlowLog
	// SlowThreshold is the latency above which executions are traced
	// into Slow (0 = slow logging disabled).
	SlowThreshold time.Duration
}

// NewCore builds a registry pre-populated with the engine-wide
// instruments. shards > 0 additionally registers per-shard probe
// counters repro_shard_probes_total_<i>.
func NewCore(shards int) *Core {
	r := NewRegistry()
	c := &Core{
		Reg:          r,
		QueryExecs:   r.Counter("repro_query_total", "plan executions served"),
		QueryLatency: r.Histogram("repro_query_seconds", "plan execution latency"),
		SlowQueries:  r.Counter("repro_slow_query_total", "executions over the slow-query threshold"),

		Applies:        r.Counter("repro_apply_total", "ApplyDelta batches accepted"),
		ApplyRows:      r.Counter("repro_apply_rows_total", "tuple ops applied across batches"),
		ApplyLatency:   r.Histogram("repro_apply_seconds", "ApplyDelta end-to-end latency"),
		EpochPublishes: r.Counter("repro_epoch_publish_total", "immutable epochs published"),

		Reranks:  r.Counter("repro_plan_rerank_total", "observed-cost frontier re-ranks"),
		Explores: r.Counter("repro_plan_explore_total", "exploration probes of non-incumbent plans"),
		Switches: r.Counter("repro_plan_switch_total", "incumbent plan switches after re-rank"),
	}
	c.WAL = WALMetrics{
		Appends:       r.Counter("repro_wal_append_total", "WAL records appended"),
		AppendLatency: r.Histogram("repro_wal_append_seconds", "WAL append latency (excluding group-commit wait)"),
		Fsyncs:        r.Counter("repro_wal_fsync_total", "WAL fsync calls"),
		FsyncLatency:  r.Histogram("repro_wal_fsync_seconds", "WAL fsync latency"),
		Checkpoints:   r.Counter("repro_wal_checkpoint_total", "checkpoints written"),
		CheckpointDur: r.Histogram("repro_wal_checkpoint_seconds", "checkpoint write duration"),
		Fences:        r.Counter("repro_wal_fence_total", "durability fence events (poisoned log)"),
	}
	if shards > 0 {
		c.ShardProbes = make([]*Counter, shards)
		for i := range c.ShardProbes {
			c.ShardProbes[i] = r.Counter(shardProbeName(i), "fetch-index probes routed to this shard")
		}
	}
	return c
}

// shardProbeName renders the per-shard probe counter name without fmt
// (keeps the package dependency-light and the name stable).
func shardProbeName(i int) string {
	return "repro_shard_probes_total_" + itoa(i)
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var b [20]byte
	p := len(b)
	for i > 0 {
		p--
		b[p] = byte('0' + i%10)
		i /= 10
	}
	return string(b[p:])
}

// SetSlowThreshold arms the slow-query log: executions slower than d
// are traced into a ring of the most recent slowLogDepth traces.
func (c *Core) SetSlowThreshold(d time.Duration) {
	if c == nil || d <= 0 {
		return
	}
	c.SlowThreshold = d
	c.Slow = NewSlowLog(slowLogDepth)
}

// SlowEnabled reports whether slow-query tracing is armed.
func (c *Core) SlowEnabled() bool {
	return c != nil && c.SlowThreshold > 0
}

// RecordQuery records one execution's latency. Nil-safe.
func (c *Core) RecordQuery(d time.Duration) {
	if c == nil {
		return
	}
	c.QueryExecs.Add(1)
	c.QueryLatency.Observe(d)
}

// MaybeSlow records t into the slow log when its duration is over the
// armed threshold. Nil-safe; a fast execution pays one comparison.
func (c *Core) MaybeSlow(t Trace) {
	if c == nil || c.SlowThreshold <= 0 || t.Duration < c.SlowThreshold {
		return
	}
	c.SlowQueries.Add(1)
	c.Slow.Add(t)
}

// RecordApply records one accepted batch. Nil-safe.
func (c *Core) RecordApply(d time.Duration, rows int) {
	if c == nil {
		return
	}
	c.Applies.Add(1)
	c.ApplyRows.Add(int64(rows))
	c.ApplyLatency.Observe(d)
}

// Snapshot returns a point-in-time copy of every registered metric
// (empty maps on a nil receiver).
func (c *Core) Snapshot() Snapshot {
	if c == nil {
		return Snapshot{
			Counters:   map[string]int64{},
			Gauges:     map[string]int64{},
			Histograms: map[string]HistogramSnapshot{},
		}
	}
	return c.Reg.Snapshot()
}
