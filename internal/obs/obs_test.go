package obs

import (
	"encoding/json"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterConcurrent(t *testing.T) {
	var c Counter
	const workers, perWorker = 8, 10000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				c.Add(1)
			}
		}()
	}
	wg.Wait()
	if got := c.Load(); got != workers*perWorker {
		t.Fatalf("counter = %d, want %d", got, workers*perWorker)
	}
}

func TestNilSafety(t *testing.T) {
	var c *Counter
	c.Add(5)
	if c.Load() != 0 {
		t.Fatal("nil counter must read 0")
	}
	var g *Gauge
	g.Set(3)
	g.Add(1)
	if g.Load() != 0 {
		t.Fatal("nil gauge must read 0")
	}
	var h *Histogram
	h.Observe(time.Second)
	if h.Count() != 0 || h.Quantile(0.5) != 0 {
		t.Fatal("nil histogram must be empty")
	}
	if s := h.Snapshot(); s.Count != 0 {
		t.Fatal("nil histogram snapshot must be zero")
	}
	var sl *SlowLog
	sl.Add(Trace{})
	if sl.Snapshot() != nil || sl.Total() != 0 {
		t.Fatal("nil slow log must be empty")
	}
	var core *Core
	core.RecordQuery(time.Second)
	core.RecordApply(time.Second, 10)
	core.MaybeSlow(Trace{Duration: time.Hour})
	core.SetSlowThreshold(time.Millisecond)
	if core.SlowEnabled() {
		t.Fatal("nil core must report slow logging disabled")
	}
	s := core.Snapshot()
	if len(s.Counters) != 0 || len(s.Gauges) != 0 || len(s.Histograms) != 0 {
		t.Fatal("nil core snapshot must be empty, non-nil maps")
	}
	var r *Registry
	if got := r.Snapshot(); got.Counters == nil {
		t.Fatal("nil registry snapshot must have non-nil maps")
	}
}

func TestHistogramBucketsAndQuantile(t *testing.T) {
	var h Histogram
	// 100 samples at ~10µs, 1 sample at ~1s: p50 must sit in the
	// microsecond range and p99 still below the 1s outlier's bucket
	// upper bound but above the cluster.
	for i := 0; i < 100; i++ {
		h.Observe(10 * time.Microsecond)
	}
	h.Observe(time.Second)
	if got := h.Count(); got != 101 {
		t.Fatalf("count = %d, want 101", got)
	}
	p50 := h.Quantile(0.50)
	if p50 < 10*time.Microsecond || p50 > 32*time.Microsecond {
		t.Fatalf("p50 = %v, want a microsecond-range bucket bound", p50)
	}
	p999 := h.Quantile(0.999)
	if p999 < time.Second {
		t.Fatalf("p999 = %v, must cover the 1s outlier", p999)
	}
	s := h.Snapshot()
	if s.Count != 101 || s.P50 != p50 {
		t.Fatalf("snapshot mismatch: %+v", s)
	}
	wantSum := 100*10*time.Microsecond + time.Second
	if s.Sum != wantSum {
		t.Fatalf("sum = %v, want %v", s.Sum, wantSum)
	}
}

func TestHistogramBucketIdx(t *testing.T) {
	cases := []struct {
		d    time.Duration
		want int
	}{
		{0, 0},
		{500 * time.Nanosecond, 0},
		{time.Microsecond, 1},
		{2 * time.Microsecond, 2},
		{3 * time.Microsecond, 2},
		{time.Hour, histBuckets - 1},
	}
	for _, c := range cases {
		if got := histBucketIdx(c.d); got != c.want {
			t.Errorf("histBucketIdx(%v) = %d, want %d", c.d, got, c.want)
		}
	}
}

func TestSlowLogRing(t *testing.T) {
	sl := NewSlowLog(3)
	for i := 0; i < 5; i++ {
		sl.Add(Trace{Rows: i})
	}
	got := sl.Snapshot()
	if len(got) != 3 {
		t.Fatalf("ring holds %d, want 3", len(got))
	}
	// Newest first: 4, 3, 2.
	for i, want := range []int{4, 3, 2} {
		if got[i].Rows != want {
			t.Fatalf("snapshot[%d].Rows = %d, want %d", i, got[i].Rows, want)
		}
	}
	if sl.Total() != 5 {
		t.Fatalf("total = %d, want 5", sl.Total())
	}
}

func TestRegistryDuplicatePanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("x", "")
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration must panic")
		}
	}()
	r.Counter("x", "")
}

func TestCoreSnapshotAndSlow(t *testing.T) {
	c := NewCore(2)
	c.SetSlowThreshold(time.Millisecond)
	if !c.SlowEnabled() {
		t.Fatal("slow logging should be armed")
	}
	c.RecordQuery(2 * time.Millisecond)
	c.MaybeSlow(Trace{Duration: 2 * time.Millisecond, QueryKey: "q"})
	c.MaybeSlow(Trace{Duration: time.Microsecond}) // under threshold: dropped
	c.RecordApply(time.Millisecond, 7)
	c.ShardProbes[1].Add(3)

	s := c.Snapshot()
	if s.Counters["repro_query_total"] != 1 {
		t.Fatalf("query_total = %d", s.Counters["repro_query_total"])
	}
	if s.Counters["repro_slow_query_total"] != 1 {
		t.Fatalf("slow_query_total = %d", s.Counters["repro_slow_query_total"])
	}
	if s.Counters["repro_apply_rows_total"] != 7 {
		t.Fatalf("apply_rows_total = %d", s.Counters["repro_apply_rows_total"])
	}
	if s.Counters["repro_shard_probes_total_1"] != 3 {
		t.Fatalf("shard probe counter = %d", s.Counters["repro_shard_probes_total_1"])
	}
	if h := s.Histograms["repro_query_seconds"]; h.Count != 1 {
		t.Fatalf("query latency count = %d", h.Count)
	}
	traces := c.Slow.Snapshot()
	if len(traces) != 1 || traces[0].QueryKey != "q" {
		t.Fatalf("slow log = %+v", traces)
	}
}

func TestGaugeFuncReadsAuthoritativeState(t *testing.T) {
	r := NewRegistry()
	v := int64(0)
	r.GaugeFunc("live", "", func() int64 { return v })
	v = 42
	if got := r.Snapshot().Gauges["live"]; got != 42 {
		t.Fatalf("gauge func = %d, want 42", got)
	}
}

func TestHTTPHandlerJSON(t *testing.T) {
	c := NewCore(0)
	c.SetSlowThreshold(time.Millisecond)
	c.RecordQuery(5 * time.Millisecond)
	c.MaybeSlow(Trace{Duration: 5 * time.Millisecond, Plan: "p", Fetched: 3,
		Groups: []GroupTrace{{Key: "R[x->y]", Probes: 1, Rows: 3}}})
	h := HTTPHandler(c)

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/repro", nil))
	var body struct {
		Counters map[string]int64 `json:"counters"`
		Slow     []slowTraceJSON  `json:"slow"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
		t.Fatalf("bad JSON: %v", err)
	}
	if body.Counters["repro_query_total"] != 1 {
		t.Fatalf("counters = %v", body.Counters)
	}
	if len(body.Slow) != 1 || body.Slow[0].Fetched != 3 || len(body.Slow[0].Groups) != 1 {
		t.Fatalf("slow = %+v", body.Slow)
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/repro/metrics", nil))
	text := rec.Body.String()
	if !strings.Contains(text, "# TYPE repro_query_total counter") ||
		!strings.Contains(text, "repro_query_total 1") {
		t.Fatalf("prometheus text missing counter:\n%s", text)
	}
	if !strings.Contains(text, "repro_query_seconds_bucket{le=\"+Inf\"} 1") {
		t.Fatalf("prometheus text missing histogram buckets:\n%s", text)
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/repro/slow", nil))
	var slowOnly struct {
		Slow []slowTraceJSON `json:"slow"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &slowOnly); err != nil {
		t.Fatalf("bad JSON: %v", err)
	}
	if len(slowOnly.Slow) != 1 {
		t.Fatalf("slow route = %+v", slowOnly.Slow)
	}

	// Nil core: routes still answer with empty bodies.
	nh := HTTPHandler(nil)
	rec = httptest.NewRecorder()
	nh.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/repro", nil))
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
		t.Fatalf("nil-core JSON: %v", err)
	}
}
