package obs

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"time"
)

// HTTPHandler returns an opt-in debug handler for a handle's metrics,
// intended to be mounted at /debug/repro:
//
//	mux.Handle("/debug/repro", repro.DebugHandler(h))
//	mux.Handle("/debug/repro/", repro.DebugHandler(h))
//
// Routes (relative to the mount point):
//
//	.            expvar-style JSON: counters, gauges, histogram
//	             quantiles, and the slow-query log
//	./metrics    Prometheus text exposition (also selected by
//	             ?format=prometheus on the root)
//	./slow       just the slow-query traces, JSON
//
// The handler only reads snapshots; serving it never blocks writers.
func HTTPHandler(c *Core) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch {
		case strings.HasSuffix(r.URL.Path, "/metrics") || r.URL.Query().Get("format") == "prometheus":
			servePrometheus(w, c)
		case strings.HasSuffix(r.URL.Path, "/slow"):
			serveJSON(w, map[string]any{"slow": slowJSON(c)})
		default:
			s := c.Snapshot()
			serveJSON(w, map[string]any{
				"counters":   s.Counters,
				"gauges":     s.Gauges,
				"histograms": histJSON(s.Histograms),
				"slow":       slowJSON(c),
			})
		}
	})
}

func serveJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// histJSONEntry is the wire form of one histogram: durations in
// seconds so the JSON is unit-consistent with the Prometheus view.
type histJSONEntry struct {
	Count int64   `json:"count"`
	Sum   float64 `json:"sum_seconds"`
	P50   float64 `json:"p50_seconds"`
	P99   float64 `json:"p99_seconds"`
}

func histJSON(hs map[string]HistogramSnapshot) map[string]histJSONEntry {
	out := make(map[string]histJSONEntry, len(hs))
	for name, h := range hs {
		out[name] = histJSONEntry{
			Count: h.Count,
			Sum:   h.Sum.Seconds(),
			P50:   h.P50.Seconds(),
			P99:   h.P99.Seconds(),
		}
	}
	return out
}

// slowTraceJSON is the wire form of a slow-query trace.
type slowTraceJSON struct {
	Start     time.Time        `json:"start"`
	QueryKey  string           `json:"query_key,omitempty"`
	Plan      string           `json:"plan"`
	Candidate int              `json:"candidate"`
	Explore   bool             `json:"explore,omitempty"`
	EpochSeq  uint64           `json:"epoch_seq"`
	Seconds   float64          `json:"seconds"`
	Fetched   int              `json:"fetched"`
	Rows      int              `json:"rows"`
	JoinIn    int              `json:"join_in,omitempty"`
	JoinOut   int              `json:"join_out,omitempty"`
	Groups    []groupTraceJSON `json:"groups,omitempty"`
}

type groupTraceJSON struct {
	Key    string `json:"key"`
	Probes int    `json:"probes"`
	Rows   int    `json:"rows"`
}

func slowJSON(c *Core) []slowTraceJSON {
	if c == nil {
		return []slowTraceJSON{}
	}
	traces := c.Slow.Snapshot()
	out := make([]slowTraceJSON, 0, len(traces))
	for _, t := range traces {
		gs := make([]groupTraceJSON, 0, len(t.Groups))
		for _, g := range t.Groups {
			gs = append(gs, groupTraceJSON{Key: g.Key, Probes: g.Probes, Rows: g.Rows})
		}
		out = append(out, slowTraceJSON{
			Start: t.Start, QueryKey: t.QueryKey, Plan: t.Plan,
			Candidate: t.Candidate, Explore: t.Explore, EpochSeq: t.EpochSeq,
			Seconds: t.Duration.Seconds(), Fetched: t.Fetched, Rows: t.Rows,
			JoinIn: t.JoinIn, JoinOut: t.JoinOut, Groups: gs,
		})
	}
	return out
}

// servePrometheus renders the registry in the Prometheus text
// exposition format (version 0.0.4). Histograms are rendered as
// cumulative le buckets in seconds.
func servePrometheus(w http.ResponseWriter, c *Core) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if c == nil {
		return
	}
	c.Reg.mu.Lock()
	metrics := make([]metric, len(c.Reg.metrics))
	copy(metrics, c.Reg.metrics)
	c.Reg.mu.Unlock()
	var b strings.Builder
	for _, m := range metrics {
		switch m.kind {
		case kindCounter:
			fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", m.name, m.help, m.name, m.name, m.c.Load())
		case kindGauge:
			fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s gauge\n%s %d\n", m.name, m.help, m.name, m.name, m.g.Load())
		case kindGaugeFunc:
			fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s gauge\n%s %d\n", m.name, m.help, m.name, m.name, m.gf())
		case kindHistogram:
			fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s histogram\n", m.name, m.help, m.name)
			var cum int64
			for i := 0; i < histBuckets; i++ {
				cum += m.h.buckets[i].Load()
				if i == histBuckets-1 {
					fmt.Fprintf(&b, "%s_bucket{le=\"+Inf\"} %d\n", m.name, cum)
				} else {
					fmt.Fprintf(&b, "%s_bucket{le=\"%g\"} %d\n", m.name, histBucketBound(i).Seconds(), cum)
				}
			}
			fmt.Fprintf(&b, "%s_sum %g\n", m.name, time.Duration(m.h.sum.Load()).Seconds())
			fmt.Fprintf(&b, "%s_count %d\n", m.name, m.h.count.Load())
		}
	}
	_, _ = w.Write([]byte(b.String()))
}
