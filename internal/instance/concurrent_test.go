package instance

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/access"
	"repro/internal/schema"
)

// TestIndexedConcurrentFetchAccounting exercises Fetch and FetchIDs from
// many goroutines and checks that the atomic counters account for every
// call and every returned tuple exactly — the invariant the parallel
// evaluator relies on for |Dξ| measurement. Run with -race in CI.
func TestIndexedConcurrentFetchAccounting(t *testing.T) {
	s := schema.New(schema.NewRelation("R", "A", "B"))
	db := NewDatabase(s)
	const keys, perKey = 50, 4
	for k := 0; k < keys; k++ {
		for j := 0; j < perKey; j++ {
			db.MustInsert("R", fmt.Sprintf("a%02d", k), fmt.Sprintf("b%d", j))
		}
	}
	c := access.NewConstraint("R", []string{"A"}, []string{"B"}, perKey)
	a := access.NewSchema(c)
	if ok, err := db.SatisfiesAll(a); err != nil || !ok {
		t.Fatalf("instance must satisfy the constraint: %v", err)
	}
	ix, err := BuildIndexes(db, a)
	if err != nil {
		t.Fatal(err)
	}

	const workers, rounds = 8, 25
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				for k := 0; k < keys; k++ {
					rows, err := ix.Fetch(c, Tuple{fmt.Sprintf("a%02d", k)})
					if err != nil {
						t.Error(err)
						return
					}
					if len(rows) != perKey {
						t.Errorf("fetch(a%02d) returned %d rows, want %d", k, len(rows), perKey)
						return
					}
				}
				// Misses must count the call but no tuples.
				if _, err := ix.Fetch(c, Tuple{fmt.Sprintf("miss%d", w)}); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()

	wantCalls := workers * rounds * (keys + 1)
	wantTuples := workers * rounds * keys * perKey
	if got := ix.FetchCalls(); got != wantCalls {
		t.Fatalf("FetchCalls = %d, want %d", got, wantCalls)
	}
	if got := ix.FetchedTuples(); got != wantTuples {
		t.Fatalf("FetchedTuples = %d, want %d", got, wantTuples)
	}

	ix.ResetCounters()
	if ix.FetchCalls() != 0 || ix.FetchedTuples() != 0 {
		t.Fatal("ResetCounters must zero both counters")
	}

	// FetchIDs shares the same accounting.
	id, ok := db.Dict.Lookup("a00")
	if !ok {
		t.Fatal("a00 must be interned")
	}
	rows, err := ix.FetchIDs(c, []uint32{id})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != perKey {
		t.Fatalf("FetchIDs returned %d rows, want %d", len(rows), perKey)
	}
	if ix.FetchCalls() != 1 || ix.FetchedTuples() != perKey {
		t.Fatalf("FetchIDs accounting: calls=%d tuples=%d", ix.FetchCalls(), ix.FetchedTuples())
	}
}
