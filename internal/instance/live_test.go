package instance

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/access"
	"repro/internal/schema"
)

func liveFixture() (*schema.Schema, *access.Schema) {
	s := schema.New(schema.NewRelation("R", "A", "B", "C"))
	a := access.NewSchema(access.NewConstraint("R", []string{"A"}, []string{"B"}, 10))
	return s, a
}

// TestIndexedSeesAppliedDelta is the staleness regression test: on the
// seed behavior, BuildIndexes was a snapshot and fetches never saw tuples
// inserted afterwards. With incremental index maintenance
// (Database.ApplyDelta + Indexed.Apply), fetches stay fresh.
func TestIndexedSeesAppliedDelta(t *testing.T) {
	s, a := liveFixture()
	db := NewDatabase(s)
	db.MustInsert("R", "x1", "b1", "c1")
	ix, err := BuildIndexes(db, a)
	if err != nil {
		t.Fatal(err)
	}
	c := a.Constraints[0]

	rows, err := ix.Fetch(c, Tuple{"x1"})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 {
		t.Fatalf("baseline fetch: got %v", rows)
	}

	// Insert after BuildIndexes, through the delta path.
	applied, err := db.ApplyDelta([]Op{{Rel: "R", Row: Tuple{"x1", "b2", "c1"}}, {Rel: "R", Row: Tuple{"x9", "b9", "c9"}}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := ix.Apply(applied); err != nil {
		t.Fatal(err)
	}
	rows, err = ix.Fetch(c, Tuple{"x1"})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("fetch must see the tuple inserted after BuildIndexes: got %v", rows)
	}
	rows, err = ix.Fetch(c, Tuple{"x9"})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 {
		t.Fatalf("fetch must see a fresh X-value inserted after BuildIndexes: got %v", rows)
	}

	// Delete one of them again: the index must retract it.
	applied, err = db.ApplyDelta(nil, []Op{{Rel: "R", Row: Tuple{"x1", "b2", "c1"}}})
	if err != nil {
		t.Fatal(err)
	}
	if err := ix.Apply(applied); err != nil {
		t.Fatal(err)
	}
	rows, err = ix.Fetch(c, Tuple{"x1"})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || rows[0][1] != "b1" {
		t.Fatalf("after delete, fetch must retract the row: got %v", rows)
	}
}

// TestIndexedApplyCountsSharedProjections pins the reference-counting
// detail: two base rows that agree on X ∪ Y derive ONE fetched projection,
// which must survive the deletion of either row and vanish with the last.
func TestIndexedApplyCountsSharedProjections(t *testing.T) {
	s, a := liveFixture() // X={A}, Y={B}: attribute C is outside X ∪ Y
	db := NewDatabase(s)
	ix, err := BuildIndexes(db, a)
	if err != nil {
		t.Fatal(err)
	}
	c := a.Constraints[0]
	step := func(ins, del []Op) {
		t.Helper()
		applied, err := db.ApplyDelta(ins, del)
		if err != nil {
			t.Fatal(err)
		}
		if err := ix.Apply(applied); err != nil {
			t.Fatal(err)
		}
	}
	step([]Op{{Rel: "R", Row: Tuple{"x", "b", "c1"}}, {Rel: "R", Row: Tuple{"x", "b", "c2"}}}, nil)
	if rows, _ := ix.Fetch(c, Tuple{"x"}); len(rows) != 1 {
		t.Fatalf("shared AB-projection must be fetched once: got %v", rows)
	}
	step(nil, []Op{{Rel: "R", Row: Tuple{"x", "b", "c1"}}})
	if rows, _ := ix.Fetch(c, Tuple{"x"}); len(rows) != 1 {
		t.Fatalf("projection still derived by (x,b,c2): got %v", rows)
	}
	step(nil, []Op{{Rel: "R", Row: Tuple{"x", "b", "c2"}}})
	if rows, _ := ix.Fetch(c, Tuple{"x"}); len(rows) != 0 {
		t.Fatalf("last deriving row gone, projection must vanish: got %v", rows)
	}
}

// TestApplyDeltaMultisetAndShadow exercises the table-level delta path:
// multiset deletes, absent-delete no-ops, and consistency of the
// ID-encoded shadow across heavy random churn.
func TestApplyDeltaMultisetAndShadow(t *testing.T) {
	s := schema.New(schema.NewRelation("R", "A", "B"))
	db := NewDatabase(s)
	tbl := db.Table("R")

	// Multiset: two copies, deletes remove one at a time.
	if _, err := db.ApplyDelta([]Op{{Rel: "R", Row: Tuple{"a", "b"}}, {Rel: "R", Row: Tuple{"a", "b"}}}, nil); err != nil {
		t.Fatal(err)
	}
	if n := tbl.Count("a", "b"); n != 2 {
		t.Fatalf("Count = %d, want 2", n)
	}
	a, err := db.ApplyDelta(nil, []Op{{Rel: "R", Row: Tuple{"a", "b"}}, {Rel: "R", Row: Tuple{"zz", "zz"}}})
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Deleted) != 1 {
		t.Fatalf("absent delete must be a silent no-op: %+v", a)
	}
	if n := tbl.Count("a", "b"); n != 1 {
		t.Fatalf("Count = %d, want 1", n)
	}

	// Count with a wrong-arity row is zero occurrences, never a panic
	// (regression: used to index out of range on a shorter row).
	if n := tbl.Count("a"); n != 0 {
		t.Fatalf("short-row Count = %d, want 0", n)
	}
	if n := tbl.Count("a", "b", "c"); n != 0 {
		t.Fatalf("long-row Count = %d, want 0", n)
	}

	// Arity/relation validation happens before any mutation.
	if _, err := db.ApplyDelta([]Op{{Rel: "R", Row: Tuple{"only-one"}}}, nil); err == nil {
		t.Fatal("arity mismatch must error")
	}
	if _, err := db.ApplyDelta(nil, []Op{{Rel: "nope", Row: Tuple{"x"}}}); err == nil {
		t.Fatal("unknown relation must error")
	}
	if n := tbl.Len(); n != 1 {
		t.Fatalf("failed batch must not mutate: Len = %d", n)
	}

	// Random churn: shadow and position index stay aligned with Tuples.
	rng := rand.New(rand.NewSource(5))
	var live []Tuple
	live = append(live, Tuple{"a", "b"})
	for i := 0; i < 3000; i++ {
		if rng.Intn(2) == 0 && len(live) > 0 {
			k := rng.Intn(len(live))
			row := live[k]
			live[k] = live[len(live)-1]
			live = live[:len(live)-1]
			if _, err := db.ApplyDelta(nil, []Op{{Rel: "R", Row: row}}); err != nil {
				t.Fatal(err)
			}
		} else {
			row := Tuple{fmt.Sprintf("k%d", rng.Intn(40)), fmt.Sprintf("w%d", rng.Intn(40))}
			live = append(live, row)
			if _, err := db.ApplyDelta([]Op{{Rel: "R", Row: row}}, nil); err != nil {
				t.Fatal(err)
			}
		}
	}
	if tbl.Len() != len(live) {
		t.Fatalf("table has %d rows, oracle has %d", tbl.Len(), len(live))
	}
	idRows := tbl.IDRows()
	if len(idRows) != len(tbl.Tuples) {
		t.Fatalf("shadow out of sync: %d id rows vs %d tuples", len(idRows), len(tbl.Tuples))
	}
	for i, tu := range tbl.Tuples {
		if got := Tuple(db.Dict.Decode(idRows[i])); got.Key() != tu.Key() {
			t.Fatalf("row %d: shadow %v != tuple %v", i, got, tu)
		}
	}
	// Multiset counts match the oracle.
	counts := map[string]int{}
	for _, tu := range live {
		counts[tu.Key()]++
	}
	for key, want := range counts {
		var row Tuple
		for _, tu := range live {
			if tu.Key() == key {
				row = tu
				break
			}
		}
		if got := tbl.Count(row...); got != want {
			t.Fatalf("Count(%v) = %d, want %d", row, got, want)
		}
	}
}
