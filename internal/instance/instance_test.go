package instance

import (
	"testing"
	"testing/quick"

	"repro/internal/access"
	"repro/internal/intern"
	"repro/internal/schema"
)

func fixture() (*schema.Schema, *access.Constraint) {
	s := schema.New(schema.NewRelation("R", "A", "B", "C"))
	c := access.NewConstraint("R", []string{"A"}, []string{"B"}, 2)
	return s, c
}

func TestSatisfies(t *testing.T) {
	s, c := fixture()
	db := NewDatabase(s)
	db.MustInsert("R", "a", "1", "x")
	db.MustInsert("R", "a", "2", "y")
	ok, err := db.Satisfies(c)
	if err != nil || !ok {
		t.Fatalf("two B-values within bound: %v %v", ok, err)
	}
	// The same B twice does not add a distinct value.
	db.MustInsert("R", "a", "2", "z")
	if ok, _ := db.Satisfies(c); !ok {
		t.Fatal("duplicate Y-projection must not count twice")
	}
	db.MustInsert("R", "a", "3", "w")
	if ok, _ := db.Satisfies(c); ok {
		t.Fatal("three distinct B-values violate the bound")
	}
}

func TestInsertArity(t *testing.T) {
	s, _ := fixture()
	db := NewDatabase(s)
	if err := db.Insert("R", "a", "b"); err == nil {
		t.Fatal("arity mismatch must fail")
	}
	if err := db.Insert("nope", "a"); err == nil {
		t.Fatal("unknown relation must fail")
	}
}

func TestFetchReturnsProjections(t *testing.T) {
	s, c := fixture()
	a := access.NewSchema(c)
	db := NewDatabase(s)
	db.MustInsert("R", "a", "1", "x")
	db.MustInsert("R", "a", "2", "y")
	db.MustInsert("R", "b", "9", "z")
	// Same (A,B) with different C: the XY-projection is deduplicated.
	db.MustInsert("R", "a", "1", "other")
	ix, err := BuildIndexes(db, a)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := ix.Fetch(c, Tuple{"a"})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("want the 2 distinct (A,B) projections, got %v", rows)
	}
	if ix.FetchedTuples() != 2 || ix.FetchCalls() != 1 {
		t.Fatalf("accounting: %d tuples / %d calls", ix.FetchedTuples(), ix.FetchCalls())
	}
	// Missing key: empty, still one call.
	rows, err = ix.Fetch(c, Tuple{"zzz"})
	if err != nil || len(rows) != 0 {
		t.Fatalf("missing key: %v %v", rows, err)
	}
	if ix.FetchCalls() != 2 {
		t.Fatal("second call not counted")
	}
	ix.ResetCounters()
	if ix.FetchedTuples() != 0 || ix.FetchCalls() != 0 {
		t.Fatal("reset failed")
	}
	// Wrong input arity.
	if _, err := ix.Fetch(c, Tuple{"a", "b"}); err == nil {
		t.Fatal("wrong input arity must fail")
	}
}

func TestEmptyXFetch(t *testing.T) {
	s := schema.New(schema.NewRelation("S", "V"))
	c := access.NewConstraint("S", nil, []string{"V"}, 3)
	db := NewDatabase(s)
	db.MustInsert("S", "1")
	db.MustInsert("S", "2")
	ix, err := BuildIndexes(db, access.NewSchema(c))
	if err != nil {
		t.Fatal(err)
	}
	rows, err := ix.Fetch(c, nil)
	if err != nil || len(rows) != 2 {
		t.Fatalf("empty-X fetch returns the whole projection: %v %v", rows, err)
	}
}

func TestActiveDomainAndClone(t *testing.T) {
	s, _ := fixture()
	db := NewDatabase(s)
	db.MustInsert("R", "a", "b", "c")
	ad := db.ActiveDomain()
	if len(ad) != 3 {
		t.Fatalf("active domain: %v", ad)
	}
	cl := db.Clone()
	cl.MustInsert("R", "x", "y", "z")
	if db.Size() != 1 || cl.Size() != 2 {
		t.Fatal("clone must be independent")
	}
}

// Property: fetch results always agree with a full scan filtered on X.
func TestFetchAgreesWithScan(t *testing.T) {
	s, c := fixture()
	a := access.NewSchema(c)
	f := func(rows [][3]byte, probe byte) bool {
		db := NewDatabase(s)
		fan := map[string]map[string]bool{}
		for _, r := range rows {
			av, bv, cv := dom(r[0]), dom(r[1]), dom(r[2])
			// Respect the bound during generation (skip violating rows).
			g := fan[av]
			if g == nil {
				g = map[string]bool{}
				fan[av] = g
			}
			if !g[bv] && len(g) >= 2 {
				continue
			}
			g[bv] = true
			db.MustInsert("R", av, bv, cv)
		}
		if ok, _ := db.SatisfiesAll(a); !ok {
			return false
		}
		ix, err := BuildIndexes(db, a)
		if err != nil {
			return false
		}
		key := dom(probe)
		got, err := ix.Fetch(c, Tuple{key})
		if err != nil {
			return false
		}
		want := map[string]bool{}
		for _, tu := range db.Table("R").Tuples {
			if tu[0] == key {
				want[tu[0]+"\x1f"+tu[1]] = true
			}
		}
		if len(got) != len(want) {
			return false
		}
		for _, r := range got {
			if !want[r[0]+"\x1f"+r[1]] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func dom(b byte) string {
	return string(rune('a' + b%5))
}

func TestRestoreRows(t *testing.T) {
	s, c := fixture()
	db := NewDatabase(s)
	db.MustInsert("R", "a1", "b1", "c1")
	db.MustInsert("R", "a1", "b2", "c1")
	db.MustInsert("R", "a2", "b1", "c2")
	idRows := db.Table("R").IDRows()

	// Restore into a fresh database over a dictionary rebuilt from the
	// original's serialized prefix — the WAL checkpoint load path.
	dict, ok := intern.FromStrings(db.Dict.StringsRange(0, db.Dict.Len()))
	if !ok {
		t.Fatal("dictionary serialization has duplicates")
	}
	r := NewDatabaseWith(s, dict)
	if err := r.RestoreRows("R", idRows); err != nil {
		t.Fatal(err)
	}
	rt := r.Table("R")
	if len(rt.Tuples) != 3 || r.Size() != 3 {
		t.Fatalf("restored %d tuples, want 3", len(rt.Tuples))
	}
	for i, tu := range db.Table("R").Tuples {
		if tu.Key() != rt.Tuples[i].Key() {
			t.Fatalf("row %d: restored %v, want %v", i, rt.Tuples[i], tu)
		}
	}
	got := rt.IDRows()
	for i, row := range idRows {
		if !intern.RowsEq(got[i], row) {
			t.Fatalf("row %d: restored IDs %v, want %v", i, got[i], row)
		}
	}
	// The restored table serves fetches (indexes rebuilt from the rows).
	vx, err := BuildVIndex(r, access.NewSchema(c))
	if err != nil {
		t.Fatal(err)
	}
	rows, err := vx.Fetch(c, Tuple{"a1"})
	if err != nil || len(rows) != 2 {
		t.Fatalf("fetch on restored table: %v rows, err %v", rows, err)
	}
	// And keeps accepting normal mutations.
	if err := r.Insert("R", "a3", "b9", "c9"); err != nil {
		t.Fatal(err)
	}
	if _, err := r.ApplyDelta(nil, []Op{{Rel: "R", Row: Tuple{"a1", "b1", "c1"}}}); err != nil {
		t.Fatal(err)
	}
	if r.Size() != 3 {
		t.Fatalf("post-restore mutations: |D| = %d, want 3", r.Size())
	}

	// Validation: unknown relation, non-empty target, arity skew,
	// out-of-dictionary IDs.
	if err := r.RestoreRows("nope", nil); err == nil {
		t.Error("restore into unknown relation must fail")
	}
	if err := r.RestoreRows("R", idRows); err == nil {
		t.Error("restore into a non-empty relation must fail")
	}
	empty := NewDatabaseWith(s, dict)
	if err := empty.RestoreRows("R", [][]uint32{{0, 1}}); err == nil {
		t.Error("arity mismatch must fail")
	}
	if err := empty.RestoreRows("R", [][]uint32{{0, 1, 9999}}); err == nil {
		t.Error("IDs beyond the dictionary must fail")
	}
	if len(empty.Table("R").Tuples) != 0 {
		t.Error("failed restore must leave the table empty")
	}
}
