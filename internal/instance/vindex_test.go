package instance

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/access"
	"repro/internal/schema"
)

// sortedFetch canonicalizes a fetch result for comparison.
func sortedFetch(rows [][]uint32) string {
	out := make([]string, len(rows))
	for i, r := range rows {
		out[i] = fmt.Sprint(r)
	}
	sort.Strings(out)
	return fmt.Sprint(out)
}

// TestVIndexDifferentialRandom drives a random delta stream through both
// the mutable Indexed and the versioned VIndex, checking after every batch
// that every (constraint, X-value) probe agrees — and that every PINNED
// older version still answers exactly as it did when it was current
// (persistence: later batches never leak into published epochs).
func TestVIndexDifferentialRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	s := schema.New(
		schema.NewRelation("R", "A", "B", "C"),
		schema.NewRelation("S", "X", "Y"),
	)
	a := access.NewSchema(
		access.NewConstraint("R", []string{"A"}, []string{"B"}, 50),
		access.NewConstraint("R", []string{"A", "B"}, []string{"C"}, 50),
		access.NewConstraint("R", nil, []string{"A"}, 50),
		access.NewConstraint("S", []string{"X"}, []string{"Y"}, 50),
	)
	val := func() string { return fmt.Sprintf("v%d", rng.Intn(12)) }
	db := NewDatabase(s)
	for i := 0; i < 120; i++ {
		if rng.Intn(2) == 0 {
			db.MustInsert("R", val(), val(), val())
		} else {
			db.MustInsert("S", val(), val())
		}
	}

	ix, err := BuildIndexes(db, a)
	if err != nil {
		t.Fatal(err)
	}
	vx, err := BuildVIndex(db, a)
	if err != nil {
		t.Fatal(err)
	}

	// All probe keys seen in the value pool (IDs for v0..v11 plus an
	// absent value).
	probes := func(c *access.Constraint) [][]uint32 {
		var keys [][]uint32
		var rec func(prefix []uint32, k int)
		rec = func(prefix []uint32, k int) {
			if k == len(c.X) {
				keys = append(keys, append([]uint32(nil), prefix...))
				return
			}
			for i := 0; i < 12; i++ {
				if id, ok := db.Dict.Lookup(fmt.Sprintf("v%d", i)); ok {
					rec(append(prefix, id), k+1)
				}
			}
		}
		rec(nil, 0)
		return keys
	}
	agree := func(step string, vx *VIndex) {
		t.Helper()
		for _, c := range a.Constraints {
			for _, key := range probes(c) {
				want, err1 := ix.FetchIDs(c, key)
				got, err2 := vx.FetchIDs(c, key)
				if (err1 == nil) != (err2 == nil) {
					t.Fatalf("%s: error mismatch on %s(%v): %v vs %v", step, c, key, err1, err2)
				}
				if sortedFetch(got) != sortedFetch(want) {
					t.Fatalf("%s: %s(%v) diverges:\nvindex  %v\nindexed %v", step, c, key, got, want)
				}
			}
		}
	}
	agree("initial", vx)

	type pinned struct {
		vx     *VIndex
		answer map[string]string // constraint|key -> canonical result
	}
	freeze := func(vx *VIndex) pinned {
		ans := map[string]string{}
		for _, c := range a.Constraints {
			for _, key := range probes(c) {
				rows, _ := vx.FetchIDs(c, key)
				ans[c.Key()+"|"+fmt.Sprint(key)] = sortedFetch(rows)
			}
		}
		return pinned{vx: vx, answer: ans}
	}
	var pins []pinned

	live := map[string][]Tuple{}
	for name, tb := range db.Tables {
		for _, tu := range tb.Tuples {
			live[name] = append(live[name], tu.Clone())
		}
	}
	for b := 0; b < 30; b++ {
		var ins, del []Op
		for o := 0; o < 15; o++ {
			rel := "R"
			if rng.Intn(2) == 0 {
				rel = "S"
			}
			arity := s.Relation(rel).Arity()
			switch {
			case rng.Float64() < 0.45 && len(live[rel]) > 0:
				i := rng.Intn(len(live[rel]))
				row := live[rel][i]
				live[rel][i] = live[rel][len(live[rel])-1]
				live[rel] = live[rel][:len(live[rel])-1]
				del = append(del, Op{Rel: rel, Row: row})
			default:
				row := make(Tuple, arity)
				for j := range row {
					row[j] = val()
				}
				live[rel] = append(live[rel], row)
				ins = append(ins, Op{Rel: rel, Row: row.Clone()})
			}
		}
		applied, err := db.ApplyDelta(ins, del)
		if err != nil {
			t.Fatal(err)
		}
		if err := ix.Apply(applied); err != nil {
			t.Fatal(err)
		}
		next, err := vx.Apply(applied)
		if err != nil {
			t.Fatal(err)
		}
		vx = next
		agree(fmt.Sprintf("batch %d", b), vx)
		if b%7 == 0 {
			pins = append(pins, freeze(vx))
		}
	}

	// Persistence: every pinned version still answers exactly as frozen.
	for i, p := range pins {
		for _, c := range a.Constraints {
			for _, key := range probes(c) {
				rows, _ := p.vx.FetchIDs(c, key)
				if got := sortedFetch(rows); got != p.answer[c.Key()+"|"+fmt.Sprint(key)] {
					t.Fatalf("pin %d: %s(%v) drifted after later batches:\nnow  %s\nwas %s",
						i, c, key, got, p.answer[c.Key()+"|"+fmt.Sprint(key)])
				}
			}
		}
	}
}

func TestVIndexFetchStrings(t *testing.T) {
	s := schema.New(schema.NewRelation("R", "A", "B"))
	a := access.NewSchema(access.NewConstraint("R", []string{"A"}, []string{"B"}, 3))
	db := NewDatabase(s)
	db.MustInsert("R", "k", "x")
	db.MustInsert("R", "k", "y")
	db.MustInsert("R", "k", "x") // duplicate: one distinct projection
	vx, err := BuildVIndex(db, a)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := vx.Fetch(a.Constraints[0], Tuple{"k"})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("fetch returned %v, want 2 distinct projections", rows)
	}
	if rows, err = vx.Fetch(a.Constraints[0], Tuple{"absent"}); err != nil || rows != nil {
		t.Fatalf("absent key: %v %v", rows, err)
	}
	if attrs := vx.FetchAttrs(a.Constraints[0]); fmt.Sprint(attrs) != "[A B]" {
		t.Fatalf("FetchAttrs = %v", attrs)
	}
}
