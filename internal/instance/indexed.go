package instance

import (
	"fmt"

	"repro/internal/access"
)

// Indexed wraps a Database with one hash index per access constraint,
// realizing the "index function" an access constraint promises: given an
// X-value a̅, return D_{R:XY}(X = a̅) in O(N) time. It also accounts for
// every tuple fetched, which is how experiments measure |Dξ| — the amount
// of data a bounded plan reads from the underlying database.
type Indexed struct {
	DB     *Database
	Access *access.Schema

	// indexes[constraintKey][xValueKey] = distinct XY-projections.
	indexes map[string]map[string][]Tuple
	// xyAttrs[constraintKey] = attribute names (ordered) of the stored projections.
	xyAttrs map[string][]string

	fetchedTuples int // running count of tuples returned by Fetch
	fetchCalls    int // running count of Fetch invocations
}

// BuildIndexes constructs the index structures for every constraint in the
// access schema. It does not verify the cardinality bounds; use
// db.SatisfiesAll for that (experiments check it separately so that index
// construction stays O(|D|)).
func BuildIndexes(db *Database, a *access.Schema) (*Indexed, error) {
	ix := &Indexed{
		DB:      db,
		Access:  a,
		indexes: make(map[string]map[string][]Tuple, len(a.Constraints)),
		xyAttrs: make(map[string][]string, len(a.Constraints)),
	}
	for _, c := range a.Constraints {
		if err := ix.buildOne(c); err != nil {
			return nil, err
		}
	}
	return ix, nil
}

func (ix *Indexed) buildOne(c *access.Constraint) error {
	t := ix.DB.Table(c.Rel)
	if t == nil {
		return fmt.Errorf("instance: no relation %s for constraint %s", c.Rel, c)
	}
	xpos, err := t.Rel.Positions(c.X)
	if err != nil {
		return err
	}
	xy := c.XY()
	xypos, err := t.Rel.Positions(xy)
	if err != nil {
		return err
	}
	idx := make(map[string][]Tuple)
	seen := make(map[string]map[string]struct{})
	for _, tu := range t.Tuples {
		xk := tu.Project(xpos).Key()
		proj := tu.Project(xypos)
		pk := proj.Key()
		s := seen[xk]
		if s == nil {
			s = make(map[string]struct{})
			seen[xk] = s
		}
		if _, dup := s[pk]; dup {
			continue
		}
		s[pk] = struct{}{}
		idx[xk] = append(idx[xk], proj)
	}
	key := c.Key()
	ix.indexes[key] = idx
	ix.xyAttrs[key] = xy
	return nil
}

// FetchAttrs returns the attribute names (ordered) of the tuples a Fetch
// over constraint c yields: the sorted union X ∪ Y.
func (ix *Indexed) FetchAttrs(c *access.Constraint) []string { return ix.xyAttrs[c.Key()] }

// Fetch performs fetch(X = xval, R, Y) via the index of constraint c:
// it returns the distinct XY-projections of tuples whose X-attributes equal
// xval. xval must be ordered like c.X (sorted attribute order). Every
// returned tuple is counted against the fetch budget.
func (ix *Indexed) Fetch(c *access.Constraint, xval Tuple) ([]Tuple, error) {
	idx, ok := ix.indexes[c.Key()]
	if !ok {
		return nil, fmt.Errorf("instance: no index for constraint %s", c)
	}
	if len(xval) != len(c.X) {
		return nil, fmt.Errorf("instance: fetch on %s expects %d input values, got %d", c, len(c.X), len(xval))
	}
	rows := idx[xval.Key()]
	ix.fetchCalls++
	ix.fetchedTuples += len(rows)
	return rows, nil
}

// FetchedTuples returns the number of tuples fetched from D so far (the
// size of the bag Dξ in the paper's terms).
func (ix *Indexed) FetchedTuples() int { return ix.fetchedTuples }

// FetchCalls returns the number of Fetch invocations so far.
func (ix *Indexed) FetchCalls() int { return ix.fetchCalls }

// ResetCounters zeroes the fetch accounting, to measure a single plan run.
func (ix *Indexed) ResetCounters() { ix.fetchedTuples, ix.fetchCalls = 0, 0 }
