package instance

import (
	"fmt"
	"sync/atomic"

	"repro/internal/access"
	"repro/internal/intern"
)

// Indexed wraps a Database with one hash index per access constraint,
// realizing the "index function" an access constraint promises: given an
// X-value a̅, return D_{R:XY}(X = a̅) in O(N) time. Indexes store
// ID-encoded rows keyed by a 64-bit hash of the packed X-projection (with
// collision verification), so fetch probes never touch strings. It also
// accounts for every tuple fetched, which is how experiments measure |Dξ|
// — the amount of data a bounded plan reads from the underlying database.
// The counters are atomic, so concurrent workers of the parallel evaluator
// merge their accounting exactly.
//
// The indexes are maintained incrementally: Apply patches them with the
// outcome of a Database.ApplyDelta batch, so a long-running process never
// rebuilds them as D churns. Each distinct XY-projection carries a
// reference count of the base rows deriving it, which makes deletions
// exact when X ∪ Y does not cover the relation. Apply must be serialized
// against Fetch/FetchIDs by the caller (the facade's Live handle holds a
// write lock around it).
type Indexed struct {
	DB     *Database
	Access *access.Schema

	cons  map[string]*conIndex   // constraint key -> index
	byRel map[string][]*conIndex // relation name -> its constraints' indexes

	fetchedTuples atomic.Int64 // running count of tuples returned by Fetch
	fetchCalls    atomic.Int64 // running count of Fetch invocations
}

// conIndex is the index of one constraint: X-value groups of distinct
// XY-projections with per-projection reference counts.
type conIndex struct {
	c       *access.Constraint
	xpos    []int    // X attribute positions in the relation
	xypos   []int    // X ∪ Y attribute positions (sorted attr order)
	xyAttrs []string // attribute names of the stored projections
	groups  map[uint64][]ixEntry
}

type ixEntry struct {
	x      []uint32
	rows   [][]uint32 // distinct XY-projections
	counts []int      // rows[i] is derived by counts[i] base rows
}

// BuildIndexes constructs the index structures for every constraint in the
// access schema. It does not verify the cardinality bounds; use
// db.SatisfiesAll for that (experiments check it separately so that index
// construction stays O(|D|)).
func BuildIndexes(db *Database, a *access.Schema) (*Indexed, error) {
	ix := &Indexed{
		DB:     db,
		Access: a,
		cons:   make(map[string]*conIndex, len(a.Constraints)),
		byRel:  make(map[string][]*conIndex),
	}
	for _, c := range a.Constraints {
		ci, err := ix.buildOne(c)
		if err != nil {
			return nil, err
		}
		ix.cons[c.Key()] = ci
		ix.byRel[c.Rel] = append(ix.byRel[c.Rel], ci)
	}
	return ix, nil
}

func (ix *Indexed) buildOne(c *access.Constraint) (*conIndex, error) {
	t := ix.DB.Table(c.Rel)
	if t == nil {
		return nil, fmt.Errorf("instance: no relation %s for constraint %s", c.Rel, c)
	}
	xpos, err := t.Rel.Positions(c.X)
	if err != nil {
		return nil, err
	}
	xy := c.XY()
	xypos, err := t.Rel.Positions(xy)
	if err != nil {
		return nil, err
	}
	ci := &conIndex{c: c, xpos: xpos, xypos: xypos, xyAttrs: xy, groups: make(map[uint64][]ixEntry)}
	for _, r := range t.IDRows() {
		ci.add(r)
	}
	return ci, nil
}

// add registers one base row: its XY-projection enters (or bumps the count
// of) its X-group. The within-group scan is bounded by the constraint's N
// on conforming instances.
func (ci *conIndex) add(r []uint32) {
	h := intern.HashAt(r, ci.xpos)
	es := ci.groups[h]
	e := (*ixEntry)(nil)
	for i := range es {
		if projEq(es[i].x, r, ci.xpos) {
			e = &es[i]
			break
		}
	}
	if e == nil {
		ci.groups[h] = append(es, ixEntry{x: intern.Project(r, ci.xpos)})
		e = &ci.groups[h][len(es)]
	}
	for i, p := range e.rows {
		if projEq(p, r, ci.xypos) {
			e.counts[i]++
			return
		}
	}
	e.rows = append(e.rows, intern.Project(r, ci.xypos))
	e.counts = append(e.counts, 1)
}

// remove drops one base row's derivation; the XY-projection leaves the
// group when its last deriving row goes.
func (ci *conIndex) remove(r []uint32) error {
	h := intern.HashAt(r, ci.xpos)
	es := ci.groups[h]
	for i := range es {
		if !projEq(es[i].x, r, ci.xpos) {
			continue
		}
		e := &es[i]
		for k, p := range e.rows {
			if !projEq(p, r, ci.xypos) {
				continue
			}
			e.counts[k]--
			if e.counts[k] == 0 {
				last := len(e.rows) - 1
				e.rows[k] = e.rows[last]
				e.counts[k] = e.counts[last]
				e.rows[last] = nil
				e.rows = e.rows[:last]
				e.counts = e.counts[:last]
				if last == 0 {
					es[i] = es[len(es)-1]
					es[len(es)-1] = ixEntry{}
					ci.groups[h] = es[:len(es)-1]
					if len(ci.groups[h]) == 0 {
						delete(ci.groups, h)
					}
				}
			}
			return nil
		}
		break
	}
	return fmt.Errorf("instance: index %s out of sync: deleted row not indexed", ci.c)
}

// projEq reports whether proj equals the projection of row at pos, without
// allocating.
func projEq(proj, row []uint32, pos []int) bool {
	if len(proj) != len(pos) {
		return false
	}
	for i, p := range pos {
		if proj[i] != row[p] {
			return false
		}
	}
	return true
}

// Apply patches every constraint index with the outcome of a
// Database.ApplyDelta batch, in the same order the database applied it
// (deletes, then inserts). Per-op cost is bounded by the constraints' N on
// conforming instances — independent of |D|. Callers must serialize Apply
// against concurrent fetches.
func (ix *Indexed) Apply(a *Applied) error {
	for _, op := range a.Deleted {
		for _, ci := range ix.byRel[op.Rel] {
			if err := ci.remove(op.IDs); err != nil {
				return err
			}
		}
	}
	for _, op := range a.Inserted {
		for _, ci := range ix.byRel[op.Rel] {
			ci.add(op.IDs)
		}
	}
	return nil
}

// Dict returns the database dictionary rows are interned against, making
// Indexed a plan.Source.
func (ix *Indexed) Dict() *intern.Dict { return ix.DB.Dict }

// FetchAttrs returns the attribute names (ordered) of the tuples a Fetch
// over constraint c yields: the sorted union X ∪ Y.
func (ix *Indexed) FetchAttrs(c *access.Constraint) []string {
	ci, ok := ix.cons[c.Key()]
	if !ok {
		return nil
	}
	return ci.xyAttrs
}

// Fetch performs fetch(X = xval, R, Y) via the index of constraint c:
// it returns the distinct XY-projections of tuples whose X-attributes equal
// xval. xval must be ordered like c.X (sorted attribute order). Every
// returned tuple is counted against the fetch budget.
func (ix *Indexed) Fetch(c *access.Constraint, xval Tuple) ([]Tuple, error) {
	if len(xval) != len(c.X) {
		return nil, fmt.Errorf("instance: fetch on %s expects %d input values, got %d", c, len(c.X), len(xval))
	}
	if _, ok := ix.cons[c.Key()]; !ok {
		return nil, fmt.Errorf("instance: no index for constraint %s", c)
	}
	key := make([]uint32, len(xval))
	for i, v := range xval {
		id, ok := ix.DB.Dict.Lookup(v)
		if !ok {
			// The value never occurs in D, so no row can match; the probe
			// still counts as a fetch call.
			ix.fetchCalls.Add(1)
			return nil, nil
		}
		key[i] = id
	}
	idRows, err := ix.FetchIDs(c, key)
	if err != nil {
		return nil, err
	}
	rows := make([]Tuple, len(idRows))
	for i, r := range idRows {
		rows[i] = Tuple(ix.DB.Dict.Decode(r))
	}
	return rows, nil
}

// FetchIDs is Fetch over ID-encoded values: the interned hot path used by
// plan execution. The returned rows must not be mutated, and are
// invalidated by the next Apply.
func (ix *Indexed) FetchIDs(c *access.Constraint, xval []uint32) ([][]uint32, error) {
	ci, ok := ix.cons[c.Key()]
	if !ok {
		return nil, fmt.Errorf("instance: no index for constraint %s", c)
	}
	if len(xval) != len(c.X) {
		return nil, fmt.Errorf("instance: fetch on %s expects %d input values, got %d", c, len(c.X), len(xval))
	}
	ix.fetchCalls.Add(1)
	for _, e := range ci.groups[intern.Hash(xval)] {
		if intern.RowsEq(e.x, xval) {
			ix.fetchedTuples.Add(int64(len(e.rows)))
			return e.rows, nil
		}
	}
	return nil, nil
}

// FetchedTuples returns the number of tuples fetched from D so far (the
// size of the bag Dξ in the paper's terms).
func (ix *Indexed) FetchedTuples() int { return int(ix.fetchedTuples.Load()) }

// FetchCalls returns the number of Fetch invocations so far.
func (ix *Indexed) FetchCalls() int { return int(ix.fetchCalls.Load()) }

// ResetCounters zeroes the fetch accounting, to measure a single plan run.
func (ix *Indexed) ResetCounters() {
	ix.fetchedTuples.Store(0)
	ix.fetchCalls.Store(0)
}
