package instance

import (
	"fmt"
	"sync/atomic"

	"repro/internal/access"
	"repro/internal/intern"
)

// Indexed wraps a Database with one hash index per access constraint,
// realizing the "index function" an access constraint promises: given an
// X-value a̅, return D_{R:XY}(X = a̅) in O(N) time. Indexes store
// ID-encoded rows keyed by a 64-bit hash of the packed X-projection (with
// collision verification), so fetch probes never touch strings. It also
// accounts for every tuple fetched, which is how experiments measure |Dξ|
// — the amount of data a bounded plan reads from the underlying database.
// The counters are atomic, so concurrent workers of the parallel evaluator
// merge their accounting exactly.
type Indexed struct {
	DB     *Database
	Access *access.Schema

	// indexes[constraintKey] holds the hash buckets of distinct
	// XY-projections grouped by X-value.
	indexes map[string]map[uint64][]ixEntry
	// xyAttrs[constraintKey] = attribute names (ordered) of the stored projections.
	xyAttrs map[string][]string

	fetchedTuples atomic.Int64 // running count of tuples returned by Fetch
	fetchCalls    atomic.Int64 // running count of Fetch invocations
}

type ixEntry struct {
	x    []uint32
	rows [][]uint32
}

// BuildIndexes constructs the index structures for every constraint in the
// access schema. It does not verify the cardinality bounds; use
// db.SatisfiesAll for that (experiments check it separately so that index
// construction stays O(|D|)).
func BuildIndexes(db *Database, a *access.Schema) (*Indexed, error) {
	ix := &Indexed{
		DB:      db,
		Access:  a,
		indexes: make(map[string]map[uint64][]ixEntry, len(a.Constraints)),
		xyAttrs: make(map[string][]string, len(a.Constraints)),
	}
	for _, c := range a.Constraints {
		if err := ix.buildOne(c); err != nil {
			return nil, err
		}
	}
	return ix, nil
}

func (ix *Indexed) buildOne(c *access.Constraint) error {
	t := ix.DB.Table(c.Rel)
	if t == nil {
		return fmt.Errorf("instance: no relation %s for constraint %s", c.Rel, c)
	}
	xpos, err := t.Rel.Positions(c.X)
	if err != nil {
		return err
	}
	xy := c.XY()
	xypos, err := t.Rel.Positions(xy)
	if err != nil {
		return err
	}
	type building struct {
		seen intern.Set
		rows [][]uint32
	}
	bld := intern.NewGrouper[building](xpos)
	for _, r := range t.IDRows() {
		b := bld.At(r)
		if proj, fresh := b.seen.AddProj(r, xypos); fresh {
			b.rows = append(b.rows, proj)
		}
	}
	idx := make(map[uint64][]ixEntry)
	bld.Each(func(x []uint32, b *building) {
		h := intern.Hash(x)
		idx[h] = append(idx[h], ixEntry{x: x, rows: b.rows})
	})
	key := c.Key()
	ix.indexes[key] = idx
	ix.xyAttrs[key] = xy
	return nil
}

// FetchAttrs returns the attribute names (ordered) of the tuples a Fetch
// over constraint c yields: the sorted union X ∪ Y.
func (ix *Indexed) FetchAttrs(c *access.Constraint) []string { return ix.xyAttrs[c.Key()] }

// Fetch performs fetch(X = xval, R, Y) via the index of constraint c:
// it returns the distinct XY-projections of tuples whose X-attributes equal
// xval. xval must be ordered like c.X (sorted attribute order). Every
// returned tuple is counted against the fetch budget.
func (ix *Indexed) Fetch(c *access.Constraint, xval Tuple) ([]Tuple, error) {
	if len(xval) != len(c.X) {
		return nil, fmt.Errorf("instance: fetch on %s expects %d input values, got %d", c, len(c.X), len(xval))
	}
	if _, ok := ix.indexes[c.Key()]; !ok {
		return nil, fmt.Errorf("instance: no index for constraint %s", c)
	}
	key := make([]uint32, len(xval))
	for i, v := range xval {
		id, ok := ix.DB.Dict.Lookup(v)
		if !ok {
			// The value never occurs in D, so no row can match; the probe
			// still counts as a fetch call.
			ix.fetchCalls.Add(1)
			return nil, nil
		}
		key[i] = id
	}
	idRows, err := ix.FetchIDs(c, key)
	if err != nil {
		return nil, err
	}
	rows := make([]Tuple, len(idRows))
	for i, r := range idRows {
		rows[i] = Tuple(ix.DB.Dict.Decode(r))
	}
	return rows, nil
}

// FetchIDs is Fetch over ID-encoded values: the interned hot path used by
// plan execution. The returned rows must not be mutated.
func (ix *Indexed) FetchIDs(c *access.Constraint, xval []uint32) ([][]uint32, error) {
	idx, ok := ix.indexes[c.Key()]
	if !ok {
		return nil, fmt.Errorf("instance: no index for constraint %s", c)
	}
	if len(xval) != len(c.X) {
		return nil, fmt.Errorf("instance: fetch on %s expects %d input values, got %d", c, len(c.X), len(xval))
	}
	ix.fetchCalls.Add(1)
	for _, e := range idx[intern.Hash(xval)] {
		if intern.RowsEq(e.x, xval) {
			ix.fetchedTuples.Add(int64(len(e.rows)))
			return e.rows, nil
		}
	}
	return nil, nil
}

// FetchedTuples returns the number of tuples fetched from D so far (the
// size of the bag Dξ in the paper's terms).
func (ix *Indexed) FetchedTuples() int { return int(ix.fetchedTuples.Load()) }

// FetchCalls returns the number of Fetch invocations so far.
func (ix *Indexed) FetchCalls() int { return int(ix.fetchCalls.Load()) }

// ResetCounters zeroes the fetch accounting, to measure a single plan run.
func (ix *Indexed) ResetCounters() {
	ix.fetchedTuples.Store(0)
	ix.fetchCalls.Store(0)
}
