package instance

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/access"
	"repro/internal/schema"
)

// TestVIndexCompact churns a VIndex through grow/shrink cycles (which
// leave append slack inside bucket and group slices), compacts it, and
// checks: every probe answers identically before and after, the
// pre-compaction version is untouched (persistence survives compaction),
// and a freshly compacted index reports no further slack to repack.
func TestVIndexCompact(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	s := schema.New(schema.NewRelation("R", "A", "B"))
	a := access.NewSchema(access.NewConstraint("R", []string{"A"}, []string{"B"}, 400))
	db := NewDatabase(s)
	vx, err := BuildVIndex(db, a)
	if err != nil {
		t.Fatal(err)
	}
	c := a.Constraints[0]

	step := func(ins, del []Op) {
		t.Helper()
		applied, err := db.ApplyDelta(ins, del)
		if err != nil {
			t.Fatal(err)
		}
		next, err := vx.Apply(applied)
		if err != nil {
			t.Fatal(err)
		}
		vx = next
	}
	// Grow a few hot keys to many rows each (append slack in group rows),
	// then delete most of them (len << cap inside the clones kept by Apply).
	var ins []Op
	for k := 0; k < 8; k++ {
		for i := 0; i < 300; i++ {
			ins = append(ins, Op{Rel: "R", Row: Tuple{fmt.Sprintf("k%d", k), fmt.Sprintf("v%d", i)}})
		}
	}
	step(ins, nil)
	var del []Op
	for k := 0; k < 8; k++ {
		for i := 0; i < 280; i++ {
			if rng.Intn(8) != 0 {
				del = append(del, Op{Rel: "R", Row: Tuple{fmt.Sprintf("k%d", k), fmt.Sprintf("v%d", i)}})
			}
		}
	}
	step(nil, del)

	probe := func(vx *VIndex) map[string]string {
		ans := map[string]string{}
		for k := 0; k < 8; k++ {
			key := fmt.Sprintf("k%d", k)
			id, ok := db.Dict.Lookup(key)
			if !ok {
				t.Fatalf("key %s not interned", key)
			}
			rows, err := vx.FetchIDs(c, []uint32{id})
			if err != nil {
				t.Fatal(err)
			}
			ans[key] = sortedFetch(rows)
		}
		return ans
	}
	before := probe(vx)
	old := vx

	compacted, n := vx.Compact()
	if n == 0 {
		t.Fatal("Compact repacked nothing despite heavy delete churn")
	}
	if got := probe(compacted); fmt.Sprint(got) != fmt.Sprint(before) {
		t.Fatalf("Compact changed answers:\nbefore %v\nafter  %v", before, got)
	}
	if got := probe(old); fmt.Sprint(got) != fmt.Sprint(before) {
		t.Fatal("Compact mutated the version it was called on")
	}

	// Compact is idempotent: a compact index has no slack left.
	if _, n2 := compacted.Compact(); n2 != 0 {
		t.Fatalf("second Compact repacked %d groups on a fresh index", n2)
	}

	// The compacted version remains a valid base for further churn.
	vx = compacted
	step([]Op{{Rel: "R", Row: Tuple{"k0", "fresh"}}}, nil)
	id, _ := db.Dict.Lookup("k0")
	rows, err := vx.FetchIDs(c, []uint32{id})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	fid, _ := db.Dict.Lookup("fresh")
	for _, r := range rows {
		for _, v := range r {
			if v == fid {
				found = true
			}
		}
	}
	if !found {
		t.Fatal("apply after Compact lost the new row")
	}
}
