package instance

import (
	"fmt"

	"repro/internal/access"
	"repro/internal/epoch"
	"repro/internal/intern"
)

// VIndex is one immutable epoch version of the per-constraint fetch
// indices: the same index function Indexed realizes, but versioned for
// epoch-based snapshot reads. A VIndex is never mutated after it is
// published — Apply returns a NEW version that shares every untouched
// group with its predecessor (the groups live in a persistent hash trie,
// epoch.Map, so one batch copies only the trie paths and group entries it
// touches). Readers therefore probe any pinned version without locks,
// concurrently with the writer deriving the next one.
//
// Unlike Indexed, a VIndex does no fetch accounting of its own: it is a
// pure data version. Serving layers wrap it (the facade's Snapshot) and
// attribute fetched tuples per call, per snapshot and per handle exactly.
type VIndex struct {
	access *access.Schema
	dict   *intern.Dict
	cons   map[string]*vcon // immutable map: rebuilt (shallow) per Apply
}

// vcon is one constraint's index version. The struct is immutable; Apply
// clones it before swapping in a new groups root.
type vcon struct {
	c       *access.Constraint
	xpos    []int    // X attribute positions in the relation
	xypos   []int    // X ∪ Y attribute positions (sorted attr order)
	xyAttrs []string // attribute names of the stored projections
	groups  *epoch.Map[[]vgroup]
}

// vgroup is one X-value group: the distinct XY-projections with their base
// row derivation counts. Groups under one 64-bit hash form a bucket
// (collision chain); both the bucket slice and each group's rows/counts
// are copy-on-write — a version never mutates what a predecessor
// published.
type vgroup struct {
	x      []uint32
	rows   [][]uint32
	counts []int
}

// BuildVIndex constructs the initial epoch version of the fetch indices
// over db's current contents, one per access constraint.
func BuildVIndex(db *Database, a *access.Schema) (*VIndex, error) {
	vx := &VIndex{
		access: a,
		dict:   db.Dict,
		cons:   make(map[string]*vcon, len(a.Constraints)),
	}
	for _, c := range a.Constraints {
		t := db.Table(c.Rel)
		if t == nil {
			return nil, fmt.Errorf("instance: no relation %s for constraint %s", c.Rel, c)
		}
		xpos, err := t.Rel.Positions(c.X)
		if err != nil {
			return nil, err
		}
		xy := c.XY()
		xypos, err := t.Rel.Positions(xy)
		if err != nil {
			return nil, err
		}
		vc := &vcon{c: c, xpos: xpos, xypos: xypos, xyAttrs: xy, groups: epoch.NewMap[[]vgroup]()}
		// Bulk build: mutate freshly allocated buckets in place (nothing is
		// published yet), going through the trie only per distinct hash.
		staged := map[uint64][]vgroup{}
		for _, r := range t.IDRows() {
			h := intern.HashAt(r, xpos)
			staged[h] = addToBucket(staged[h], r, vc)
		}
		for h, b := range staged {
			vc.groups = vc.groups.Set(h, b)
		}
		vx.cons[c.Key()] = vc
	}
	return vx, nil
}

// addToBucket registers one base row into a PRIVATE (unpublished) bucket,
// mutating it in place. Only build-time and already-cloned buckets may be
// passed here.
func addToBucket(b []vgroup, r []uint32, vc *vcon) []vgroup {
	for i := range b {
		if projEq(b[i].x, r, vc.xpos) {
			g := &b[i]
			for k, p := range g.rows {
				if projEq(p, r, vc.xypos) {
					g.counts[k]++
					return b
				}
			}
			g.rows = append(g.rows, intern.Project(r, vc.xypos))
			g.counts = append(g.counts, 1)
			return b
		}
	}
	return append(b, vgroup{
		x:      intern.Project(r, vc.xpos),
		rows:   [][]uint32{intern.Project(r, vc.xypos)},
		counts: []int{1},
	})
}

// Apply folds a physically applied batch (deletes, then inserts — the
// database's application order) into a NEW index version and returns it.
// The receiver is left exactly as it was: snapshots pinned to it keep
// serving the pre-batch state. Per-op cost is bounded by the constraints'
// N plus the trie depth — independent of |D|.
func (vx *VIndex) Apply(a *Applied) (*VIndex, error) {
	out := &VIndex{access: vx.access, dict: vx.dict, cons: make(map[string]*vcon, len(vx.cons))}
	for k, vc := range vx.cons {
		out.cons[k] = vc
	}
	byRel := make(map[string][]*vcon)
	for _, vc := range vx.cons {
		byRel[vc.c.Rel] = append(byRel[vc.c.Rel], vc)
	}
	// cloned tracks per-constraint buckets already privatized during THIS
	// Apply, so consecutive ops on one group pay the copy once.
	cloned := make(map[*vcon]map[uint64][]vgroup)
	bucketFor := func(vc *vcon, h uint64) []vgroup {
		m := cloned[vc]
		if m == nil {
			m = make(map[uint64][]vgroup)
			cloned[vc] = m
		}
		if b, ok := m[h]; ok {
			return b
		}
		shared, _ := vc.groups.Get(h)
		b := make([]vgroup, len(shared))
		for i, g := range shared {
			b[i] = vgroup{
				x:      g.x,
				rows:   append([][]uint32(nil), g.rows...),
				counts: append([]int(nil), g.counts...),
			}
		}
		m[h] = b
		return b
	}
	store := func(vc *vcon, h uint64, b []vgroup) {
		cloned[vc][h] = b
	}

	for _, op := range a.Deleted {
		for _, vc := range byRel[op.Rel] {
			h := intern.HashAt(op.IDs, vc.xpos)
			b, err := removeFromBucket(bucketFor(vc, h), op.IDs, vc)
			if err != nil {
				return nil, err
			}
			store(vc, h, b)
		}
	}
	for _, op := range a.Inserted {
		for _, vc := range byRel[op.Rel] {
			h := intern.HashAt(op.IDs, vc.xpos)
			store(vc, h, addToBucket(bucketFor(vc, h), op.IDs, vc))
		}
	}

	// Install the privatized buckets into fresh trie versions, one path
	// copy per touched hash.
	for vc, buckets := range cloned {
		nvc := &vcon{c: vc.c, xpos: vc.xpos, xypos: vc.xypos, xyAttrs: vc.xyAttrs, groups: vc.groups}
		for h, b := range buckets {
			if len(b) == 0 {
				nvc.groups = nvc.groups.Delete(h)
			} else {
				nvc.groups = nvc.groups.Set(h, b)
			}
		}
		out.cons[vc.c.Key()] = nvc
	}
	return out, nil
}

// removeFromBucket drops one base row's derivation from a privatized
// bucket, compacting empty groups, and returns the (possibly shrunk)
// bucket.
func removeFromBucket(b []vgroup, r []uint32, vc *vcon) ([]vgroup, error) {
	for i := range b {
		if !projEq(b[i].x, r, vc.xpos) {
			continue
		}
		g := &b[i]
		for k, p := range g.rows {
			if !projEq(p, r, vc.xypos) {
				continue
			}
			g.counts[k]--
			if g.counts[k] == 0 {
				last := len(g.rows) - 1
				g.rows[k] = g.rows[last]
				g.counts[k] = g.counts[last]
				g.rows = g.rows[:last]
				g.counts = g.counts[:last]
				if last == 0 {
					b[i] = b[len(b)-1]
					b = b[:len(b)-1]
				}
			}
			return b, nil
		}
		break
	}
	return nil, fmt.Errorf("instance: versioned index %s out of sync: deleted row not indexed", vc.c)
}

// Compact returns a version identical in content whose slack buckets are
// repacked to exact capacity, plus the number of buckets repacked. Apply
// privatizes touched buckets with exact-size clones, so most of the index
// is self-compacting — the slack Compact reclaims is the append headroom
// addToBucket's grows leave behind (bucket slices and group rows/counts
// whose capacity outran their length on insert-heavy hashes).
//
// The receiver — and every older version snapshots still pin — is left
// untouched; untouched trie paths are shared with the result. This walk
// is O(index), so callers run it on a coarse cadence (see the facade's
// vindexCompactEvery), not per batch.
func (vx *VIndex) Compact() (*VIndex, int) {
	out := &VIndex{access: vx.access, dict: vx.dict, cons: make(map[string]*vcon, len(vx.cons))}
	repacked := 0
	for k, vc := range vx.cons {
		type repack struct {
			h uint64
			b []vgroup
		}
		var todo []repack
		vc.groups.Range(func(h uint64, b []vgroup) bool {
			slack := cap(b) > len(b)
			for i := range b {
				if !slack && (cap(b[i].rows) > len(b[i].rows) || cap(b[i].counts) > len(b[i].counts)) {
					slack = true
				}
			}
			if !slack {
				return true
			}
			nb := make([]vgroup, len(b))
			for i, g := range b {
				rows := make([][]uint32, len(g.rows))
				copy(rows, g.rows)
				counts := make([]int, len(g.counts))
				copy(counts, g.counts)
				nb[i] = vgroup{x: g.x, rows: rows, counts: counts}
			}
			todo = append(todo, repack{h, nb})
			return true
		})
		if len(todo) == 0 {
			out.cons[k] = vc // fully compact already: share the version
			continue
		}
		nvc := &vcon{c: vc.c, xpos: vc.xpos, xypos: vc.xypos, xyAttrs: vc.xyAttrs, groups: vc.groups}
		for _, r := range todo {
			nvc.groups = nvc.groups.Set(r.h, r.b)
		}
		out.cons[k] = nvc
		repacked += len(todo)
	}
	return out, repacked
}

// Dict returns the dictionary rows are interned against, making VIndex a
// plan.Source (an accounting-free one; serving layers wrap it).
func (vx *VIndex) Dict() *intern.Dict { return vx.dict }

// FetchAttrs returns the attribute names (ordered) of the tuples a Fetch
// over constraint c yields: the sorted union X ∪ Y.
func (vx *VIndex) FetchAttrs(c *access.Constraint) []string {
	vc, ok := vx.cons[c.Key()]
	if !ok {
		return nil
	}
	return vc.xyAttrs
}

// FetchIDs performs fetch(X = xval, R, Y) against this version: the
// distinct XY-projections of rows whose X-attributes equal xval, as of
// this epoch. The returned rows are immutable and stay valid forever (no
// later Apply invalidates them). No fetch accounting happens here.
func (vx *VIndex) FetchIDs(c *access.Constraint, xval []uint32) ([][]uint32, error) {
	vc, ok := vx.cons[c.Key()]
	if !ok {
		return nil, fmt.Errorf("instance: no index for constraint %s", c)
	}
	if len(xval) != len(c.X) {
		return nil, fmt.Errorf("instance: fetch on %s expects %d input values, got %d", c, len(c.X), len(xval))
	}
	b, _ := vc.groups.Get(intern.Hash(xval))
	for i := range b {
		if intern.RowsEq(b[i].x, xval) {
			return b[i].rows, nil
		}
	}
	return nil, nil
}

// Fetch is FetchIDs over string values, decoding the result — the
// convenience form mirroring Indexed.Fetch (again without accounting).
func (vx *VIndex) Fetch(c *access.Constraint, xval Tuple) ([]Tuple, error) {
	if len(xval) != len(c.X) {
		return nil, fmt.Errorf("instance: fetch on %s expects %d input values, got %d", c, len(c.X), len(xval))
	}
	if _, ok := vx.cons[c.Key()]; !ok {
		return nil, fmt.Errorf("instance: no index for constraint %s", c)
	}
	key := make([]uint32, len(xval))
	for i, v := range xval {
		id, ok := vx.dict.Lookup(v)
		if !ok {
			return nil, nil // value never occurs in D: no row can match
		}
		key[i] = id
	}
	idRows, err := vx.FetchIDs(c, key)
	if err != nil {
		return nil, err
	}
	rows := make([]Tuple, len(idRows))
	for i, r := range idRows {
		rows[i] = Tuple(vx.dict.Decode(r))
	}
	return rows, nil
}
