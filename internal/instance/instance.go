// Package instance implements in-memory relational instances, satisfaction
// checking for access schemas, and the indices that realize the O(N) fetch
// functions of access constraints (Section 2).
//
// Values are strings at the API boundary; a tuple is a []string aligned
// with the relation's attribute order. Internally every database carries an
// intern.Dict mapping values to dense uint32 IDs, and each table keeps an
// ID-encoded shadow of its rows (built lazily, extended incrementally on
// append) that the evaluation engines operate on. Indexed wraps a Database
// with one hash index per access constraint and accounts for every tuple
// fetched, which is how the benchmark harness measures |Dξ|.
package instance

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/access"
	"repro/internal/intern"
	"repro/internal/schema"
)

// Tuple is a row of a relation instance, aligned with the relation schema's
// attribute order.
type Tuple []string

// Key renders the tuple as a canonical string for hashing/deduplication.
func (t Tuple) Key() string { return strings.Join(t, "\x1f") }

// Clone returns a copy of the tuple.
func (t Tuple) Clone() Tuple { return append(Tuple(nil), t...) }

// Project returns the sub-tuple at the given positions.
func (t Tuple) Project(pos []int) Tuple {
	out := make(Tuple, len(pos))
	for i, p := range pos {
		out[i] = t[p]
	}
	return out
}

// Table is the instance of one relation schema. Tuples is the
// string-valued storage; treat it as append-only from the outside (mutate
// through Insert/DeleteAll/ApplyDelta so the ID-encoded shadow stays
// consistent — plain appends are also picked up lazily by IDRows).
type Table struct {
	Rel    *schema.Relation
	Tuples []Tuple

	mu     sync.Mutex
	dict   *intern.Dict
	idRows [][]uint32

	// pos maps an ID-encoded row to the positions of its occurrences in
	// Tuples/idRows (a multiset can hold several). Built lazily on the
	// first delta delete, then maintained; posN is the watermark of rows
	// already indexed. Tuple order is NOT stable once delta deletes happen:
	// deleteOneLocked swap-deletes.
	pos  *intern.Grouper[[]int]
	posN int
}

// NewTable creates an empty table for the relation schema with its own
// private dictionary; tables created through NewDatabase share the
// database's dictionary instead.
func NewTable(rel *schema.Relation) *Table {
	return &Table{Rel: rel, dict: intern.NewDict()}
}

// Insert appends a tuple after checking its arity.
func (t *Table) Insert(row ...string) error {
	if len(row) != t.Rel.Arity() {
		return fmt.Errorf("instance: %s expects %d values, got %d", t.Rel.Name, t.Rel.Arity(), len(row))
	}
	t.Tuples = append(t.Tuples, Tuple(row).Clone())
	return nil
}

// MustInsert inserts and panics on arity mismatch; convenient in generators
// and tests where the arity is static.
func (t *Table) MustInsert(row ...string) {
	if err := t.Insert(row...); err != nil {
		panic(err)
	}
}

// DeleteAll removes every copy of the given tuple, returning how many rows
// were removed. It keeps the ID-encoded shadow consistent; use it instead
// of compacting Tuples in place.
func (t *Table) DeleteAll(row ...string) int {
	key := Tuple(row).Key()
	w := 0
	for _, tu := range t.Tuples {
		if tu.Key() != key {
			t.Tuples[w] = tu
			w++
		}
	}
	removed := len(t.Tuples) - w
	if removed > 0 {
		t.Tuples = t.Tuples[:w]
		t.mu.Lock()
		t.idRows = nil // shrunk: re-encode (and re-index positions) lazily
		t.pos = nil
		t.posN = 0
		t.mu.Unlock()
	}
	return removed
}

// Len returns the number of tuples.
func (t *Table) Len() int { return len(t.Tuples) }

// IDRows returns the ID-encoded rows of the table, aligned with Tuples.
// The encoding is built lazily and extended incrementally when rows were
// appended since the last call. The returned slice and its rows must not
// be mutated. Safe for concurrent use as long as no concurrent writes to
// the table are in flight.
func (t *Table) IDRows() [][]uint32 {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.encodeLocked()
	return t.idRows
}

func (t *Table) encodeLocked() {
	if t.dict == nil {
		t.dict = intern.NewDict()
	}
	if len(t.idRows) > len(t.Tuples) {
		t.idRows = nil // shrunk behind our back: re-encode from scratch
		t.pos = nil
		t.posN = 0
	}
	for i := len(t.idRows); i < len(t.Tuples); i++ {
		t.idRows = append(t.idRows, t.dict.Encode(t.Tuples[i]))
	}
}

// posLocked builds/extends the row-position index up to the current table
// length. Requires encodeLocked to have run.
func (t *Table) posLocked() *intern.Grouper[[]int] {
	if t.pos == nil {
		idpos := make([]int, t.Rel.Arity())
		for i := range idpos {
			idpos[i] = i
		}
		t.pos = intern.NewGrouper[[]int](idpos)
		t.posN = 0
	}
	for ; t.posN < len(t.idRows); t.posN++ {
		occ := t.pos.At(t.idRows[t.posN])
		*occ = append(*occ, t.posN)
	}
	return t.pos
}

// insertTracked appends a row and extends the ID shadow (and, when built,
// the position index) in lockstep, returning the ID-encoded row.
func (t *Table) insertTracked(row Tuple) []uint32 {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.encodeLocked()
	t.Tuples = append(t.Tuples, row.Clone())
	ids := t.dict.Encode(row)
	t.idRows = append(t.idRows, ids)
	if t.pos != nil {
		t.posLocked()
	}
	return ids
}

// deleteOne removes one occurrence of row (swap-delete: the last tuple
// takes its place), returning the ID-encoded row and whether an occurrence
// existed. Cost is O(1) amortized, independent of the table size.
func (t *Table) deleteOne(row Tuple) ([]uint32, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.encodeLocked()
	pos := t.posLocked()
	ids := make([]uint32, len(row))
	for i, v := range row {
		id, ok := t.dict.Lookup(v)
		if !ok {
			return nil, false // value never interned: row cannot be present
		}
		ids[i] = id
	}
	occ := pos.At(ids)
	if len(*occ) == 0 {
		pos.Remove(ids) // don't accumulate empty groups for absent rows
		return nil, false
	}
	i := (*occ)[len(*occ)-1]
	*occ = (*occ)[:len(*occ)-1]
	if len(*occ) == 0 {
		pos.Remove(ids) // last occurrence gone: memory tracks live rows
	}
	last := len(t.Tuples) - 1
	if i != last {
		moved := t.idRows[last]
		t.Tuples[i] = t.Tuples[last]
		t.idRows[i] = moved
		mocc := pos.At(moved)
		for k := range *mocc {
			if (*mocc)[k] == last {
				(*mocc)[k] = i
				break
			}
		}
	}
	t.Tuples[last] = nil
	t.idRows[last] = nil
	t.Tuples = t.Tuples[:last]
	t.idRows = t.idRows[:last]
	t.posN = last
	return ids, true
}

// Count returns the number of occurrences of row in the table; a row of
// the wrong arity occurs zero times.
func (t *Table) Count(row ...string) int {
	if len(row) != t.Rel.Arity() {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.encodeLocked()
	pos := t.posLocked()
	ids := make([]uint32, len(row))
	for i, v := range row {
		id, ok := t.dict.Lookup(v)
		if !ok {
			return 0
		}
		ids[i] = id
	}
	n := len(*pos.At(ids))
	if n == 0 {
		pos.Remove(ids) // At created an empty group for an absent row
	}
	return n
}

// Database is an instance of a database schema. Dict is the value
// dictionary shared by all its tables.
type Database struct {
	Schema *schema.Schema
	Tables map[string]*Table
	Dict   *intern.Dict
}

// NewDatabase creates an empty instance of the schema with one (empty)
// table per relation, all sharing one dictionary.
func NewDatabase(s *schema.Schema) *Database {
	return NewDatabaseWith(s, intern.NewDict())
}

// NewDatabaseWith creates an empty instance whose tables intern through an
// existing dictionary. Several instances sharing one dictionary see
// identical IDs for identical values — the property the sharded engine
// needs so rows routed to different partitions stay directly comparable.
func NewDatabaseWith(s *schema.Schema, d *intern.Dict) *Database {
	db := &Database{Schema: s, Tables: make(map[string]*Table, len(s.Relations)), Dict: d}
	for _, r := range s.Relations {
		t := NewTable(r)
		t.dict = db.Dict
		db.Tables[r.Name] = t
	}
	return db
}

// Table returns the table for the named relation, or nil if absent.
func (db *Database) Table(rel string) *Table { return db.Tables[rel] }

// Insert inserts a tuple into the named relation.
func (db *Database) Insert(rel string, row ...string) error {
	t := db.Table(rel)
	if t == nil {
		return fmt.Errorf("instance: no relation %s", rel)
	}
	return t.Insert(row...)
}

// MustInsert inserts and panics on error.
func (db *Database) MustInsert(rel string, row ...string) {
	if err := db.Insert(rel, row...); err != nil {
		panic(err)
	}
}

// Op names one tuple-level mutation of a batch delta: insert or delete one
// occurrence of Row in relation Rel (which side it lands on is decided by
// the ApplyDelta argument it is passed in).
type Op struct {
	Rel string
	Row Tuple
}

// AppliedOp is one physically applied mutation, with the row ID-encoded
// against the database dictionary — the currency of the incremental
// maintenance layers (Indexed.Apply, eval's delta engine).
type AppliedOp struct {
	Rel string
	IDs []uint32
}

// Applied reports what a batch delta physically changed, in application
// order: all deletes first, then all inserts.
type Applied struct {
	Deleted  []AppliedOp
	Inserted []AppliedOp
}

// ApplyDelta applies a batch of mutations: deletes first, then inserts.
// Each delete removes ONE occurrence of its row (multiset semantics) and is
// a silent no-op when no occurrence exists; each insert appends one
// occurrence. The ID-encoded shadows (and position indexes) of the touched
// tables are maintained in lockstep, so per-op cost is independent of the
// database size. The whole batch is validated (relations exist, arities
// match) before anything is mutated.
//
// The returned Applied lists what actually changed, for feeding the
// incremental index and view maintenance (Indexed.Apply, eval.DeltaEngine).
// Not safe for concurrent use with readers; callers serialize (see the
// facade's Live handle).
func (db *Database) ApplyDelta(inserts, deletes []Op) (*Applied, error) {
	validate := func(ops []Op, kind string) error {
		for _, op := range ops {
			t := db.Table(op.Rel)
			if t == nil {
				return fmt.Errorf("instance: %s into unknown relation %s", kind, op.Rel)
			}
			if len(op.Row) != t.Rel.Arity() {
				return fmt.Errorf("instance: %s %s expects %d values, got %d", kind, op.Rel, t.Rel.Arity(), len(op.Row))
			}
		}
		return nil
	}
	if err := validate(deletes, "delete"); err != nil {
		return nil, err
	}
	if err := validate(inserts, "insert"); err != nil {
		return nil, err
	}
	a := &Applied{}
	for _, op := range deletes {
		if ids, ok := db.Table(op.Rel).deleteOne(op.Row); ok {
			a.Deleted = append(a.Deleted, AppliedOp{Rel: op.Rel, IDs: ids})
		}
	}
	for _, op := range inserts {
		ids := db.Table(op.Rel).insertTracked(op.Row)
		a.Inserted = append(a.Inserted, AppliedOp{Rel: op.Rel, IDs: ids})
	}
	return a, nil
}

// RestoreRows bulk-loads ID-encoded rows into the named (empty) relation,
// building the string tuples and the ID shadow in lockstep — the recovery
// path for checkpointed restarts, which skips per-value re-interning: every
// ID must already be present in the database's dictionary. Row order is
// preserved, so a restored table is bit-identical (modulo lazy indexes) to
// the table the checkpoint serialized.
func (db *Database) RestoreRows(rel string, idRows [][]uint32) error {
	t := db.Table(rel)
	if t == nil {
		return fmt.Errorf("instance: restore into unknown relation %s", rel)
	}
	if len(t.Tuples) != 0 {
		return fmt.Errorf("instance: restore into non-empty relation %s", rel)
	}
	arity := t.Rel.Arity()
	n := db.Dict.Len()
	for _, r := range idRows {
		if len(r) != arity {
			return fmt.Errorf("instance: restore %s expects arity %d, got %d", rel, arity, len(r))
		}
		for _, id := range r {
			if int(id) >= n {
				return fmt.Errorf("instance: restore %s references ID %d beyond dictionary length %d", rel, id, n)
			}
		}
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.Tuples = make([]Tuple, len(idRows))
	t.idRows = make([][]uint32, len(idRows))
	for i, r := range idRows {
		row := append([]uint32(nil), r...)
		t.idRows[i] = row
		t.Tuples[i] = Tuple(db.Dict.Decode(row))
	}
	t.pos, t.posN = nil, 0
	return nil
}

// Size returns |D|: the total number of tuples across all relations.
func (db *Database) Size() int {
	n := 0
	for _, t := range db.Tables {
		n += len(t.Tuples)
	}
	return n
}

// Satisfies reports whether the instance satisfies the access constraint's
// cardinality part: for every X-value, at most N distinct Y-projections.
func (db *Database) Satisfies(c *access.Constraint) (bool, error) {
	t := db.Table(c.Rel)
	if t == nil {
		return false, fmt.Errorf("instance: no relation %s for constraint %s", c.Rel, c)
	}
	xpos, err := t.Rel.Positions(c.X)
	if err != nil {
		return false, err
	}
	ypos, err := t.Rel.Positions(c.Y)
	if err != nil {
		return false, err
	}
	// Group ID rows by X-value; count distinct Y-projections per group.
	groups := intern.NewGrouper[intern.Set](xpos)
	for _, r := range t.IDRows() {
		ys := groups.At(r)
		if _, fresh := ys.AddProj(r, ypos); fresh && ys.Len() > c.N {
			return false, nil
		}
	}
	return true, nil
}

// SatisfiesAll reports whether D |= A for the whole access schema.
func (db *Database) SatisfiesAll(a *access.Schema) (bool, error) {
	for _, c := range a.Constraints {
		ok, err := db.Satisfies(c)
		if err != nil || !ok {
			return false, err
		}
	}
	return true, nil
}

// Violations returns, for diagnosis, the constraints the instance violates.
func (db *Database) Violations(a *access.Schema) []*access.Constraint {
	var out []*access.Constraint
	for _, c := range a.Constraints {
		ok, err := db.Satisfies(c)
		if err != nil || !ok {
			out = append(out, c)
		}
	}
	return out
}

// ActiveDomain returns the sorted set of all values occurring in the
// instance; used by the FO evaluation engine and by property tests.
func (db *Database) ActiveDomain() []string {
	seen := make(map[string]struct{})
	for _, t := range db.Tables {
		for _, tu := range t.Tuples {
			for _, v := range tu {
				seen[v] = struct{}{}
			}
		}
	}
	out := make([]string, 0, len(seen))
	for v := range seen {
		out = append(out, v)
	}
	sort.Strings(out)
	return out
}

// Clone deep-copies the instance (with a fresh dictionary).
func (db *Database) Clone() *Database {
	out := NewDatabase(db.Schema)
	for name, t := range db.Tables {
		nt := out.Tables[name]
		nt.Tuples = make([]Tuple, len(t.Tuples))
		for i, tu := range t.Tuples {
			nt.Tuples[i] = tu.Clone()
		}
	}
	return out
}
