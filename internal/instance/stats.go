package instance

import "repro/internal/intern"

// RelStats are per-relation table statistics over the interned rows of one
// database: row counts and per-column distinct-ID counts. They feed the
// plan cost model (package plan) with the selectivity inputs the access
// constraints alone cannot provide — how wide a fetch group actually is on
// this D, and how selective an equality over a column is. A RelStats is
// immutable once collected; copying the struct shares the underlying
// maps, which is safe because nothing mutates them after collection.
type RelStats struct {
	Rows     map[string]int   // relation -> |R|
	Distinct map[string][]int // relation -> per-attribute-position distinct count
}

// CollectStats scans every table's ID-encoded shadow once and returns the
// statistics. Cost is O(|D|); callers refresh on a churn threshold, not per
// delta (see the facade's Live handle).
func CollectStats(db *Database) *RelStats {
	st := &RelStats{
		Rows:     make(map[string]int, len(db.Tables)),
		Distinct: make(map[string][]int, len(db.Tables)),
	}
	for name, t := range db.Tables {
		rows := t.IDRows()
		st.Rows[name] = len(rows)
		st.Distinct[name] = intern.DistinctCols(rows)
	}
	return st
}
