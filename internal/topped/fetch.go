package topped

import (
	"fmt"

	"repro/internal/access"
	"repro/internal/cq"
	"repro/internal/fo"
	"repro/internal/plan"
)

// pushRename renames output attributes without spending an operation when
// the node carries its own naming (views, fetches, constants); otherwise it
// wraps a ρ node. This is pure bookkeeping: the paper's plans are
// positional, so attribute names are free.
func pushRename(n plan.Node, pairs []plan.RenamePair) plan.Node {
	ren := func(a string) string {
		for _, p := range pairs {
			if p.From == a {
				return p.To
			}
		}
		return a
	}
	switch x := n.(type) {
	case *plan.View:
		cols := make([]string, len(x.Cols))
		for i, a := range x.Cols {
			cols[i] = ren(a)
		}
		return &plan.View{Name: x.Name, Cols: cols}
	case *plan.Const:
		return &plan.Const{Attr: ren(x.Attr), Val: x.Val}
	case *plan.Fetch:
		out := x.OutNames()
		as := make([]string, len(out))
		for i, a := range out {
			as[i] = ren(a)
		}
		return &plan.Fetch{Child: x.Child, C: x.C, Bind: x.Bind, As: as}
	case *plan.Rename:
		np := append([]plan.RenamePair(nil), x.Pairs...)
		// Compose: existing targets that are renamed again.
		for i, p := range np {
			np[i] = plan.RenamePair{From: p.From, To: ren(p.To)}
		}
		// Attributes untouched by the existing ρ may still need renaming.
		childAttrs := x.Child.Attrs()
		for _, a := range childAttrs {
			touched := false
			for _, p := range x.Pairs {
				if p.From == a {
					touched = true
					break
				}
			}
			if !touched && ren(a) != a {
				np = append(np, plan.RenamePair{From: a, To: ren(a)})
			}
		}
		return &plan.Rename{Child: x.Child, Pairs: np}
	default:
		return &plan.Rename{Child: n, Pairs: pairs}
	}
}

// genAtomFetch realizes cases (4a), (7a) and (7b): a base-relation atom
// (with optional projected-out variables projVars) answered by a fetch over
// some access constraint, with X-positions fed by constants and/or by the
// context's output. It returns the plan for Qs ∧ (∃ projVars. atom).
func (c *Checker) genAtomFetch(qs *ctx, at *fo.Atom, projVars []string, needed map[string]bool) (plan.Node, error) {
	rel := c.S.Relation(at.Rel)
	if rel == nil {
		return nil, fmt.Errorf("topped: unknown relation %s", at.Rel)
	}
	if len(at.Args) != rel.Arity() {
		return nil, fmt.Errorf("topped: atom %s has wrong arity for %s", at, rel)
	}
	proj := toSet(projVars)
	var firstErr error
	// Prefer constraints whose X needs no context (all constants), then
	// those usable from the context.
	for _, cn := range c.A.OnRelation(at.Rel) {
		p, err := c.tryConstraint(qs, at, rel.Attrs, cn, proj, needed)
		if err == nil {
			return p, nil
		}
		if firstErr == nil {
			firstErr = err
		}
	}
	if firstErr == nil {
		firstErr = fmt.Errorf("topped: no access constraint on %s covers atom %s", at.Rel, at)
	}
	return nil, firstErr
}

func (c *Checker) tryConstraint(qs *ctx, at *fo.Atom, relAttrs []string, cn *access.Constraint, proj map[string]bool, needed map[string]bool) (plan.Node, error) {
	xset := toSet(cn.X)
	xyList := cn.XY()
	xyset := toSet(xyList)
	qsAttrs := qs.attrs()

	// Classify atom positions against the constraint.
	var xIn []xInput
	termAt := map[string]cq.Term{} // relation attr -> term (XY positions)
	for i, attrN := range relAttrs {
		t := at.Args[i]
		switch {
		case xset[attrN]:
			if !t.Const {
				if !inAttrs(qsAttrs, t.Val) {
					return nil, fmt.Errorf("topped: X attribute %s of %s needs variable %s not bound by the context", attrN, cn, t.Val)
				}
				// Repeated variable across X positions is unsupported.
				for _, prev := range xIn {
					if !prev.t.Const && prev.t.Val == t.Val {
						return nil, fmt.Errorf("topped: variable %s repeated across X positions of %s", t.Val, cn)
					}
				}
			}
			xIn = append(xIn, xInput{attrN, t})
			termAt[attrN] = t
		case xyset[attrN]:
			termAt[attrN] = t
		default:
			// Outside X ∪ Y: the position must be purely local — a variable
			// that is projected out or otherwise unneeded, not repeated.
			if t.Const {
				return nil, fmt.Errorf("topped: constant at attribute %s outside X∪Y of %s", attrN, cn)
			}
			if needed[t.Val] || inAttrs(qsAttrs, t.Val) {
				return nil, fmt.Errorf("topped: variable %s at attribute %s is needed but outside X∪Y of %s", t.Val, attrN, cn)
			}
			occurrences := 0
			for _, u := range at.Args {
				if !u.Const && u.Val == t.Val {
					occurrences++
				}
			}
			if occurrences > 1 {
				return nil, fmt.Errorf("topped: repeated variable %s reaches outside X∪Y of %s", t.Val, cn)
			}
			_ = proj // the variable need not be explicitly quantified; it is simply dropped
		}
	}

	// Collect the variable inputs.
	var xVars []string
	for _, xi := range xIn {
		if !xi.t.Const {
			xVars = append(xVars, xi.t.Val)
		}
	}

	// The fetch input is π_{xVars}(Qs); it must have bounded output (the
	// paper's "Qs ∧ Q1 has bounded output" condition, applied to the
	// projection actually fed to the fetch).
	if len(xVars) > 0 {
		if ok, _ := c.boundedOutput(qs.exprs, xVars); !ok {
			return nil, fmt.Errorf("topped: fetch input over %v from context is not output-bounded", xVars)
		}
	}
	child, constAttr, err := c.buildFetchChild(qs, xVars, xIn)
	if err != nil {
		return nil, err
	}
	if child == nil && len(cn.X) > 0 {
		return nil, fmt.Errorf("topped: fetch over %s needs inputs", cn)
	}
	// Binding per X attribute, in cn.X order (xIn follows relation
	// attribute order; map via attribute name).
	termOfX := map[string]cq.Term{}
	for _, xi := range xIn {
		termOfX[xi.attr] = xi.t
	}
	bind := make([]string, 0, len(cn.X))
	for _, xa := range cn.X {
		t := termOfX[xa]
		if t.Const {
			bind = append(bind, constAttr[xa])
		} else {
			bind = append(bind, t.Val)
		}
	}

	// Output naming and post-selection conditions.
	as := make([]string, len(xyList))
	var conds []plan.CondItem
	ctxOverlap := false            // a fetched Y value must agree with a context binding
	seenVar := map[string]string{} // variable -> output attr already carrying it
	for _, xv := range xVars {
		seenVar[xv] = xv
	}
	for i, attrN := range xyList {
		t := termAt[attrN]
		switch {
		case xset[attrN] && !t.Const:
			as[i] = t.Val // carries the input value through
		case xset[attrN] && t.Const:
			as[i] = c.freshAttr() // constant input; value is known
		case t.Const:
			as[i] = c.freshAttr()
			conds = append(conds, plan.CondItem{L: as[i], RConst: true, R: t.Val})
		default:
			if prev, dup := seenVar[t.Val]; dup {
				as[i] = c.freshAttr()
				conds = append(conds, plan.CondItem{L: as[i], R: prev})
			} else {
				as[i] = t.Val
				seenVar[t.Val] = t.Val
				if inAttrs(qsAttrs, t.Val) {
					// The variable is bound by the context but did not feed
					// the fetch: the fetched values must be filtered against
					// the context via a join-back.
					ctxOverlap = true
				}
			}
		}
	}
	var p plan.Node = &plan.Fetch{Child: child, C: cn, Bind: bindOrNil(bind, cn.X), As: as}
	if len(conds) > 0 {
		p = &plan.Select{Child: p, Cond: conds}
	}

	// Join the context back in when it was not embedded through the fetch
	// input (it may act as a Boolean guard), when it carries needed
	// attributes that did not flow through the fetch, or when a fetched Y
	// value coincides with a context-bound variable (the fetch alone would
	// not enforce the equality).
	if qs.p != nil {
		lost := ctxOverlap || len(xVars) == 0
		pa := p.Attrs()
		for _, a := range qsAttrs {
			if needed[a] && !inAttrs(pa, a) {
				lost = true
				break
			}
		}
		if lost {
			return c.join(qs.p, p)
		}
	}
	return p, nil
}

// xInput records that an X attribute of the driving constraint is fed by
// the given term (a constant or a context-bound variable).
type xInput struct {
	attr string
	t    cq.Term
}

// buildFetchChild constructs the fetch child: the projection of the
// context onto the variable inputs, crossed with one constant node per
// constant input. It returns the child and the synthetic attribute name
// chosen for each constant X attribute.
func (c *Checker) buildFetchChild(qs *ctx, xVars []string, xIn []xInput) (plan.Node, map[string]string, error) {
	var child plan.Node
	if len(xVars) > 0 {
		pr, err := c.projectTo(qs.p, sortedStrings(xVars))
		if err != nil {
			return nil, nil, err
		}
		child = pr
	}
	constAttr := map[string]string{}
	for _, xi := range xIn {
		if !xi.t.Const {
			continue
		}
		name := c.freshAttr()
		constAttr[xi.attr] = name
		cst := &plan.Const{Attr: name, Val: xi.t.Val}
		if child == nil {
			child = cst
		} else {
			child = &plan.Product{L: child, R: cst}
		}
	}
	return child, constAttr, nil
}

// bindOrNil avoids storing an explicit binding when it coincides with the
// constraint's own attribute names.
func bindOrNil(bind, x []string) []string {
	if len(bind) != len(x) {
		return bind
	}
	for i := range bind {
		if bind[i] != x[i] {
			return bind
		}
	}
	return nil
}

func sortedStrings(xs []string) []string {
	out := append([]string(nil), xs...)
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j-1] > out[j]; j-- {
			out[j-1], out[j] = out[j], out[j-1]
		}
	}
	return out
}
