package topped_test

import (
	"testing"

	"repro/internal/access"
	"repro/internal/cq"
	"repro/internal/eval"
	"repro/internal/fo"
	"repro/internal/instance"
	"repro/internal/plan"
	"repro/internal/schema"
	"repro/internal/topped"
)

// Case (4b): two independently-bounded conjuncts joined (the paper's
// λ = 4 join arithmetic).
func TestConjunctionJoinCase(t *testing.T) {
	s := schema.New(
		schema.NewRelation("S", "C"),
		schema.NewRelation("R", "A", "B"),
	)
	a := access.NewSchema(
		access.NewConstraint("S", nil, []string{"C"}, 4),
		access.NewConstraint("R", []string{"A"}, []string{"B"}, 3),
	)
	c := topped.NewChecker(s, a, nil)
	// Q(x, y, z) = S(x) ∧ R(x, y) ∧ R(x, z): a shared-variable join.
	q := &fo.Query{Head: []string{"x", "y", "z"}, Body: &fo.And{
		L: &fo.And{
			L: fo.NewAtom("S", cq.Var("x")),
			R: fo.NewAtom("R", cq.Var("x"), cq.Var("y")),
		},
		R: fo.NewAtom("R", cq.Var("x"), cq.Var("z")),
	}}
	res := c.Check(q, 32)
	if !res.Topped {
		t.Fatalf("join of bounded conjuncts must be topped: %s", res.Reason)
	}
	// Execute against direct evaluation.
	db := instance.NewDatabase(s)
	db.MustInsert("S", "a")
	db.MustInsert("S", "b")
	db.MustInsert("R", "a", "1")
	db.MustInsert("R", "a", "2")
	db.MustInsert("R", "b", "3")
	db.MustInsert("R", "zz", "9") // not in S
	ix, err := instance.BuildIndexes(db, a)
	if err != nil {
		t.Fatal(err)
	}
	got, err := plan.Run(res.Plan, ix, nil)
	if err != nil {
		t.Fatal(err)
	}
	want, err := eval.FOOnDB(q, &eval.Source{DB: db})
	if err != nil {
		t.Fatal(err)
	}
	if !cq.RowsEqual(got, want) {
		t.Fatalf("plan %v, want %v\n%s", got, want, plan.Render(res.Plan))
	}
}

// The K-limit bounds context expansion (cases 4c/6b); with K = 0 the
// expansion is forbidden, which loses some queries — exactly the paper's
// trade-off (any fixed K keeps PTIME; larger K covers more syntax).
func TestKLimit(t *testing.T) {
	f := newEx53()
	c := topped.NewChecker(f.s, f.a, f.views)
	c.K = 1 // too small for the q4-shaped negated subquery
	if res := c.Check(f.q3, 13); res.Topped {
		t.Fatal("with K=1 the q3 derivation must fail (negated subquery too large)")
	}
	c2 := topped.NewChecker(f.s, f.a, f.views)
	if res := c2.Check(f.q3, 13); !res.Topped {
		t.Fatalf("with the default K the derivation succeeds: %s", res.Reason)
	}
}

// Repeated variables and constants in a fetched atom become selections.
func TestAtomWithRepeatsAndConstants(t *testing.T) {
	s := schema.New(schema.NewRelation("R", "A", "B", "C"))
	a := access.NewSchema(access.NewConstraint("R", []string{"A"}, []string{"B", "C"}, 5))
	c := topped.NewChecker(s, a, nil)
	// Q(y) = R("k", y, y): B = C filter on fetched tuples.
	q := &fo.Query{Head: []string{"y"}, Body: fo.Expr(
		fo.NewAtom("R", cq.Cst("k"), cq.Var("y"), cq.Var("y")))}
	res := c.Check(q, 16)
	if !res.Topped {
		t.Fatalf("must be topped: %s", res.Reason)
	}
	db := instance.NewDatabase(s)
	db.MustInsert("R", "k", "1", "1")
	db.MustInsert("R", "k", "1", "2")
	db.MustInsert("R", "k", "3", "3")
	db.MustInsert("R", "other", "4", "4")
	ix, err := instance.BuildIndexes(db, a)
	if err != nil {
		t.Fatal(err)
	}
	got, err := plan.Run(res.Plan, ix, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !cq.RowsEqual(got, [][]string{{"1"}, {"3"}}) {
		t.Fatalf("got %v\n%s", got, plan.Render(res.Plan))
	}
}

// A fetched Y-variable already bound by the context must be equated with
// the context binding (the join-back case).
func TestContextOverlapJoinBack(t *testing.T) {
	s := schema.New(
		schema.NewRelation("S", "C"),
		schema.NewRelation("R", "A", "B"),
	)
	a := access.NewSchema(
		access.NewConstraint("S", nil, []string{"C"}, 4),
		access.NewConstraint("R", []string{"A"}, []string{"B"}, 3),
	)
	c := topped.NewChecker(s, a, nil)
	// Q(y) = S(y) ∧ R("k", y): y is produced by S and must agree with the
	// fetched B values.
	q := &fo.Query{Head: []string{"y"}, Body: &fo.And{
		L: fo.NewAtom("S", cq.Var("y")),
		R: fo.NewAtom("R", cq.Cst("k"), cq.Var("y")),
	}}
	res := c.Check(q, 32)
	if !res.Topped {
		t.Fatalf("must be topped: %s", res.Reason)
	}
	db := instance.NewDatabase(s)
	db.MustInsert("S", "1")
	db.MustInsert("S", "2")
	db.MustInsert("R", "k", "2")
	db.MustInsert("R", "k", "3") // 3 ∉ S
	ix, err := instance.BuildIndexes(db, a)
	if err != nil {
		t.Fatal(err)
	}
	got, err := plan.Run(res.Plan, ix, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !cq.RowsEqual(got, [][]string{{"2"}}) {
		t.Fatalf("got %v (expected only the S∩fetch value)\n%s", got, plan.Render(res.Plan))
	}
}

// Queries over views with constants in the view call.
func TestViewCallWithConstant(t *testing.T) {
	s := schema.New(schema.NewRelation("R", "A", "B"))
	a := access.NewSchema()
	v := cq.NewCQ([]cq.Term{cq.Var("x"), cq.Var("y")},
		[]cq.Atom{cq.NewAtom("R", cq.Var("x"), cq.Var("y"))})
	views := map[string]*cq.UCQ{"V": cq.NewUCQ(v)}
	c := topped.NewChecker(s, a, views)
	// Q(y) = V("k", y): a constant selection over the cached view; no
	// fetch at all, so no constraints are needed.
	q := &fo.Query{Head: []string{"y"}, Body: fo.Expr(fo.NewAtom("V", cq.Cst("k"), cq.Var("y")))}
	res := c.Check(q, 8)
	if !res.Topped {
		t.Fatalf("view-only query must be topped: %s", res.Reason)
	}
	db := instance.NewDatabase(s)
	db.MustInsert("R", "k", "1")
	db.MustInsert("R", "z", "2")
	views2, err := eval.Materialize(views, db)
	if err != nil {
		t.Fatal(err)
	}
	ix, err := instance.BuildIndexes(db, a)
	if err != nil {
		t.Fatal(err)
	}
	got, err := plan.Run(res.Plan, ix, views2)
	if err != nil {
		t.Fatal(err)
	}
	if !cq.RowsEqual(got, [][]string{{"1"}}) {
		t.Fatalf("got %v\n%s", got, plan.Render(res.Plan))
	}
	if ix.FetchedTuples() != 0 {
		t.Fatal("view-only plans fetch nothing from D")
	}
}
