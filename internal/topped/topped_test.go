package topped_test

import (
	"math/rand"
	"strconv"
	"testing"

	"repro/internal/access"
	"repro/internal/cq"
	"repro/internal/eval"
	"repro/internal/fo"
	"repro/internal/instance"
	"repro/internal/plan"
	"repro/internal/schema"
	"repro/internal/topped"
	"repro/internal/workload"
)

// Example 5.3 fixture: R1 = {R(A,B), T(C,E)}, A2 = {R(A→B,N), T(C→E,N)},
// V3(x,y) = R(y,y) ∧ T(x,y).
type ex53 struct {
	s     *schema.Schema
	a     *access.Schema
	views map[string]*cq.UCQ
	q3    *fo.Query
	q4    fo.Expr
}

func newEx53() *ex53 {
	s := schema.New(
		schema.NewRelation("R", "A", "B"),
		schema.NewRelation("T", "C", "E"),
	)
	n := 3
	a := access.NewSchema(
		access.NewConstraint("R", []string{"A"}, []string{"B"}, n),
		access.NewConstraint("T", []string{"C"}, []string{"E"}, n),
	)
	v3 := cq.NewCQ([]cq.Term{cq.Var("x"), cq.Var("y")}, []cq.Atom{
		cq.NewAtom("R", cq.Var("y"), cq.Var("y")),
		cq.NewAtom("T", cq.Var("x"), cq.Var("y")),
	})
	v3.Name = "V3"
	views := map[string]*cq.UCQ{"V3": cq.NewUCQ(v3)}

	// q4(z) = ∃y ( (∃x (V3(x,y) ∧ x=1)) ∧ R(y,z) )
	q1 := &fo.And{
		L: fo.NewAtom("V3", cq.Var("x"), cq.Var("y")),
		R: fo.Eq(cq.Var("x"), cq.Cst("1")),
	}
	q2 := &fo.Exists{Vars: []string{"x"}, E: q1}
	qp2 := &fo.And{L: q2, R: fo.NewAtom("R", cq.Var("y"), cq.Var("z"))}
	q4 := &fo.Exists{Vars: []string{"y"}, E: qp2}
	// q3(z) = q4(z) ∧ ¬∃w R(z,w)
	qp4 := &fo.Exists{Vars: []string{"w"}, E: fo.NewAtom("R", cq.Var("z"), cq.Var("w"))}
	q3 := &fo.Query{Name: "q3", Head: []string{"z"}, Body: &fo.And{L: q4, R: &fo.Not{E: qp4}}}
	return &ex53{s: s, a: a, views: views, q3: q3, q4: q4}
}

func TestQ3ToppedBy13(t *testing.T) {
	f := newEx53()
	c := topped.NewChecker(f.s, f.a, f.views)
	res := c.Check(f.q3, 13)
	if !res.Topped {
		t.Fatalf("q3 must be topped by (R1,V3,A2,13) (Example 5.4): %s", res.Reason)
	}
	if res.Size != 13 {
		t.Fatalf("the Figure 3 plan has 13 nodes, generator produced %d:\n%s", res.Size, plan.Render(res.Plan))
	}
	if !plan.InLanguage(res.Plan, plan.LangFO) {
		t.Fatal("q3's plan is an FO plan")
	}
	if plan.InLanguage(res.Plan, plan.LangPosFO) {
		t.Fatal("q3's plan uses set difference and is not an ∃FO+ plan")
	}
	rep := plan.Conforms(res.Plan, f.s, f.a, f.views)
	if !rep.Conforms {
		t.Fatalf("q3's plan must conform to A2: %s", rep.Reason)
	}
}

func TestQ3NotToppedBy12(t *testing.T) {
	f := newEx53()
	c := topped.NewChecker(f.s, f.a, f.views)
	if res := c.Check(f.q3, 12); res.Topped {
		t.Fatal("q3 is not topped by (R1,V3,A2,12): the minimal plan has 13 nodes")
	}
}

func TestQ4ToppedBy5(t *testing.T) {
	f := newEx53()
	c := topped.NewChecker(f.s, f.a, f.views)
	q4 := &fo.Query{Name: "q4", Head: []string{"z"}, Body: f.q4}
	res := c.Check(q4, 5)
	if !res.Topped || res.Size != 5 {
		t.Fatalf("q4 has a 5-bounded plan (Example 5.3), got topped=%v size=%d (%s)", res.Topped, res.Size, res.Reason)
	}
}

// randomEx53Instance builds an instance of R1 satisfying A2.
func randomEx53Instance(f *ex53, seed int64, size int) *instance.Database {
	rng := rand.New(rand.NewSource(seed))
	db := instance.NewDatabase(f.s)
	dom := func(i int) string { return strconv.Itoa(i) }
	fanR := map[string]int{}
	fanT := map[string]int{}
	for i := 0; i < size; i++ {
		a, b := dom(rng.Intn(size/2+2)), dom(rng.Intn(size/2+2))
		if fanR[a] < 3 {
			db.MustInsert("R", a, b)
			fanR[a]++
		}
		c, e := dom(rng.Intn(size/2+2)), dom(rng.Intn(size/2+2))
		if c == "1" || rng.Intn(4) == 0 {
			c = "1" // make sure the x=1 selection has matches
		}
		if fanT[c] < 3 {
			db.MustInsert("T", c, e)
			fanT[c]++
		}
	}
	// Seed a few reflexive R tuples so V3 is non-empty.
	for i := 0; i < 5; i++ {
		v := dom(rng.Intn(size/2 + 2))
		if fanR[v] < 3 {
			db.MustInsert("R", v, v)
			fanR[v]++
		}
	}
	return db
}

func TestQ3PlanMatchesFOEvaluation(t *testing.T) {
	f := newEx53()
	c := topped.NewChecker(f.s, f.a, f.views)
	res := c.Check(f.q3, 13)
	if !res.Topped {
		t.Fatalf("not topped: %s", res.Reason)
	}
	for seed := int64(0); seed < 8; seed++ {
		db := randomEx53Instance(f, seed, 40)
		if ok, _ := db.SatisfiesAll(f.a); !ok {
			t.Fatalf("seed %d: instance violates A2", seed)
		}
		views, err := eval.Materialize(f.views, db)
		if err != nil {
			t.Fatal(err)
		}
		ix, err := instance.BuildIndexes(db, f.a)
		if err != nil {
			t.Fatal(err)
		}
		got, err := plan.Run(res.Plan, ix, views)
		if err != nil {
			t.Fatalf("seed %d: run: %v", seed, err)
		}
		// Reference: evaluate q3 directly with views expanded.
		ref := &fo.Query{Head: f.q3.Head, Body: fo.ExpandViews(f.q3.Body, f.views)}
		want, err := eval.FOOnDB(ref, &eval.Source{DB: db})
		if err != nil {
			t.Fatalf("seed %d: FO eval: %v", seed, err)
		}
		if !cq.RowsEqual(got, want) {
			eval.SortRows(got)
			eval.SortRows(want)
			t.Fatalf("seed %d: plan ≠ query: got %v want %v\n%s", seed, got, want, plan.Render(res.Plan))
		}
	}
}

func TestToppedQxiExample23(t *testing.T) {
	// Q_ξ(mid) = ∃ym (movie(mid,ym,"Universal","2014") ∧ V1(mid) ∧
	// rating(mid,"5")) — the rewriting of Example 2.3 — is topped by
	// (R0, V1, A0, 11) and the generator reproduces an 11-node plan
	// equivalent to Figure 1's ξ0.
	m := workload.NewMovies(25)
	c := topped.NewChecker(m.Schema, m.Access, m.Views())
	body := &fo.Exists{Vars: []string{"ym"}, E: &fo.And{
		L: &fo.And{
			L: fo.NewAtom("movie", cq.Var("mid"), cq.Var("ym"), cq.Cst("Universal"), cq.Cst("2014")),
			R: fo.NewAtom("V1", cq.Var("mid")),
		},
		R: fo.NewAtom("rating", cq.Var("mid"), cq.Cst("5")),
	}}
	qxi := &fo.Query{Name: "Qxi", Head: []string{"mid"}, Body: body}
	res := c.Check(qxi, 11)
	if !res.Topped {
		t.Fatalf("Q_ξ must be topped by (R0,V1,A0,11): %s", res.Reason)
	}
	if res.Size != 11 {
		t.Fatalf("expected the 11-node Figure 1 plan, got %d:\n%s", res.Size, plan.Render(res.Plan))
	}
	rep := plan.Conforms(res.Plan, m.Schema, m.Access, m.Views())
	if !rep.Conforms {
		t.Fatalf("generated plan must conform to A0: %s", rep.Reason)
	}
	if rep.FetchBound != int64(2*m.N0) {
		t.Fatalf("fetch bound %d, want 2·N0 = %d", rep.FetchBound, 2*m.N0)
	}
	// The generated plan computes Q0 on A0-instances.
	db := m.Generate(workload.MoviesParams{Persons: 300, Movies: 300, LikesPerPerson: 5, NASAShare: 8, Seed: 5})
	views, err := eval.Materialize(m.Views(), db)
	if err != nil {
		t.Fatal(err)
	}
	ix, err := instance.BuildIndexes(db, m.Access)
	if err != nil {
		t.Fatal(err)
	}
	got, err := plan.Run(res.Plan, ix, views)
	if err != nil {
		t.Fatal(err)
	}
	want, err := eval.CQOnDB(m.Q0, &eval.Source{DB: db})
	if err != nil {
		t.Fatal(err)
	}
	if !cq.RowsEqual(got, want) {
		t.Fatalf("generated plan disagrees with Q0: %d vs %d rows", len(got), len(want))
	}
	if ix.FetchedTuples() > 2*m.N0 {
		t.Fatalf("fetched %d > 2·N0", ix.FetchedTuples())
	}
}

func TestNotToppedWithoutConstraints(t *testing.T) {
	// Without any access constraint, a base-relation atom cannot be
	// fetched: the query is not topped.
	s := schema.New(schema.NewRelation("R", "A", "B"))
	c := topped.NewChecker(s, access.NewSchema(), nil)
	q := &fo.Query{Head: []string{"x"}, Body: &fo.Exists{Vars: []string{"y"}, E: fo.NewAtom("R", cq.Var("x"), cq.Var("y"))}}
	if res := c.Check(q, 100); res.Topped {
		t.Fatal("no constraints, no views: nothing can be fetched")
	}
}

func TestUnsafeDisjunctionRejected(t *testing.T) {
	// Q(x,y) = ∃w1 R(w1,x) ∨ ∃w2 R(w2,y) is unsafe (Section 5.2 case 5).
	s := schema.New(schema.NewRelation("R", "A", "B"))
	a := access.NewSchema(access.NewConstraint("R", nil, []string{"A", "B"}, 10))
	c := topped.NewChecker(s, a, nil)
	q := &fo.Query{Head: []string{"x", "y"}, Body: &fo.Or{
		L: &fo.Exists{Vars: []string{"w1"}, E: fo.NewAtom("R", cq.Var("w1"), cq.Var("x"))},
		R: &fo.Exists{Vars: []string{"w2"}, E: fo.NewAtom("R", cq.Var("w2"), cq.Var("y"))},
	}}
	if res := c.Check(q, 100); res.Topped {
		t.Fatal("unsafe disjunction must be rejected (domain independence)")
	}
}

func TestDisjunctionTopped(t *testing.T) {
	// Q(x) = R("a",x) ∨ R("b",x) under R(A→B,N): a UCQ-style topped query.
	s := schema.New(schema.NewRelation("R", "A", "B"))
	a := access.NewSchema(access.NewConstraint("R", []string{"A"}, []string{"B"}, 4))
	c := topped.NewChecker(s, a, nil)
	q := &fo.Query{Head: []string{"x"}, Body: &fo.Or{
		L: fo.NewAtom("R", cq.Cst("a"), cq.Var("x")),
		R: fo.NewAtom("R", cq.Cst("b"), cq.Var("x")),
	}}
	res := c.Check(q, 20)
	if !res.Topped {
		t.Fatalf("disjunction of fetchable atoms must be topped: %s", res.Reason)
	}
	// Execute and compare against UCQ evaluation.
	db := instance.NewDatabase(s)
	db.MustInsert("R", "a", "1")
	db.MustInsert("R", "a", "2")
	db.MustInsert("R", "b", "3")
	db.MustInsert("R", "c", "4")
	ix, err := instance.BuildIndexes(db, a)
	if err != nil {
		t.Fatal(err)
	}
	got, err := plan.Run(res.Plan, ix, nil)
	if err != nil {
		t.Fatal(err)
	}
	want := [][]string{{"1"}, {"2"}, {"3"}}
	if !cq.RowsEqual(got, want) {
		t.Fatalf("got %v want %v", got, want)
	}
}

func TestSizeBoundedRoundTrip(t *testing.T) {
	s := schema.New(schema.NewRelation("R", "A", "B"))
	a := access.NewSchema()
	_ = a
	inner := &fo.Query{Name: "V", Head: []string{"x", "y"},
		Body: fo.Expr(fo.NewAtom("R", cq.Var("x"), cq.Var("y")))}
	for _, k := range []int64{1, 2, 5} {
		sb := topped.MakeSizeBounded(inner, k)
		gotK, gotInner, ok := topped.IsSizeBounded(sb)
		if !ok {
			t.Fatalf("K=%d: size-bounded form not recognized: %s", k, sb)
		}
		if gotK != k {
			t.Fatalf("K=%d: recognized bound %d", k, gotK)
		}
		if !cqBodiesEqual(gotInner.Body, inner.Body) {
			t.Fatalf("K=%d: inner query mismatch", k)
		}
	}
	// A plain query is not size-bounded syntactically.
	if _, _, ok := topped.IsSizeBounded(inner); ok {
		t.Fatal("plain query must not be recognized as size-bounded")
	}
	_ = s
}

func cqBodiesEqual(a, b fo.Expr) bool { return a.String() == b.String() }

func TestSizeBoundedSemantics(t *testing.T) {
	// The size-bounded wrapper returns Q' when |Q'(D)| ≤ K and ∅ otherwise
	// (Theorem 5.2(b)).
	s := schema.New(schema.NewRelation("R", "A"))
	inner := &fo.Query{Head: []string{"x"}, Body: fo.Expr(fo.NewAtom("R", cq.Var("x")))}
	sb := topped.MakeSizeBounded(inner, 2)

	small := instance.NewDatabase(s)
	small.MustInsert("R", "1")
	small.MustInsert("R", "2")
	got, err := eval.FOOnDB(sb, &eval.Source{DB: small})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("output within bound must pass through, got %v", got)
	}

	big := instance.NewDatabase(s)
	for i := 0; i < 5; i++ {
		big.MustInsert("R", strconv.Itoa(i))
	}
	got, err = eval.FOOnDB(sb, &eval.Source{DB: big})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("output beyond bound must collapse to empty, got %v", got)
	}
}

func TestBoundedOutputOracleOnViews(t *testing.T) {
	f := newEx53()
	c := topped.NewChecker(f.s, f.a, f.views)
	// q2(y) = ∃x (V3(x,y) ∧ x=1) has bounded output (|q2(D)| ≤ N).
	q2 := &fo.Query{Head: []string{"y"}, Body: &fo.Exists{Vars: []string{"x"}, E: &fo.And{
		L: fo.NewAtom("V3", cq.Var("x"), cq.Var("y")),
		R: fo.Eq(cq.Var("x"), cq.Cst("1")),
	}}}
	ok, bound := c.BoundedOutputFO(q2)
	if !ok {
		t.Fatal("q2 must have bounded output (Example 5.4(d))")
	}
	if bound <= 0 || bound > 3 {
		t.Fatalf("bound should be ≤ N=3, got %d", bound)
	}
	// V3 itself (both columns) is unbounded.
	v3q := &fo.Query{Head: []string{"x", "y"}, Body: fo.Expr(fo.NewAtom("V3", cq.Var("x"), cq.Var("y")))}
	if ok, _ := c.BoundedOutputFO(v3q); ok {
		t.Fatal("V3 has unbounded output under A2")
	}
}
