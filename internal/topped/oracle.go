package topped

import (
	"repro/internal/boundedness"
	"repro/internal/fo"
)

// boundedOutput is the bounded-output oracle of Theorem 5.1(c): it decides
// (soundly) whether the conjunction of the context formulas, projected to
// head, has output size bounded by a constant over all instances
// satisfying A.
//
// Views are expanded to their definitions; negations are over-approximated
// positively (dropping a negation can only grow the output, so "bounded"
// verdicts remain sound); the resulting ∃FO+ formula is converted to UCQ
// and decided exactly by BOP (Theorem 3.4). Formulas that fall outside the
// convertible fragment yield "unbounded" (conservative).
func (c *Checker) boundedOutput(exprs []fo.Expr, head []string) (bool, int64) {
	if len(exprs) == 0 {
		// The empty context Qε is Boolean: bounded iff nothing is asked.
		return len(head) == 0, 1
	}
	conj := fo.Conj(exprs...)
	expanded := fo.ExpandViews(conj, c.Views)
	pos := fo.PositiveApprox(expanded)
	u, err := fo.ToUCQ(head, pos)
	if err != nil {
		return false, 0
	}
	return boundedness.BoundedOutputUCQ(u, c.S, c.A)
}

// BoundedOutputFO is the exported oracle: it decides bounded output for an
// FO query over R under A, exactly for ∃FO+ (after view expansion) and
// soundly (via positive approximation, or the size-bounded syntax of
// Section 5.3) otherwise. The boolean result is trustworthy when true;
// false means "bounded output could not be established".
func (c *Checker) BoundedOutputFO(q *fo.Query) (bool, int64) {
	// The size-bounded syntax decides immediately.
	if k, _, ok := IsSizeBounded(q); ok {
		return true, k
	}
	return c.boundedOutput([]fo.Expr{q.Body}, q.Head)
}
