// Package topped implements the effective syntax of Section 5: queries
// topped by (R, V, A, M) — a PTIME-checkable class of FO queries that
// covers, up to A-equivalence, every FO query with an M-bounded rewriting
// using V under A (Theorem 5.1) — and size-bounded queries, the effective
// syntax for FO queries with bounded output (Theorem 5.2).
//
// The checker is constructive: it simultaneously decides the covq(·,·)
// conditions of Section 5.2 and synthesizes the witnessing query plan, so
// size(Qε, Q) is realized as the actual node count of the generated plan
// and Theorem 5.1(b)'s "a bounded rewriting can be identified in PTIME"
// is the generator itself.
package topped

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/access"
	"repro/internal/cq"
	"repro/internal/fo"
	"repro/internal/plan"
	"repro/internal/schema"
)

// DefaultK is the default bound on |Q2| for the context-expansion cases
// (4c)/(6b); the paper notes any fixed K (even 1) preserves expressive
// power up to equivalence while keeping the check PTIME.
const DefaultK = 12

// Checker decides topped-ness and synthesizes plans.
type Checker struct {
	S     *schema.Schema
	A     *access.Schema
	Views map[string]*cq.UCQ // view name -> definition
	K     int                // context-expansion size bound (DefaultK if 0)

	fresh int
	memo  map[string]memoEntry
}

type memoEntry struct {
	p   plan.Node
	err error
}

// NewChecker builds a checker for (R, V, A).
func NewChecker(s *schema.Schema, a *access.Schema, views map[string]*cq.UCQ) *Checker {
	return &Checker{S: s, A: a, Views: views, K: DefaultK, memo: map[string]memoEntry{}}
}

// Result reports a topped-ness decision.
type Result struct {
	Topped bool
	Size   int       // size(Qε, Q): the synthesized plan's node count
	Plan   plan.Node // the M-bounded rewriting (nil when not topped)
	Reason string    // failure explanation when not topped
}

// Check decides whether q is topped by (R, V, A, M) and, if so, returns
// the synthesized plan (an M-bounded rewriting of q in FO using V under A).
func (c *Checker) Check(q *fo.Query, M int) Result {
	p, err := c.Plan(q)
	if err != nil {
		return Result{Topped: false, Reason: err.Error()}
	}
	size := p.Size()
	if size > M {
		return Result{Topped: false, Size: size, Plan: p,
			Reason: fmt.Sprintf("plan size %d exceeds bound M=%d", size, M)}
	}
	return Result{Topped: true, Size: size, Plan: p}
}

// CheckCQ embeds a conjunctive query into FO and checks topped-ness.
func (c *Checker) CheckCQ(q *cq.CQ, M int) Result {
	return c.Check(fo.FromCQ(q), M)
}

// Plan synthesizes a query plan for q (covq(Qε, Q) as a constructive
// check), projecting the final plan to q's head.
func (c *Checker) Plan(q *fo.Query) (plan.Node, error) {
	if c.memo == nil {
		c.memo = map[string]memoEntry{}
	}
	body := fo.Rectify(q.Body)
	p, err := c.gen(ctxEmpty(), body, toSet(q.Head))
	if err != nil {
		return nil, err
	}
	p, err = c.projectTo(p, q.Head)
	if err != nil {
		return nil, err
	}
	if err := plan.Validate(p, c.S); err != nil {
		return nil, fmt.Errorf("topped: generated plan invalid: %w", err)
	}
	return p, nil
}

// ---- conjunction context (Qs) ----

// ctx is the conjunction context Qs: its conjuncts and the plan computing
// them. The empty context Qε has no conjuncts and a nil plan.
type ctx struct {
	exprs []fo.Expr
	p     plan.Node
}

func ctxEmpty() *ctx { return &ctx{} }

func (q *ctx) isEmpty() bool { return len(q.exprs) == 0 }

func (q *ctx) attrs() []string {
	if q.p == nil {
		return nil
	}
	return q.p.Attrs()
}

func (q *ctx) extended(e fo.Expr, p plan.Node) *ctx {
	return &ctx{exprs: append(append([]fo.Expr(nil), q.exprs...), e), p: p}
}

func (q *ctx) key() string {
	parts := make([]string, len(q.exprs))
	for i, e := range q.exprs {
		parts[i] = e.String()
	}
	return strings.Join(parts, "&")
}

// ---- main recursion ----

// gen synthesizes a plan for Qs ∧ e whose output attributes cover
// (fv(Qs) ∪ fv(e)) ∩ needed and are a subset of fv(Qs) ∪ fv(e).
func (c *Checker) gen(qs *ctx, e fo.Expr, needed map[string]bool) (plan.Node, error) {
	key := qs.key() + "\x00" + e.String() + "\x00" + setKey(needed)
	if m, ok := c.memo[key]; ok {
		return m.p, m.err
	}
	p, err := c.genUncached(qs, e, needed)
	c.memo[key] = memoEntry{p, err}
	return p, err
}

func (c *Checker) genUncached(qs *ctx, e fo.Expr, needed map[string]bool) (plan.Node, error) {
	switch x := e.(type) {
	case *fo.Cmp:
		return c.genCmp(qs, x)

	case *fo.Atom:
		if _, isView := c.Views[x.Rel]; isView {
			return c.genView(qs, x)
		}
		return c.genAtomFetch(qs, x, nil, needed)

	case *fo.Exists:
		// Flatten nested quantifier prefixes.
		vars, inner := append([]string(nil), x.Vars...), x.E
		for {
			nx, ok := inner.(*fo.Exists)
			if !ok {
				break
			}
			vars = append(vars, nx.Vars...)
			inner = nx.E
		}
		// Case (7a)/(7b): existential projection of a base-relation atom
		// maps directly to a fetch; otherwise case (7c).
		if at, ok := inner.(*fo.Atom); ok {
			if _, isView := c.Views[at.Rel]; !isView {
				return c.genAtomFetch(qs, at, vars, needed)
			}
		}
		innerNeeded := cloneSet(needed)
		for _, v := range vars {
			delete(innerNeeded, v)
		}
		p, err := c.gen(qs, inner, innerNeeded)
		if err != nil {
			return nil, err
		}
		return c.dropAttrs(p, vars)

	case *fo.And:
		// Normalize ¬ to the right operand (the grammar's Q1 ∧ ¬Q2).
		l, r := x.L, x.R
		if _, ln := l.(*fo.Not); ln {
			if _, rn := r.(*fo.Not); !rn {
				l, r = r, l
			}
		}
		if n, ok := r.(*fo.Not); ok {
			return c.genNegation(qs, l, n.E, needed)
		}
		if cmp, ok := r.(*fo.Cmp); ok {
			// Case (3): Q' ∧ C.
			p, err := c.gen(qs, l, unionSets(needed, toSet(cmp.FreeVars())))
			if err != nil {
				return nil, err
			}
			return c.applyCmp(p, cmp)
		}
		if cmp, ok := l.(*fo.Cmp); ok {
			p, err := c.gen(qs, r, unionSets(needed, toSet(cmp.FreeVars())))
			if err != nil {
				return nil, err
			}
			return c.applyCmp(p, cmp)
		}
		return c.genConj(qs, l, r, needed)

	case *fo.Or:
		return c.genDisj(qs, x.L, x.R, needed)

	case *fo.Not:
		return nil, fmt.Errorf("topped: bare negation %s is not range-restricted", x)

	case *fo.Implies, *fo.Forall:
		return c.gen(qs, fo.Desugar(e), needed)

	default:
		return nil, fmt.Errorf("topped: unsupported formula %T", e)
	}
}

// genCmp handles case (1) and standalone comparisons: z = c introduces a
// constant; other comparisons filter the context.
func (c *Checker) genCmp(qs *ctx, x *fo.Cmp) (plan.Node, error) {
	// z = c (or c = z) with z not bound by the context: a constant node.
	varSide, constSide := x.L, x.R
	if varSide.Const && !constSide.Const {
		varSide, constSide = constSide, varSide
	}
	if !varSide.Const && constSide.Const && !x.Neq && !inAttrs(qs.attrs(), varSide.Val) {
		cn := &plan.Const{Attr: varSide.Val, Val: constSide.Val}
		if qs.p == nil {
			return cn, nil
		}
		return &plan.Product{L: qs.p, R: cn}, nil
	}
	// Otherwise both sides must be bound by the context: a selection.
	if qs.p == nil {
		return nil, fmt.Errorf("topped: comparison %s over unbound variables", x)
	}
	return c.applyCmp(qs.p, x)
}

// applyCmp appends a selection for the comparison; its variables must be
// attributes of the plan.
func (c *Checker) applyCmp(p plan.Node, x *fo.Cmp) (plan.Node, error) {
	attrs := p.Attrs()
	mk := func(t cq.Term) (string, bool, error) {
		if t.Const {
			return t.Val, true, nil
		}
		if !inAttrs(attrs, t.Val) {
			return "", false, fmt.Errorf("topped: comparison variable %s not bound", t.Val)
		}
		return t.Val, false, nil
	}
	lv, lc, err := mk(x.L)
	if err != nil {
		return nil, err
	}
	rv, rc, err := mk(x.R)
	if err != nil {
		return nil, err
	}
	if lc && !rc {
		lv, lc, rv, rc = rv, rc, lv, lc
	}
	if lc && rc {
		return nil, fmt.Errorf("topped: constant comparison %s", x)
	}
	return &plan.Select{Child: p, Cond: []plan.CondItem{{L: lv, RConst: rc, R: rv, Neq: x.Neq}}}, nil
}

// genView handles case (2): a view atom is a cached scan; repeated
// variables and constants in the call become selections, and a non-empty
// context joins in.
func (c *Checker) genView(qs *ctx, x *fo.Atom) (plan.Node, error) {
	def := c.Views[x.Rel]
	if def == nil || len(def.Disjuncts) == 0 {
		return nil, fmt.Errorf("topped: view %s has no definition", x.Rel)
	}
	cols := make([]string, len(x.Args))
	var conds []plan.CondItem
	seen := map[string]int{}
	for i, t := range x.Args {
		switch {
		case t.Const:
			cols[i] = c.freshAttr()
			conds = append(conds, plan.CondItem{L: cols[i], RConst: true, R: t.Val})
		default:
			if j, dup := seen[t.Val]; dup {
				cols[i] = c.freshAttr()
				conds = append(conds, plan.CondItem{L: cols[i], R: cols[j]})
			} else {
				cols[i] = t.Val
				seen[t.Val] = i
			}
		}
	}
	var p plan.Node = &plan.View{Name: x.Rel, Cols: cols}
	if len(conds) > 0 {
		p = &plan.Select{Child: p, Cond: conds}
	}
	// Synthetic "·" columns linger; joins and projections drop them later
	// at no extra cost.
	if qs.p == nil {
		return p, nil
	}
	return c.join(qs.p, p)
}

// genConj handles case (4): Q1 ∧ Q2 with Q2 not a comparison.
func (c *Checker) genConj(qs *ctx, q1, q2 fo.Expr, needed map[string]bool) (plan.Node, error) {
	needed1 := unionSets(needed, toSet(q2.FreeVars()))
	needed2 := unionSets(needed, toSet(q1.FreeVars()))

	var firstErr error
	// (4a): Q2 is (a projection of) a base-relation atom reachable by a
	// fetch from Qs ∧ Q1's output.
	if at, w, ok := atomShape(q2, c.Views); ok {
		p1, err := c.gen(qs, q1, needed1)
		if err == nil {
			qs1 := qs.extended(q1, p1)
			p, err2 := c.genAtomFetch(qs1, at, w, needed2)
			if err2 == nil {
				return p, nil
			}
			firstErr = err2
		} else {
			firstErr = err
		}
	}
	// (4b): both conjuncts independently with Qs, then join.
	p1, err1 := c.gen(qs, q1, needed1)
	if err1 == nil {
		if p2, err2 := c.gen(qs, q2, needed2); err2 == nil {
			return c.join(p1, p2)
		} else if firstErr == nil {
			firstErr = err2
		}
	} else if firstErr == nil {
		firstErr = err1
	}
	// (4c): propagate Q1 into the context for Q2 (bounded by K).
	if err1 == nil && exprSize(q2) <= c.k() {
		qs1 := qs.extended(q1, p1)
		if p, err := c.gen(qs1, q2, needed); err == nil {
			return p, nil
		} else if firstErr == nil {
			firstErr = err
		}
	}
	// Symmetric (4c) with the roles of Q1 and Q2 swapped.
	if p2, err2 := c.gen(qs, q2, needed2); err2 == nil && exprSize(q1) <= c.k() {
		qs2 := qs.extended(q2, p2)
		if p, err := c.gen(qs2, q1, needed); err == nil {
			return p, nil
		} else if firstErr == nil {
			firstErr = err
		}
	}
	if firstErr == nil {
		firstErr = fmt.Errorf("topped: no applicable conjunction case for %s ∧ %s", q1, q2)
	}
	return nil, firstErr
}

// genDisj handles case (5): Q1 ∨ Q2 with equal free variables.
func (c *Checker) genDisj(qs *ctx, q1, q2 fo.Expr, needed map[string]bool) (plan.Node, error) {
	f1, f2 := q1.FreeVars(), q2.FreeVars()
	if !sameStrings(f1, f2) {
		return nil, fmt.Errorf("topped: disjuncts have different free variables %v vs %v (unsafe)", f1, f2)
	}
	p1, err := c.gen(qs, q1, needed)
	if err != nil {
		return nil, err
	}
	p2, err := c.gen(qs, q2, needed)
	if err != nil {
		return nil, err
	}
	target := sortedUnion(qs.attrsSet(), toSet(f1))
	p1, err = c.projectTo(p1, target)
	if err != nil {
		return nil, err
	}
	p2, err = c.projectTo(p2, target)
	if err != nil {
		return nil, err
	}
	return &plan.Union{L: p1, R: p2}, nil
}

// genNegation handles case (6): Q1 ∧ ¬Q2 with equal free variables.
func (c *Checker) genNegation(qs *ctx, q1, q2 fo.Expr, needed map[string]bool) (plan.Node, error) {
	f1, f2 := q1.FreeVars(), q2.FreeVars()
	if !sameStrings(f1, f2) {
		return nil, fmt.Errorf("topped: negation with free variables %v differing from positive part %v (unsafe)", f2, f1)
	}
	target := sortedUnion(qs.attrsSet(), toSet(f1))
	p1, err := c.gen(qs, q1, unionSets(needed, toSet(f1)))
	if err != nil {
		return nil, err
	}
	// (6a): Q2 topped with Qs directly.
	if p2, err2 := c.gen(qs, q2, unionSets(needed, toSet(f2))); err2 == nil {
		l, errL := c.projectTo(p1, target)
		r, errR := c.projectTo(p2, target)
		if errL == nil && errR == nil {
			return &plan.Diff{L: l, R: r}, nil
		}
	}
	// (6b): Q1 ∧ ¬Q2 ≡ Q1 ∧ ¬(Q1 ∧ Q2), with Q1 ∧ Q2 topped (|Q2| ≤ K).
	if exprSize(q2) > c.k() {
		return nil, fmt.Errorf("topped: negated subquery exceeds K=%d", c.k())
	}
	p12, err := c.gen(qs, &fo.And{L: q1, R: q2}, unionSets(needed, toSet(f1)))
	if err != nil {
		return nil, err
	}
	l, err := c.projectTo(p1, target)
	if err != nil {
		return nil, err
	}
	r, err := c.projectTo(p12, target)
	if err != nil {
		return nil, err
	}
	return &plan.Diff{L: l, R: r}, nil
}

func (q *ctx) attrsSet() map[string]bool {
	out := map[string]bool{}
	for _, a := range q.attrs() {
		out[a] = true
	}
	return out
}

func (c *Checker) k() int {
	if c.K > 0 {
		return c.K
	}
	return DefaultK
}

func (c *Checker) freshAttr() string {
	c.fresh++
	return fmt.Sprintf("·%d", c.fresh)
}

// ---- helpers ----

// atomShape recognizes (projections of) base-relation atoms: A or ∃w̄ A.
func atomShape(e fo.Expr, views map[string]*cq.UCQ) (*fo.Atom, []string, bool) {
	switch x := e.(type) {
	case *fo.Atom:
		if _, isView := views[x.Rel]; isView {
			return nil, nil, false
		}
		return x, nil, true
	case *fo.Exists:
		if at, ok := x.E.(*fo.Atom); ok {
			if _, isView := views[at.Rel]; !isView {
				return at, x.Vars, true
			}
		}
	}
	return nil, nil, false
}

// projectTo projects (and reorders) a plan to exactly the target attributes;
// it fails if the plan lacks one of them. No node is added when the plan
// already has exactly the target attributes in order.
func (c *Checker) projectTo(p plan.Node, target []string) (plan.Node, error) {
	attrs := p.Attrs()
	if sameStrings(attrs, target) {
		return p, nil
	}
	for _, t := range target {
		if !inAttrs(attrs, t) {
			return nil, fmt.Errorf("topped: plan lacks required attribute %s (has %v)", t, attrs)
		}
	}
	return &plan.Project{Child: p, Cols: append([]string(nil), target...)}, nil
}

// dropAttrs removes the given attributes from the plan's output.
func (c *Checker) dropAttrs(p plan.Node, drop []string) (plan.Node, error) {
	ds := toSet(drop)
	var keep []string
	for _, a := range p.Attrs() {
		if !ds[a] {
			keep = append(keep, a)
		}
	}
	if len(keep) == len(p.Attrs()) {
		return p, nil
	}
	return &plan.Project{Child: p, Cols: keep}, nil
}

// join builds the natural join of two plans: a plain product when they
// share no attributes; otherwise ρ + × + σ + π (the paper's λ = 4 steps).
func (c *Checker) join(l, r plan.Node) (plan.Node, error) {
	la := l.Attrs()
	var shared []string
	for _, a := range r.Attrs() {
		if inAttrs(la, a) {
			shared = append(shared, a)
		}
	}
	if len(shared) == 0 {
		return &plan.Product{L: l, R: r}, nil
	}
	pairs := make([]plan.RenamePair, len(shared))
	renamed := make(map[string]string, len(shared))
	for i, a := range shared {
		na := c.freshAttr()
		pairs[i] = plan.RenamePair{From: a, To: na}
		renamed[a] = na
	}
	rr := pushRename(r, pairs)
	prod := &plan.Product{L: l, R: rr}
	conds := make([]plan.CondItem, len(shared))
	for i, a := range shared {
		conds[i] = plan.CondItem{L: a, R: renamed[a]}
	}
	sel := &plan.Select{Child: prod, Cond: conds}
	var keep []string
	for _, a := range prod.Attrs() {
		if !strings.HasPrefix(a, "·") {
			keep = append(keep, a)
		}
	}
	return &plan.Project{Child: sel, Cols: keep}, nil
}

// ---- small set utilities ----

func toSet(xs []string) map[string]bool {
	out := make(map[string]bool, len(xs))
	for _, x := range xs {
		out[x] = true
	}
	return out
}

func cloneSet(s map[string]bool) map[string]bool {
	out := make(map[string]bool, len(s))
	for k, v := range s {
		out[k] = v
	}
	return out
}

func unionSets(a, b map[string]bool) map[string]bool {
	out := cloneSet(a)
	for k := range b {
		out[k] = true
	}
	return out
}

func sortedUnion(a, b map[string]bool) []string {
	u := unionSets(a, b)
	out := make([]string, 0, len(u))
	for k := range u {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func setKey(s map[string]bool) string {
	out := make([]string, 0, len(s))
	for k := range s {
		out = append(out, k)
	}
	sort.Strings(out)
	return strings.Join(out, ",")
}

func inAttrs(attrs []string, a string) bool {
	for _, x := range attrs {
		if x == a {
			return true
		}
	}
	return false
}

func sameStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func exprSize(e fo.Expr) int {
	n := 0
	fo.Walk(e, func(fo.Expr) { n++ })
	return n
}
