package topped

import (
	"fmt"
	"strconv"

	"repro/internal/cq"
	"repro/internal/fo"
)

// Size-bounded queries (Section 5.3) are FO queries of the form
//
//	Q(x̄) = Q'(x̄) ∧ ∀x̄1,...,x̄K+1 ( Q'(x̄1) ∧ ... ∧ Q'(x̄K+1)
//	                                 → ∨_{i≠j} x̄i = x̄j )
//
// for some K ≥ 0 and FO query Q'. Every such query has output bounded by
// K on all instances (Theorem 5.2(b)): if Q' exceeds K answers the guard
// fails and Q is empty; otherwise Q = Q'. Conversely every FO query with
// output bounded by K over A-instances is A-equivalent to its size-bounded
// form (Theorem 5.2(a)) — see MakeSizeBounded.

// MakeSizeBounded wraps an FO query in the size-bounded form with bound K.
// The copies x̄i use fresh variables "<x>§<i>".
func MakeSizeBounded(q *fo.Query, k int64) *fo.Query {
	n := len(q.Head)
	copyVars := func(i int64) []string {
		out := make([]string, n)
		for j, h := range q.Head {
			out[j] = h + "§" + strconv.FormatInt(i, 10)
		}
		return out
	}
	var allVars []string
	var copies []fo.Expr
	for i := int64(1); i <= k+1; i++ {
		vars := copyVars(i)
		allVars = append(allVars, vars...)
		sub := map[string]cq.Term{}
		for j, h := range q.Head {
			sub[h] = cq.Var(vars[j])
		}
		copies = append(copies, fo.Substitute(fo.Rectify(fo.Clone(q.Body)), sub))
	}
	var pairs []fo.Expr
	for i := int64(1); i <= k+1; i++ {
		for j := i + 1; j <= k+1; j++ {
			vi, vj := copyVars(i), copyVars(j)
			var eqs []fo.Expr
			for t := 0; t < n; t++ {
				eqs = append(eqs, fo.Eq(cq.Var(vi[t]), cq.Var(vj[t])))
			}
			pairs = append(pairs, fo.Conj(eqs...))
		}
	}
	guard := &fo.Forall{
		Vars: allVars,
		E:    &fo.Implies{A: fo.Conj(copies...), B: fo.Disj(pairs...)},
	}
	return &fo.Query{
		Name: q.Name,
		Head: append([]string(nil), q.Head...),
		Body: &fo.And{L: fo.Clone(q.Body), R: guard},
	}
}

// IsSizeBounded recognizes the size-bounded form syntactically, returning
// the bound K and the inner query Q' on success. The check is PTIME in |Q|
// (Theorem 5.2(c)): it verifies the shape And(Q', Forall(vars,
// Implies(K+1 α-copies of Q', pairwise-equality disjunction))).
func IsSizeBounded(q *fo.Query) (int64, *fo.Query, bool) {
	and, ok := q.Body.(*fo.And)
	if !ok {
		return 0, nil, false
	}
	inner := and.L
	guard, ok := and.R.(*fo.Forall)
	if !ok {
		return 0, nil, false
	}
	imp, ok := guard.E.(*fo.Implies)
	if !ok {
		return 0, nil, false
	}
	n := len(q.Head)
	if n == 0 {
		return 0, nil, false
	}
	copies := conjuncts(imp.A)
	if len(copies)*n != len(guard.Vars) || len(copies) < 2 {
		return 0, nil, false
	}
	k := int64(len(copies) - 1)
	// Each copy must be an α-renaming of inner mapping head j to the j-th
	// variable of that copy's block.
	for i, cp := range copies {
		block := guard.Vars[i*n : (i+1)*n]
		ren := map[string]string{}
		for j, h := range q.Head {
			ren[h] = block[j]
		}
		if !alphaEqual(inner, cp, ren, map[string]string{}) {
			return 0, nil, false
		}
	}
	// The conclusion must be the disjunction of pairwise block equalities
	// (any order); verify each disjunct is a full equality conjunction of
	// two distinct blocks, and that enough distinct pairs appear to force
	// a collision among K+1 copies (all pairs is the canonical form).
	blocks := make([][]string, len(copies))
	for i := range copies {
		blocks[i] = guard.Vars[i*n : (i+1)*n]
	}
	wantPairs := map[string]bool{}
	for i := 0; i < len(blocks); i++ {
		for j := i + 1; j < len(blocks); j++ {
			wantPairs[fmt.Sprint(i, ",", j)] = false
		}
	}
	for _, d := range disjuncts(imp.B) {
		i, j, ok := matchPairEquality(d, blocks)
		if !ok {
			return 0, nil, false
		}
		wantPairs[fmt.Sprint(i, ",", j)] = true
	}
	for _, seen := range wantPairs {
		if !seen {
			return 0, nil, false
		}
	}
	return k, &fo.Query{Name: q.Name, Head: q.Head, Body: inner}, true
}

// matchPairEquality checks that d is the conjunction of positionwise
// equalities between two blocks, returning their indices.
func matchPairEquality(d fo.Expr, blocks [][]string) (int, int, bool) {
	eqs := conjuncts(d)
	if len(blocks) == 0 || len(eqs) != len(blocks[0]) {
		return 0, 0, false
	}
	blockOf := map[string][2]int{} // var -> (block, position)
	for b, vars := range blocks {
		for p, v := range vars {
			blockOf[v] = [2]int{b, p}
		}
	}
	bi, bj := -1, -1
	seen := map[int]bool{}
	for _, e := range eqs {
		c, ok := e.(*fo.Cmp)
		if !ok || c.Neq || c.L.Const || c.R.Const {
			return 0, 0, false
		}
		l, okL := blockOf[c.L.Val]
		r, okR := blockOf[c.R.Val]
		if !okL || !okR || l[1] != r[1] || l[0] == r[0] {
			return 0, 0, false
		}
		i, j := l[0], r[0]
		if i > j {
			i, j = j, i
		}
		if bi == -1 {
			bi, bj = i, j
		} else if bi != i || bj != j {
			return 0, 0, false
		}
		if seen[l[1]] {
			return 0, 0, false
		}
		seen[l[1]] = true
	}
	if len(seen) != len(blocks[0]) {
		return 0, 0, false
	}
	return bi, bj, true
}

// alphaEqual tests structural equality of two formulas modulo the variable
// renaming ren (free variables) and bnd (bound variables encountered).
func alphaEqual(a, b fo.Expr, ren map[string]string, bnd map[string]string) bool {
	mapped := func(v string) (string, bool) {
		if w, ok := bnd[v]; ok {
			return w, true
		}
		if w, ok := ren[v]; ok {
			return w, true
		}
		return v, false
	}
	termEq := func(s, t cq.Term) bool {
		if s.Const != t.Const {
			return false
		}
		if s.Const {
			return s.Val == t.Val
		}
		w, _ := mapped(s.Val)
		return w == t.Val
	}
	switch x := a.(type) {
	case *fo.Atom:
		y, ok := b.(*fo.Atom)
		if !ok || y.Rel != x.Rel || len(y.Args) != len(x.Args) {
			return false
		}
		for i := range x.Args {
			if !termEq(x.Args[i], y.Args[i]) {
				return false
			}
		}
		return true
	case *fo.Cmp:
		y, ok := b.(*fo.Cmp)
		if !ok || y.Neq != x.Neq {
			return false
		}
		return termEq(x.L, y.L) && termEq(x.R, y.R)
	case *fo.And:
		y, ok := b.(*fo.And)
		return ok && alphaEqual(x.L, y.L, ren, bnd) && alphaEqual(x.R, y.R, ren, bnd)
	case *fo.Or:
		y, ok := b.(*fo.Or)
		return ok && alphaEqual(x.L, y.L, ren, bnd) && alphaEqual(x.R, y.R, ren, bnd)
	case *fo.Not:
		y, ok := b.(*fo.Not)
		return ok && alphaEqual(x.E, y.E, ren, bnd)
	case *fo.Implies:
		y, ok := b.(*fo.Implies)
		return ok && alphaEqual(x.A, y.A, ren, bnd) && alphaEqual(x.B, y.B, ren, bnd)
	case *fo.Exists:
		y, ok := b.(*fo.Exists)
		if !ok || len(y.Vars) != len(x.Vars) {
			return false
		}
		nb := cloneStrMap(bnd)
		for i := range x.Vars {
			nb[x.Vars[i]] = y.Vars[i]
		}
		return alphaEqual(x.E, y.E, ren, nb)
	case *fo.Forall:
		y, ok := b.(*fo.Forall)
		if !ok || len(y.Vars) != len(x.Vars) {
			return false
		}
		nb := cloneStrMap(bnd)
		for i := range x.Vars {
			nb[x.Vars[i]] = y.Vars[i]
		}
		return alphaEqual(x.E, y.E, ren, nb)
	default:
		return false
	}
}

func cloneStrMap(m map[string]string) map[string]string {
	out := make(map[string]string, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

func conjuncts(e fo.Expr) []fo.Expr {
	if a, ok := e.(*fo.And); ok {
		return append(conjuncts(a.L), conjuncts(a.R)...)
	}
	return []fo.Expr{e}
}

func disjuncts(e fo.Expr) []fo.Expr {
	if a, ok := e.(*fo.Or); ok {
		return append(disjuncts(a.L), disjuncts(a.R)...)
	}
	return []fo.Expr{e}
}
