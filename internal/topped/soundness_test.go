package topped_test

import (
	"testing"

	"repro/internal/cq"
	"repro/internal/eval"
	"repro/internal/instance"
	"repro/internal/plan"
	"repro/internal/topped"
	"repro/internal/workload"
)

// The end-to-end soundness property of the effective syntax (Theorem
// 5.1(b)): whenever the checker accepts a query, the synthesized plan
// conforms to A and computes exactly the query's answer on instances
// satisfying A. Exercised over a large random-query population on the CDR
// schema against randomly generated A-instances.
func TestToppedSoundnessOnRandomQueries(t *testing.T) {
	c := workload.NewCDR(6, 3, 12)
	checker := topped.NewChecker(c.Schema, c.Access, nil)
	dbs := []*instance.Database{
		c.Generate(workload.CDRParams{Customers: 60, Days: 8, Seed: 41}),
		workload.RandomInstance(c.Schema, c.Access, 300, 40, 42),
	}
	type fixture struct {
		db  *instance.Database
		ix  *instance.Indexed
		src *eval.Source
	}
	var fixtures []fixture
	for _, db := range dbs {
		if ok, _ := db.SatisfiesAll(c.Access); !ok {
			t.Fatalf("instance violates A: %v", db.Violations(c.Access))
		}
		ix, err := instance.BuildIndexes(db, c.Access)
		if err != nil {
			t.Fatal(err)
		}
		fixtures = append(fixtures, fixture{db, ix, &eval.Source{DB: db}})
	}

	toppedCount, checked := 0, 0
	for seed := int64(0); seed < 120; seed++ {
		q := workload.RandomCQ(c.Schema, workload.RandomCQParams{
			Atoms:     1 + int(seed%3),
			ConstProb: 0.5,
			JoinProb:  0.5,
			HeadVars:  1 + int(seed%2),
			Seed:      seed,
		})
		res := checker.CheckCQ(q, 256)
		if !res.Topped {
			continue
		}
		toppedCount++
		// The plan must conform.
		rep := plan.Conforms(res.Plan, c.Schema, c.Access, nil)
		if !rep.Conforms {
			t.Fatalf("seed %d: accepted query's plan does not conform: %s\nquery: %s", seed, rep.Reason, q)
		}
		for fi, f := range fixtures {
			got, err := plan.Run(res.Plan, f.ix, nil)
			if err != nil {
				t.Fatalf("seed %d fixture %d: run: %v\n%s", seed, fi, err, plan.Render(res.Plan))
			}
			want, err := eval.CQOnDB(q, f.src)
			if err != nil {
				t.Fatalf("seed %d fixture %d: eval: %v", seed, fi, err)
			}
			if !cq.RowsEqual(got, want) {
				eval.SortRows(got)
				eval.SortRows(want)
				t.Fatalf("seed %d fixture %d: plan/query disagree\nquery: %s\nplan:\n%sgot  %v\nwant %v",
					seed, fi, q, plan.Render(res.Plan), got, want)
			}
			checked++
		}
	}
	if toppedCount < 10 {
		t.Fatalf("population too easy/too hard: only %d topped queries", toppedCount)
	}
	t.Logf("verified %d plan executions over %d topped queries", checked, toppedCount)
}
