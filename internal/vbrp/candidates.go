package vbrp

import (
	"repro/internal/boundedness"
	"repro/internal/cq"
	"repro/internal/plan"
)

// Candidate is one bounded rewriting found by the full enumeration: a
// conforming plan of size ≤ M that is A-equivalent to the query, together
// with the structural bound on the tuples any run of it fetches from D.
// Different candidates answer the same query but can differ by orders of
// magnitude in realized fetch volume and join order — which one to serve
// is the cost model's decision (plan.Best), not the search's.
type Candidate struct {
	Plan       plan.Node
	FetchBound int64
}

// Candidates solves VBRP(L) like Decide but collects ALL witnessing plans
// (up to Problem.MaxCandidates) instead of stopping at the first, so a
// cost model can pick the cheapest. The enumeration order is by plan size,
// so the collected frontier always contains the smallest witnesses.
//
// Errors mirror Decide: ErrSearchTruncated reports that the shape cap was
// hit — the returned candidates (possibly none) are then an incomplete
// frontier, but each one is still a correct rewriting. Hitting the
// candidate cap is not an error: the search proved "yes" many times over.
func Candidates(q *cq.UCQ, p *Problem) ([]Candidate, error) {
	if p.Lang == plan.LangFO {
		return nil, ErrFOUndecidable
	}
	p.normalize()
	if boundedness.AEmptyUCQ(q, p.S, p.A) {
		if p.M >= 2 {
			return []Candidate{{Plan: emptyPlan()}}, nil
		}
		return nil, nil
	}
	shapes, err := p.Enumerate()
	if err != nil && err != ErrSearchTruncated {
		return nil, err
	}
	truncated := err != nil
	fdOnly := p.A.AllFDs()
	checked := 0
	var out []Candidate
	for _, s := range shapes {
		n, bound, ok := p.equivalentShape(q, s, fdOnly, &checked)
		if !ok {
			continue
		}
		out = append(out, Candidate{Plan: n, FetchBound: bound})
		if len(out) >= p.maxCandidates() {
			return out, nil
		}
	}
	if truncated {
		return out, ErrSearchTruncated
	}
	return out, nil
}
