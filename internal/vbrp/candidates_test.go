package vbrp

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/access"
	"repro/internal/cq"
	"repro/internal/eval"
	"repro/internal/instance"
	"repro/internal/plan"
	"repro/internal/schema"
)

// TestCandidatesAllConformAndMatchDirect is the property test for the full
// enumeration: EVERY candidate in the frontier — not just the selected one
// — must (a) conform to the access schema, (b) evaluate identically to
// direct evaluation of Q on instances satisfying A, and (c) respect its
// own structural fetch bound at runtime. Randomized over constraint
// cardinalities, instance contents and query shape, in the style of the
// PR 2 differential harness.
func TestCandidatesAllConformAndMatchDirect(t *testing.T) {
	const trials = 6
	for trial := 0; trial < trials; trial++ {
		rng := rand.New(rand.NewSource(int64(500 + trial)))
		s := schema.New(
			schema.NewRelation("R", "A", "B"),
			schema.NewRelation("S", "B", "C"),
		)
		n1 := 1 + rng.Intn(5)
		n2 := 1 + rng.Intn(4)
		selR := access.NewConstraint("R", []string{"A"}, []string{"B"}, n1)
		selS := access.NewConstraint("S", []string{"B"}, []string{"C"}, n2)
		allR := access.NewConstraint("R", nil, []string{"A", "B"}, 300)
		a := access.NewSchema(selR, selS, allR)

		vr := cq.NewCQ([]cq.Term{cq.Var("a"), cq.Var("b")}, []cq.Atom{cq.NewAtom("R", cq.Var("a"), cq.Var("b"))})
		vr.Name = "VR"
		views := map[string]*cq.UCQ{"VR": cq.NewUCQ(vr)}

		// Alternate between the single-atom lookup and the 2-hop join.
		var q *cq.CQ
		m := 3
		if trial%2 == 1 {
			q = cq.NewCQ([]cq.Term{cq.Var("c")}, []cq.Atom{
				cq.NewAtom("R", cq.Cst("k"), cq.Var("b")),
				cq.NewAtom("S", cq.Var("b"), cq.Var("c")),
			})
			m = 5
		} else {
			q = cq.NewCQ([]cq.Term{cq.Var("b")}, []cq.Atom{
				cq.NewAtom("R", cq.Cst("k"), cq.Var("b")),
			})
		}
		uq := cq.NewUCQ(q)

		db := randConformingInstance(rng, s, n1, n2)
		if ok, err := db.SatisfiesAll(a); err != nil || !ok {
			t.Fatalf("trial %d: generated instance violates A: %v %v", trial, db.Violations(a), err)
		}

		prob := &Problem{S: s, A: a, Views: views, M: m, Lang: plan.LangCQ, Consts: q.Constants()}
		cands, err := Candidates(uq, prob)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if len(cands) == 0 {
			t.Fatalf("trial %d: the view path guarantees at least one candidate", trial)
		}

		mats, err := eval.Materialize(views, db)
		if err != nil {
			t.Fatal(err)
		}
		ix, err := instance.BuildIndexes(db, a)
		if err != nil {
			t.Fatal(err)
		}
		direct, err := eval.UCQOnDB(uq, &eval.Source{DB: db})
		if err != nil {
			t.Fatal(err)
		}
		for ci, c := range cands {
			rep := plan.Conforms(c.Plan, s, a, views)
			if !rep.Conforms {
				t.Fatalf("trial %d candidate %d does not conform (%s):\n%s", trial, ci, rep.Reason, plan.Render(c.Plan))
			}
			if rep.FetchBound != c.FetchBound {
				t.Fatalf("trial %d candidate %d: bound %d recorded, conformance derives %d", trial, ci, c.FetchBound, rep.FetchBound)
			}
			ix.ResetCounters()
			rows, err := plan.Run(c.Plan, ix, mats)
			if err != nil {
				t.Fatalf("trial %d candidate %d: %v", trial, ci, err)
			}
			if !cq.RowsEqual(rows, direct) {
				t.Fatalf("trial %d candidate %d disagrees with direct evaluation (%d vs %d rows):\n%s",
					trial, ci, len(rows), len(direct), plan.Render(c.Plan))
			}
			if int64(ix.FetchedTuples()) > c.FetchBound {
				t.Fatalf("trial %d candidate %d fetched %d > declared bound %d",
					trial, ci, ix.FetchedTuples(), c.FetchBound)
			}
		}
	}
}

// randConformingInstance draws an instance of R(A,B), S(B,C) that
// satisfies the per-group caps by construction: inserts that would exceed
// a group's distinct-Y budget are skipped.
func randConformingInstance(rng *rand.Rand, s *schema.Schema, n1, n2 int) *instance.Database {
	db := instance.NewDatabase(s)
	groupsR := map[string]map[string]bool{}
	groupsS := map[string]map[string]bool{}
	insert := func(groups map[string]map[string]bool, cap int, rel, x, y string) {
		g := groups[x]
		if g == nil {
			g = map[string]bool{}
			groups[x] = g
		}
		if !g[y] && len(g) >= cap {
			return
		}
		g[y] = true
		db.MustInsert(rel, x, y)
	}
	kRows := rng.Intn(n1 + 1) // possibly zero: Q may be empty
	for i := 0; i < kRows; i++ {
		insert(groupsR, n1, "R", "k", fmt.Sprintf("b%d", rng.Intn(8)))
	}
	for i := 0; i < 40+rng.Intn(40); i++ {
		insert(groupsR, n1, "R", fmt.Sprintf("a%d", rng.Intn(12)), fmt.Sprintf("b%d", rng.Intn(8)))
	}
	for i := 0; i < 30+rng.Intn(30); i++ {
		insert(groupsS, n2, "S", fmt.Sprintf("b%d", rng.Intn(8)), fmt.Sprintf("c%d", rng.Intn(10)))
	}
	return db
}
