package vbrp

import (
	"testing"

	"repro/internal/access"
	"repro/internal/cq"
	"repro/internal/plan"
	"repro/internal/schema"
)

// VBRP+ (Section 6): rewriting a query of L1 into a plan of a richer L2.
// The decider is language-parameterized, so VBRP+(L1, L2) is Decide with
// Lang = L2 on an L1 query.

func TestVBRPPlusCQToUCQ(t *testing.T) {
	// A CQ whose only small plans need a union: Q(x) :- R(y, x) under
	// R(∅ -> (A,B), 4) — here CQ and UCQ plans both exist (fetch all),
	// so the richer language cannot do worse.
	s := schema.New(schema.NewRelation("R", "A", "B"))
	a := access.NewSchema(access.NewConstraint("R", nil, []string{"A", "B"}, 4))
	q := cq.NewCQ([]cq.Term{cq.Var("x")}, []cq.Atom{cq.NewAtom("R", cq.Var("y"), cq.Var("x"))})
	for _, lang := range []plan.Language{plan.LangCQ, plan.LangUCQ, plan.LangPosFO} {
		prob := &Problem{S: s, A: a, M: 3, Lang: lang, Consts: nil, MaxArity: 2, MaxSelectConds: 2}
		dec, err := Decide(cq.NewUCQ(q), prob)
		if err != nil {
			t.Fatalf("%v: %v", lang, err)
		}
		if !dec.Has {
			t.Fatalf("%v: the global-bound fetch plan must exist", lang)
		}
	}
}

// Monotonicity in the target language: if a CQ query has a plan in CQ, it
// has one in every richer L2 (the VBRP+ relaxation never loses plans).
func TestVBRPPlusMonotoneInLanguage(t *testing.T) {
	s := schema.New(schema.NewRelation("R", "A", "B"))
	a := access.NewSchema(access.NewConstraint("R", []string{"A"}, []string{"B"}, 2))
	q := cq.NewCQ([]cq.Term{cq.Var("x")}, []cq.Atom{cq.NewAtom("R", cq.Cst("a"), cq.Var("x"))})
	var prev bool
	for i, lang := range []plan.Language{plan.LangCQ, plan.LangUCQ, plan.LangPosFO} {
		prob := &Problem{S: s, A: a, M: 3, Lang: lang, Consts: q.Constants(), MaxArity: 2, MaxSelectConds: 2}
		dec, err := Decide(cq.NewUCQ(q), prob)
		if err != nil {
			t.Fatal(err)
		}
		if i > 0 && prev && !dec.Has {
			t.Fatalf("plan lost when enriching the language to %v", lang)
		}
		prev = dec.Has
	}
	if !prev {
		t.Fatal("the fixture must have a plan")
	}
}

// The hardness side of Theorem 6.1 is the Example 6.3 suite (FO strictly
// beats UCQ at M=5) in vbrp_test.go; here we check the UCQ-vs-∃FO+ shape:
// a query needing ∪ below π has an ∃FO+ plan but no same-size UCQ plan.
func TestVBRPPlusUnionBelowProjection(t *testing.T) {
	// Q() :- R(y, x) ["does some tuple exist with A in {a, b}?"] — as a
	// Boolean query over two constants:
	//   Q() = ∃x (R("a",x) ∨ R("b",x))
	// UCQ plans may only place ∪ at the top, so π∅ over a union is not a
	// UCQ plan; the union of two Boolean branches is. Both languages can
	// express Q, at different plan shapes; verify the decider finds both
	// and the witnesses respect the union discipline.
	s := schema.New(schema.NewRelation("R", "A", "B"))
	a := access.NewSchema(access.NewConstraint("R", []string{"A"}, []string{"B"}, 2))
	d1 := cq.NewCQ(nil, []cq.Atom{cq.NewAtom("R", cq.Cst("a"), cq.Var("x"))})
	d2 := cq.NewCQ(nil, []cq.Atom{cq.NewAtom("R", cq.Cst("b"), cq.Var("x"))})
	q := cq.NewUCQ(d1, d2)
	for _, lang := range []plan.Language{plan.LangUCQ, plan.LangPosFO} {
		prob := &Problem{S: s, A: a, M: 7, Lang: lang,
			Consts: []string{"a", "b"}, MaxArity: 2, MaxSelectConds: 2}
		dec, err := Decide(q, prob)
		if err != nil {
			t.Fatal(err)
		}
		if !dec.Has {
			t.Fatalf("%v: plan must exist", lang)
		}
		if !plan.InLanguage(dec.Plan, lang) {
			t.Fatalf("%v: witness not in language:\n%s", lang, plan.Render(dec.Plan))
		}
	}
}
