// Package vbrp implements the bounded rewriting problem VBRP(L) of
// Section 3 and its cross-language variant VBRP+(L1, L2) of Section 6:
// given a database schema R, an access schema A, a set V of views, a bound
// M and a query Q, decide whether Q has an M-bounded rewriting in L using
// V under A — and produce the witnessing plan.
//
// The decision procedure mirrors the Σp3 upper-bound algorithm of
// Theorem 3.1: enumerate candidate plans of size at most M (the guess),
// keep those that conform to A (the PNP step, via package boundedness),
// and test A-equivalence with Q (the Πp2 step, via element queries). The
// enumeration works over *positional shapes* — plans whose selections,
// projections and fetch bindings refer to column positions — which
// represent the paper's plans faithfully while making renaming ρ
// unnecessary (names are bookkeeping); any plan using ρ has an equivalent
// shape of no larger size, so deciding over shapes is sound and complete
// for the M-bound.
package vbrp

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"repro/internal/access"
	"repro/internal/cq"
	"repro/internal/plan"
	"repro/internal/schema"
)

// Problem fixes the parameters (R, A, V, M) of a VBRP instance.
type Problem struct {
	S     *schema.Schema
	A     *access.Schema
	Views map[string]*cq.UCQ
	M     int
	Lang  plan.Language // the target plan language (L, or L2 for VBRP+)

	// Consts are the constants plans may use; the definition restricts
	// them to the constants of Q.
	Consts []string

	// Enumeration limits (defaults applied when zero).
	MaxArity       int // maximum node arity considered (default 4)
	MaxSelectConds int // maximum comparisons per σ node (default 4)
	MaxShapes      int // cap on generated shapes; exceeded => ErrSearchTruncated
	MaxCandidates  int // cap on candidates Candidates collects (default 64)
}

// ErrSearchTruncated reports that the shape cap was hit: a "no" answer is
// then unreliable.
var ErrSearchTruncated = fmt.Errorf("vbrp: candidate plan enumeration truncated")

type opKind int

const (
	opConst opKind = iota
	opView
	opFetch
	opProject
	opSelect
	opProduct
	opUnion
	opDiff
)

// shapeCond is a positional selection condition.
type shapeCond struct {
	l      int
	rConst bool
	rPos   int
	rVal   string
	neq    bool
}

// shape is a positional plan candidate.
type shape struct {
	op    opKind
	cst   string
	view  string
	c     *access.Constraint
	bind  []int // fetch: child positions feeding C.X, in C.X order
	proj  []int
	conds []shapeCond
	kids  []*shape

	arity int
	size  int
	canon string
}

func (s *shape) key() string {
	if s.canon != "" {
		return s.canon
	}
	var b strings.Builder
	var rec func(s *shape)
	rec = func(s *shape) {
		fmt.Fprintf(&b, "%d", s.op)
		switch s.op {
		case opConst:
			b.WriteString(s.cst)
		case opView:
			b.WriteString(s.view)
		case opFetch:
			b.WriteString(s.c.Key())
			fmt.Fprintf(&b, "%v", s.bind)
		case opProject:
			fmt.Fprintf(&b, "%v", s.proj)
		case opSelect:
			fmt.Fprintf(&b, "%v", s.conds)
		}
		b.WriteByte('(')
		for _, k := range s.kids {
			rec(k)
			b.WriteByte(',')
		}
		b.WriteByte(')')
	}
	rec(s)
	s.canon = b.String()
	return s.canon
}

func (p *Problem) maxArity() int {
	if p.MaxArity > 0 {
		return p.MaxArity
	}
	return 4
}

func (p *Problem) maxConds() int {
	if p.MaxSelectConds > 0 {
		return p.MaxSelectConds
	}
	return 4
}

func (p *Problem) maxShapes() int {
	if p.MaxShapes > 0 {
		return p.MaxShapes
	}
	return 400_000
}

func (p *Problem) maxCandidates() int {
	if p.MaxCandidates > 0 {
		return p.MaxCandidates
	}
	return 64
}

// viewArity resolves a view's head arity.
func (p *Problem) viewArity(name string) int {
	def := p.Views[name]
	if def == nil || len(def.Disjuncts) == 0 {
		return -1
	}
	return len(def.Disjuncts[0].Head)
}

// Enumerate generates all candidate shapes of size ≤ M in the problem's
// language, deduplicated. It returns ErrSearchTruncated (with the partial
// result) when the cap is exceeded.
func (p *Problem) Enumerate() ([]*shape, error) {
	bySize := make([][]*shape, p.M+1)
	seen := map[string]bool{}
	total := 0
	add := func(s *shape, size int) bool {
		if s.arity > p.maxArity() {
			return true
		}
		k := s.key()
		if seen[k] {
			return true
		}
		if total >= p.maxShapes() {
			return false
		}
		seen[k] = true
		s.size = size
		bySize[size] = append(bySize[size], s)
		total++
		return true
	}

	// Size 1: constants, views, input-free fetches.
	if p.M >= 1 {
		for _, c := range p.Consts {
			if !add(&shape{op: opConst, cst: c, arity: 1}, 1) {
				return flatten(bySize), ErrSearchTruncated
			}
		}
		for name := range p.Views {
			ar := p.viewArity(name)
			if ar < 0 {
				continue
			}
			if !add(&shape{op: opView, view: name, arity: ar}, 1) {
				return flatten(bySize), ErrSearchTruncated
			}
		}
		for _, c := range p.A.Constraints {
			if len(c.X) == 0 {
				if !add(&shape{op: opFetch, c: c, arity: len(c.XY())}, 1) {
					return flatten(bySize), ErrSearchTruncated
				}
			}
		}
	}

	for size := 2; size <= p.M; size++ {
		// Unary operations over shapes of size-1.
		for _, child := range bySize[size-1] {
			for _, s := range p.unaryExtensions(child) {
				if !add(s, size) {
					return flatten(bySize), ErrSearchTruncated
				}
			}
		}
		// Binary operations.
		for ls := 1; ls <= size-2; ls++ {
			rs := size - 1 - ls
			for _, l := range bySize[ls] {
				for _, r := range bySize[rs] {
					for _, s := range p.binaryExtensions(l, r) {
						if !add(s, size) {
							return flatten(bySize), ErrSearchTruncated
						}
					}
				}
			}
		}
	}
	return flatten(bySize), nil
}

func flatten(bySize [][]*shape) []*shape {
	var out []*shape
	for _, ss := range bySize {
		out = append(out, ss...)
	}
	return out
}

// unaryExtensions generates the unary-operation extensions of a shape.
// Several algebraic prunes keep the search complete while cutting volume:
// π over π and σ over σ compose into a single smaller node, so such
// stacks are never generated; contradictory constant selections are
// dropped (a smaller empty plan always exists).
func (p *Problem) unaryExtensions(child *shape) []*shape {
	var out []*shape
	a := child.arity

	// Projections: every proper subset of positions (including the empty
	// projection for Boolean plans), order-normalized ascending. A π child
	// would compose into one node: prune.
	if child.op != opProject {
		for mask := 0; mask < (1 << a); mask++ {
			if mask == (1<<a)-1 && a > 0 {
				continue // identity projection is useless
			}
			var proj []int
			for i := 0; i < a; i++ {
				if mask&(1<<i) != 0 {
					proj = append(proj, i)
				}
			}
			out = append(out, &shape{op: opProject, proj: proj, kids: []*shape{child}, arity: len(proj)})
		}
	}

	// Selections: subsets of candidate conditions up to the cap. A σ child
	// would compose into one node: prune. Cond sets equating one position
	// with two distinct constants are empty plans: prune (a smaller empty
	// plan exists).
	if child.op != opSelect && child.op != opConst {
		var cands []shapeCond
		for i := 0; i < a; i++ {
			for j := i + 1; j < a; j++ {
				cands = append(cands, shapeCond{l: i, rPos: j})
				if p.Lang == plan.LangFO {
					cands = append(cands, shapeCond{l: i, rPos: j, neq: true})
				}
			}
			for _, c := range p.Consts {
				cands = append(cands, shapeCond{l: i, rConst: true, rVal: c})
				if p.Lang == plan.LangFO {
					cands = append(cands, shapeCond{l: i, rConst: true, rVal: c, neq: true})
				}
			}
		}
		maxC := p.maxConds()
		constOf := make(map[int]string, a)
		var pick func(start int, cur []shapeCond)
		pick = func(start int, cur []shapeCond) {
			if len(cur) > 0 {
				conds := append([]shapeCond(nil), cur...)
				out = append(out, &shape{op: opSelect, conds: conds, kids: []*shape{child}, arity: a})
			}
			if len(cur) == maxC {
				return
			}
			for i := start; i < len(cands); i++ {
				c := cands[i]
				if c.rConst && !c.neq {
					if prev, ok := constOf[c.l]; ok && prev != c.rVal {
						continue // contradictory constant equalities
					}
					constOf[c.l] = c.rVal
					pick(i+1, append(cur, c))
					delete(constOf, c.l)
					continue
				}
				pick(i+1, append(cur, c))
			}
		}
		pick(0, nil)
	}

	// Fetches: constraints whose |X| equals the child's arity, with every
	// injective binding of child positions to X attributes.
	for _, c := range p.A.Constraints {
		if len(c.X) == 0 || len(c.X) != a {
			continue
		}
		if len(c.XY()) > p.maxArity() {
			continue
		}
		perms := permutations(a)
		for _, bind := range perms {
			out = append(out, &shape{op: opFetch, c: c, bind: bind, kids: []*shape{child}, arity: len(c.XY())})
		}
	}
	return out
}

// binaryExtensions generates products, unions and differences.
// Associativity prunes keep × and ∪ right-deep (any other association has
// an equal-size equivalent, modulo position remapping); ∪ additionally
// drops identical operands (idempotence) and fixes the operand order of
// adjacent operands via the canonical key (commutativity); x \ x is empty
// (a smaller empty plan exists).
func (p *Problem) binaryExtensions(l, r *shape) []*shape {
	var out []*shape
	if l.arity+r.arity <= p.maxArity() && l.op != opProduct {
		out = append(out, &shape{op: opProduct, kids: []*shape{l, r}, arity: l.arity + r.arity})
	}
	if l.arity == r.arity {
		if p.Lang != plan.LangCQ && l.op != opUnion && l.key() != r.key() {
			next := r.key()
			if h, ok := headOfUnionChain(r); ok {
				next = h
			}
			if l.key() < next {
				out = append(out, &shape{op: opUnion, kids: []*shape{l, r}, arity: l.arity})
			}
		}
		if p.Lang == plan.LangFO && l.key() != r.key() {
			out = append(out, &shape{op: opDiff, kids: []*shape{l, r}, arity: l.arity})
		}
	}
	return out
}

// headOfUnionChain returns the key of the first operand of a right-deep
// union chain, for the commutativity ordering prune.
func headOfUnionChain(s *shape) (string, bool) {
	if s.op != opUnion {
		return "", false
	}
	return s.kids[0].key(), true
}

func permutations(n int) [][]int {
	if n == 0 {
		return [][]int{{}}
	}
	var out [][]int
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	var rec func(k int)
	rec = func(k int) {
		if k == n {
			out = append(out, append([]int(nil), perm...))
			return
		}
		for i := k; i < n; i++ {
			perm[k], perm[i] = perm[i], perm[k]
			rec(k + 1)
			perm[k], perm[i] = perm[i], perm[k]
		}
	}
	rec(0)
	return out
}

// Materialize converts a shape into a named plan; every node's output
// columns receive globally unique generated names.
func (p *Problem) Materialize(s *shape) (plan.Node, error) {
	counter := 0
	freshCols := func(n int) []string {
		out := make([]string, n)
		for i := range out {
			counter++
			out[i] = "n" + strconv.Itoa(counter)
		}
		return out
	}
	var rec func(s *shape) (plan.Node, error)
	rec = func(s *shape) (plan.Node, error) {
		switch s.op {
		case opConst:
			return &plan.Const{Attr: freshCols(1)[0], Val: s.cst}, nil
		case opView:
			ar := p.viewArity(s.view)
			if ar < 0 {
				return nil, fmt.Errorf("vbrp: view %s undefined", s.view)
			}
			return &plan.View{Name: s.view, Cols: freshCols(ar)}, nil
		case opFetch:
			as := freshCols(len(s.c.XY()))
			if len(s.kids) == 0 {
				return &plan.Fetch{C: s.c, As: as}, nil
			}
			child, err := rec(s.kids[0])
			if err != nil {
				return nil, err
			}
			attrs := child.Attrs()
			bind := make([]string, len(s.bind))
			for i, pos := range s.bind {
				bind[i] = attrs[pos]
			}
			return &plan.Fetch{Child: child, C: s.c, Bind: bind, As: as}, nil
		case opProject:
			child, err := rec(s.kids[0])
			if err != nil {
				return nil, err
			}
			attrs := child.Attrs()
			cols := make([]string, len(s.proj))
			for i, pos := range s.proj {
				cols[i] = attrs[pos]
			}
			return &plan.Project{Child: child, Cols: cols}, nil
		case opSelect:
			child, err := rec(s.kids[0])
			if err != nil {
				return nil, err
			}
			attrs := child.Attrs()
			conds := make([]plan.CondItem, len(s.conds))
			for i, c := range s.conds {
				if c.rConst {
					conds[i] = plan.CondItem{L: attrs[c.l], RConst: true, R: c.rVal, Neq: c.neq}
				} else {
					conds[i] = plan.CondItem{L: attrs[c.l], R: attrs[c.rPos], Neq: c.neq}
				}
			}
			return &plan.Select{Child: child, Cond: conds}, nil
		case opProduct, opUnion, opDiff:
			l, err := rec(s.kids[0])
			if err != nil {
				return nil, err
			}
			r, err := rec(s.kids[1])
			if err != nil {
				return nil, err
			}
			switch s.op {
			case opProduct:
				return &plan.Product{L: l, R: r}, nil
			case opUnion:
				return &plan.Union{L: l, R: r}, nil
			default:
				return &plan.Diff{L: l, R: r}, nil
			}
		}
		return nil, fmt.Errorf("vbrp: unknown shape op %d", s.op)
	}
	n, err := rec(s)
	if err != nil {
		return nil, err
	}
	if err := plan.Validate(n, p.S); err != nil {
		return nil, err
	}
	return n, nil
}

// sortConsts normalizes the constant pool.
func (p *Problem) normalize() {
	sort.Strings(p.Consts)
	w := 0
	for i, c := range p.Consts {
		if i == 0 || p.Consts[i-1] != c {
			p.Consts[w] = c
			w++
		}
	}
	p.Consts = p.Consts[:w]
}
