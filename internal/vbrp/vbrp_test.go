package vbrp

import (
	"testing"

	"repro/internal/access"
	"repro/internal/boundedness"
	"repro/internal/cq"
	"repro/internal/eval"
	"repro/internal/instance"
	"repro/internal/plan"
	"repro/internal/schema"
)

// A minimal fixture where a rewriting exists: R(A,B) with R(A->B,2), view
// V(x) = R("a",x), query Q(x) = R("a",x) — the plan is just the view.
func TestDecideFindsViewPlan(t *testing.T) {
	s := schema.New(schema.NewRelation("R", "A", "B"))
	a := access.NewSchema(access.NewConstraint("R", []string{"A"}, []string{"B"}, 2))
	vdef := cq.NewCQ([]cq.Term{cq.Var("x")}, []cq.Atom{cq.NewAtom("R", cq.Cst("a"), cq.Var("x"))})
	q := cq.NewCQ([]cq.Term{cq.Var("x")}, []cq.Atom{cq.NewAtom("R", cq.Cst("a"), cq.Var("x"))})
	prob := &Problem{
		S: s, A: a, Views: map[string]*cq.UCQ{"V": cq.NewUCQ(vdef)},
		M: 1, Lang: plan.LangCQ, Consts: q.Constants(),
	}
	dec, err := Decide(cq.NewUCQ(q), prob)
	if err != nil {
		t.Fatal(err)
	}
	if !dec.Has {
		t.Fatal("Q must have a 1-bounded rewriting (the view itself)")
	}
	if _, ok := dec.Plan.(*plan.View); !ok {
		t.Fatalf("expected a view plan, got\n%s", plan.Render(dec.Plan))
	}
}

func TestDecideFindsFetchPlan(t *testing.T) {
	// Without views: Q(x) = R("a",x) needs const + fetch = 2 nodes.
	s := schema.New(schema.NewRelation("R", "A", "B"))
	a := access.NewSchema(access.NewConstraint("R", []string{"A"}, []string{"B"}, 2))
	q := cq.NewCQ([]cq.Term{cq.Var("x")}, []cq.Atom{cq.NewAtom("R", cq.Cst("a"), cq.Var("x"))})
	prob := &Problem{S: s, A: a, M: 3, Lang: plan.LangCQ, Consts: q.Constants()}
	dec, err := Decide(cq.NewUCQ(q), prob)
	if err != nil {
		t.Fatal(err)
	}
	if !dec.Has {
		t.Fatal("Q must have a 3-bounded rewriting via const + fetch + projection")
	}
	// With M = 1 there is no plan (a fetch needs its input constant).
	prob1 := &Problem{S: s, A: a, M: 1, Lang: plan.LangCQ, Consts: q.Constants()}
	dec1, err := Decide(cq.NewUCQ(q), prob1)
	if err != nil {
		t.Fatal(err)
	}
	if dec1.Has {
		t.Fatalf("no 1-bounded plan should exist, found\n%s", plan.Render(dec1.Plan))
	}
}

func TestDecideRespectsLanguage(t *testing.T) {
	// Q(x) = R("a",x) ∪ R("b",x) needs a union: no CQ plan, but a UCQ one.
	s := schema.New(schema.NewRelation("R", "A", "B"))
	a := access.NewSchema(access.NewConstraint("R", []string{"A"}, []string{"B"}, 2))
	d1 := cq.NewCQ([]cq.Term{cq.Var("x")}, []cq.Atom{cq.NewAtom("R", cq.Cst("a"), cq.Var("x"))})
	d2 := cq.NewCQ([]cq.Term{cq.Var("x")}, []cq.Atom{cq.NewAtom("R", cq.Cst("b"), cq.Var("x"))})
	q := cq.NewUCQ(d1, d2)
	consts := append(d1.Constants(), d2.Constants()...)

	cqProb := &Problem{S: s, A: a, M: 7, Lang: plan.LangCQ, Consts: consts, MaxArity: 2, MaxSelectConds: 2}
	decCQ, err := Decide(q, cqProb)
	if err != nil {
		t.Fatal(err)
	}
	if decCQ.Has {
		t.Fatalf("a union query over disjoint constants has no CQ plan, found\n%s", plan.Render(decCQ.Plan))
	}
	ucqProb := &Problem{S: s, A: a, M: 7, Lang: plan.LangUCQ, Consts: consts, MaxArity: 2, MaxSelectConds: 2}
	decUCQ, err := Decide(q, ucqProb)
	if err != nil {
		t.Fatal(err)
	}
	if !decUCQ.Has {
		t.Fatal("a 7-bounded UCQ plan exists (two fetch branches + union)")
	}
	if !plan.InLanguage(decUCQ.Plan, plan.LangUCQ) {
		t.Fatal("witness must be a UCQ plan")
	}
}

func TestDecideRejectsUnboundedQuery(t *testing.T) {
	// Q(x,y) = R(x,y) has no bounded rewriting: nothing bounds x.
	s := schema.New(schema.NewRelation("R", "A", "B"))
	a := access.NewSchema(access.NewConstraint("R", []string{"A"}, []string{"B"}, 2))
	q := cq.NewCQ([]cq.Term{cq.Var("x"), cq.Var("y")}, []cq.Atom{cq.NewAtom("R", cq.Var("x"), cq.Var("y"))})
	prob := &Problem{S: s, A: a, M: 4, Lang: plan.LangCQ, Consts: nil}
	dec, err := Decide(cq.NewUCQ(q), prob)
	if err != nil {
		t.Fatal(err)
	}
	if dec.Has {
		t.Fatalf("the full scan has no bounded rewriting, found\n%s", plan.Render(dec.Plan))
	}
}

func TestMaximumPlanAlgACQ(t *testing.T) {
	// AlgACQ on the fetchable query: finds the plan via the maximum-plan
	// characterization (Lemma 3.12 / Theorem 4.2).
	s := schema.New(schema.NewRelation("R", "A", "B"))
	a := access.NewSchema(access.NewConstraint("R", []string{"A"}, []string{"B"}, 2))
	q := cq.NewCQ([]cq.Term{cq.Var("x")}, []cq.Atom{cq.NewAtom("R", cq.Cst("a"), cq.Var("x"))})
	if !cq.IsAcyclic(q) {
		t.Fatal("fixture must be acyclic")
	}
	prob := &Problem{S: s, A: a, M: 3, Lang: plan.LangCQ, Consts: q.Constants()}
	dec, err := DecideACQ(q, prob)
	if err != nil {
		t.Fatal(err)
	}
	if !dec.Has {
		t.Fatal("AlgACQ must find the rewriting")
	}
	// And it must agree with the generic decider on the negative case.
	qneg := cq.NewCQ([]cq.Term{cq.Var("x"), cq.Var("y")}, []cq.Atom{cq.NewAtom("R", cq.Var("x"), cq.Var("y"))})
	probNeg := &Problem{S: s, A: a, M: 3, Lang: plan.LangCQ}
	decNeg, err := DecideACQ(qneg, probNeg)
	if err != nil {
		t.Fatal(err)
	}
	if decNeg.Has {
		t.Fatal("AlgACQ must reject the unbounded query")
	}
}

// ---- Example 6.3 ----

func TestEx63SemanticRelations(t *testing.T) {
	e := NewEx63()
	// V2 ≡_A V1 ∧ Q and V3 ≡_A V1 ∪ Q (the paper's key facts).
	v1 := e.Views["V1"].Disjuncts[0]
	v2 := e.Views["V2"].Disjuncts[0]
	v3 := e.Views["V3"].Disjuncts[0]
	conj := v1.Clone()
	conj.Atoms = append(conj.Atoms, renameApart(e.Q, "#q").Atoms...)
	if !boundedness.AEquivalentUCQ(cq.NewUCQ(v2), cq.NewUCQ(conj), e.S, e.A) {
		t.Fatal("V2 ≡_A V1 ∧ Q must hold")
	}
	union := cq.NewUCQ(v1, e.Q)
	if !boundedness.AEquivalentUCQ(cq.NewUCQ(v3), union, e.S, e.A) {
		t.Fatal("V3 ≡_A V1 ∪ Q must hold")
	}
	// Q and V1 are A-incomparable.
	if boundedness.AContainedUCQ(cq.NewUCQ(e.Q), cq.NewUCQ(v1), e.S, e.A) {
		t.Fatal("Q ⋢_A V1")
	}
	if boundedness.AContainedUCQ(cq.NewUCQ(v1), cq.NewUCQ(e.Q), e.S, e.A) {
		t.Fatal("V1 ⋢_A Q")
	}
}

func renameApart(q *cq.CQ, suffix string) *cq.CQ {
	sub := map[string]cq.Term{}
	for _, v := range q.Vars() {
		sub[v] = cq.Var(v + suffix)
	}
	return cq.SubstituteCQ(q, sub)
}

func TestEx63FOPlanIsCorrect(t *testing.T) {
	e := NewEx63()
	p := e.FOPlan()
	if p.Size() != e.M {
		t.Fatalf("the FO plan has %d nodes, want %d", p.Size(), e.M)
	}
	if err := plan.Validate(p, e.S); err != nil {
		t.Fatal(err)
	}
	if !plan.InLanguage(p, plan.LangFO) || plan.InLanguage(p, plan.LangUCQ) {
		t.Fatal("the plan is FO but not UCQ")
	}
	rep := plan.Conforms(p, e.S, e.A, e.Views)
	if !rep.Conforms {
		t.Fatalf("the FO plan must conform (it fetches nothing): %s", rep.Reason)
	}
	// Verify Q(D) = plan(D) on the canonical instances of the paper's
	// argument: the frozen tableaux of Q and of V1.
	for name, src := range map[string]*cq.CQ{"T_Q": e.Q, "T_V1": e.Views["V1"].Disjuncts[0]} {
		tab, ok := cq.Freeze(src)
		if !ok {
			t.Fatalf("%s: freeze failed", name)
		}
		db := instance.NewDatabase(e.S)
		for rel, rows := range tab.Rows {
			for _, row := range rows {
				db.MustInsert(rel, row...)
			}
		}
		if ok, _ := db.SatisfiesAll(e.A); !ok {
			t.Fatalf("%s must satisfy A (paper's argument)", name)
		}
		views, err := eval.Materialize(e.Views, db)
		if err != nil {
			t.Fatal(err)
		}
		ix, err := instance.BuildIndexes(db, e.A)
		if err != nil {
			t.Fatal(err)
		}
		got, err := plan.Run(p, ix, views)
		if err != nil {
			t.Fatal(err)
		}
		want, err := eval.CQOnDB(e.Q, &eval.Source{DB: db})
		if err != nil {
			t.Fatal(err)
		}
		if (len(got) > 0) != (len(want) > 0) {
			t.Fatalf("%s: plan says %v, Q says %v", name, len(got) > 0, len(want) > 0)
		}
	}
}

func TestEx63NoUCQPlan(t *testing.T) {
	e := NewEx63()
	prob := &Problem{
		S: e.S, A: e.A, Views: e.Views, M: e.M,
		Lang:   plan.LangUCQ,
		Consts: e.Q.Constants(),
	}
	dec, err := Decide(cq.NewUCQ(e.Q), prob)
	if err != nil {
		t.Fatal(err)
	}
	if !dec.Exact {
		t.Fatal("the Example 6.3 search must be exhaustive")
	}
	if dec.Has {
		t.Fatalf("Q has no 5-bounded UCQ rewriting (Example 6.3), found\n%s", plan.Render(dec.Plan))
	}
}
