package vbrp

import (
	"repro/internal/access"
	"repro/internal/cq"
	"repro/internal/plan"
	"repro/internal/schema"
)

// Ex63 is the counterexample of Example 6.3: a Boolean CQ Q with three
// Boolean CQ views V1, V2, V3 such that, with M = 5, Q has a 5-bounded
// rewriting in FO — the plan (V3 \ V1) ∪ V2 — but no 5-bounded rewriting
// in UCQ. It separates CQ-to-FO from CQ-to-UCQ bounded rewriting, showing
// UCQ is not "complete" for CQ-to-FO rewriting (Section 6).
type Ex63 struct {
	S     *schema.Schema
	A     *access.Schema
	Q     *cq.CQ
	Views map[string]*cq.UCQ
	M     int
}

// NewEx63 constructs the fixture verbatim from the paper.
func NewEx63() *Ex63 {
	s := schema.New(
		schema.NewRelation("R", "X", "Y", "Z"),
		schema.NewRelation("T", "X", "Y"),
		schema.NewRelation("K1", "X", "Y"),
		schema.NewRelation("K2", "X", "Y"),
		schema.NewRelation("K3", "X", "Y"),
		schema.NewRelation("K4", "X", "Y"),
	)
	a := access.NewSchema(
		access.NewConstraint("T", []string{"X"}, []string{"Y"}, 3),
		access.NewConstraint("K1", []string{"X"}, []string{"Y"}, 1),
		access.NewConstraint("K2", []string{"X"}, []string{"Y"}, 1),
		access.NewConstraint("K3", []string{"X"}, []string{"Y"}, 1),
		access.NewConstraint("K4", []string{"X"}, []string{"Y"}, 1),
	)
	v := cq.Var
	k := cq.Cst

	// Q'(x1,x2,x3,x4) = ∃y' ( T(y',x1) ∧ T(y',x2) ∧ T(y',x3) ∧ T(y',x4)
	//   ∧ K1(x1,1) ∧ K1(x2,2) ∧ K2(x3,1) ∧ K2(x4,2)
	//   ∧ K3(x1,1) ∧ K3(x4,2) ∧ K4(x2,1) ∧ K4(x3,2) ).
	qprime := func(suffix string, x1, x2, x3, x4 cq.Term) []cq.Atom {
		yp := v("yp" + suffix)
		return []cq.Atom{
			cq.NewAtom("T", yp, x1),
			cq.NewAtom("T", yp, x2),
			cq.NewAtom("T", yp, x3),
			cq.NewAtom("T", yp, x4),
			cq.NewAtom("K1", x1, k("1")),
			cq.NewAtom("K1", x2, k("2")),
			cq.NewAtom("K2", x3, k("1")),
			cq.NewAtom("K2", x4, k("2")),
			cq.NewAtom("K3", x1, k("1")),
			cq.NewAtom("K3", x4, k("2")),
			cq.NewAtom("K4", x2, k("1")),
			cq.NewAtom("K4", x3, k("2")),
		}
	}

	// Q() = ∃x,y,z1,z2 ( R(x,y,z1) ∧ R(x,y,z2) ∧ Q'(y,z1,y,z2) ).
	qAtoms := []cq.Atom{
		cq.NewAtom("R", v("x"), v("y"), v("z1")),
		cq.NewAtom("R", v("x"), v("y"), v("z2")),
	}
	qAtoms = append(qAtoms, qprime("q", v("y"), v("z1"), v("y"), v("z2"))...)
	q := cq.NewCQ(nil, qAtoms)
	q.Name = "Q63"

	// V1() = ∃x,y,z1,z2 ( R(x,z1,y) ∧ R(x,z2,y) ∧ Q'(z1,y,z2,y) ).
	v1Atoms := []cq.Atom{
		cq.NewAtom("R", v("x"), v("z1"), v("y")),
		cq.NewAtom("R", v("x"), v("z2"), v("y")),
	}
	v1Atoms = append(v1Atoms, qprime("v1", v("z1"), v("y"), v("z2"), v("y"))...)
	v1 := cq.NewCQ(nil, v1Atoms)
	v1.Name = "V1"

	// V2() = V-pattern of Q conjoined with the V1 pattern (V2 ≡_A V1 ∧ Q).
	var v2Atoms []cq.Atom
	v2Atoms = append(v2Atoms,
		cq.NewAtom("R", v("x"), v("y1"), v("za")),
		cq.NewAtom("R", v("x"), v("y1"), v("zb")),
	)
	v2Atoms = append(v2Atoms, qprime("v2a", v("y1"), v("za"), v("y1"), v("zb"))...)
	v2Atoms = append(v2Atoms,
		cq.NewAtom("R", v("x1"), v("zc"), v("y2")),
		cq.NewAtom("R", v("x1"), v("zd"), v("y2")),
	)
	v2Atoms = append(v2Atoms, qprime("v2b", v("zc"), v("y2"), v("zd"), v("y2"))...)
	v2 := cq.NewCQ(nil, v2Atoms)
	v2.Name = "V2"

	// V3() = ∃x,y1,y2,z1,z2 ( R(x,y1,z1) ∧ R(x,y2,z2) ∧ Q'(y1,z1,y2,z2) )
	// (V3 ≡_A V1 ∪ Q).
	v3Atoms := []cq.Atom{
		cq.NewAtom("R", v("x"), v("y1"), v("z1")),
		cq.NewAtom("R", v("x"), v("y2"), v("z2")),
	}
	v3Atoms = append(v3Atoms, qprime("v3", v("y1"), v("z1"), v("y2"), v("z2"))...)
	v3 := cq.NewCQ(nil, v3Atoms)
	v3.Name = "V3"

	return &Ex63{
		S: s, A: a, Q: q,
		Views: map[string]*cq.UCQ{
			"V1": cq.NewUCQ(v1),
			"V2": cq.NewUCQ(v2),
			"V3": cq.NewUCQ(v3),
		},
		M: 5,
	}
}

// FOPlan returns the paper's 5-bounded FO plan (V3 \ V1) ∪ V2.
func (e *Ex63) FOPlan() plan.Node {
	return &plan.Union{
		L: &plan.Diff{
			L: &plan.View{Name: "V3", Cols: nil},
			R: &plan.View{Name: "V1", Cols: nil},
		},
		R: &plan.View{Name: "V2", Cols: nil},
	}
}
