package vbrp

import (
	"fmt"

	"repro/internal/boundedness"
	"repro/internal/chase"
	"repro/internal/cq"
	"repro/internal/plan"
)

// Decision is the result of a VBRP decision.
type Decision struct {
	Has     bool      // an M-bounded rewriting exists
	Plan    plan.Node // a witnessing plan (nil when Has is false)
	Checked int       // candidate plans examined
	Exact   bool      // false when the search was truncated (a "no" is unreliable)
}

// Decide solves VBRP(L) / VBRP+(L1, L2) for a UCQ query (CQ is a singleton
// union; ∃FO+ queries are converted by fo.ToUCQ first): it enumerates
// candidate plans of size ≤ M in the problem's language, discards those
// not conforming to A, and tests A-equivalence of the expressed query Q_ξ
// with Q via element queries. This is the Σp3 procedure of Theorem 3.1.
//
// The problem's language must be CQ, UCQ or ∃FO+ (A-equivalence of FO
// plans is undecidable, Theorem 3.1(2); see DecideFOApprox).
func Decide(q *cq.UCQ, p *Problem) (Decision, error) {
	if p.Lang == plan.LangFO {
		return Decision{}, ErrFOUndecidable
	}
	p.normalize()
	// Fast path: Q ≡_A ∅ is answered by the (2-node) empty plan; the
	// enumeration prunes redundant empty plans, so handle it here.
	if boundedness.AEmptyUCQ(q, p.S, p.A) {
		if p.M >= 2 {
			return Decision{Has: true, Exact: true, Plan: emptyPlan()}, nil
		}
		return Decision{Exact: true}, nil
	}
	shapes, err := p.Enumerate()
	exact := err == nil
	if err != nil && err != ErrSearchTruncated {
		return Decision{}, err
	}
	dec := Decision{Exact: exact}
	fdOnly := p.A.AllFDs()
	for _, s := range shapes {
		n, _, ok := p.equivalentShape(q, s, fdOnly, &dec.Checked)
		if ok {
			dec.Has = true
			dec.Plan = n
			return dec, nil
		}
	}
	return dec, nil
}

// equivalentShape materializes one candidate shape and runs the
// conformance (PNP) and A-equivalence (Πp2) steps against Q, returning the
// plan and its structural fetch bound when both hold. checked counts the
// shapes that reached the conformance test.
func (p *Problem) equivalentShape(q *cq.UCQ, s *shape, fdOnly bool, checked *int) (plan.Node, int64, bool) {
	n, err := p.Materialize(s)
	if err != nil {
		return nil, 0, false
	}
	if !plan.InLanguage(n, p.Lang) {
		return nil, 0, false
	}
	*checked++
	rep := plan.Conforms(n, p.S, p.A, p.Views)
	if !rep.Conforms {
		return nil, 0, false
	}
	u := plan.NewUnfolder(p.S, p.Views)
	qxi, err := u.UCQ(n)
	if err != nil {
		return nil, 0, false
	}
	equiv := false
	if fdOnly && len(qxi.Disjuncts) == 1 && len(q.Disjuncts) == 1 {
		// Corollary 4.4 / Proposition 4.5 fast path: chase-based
		// A-equivalence under FD-shaped constraints.
		equiv = chase.AEquivalentFD(q.Disjuncts[0], qxi.Disjuncts[0], p.S, p.A)
	} else {
		equiv = boundedness.AEquivalentUCQ(q, qxi, p.S, p.A)
	}
	return n, rep.FetchBound, equiv
}

// DecideBoolean decides VBRP for a Boolean query expressed as a UCQ with
// empty heads. The empty plan (Q ≡_A ∅) is treated as available at every
// M ≥ 0, matching the paper's use of "the trivial plan that always
// returns ∅" in the Theorem 3.11 and 4.1 arguments.
func DecideBoolean(q *cq.UCQ, p *Problem) (Decision, error) {
	if boundedness.AEmptyUCQ(q, p.S, p.A) {
		return Decision{Has: true, Exact: true, Plan: emptyPlan()}, nil
	}
	return Decide(q, p)
}

// ErrFOUndecidable reports a request for the exact decision over FO
// plans, which Theorem 3.1(2) rules out; use DecideFOApprox.
var ErrFOUndecidable = fmt.Errorf("vbrp: exact decision for FO plans is undecidable; use DecideFOApprox")

// emptyPlan is a canonical always-empty plan: σ contradictory over a
// constant.
func emptyPlan() plan.Node {
	return &plan.Select{
		Child: &plan.Const{Attr: "e", Val: "0"},
		Cond:  []plan.CondItem{{L: "e", RConst: true, R: "1"}},
	}
}

// MaximumPlan implements AlgMP of Theorem 4.2: among the conforming
// candidate plans that are A-contained in Q, find the unique maximum one
// up to A-equivalence. It returns (nil, false) when no candidate survives
// or the maximum is not unique.
func MaximumPlan(q *cq.UCQ, p *Problem) (plan.Node, bool, error) {
	p.normalize()
	shapes, err := p.Enumerate()
	if err != nil && err != ErrSearchTruncated {
		return nil, false, err
	}
	type cand struct {
		n   plan.Node
		qxi *cq.UCQ
	}
	var cands []cand
	for _, s := range shapes {
		n, err := p.Materialize(s)
		if err != nil {
			continue
		}
		if !plan.InLanguage(n, p.Lang) {
			continue
		}
		rep := plan.Conforms(n, p.S, p.A, p.Views)
		if !rep.Conforms {
			continue
		}
		u := plan.NewUnfolder(p.S, p.Views)
		qxi, err := u.UCQ(n)
		if err != nil {
			continue
		}
		// Step (3): keep plans with ξ ⊑_A Q.
		if !boundedness.AContainedUCQ(qxi, q, p.S, p.A) {
			continue
		}
		cands = append(cands, cand{n, qxi})
	}
	if len(cands) == 0 {
		return nil, false, nil
	}
	// Step (4): discard plans strictly below another candidate.
	var maxima []cand
	for i, a := range cands {
		dominated := false
		for j, b := range cands {
			if i == j {
				continue
			}
			ab := boundedness.AContainedUCQ(a.qxi, b.qxi, p.S, p.A)
			ba := boundedness.AContainedUCQ(b.qxi, a.qxi, p.S, p.A)
			if ab && !ba {
				dominated = true
				break
			}
		}
		if !dominated {
			maxima = append(maxima, a)
		}
	}
	// Step (5): all maxima must be A-equivalent.
	for i := 1; i < len(maxima); i++ {
		if !boundedness.AEquivalentUCQ(maxima[0].qxi, maxima[i].qxi, p.S, p.A) {
			return nil, false, nil
		}
	}
	return maxima[0].n, true, nil
}

// DecideACQ implements AlgACQ (Theorem 4.2): compute the unique maximum
// plan; Q has an M-bounded rewriting iff the maximum plan exists and is
// A-equivalent to Q (by Lemma 3.12).
func DecideACQ(q *cq.CQ, p *Problem) (Decision, error) {
	if !cq.IsAcyclic(q) {
		return Decision{}, fmt.Errorf("vbrp: DecideACQ requires an acyclic query")
	}
	uq := cq.NewUCQ(q)
	if boundedness.AEmptyUCQ(uq, p.S, p.A) {
		return Decision{Has: true, Exact: true, Plan: emptyPlan()}, nil
	}
	mp, ok, err := MaximumPlan(uq, p)
	if err != nil {
		return Decision{}, err
	}
	if !ok {
		return Decision{Exact: true}, nil
	}
	u := plan.NewUnfolder(p.S, p.Views)
	qxi, err := u.UCQ(mp)
	if err != nil {
		return Decision{}, err
	}
	if boundedness.AContainedUCQ(uq, qxi, p.S, p.A) {
		return Decision{Has: true, Exact: true, Plan: mp}, nil
	}
	return Decision{Exact: true}, nil
}
