package parse

import (
	"testing"

	"repro/internal/cq"
)

func TestParseConstraint(t *testing.T) {
	c, err := Constraint("movie(studio, release -> mid, 100)")
	if err != nil {
		t.Fatal(err)
	}
	if c.Rel != "movie" || c.N != 100 {
		t.Fatalf("got %v", c)
	}
	if len(c.X) != 2 || len(c.Y) != 1 {
		t.Fatalf("got X=%v Y=%v", c.X, c.Y)
	}
	// Empty X.
	c2, err := Constraint("vip(-> phone, 50)")
	if err != nil {
		t.Fatal(err)
	}
	if len(c2.X) != 0 || c2.Y[0] != "phone" || c2.N != 50 {
		t.Fatalf("got %v", c2)
	}
	for _, bad := range []string{"movie(a, b)", "movie(a -> b)", "(a -> b, 3)", "m(a -> b, x)"} {
		if _, err := Constraint(bad); err == nil {
			t.Fatalf("constraint %q should not parse", bad)
		}
	}
}

func TestParseQuery(t *testing.T) {
	q, err := Query(`Q0(mid) :- movie(mid, y, "Universal", "2014"), rating(mid, "5"), y = "x".`)
	if err != nil {
		t.Fatal(err)
	}
	if q.Name != "Q0" || len(q.Head) != 1 || len(q.Atoms) != 2 || len(q.Eqs) != 1 {
		t.Fatalf("got %s", q)
	}
	if !q.Atoms[0].Args[2].Const || q.Atoms[0].Args[2].Val != "Universal" {
		t.Fatalf("constant not parsed: %v", q.Atoms[0])
	}
	if q.Atoms[0].Args[0].Const {
		t.Fatal("mid must be a variable")
	}
	// Boolean query.
	b, err := Query("B() :- edge(x, y)")
	if err != nil {
		t.Fatal(err)
	}
	if len(b.Head) != 0 || len(b.Atoms) != 1 {
		t.Fatalf("got %s", b)
	}
}

func TestParseQueryErrors(t *testing.T) {
	for _, bad := range []string{
		"Q(x) movie(x)",           // missing :-
		"Q(x) :- movie(x",         // unbalanced
		`Q(x) :- movie(x, "y)`,    // unbalanced quote
		"Q(x) :- mo vie(x)",       // bad name
		"Q(x) :- movie(x, 1bad$)", // bad term
	} {
		if _, err := Query(bad); err == nil {
			t.Fatalf("query %q should not parse", bad)
		}
	}
}

func TestParseProgram(t *testing.T) {
	prog := `
# the Example 1.1 workload
movie(studio, release -> mid, 100)
rating(mid -> rank, 1)

Q0(mid) :- person(p, n, "NASA"), movie(mid, y, "Universal", "2014"), like(p, mid, "movie"), rating(mid, "5").
V1(mid) :- person(p, n, "NASA"), movie(mid, y, s, r), like(p, mid, "movie").
U(x) :- edge("a", x).
U(x) :- edge("b", x).
`
	p, err := ParseProgram(prog)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Constraints.Constraints) != 2 {
		t.Fatalf("constraints: %v", p.Constraints)
	}
	if len(p.Order) != 3 {
		t.Fatalf("order: %v", p.Order)
	}
	if len(p.Queries["U"].Disjuncts) != 2 {
		t.Fatal("U must be a 2-disjunct UCQ")
	}
	if len(p.Queries["Q0"].Disjuncts[0].Atoms) != 4 {
		t.Fatalf("Q0 atoms: %v", p.Queries["Q0"])
	}
}

func TestParseRoundTripSemantics(t *testing.T) {
	// Parsed Q0 must be classically equivalent to the programmatic Q0.
	q, err := Query(`Q0(mid) :- person(p, n, "NASA"), movie(mid, y, "Universal", "2014"), like(p, mid, "movie"), rating(mid, "5")`)
	if err != nil {
		t.Fatal(err)
	}
	want := cq.NewCQ([]cq.Term{cq.Var("mid")}, []cq.Atom{
		cq.NewAtom("person", cq.Var("xp"), cq.Var("xp2"), cq.Cst("NASA")),
		cq.NewAtom("movie", cq.Var("mid"), cq.Var("ym"), cq.Cst("Universal"), cq.Cst("2014")),
		cq.NewAtom("like", cq.Var("xp"), cq.Var("mid"), cq.Cst("movie")),
		cq.NewAtom("rating", cq.Var("mid"), cq.Cst("5")),
	})
	if !cq.Equivalent(q, want) {
		t.Fatal("parsed query must be equivalent to the programmatic one")
	}
}
