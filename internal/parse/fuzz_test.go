package parse

import (
	"strings"
	"testing"

	"repro/internal/cq"
)

// renderQuery prints a CQ back in the surface syntax, for round-trip
// checking (Term/Atom String() already use the parser's notation).
func renderQuery(q *cq.CQ) string {
	var b strings.Builder
	b.WriteString(cq.Atom{Rel: q.Name, Args: q.Head}.String())
	b.WriteString(" :- ")
	parts := make([]string, 0, len(q.Atoms)+len(q.Eqs))
	for _, a := range q.Atoms {
		parts = append(parts, a.String())
	}
	for _, e := range q.Eqs {
		parts = append(parts, e.String())
	}
	b.WriteString(strings.Join(parts, ", "))
	b.WriteString(".")
	return b.String()
}

// FuzzQuery checks that Query never panics, and that successful parses
// round-trip: render(parse(s)) re-parses to a query rendering identically.
func FuzzQuery(f *testing.F) {
	for _, seed := range []string{
		`Q(mid) :- movie(mid, y, "Universal", "2014"), rating(mid, "5").`,
		`Q(x) :- R(x, y), y = "c".`,
		`Q(x, x) :- R(x, x), S(x), x = z.`,
		`Q() :- R().`,
		`V1(mid) :- person(xp, xp2, "NASA"), like(xp, mid, "movie")`,
		`Q(x) :- R(x, "a,b"), S("((")`,
		`Q(x) :- R(x), "c" = "c".`,
		`Q(α) :- R(α, β_2).`,
		`Q(x) :- R(x), x = y, y = "v".`,
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		q, err := Query(s)
		if err != nil {
			return
		}
		if q == nil {
			t.Fatalf("nil query with nil error for %q", s)
		}
		r1 := renderQuery(q)
		q2, err := Query(r1)
		if err != nil {
			t.Fatalf("render of parsed query does not re-parse: %q -> %q: %v", s, r1, err)
		}
		if r2 := renderQuery(q2); r1 != r2 {
			t.Fatalf("render not a fixpoint: %q -> %q -> %q", s, r1, r2)
		}
	})
}

// FuzzConstraint checks that Constraint never panics and successful
// parses round-trip through the paper-notation String().
func FuzzConstraint(f *testing.F) {
	for _, seed := range []string{
		"movie(studio, release -> mid, 100)",
		"rating(mid -> rank, 1)",
		"vip(-> phone, 50)",
		"r(a, a -> b, c, 3)",
		"r( -> x, 0)",
		"r(x -> y, -17)",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		c, err := Constraint(s)
		if err != nil {
			return
		}
		if c == nil {
			t.Fatalf("nil constraint with nil error for %q", s)
		}
		// NewConstraint normalizes (sorts, dedupes) X and Y, so String()
		// is canonical: parse(String()) must reproduce it exactly.
		c2, err := Constraint(c.String())
		if err != nil {
			t.Fatalf("render of parsed constraint does not re-parse: %q -> %q: %v", s, c, err)
		}
		if c.String() != c2.String() {
			t.Fatalf("constraint round trip: %q -> %q -> %q", s, c, c2)
		}
	})
}

// FuzzProgram checks that whole-program parsing never panics and that the
// declared invariants hold on success (arity-consistent UCQs, Order
// matching Queries).
func FuzzProgram(f *testing.F) {
	for _, seed := range []string{
		"rel movie(mid, mname, studio, release)\nQ(m) :- movie(m, n, s, r).\nmovie(studio -> mid, 10)",
		"# comment\n% other comment\n\nQ(x) :- R(x).\nQ(y) :- S(y).",
		"rel r(a)\nr(-> a, 2)",
		"Q(x) :- R(x).\nbad line",
		"rel r(a)\nrel r(a)",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		p, err := ParseProgram(s)
		if err != nil {
			return
		}
		if len(p.Order) != len(p.Queries) {
			t.Fatalf("Order has %d names, Queries %d", len(p.Order), len(p.Queries))
		}
		for _, name := range p.Order {
			u, ok := p.Queries[name]
			if !ok {
				t.Fatalf("Order names unknown query %q", name)
			}
			for _, d := range u.Disjuncts {
				if len(d.Head) != len(u.Disjuncts[0].Head) {
					t.Fatalf("query %q: disjunct arity drift survived parsing", name)
				}
			}
		}
	})
}
