// Package parse implements a small text syntax for conjunctive queries,
// views and access constraints, used by the command-line tools and tests:
//
//	query:       Q(mid) :- movie(mid, y, "Universal", "2014"), rating(mid, "5").
//	union:       two query lines with the same name form a UCQ
//	equality:    Q(x) :- R(x, y), y = "c".
//	constraint:  movie(studio, release -> mid, 100)
//	             rating(mid -> rank, 1)
//	             vip(-> phone, 50)            (empty X)
//	relation:    rel movie(mid, mname, studio, release)
//
// Identifiers are letters/digits/underscores; quoted strings are constants;
// bare identifiers in atom arguments are variables.
package parse

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"

	"repro/internal/access"
	"repro/internal/cq"
	"repro/internal/schema"
)

// Constraint parses an access constraint of the form
// "rel(x1, x2 -> y1, y2, N)". The paper-notation rendering of
// access.Constraint.String — "rel((x1,x2) -> (y1,y2), N)", with ∅ for an
// empty X — is also accepted, so constraints round-trip through String.
// Attribute names must be identifiers.
func Constraint(s string) (*access.Constraint, error) {
	s = strings.TrimSpace(s)
	open := strings.IndexByte(s, '(')
	if open < 0 || !strings.HasSuffix(s, ")") {
		return nil, fmt.Errorf("parse: constraint %q: want rel(X -> Y, N)", s)
	}
	rel := strings.TrimSpace(s[:open])
	if !isIdent(rel) {
		return nil, fmt.Errorf("parse: constraint %q: bad relation name %q", s, rel)
	}
	body := s[open+1 : len(s)-1]
	arrow := strings.Index(body, "->")
	if arrow < 0 {
		return nil, fmt.Errorf("parse: constraint %q: missing ->", s)
	}
	xPart := strings.TrimSpace(body[:arrow])
	rest := strings.TrimSpace(body[arrow+2:])
	comma := strings.LastIndexByte(rest, ',')
	if comma < 0 {
		return nil, fmt.Errorf("parse: constraint %q: missing bound N", s)
	}
	yPart := strings.TrimSpace(rest[:comma])
	nPart := strings.TrimSpace(rest[comma+1:])
	n, err := strconv.Atoi(nPart)
	if err != nil {
		return nil, fmt.Errorf("parse: constraint %q: bad bound %q", s, nPart)
	}
	x, err := splitIdents(xPart)
	if err != nil {
		return nil, fmt.Errorf("parse: constraint %q: %w", s, err)
	}
	y, err := splitIdents(yPart)
	if err != nil {
		return nil, fmt.Errorf("parse: constraint %q: %w", s, err)
	}
	return access.NewConstraint(rel, x, y, n), nil
}

// splitIdents parses a comma-separated attribute list, optionally wrapped
// in one pair of parentheses (the String() notation); "∅" is the empty
// list.
func splitIdents(s string) ([]string, error) {
	s = strings.TrimSpace(s)
	if strings.HasPrefix(s, "(") && strings.HasSuffix(s, ")") {
		s = strings.TrimSpace(s[1 : len(s)-1])
	}
	if s == "" || s == "∅" {
		return nil, nil
	}
	parts := strings.Split(s, ",")
	out := make([]string, 0, len(parts))
	for _, p := range parts {
		p = strings.TrimSpace(p)
		if p == "" {
			continue
		}
		if !isIdent(p) {
			return nil, fmt.Errorf("bad attribute name %q", p)
		}
		out = append(out, p)
	}
	return out, nil
}

// Query parses one CQ rule "Name(h1, h2) :- atom1, atom2, x = \"c\"." (the
// trailing period is optional).
func Query(s string) (*cq.CQ, error) {
	s = strings.TrimSpace(strings.TrimSuffix(strings.TrimSpace(s), "."))
	sep := strings.Index(s, ":-")
	if sep < 0 {
		return nil, fmt.Errorf("parse: query %q: missing :-", s)
	}
	headStr := strings.TrimSpace(s[:sep])
	bodyStr := strings.TrimSpace(s[sep+2:])

	name, headTerms, err := parseAtomShape(headStr)
	if err != nil {
		return nil, fmt.Errorf("parse: query head: %w", err)
	}
	q := &cq.CQ{Name: name, Head: headTerms}

	lits, err := splitTopLevel(bodyStr)
	if err != nil {
		return nil, err
	}
	for _, lit := range lits {
		lit = strings.TrimSpace(lit)
		if lit == "" {
			continue
		}
		if eq := findEquals(lit); eq >= 0 {
			l, err := parseTerm(strings.TrimSpace(lit[:eq]))
			if err != nil {
				return nil, err
			}
			r, err := parseTerm(strings.TrimSpace(lit[eq+1:]))
			if err != nil {
				return nil, err
			}
			q.Eqs = append(q.Eqs, cq.Equality{L: l, R: r})
			continue
		}
		rel, args, err := parseAtomShape(lit)
		if err != nil {
			return nil, err
		}
		q.Atoms = append(q.Atoms, cq.Atom{Rel: rel, Args: args})
	}
	return q, nil
}

// Program parses a multi-line program: query rules (grouped into UCQs by
// name) and constraints (lines containing "->" but no ":-"). Comment lines
// start with '#' or '%'.
type Program struct {
	Queries     map[string]*cq.UCQ
	Constraints *access.Schema
	Schema      *schema.Schema
	Order       []string // query names in first-appearance order
}

// ParseProgram parses a whole program text.
func ParseProgram(text string) (*Program, error) {
	p := &Program{
		Queries:     map[string]*cq.UCQ{},
		Constraints: access.NewSchema(),
		Schema:      schema.New(),
	}
	for lineNo, line := range strings.Split(text, "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") || strings.HasPrefix(line, "%") {
			continue
		}
		switch {
		case strings.HasPrefix(line, "rel "):
			name, terms, err := parseAtomShape(strings.TrimSpace(line[4:]))
			if err != nil {
				return nil, fmt.Errorf("line %d: %w", lineNo+1, err)
			}
			if len(terms) == 0 {
				return nil, fmt.Errorf("line %d: relation %s needs at least one attribute", lineNo+1, name)
			}
			// Guard everything schema.NewRelation panics on: the schema
			// package treats bad relation schemas as programmer error, but
			// here they are untrusted input.
			attrs := make([]string, len(terms))
			seen := make(map[string]bool, len(terms))
			for i, t := range terms {
				if t.Const {
					return nil, fmt.Errorf("line %d: relation attributes must be identifiers", lineNo+1)
				}
				if seen[t.Val] {
					return nil, fmt.Errorf("line %d: relation %s has duplicate attribute %s", lineNo+1, name, t.Val)
				}
				seen[t.Val] = true
				attrs[i] = t.Val
			}
			if p.Schema.Has(name) {
				return nil, fmt.Errorf("line %d: relation %s declared twice", lineNo+1, name)
			}
			p.Schema.Add(schema.NewRelation(name, attrs...))
		case strings.Contains(line, ":-"):
			q, err := Query(line)
			if err != nil {
				return nil, fmt.Errorf("line %d: %w", lineNo+1, err)
			}
			u, ok := p.Queries[q.Name]
			if !ok {
				u = &cq.UCQ{Name: q.Name}
				p.Queries[q.Name] = u
				p.Order = append(p.Order, q.Name)
			}
			if len(u.Disjuncts) > 0 && len(u.Disjuncts[0].Head) != len(q.Head) {
				return nil, fmt.Errorf("line %d: disjunct arity mismatch for %s", lineNo+1, q.Name)
			}
			u.Disjuncts = append(u.Disjuncts, q)
		case strings.Contains(line, "->"):
			c, err := Constraint(line)
			if err != nil {
				return nil, fmt.Errorf("line %d: %w", lineNo+1, err)
			}
			p.Constraints.Add(c)
		default:
			return nil, fmt.Errorf("line %d: unrecognized statement %q", lineNo+1, line)
		}
	}
	return p, nil
}

// parseAtomShape parses "name(arg1, arg2, ...)" into the name and terms.
func parseAtomShape(s string) (string, []cq.Term, error) {
	s = strings.TrimSpace(s)
	open := strings.IndexByte(s, '(')
	if open < 0 || !strings.HasSuffix(s, ")") {
		return "", nil, fmt.Errorf("bad atom %q", s)
	}
	name := strings.TrimSpace(s[:open])
	if !isIdent(name) {
		return "", nil, fmt.Errorf("bad relation name %q", name)
	}
	inner := s[open+1 : len(s)-1]
	if strings.TrimSpace(inner) == "" {
		return name, nil, nil
	}
	argStrs, err := splitArgs(inner)
	if err != nil {
		return "", nil, err
	}
	args := make([]cq.Term, len(argStrs))
	for i, a := range argStrs {
		t, err := parseTerm(strings.TrimSpace(a))
		if err != nil {
			return "", nil, err
		}
		args[i] = t
	}
	return name, args, nil
}

func parseTerm(s string) (cq.Term, error) {
	if len(s) >= 2 && s[0] == '"' && s[len(s)-1] == '"' {
		return cq.Cst(s[1 : len(s)-1]), nil
	}
	if isIdent(s) {
		return cq.Var(s), nil
	}
	return cq.Term{}, fmt.Errorf("bad term %q (variables are identifiers, constants are quoted)", s)
}

func isIdent(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		if unicode.IsLetter(r) || r == '_' || (i > 0 && unicode.IsDigit(r)) {
			continue
		}
		return false
	}
	return true
}

// splitTopLevel splits a rule body on commas outside parentheses/quotes.
func splitTopLevel(s string) ([]string, error) {
	var out []string
	depth := 0
	inStr := false
	start := 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '"':
			inStr = !inStr
		case '(':
			if !inStr {
				depth++
			}
		case ')':
			if !inStr {
				depth--
				if depth < 0 {
					return nil, fmt.Errorf("parse: unbalanced parentheses in %q", s)
				}
			}
		case ',':
			if !inStr && depth == 0 {
				out = append(out, s[start:i])
				start = i + 1
			}
		}
	}
	if depth != 0 || inStr {
		return nil, fmt.Errorf("parse: unbalanced parentheses or quotes in %q", s)
	}
	out = append(out, s[start:])
	return out, nil
}

// splitArgs splits atom arguments on commas outside quotes.
func splitArgs(s string) ([]string, error) {
	var out []string
	inStr := false
	start := 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '"':
			inStr = !inStr
		case ',':
			if !inStr {
				out = append(out, s[start:i])
				start = i + 1
			}
		}
	}
	if inStr {
		return nil, fmt.Errorf("parse: unbalanced quotes in %q", s)
	}
	out = append(out, s[start:])
	return out, nil
}

// findEquals locates a top-level '=' outside quotes; -1 if none.
func findEquals(s string) int {
	inStr := false
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '"':
			inStr = !inStr
		case '=':
			if !inStr {
				return i
			}
		}
	}
	return -1
}
