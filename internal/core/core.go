// Package core gathers the paper's primary contribution under one import:
// the bounded-rewriting decision machinery (VBRP, Sections 3-4 and 6), the
// boundedness theory it stands on (element queries, BOP, A-equivalence),
// and the effective syntax that makes it practical (topped and
// size-bounded queries, Section 5).
//
// The implementations live in the sibling packages boundedness, vbrp and
// topped; core re-exports the entry points so that callers of "the
// algorithm of the paper" need a single import. The repository-root
// package repro additionally bundles storage and evaluation into a
// user-facing facade.
package core

import (
	"repro/internal/boundedness"
	"repro/internal/topped"
	"repro/internal/vbrp"
)

// Decision procedures (Sections 3, 4, 6).
type (
	// VBRPProblem fixes the parameters (R, A, V, M, L) of a bounded
	// rewriting instance.
	VBRPProblem = vbrp.Problem
	// VBRPDecision is the decision outcome with the witnessing plan.
	VBRPDecision = vbrp.Decision
)

// Decision entry points.
var (
	// DecideVBRP is the exact Σp3-style decision procedure (Theorem 3.1).
	DecideVBRP = vbrp.Decide
	// DecideVBRPBoolean handles Boolean queries including the empty plan.
	DecideVBRPBoolean = vbrp.DecideBoolean
	// DecideVBRPACQ is AlgACQ via the maximum-plan characterization
	// (Theorem 4.2 / Lemma 3.12).
	DecideVBRPACQ = vbrp.DecideACQ
	// MaximumPlan is AlgMP (Theorem 4.2).
	MaximumPlan = vbrp.MaximumPlan
)

// Boundedness theory (Section 3).
var (
	// BoundedOutput decides BOP for UCQs (Theorem 3.4).
	BoundedOutput = boundedness.BoundedOutputUCQ
	// AEquivalent decides A-equivalence for UCQs (Lemma 3.2 machinery).
	AEquivalent = boundedness.AEquivalentUCQ
	// AContained decides A-containment for UCQs.
	AContained = boundedness.AContainedUCQ
	// ElementQueries enumerates the ⊑-minimal element queries of a CQ.
	ElementQueries = boundedness.MinimalElementQueries
	// CoveredVariables computes cov(Q, A) with derived bounds.
	CoveredVariables = boundedness.Cov
)

// Effective syntax (Section 5).
type (
	// ToppedChecker checks topped-ness and synthesizes plans (Theorem 5.1).
	ToppedChecker = topped.Checker
	// ToppedResult is the outcome of a topped-ness check.
	ToppedResult = topped.Result
)

// Effective-syntax entry points.
var (
	// NewToppedChecker builds a checker for (R, V, A).
	NewToppedChecker = topped.NewChecker
	// MakeSizeBounded wraps an FO query in the size-bounded syntax
	// (Theorem 5.2).
	MakeSizeBounded = topped.MakeSizeBounded
	// IsSizeBounded recognizes the size-bounded syntax.
	IsSizeBounded = topped.IsSizeBounded
)
