package core

import (
	"testing"

	"repro/internal/access"
	"repro/internal/cq"
	"repro/internal/fo"
	"repro/internal/plan"
	"repro/internal/schema"
)

// The core facade must expose working entry points for the paper's three
// pillars: decision, boundedness and effective syntax.
func TestCoreFacade(t *testing.T) {
	s := schema.New(schema.NewRelation("R", "A", "B"))
	a := access.NewSchema(access.NewConstraint("R", []string{"A"}, []string{"B"}, 2))
	q := cq.NewCQ([]cq.Term{cq.Var("x")}, []cq.Atom{cq.NewAtom("R", cq.Cst("a"), cq.Var("x"))})

	// Boundedness.
	if ok, bound := BoundedOutput(cq.NewUCQ(q), s, a); !ok || bound != 2 {
		t.Fatalf("BoundedOutput: %v %d", ok, bound)
	}
	if !AEquivalent(cq.NewUCQ(q), cq.NewUCQ(q), s, a) {
		t.Fatal("AEquivalent must be reflexive")
	}
	if len(ElementQueries(q, s, a)) == 0 {
		t.Fatal("ElementQueries must be non-empty for a satisfiable query")
	}
	if cov := CoveredVariables(q, s, a); cov["x"] != 2 {
		t.Fatalf("CoveredVariables: %v", cov)
	}

	// Decision.
	prob := &VBRPProblem{S: s, A: a, M: 3, Lang: plan.LangCQ, Consts: q.Constants()}
	dec, err := DecideVBRP(cq.NewUCQ(q), prob)
	if err != nil || !dec.Has {
		t.Fatalf("DecideVBRP: %v %v", dec.Has, err)
	}

	// Effective syntax.
	checker := NewToppedChecker(s, a, nil)
	res := checker.Check(fo.FromCQ(q), 8)
	if !res.Topped {
		t.Fatalf("topped check failed: %s", res.Reason)
	}
	inner := &fo.Query{Head: []string{"x"}, Body: fo.Expr(fo.NewAtom("R", cq.Var("x"), cq.Var("y")))}
	_ = inner
	sb := MakeSizeBounded(&fo.Query{Head: []string{"x"}, Body: fo.Expr(fo.NewAtom("R", cq.Var("x"), cq.Var("x")))}, 2)
	if k, _, ok := IsSizeBounded(sb); !ok || k != 2 {
		t.Fatalf("size-bounded round trip: %v %d", ok, k)
	}
}
