package plan

import (
	"fmt"

	"repro/internal/access"
	"repro/internal/boundedness"
	"repro/internal/cq"
	"repro/internal/schema"
)

// ConformanceReport explains a conformance decision.
type ConformanceReport struct {
	Conforms bool
	Reason   string
	// FetchBound is a derived upper bound on the number of tuples any run
	// fetches from D over instances satisfying A (0 when not conforming or
	// when the plan has no fetches).
	FetchBound int64
}

// Conforms decides whether the plan conforms to the access schema
// (Section 2): (a) every fetch is covered by a constraint of A, and
// (b) there is a constant N_ξ bounding |Dξ| over all D |= A — equivalently,
// the input relation of every fetch has bounded output.
//
// Bounded output of a fetch input is decided exactly via BOP when the
// input subplan unfolds to ∃FO+ (Theorem 3.4); subplans containing set
// difference are soundly over-approximated by dropping the subtrahend
// (their output only shrinks), mirroring the paper's use of effective
// syntax where the exact FO analysis is undecidable.
func Conforms(n Node, s *schema.Schema, a *access.Schema, views map[string]*cq.UCQ) ConformanceReport {
	u := NewUnfolder(s, views)
	total := int64(0)
	var walk func(n Node) *ConformanceReport
	walk = func(n Node) *ConformanceReport {
		if f, ok := n.(*Fetch); ok {
			// (a) the constraint must belong to A and cover the fetch.
			if a.Covering(f.C.Rel, f.C.X, f.C.Y) == nil {
				return &ConformanceReport{Conforms: false,
					Reason: fmt.Sprintf("fetch constraint %s not in access schema", f.C)}
			}
			perCall := int64(f.C.N)
			if f.Child == nil {
				total = addCap(total, perCall)
			} else {
				// (b) the input subplan must have bounded output.
				in, err := u.UCQApprox(f.Child)
				if err != nil {
					return &ConformanceReport{Conforms: false,
						Reason: fmt.Sprintf("cannot analyze fetch input: %v", err)}
				}
				ok, bound := boundedness.BoundedOutputUCQ(in, s, a)
				if !ok {
					return &ConformanceReport{Conforms: false,
						Reason: fmt.Sprintf("fetch input %s has unbounded output", f.C)}
				}
				total = addCap(total, mulCap(bound, perCall))
			}
		}
		for _, c := range n.Children() {
			if r := walk(c); r != nil {
				return r
			}
		}
		return nil
	}
	if bad := walk(n); bad != nil {
		return *bad
	}
	return ConformanceReport{Conforms: true, FetchBound: total}
}

func addCap(a, b int64) int64 {
	if a > boundedness.MaxBound-b {
		return boundedness.MaxBound
	}
	return a + b
}

func mulCap(a, b int64) int64 {
	if a <= 0 || b <= 0 {
		return 0
	}
	if a > boundedness.MaxBound/b {
		return boundedness.MaxBound
	}
	return a * b
}
