// Package plan implements the paper's query plans (Section 2): trees whose
// nodes are constants, view scans, fetch operations driven by access
// constraints, and the relational operations π, σ, ×, ∪, \, ρ. It provides
// execution over indexed instances with fetch accounting, plan→query
// unfolding (the query Q_ξ a plan expresses), conformance checking against
// an access schema, and the language classification of plans (which plans
// are CQ, UCQ, ∃FO+ or FO plans).
package plan

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/access"
	"repro/internal/schema"
)

// Node is a query-plan node. Output columns are named; names must be
// unique within a node's output.
type Node interface {
	// Attrs returns the output attribute names, in order.
	Attrs() []string
	// Size returns the number of nodes in the subtree (the paper's plan
	// size: constants and operations both count).
	Size() int
	// Children returns the child nodes.
	Children() []Node
	// label renders this node (not the subtree).
	label() string
}

// Const is a leaf holding the singleton relation {(c)} for a constant c.
type Const struct {
	Attr string // output column name
	Val  string // the constant
}

// View is a leaf scanning a cached view V ∈ V. Cols names its output
// columns (the view's head).
type View struct {
	Name string
	Cols []string
}

// Fetch is fetch(X ∈ S_j, R, Y): for each X-value in the child's output,
// retrieve the XY-projections of matching R-tuples via the index of an
// access constraint. When the constraint's X is empty the node is a leaf.
//
// Binding is positional, as in the paper: Bind names the child attributes
// feeding C.X in order (nil means the child's attributes are named exactly
// like C.X), and As names the output attributes positionally matching
// C.XY() (nil means they are named like C.XY()). Neither costs an
// operation; they are bookkeeping for named-attribute composition.
type Fetch struct {
	Child Node // nil iff len(C.X) == 0
	C     *access.Constraint
	Bind  []string // child attrs feeding C.X, in C.X order (optional)
	As    []string // output attr names, in C.XY() order (optional)
}

// InBind returns the effective input binding (C.X when Bind is nil).
func (n *Fetch) InBind() []string {
	if n.Bind != nil {
		return n.Bind
	}
	return n.C.X
}

// OutNames returns the effective output attribute names (C.XY() when As is
// nil).
func (n *Fetch) OutNames() []string {
	if n.As != nil {
		return n.As
	}
	return n.C.XY()
}

// Project is π_Attrs.
type Project struct {
	Child Node
	Cols  []string
}

// CondItem is one comparison of a selection condition: L is an attribute;
// R is an attribute or a constant; Neq flips = to ≠ (FO plans only).
type CondItem struct {
	L      string
	RConst bool
	R      string
	Neq    bool
}

func (c CondItem) String() string {
	op := "="
	if c.Neq {
		op = "≠"
	}
	r := c.R
	if c.RConst {
		r = "\"" + c.R + "\""
	}
	return c.L + op + r
}

// Select is σ_Cond; Cond is a conjunction of comparisons and counts as a
// single operation, as in the paper's σ_{X=μ}(V) selections.
type Select struct {
	Child Node
	Cond  []CondItem
}

// Product is the Cartesian product; the children's attribute sets must be
// disjoint.
type Product struct{ L, R Node }

// Union is set union; children must have the same arity. Output attributes
// are taken from the left child.
type Union struct{ L, R Node }

// Diff is set difference (FO plans only); children must have the same
// arity. Output attributes are taken from the left child.
type Diff struct{ L, R Node }

// RenamePair maps one attribute name to another.
type RenamePair struct{ From, To string }

// Rename is ρ; one node may carry several renamings (it still counts as a
// single operation, matching the paper's use in joins).
type Rename struct {
	Child Node
	Pairs []RenamePair
}

// ---- Attrs ----

func (n *Const) Attrs() []string { return []string{n.Attr} }
func (n *View) Attrs() []string  { return n.Cols }
func (n *Fetch) Attrs() []string { return n.OutNames() }
func (n *Project) Attrs() []string {
	return n.Cols
}
func (n *Select) Attrs() []string  { return n.Child.Attrs() }
func (n *Product) Attrs() []string { return append(append([]string{}, n.L.Attrs()...), n.R.Attrs()...) }
func (n *Union) Attrs() []string   { return n.L.Attrs() }
func (n *Diff) Attrs() []string    { return n.L.Attrs() }
func (n *Rename) Attrs() []string {
	in := n.Child.Attrs()
	out := make([]string, len(in))
	for i, a := range in {
		out[i] = a
		for _, p := range n.Pairs {
			if p.From == a {
				out[i] = p.To
				break
			}
		}
	}
	return out
}

// ---- Size ----

func sizeOf(n Node) int {
	s := 1
	for _, c := range n.Children() {
		s += sizeOf(c)
	}
	return s
}

func (n *Const) Size() int   { return 1 }
func (n *View) Size() int    { return 1 }
func (n *Fetch) Size() int   { return sizeOf(n) }
func (n *Project) Size() int { return sizeOf(n) }
func (n *Select) Size() int  { return sizeOf(n) }
func (n *Product) Size() int { return sizeOf(n) }
func (n *Union) Size() int   { return sizeOf(n) }
func (n *Diff) Size() int    { return sizeOf(n) }
func (n *Rename) Size() int  { return sizeOf(n) }

// ---- Children ----

func (n *Const) Children() []Node { return nil }
func (n *View) Children() []Node  { return nil }
func (n *Fetch) Children() []Node {
	if n.Child == nil {
		return nil
	}
	return []Node{n.Child}
}
func (n *Project) Children() []Node { return []Node{n.Child} }
func (n *Select) Children() []Node  { return []Node{n.Child} }
func (n *Product) Children() []Node { return []Node{n.L, n.R} }
func (n *Union) Children() []Node   { return []Node{n.L, n.R} }
func (n *Diff) Children() []Node    { return []Node{n.L, n.R} }
func (n *Rename) Children() []Node  { return []Node{n.Child} }

// ---- labels and rendering ----

func (n *Const) label() string { return fmt.Sprintf("const %s=%q", n.Attr, n.Val) }
func (n *View) label() string  { return "view " + n.Name + "(" + strings.Join(n.Cols, ",") + ")" }
func (n *Fetch) label() string {
	x := strings.Join(n.InBind(), ",")
	if x == "" {
		x = "∅"
	}
	return fmt.Sprintf("fetch(%s ∈ child, %s, %s)→(%s)", x, n.C.Rel, strings.Join(n.C.Y, ","), strings.Join(n.OutNames(), ","))
}
func (n *Project) label() string { return "π[" + strings.Join(n.Cols, ",") + "]" }
func (n *Select) label() string {
	parts := make([]string, len(n.Cond))
	for i, c := range n.Cond {
		parts[i] = c.String()
	}
	return "σ[" + strings.Join(parts, "∧") + "]"
}
func (n *Product) label() string { return "×" }
func (n *Union) label() string   { return "∪" }
func (n *Diff) label() string    { return "\\" }
func (n *Rename) label() string {
	parts := make([]string, len(n.Pairs))
	for i, p := range n.Pairs {
		parts[i] = p.From + "→" + p.To
	}
	return "ρ[" + strings.Join(parts, ",") + "]"
}

// Render returns a human-readable tree rendering of the plan, one node per
// line with indentation.
func Render(n Node) string {
	var b strings.Builder
	var rec func(n Node, depth int)
	rec = func(n Node, depth int) {
		b.WriteString(strings.Repeat("  ", depth))
		b.WriteString(n.label())
		b.WriteString("\n")
		for _, c := range n.Children() {
			rec(c, depth+1)
		}
	}
	rec(n, 0)
	return b.String()
}

// Canonical returns a canonical string for the plan, used to deduplicate
// structurally identical candidates during enumeration.
func Canonical(n Node) string {
	var b strings.Builder
	var rec func(n Node)
	rec = func(n Node) {
		b.WriteString(n.label())
		b.WriteString("(")
		for i, c := range n.Children() {
			if i > 0 {
				b.WriteString(",")
			}
			rec(c)
		}
		b.WriteString(")")
	}
	rec(n)
	return b.String()
}

// Validate checks structural well-formedness: attribute existence and
// uniqueness, product disjointness, equal arity for union/difference,
// fetch input attributes matching the constraint's X.
func Validate(n Node, s *schema.Schema) error {
	attrs := n.Attrs()
	seen := map[string]bool{}
	for _, a := range attrs {
		if a == "" {
			return fmt.Errorf("plan: empty attribute name in %s", n.label())
		}
		if seen[a] {
			return fmt.Errorf("plan: duplicate output attribute %s in %s", a, n.label())
		}
		seen[a] = true
	}
	switch x := n.(type) {
	case *Const, *View:
		// leaves: nothing more
	case *Fetch:
		if err := x.C.Validate(s); err != nil {
			return err
		}
		if x.Bind != nil && len(x.Bind) != len(x.C.X) {
			return fmt.Errorf("plan: fetch binding %v must have one entry per X attribute %v", x.Bind, x.C.X)
		}
		if x.As != nil && len(x.As) != len(x.C.XY()) {
			return fmt.Errorf("plan: fetch output names %v must have one entry per XY attribute %v", x.As, x.C.XY())
		}
		if len(x.C.X) == 0 {
			if x.Child != nil {
				return fmt.Errorf("plan: fetch with empty X must be a leaf")
			}
		} else {
			if x.Child == nil {
				return fmt.Errorf("plan: fetch with non-empty X needs a child")
			}
			ca := append([]string(nil), x.Child.Attrs()...)
			sort.Strings(ca)
			bind := append([]string(nil), x.InBind()...)
			sort.Strings(bind)
			if !sameStrings(ca, bind) {
				return fmt.Errorf("plan: fetch child attrs %v must equal input binding %v", ca, bind)
			}
		}
	case *Project:
		in := toSet(x.Child.Attrs())
		for _, a := range x.Cols {
			if !in[a] {
				return fmt.Errorf("plan: projection attribute %s not in child attrs", a)
			}
		}
	case *Select:
		in := toSet(x.Child.Attrs())
		for _, c := range x.Cond {
			if !in[c.L] {
				return fmt.Errorf("plan: selection attribute %s not in child attrs", c.L)
			}
			if !c.RConst && !in[c.R] {
				return fmt.Errorf("plan: selection attribute %s not in child attrs", c.R)
			}
		}
		if len(x.Cond) == 0 {
			return fmt.Errorf("plan: empty selection condition")
		}
	case *Product:
		l, r := toSet(x.L.Attrs()), toSet(x.R.Attrs())
		for a := range l {
			if r[a] {
				return fmt.Errorf("plan: product children share attribute %s", a)
			}
		}
	case *Union:
		if len(x.L.Attrs()) != len(x.R.Attrs()) {
			return fmt.Errorf("plan: union children have different arity")
		}
	case *Diff:
		if len(x.L.Attrs()) != len(x.R.Attrs()) {
			return fmt.Errorf("plan: difference children have different arity")
		}
	case *Rename:
		in := toSet(x.Child.Attrs())
		for _, p := range x.Pairs {
			if !in[p.From] {
				return fmt.Errorf("plan: rename source %s not in child attrs", p.From)
			}
		}
	default:
		return fmt.Errorf("plan: unknown node type %T", n)
	}
	for _, c := range n.Children() {
		if err := Validate(c, s); err != nil {
			return err
		}
	}
	return nil
}

func toSet(xs []string) map[string]bool {
	out := make(map[string]bool, len(xs))
	for _, x := range xs {
		out[x] = true
	}
	return out
}

func sameStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Language is a query-language fragment a plan may belong to (Section 2).
type Language int

// Language constants, ordered by expressiveness.
const (
	LangCQ Language = iota
	LangUCQ
	LangPosFO // ∃FO+
	LangFO
)

func (l Language) String() string {
	switch l {
	case LangCQ:
		return "CQ"
	case LangUCQ:
		return "UCQ"
	case LangPosFO:
		return "∃FO+"
	default:
		return "FO"
	}
}

// InLanguage reports whether the plan is a plan in the given language per
// Section 2: CQ plans use fetch/π/σ/×/ρ (and leaves); UCQ additionally
// allows ∪ but only at the top (every ancestor of a ∪ is a ∪); ∃FO+ allows
// ∪ anywhere; FO allows everything. Selections with ≠ are FO-only.
func InLanguage(n Node, l Language) bool {
	switch l {
	case LangCQ:
		return checkOps(n, false, false, false)
	case LangUCQ:
		// Strip the top-level ∪ prefix, then every subtree must be a CQ plan.
		if u, ok := n.(*Union); ok {
			return InLanguage(u.L, LangUCQ) && InLanguage(u.R, LangUCQ)
		}
		return checkOps(n, false, false, false)
	case LangPosFO:
		return checkOps(n, true, false, false)
	default:
		return checkOps(n, true, true, true)
	}
}

// checkOps verifies the operations used in a subtree against the allowed
// set: ∪ (allowUnion), \ (allowDiff), ≠ in selections (allowNeq).
func checkOps(n Node, allowUnion, allowDiff, allowNeq bool) bool {
	switch x := n.(type) {
	case *Union:
		if !allowUnion {
			return false
		}
	case *Diff:
		if !allowDiff {
			return false
		}
	case *Select:
		for _, c := range x.Cond {
			if c.Neq && !allowNeq {
				return false
			}
		}
	}
	for _, c := range n.Children() {
		if !checkOps(c, allowUnion, allowDiff, allowNeq) {
			return false
		}
	}
	return true
}
