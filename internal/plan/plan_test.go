package plan_test

import (
	"testing"

	"repro/internal/access"
	"repro/internal/boundedness"
	"repro/internal/cq"
	"repro/internal/eval"
	"repro/internal/instance"
	"repro/internal/plan"
	"repro/internal/workload"
)

// The Figure 1 plan ξ0 is the paper's flagship example; these tests verify
// every claim Examples 2.1-2.3 make about it.

func fig1Fixture(t *testing.T) (*workload.Movies, plan.Node) {
	t.Helper()
	m := workload.NewMovies(20)
	xi0 := m.Fig1Plan()
	if err := plan.Validate(xi0, m.Schema); err != nil {
		t.Fatalf("ξ0 invalid: %v", err)
	}
	return m, xi0
}

func TestFig1PlanIs11Bounded(t *testing.T) {
	_, xi0 := fig1Fixture(t)
	if got := xi0.Size(); got != 11 {
		t.Fatalf("ξ0 must have 11 nodes (Example 2.2), got %d", got)
	}
}

func TestFig1PlanIsCQPlan(t *testing.T) {
	_, xi0 := fig1Fixture(t)
	if !plan.InLanguage(xi0, plan.LangCQ) {
		t.Fatal("ξ0 is a CQ plan (Example 2.3)")
	}
	if !plan.InLanguage(xi0, plan.LangUCQ) || !plan.InLanguage(xi0, plan.LangFO) {
		t.Fatal("every CQ plan is also a UCQ/FO plan")
	}
}

func TestFig1Conformance(t *testing.T) {
	m, xi0 := fig1Fixture(t)
	rep := plan.Conforms(xi0, m.Schema, m.Access, m.Views())
	if !rep.Conforms {
		t.Fatalf("ξ0 must conform to A0: %s", rep.Reason)
	}
	want := int64(2 * m.N0)
	if rep.FetchBound != want {
		t.Fatalf("derived fetch bound: got %d want %d (= 2·N0, Example 2.2)", rep.FetchBound, want)
	}
}

func TestFig1UnfoldsToQxi(t *testing.T) {
	m, xi0 := fig1Fixture(t)
	u := plan.NewUnfolder(m.Schema, m.Views())
	uq, err := u.UCQ(xi0)
	if err != nil {
		t.Fatalf("unfold: %v", err)
	}
	if len(uq.Disjuncts) != 1 {
		t.Fatalf("CQ plan must unfold to a single disjunct, got %d", len(uq.Disjuncts))
	}
	// Q_ξ ≡_{A0} Q0 (Example 2.3); they are not classically equivalent in
	// one direction: Q_ξ ⊑ Q0 holds, Q0 ⊑ Q_ξ needs ϕ2.
	q0u := cq.NewUCQ(m.Q0)
	if !boundedness.AContainedUCQ(uq, q0u, m.Schema, m.Access) {
		t.Fatal("Q_ξ ⊑_A0 Q0 must hold")
	}
	if !boundedness.AContainedUCQ(q0u, uq, m.Schema, m.Access) {
		t.Fatal("Q0 ⊑_A0 Q_ξ must hold")
	}
}

func TestFig1ExecutionMatchesQ0(t *testing.T) {
	m, xi0 := fig1Fixture(t)
	db := m.Generate(workload.MoviesParams{
		Persons: 600, Movies: 500, LikesPerPerson: 6, NASAShare: 10, Seed: 7,
	})
	if ok, err := db.SatisfiesAll(m.Access); err != nil || !ok {
		t.Fatalf("generated instance must satisfy A0 (err=%v)", err)
	}
	views, err := eval.Materialize(m.Views(), db)
	if err != nil {
		t.Fatalf("materialize: %v", err)
	}
	ix, err := instance.BuildIndexes(db, m.Access)
	if err != nil {
		t.Fatalf("indexes: %v", err)
	}
	got, err := plan.Run(xi0, ix, views)
	if err != nil {
		t.Fatalf("run ξ0: %v", err)
	}
	want, err := eval.CQOnDB(m.Q0, &eval.Source{DB: db})
	if err != nil {
		t.Fatalf("eval Q0: %v", err)
	}
	if !cq.RowsEqual(got, want) {
		t.Fatalf("ξ0(D) != Q0(D): got %d rows, want %d", len(got), len(want))
	}
	if len(want) == 0 {
		t.Fatal("fixture should produce a non-empty answer")
	}
	if fetched := ix.FetchedTuples(); fetched > 2*m.N0 {
		t.Fatalf("ξ0 fetched %d tuples, bound is 2·N0 = %d", fetched, 2*m.N0)
	}
}

func TestFig1FetchCountIndependentOfSize(t *testing.T) {
	m, xi0 := fig1Fixture(t)
	var prev int
	for i, p := range []workload.MoviesParams{
		{Persons: 200, Movies: 200, LikesPerPerson: 4, NASAShare: 10, Seed: 1},
		{Persons: 2000, Movies: 2000, LikesPerPerson: 4, NASAShare: 10, Seed: 1},
	} {
		db := m.Generate(p)
		views, err := eval.Materialize(m.Views(), db)
		if err != nil {
			t.Fatal(err)
		}
		ix, err := instance.BuildIndexes(db, m.Access)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := plan.Run(xi0, ix, views); err != nil {
			t.Fatal(err)
		}
		if ix.FetchedTuples() > 2*m.N0 {
			t.Fatalf("instance %d: fetched %d > 2·N0", i, ix.FetchedTuples())
		}
		prev = ix.FetchedTuples()
	}
	_ = prev
}

func TestConformanceRejectsUncoveredFetch(t *testing.T) {
	m, _ := fig1Fixture(t)
	// A fetch driven by a constraint absent from A0 must not conform.
	rogue := access.NewConstraint("person", []string{"affiliation"}, []string{"pid"}, 50)
	p := &plan.Fetch{
		Child: &plan.Const{Attr: "affiliation", Val: "NASA"},
		C:     rogue,
	}
	rep := plan.Conforms(p, m.Schema, m.Access, m.Views())
	if rep.Conforms {
		t.Fatal("fetch over a constraint not in A must not conform")
	}
}

func TestConformanceRejectsUnboundedInput(t *testing.T) {
	m, _ := fig1Fixture(t)
	// Feeding the rating fetch from the whole V1 view is fine for
	// conformance only if V1 has bounded output — it does not under A0.
	p := &plan.Fetch{
		Child: &plan.Rename{
			Child: &plan.View{Name: "V1", Cols: []string{"mid2"}},
			Pairs: []plan.RenamePair{{From: "mid2", To: "mid"}},
		},
		C: m.Phi2,
	}
	rep := plan.Conforms(p, m.Schema, m.Access, m.Views())
	if rep.Conforms {
		t.Fatal("fetch fed by unbounded V1 must not conform (Section 3.1)")
	}
}

func TestPlanLanguagesUnionDiscipline(t *testing.T) {
	m, _ := fig1Fixture(t)
	leafA := &plan.Fetch{C: access.NewConstraint("rating", nil, []string{"mid"}, 3)}
	leafB := &plan.Fetch{C: access.NewConstraint("rating", nil, []string{"mid"}, 3)}
	topUnion := &plan.Union{L: leafA, R: leafB}
	if plan.InLanguage(topUnion, plan.LangCQ) {
		t.Fatal("∪ is not a CQ operation")
	}
	if !plan.InLanguage(topUnion, plan.LangUCQ) {
		t.Fatal("top-level ∪ is a UCQ plan")
	}
	// ∪ under a projection violates the UCQ top-level discipline.
	proj := &plan.Project{Child: topUnion, Cols: []string{"mid"}}
	if plan.InLanguage(proj, plan.LangUCQ) {
		t.Fatal("∪ below π is not a UCQ plan")
	}
	if !plan.InLanguage(proj, plan.LangPosFO) {
		t.Fatal("∪ below π is an ∃FO+ plan")
	}
	diff := &plan.Diff{L: leafA, R: leafB}
	if plan.InLanguage(diff, plan.LangPosFO) {
		t.Fatal("\\ is FO-only")
	}
	if !plan.InLanguage(diff, plan.LangFO) {
		t.Fatal("\\ is an FO plan")
	}
	_ = m
}

func TestDiffExecution(t *testing.T) {
	m, _ := fig1Fixture(t)
	db := m.Generate(workload.MoviesParams{Persons: 50, Movies: 80, LikesPerPerson: 3, NASAShare: 5, Seed: 3})
	ix, err := instance.BuildIndexes(db, m.Access)
	if err != nil {
		t.Fatal(err)
	}
	// fetch Universal/2014 movies minus themselves = empty.
	mk := func() plan.Node {
		return &plan.Project{
			Child: &plan.Fetch{
				Child: &plan.Product{
					L: &plan.Const{Attr: "studio", Val: "Universal"},
					R: &plan.Const{Attr: "release", Val: "2014"},
				},
				C: m.Phi1,
			},
			Cols: []string{"mid"},
		}
	}
	d := &plan.Diff{L: mk(), R: mk()}
	rows, err := plan.Run(d, ix, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 0 {
		t.Fatalf("S \\ S must be empty, got %d rows", len(rows))
	}
}

func TestUnfoldFOOnFig1(t *testing.T) {
	m, xi0 := fig1Fixture(t)
	u := plan.NewUnfolder(m.Schema, m.Views())
	fq, err := u.FO(xi0)
	if err != nil {
		t.Fatalf("FO unfold: %v", err)
	}
	db := m.Generate(workload.MoviesParams{Persons: 120, Movies: 150, LikesPerPerson: 5, NASAShare: 6, Seed: 11})
	views, err := eval.Materialize(m.Views(), db)
	if err != nil {
		t.Fatal(err)
	}
	_ = views
	got, err := eval.FOOnDB(fq, &eval.Source{DB: db})
	if err != nil {
		t.Fatalf("FO eval: %v", err)
	}
	want, err := eval.CQOnDB(m.Q0, &eval.Source{DB: db})
	if err != nil {
		t.Fatal(err)
	}
	// The FO unfolding of ξ0 has no rating-uniqueness assumption, so it can
	// only differ from Q0 on instances violating A0; this instance
	// satisfies A0, so results must agree.
	if !cq.RowsEqual(got, want) {
		t.Fatalf("FO unfolding disagrees with Q0 on an A0-instance: %d vs %d rows", len(got), len(want))
	}
}
