package plan

import (
	"fmt"
	"strconv"

	"repro/internal/cq"
	"repro/internal/fo"
	"repro/internal/schema"
)

// Unfolder converts plans to the queries they express (Q_ξ, Section 2),
// substituting view definitions for view scans. Views are given as UCQs
// (a CQ view is a singleton union). Fresh existential variables are drawn
// from a shared counter and prefixed with "!", which output attribute names
// may not use, so no capture can occur.
type Unfolder struct {
	Schema *schema.Schema
	Views  map[string]*cq.UCQ

	counter int
}

// NewUnfolder builds an unfolder over the schema and view definitions.
func NewUnfolder(s *schema.Schema, views map[string]*cq.UCQ) *Unfolder {
	return &Unfolder{Schema: s, Views: views}
}

func (u *Unfolder) fresh() string {
	u.counter++
	return "!" + strconv.Itoa(u.counter)
}

// UCQ unfolds the plan into a UCQ whose head variables are named by the
// plan's output attributes. It fails on Diff nodes (not expressible) and on
// selections with ≠; use FO for those plans.
//
// Invariant maintained through the recursion: every returned disjunct has
// head term i equal to Var(attrs[i]), and every non-head variable has a
// fresh "!"-name unique across the whole unfolding.
func (u *Unfolder) UCQ(n Node) (*cq.UCQ, error) {
	switch x := n.(type) {
	case *Const:
		d := &cq.CQ{
			Head: []cq.Term{cq.Var(x.Attr)},
			Eqs:  []cq.Equality{{L: cq.Var(x.Attr), R: cq.Cst(x.Val)}},
		}
		return cq.NewUCQ(d), nil

	case *View:
		def, ok := u.Views[x.Name]
		if !ok {
			return nil, fmt.Errorf("plan: view %s has no definition", x.Name)
		}
		out := &cq.UCQ{}
		for _, d := range def.Disjuncts {
			if len(d.Head) != len(x.Cols) {
				return nil, fmt.Errorf("plan: view %s head arity %d, node expects %d", x.Name, len(d.Head), len(x.Cols))
			}
			nd, err := u.rebindHead(d, x.Cols)
			if err != nil {
				return nil, err
			}
			if nd != nil { // nil: the disjunct is inconsistent, drop it
				out.Disjuncts = append(out.Disjuncts, nd)
			}
		}
		return out, nil

	case *Fetch:
		rel := u.Schema.Relation(x.C.Rel)
		if rel == nil {
			return nil, fmt.Errorf("plan: fetch on unknown relation %s", x.C.Rel)
		}
		// Output variable per XY attribute, named per As.
		xyAttrs := x.C.XY()
		outNames := x.OutNames()
		outVar := map[string]string{} // relation attr -> output var name
		for i, a := range xyAttrs {
			outVar[a] = outNames[i]
		}
		mkAtom := func() cq.Atom {
			args := make([]cq.Term, rel.Arity())
			for i, attr := range rel.Attrs {
				if v, ok := outVar[attr]; ok {
					args[i] = cq.Var(v)
				} else {
					args[i] = cq.Var(u.fresh())
				}
			}
			return cq.Atom{Rel: rel.Name, Args: args}
		}
		head := varTerms(outNames)
		if x.Child == nil {
			return cq.NewUCQ(&cq.CQ{Head: head, Atoms: []cq.Atom{mkAtom()}}), nil
		}
		child, err := u.UCQ(x.Child)
		if err != nil {
			return nil, err
		}
		bind := x.InBind()
		out := &cq.UCQ{}
		for _, d := range child.Disjuncts {
			// Rename the child's head variables apart, then equate each
			// bound input with the output variable of the corresponding X
			// attribute (the fetched tuples agree with the input on X).
			sub := map[string]cq.Term{}
			fresh := make([]string, len(bind))
			for i, b := range bind {
				if _, dup := sub[b]; !dup {
					fresh[i] = u.fresh()
					sub[b] = cq.Var(fresh[i])
				} else {
					fresh[i] = sub[b].Val
				}
			}
			nd := cq.SubstituteCQ(d, sub)
			nd.Head = append([]cq.Term(nil), head...)
			nd.Atoms = append(nd.Atoms, mkAtom())
			for i, xattr := range x.C.X {
				nd.Eqs = append(nd.Eqs, cq.Equality{L: cq.Var(outVar[xattr]), R: cq.Var(fresh[i])})
			}
			out.Disjuncts = append(out.Disjuncts, nd)
		}
		return out, nil

	case *Project:
		child, err := u.UCQ(x.Child)
		if err != nil {
			return nil, err
		}
		keep := toSet(x.Cols)
		out := &cq.UCQ{}
		for _, d := range child.Disjuncts {
			// Rename dropped head variables to fresh names so they cannot
			// collide with same-named attributes elsewhere in a product.
			sub := map[string]cq.Term{}
			for _, t := range d.Head {
				if !t.Const && !keep[t.Val] {
					if _, dup := sub[t.Val]; !dup {
						sub[t.Val] = cq.Var(u.fresh())
					}
				}
			}
			nd := cq.SubstituteCQ(d, sub)
			nd.Head = varTerms(x.Cols)
			out.Disjuncts = append(out.Disjuncts, nd)
		}
		return out, nil

	case *Select:
		child, err := u.UCQ(x.Child)
		if err != nil {
			return nil, err
		}
		out := &cq.UCQ{}
		for _, d := range child.Disjuncts {
			nd := d.Clone()
			for _, c := range x.Cond {
				if c.Neq {
					return nil, fmt.Errorf("plan: ≠ selection is not expressible in UCQ")
				}
				r := cq.Var(c.R)
				if c.RConst {
					r = cq.Cst(c.R)
				}
				nd.Eqs = append(nd.Eqs, cq.Equality{L: cq.Var(c.L), R: r})
			}
			out.Disjuncts = append(out.Disjuncts, nd)
		}
		return out, nil

	case *Product:
		l, err := u.UCQ(x.L)
		if err != nil {
			return nil, err
		}
		r, err := u.UCQ(x.R)
		if err != nil {
			return nil, err
		}
		out := &cq.UCQ{}
		for _, dl := range l.Disjuncts {
			for _, dr := range r.Disjuncts {
				nd := dl.Clone()
				rr := dr.Clone()
				nd.Head = append(nd.Head, rr.Head...)
				nd.Atoms = append(nd.Atoms, rr.Atoms...)
				nd.Eqs = append(nd.Eqs, rr.Eqs...)
				out.Disjuncts = append(out.Disjuncts, nd)
			}
		}
		return out, nil

	case *Union:
		l, err := u.UCQ(x.L)
		if err != nil {
			return nil, err
		}
		r, err := u.UCQ(x.R)
		if err != nil {
			return nil, err
		}
		out := &cq.UCQ{Disjuncts: append([]*cq.CQ(nil), l.Disjuncts...)}
		for _, d := range r.Disjuncts {
			nd, err := u.alignHead(d, x.R.Attrs(), x.L.Attrs())
			if err != nil {
				return nil, err
			}
			out.Disjuncts = append(out.Disjuncts, nd)
		}
		return out, nil

	case *Rename:
		child, err := u.UCQ(x.Child)
		if err != nil {
			return nil, err
		}
		sub := map[string]cq.Term{}
		for _, p := range x.Pairs {
			sub[p.From] = cq.Var(p.To)
		}
		out := &cq.UCQ{}
		for _, d := range child.Disjuncts {
			out.Disjuncts = append(out.Disjuncts, cq.SubstituteCQ(d, sub))
		}
		return out, nil

	case *Diff:
		return nil, fmt.Errorf("plan: set difference is not expressible in UCQ")

	default:
		return nil, fmt.Errorf("plan: unknown node type %T", n)
	}
}

// UCQApprox unfolds like UCQ but over-approximates every Diff node by its
// left child. The result contains the plan's output on every instance,
// which makes it a sound input for bounded-output conformance checks on FO
// plans (where the exact analysis is undecidable, Theorem 3.4).
func (u *Unfolder) UCQApprox(n Node) (*cq.UCQ, error) {
	if d, ok := n.(*Diff); ok {
		return u.UCQApprox(d.L)
	}
	// Rebuild the node with approximated children, then unfold.
	switch x := n.(type) {
	case *Fetch:
		if x.Child == nil {
			return u.UCQ(x)
		}
		c, err := u.approxNode(x.Child)
		if err != nil {
			return nil, err
		}
		return u.UCQ(&Fetch{Child: c, C: x.C, Bind: x.Bind, As: x.As})
	default:
		a, err := u.approxNode(n)
		if err != nil {
			return nil, err
		}
		return u.UCQ(a)
	}
}

// approxNode rewrites the subtree replacing Diff by its left child.
func (u *Unfolder) approxNode(n Node) (Node, error) {
	switch x := n.(type) {
	case *Const, *View:
		return n, nil
	case *Diff:
		return u.approxNode(x.L)
	case *Fetch:
		if x.Child == nil {
			return x, nil
		}
		c, err := u.approxNode(x.Child)
		if err != nil {
			return nil, err
		}
		return &Fetch{Child: c, C: x.C, Bind: x.Bind, As: x.As}, nil
	case *Project:
		c, err := u.approxNode(x.Child)
		if err != nil {
			return nil, err
		}
		return &Project{Child: c, Cols: x.Cols}, nil
	case *Select:
		c, err := u.approxNode(x.Child)
		if err != nil {
			return nil, err
		}
		return &Select{Child: c, Cond: x.Cond}, nil
	case *Rename:
		c, err := u.approxNode(x.Child)
		if err != nil {
			return nil, err
		}
		return &Rename{Child: c, Pairs: x.Pairs}, nil
	case *Product:
		l, err := u.approxNode(x.L)
		if err != nil {
			return nil, err
		}
		r, err := u.approxNode(x.R)
		if err != nil {
			return nil, err
		}
		return &Product{L: l, R: r}, nil
	case *Union:
		l, err := u.approxNode(x.L)
		if err != nil {
			return nil, err
		}
		r, err := u.approxNode(x.R)
		if err != nil {
			return nil, err
		}
		return &Union{L: l, R: r}, nil
	default:
		return nil, fmt.Errorf("plan: unknown node type %T", n)
	}
}

// rebindHead freshens all variables of a view disjunct and rebinds its head
// to the given attribute names, preserving repeated variables and constant
// head terms as equalities.
func (u *Unfolder) rebindHead(d *cq.CQ, cols []string) (*cq.CQ, error) {
	// Freshen every variable in the disjunct.
	sub := map[string]cq.Term{}
	for _, v := range d.Vars() {
		sub[v] = cq.Var(u.fresh())
	}
	fr := cq.SubstituteCQ(d, sub)
	// Bind head positions to Var(col_i).
	nd := fr.Clone()
	newHead := varTerms(cols)
	for i, t := range fr.Head {
		if t.Const {
			nd.Eqs = append(nd.Eqs, cq.Equality{L: newHead[i], R: t})
			continue
		}
		nd.Eqs = append(nd.Eqs, cq.Equality{L: newHead[i], R: t})
	}
	nd.Head = newHead
	// Normalize to fold the binding equalities in; resolve representative
	// drift by re-substituting head representatives with attr names.
	return u.canonHead(nd, cols)
}

// alignHead renames a disjunct's head variables from one attribute list to
// another (positionally), as set union requires.
func (u *Unfolder) alignHead(d *cq.CQ, from, to []string) (*cq.CQ, error) {
	if len(from) != len(to) {
		return nil, fmt.Errorf("plan: cannot align heads %v and %v", from, to)
	}
	sub := map[string]cq.Term{}
	for i := range from {
		sub[from[i]] = cq.Var(to[i])
	}
	return cq.SubstituteCQ(d, sub), nil
}

// canonHead normalizes the disjunct and re-establishes the invariant that
// head position i is Var(cols[i]) (normalization may have replaced an
// attribute variable by a class representative or constant). A constant
// head position c is re-expressed as Var(col) with equality col=c.
func (u *Unfolder) canonHead(d *cq.CQ, cols []string) (*cq.CQ, error) {
	n, err := d.Normalize()
	if err != nil {
		// Inconsistent disjunct; signal with nil (dropped by callers).
		return nil, nil
	}
	sub := map[string]cq.Term{}
	var eqs []cq.Equality
	for i, t := range n.Head {
		want := cq.Var(cols[i])
		if t.Const {
			eqs = append(eqs, cq.Equality{L: want, R: t})
			continue
		}
		if t.Val == cols[i] {
			continue
		}
		if _, dup := sub[t.Val]; dup {
			// Same representative bound to two attr names: keep first
			// mapping and equate.
			eqs = append(eqs, cq.Equality{L: want, R: sub[t.Val]})
			continue
		}
		sub[t.Val] = want
	}
	out := cq.SubstituteCQ(n, sub)
	out.Head = varTerms(cols)
	out.Eqs = append(out.Eqs, eqs...)
	return out, nil
}

func varTerms(attrs []string) []cq.Term {
	out := make([]cq.Term, len(attrs))
	for i, a := range attrs {
		out[i] = cq.Var(a)
	}
	return out
}

// FO unfolds the plan into an FO query (handles Diff and ≠ selections).
// The head is the plan's output attribute list.
func (u *Unfolder) FO(n Node) (*fo.Query, error) {
	e, err := u.foExpr(n)
	if err != nil {
		return nil, err
	}
	return &fo.Query{Head: append([]string(nil), n.Attrs()...), Body: e}, nil
}

func (u *Unfolder) foExpr(n Node) (fo.Expr, error) {
	switch x := n.(type) {
	case *Diff:
		l, err := u.foExpr(x.L)
		if err != nil {
			return nil, err
		}
		r, err := u.foExpr(x.R)
		if err != nil {
			return nil, err
		}
		// Align R's head variables to L's attribute names.
		sub := map[string]cq.Term{}
		la, ra := x.L.Attrs(), x.R.Attrs()
		for i := range ra {
			if ra[i] != la[i] {
				sub[ra[i]] = cq.Var(la[i])
			}
		}
		if len(sub) > 0 {
			r = fo.Substitute(fo.Rectify(r), sub)
		}
		return &fo.And{L: l, R: &fo.Not{E: r}}, nil

	case *Union:
		l, err := u.foExpr(x.L)
		if err != nil {
			return nil, err
		}
		r, err := u.foExpr(x.R)
		if err != nil {
			return nil, err
		}
		sub := map[string]cq.Term{}
		la, ra := x.L.Attrs(), x.R.Attrs()
		for i := range ra {
			if ra[i] != la[i] {
				sub[ra[i]] = cq.Var(la[i])
			}
		}
		if len(sub) > 0 {
			r = fo.Substitute(fo.Rectify(r), sub)
		}
		return &fo.Or{L: l, R: r}, nil

	case *Select:
		c, err := u.foExpr(x.Child)
		if err != nil {
			return nil, err
		}
		conds := make([]fo.Expr, 0, len(x.Cond))
		for _, cd := range x.Cond {
			r := cq.Var(cd.R)
			if cd.RConst {
				r = cq.Cst(cd.R)
			}
			if cd.Neq {
				conds = append(conds, fo.Neq(cq.Var(cd.L), r))
			} else {
				conds = append(conds, fo.Eq(cq.Var(cd.L), r))
			}
		}
		return fo.Conj(append([]fo.Expr{c}, conds...)...), nil

	case *Project:
		c, err := u.foExpr(x.Child)
		if err != nil {
			return nil, err
		}
		keep := toSet(x.Cols)
		var drop []string
		for _, a := range x.Child.Attrs() {
			if !keep[a] {
				drop = append(drop, a)
			}
		}
		if len(drop) == 0 {
			return c, nil
		}
		return &fo.Exists{Vars: drop, E: c}, nil

	case *Product:
		l, err := u.foExpr(x.L)
		if err != nil {
			return nil, err
		}
		r, err := u.foExpr(x.R)
		if err != nil {
			return nil, err
		}
		return &fo.And{L: l, R: r}, nil

	case *Rename:
		c, err := u.foExpr(x.Child)
		if err != nil {
			return nil, err
		}
		sub := map[string]cq.Term{}
		for _, p := range x.Pairs {
			sub[p.From] = cq.Var(p.To)
		}
		return fo.Substitute(fo.Rectify(c), sub), nil

	default:
		// Leaves and Fetch: reuse the UCQ path and embed.
		uq, err := u.UCQ(n)
		if err != nil {
			return nil, err
		}
		var parts []fo.Expr
		for _, d := range uq.Disjuncts {
			if d == nil {
				continue
			}
			fq := fo.FromCQ(d)
			// fo.FromCQ names the head by the CQ head variables, which by
			// the unfolder invariant are the node's attributes already.
			parts = append(parts, fq.Body)
		}
		if len(parts) == 0 {
			// Unsatisfiable node: encode as a contradictory equality.
			return fo.Eq(cq.Cst("0"), cq.Cst("1")), nil
		}
		return fo.Disj(parts...), nil
	}
}
