package plan

import "math"

// Stats carries the statistics the cost model consumes: relation and view
// cardinalities plus per-column distinct-ID counts (collected from the
// interned rows by instance.CollectStats and the live view extents). A nil
// *Stats is valid and falls back to schema-only defaults, so candidates
// can be ranked statically — purely from the access-constraint bounds N —
// before any database exists. A published Stats is immutable; copying
// the struct shares the underlying maps, which is safe read-only.
type Stats struct {
	RelRows      map[string]int            // relation -> |R|
	RelDistinct  map[string]map[string]int // relation -> attribute -> distinct IDs
	ViewRows     map[string]int            // view -> |V(D)|
	ViewDistinct map[string][]int          // view -> per-head-position distinct IDs
}

// Cost is the estimated execution cost of a plan over an instance shaped
// like the statistics. Fetch estimates |Dξ| — tuples fetched from the
// underlying database, the quantity bounded plans exist to minimize. Work
// estimates the intermediate tuples processed (scan volume plus join
// fan-out), and Rows the output cardinality.
type Cost struct {
	Fetch float64
	Work  float64
	Rows  float64
}

// fetchWeight prices one fetched tuple against one in-memory tuple: a
// fetch is an I/O against the underlying store while work is a hash-table
// operation over cached data, so fetches dominate unless they buy orders
// of magnitude less work.
const fetchWeight = 1000

// Score folds a Cost into one comparable number (lower is better).
func (c Cost) Score() float64 { return c.Fetch*fetchWeight + c.Work + c.Rows }

// Estimate costs a plan against the statistics (nil for static defaults).
func Estimate(n Node, st *Stats) Cost {
	return EstimateObserved(n, st, nil)
}

// EstimateObserved costs a plan against the statistics with an
// observed-cost overlay: where obs carries a realized group width for an
// access constraint, that width replaces the one derived from collected
// distinct counts (the skew-blind |R|/distinct average); realized join
// fan-outs replace the System-R selectivity guess inside hash joins (see
// joinCost); and the realized output cardinality replaces the estimated
// Rows term outright — every candidate answers the same query, so one
// plan's measured output is every plan's output. A nil obs — or one with
// no sample for a component — falls back to Estimate's behavior.
func EstimateObserved(n Node, st *Stats, obs *ObservedStats) Cost {
	e := costOf(n, st, obs)
	c := Cost{Fetch: e.fetch, Work: e.work, Rows: e.rows}
	if r, ok := obs.Rows(); ok {
		c.Rows = r
	}
	return c
}

// Best returns the index of the cheapest candidate and its cost; -1 for an
// empty candidate set. Candidates with a non-finite score (NaN or ±Inf —
// overflow of the float cost arithmetic on degenerate statistics) are
// skipped unless every score is non-finite; exact ties keep the
// lowest-index candidate, so selection is deterministic in the search
// order (which enumerates smallest plans first).
func Best(cands []Node, st *Stats) (int, Cost) {
	return BestObserved(cands, st, nil)
}

// BestObserved is Best under EstimateObserved's observation overlay.
func BestObserved(cands []Node, st *Stats, obs *ObservedStats) (int, Cost) {
	best, bc := -1, Cost{}
	bestFinite := false
	for i, p := range cands {
		c := EstimateObserved(p, st, obs)
		s := c.Score()
		finite := !math.IsNaN(s) && !math.IsInf(s, 0)
		switch {
		case best < 0:
			best, bc, bestFinite = i, c, finite
		case finite && !bestFinite:
			best, bc, bestFinite = i, c, true
		case finite == bestFinite && s < bc.Score():
			best, bc = i, c
		}
	}
	return best, bc
}

// Stats fallbacks when a statistic is absent (no database yet, or a
// relation/view the collector never saw).
const (
	defaultRelRows  = 10_000
	defaultViewRows = 1_000
)

func (st *Stats) relRows(rel string) float64 {
	if st != nil {
		if n, ok := st.RelRows[rel]; ok {
			return float64(n)
		}
	}
	return defaultRelRows
}

// relDist estimates the distinct values of one attribute, capped by the
// relation's rows. Without a collected count it assumes sqrt(|R|) — the
// neutral guess that keeps static ranking from treating every fetch group
// as either a singleton or the whole table.
func (st *Stats) relDist(rel, attr string, rows float64) float64 {
	if st != nil {
		if m, ok := st.RelDistinct[rel]; ok {
			if d, ok := m[attr]; ok {
				return clamp(float64(d), 1, math.Max(1, rows))
			}
		}
	}
	return clamp(math.Sqrt(math.Max(1, rows)), 1, math.Max(1, rows))
}

func (st *Stats) viewRows(name string) float64 {
	if st != nil {
		if n, ok := st.ViewRows[name]; ok {
			return float64(n)
		}
	}
	return defaultViewRows
}

func (st *Stats) viewDist(name string, arity int, rows float64) []float64 {
	out := make([]float64, arity)
	var d []int
	if st != nil {
		d = st.ViewDistinct[name]
	}
	for i := range out {
		if i < len(d) {
			out[i] = clamp(float64(d[i]), 1, math.Max(1, rows))
		} else {
			out[i] = clamp(math.Sqrt(math.Max(1, rows)), 1, math.Max(1, rows))
		}
	}
	return out
}

func clamp(v, lo, hi float64) float64 { return math.Min(math.Max(v, lo), hi) }

// est is the per-node estimate: cardinality, cumulative fetch and work,
// and per-output-column distinct counts (the selectivity state threaded
// bottom-up so equality conditions and join fan-outs are priced against
// the columns they actually touch).
type est struct {
	rows  float64
	fetch float64
	work  float64
	dist  []float64
}

func (e *est) capDist() {
	for i := range e.dist {
		e.dist[i] = clamp(e.dist[i], 1, math.Max(1, e.rows))
	}
}

func costOf(n Node, st *Stats, obs *ObservedStats) est {
	switch x := n.(type) {
	case *Const:
		return est{rows: 1, dist: []float64{1}}

	case *View:
		r := st.viewRows(x.Name)
		return est{rows: r, work: r, dist: st.viewDist(x.Name, len(x.Cols), r)}

	case *Fetch:
		relRows := st.relRows(x.C.Rel)
		xy := x.C.XY()
		if x.Child == nil {
			// Input-free fetch: one probe returning the distinct
			// XY-projections, bounded by both N and the table.
			r := math.Min(float64(x.C.N), relRows)
			if w, ok := obs.obsWidth(x.C.Key(), float64(x.C.N)); ok {
				r = w
			}
			d := make([]float64, len(xy))
			for i, a := range xy {
				d[i] = math.Min(st.relDist(x.C.Rel, a, relRows), math.Max(1, r))
			}
			return est{rows: r, fetch: r, work: r, dist: d}
		}
		c := costOf(x.Child, st, obs)
		childAttrs := x.Child.Attrs()
		bind := x.InBind()
		// Distinct probe keys: the execution dedupes child rows on the
		// binding before probing.
		keys := 1.0
		bindDist := make(map[string]float64, len(bind))
		for i, a := range bind {
			d := 1.0
			if p := indexOf(childAttrs, a); p >= 0 && p < len(c.dist) {
				d = c.dist[p]
			}
			bindDist[x.C.X[i]] = d
			keys *= d
		}
		keys = clamp(keys, 1, math.Max(1, c.rows))
		// Average group width on this D: |R| over the distinct X-combos,
		// never above the constraint's promise N. An observed width for
		// this constraint — what fetches through it actually returned per
		// probe — takes precedence over the collected-distinct-count
		// average, which skew can put an order of magnitude off.
		dx := 1.0
		for _, a := range x.C.X {
			dx *= st.relDist(x.C.Rel, a, relRows)
		}
		dx = clamp(dx, 1, math.Max(1, relRows))
		g := math.Min(float64(x.C.N), math.Max(1, relRows/dx))
		if w, ok := obs.obsWidth(x.C.Key(), float64(x.C.N)); ok {
			g = w
		}
		r := keys * g
		d := make([]float64, len(xy))
		for i, a := range xy {
			if bd, ok := bindDist[a]; ok {
				d[i] = bd
			} else {
				d[i] = st.relDist(x.C.Rel, a, relRows)
			}
		}
		e := est{rows: r, fetch: c.fetch + keys*g, work: c.work + c.rows + r, dist: d}
		e.capDist()
		return e

	case *Project:
		c := costOf(x.Child, st, obs)
		childAttrs := x.Child.Attrs()
		prod := 1.0
		d := make([]float64, len(x.Cols))
		for i, a := range x.Cols {
			di := 1.0
			if p := indexOf(childAttrs, a); p >= 0 && p < len(c.dist) {
				di = c.dist[p]
			}
			d[i] = di
			prod *= di
		}
		e := est{rows: math.Min(c.rows, math.Max(1, prod)), fetch: c.fetch, work: c.work + c.rows, dist: d}
		if c.rows == 0 {
			e.rows = 0
		}
		e.capDist()
		return e

	case *Select:
		if prod, ok := x.Child.(*Product); ok {
			if e, joined := joinCost(x, prod, st, obs); joined {
				return e
			}
		}
		c := costOf(x.Child, st, obs)
		e := est{rows: c.rows, fetch: c.fetch, work: c.work + c.rows, dist: append([]float64(nil), c.dist...)}
		applyConds(&e, x.Cond, x.Child.Attrs())
		return e

	case *Product:
		l, r := costOf(x.L, st, obs), costOf(x.R, st, obs)
		cross := l.rows * r.rows
		e := est{rows: cross, fetch: l.fetch + r.fetch, work: l.work + r.work + cross,
			dist: append(append([]float64(nil), l.dist...), r.dist...)}
		e.capDist()
		return e

	case *Union:
		l, r := costOf(x.L, st, obs), costOf(x.R, st, obs)
		e := est{rows: l.rows + r.rows, fetch: l.fetch + r.fetch, work: l.work + r.work + l.rows + r.rows}
		e.dist = make([]float64, len(l.dist))
		for i := range e.dist {
			d := l.dist[i]
			if i < len(r.dist) {
				d += r.dist[i]
			}
			e.dist[i] = d
		}
		e.capDist()
		return e

	case *Diff:
		l, r := costOf(x.L, st, obs), costOf(x.R, st, obs)
		e := est{rows: l.rows, fetch: l.fetch + r.fetch, work: l.work + r.work + l.rows + r.rows,
			dist: append([]float64(nil), l.dist...)}
		e.capDist()
		return e

	case *Rename:
		return costOf(x.Child, st, obs)

	default:
		return est{}
	}
}

// applyConds folds a selection's comparisons into the estimate using the
// per-column distinct counts: an equality against a constant keeps ~1/d of
// the rows and pins the column; an equality between columns keeps
// ~1/max(d1,d2) (the System-R join-selectivity rule); inequalities are
// treated as non-selective.
func applyConds(e *est, conds []CondItem, attrs []string) {
	for _, c := range conds {
		if c.Neq {
			continue
		}
		lp := indexOf(attrs, c.L)
		if lp < 0 || lp >= len(e.dist) {
			continue
		}
		if c.RConst {
			e.rows /= math.Max(1, e.dist[lp])
			e.dist[lp] = 1
			continue
		}
		rp := indexOf(attrs, c.R)
		if rp < 0 || rp >= len(e.dist) {
			continue
		}
		dl, dr := e.dist[lp], e.dist[rp]
		e.rows /= math.Max(1, math.Max(dl, dr))
		m := math.Min(dl, dr)
		e.dist[lp], e.dist[rp] = m, m
	}
	e.capDist()
}

// joinCost estimates σ_Cond(L × R) the way the executor runs it — as a
// hash join — when at least one condition equates columns across the two
// sides. Work is the two inputs plus the join output, never the cross
// product. joined is false when no cross-side equality exists (the generic
// path then prices the materialized product, matching execution).
func joinCost(sel *Select, prod *Product, st *Stats, obs *ObservedStats) (est, bool) {
	la, ra := prod.L.Attrs(), prod.R.Attrs()
	type crossEq struct{ lp, rp int } // positions in the combined row
	var cross []crossEq
	var local []CondItem
	for _, c := range sel.Cond {
		if c.Neq || c.RConst {
			local = append(local, c)
			continue
		}
		li, lInR := indexOf(la, c.L), indexOf(ra, c.L)
		ri, rInR := indexOf(la, c.R), indexOf(ra, c.R)
		switch {
		case li >= 0 && rInR >= 0:
			cross = append(cross, crossEq{lp: li, rp: len(la) + rInR})
		case lInR >= 0 && ri >= 0:
			cross = append(cross, crossEq{lp: ri, rp: len(la) + lInR})
		default:
			local = append(local, c)
		}
	}
	if len(cross) == 0 {
		return est{}, false
	}
	l, r := costOf(prod.L, st, obs), costOf(prod.R, st, obs)
	dist := append(append([]float64(nil), l.dist...), r.dist...)
	rows := l.rows * r.rows
	for _, eq := range cross {
		dl, dr := 1.0, 1.0
		if eq.lp < len(dist) {
			dl = dist[eq.lp]
		}
		if eq.rp < len(dist) {
			dr = dist[eq.rp]
		}
		rows /= math.Max(1, math.Max(dl, dr))
		m := math.Min(dl, dr)
		if eq.lp < len(dist) {
			dist[eq.lp] = m
		}
		if eq.rp < len(dist) {
			dist[eq.rp] = m
		}
	}
	// Observed fan-out overlay: the executor reports summed hash-join
	// input/output rows, so the realized out-per-in ratio re-prices this
	// join's output against its estimated inputs — replacing the System-R
	// 1/max(d) selectivity, which correlated columns can put orders of
	// magnitude off in either direction.
	if fan, ok := obs.JoinFanOut(); ok {
		rows = fan * (l.rows + r.rows)
	}
	e := est{rows: rows, fetch: l.fetch + r.fetch,
		work: l.work + r.work + l.rows + r.rows + rows, dist: dist}
	e.capDist()
	attrs := append(append([]string{}, la...), ra...)
	applyConds(&e, local, attrs)
	return e, true
}
