package plan

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/cq"
	"repro/internal/parse"
)

// fuzzSeenKeys maps cache keys to the first query observed with that key,
// across the whole fuzz run: any later query with the same key must be
// equivalent (keys are renderings of the canonical query, so a collision
// between non-equivalent queries would poison the prepared-query cache).
var fuzzSeenKeys sync.Map

// FuzzQueryKey checks the canonicalization invariants on parser-built
// queries: renamings and atom reorderings share a key, String()/ParseQuery
// round-trips preserve the key, and within the corpus equal keys only ever
// join equivalent queries.
func FuzzQueryKey(f *testing.F) {
	f.Add(`Q(x) :- R(x, y), S(y, "c").`, uint8(1))
	f.Add(`Q(a, a) :- E(a, b), E(b, c), E(c, a).`, uint8(3))
	f.Add(`Q(x) :- R(x, x), R(y, y), x = y.`, uint8(0))
	f.Add(`Q("k") :- T(z), T(w).`, uint8(7))
	f.Fuzz(func(t *testing.T, src string, seed uint8) {
		q, err := parse.Query(src)
		if err != nil {
			t.Skip()
		}
		u := cq.NewUCQ(q)
		key := QueryKey(u)

		// Round-trip: the printed form must re-parse to the same key.
		back, err := parse.Query(q.String())
		if err != nil {
			t.Fatalf("String() does not re-parse: %v\n%s", err, q.String())
		}
		if k2 := QueryKey(cq.NewUCQ(back)); k2 != key {
			t.Fatalf("round-trip changed the key:\n%s\n%s", key, k2)
		}

		// Injective renaming + deterministic reordering must not move the key.
		ren := renameQuery(q)
		rot := int(seed)
		if n := len(ren.Atoms); n > 1 {
			rot %= n
			ren.Atoms = append(ren.Atoms[rot:], ren.Atoms[:rot]...)
		}
		if k2 := QueryKey(cq.NewUCQ(ren)); k2 != key {
			t.Fatalf("renaming/reordering changed the key:\nquery: %s\nvariant: %s\n%s\n%s",
				q, ren, key, k2)
		}

		// Corpus-wide collision check: same key => equivalent queries.
		// (Chandra-Merlin is exponential, so only verify small queries.)
		if prev, loaded := fuzzSeenKeys.LoadOrStore(key, q); loaded {
			p := prev.(*cq.CQ)
			if len(p.Atoms) <= 4 && len(q.Atoms) <= 4 && p.String() != q.String() {
				n1, err1 := p.Normalize()
				n2, err2 := q.Normalize()
				if err1 == nil && err2 == nil && !cq.Equivalent(n1, n2) {
					t.Fatalf("key collision between non-equivalent queries:\n%s\n%s\nkey %s", p, q, key)
				}
			}
		}
	})
}

// renameQuery applies an injective variable renaming (reverse first-seen
// order, fresh names) to a copy of the query.
func renameQuery(q *cq.CQ) *cq.CQ {
	vars := q.Vars()
	m := make(map[string]string, len(vars))
	for i, v := range vars {
		m[v] = fmt.Sprintf("fzv%d", len(vars)-i)
	}
	out := q.Clone()
	sub := func(t cq.Term) cq.Term {
		if t.Const {
			return t
		}
		return cq.Var(m[t.Val])
	}
	for i, t := range out.Head {
		out.Head[i] = sub(t)
	}
	for i, a := range out.Atoms {
		for j, t := range a.Args {
			out.Atoms[i].Args[j] = sub(t)
		}
	}
	for i, e := range out.Eqs {
		out.Eqs[i] = cq.Equality{L: sub(e.L), R: sub(e.R)}
	}
	return out
}
