package plan_test

import (
	"reflect"
	"testing"

	"repro/internal/access"
	"repro/internal/eval"
	"repro/internal/instance"
	"repro/internal/plan"
	"repro/internal/schema"
)

// TestPreparedViewsPatchInPlace covers the live-update path of prepared
// views: PrepareIDViews wraps already-interned extents without
// re-encoding, and Set patches one view so subsequent RunPrepared calls
// see the new extent — no re-interning, ever.
func TestPreparedViewsPatchInPlace(t *testing.T) {
	s := schema.New(schema.NewRelation("R", "A"))
	db := instance.NewDatabase(s)
	ix, err := instance.BuildIndexes(db, access.NewSchema())
	if err != nil {
		t.Fatal(err)
	}
	enc := func(rows ...string) [][]uint32 {
		out := make([][]uint32, len(rows))
		for i, v := range rows {
			out[i] = []uint32{db.Dict.ID(v)}
		}
		return out
	}
	pv := plan.PrepareIDViews(ix, map[string][][]uint32{"V": enc("a", "b")})
	node := &plan.View{Name: "V", Cols: []string{"x"}}

	got, err := plan.RunPrepared(node, ix, pv)
	if err != nil {
		t.Fatal(err)
	}
	eval.SortRows(got)
	if !reflect.DeepEqual(got, [][]string{{"a"}, {"b"}}) {
		t.Fatalf("initial extent: %v", got)
	}

	pv.Set("V", enc("b", "c", "d"))
	got, err = plan.RunPrepared(node, ix, pv)
	if err != nil {
		t.Fatal(err)
	}
	eval.SortRows(got)
	if !reflect.DeepEqual(got, [][]string{{"b"}, {"c"}, {"d"}}) {
		t.Fatalf("patched extent: %v", got)
	}

	// A dictionary growing (new live values) must not invalidate the
	// prepared handle: Set with rows over fresh IDs just works.
	pv.Set("V", enc("zz-fresh"))
	got, err = plan.RunPrepared(node, ix, pv)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, [][]string{{"zz-fresh"}}) {
		t.Fatalf("fresh-value extent: %v", got)
	}
}
