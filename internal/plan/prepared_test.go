package plan_test

import (
	"reflect"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/access"
	"repro/internal/eval"
	"repro/internal/instance"
	"repro/internal/plan"
	"repro/internal/schema"
)

func preparedFixture(t *testing.T) (*instance.Database, *instance.Indexed, func(rows ...string) [][]uint32) {
	t.Helper()
	s := schema.New(schema.NewRelation("R", "A"))
	db := instance.NewDatabase(s)
	ix, err := instance.BuildIndexes(db, access.NewSchema())
	if err != nil {
		t.Fatal(err)
	}
	enc := func(rows ...string) [][]uint32 {
		out := make([][]uint32, len(rows))
		for i, v := range rows {
			out[i] = []uint32{db.Dict.ID(v)}
		}
		return out
	}
	return db, ix, enc
}

// TestPreparedIDViewsServeWithoutReencoding covers the zero-copy path:
// PrepareIDViews wraps already-interned extents (e.g. the live extents of
// an epoch) without re-encoding, including rows over IDs interned after
// the database was indexed.
func TestPreparedIDViewsServeWithoutReencoding(t *testing.T) {
	_, ix, enc := preparedFixture(t)
	node := &plan.View{Name: "V", Cols: []string{"x"}}

	pv := plan.PrepareIDViews(ix, map[string][][]uint32{"V": enc("a", "b")})
	got, err := plan.RunPrepared(node, ix, pv)
	if err != nil {
		t.Fatal(err)
	}
	eval.SortRows(got)
	if !reflect.DeepEqual(got, [][]string{{"a"}, {"b"}}) {
		t.Fatalf("initial extent: %v", got)
	}

	// A dictionary growing (new live values) must not invalidate the
	// prepared machinery: extents over fresh IDs just work.
	pv2 := plan.PrepareIDViews(ix, map[string][][]uint32{"V": enc("zz-fresh")})
	got, err = plan.RunPrepared(node, ix, pv2)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, [][]string{{"zz-fresh"}}) {
		t.Fatalf("fresh-value extent: %v", got)
	}
}

// TestLazyPreparedViewsResolveOnceUnderConcurrency covers the epoch
// publication path: a lazy view set resolves extents through a
// thread-safe fill whose expensive merge runs on FIRST read only (the
// provider memoizes, mirroring the sharded epoch's per-view sync.Once),
// and the merge never runs for views no plan reads.
func TestLazyPreparedViewsResolveOnceUnderConcurrency(t *testing.T) {
	db, ix, enc := preparedFixture(t)
	var fills, untouchedFills atomic.Int64
	memo := func(name string, counter *atomic.Int64, rows ...string) func() [][]uint32 {
		var once sync.Once
		var ext [][]uint32
		return func() [][]uint32 {
			once.Do(func() {
				counter.Add(1)
				ext = enc(rows...)
			})
			return ext
		}
	}
	views := map[string]func() [][]uint32{
		"V":         memo("V", &fills, "a", "b"),
		"Untouched": memo("Untouched", &untouchedFills, "x"),
	}
	pv := plan.NewLazyPreparedViews(db.Dict, func(name string) ([][]uint32, bool) {
		f, ok := views[name]
		if !ok {
			return nil, false
		}
		return f(), true
	})
	node := &plan.View{Name: "V", Cols: []string{"x"}}

	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 20; j++ {
				got, err := plan.RunOn(node, ix, pv)
				if err != nil {
					t.Error(err)
					return
				}
				if len(got) != 2 {
					t.Errorf("lazy extent served %d rows", len(got))
					return
				}
			}
		}()
	}
	wg.Wait()
	if n := fills.Load(); n != 1 {
		t.Fatalf("merge ran %d times for one view, want 1 (provider memoization)", n)
	}
	if n := untouchedFills.Load(); n != 0 {
		t.Fatalf("merge ran %d times for a view no plan read, want 0", n)
	}

	// Unknown views still error like eager ones.
	if _, err := plan.RunOn(&plan.View{Name: "Nope", Cols: []string{"x"}}, ix, pv); err == nil {
		t.Fatal("unknown view must error")
	}
}
