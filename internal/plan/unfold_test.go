package plan_test

import (
	"testing"

	"repro/internal/access"
	"repro/internal/cq"
	"repro/internal/eval"
	"repro/internal/instance"
	"repro/internal/plan"
	"repro/internal/schema"
	"repro/internal/topped"
	"repro/internal/workload"
)

// The defining property of unfolding (Section 2): the query Q_ξ expressed
// by a plan satisfies ξ(D) = Q_ξ(D) on every instance — whether D |= A or
// not. Exercised over all synthesized CDR plans on instances both
// satisfying and violating the access schema.
func TestUnfoldingAgreesWithExecution(t *testing.T) {
	c := workload.NewCDR(5, 2, 10)
	checker := topped.NewChecker(c.Schema, c.Access, nil)
	u := plan.NewUnfolder(c.Schema, nil)

	good := c.Generate(workload.CDRParams{Customers: 60, Days: 8, Seed: 5})
	// A deliberately violating instance: duplicate a caller's day beyond
	// the fan-out bound.
	bad := good.Clone()
	for i := 0; i < 12; i++ {
		bad.MustInsert("calls", "p0000001", "x"+itoa(i), "d03", "99")
	}
	if ok, _ := bad.SatisfiesAll(c.Access); ok {
		t.Fatal("the second instance must violate A")
	}

	for _, q := range c.Queries("p0000001", "d03") {
		res := checker.Check(q.FO, 128)
		if !res.Topped {
			continue
		}
		uq, err := u.UCQ(res.Plan)
		if err != nil {
			// FO plans (Q8) unfold via the FO path; skip the UCQ property.
			continue
		}
		for name, db := range map[string]*instance.Database{"satisfying": good, "violating": bad} {
			ix, err := instance.BuildIndexes(db, c.Access)
			if err != nil {
				t.Fatal(err)
			}
			got, err := plan.Run(res.Plan, ix, nil)
			if err != nil {
				t.Fatalf("%s/%s: run: %v", q.Name, name, err)
			}
			want, err := eval.UCQOnDB(uq, &eval.Source{DB: db})
			if err != nil {
				t.Fatalf("%s/%s: eval: %v", q.Name, name, err)
			}
			if !cq.RowsEqual(got, want) {
				t.Fatalf("%s/%s: ξ(D) != Q_ξ(D): %d vs %d rows\n%s",
					q.Name, name, len(got), len(want), plan.Render(res.Plan))
			}
		}
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	out := ""
	for n > 0 {
		out = string(rune('0'+n%10)) + out
		n /= 10
	}
	return out
}

// The approximated unfolding over-approximates: on every instance, a
// Diff-plan's output is contained in the positive unfolding's output.
func TestApproxUnfoldingOverApproximates(t *testing.T) {
	s := schema.New(schema.NewRelation("R", "A", "B"))
	a := access.NewSchema(access.NewConstraint("R", []string{"A"}, []string{"B"}, 3))
	mk := func() plan.Node {
		return &plan.Fetch{
			Child: &plan.Const{Attr: "A", Val: "k"},
			C:     a.Constraints[0],
		}
	}
	p := &plan.Diff{
		L: mk(),
		R: &plan.Select{Child: mk(), Cond: []plan.CondItem{{L: "B", RConst: true, R: "1"}}},
	}
	if err := plan.Validate(p, s); err != nil {
		t.Fatal(err)
	}
	db := instance.NewDatabase(s)
	db.MustInsert("R", "k", "1")
	db.MustInsert("R", "k", "2")
	db.MustInsert("R", "k", "3")
	db.MustInsert("R", "z", "9")
	ix, err := instance.BuildIndexes(db, a)
	if err != nil {
		t.Fatal(err)
	}
	got, err := plan.Run(p, ix, nil)
	if err != nil {
		t.Fatal(err)
	}
	// The Diff plan keeps the k-rows whose B is not 1.
	if len(got) != 2 {
		t.Fatalf("diff plan: %v", got)
	}
	u := plan.NewUnfolder(s, nil)
	uq, err := u.UCQApprox(p)
	if err != nil {
		t.Fatal(err)
	}
	over, err := eval.UCQOnDB(uq, &eval.Source{DB: db})
	if err != nil {
		t.Fatal(err)
	}
	superset := map[string]bool{}
	for _, r := range over {
		superset[instance.Tuple(r).Key()] = true
	}
	for _, r := range got {
		if !superset[instance.Tuple(r).Key()] {
			t.Fatalf("plan row %v missing from the positive over-approximation", r)
		}
	}
	// And the over-approximation is strict here: it includes the B=1 row.
	if len(over) <= len(got) {
		t.Fatalf("expected a strict over-approximation: %d vs %d", len(over), len(got))
	}
}
