package plan

import (
	"fmt"

	"repro/internal/instance"
)

// Materialized maps view names to their cached extents V(D), with columns
// ordered like the View node's Cols. Reading from cached views costs no
// fetch budget (Section 2: "tuples retrieved from the cached views do not
// incur any I/O").
type Materialized map[string][][]string

// Run executes the plan bottom-up over the indexed instance (Section 2's
// operational semantics), returning the root relation with set semantics.
// All access to the underlying database is via ix.Fetch, so ix's counters
// measure |Dξ| afterwards.
func Run(n Node, ix *instance.Indexed, views Materialized) ([][]string, error) {
	rows, err := run(n, ix, views)
	if err != nil {
		return nil, err
	}
	return dedupe(rows), nil
}

func run(n Node, ix *instance.Indexed, views Materialized) ([][]string, error) {
	switch x := n.(type) {
	case *Const:
		return [][]string{{x.Val}}, nil

	case *View:
		rows, ok := views[x.Name]
		if !ok {
			return nil, fmt.Errorf("plan: view %s not materialized", x.Name)
		}
		for _, r := range rows {
			if len(r) != len(x.Cols) {
				return nil, fmt.Errorf("plan: view %s rows have %d columns, node expects %d", x.Name, len(r), len(x.Cols))
			}
		}
		return rows, nil

	case *Fetch:
		var inputs [][]string
		if x.Child == nil {
			inputs = [][]string{{}}
		} else {
			childRows, err := run(x.Child, ix, views)
			if err != nil {
				return nil, err
			}
			// Project child rows onto the constraint's X order via the
			// positional binding.
			childAttrs := x.Child.Attrs()
			bind := x.InBind()
			pos := make([]int, len(bind))
			for i, a := range bind {
				pos[i] = indexOf(childAttrs, a)
				if pos[i] < 0 {
					return nil, fmt.Errorf("plan: fetch child lacks attribute %s", a)
				}
			}
			seen := map[string]bool{}
			for _, r := range childRows {
				key := make(instance.Tuple, len(pos))
				for i, p := range pos {
					key[i] = r[p]
				}
				k := key.Key()
				if seen[k] {
					continue
				}
				seen[k] = true
				inputs = append(inputs, key)
			}
		}
		var out [][]string
		for _, in := range inputs {
			rows, err := ix.Fetch(x.C, instance.Tuple(in))
			if err != nil {
				return nil, err
			}
			for _, r := range rows {
				out = append(out, r)
			}
		}
		return out, nil

	case *Project:
		childRows, err := run(x.Child, ix, views)
		if err != nil {
			return nil, err
		}
		childAttrs := x.Child.Attrs()
		pos := make([]int, len(x.Cols))
		for i, a := range x.Cols {
			pos[i] = indexOf(childAttrs, a)
		}
		out := make([][]string, 0, len(childRows))
		for _, r := range childRows {
			row := make([]string, len(pos))
			for i, p := range pos {
				row[i] = r[p]
			}
			out = append(out, row)
		}
		return out, nil

	case *Select:
		// Equality selections directly over a product run as a hash join:
		// same semantics, linear instead of quadratic time. This matters
		// because cached views may be large even when fetches are bounded.
		if prod, ok := x.Child.(*Product); ok {
			if out, done, err := hashJoin(x, prod, ix, views); done {
				return out, err
			}
		}
		childRows, err := run(x.Child, ix, views)
		if err != nil {
			return nil, err
		}
		attrs := x.Child.Attrs()
		var out [][]string
	rows:
		for _, r := range childRows {
			for _, c := range x.Cond {
				li := indexOf(attrs, c.L)
				var rv string
				if c.RConst {
					rv = c.R
				} else {
					rv = r[indexOf(attrs, c.R)]
				}
				eq := r[li] == rv
				if eq == c.Neq {
					continue rows
				}
			}
			out = append(out, r)
		}
		return out, nil

	case *Product:
		l, err := run(x.L, ix, views)
		if err != nil {
			return nil, err
		}
		r, err := run(x.R, ix, views)
		if err != nil {
			return nil, err
		}
		out := make([][]string, 0, len(l)*len(r))
		for _, a := range l {
			for _, b := range r {
				row := make([]string, 0, len(a)+len(b))
				row = append(row, a...)
				row = append(row, b...)
				out = append(out, row)
			}
		}
		return out, nil

	case *Union:
		l, err := run(x.L, ix, views)
		if err != nil {
			return nil, err
		}
		r, err := run(x.R, ix, views)
		if err != nil {
			return nil, err
		}
		return append(l, r...), nil

	case *Diff:
		l, err := run(x.L, ix, views)
		if err != nil {
			return nil, err
		}
		r, err := run(x.R, ix, views)
		if err != nil {
			return nil, err
		}
		drop := map[string]bool{}
		for _, b := range r {
			drop[instance.Tuple(b).Key()] = true
		}
		var out [][]string
		for _, a := range l {
			if !drop[instance.Tuple(a).Key()] {
				out = append(out, a)
			}
		}
		return out, nil

	case *Rename:
		return run(x.Child, ix, views)

	default:
		return nil, fmt.Errorf("plan: unknown node type %T", n)
	}
}

// hashJoin evaluates σ_Cond(L × R) as a hash join when every cross-side
// condition is an equality. Side-local conditions are applied as filters.
// done is false when the condition shape does not permit the rewrite.
func hashJoin(sel *Select, prod *Product, ix *instance.Indexed, views Materialized) ([][]string, bool, error) {
	la, ra := prod.L.Attrs(), prod.R.Attrs()
	var joinL, joinR []int    // cross-side equality positions
	var localConds []CondItem // conditions evaluable on the combined row
	for _, c := range sel.Cond {
		if c.Neq {
			return nil, false, nil
		}
		if c.RConst {
			localConds = append(localConds, c)
			continue
		}
		li, lInL := indexOf(la, c.L), indexOf(ra, c.L)
		ri, rInL := indexOf(la, c.R), indexOf(ra, c.R)
		switch {
		case li >= 0 && rInL >= 0: // L-attr = R-attr
			joinL, joinR = append(joinL, li), append(joinR, rInL)
		case lInL >= 0 && ri >= 0: // R-attr = L-attr
			joinL, joinR = append(joinL, ri), append(joinR, lInL)
		default:
			localConds = append(localConds, c)
		}
	}
	if len(joinL) == 0 {
		return nil, false, nil
	}
	lRows, err := run(prod.L, ix, views)
	if err != nil {
		return nil, true, err
	}
	rRows, err := run(prod.R, ix, views)
	if err != nil {
		return nil, true, err
	}
	// Build on the smaller side.
	index := make(map[string][][]string, len(rRows))
	for _, r := range rRows {
		key := joinKeyOf(r, joinR)
		index[key] = append(index[key], r)
	}
	attrs := append(append([]string{}, la...), ra...)
	var out [][]string
	for _, l := range lRows {
		key := joinKeyOf(l, joinL)
	match:
		for _, r := range index[key] {
			row := make([]string, 0, len(l)+len(r))
			row = append(row, l...)
			row = append(row, r...)
			for _, c := range localConds {
				li := indexOf(attrs, c.L)
				rv := c.R
				if !c.RConst {
					rv = row[indexOf(attrs, c.R)]
				}
				if row[li] != rv {
					continue match
				}
			}
			out = append(out, row)
		}
	}
	return out, true, nil
}

func joinKeyOf(row []string, pos []int) string {
	out := ""
	for _, p := range pos {
		out += row[p] + "\x1f"
	}
	return out
}

func indexOf(xs []string, a string) int {
	for i, x := range xs {
		if x == a {
			return i
		}
	}
	return -1
}

func dedupe(rows [][]string) [][]string {
	seen := make(map[string]bool, len(rows))
	out := rows[:0:0]
	for _, r := range rows {
		k := instance.Tuple(r).Key()
		if seen[k] {
			continue
		}
		seen[k] = true
		out = append(out, r)
	}
	return out
}
