package plan

import (
	"fmt"
	"sync"

	"repro/internal/access"
	"repro/internal/instance"
	"repro/internal/intern"
	"repro/internal/par"
)

// Source is what plan execution reads the underlying database through: the
// value dictionary rows are interned against, and the fetch function of the
// access constraints. instance.Indexed is the single-machine source; the
// sharded engine (internal/shard) implements a scatter-gather source that
// routes each fetch to the owning partition or gathers across all of them.
// FetchIDs must return the distinct XY-projections for the X-value and is
// responsible for its own fetch accounting; returned rows must stay valid
// (and unmutated) for the duration of the plan run.
type Source interface {
	Dict() *intern.Dict
	FetchIDs(c *access.Constraint, xval []uint32) ([][]uint32, error)
}

// Materialized maps view names to their cached extents V(D), with columns
// ordered like the View node's Cols. Reading from cached views costs no
// fetch budget (Section 2: "tuples retrieved from the cached views do not
// incur any I/O").
type Materialized map[string][][]string

// Run executes the plan bottom-up over the indexed instance (Section 2's
// operational semantics), returning the root relation with set semantics.
// All access to the underlying database is via ix.Fetch, so ix's counters
// measure |Dξ| afterwards. Execution is interned end-to-end: rows are
// ID-encoded against the database dictionary and decoded only here at the
// boundary. Independent subtrees (products, unions, differences, the two
// sides of a hash join) run concurrently on the bounded worker pool;
// Indexed's atomic counters keep the |Dξ| accounting exact.
func Run(n Node, ix *instance.Indexed, views Materialized) ([][]string, error) {
	d := ix.DB.Dict
	return exec(n, &execCtx{src: ix, d: d, views: views, cache: intern.NewRowCache(d)})
}

// PreparedViews is the ID-encoded form of a Materialized view set, bound
// to the dictionary of one database. Preparing once and executing many
// plans against it (RunPrepared) avoids re-interning large view extents on
// every Run — the right shape for benchmark loops and serving paths that
// reuse a cache.
//
// A PreparedViews may be LAZY (NewLazyPreparedViews): a view's rows are
// resolved by a fill function per read, so serving layers can publish an
// epoch without eagerly materializing extents no plan may ever read.
// There is deliberately no lock here — fill must be thread-safe and
// memoize its own expensive work (the sharded epoch's per-view
// sync.Once), so concurrent readers of one epoch never contend.
type PreparedViews struct {
	d    *intern.Dict
	rows map[string][][]uint32
	fill func(name string) ([][]uint32, bool)
}

// get resolves one view's rows, through fill when set. Safe for
// concurrent use (the rows map is immutable after construction).
func (pv *PreparedViews) get(name string) ([][]uint32, bool) {
	if pv.fill == nil {
		rows, ok := pv.rows[name]
		return rows, ok
	}
	return pv.fill(name)
}

// PrepareViews interns the view extents against ix's database dictionary.
func PrepareViews(ix *instance.Indexed, views Materialized) *PreparedViews {
	d := ix.DB.Dict
	cache := intern.NewRowCache(d)
	rows := make(map[string][][]uint32, len(views))
	for name, ext := range views {
		rows[name] = cache.Encode(name, ext)
	}
	return &PreparedViews{d: d, rows: rows}
}

// PrepareIDViews wraps already-interned view extents (e.g. the live
// extents of eval's delta engine) as PreparedViews bound to ix's database,
// with no re-encoding. The rows are retained by reference and must not
// change afterwards; epoch publishers build a fresh PreparedViews (or a
// lazy one) per version instead of patching.
func PrepareIDViews(ix *instance.Indexed, rows map[string][][]uint32) *PreparedViews {
	return NewPreparedViews(ix.DB.Dict, rows)
}

// NewPreparedViews wraps already-interned view extents bound to an explicit
// dictionary — the constructor for sources that are not a single Indexed
// (the sharded engine's gathered extents). The map is copied; the row sets
// are retained by reference.
func NewPreparedViews(d *intern.Dict, rows map[string][][]uint32) *PreparedViews {
	m := make(map[string][][]uint32, len(rows))
	for name, ext := range rows {
		m[name] = ext
	}
	return &PreparedViews{d: d, rows: m}
}

// NewLazyPreparedViews builds a PreparedViews whose extents are resolved
// by fill on every read. fill must be thread-safe, pure with respect to
// the published state it captures, and memoize its own expensive work —
// epoch publishers pin immutable per-shard extent headers and gather
// them once on first demand, so a writer-side batch never pays for views
// nobody reads and concurrent readers never serialize.
func NewLazyPreparedViews(d *intern.Dict, fill func(name string) ([][]uint32, bool)) *PreparedViews {
	return &PreparedViews{d: d, fill: fill}
}

// RunPrepared is Run over views prepared with PrepareViews against the
// same database.
func RunPrepared(n Node, ix *instance.Indexed, pv *PreparedViews) ([][]string, error) {
	return RunOn(n, ix, pv)
}

// emptyPrepared serves RunOn calls with a nil view set (View nodes error).
var emptyPrepared = &PreparedViews{rows: map[string][][]uint32{}}

// RunOn executes the plan against an arbitrary Source with views prepared
// over the same dictionary. A nil pv serves no views (View nodes error).
func RunOn(n Node, src Source, pv *PreparedViews) ([][]string, error) {
	rows, _, err := runOn(n, src, pv, false)
	return rows, err
}

// RunObserved is RunOn with execution profiling: alongside the answer it
// returns the run's Observation — realized per-constraint fetch groups,
// hash-join fan-outs and the output cardinality — the feedback signal a
// serving layer folds into an ObservedStats to correct the cost model's
// estimates. Profiling costs a few counter updates per operator, not per
// row; Run/RunOn skip even that.
func RunObserved(n Node, src Source, pv *PreparedViews) ([][]string, *Observation, error) {
	return runOn(n, src, pv, true)
}

func runOn(n Node, src Source, pv *PreparedViews, observe bool) ([][]string, *Observation, error) {
	if pv != nil && pv.d != src.Dict() {
		return nil, nil, fmt.Errorf("plan: prepared views belong to a different database")
	}
	ctx := &execCtx{src: src, d: src.Dict()}
	if pv != nil {
		ctx.prepared = pv
	} else {
		ctx.prepared = emptyPrepared
	}
	if observe {
		ctx.obs = &Observation{}
	}
	rows, err := exec(n, ctx)
	return rows, ctx.obs, err
}

func exec(n Node, ctx *execCtx) ([][]string, error) {
	rows, err := ctx.run(n)
	if err != nil {
		return nil, err
	}
	seen := intern.NewSet(len(rows))
	out := rows[:0:0]
	for _, r := range rows {
		if seen.Add(r) {
			out = append(out, r)
		}
	}
	if ctx.obs != nil {
		ctx.obs.Rows = len(out)
	}
	return ctx.d.DecodeAll(out), nil
}

// execCtx carries one execution's interning state. View extents are
// interned lazily, once per view, under a lock so parallel subtrees can
// share the cache.
type execCtx struct {
	src      Source
	d        *intern.Dict
	views    Materialized
	cache    *intern.RowCache // lazy interning of views (Run path)
	prepared *PreparedViews   // non-nil when running over PreparedViews

	obs   *Observation // nil unless RunObserved; guarded by obsMu
	obsMu sync.Mutex   // parallel subtrees record concurrently
}

// observeFetch records one fetch node's realized traffic: probes distinct
// probe keys through constraint c returned rows tuples.
func (ctx *execCtx) observeFetch(c *access.Constraint, probes, rows int) {
	if ctx.obs == nil {
		return
	}
	ctx.obsMu.Lock()
	ctx.obs.addGroup(c.Key(), probes, rows)
	ctx.obsMu.Unlock()
}

// observeJoin records one hash join's realized fan-out.
func (ctx *execCtx) observeJoin(in, out int) {
	if ctx.obs == nil {
		return
	}
	ctx.obsMu.Lock()
	ctx.obs.JoinIn += in
	ctx.obs.JoinOut += out
	ctx.obsMu.Unlock()
}

func (ctx *execCtx) viewRows(name string) ([][]uint32, bool) {
	if ctx.prepared != nil {
		return ctx.prepared.get(name)
	}
	rows, ok := ctx.views[name]
	if !ok {
		return nil, false
	}
	return ctx.cache.Encode(name, rows), true
}

// both evaluates two subtrees, concurrently when workers are free.
func (ctx *execCtx) both(ln, rn Node) (l, r [][]uint32, err error) {
	var lerr, rerr error
	perr := par.Do(
		func() error { l, lerr = ctx.run(ln); return lerr },
		func() error { r, rerr = ctx.run(rn); return rerr },
	)
	return l, r, perr
}

func (ctx *execCtx) run(n Node) ([][]uint32, error) {
	switch x := n.(type) {
	case *Const:
		return [][]uint32{{ctx.d.ID(x.Val)}}, nil

	case *View:
		rows, ok := ctx.viewRows(x.Name)
		if !ok {
			return nil, fmt.Errorf("plan: view %s not materialized", x.Name)
		}
		for _, r := range rows {
			if len(r) != len(x.Cols) {
				return nil, fmt.Errorf("plan: view %s rows have %d columns, node expects %d", x.Name, len(r), len(x.Cols))
			}
		}
		return rows, nil

	case *Fetch:
		var inputs [][]uint32
		if x.Child == nil {
			inputs = [][]uint32{{}}
		} else {
			childRows, err := ctx.run(x.Child)
			if err != nil {
				return nil, err
			}
			// Project child rows onto the constraint's X order via the
			// positional binding.
			childAttrs := x.Child.Attrs()
			bind := x.InBind()
			pos := make([]int, len(bind))
			for i, a := range bind {
				pos[i] = indexOf(childAttrs, a)
				if pos[i] < 0 {
					return nil, fmt.Errorf("plan: fetch child lacks attribute %s", a)
				}
			}
			seen := intern.NewSet(len(childRows))
			for _, r := range childRows {
				if key, fresh := seen.AddProj(r, pos); fresh {
					inputs = append(inputs, key)
				}
			}
		}
		var out [][]uint32
		for _, in := range inputs {
			rows, err := ctx.src.FetchIDs(x.C, in)
			if err != nil {
				return nil, err
			}
			out = append(out, rows...)
		}
		ctx.observeFetch(x.C, len(inputs), len(out))
		return out, nil

	case *Project:
		childRows, err := ctx.run(x.Child)
		if err != nil {
			return nil, err
		}
		childAttrs := x.Child.Attrs()
		pos := make([]int, len(x.Cols))
		for i, a := range x.Cols {
			pos[i] = indexOf(childAttrs, a)
		}
		out := make([][]uint32, 0, len(childRows))
		for _, r := range childRows {
			out = append(out, intern.Project(r, pos))
		}
		return out, nil

	case *Select:
		// Equality selections directly over a product run as a hash join:
		// same semantics, linear instead of quadratic time. This matters
		// because cached views may be large even when fetches are bounded.
		if prod, ok := x.Child.(*Product); ok {
			if out, done, err := ctx.hashJoin(x, prod); done {
				return out, err
			}
		}
		childRows, err := ctx.run(x.Child)
		if err != nil {
			return nil, err
		}
		attrs := x.Child.Attrs()
		conds := ctx.resolveConds(x.Cond, attrs)
		var out [][]uint32
	rows:
		for _, r := range childRows {
			for _, c := range conds {
				rv := c.rconst
				if c.rpos >= 0 {
					rv = r[c.rpos]
				}
				if (r[c.lpos] == rv) == c.neq {
					continue rows
				}
			}
			out = append(out, r)
		}
		return out, nil

	case *Product:
		l, r, err := ctx.both(x.L, x.R)
		if err != nil {
			return nil, err
		}
		out := make([][]uint32, 0, len(l)*len(r))
		for _, a := range l {
			for _, b := range r {
				row := make([]uint32, 0, len(a)+len(b))
				row = append(row, a...)
				row = append(row, b...)
				out = append(out, row)
			}
		}
		return out, nil

	case *Union:
		l, r, err := ctx.both(x.L, x.R)
		if err != nil {
			return nil, err
		}
		return append(l, r...), nil

	case *Diff:
		l, r, err := ctx.both(x.L, x.R)
		if err != nil {
			return nil, err
		}
		drop := intern.NewSet(len(r))
		for _, b := range r {
			drop.Add(b)
		}
		var out [][]uint32
		for _, a := range l {
			if !drop.Has(a) {
				out = append(out, a)
			}
		}
		return out, nil

	case *Rename:
		return ctx.run(x.Child)

	default:
		return nil, fmt.Errorf("plan: unknown node type %T", n)
	}
}

// cond is a CondItem with attribute names resolved to row positions and
// constants interned: lpos op (rpos | rconst), flipped by neq.
type cond struct {
	lpos   int
	rpos   int // -1 when the right side is a constant
	rconst uint32
	neq    bool
}

func (ctx *execCtx) resolveConds(items []CondItem, attrs []string) []cond {
	out := make([]cond, len(items))
	for i, c := range items {
		rc := cond{lpos: indexOf(attrs, c.L), rpos: -1, neq: c.Neq}
		if c.RConst {
			rc.rconst = ctx.d.ID(c.R)
		} else {
			rc.rpos = indexOf(attrs, c.R)
		}
		out[i] = rc
	}
	return out
}

// hashJoin evaluates σ_Cond(L × R) as a hash join when every cross-side
// condition is an equality. Side-local conditions are applied as filters.
// done is false when the condition shape does not permit the rewrite.
func (ctx *execCtx) hashJoin(sel *Select, prod *Product) ([][]uint32, bool, error) {
	la, ra := prod.L.Attrs(), prod.R.Attrs()
	var joinL, joinR []int    // cross-side equality positions
	var localConds []CondItem // conditions evaluable on the combined row
	for _, c := range sel.Cond {
		if c.Neq {
			return nil, false, nil
		}
		if c.RConst {
			localConds = append(localConds, c)
			continue
		}
		li, lInL := indexOf(la, c.L), indexOf(ra, c.L)
		ri, rInL := indexOf(la, c.R), indexOf(ra, c.R)
		switch {
		case li >= 0 && rInL >= 0: // L-attr = R-attr
			joinL, joinR = append(joinL, li), append(joinR, rInL)
		case lInL >= 0 && ri >= 0: // R-attr = L-attr
			joinL, joinR = append(joinL, ri), append(joinR, lInL)
		default:
			localConds = append(localConds, c)
		}
	}
	if len(joinL) == 0 {
		return nil, false, nil
	}
	lRows, rRows, err := ctx.both(prod.L, prod.R)
	if err != nil {
		return nil, true, err
	}
	// Build on the smaller side; a bounded plan's fetch side is often tiny
	// while the view side grows with |D|, and probing is cheaper than
	// building.
	build, probe := rRows, lRows
	buildPos, probePos := joinR, joinL
	swapped := false
	if len(lRows) < len(rRows) {
		build, probe = lRows, rRows
		buildPos, probePos = joinL, joinR
		swapped = true
	}
	index := intern.NewIndex(len(build))
	for _, r := range build {
		index.AddAt(r, buildPos)
	}
	attrs := append(append([]string{}, la...), ra...)
	conds := ctx.resolveConds(localConds, attrs)
	var out [][]uint32
	for _, p := range probe {
	match:
		for _, m := range index.GetAt(p, probePos) {
			lrow, rrow := p, m
			if swapped {
				lrow, rrow = m, p
			}
			row := make([]uint32, 0, len(lrow)+len(rrow))
			row = append(row, lrow...)
			row = append(row, rrow...)
			for _, c := range conds {
				rv := c.rconst
				if c.rpos >= 0 {
					rv = row[c.rpos]
				}
				if row[c.lpos] != rv {
					continue match
				}
			}
			out = append(out, row)
		}
	}
	ctx.observeJoin(len(lRows)+len(rRows), len(out))
	return out, true, nil
}

func indexOf(xs []string, a string) int {
	for i, x := range xs {
		if x == a {
			return i
		}
	}
	return -1
}
