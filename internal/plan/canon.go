package plan

import (
	"sort"
	"strconv"
	"strings"

	"repro/internal/cq"
)

// QueryKey returns a canonical cache key for a UCQ: two queries that are
// equal up to variable renaming, atom reordering, disjunct reordering and
// resolvable equality conditions map to the same key, and equal keys imply
// equality up to renaming (the key IS a rendering of the canonicalized
// query), so a cache keyed on it can never serve a plan for a different
// query. Unsatisfiable disjuncts (equalities forcing two distinct
// constants) contribute nothing to the union and are dropped.
//
// The canonical form of each disjunct is the lexicographically least
// rendering over all atom orderings, with variables named by first
// occurrence (head first). The search is exact — branch-and-bound over
// atom permutations — up to canonMaxAtoms atoms; beyond that the disjunct
// falls back to a deterministic but renaming-sensitive form (keys stay
// sound: equal keys still imply equal queries; renamed variants of huge
// queries merely miss the cache).
func QueryKey(u *cq.UCQ) string {
	parts := make([]string, 0, len(u.Disjuncts))
	for _, d := range u.Disjuncts {
		s, ok := canonCQ(d)
		if !ok {
			continue // unsatisfiable disjunct: identical on every instance without it
		}
		parts = append(parts, s)
	}
	if len(parts) == 0 {
		return "empty/" + strconv.Itoa(u.Arity())
	}
	sort.Strings(parts)
	// Idempotent union: duplicate disjuncts collapse.
	w := 0
	for i, p := range parts {
		if i == 0 || parts[i-1] != p {
			parts[w] = p
			w++
		}
	}
	return strings.Join(parts[:w], " ∪ ")
}

// canonMaxAtoms bounds the exact canonical search; 8 atoms is far above
// the plan-size budgets the rewriting search handles anyway.
const canonMaxAtoms = 8

// canonCQ canonicalizes one disjunct; ok is false when the equality
// conditions are unsatisfiable.
func canonCQ(q *cq.CQ) (string, bool) {
	n, err := q.Normalize()
	if err != nil {
		return "", false
	}
	names := map[string]string{}
	head := make([]string, len(n.Head))
	for i, t := range n.Head {
		head[i] = canonTerm(t, names)
	}
	hs := "(" + strings.Join(head, ",") + ")<-"
	if len(n.Atoms) == 0 {
		return hs, true
	}
	if len(n.Atoms) > canonMaxAtoms {
		// Fallback: render head AND atoms with the ORIGINAL variable names
		// (plus the canonical head prefix for arity/shape). Equal keys then
		// imply identical queries up to atom order — sound, merely
		// renaming-sensitive, so huge renamed variants miss the cache.
		origHead := make([]string, len(n.Head))
		for i, t := range n.Head {
			origHead[i] = origTerm(t)
		}
		rendered := make([]string, len(n.Atoms))
		for i, a := range n.Atoms {
			parts := make([]string, len(a.Args))
			for j, t := range a.Args {
				parts[j] = origTerm(t)
			}
			rendered[i] = strconv.Quote(a.Rel) + "(" + strings.Join(parts, ",") + ")"
		}
		sort.Strings(rendered)
		return hs + "big:(" + strings.Join(origHead, ",") + ")<-" + strings.Join(rendered, ";"), true
	}
	c := &canonSearch{atoms: n.Atoms, used: make([]bool, len(n.Atoms))}
	c.dfs(names, make([]string, 0, len(n.Atoms)), true)
	return hs + strings.Join(c.best, ";"), true
}

// canonSearch finds the lexicographically least sequence of atom
// renderings over all orderings. A branch is pruned as soon as its prefix
// renders strictly greater than the incumbent's.
type canonSearch struct {
	atoms []cq.Atom
	used  []bool
	best  []string
}

// dfs extends the current prefix (parts, with the naming built so far).
// tied reports that the prefix equals the incumbent best prefix — only
// then can a later element still lose to the incumbent.
func (c *canonSearch) dfs(names map[string]string, parts []string, tied bool) {
	depth := len(parts)
	if depth == len(c.atoms) {
		if c.best == nil || less(parts, c.best) {
			c.best = append([]string(nil), parts...)
		}
		return
	}
	for i, a := range c.atoms {
		if c.used[i] {
			continue
		}
		names2 := cloneNames(names)
		r := canonAtom(a, names2)
		tied2 := tied
		if c.best != nil && tied {
			if depth >= len(c.best) || r > c.best[depth] {
				continue // prefix already beaten
			}
			tied2 = depth < len(c.best) && r == c.best[depth]
		}
		c.used[i] = true
		c.dfs(names2, append(parts, r), tied2)
		c.used[i] = false
	}
}

func less(a, b []string) bool {
	for i := range a {
		if i >= len(b) {
			return false
		}
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return len(a) < len(b)
}

func cloneNames(m map[string]string) map[string]string {
	out := make(map[string]string, len(m)+2)
	for k, v := range m {
		out[k] = v
	}
	return out
}

// canonAtom renders an atom under the naming, assigning fresh canonical
// names (c0, c1, ...) to variables seen for the first time, in argument
// order.
func canonAtom(a cq.Atom, names map[string]string) string {
	var b strings.Builder
	b.WriteString(strconv.Quote(a.Rel))
	b.WriteByte('(')
	for i, t := range a.Args {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(canonTerm(t, names))
	}
	b.WriteByte(')')
	return b.String()
}

// canonTerm renders a term under the naming. Constants are Go-quoted —
// NOT concatenated raw — so a constant crafted to look like key syntax
// (embedded quotes, separators) cannot make two different queries render
// the same key; the same holds for relation names in canonAtom. Canonical
// variable names are generated (c0, c1, ...) and inherently safe.
func canonTerm(t cq.Term, names map[string]string) string {
	if t.Const {
		return strconv.Quote(t.Val)
	}
	nm, ok := names[t.Val]
	if !ok {
		nm = "c" + strconv.Itoa(len(names))
		names[t.Val] = nm
	}
	return nm
}

// origTerm renders a term with its original name, quote-escaped, with a
// kind prefix so a variable can never collide with a constant.
func origTerm(t cq.Term) string {
	if t.Const {
		return "k" + strconv.Quote(t.Val)
	}
	return "v" + strconv.Quote(t.Val)
}
