package plan

import (
	"math"
	"testing"

	"repro/internal/access"
)

// hugeTree builds a left-deep Product of `leaves` copies of a view whose
// stated cardinality is near the int64 ceiling: the row estimate
// overflows float64 to +Inf well before 20 leaves.
func hugeTree(leaves int) Node {
	var n Node = &View{Name: "H", Cols: []string{"a"}}
	for i := 1; i < leaves; i++ {
		n = &Product{L: n, R: &View{Name: "H", Cols: []string{"a"}}}
	}
	return n
}

// nonFiniteStats prices view H at ~9e18 rows and view Z at zero.
func nonFiniteStats() *Stats {
	return &Stats{ViewRows: map[string]int{"H": int(1) << 62, "Z": 0}}
}

// Best must skip candidates whose score overflows to +Inf or collapses to
// NaN (0 * Inf in the product arithmetic) — a non-finite first slot used
// to win every comparison and be kept forever.
func TestBestSkipsNonFinite(t *testing.T) {
	st := nonFiniteStats()
	inf := hugeTree(24)
	if s := Estimate(inf, st).Score(); !math.IsInf(s, 1) {
		t.Fatalf("fixture: huge product tree must score +Inf, got %v", s)
	}
	nan := &Product{L: &View{Name: "Z", Cols: []string{"z"}}, R: hugeTree(24)}
	if s := Estimate(nan, st).Score(); !math.IsNaN(s) {
		t.Fatalf("fixture: 0 x Inf product must score NaN, got %v", s)
	}
	finite := &View{Name: "V", Cols: []string{"a"}}

	for name, cands := range map[string][]Node{
		"nan-first": {nan, inf, finite},
		"inf-first": {inf, nan, finite},
	} {
		best, c := Best(cands, st)
		if best != 2 {
			t.Fatalf("%s: Best must skip non-finite scores, got index %d (%+v)", name, best, c)
		}
		if s := c.Score(); math.IsNaN(s) || math.IsInf(s, 0) {
			t.Fatalf("%s: returned cost must be finite, got %v", name, s)
		}
	}

	// All non-finite: some candidate must still be returned.
	if best, _ := Best([]Node{nan, inf}, st); best != 0 {
		t.Fatalf("all-non-finite: expected index 0, got %d", best)
	}
	if best, _ := Best(nil, st); best != -1 {
		t.Fatal("empty candidate set must return -1")
	}
}

// Exact ties break deterministically toward the lowest candidate index.
func TestBestTieBreaksByIndex(t *testing.T) {
	a := &View{Name: "V", Cols: []string{"a"}}
	b := &View{Name: "V", Cols: []string{"a"}}
	st := &Stats{ViewRows: map[string]int{"V": 100}}
	if best, _ := Best([]Node{a, b}, st); best != 0 {
		t.Fatalf("tie must keep the lowest index, got %d", best)
	}
	// A leading non-finite candidate must not steal the tie.
	if best, _ := Best([]Node{hugeTree(24), a, b}, nonFiniteStats()); best != 1 {
		t.Fatal("tie after a skipped non-finite slot must keep the first finite candidate")
	}
}

// The observation overlay must replace the estimated group width: same
// plan, same statistics, different ranking once a realized width lands.
func TestEstimateObservedOverridesWidth(t *testing.T) {
	byA := access.NewConstraint("R", []string{"A"}, []string{"B"}, 4096)
	probe := &Fetch{Child: &Const{Attr: "x", Val: "k"}, C: byA, Bind: []string{"x"}, As: []string{"a", "b"}}
	st := &Stats{
		RelRows:     map[string]int{"R": 9000},
		RelDistinct: map[string]map[string]int{"R": {"A": 6000, "B": 100}},
	}
	base := Estimate(probe, st)
	if base.Fetch > 10 {
		t.Fatalf("fixture: estimated probe width must be tiny, got %v", base.Fetch)
	}

	obs := NewObservedStats(0.5)
	obs.Absorb(&Observation{Groups: map[string]GroupObs{byA.Key(): {Probes: 1, Rows: 3000}}})
	over := EstimateObserved(probe, st, obs)
	if over.Fetch < 2900 || over.Fetch > 3100 {
		t.Fatalf("observed width must replace the estimate: fetch %v", over.Fetch)
	}
	// EWMA: a second, smaller sample pulls the mean halfway (alpha 0.5).
	obs.Absorb(&Observation{Groups: map[string]GroupObs{byA.Key(): {Probes: 1, Rows: 1000}}})
	if w, ok := obs.Width(byA.Key()); !ok || w < 1900 || w > 2100 {
		t.Fatalf("EWMA width off: %v (%v)", w, ok)
	}
	if obs.Samples() != 2 {
		t.Fatalf("samples: got %d, want 2", obs.Samples())
	}

	// The overlay is clamped to the constraint's promise N and floored at
	// 0.5 (an observed-empty group must not zero downstream estimates).
	obs2 := NewObservedStats(1)
	obs2.Absorb(&Observation{Groups: map[string]GroupObs{byA.Key(): {Probes: 1, Rows: 100000}}})
	if c := EstimateObserved(probe, st, obs2); c.Fetch > float64(byA.N) {
		t.Fatalf("observed width must clamp to N=%d, got fetch %v", byA.N, c.Fetch)
	}
	obs3 := NewObservedStats(1)
	obs3.Absorb(&Observation{Groups: map[string]GroupObs{byA.Key(): {Probes: 4, Rows: 0}}})
	if c := EstimateObserved(probe, st, obs3); c.Fetch <= 0 || c.Fetch > 1 {
		t.Fatalf("observed-empty group must floor at 0.5 fetches, got %v", c.Fetch)
	}

	// A nil overlay (and a nil *ObservedStats) is exactly Estimate.
	if got := EstimateObserved(probe, st, nil); got != base {
		t.Fatalf("nil overlay must match Estimate: %+v vs %+v", got, base)
	}
}
