package plan

import (
	"testing"

	"repro/internal/access"
)

// planpick-shaped candidates: a view scan (no fetches), a selective fetch,
// and a whole-table fetch must rank in that order once the statistics say
// the table is large and the selective group is small.
func TestEstimateRanksFetchVolume(t *testing.T) {
	sel := access.NewConstraint("R", []string{"A"}, []string{"B"}, 5)
	all := access.NewConstraint("R", nil, []string{"A", "B"}, 100_000)

	viewPlan := &Project{
		Child: &Select{
			Child: &View{Name: "V", Cols: []string{"a", "b"}},
			Cond:  []CondItem{{L: "a", RConst: true, R: "k"}},
		},
		Cols: []string{"b"},
	}
	selPlan := &Project{
		Child: &Fetch{Child: &Const{Attr: "x", Val: "k"}, C: sel, Bind: []string{"x"}, As: []string{"a", "b"}},
		Cols:  []string{"b"},
	}
	allPlan := &Project{
		Child: &Select{
			Child: &Fetch{C: all, As: []string{"a", "b"}},
			Cond:  []CondItem{{L: "a", RConst: true, R: "k"}},
		},
		Cols: []string{"b"},
	}

	st := &Stats{
		RelRows:      map[string]int{"R": 50_000},
		RelDistinct:  map[string]map[string]int{"R": {"A": 12_000, "B": 20_000}},
		ViewRows:     map[string]int{"V": 50_000},
		ViewDistinct: map[string][]int{"V": {12_000, 20_000}},
	}
	cv, cs, ca := Estimate(viewPlan, st), Estimate(selPlan, st), Estimate(allPlan, st)
	if cv.Fetch != 0 {
		t.Fatalf("view plan must estimate zero fetches, got %v", cv.Fetch)
	}
	if !(cs.Fetch < ca.Fetch) {
		t.Fatalf("selective fetch (%v) must estimate below the whole-table fetch (%v)", cs.Fetch, ca.Fetch)
	}
	if ca.Score() <= cs.Score() || ca.Score() <= cv.Score() {
		t.Fatalf("whole-table plan must score worst: view %v sel %v all %v", cv.Score(), cs.Score(), ca.Score())
	}
	best, _ := Best([]Node{allPlan, viewPlan, selPlan}, st)
	if best == 0 {
		t.Fatal("Best picked the whole-table plan")
	}

	// With a small table the view scan must win outright (fetches are
	// priced ~1000x a cached-tuple touch).
	small := &Stats{
		RelRows:     map[string]int{"R": 200},
		RelDistinct: map[string]map[string]int{"R": {"A": 50, "B": 100}},
		ViewRows:    map[string]int{"V": 200},
	}
	best, c := Best([]Node{allPlan, selPlan, viewPlan}, small)
	if best != 2 {
		t.Fatalf("with a small view extent the zero-fetch plan must win, got %d (%+v)", best, c)
	}

	// Static ranking (nil stats) must also refuse the whole-table fetch.
	best, _ = Best([]Node{allPlan, viewPlan}, nil)
	if best != 1 {
		t.Fatal("static ranking must prefer the view plan over a 100k-wide fetch")
	}
}

// Join fan-out: the hash-join estimate must scale the cross product down
// by the join-column distinct counts, and a selective equality must shrink
// the estimate further.
func TestEstimateJoinFanOut(t *testing.T) {
	join := &Select{
		Child: &Product{
			L: &View{Name: "V1", Cols: []string{"a", "b"}},
			R: &View{Name: "V2", Cols: []string{"c", "d"}},
		},
		Cond: []CondItem{{L: "b", R: "c"}},
	}
	st := &Stats{
		ViewRows:     map[string]int{"V1": 1000, "V2": 1000},
		ViewDistinct: map[string][]int{"V1": {1000, 100}, "V2": {500, 1000}},
	}
	c := Estimate(join, st)
	// 1000*1000 / max(100, 500) = 2000 joined rows.
	if c.Rows < 1500 || c.Rows > 2500 {
		t.Fatalf("join fan-out estimate off: %v rows", c.Rows)
	}
	// The hash-join estimate must be far below the materialized product.
	bare := Estimate(&Product{
		L: &View{Name: "V1", Cols: []string{"a", "b"}},
		R: &View{Name: "V2", Cols: []string{"c", "d"}},
	}, st)
	if c.Work >= bare.Work {
		t.Fatalf("hash join work (%v) must undercut the cross product (%v)", c.Work, bare.Work)
	}
}
