package plan

import "math"

// Observation is the realized execution profile of ONE plan run: what the
// plan actually fetched and produced, attributed to the structures the
// cost model estimates. It is the closed-loop counterpart of Cost — where
// Estimate predicts from collected statistics, an Observation reports what
// a concrete run against a concrete epoch measured, so a serving layer can
// correct the estimates it trusted (see ObservedStats and the
// PreparedQuery feedback loop in the root package).
type Observation struct {
	// Fetched is the total tuples the run fetched from the underlying
	// database (|Dξ| of this execution).
	Fetched int
	// Rows is the output cardinality after the root's set-semantics dedup.
	Rows int
	// JoinIn and JoinOut are the summed input and output rows of the
	// run's hash joins — their ratio is the realized join fan-out.
	JoinIn  int
	JoinOut int
	// Groups attributes fetch traffic to access constraints: for each
	// constraint the plan fetched through (keyed by Constraint.Key), the
	// number of distinct probe keys and the tuples they returned. Their
	// ratio is the realized group width — the quantity the cost model
	// otherwise guesses as |R| over the collected distinct counts.
	Groups map[string]GroupObs
}

// GroupObs is the realized fetch profile of one access constraint within
// one plan run. Plain value; safe to copy.
type GroupObs struct {
	Probes int // distinct probe keys fetched through the constraint
	Rows   int // tuples those probes returned
}

// addGroup folds one fetch node's traffic into the observation.
func (o *Observation) addGroup(key string, probes, rows int) {
	if o.Groups == nil {
		o.Groups = make(map[string]GroupObs, 4)
	}
	g := o.Groups[key]
	g.Probes += probes
	g.Rows += rows
	o.Groups[key] = g
	o.Fetched += rows
}

// ObservedStats accumulates Observations as exponentially-decayed running
// means and overlays them on a Stats during estimation: an observed group
// width for an access constraint takes precedence over the width derived
// from collected distinct counts, so candidate ranking corrects its own
// estimation error instead of re-trusting a skew-blind average. Decay
// (weight Alpha on the newest sample) keeps the overlay tracking a
// drifting instance instead of pinning the first thing it saw.
//
// ObservedStats is NOT safe for concurrent use and must not be copied
// (copies would share the width map but fork the scalar means); callers
// hold one *ObservedStats and serialize access (the PreparedQuery
// feedback loop folds observations under its selection lock).
type ObservedStats struct {
	alpha   float64
	width   map[string]float64 // constraint key -> EWMA realized group width
	rows    float64            // EWMA output rows (-1 until first sample)
	joinFan float64            // EWMA join fan-out ratio (-1 until first join)
	samples int64
}

// DefaultObservedAlpha is the EWMA weight of the newest observation used
// when NewObservedStats is given a non-positive alpha.
const DefaultObservedAlpha = 0.3

// NewObservedStats builds an empty accumulator. alpha in (0, 1] is the
// weight of the newest observation; <= 0 selects DefaultObservedAlpha.
func NewObservedStats(alpha float64) *ObservedStats {
	if alpha <= 0 || alpha > 1 {
		alpha = DefaultObservedAlpha
	}
	return &ObservedStats{alpha: alpha, width: make(map[string]float64), rows: -1, joinFan: -1}
}

// ewma folds sample into prev (prev < 0 means "no samples yet").
func (o *ObservedStats) ewma(prev, sample float64) float64 {
	if prev < 0 {
		return sample
	}
	return prev + o.alpha*(sample-prev)
}

// Absorb folds one run's observation into the running means. A nil
// observation is a no-op.
func (o *ObservedStats) Absorb(ob *Observation) {
	if ob == nil {
		return
	}
	for key, g := range ob.Groups {
		if g.Probes <= 0 {
			continue
		}
		w := float64(g.Rows) / float64(g.Probes)
		if prev, ok := o.width[key]; ok {
			w = prev + o.alpha*(w-prev)
		}
		o.width[key] = w
	}
	o.rows = o.ewma(o.rows, float64(ob.Rows))
	if ob.JoinIn > 0 {
		o.joinFan = o.ewma(o.joinFan, float64(ob.JoinOut)/float64(ob.JoinIn))
	}
	o.samples++
}

// Width returns the observed mean group width for a constraint key, if
// any run ever fetched through it.
func (o *ObservedStats) Width(key string) (float64, bool) {
	if o == nil {
		return 0, false
	}
	w, ok := o.width[key]
	return w, ok
}

// Rows returns the observed mean output cardinality (false before the
// first sample).
func (o *ObservedStats) Rows() (float64, bool) {
	if o == nil || o.rows < 0 {
		return 0, false
	}
	return o.rows, true
}

// JoinFanOut returns the observed mean hash-join fan-out ratio (false
// until a run with at least one hash join was absorbed).
func (o *ObservedStats) JoinFanOut() (float64, bool) {
	if o == nil || o.joinFan < 0 {
		return 0, false
	}
	return o.joinFan, true
}

// Samples returns the number of observations absorbed.
func (o *ObservedStats) Samples() int64 {
	if o == nil {
		return 0
	}
	return o.samples
}

// obsWidth resolves the overlay for one fetch: the observed group width,
// clamped into [0.5, hi] — realized widths respect the constraint's
// promise N (hi), and the 0.5 floor keeps an observed-empty group from
// zeroing out every downstream term while still pricing it far below any
// estimated width.
func (o *ObservedStats) obsWidth(key string, hi float64) (float64, bool) {
	w, ok := o.Width(key)
	if !ok {
		return 0, false
	}
	return clamp(w, 0.5, math.Max(0.5, hi)), true
}
