package plan

import (
	"fmt"
	"testing"

	"repro/internal/cq"
)

func TestQueryKeyInvariantUnderRenamingAndReordering(t *testing.T) {
	// Q(x) :- R(x,y), S(y,"c"), x=x2  — and a renamed, reordered variant.
	q1 := cq.NewCQ([]cq.Term{cq.Var("x")}, []cq.Atom{
		cq.NewAtom("R", cq.Var("x"), cq.Var("y")),
		cq.NewAtom("S", cq.Var("y"), cq.Cst("c")),
	}, cq.Equality{L: cq.Var("x"), R: cq.Var("x2")})
	q2 := cq.NewCQ([]cq.Term{cq.Var("u")}, []cq.Atom{
		cq.NewAtom("S", cq.Var("w"), cq.Cst("c")),
		cq.NewAtom("R", cq.Var("u"), cq.Var("w")),
	})
	k1, k2 := QueryKey(cq.NewUCQ(q1)), QueryKey(cq.NewUCQ(q2))
	if k1 != k2 {
		t.Fatalf("renamed/reordered queries must share a key:\n%s\n%s", k1, k2)
	}

	// Repeated head variables and constants must be preserved.
	q3 := cq.NewCQ([]cq.Term{cq.Var("x"), cq.Var("x")}, []cq.Atom{cq.NewAtom("R", cq.Var("x"), cq.Var("y"))})
	q4 := cq.NewCQ([]cq.Term{cq.Var("x"), cq.Var("z")}, []cq.Atom{
		cq.NewAtom("R", cq.Var("x"), cq.Var("y"))}, cq.Equality{L: cq.Var("z"), R: cq.Var("x")})
	if QueryKey(cq.NewUCQ(q3)) != QueryKey(cq.NewUCQ(q4)) {
		t.Fatal("equality-resolved repeated head variable must canonicalize")
	}
	q5 := cq.NewCQ([]cq.Term{cq.Var("x"), cq.Var("z")}, []cq.Atom{cq.NewAtom("R", cq.Var("x"), cq.Var("z"))})
	if QueryKey(cq.NewUCQ(q3)) == QueryKey(cq.NewUCQ(q5)) {
		t.Fatal("distinct head patterns must not collide")
	}
}

func TestQueryKeyDisjunctOrderAndUnsat(t *testing.T) {
	a := cq.NewCQ([]cq.Term{cq.Var("x")}, []cq.Atom{cq.NewAtom("R", cq.Var("x"), cq.Cst("1"))})
	b := cq.NewCQ([]cq.Term{cq.Var("x")}, []cq.Atom{cq.NewAtom("R", cq.Var("x"), cq.Cst("2"))})
	bad := cq.NewCQ([]cq.Term{cq.Var("x")}, []cq.Atom{cq.NewAtom("R", cq.Var("x"), cq.Var("y"))},
		cq.Equality{L: cq.Cst("p"), R: cq.Cst("q")})
	k1 := QueryKey(&cq.UCQ{Disjuncts: []*cq.CQ{a, b, bad}})
	k2 := QueryKey(&cq.UCQ{Disjuncts: []*cq.CQ{b, a}})
	if k1 != k2 {
		t.Fatalf("disjunct order and unsatisfiable disjuncts must not matter:\n%s\n%s", k1, k2)
	}
	if QueryKey(cq.NewUCQ(a)) == QueryKey(cq.NewUCQ(b)) {
		t.Fatal("different constants must not collide")
	}
	// Duplicate disjuncts collapse (idempotent union).
	if QueryKey(cq.NewUCQ(a)) != QueryKey(cq.NewUCQ(a, a)) {
		t.Fatal("duplicate disjuncts must collapse")
	}
}

// Regression: beyond canonMaxAtoms the fallback must still separate
// non-equivalent queries — here two 9-atom queries differing only in
// which variable the head projects.
func TestQueryKeyBigFallbackNoCollision(t *testing.T) {
	build := func(head string) *cq.CQ {
		atoms := []cq.Atom{cq.NewAtom("R", cq.Var("x"), cq.Var("y"))}
		for i := 1; i <= 8; i++ {
			atoms = append(atoms, cq.NewAtom(fmt.Sprintf("P%d", i), cq.Var("x")))
		}
		return cq.NewCQ([]cq.Term{cq.Var(head)}, atoms)
	}
	k1 := QueryKey(cq.NewUCQ(build("x")))
	k2 := QueryKey(cq.NewUCQ(build("y")))
	if k1 == k2 {
		t.Fatalf("big-query fallback collided on different head variables:\n%s", k1)
	}
	// Identical big queries still share a key (atom order insensitive).
	q := build("x")
	q.Atoms[0], q.Atoms[5] = q.Atoms[5], q.Atoms[0]
	if QueryKey(cq.NewUCQ(q)) != k1 {
		t.Fatal("big-query fallback must stay atom-order insensitive")
	}
}

// Regression: constants crafted to look like key syntax (embedded quotes
// and separators, constructible via the exported Cst) must not make two
// non-equivalent queries share a key.
func TestQueryKeyConstantInjection(t *testing.T) {
	q1 := cq.NewCQ([]cq.Term{cq.Var("x")}, []cq.Atom{
		cq.NewAtom("R", cq.Var("x"), cq.Cst("1")),
		cq.NewAtom("S", cq.Cst("2")),
	})
	q2 := cq.NewCQ([]cq.Term{cq.Var("x")}, []cq.Atom{
		cq.NewAtom("R", cq.Var("x"), cq.Cst(`1");"S"("2`)),
	})
	k1, k2 := QueryKey(cq.NewUCQ(q1)), QueryKey(cq.NewUCQ(q2))
	if k1 == k2 {
		t.Fatalf("constant injection collided two non-equivalent queries:\n%s", k1)
	}
	// Same for the big-query fallback path.
	big := func(last cq.Atom) *cq.CQ {
		atoms := []cq.Atom{}
		for i := 0; i < canonMaxAtoms; i++ {
			atoms = append(atoms, cq.NewAtom(fmt.Sprintf("P%d", i), cq.Var("x")))
		}
		return cq.NewCQ([]cq.Term{cq.Var("x")}, append(atoms, last))
	}
	b1 := QueryKey(cq.NewUCQ(big(cq.NewAtom("R", cq.Var("x"), cq.Cst(`a");P0("x`)))))
	b2 := QueryKey(cq.NewUCQ(big(cq.NewAtom("R", cq.Var("x"), cq.Cst(`a`)))))
	if b1 == b2 {
		t.Fatalf("big-fallback constant injection collided:\n%s", b1)
	}
}

func TestQueryKeySymmetricAtoms(t *testing.T) {
	// A symmetric triangle: any rotation/renaming must canonicalize the
	// same, exercising the branch-and-bound beyond greedy ordering.
	tri := func(v1, v2, v3 string) *cq.CQ {
		return cq.NewCQ([]cq.Term{cq.Var(v1)}, []cq.Atom{
			cq.NewAtom("E", cq.Var(v1), cq.Var(v2)),
			cq.NewAtom("E", cq.Var(v2), cq.Var(v3)),
			cq.NewAtom("E", cq.Var(v3), cq.Var(v1)),
		})
	}
	k := QueryKey(cq.NewUCQ(tri("a", "b", "c")))
	for _, q := range []*cq.CQ{tri("p", "q", "r"), tri("z9", "z1", "z5")} {
		if got := QueryKey(cq.NewUCQ(q)); got != k {
			t.Fatalf("triangle renaming changed the key:\n%s\n%s", k, got)
		}
	}
	// Reordered atom list of the same triangle.
	q := cq.NewCQ([]cq.Term{cq.Var("a")}, []cq.Atom{
		cq.NewAtom("E", cq.Var("c"), cq.Var("a")),
		cq.NewAtom("E", cq.Var("a"), cq.Var("b")),
		cq.NewAtom("E", cq.Var("b"), cq.Var("c")),
	})
	if got := QueryKey(cq.NewUCQ(q)); got != k {
		t.Fatalf("triangle reordering changed the key:\n%s\n%s", k, got)
	}
}
