package gadgets

import (
	"repro/internal/access"
	"repro/internal/cq"
	"repro/internal/schema"
)

// BOPReduction is the 3SAT → BOP(CQ) reduction of Theorem 3.4: a fixed
// schema R and access schema A, and a query Q(w) built from the formula ψ
// such that Q has bounded output under A iff ψ is unsatisfiable.
type BOPReduction struct {
	S *schema.Schema
	A *access.Schema
	Q *cq.CQ
}

// NewBOPReduction builds the reduction for the given 3SAT instance. Per
// the proof, R and A are fixed (they do not depend on ψ):
//
//	R = {R01(A), Ror(B,A1,A2), Rand(B,A1,A2), Rneg(A,NA), Ro(I,X)}
//	A = {R01(∅→A,2), Ror(∅→(B,A1,A2),4), Rand(∅→(B,A1,A2),4),
//	     Rneg(∅→(A,NA),2), Ro(I→X,2)}
//
// and Q(w) = Qc ∧ QX(x̄) ∧ Qψ(x̄,w1) ∧ R01(w1) ∧ Ro(k,1) ∧ Ro(k,w1) ∧ Ro(k,w).
func NewBOPReduction(f *CNF) *BOPReduction {
	rels := append(BoolSchema(), schema.NewRelation("Ro", "I", "X"))
	s := schema.New(rels...)
	a := access.NewSchema(
		access.NewConstraint("R01", nil, []string{"A"}, 2),
		access.NewConstraint("Ror", nil, []string{"B", "A1", "A2"}, 4),
		access.NewConstraint("Rand", nil, []string{"B", "A1", "A2"}, 4),
		access.NewConstraint("Rneg", nil, []string{"A", "NA"}, 2),
		access.NewConstraint("Ro", []string{"I"}, []string{"X"}, 2),
	)

	atoms := QcAtoms(true)
	// QX: every propositional variable ranges over the Boolean domain.
	for _, v := range f.Vars {
		atoms = append(atoms, cq.NewAtom("R01", cq.Var(v)))
	}
	// Qψ: the circuit; w1 holds ψ's value.
	ckt := &circuit{}
	w1 := ckt.build(f)
	atoms = append(atoms, ckt.atoms...)
	atoms = append(atoms,
		cq.NewAtom("R01", w1),
		cq.NewAtom("Ro", cq.Var("k"), cq.Cst("1")),
		cq.NewAtom("Ro", cq.Var("k"), w1),
		cq.NewAtom("Ro", cq.Var("k"), cq.Var("w")),
	)
	q := cq.NewCQ([]cq.Term{cq.Var("w")}, atoms)
	q.Name = "Qbop"
	return &BOPReduction{S: s, A: a, Q: q}
}
