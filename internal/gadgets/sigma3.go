package gadgets

import (
	"fmt"

	"repro/internal/access"
	"repro/internal/boundedness"
	"repro/internal/cq"
	"repro/internal/plan"
	"repro/internal/schema"
)

// QBF3 is a ∃X ∀Y ∃Z ψ(X,Y,Z) sentence with ψ in 3CNF (the Σp3-complete
// ∃*∀*∃*3CNF problem of Stockmeyer).
type QBF3 struct {
	X, Y, Z []string
	Psi     *CNF
}

// Eval decides the sentence by brute force (ground truth).
func (q *QBF3) Eval() bool {
	asn := map[string]bool{}
	var existsZ func(i int) bool
	existsZ = func(i int) bool {
		if i == len(q.Z) {
			return q.Psi.Eval(asn)
		}
		for _, b := range []bool{false, true} {
			asn[q.Z[i]] = b
			if existsZ(i + 1) {
				return true
			}
		}
		return false
	}
	var forallY func(i int) bool
	forallY = func(i int) bool {
		if i == len(q.Y) {
			return existsZ(0)
		}
		for _, b := range []bool{false, true} {
			asn[q.Y[i]] = b
			if !forallY(i + 1) {
				return false
			}
		}
		return true
	}
	var existsX func(i int) bool
	existsX = func(i int) bool {
		if i == len(q.X) {
			return forallY(0)
		}
		for _, b := range []bool{false, true} {
			asn[q.X[i]] = b
			if existsX(i + 1) {
				return true
			}
		}
		return false
	}
	return existsX(0)
}

// Sigma3Reduction is the ∃*∀*∃*3CNF → VBRP(CQ) construction of
// Theorem 3.1: fixed R, A and M = 6; a Boolean CQ Q and a single CQ view V
// such that Q has a 6-bounded rewriting in CQ using {V} under A iff the
// sentence is true. The proof shows the only viable plans are
// π∅(σ_{YO=1}(fetch(I ∈ π_K(σ_{x̄=µ}(V)), Ro, YO))) for truth assignments
// µ of X — so the NP "guess a plan" step is exactly a guess of µ.
type Sigma3Reduction struct {
	S     *schema.Schema
	A     *access.Schema
	Q     *cq.CQ
	V     *cq.CQ
	Views map[string]*cq.UCQ
	M     int

	phi *QBF3
}

// NewSigma3Reduction builds the construction. The proof assumes |X| ≥ 2.
func NewSigma3Reduction(phi *QBF3) (*Sigma3Reduction, error) {
	if len(phi.X) < 2 {
		return nil, fmt.Errorf("gadgets: the Theorem 3.1 construction needs |X| ≥ 2")
	}
	rels := append(BoolSchema(),
		schema.NewRelation("RY", "I1", "I2", "YV"),
		schema.NewRelation("Ro", "I", "YO"),
		schema.NewRelation("RI", "I", "K"),
	)
	s := schema.New(rels...)
	a := access.NewSchema(
		access.NewConstraint("R01", nil, []string{"A"}, 2),
		access.NewConstraint("Ror", []string{"A1"}, []string{"A2", "B"}, 2),
		access.NewConstraint("Rand", []string{"A1", "A2"}, []string{"B"}, 1),
		access.NewConstraint("Rneg", []string{"A"}, []string{"NA"}, 1),
		access.NewConstraint("RY", []string{"I1", "I2"}, []string{"YV"}, 1),
		access.NewConstraint("Ro", []string{"I"}, []string{"YO"}, 1),
		access.NewConstraint("RI", []string{"I"}, []string{"K"}, 1),
	)

	// Q() = ∃ȳ,k (Qc ∧ QY(ȳ) ∧ ∧_j RY(j,1,y_j) ∧ RI(y_1,k) ∧ Ro(k,1)).
	qAtoms := QcAtoms(true)
	for _, y := range phi.Y {
		qAtoms = append(qAtoms, cq.NewAtom("R01", cq.Var(y)))
	}
	for j, y := range phi.Y {
		qAtoms = append(qAtoms, cq.NewAtom("RY", cq.Cst("j"+itoa(j+1)), cq.Cst("1"), cq.Var(y)))
	}
	qAtoms = append(qAtoms,
		cq.NewAtom("RI", cq.Var(phi.Y[0]), cq.Var("k")),
		cq.NewAtom("Ro", cq.Var("k"), cq.Cst("1")),
	)
	q := cq.NewCQ(nil, qAtoms)
	q.Name = "Qs3"

	// V(x̄, k).
	var vAtoms []cq.Atom
	vAtoms = append(vAtoms, QcAtoms(true)...)
	w := cq.Var("w")
	// Q2: x'_i = w ∧ x_i.
	xp := make([]cq.Term, len(phi.X))
	for i, x := range phi.X {
		xp[i] = cq.Var(x + "'")
		vAtoms = append(vAtoms, cq.NewAtom("Rand", xp[i], w, cq.Var(x)))
	}
	// Q3: y'_k = w ∨ y_k, z'_k = w ∨ z_k.
	for _, y := range phi.Y {
		vAtoms = append(vAtoms, cq.NewAtom("Ror", cq.Var(y+"'"), w, cq.Var(y)))
	}
	for _, z := range phi.Z {
		vAtoms = append(vAtoms, cq.NewAtom("Ror", cq.Var(z+"'"), w, cq.Var(z)))
	}
	// Q4: RY(j, w, y_j) and RI(y_1, k).
	for j, y := range phi.Y {
		vAtoms = append(vAtoms, cq.NewAtom("RY", cq.Cst("j"+itoa(j+1)), w, cq.Var(y)))
	}
	vAtoms = append(vAtoms, cq.NewAtom("RI", cq.Var(phi.Y[0]), cq.Var("k")))
	// Q5: the tautology ∧_k (x_k ∨ x''_k ∨ ¬x''_k) with output w.
	m := len(phi.X)
	vpp := make([]cq.Term, m+1) // v''_k, 1-based
	for k := 1; k <= m; k++ {
		xk := cq.Var(phi.X[k-1])
		xpp := cq.Var(fmt.Sprintf("x''%d", k))
		vk := cq.Var(fmt.Sprintf("v%d", k))
		vpk := cq.Var(fmt.Sprintf("v'%d", k))
		vpp[k] = cq.Var(fmt.Sprintf("v''%d", k))
		vAtoms = append(vAtoms,
			cq.NewAtom("Ror", vk, xk, xpp),
			cq.NewAtom("Ror", vpp[k], vk, vpk),
			cq.NewAtom("Rneg", xpp, vpk),
		)
	}
	// Conjoin v''_1 ... v''_m into w via Rand chain.
	if m == 2 {
		vAtoms = append(vAtoms, cq.NewAtom("Rand", w, vpp[1], vpp[2]))
	} else {
		vppp := make([]cq.Term, m)
		vppp[1] = cq.Var("v'''2")
		vAtoms = append(vAtoms, cq.NewAtom("Rand", vppp[1], vpp[1], vpp[2]))
		for k := 2; k <= m-2; k++ {
			vppp[k] = cq.Var(fmt.Sprintf("v'''%d", k+1))
			vAtoms = append(vAtoms, cq.NewAtom("Rand", vppp[k], vppp[k-1], vpp[k+1]))
		}
		vAtoms = append(vAtoms, cq.NewAtom("Rand", w, vppp[m-2], vpp[m]))
	}
	// Qψ(x̄', ȳ, z̄, 1): the circuit over the primed X variables and the
	// plain Y, Z variables, pinned to 1.
	renamed := &CNF{Vars: append(append(append([]string{}, primeAll(phi.X)...), phi.Y...), phi.Z...)}
	for _, cl := range phi.Psi.Clauses {
		var ncl Clause
		for i, l := range cl {
			nv := l.Var
			if contains(phi.X, l.Var) {
				nv = l.Var + "'"
			}
			ncl[i] = Lit{Var: nv, Neg: l.Neg}
		}
		renamed.Clauses = append(renamed.Clauses, ncl)
	}
	ckt := &circuit{n: 1000} // keep gate variables disjoint from Q5's
	out := ckt.build(renamed)
	vAtoms = append(vAtoms, ckt.atoms...)

	head := make([]cq.Term, 0, len(phi.X)+1)
	for _, x := range phi.X {
		head = append(head, cq.Var(x))
	}
	head = append(head, cq.Var("k"))
	v := cq.NewCQ(head, vAtoms, cq.Equality{L: out, R: cq.Cst("1")})
	v.Name = "Vs3"

	return &Sigma3Reduction{
		S: s, A: a, Q: q, V: v,
		Views: map[string]*cq.UCQ{"Vs3": cq.NewUCQ(v)},
		M:     6,
		phi:   phi,
	}, nil
}

func primeAll(xs []string) []string {
	out := make([]string, len(xs))
	for i, x := range xs {
		out[i] = x + "'"
	}
	return out
}

func contains(xs []string, x string) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}

// CandidatePlan builds the 6-node plan ξ_µ for a truth assignment µ of X:
// S6 = V; S5 = σ_{x̄=µ}(S6); S4 = π_K(S5); S3 = fetch(I ∈ S4, Ro, YO);
// S2 = σ_{YO=1}(S3); S1 = π∅(S2).
func (r *Sigma3Reduction) CandidatePlan(mu map[string]bool) plan.Node {
	cols := make([]string, 0, len(r.phi.X)+1)
	var conds []plan.CondItem
	for _, x := range r.phi.X {
		cols = append(cols, x)
		val := "0"
		if mu[x] {
			val = "1"
		}
		conds = append(conds, plan.CondItem{L: x, RConst: true, R: val})
	}
	cols = append(cols, "kk")
	var ro *access.Constraint
	for _, c := range r.A.Constraints {
		if c.Rel == "Ro" {
			ro = c
		}
	}
	s6 := &plan.View{Name: "Vs3", Cols: cols}
	s5 := &plan.Select{Child: s6, Cond: conds}
	s4 := &plan.Project{Child: s5, Cols: []string{"kk"}}
	s3 := &plan.Fetch{Child: s4, C: ro, Bind: []string{"kk"}}
	s2 := &plan.Select{Child: s3, Cond: []plan.CondItem{{L: "YO", RConst: true, R: "1"}}}
	return &plan.Project{Child: s2, Cols: nil}
}

// Decide decides whether Q has a 6-bounded rewriting in CQ using V under A
// by the proof's structure: guess a truth assignment µ of X (the only
// viable plans are the ξ_µ), and verify ξ_µ ≡_A Q with the element-query
// machinery — the Σp3 shape NP^{Σp2} made concrete.
func (r *Sigma3Reduction) Decide() (bool, map[string]bool, error) {
	u := plan.NewUnfolder(r.S, r.Views)
	qU := cq.NewUCQ(r.Q)
	n := len(r.phi.X)
	mu := map[string]bool{}
	for mask := 0; mask < 1<<n; mask++ {
		for i, x := range r.phi.X {
			mu[x] = mask&(1<<i) != 0
		}
		p := r.CandidatePlan(mu)
		if err := plan.Validate(p, r.S); err != nil {
			return false, nil, err
		}
		qxi, err := u.UCQ(p)
		if err != nil {
			return false, nil, err
		}
		if boundedness.AEquivalentUCQ(qU, qxi, r.S, r.A) {
			out := make(map[string]bool, n)
			for k, v := range mu {
				out[k] = v
			}
			return true, out, nil
		}
	}
	return false, nil, nil
}
