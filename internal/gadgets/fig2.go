package gadgets

import (
	"repro/internal/cq"
	"repro/internal/instance"
	"repro/internal/schema"
)

// Figure 2 of the paper: the relation instances encoding the Boolean
// domain and operations.
//
//	I01 = {0, 1}                                  over R01(A)
//	I∨  = B = A1 ∨ A2 truth table                 over Ror(B,A1,A2)
//	I∧  = B = A1 ∧ A2 truth table                 over Rand(B,A1,A2)
//	I¬  = Ā = ¬A truth table                      over Rneg(A,NA)
//
// (ASCII relation names stand in for the paper's R∨, R∧, R¬.)

// BoolSchema returns the four Boolean-encoding relation schemas.
func BoolSchema() []*schema.Relation {
	return []*schema.Relation{
		schema.NewRelation("R01", "A"),
		schema.NewRelation("Ror", "B", "A1", "A2"),
		schema.NewRelation("Rand", "B", "A1", "A2"),
		schema.NewRelation("Rneg", "A", "NA"),
	}
}

// FillBool inserts the Figure 2 tuples into the database.
func FillBool(db *instance.Database) {
	db.MustInsert("R01", "0")
	db.MustInsert("R01", "1")
	// I∨: B = A1 ∨ A2.
	db.MustInsert("Ror", "0", "0", "0")
	db.MustInsert("Ror", "1", "0", "1")
	db.MustInsert("Ror", "1", "1", "0")
	db.MustInsert("Ror", "1", "1", "1")
	// I∧: B = A1 ∧ A2.
	db.MustInsert("Rand", "0", "0", "0")
	db.MustInsert("Rand", "0", "0", "1")
	db.MustInsert("Rand", "0", "1", "0")
	db.MustInsert("Rand", "1", "1", "1")
	// I¬.
	db.MustInsert("Rneg", "0", "1")
	db.MustInsert("Rneg", "1", "0")
}

// QcAtoms returns the atoms of the query Qc used throughout the proofs of
// Theorems 3.4 and 3.1: it demands that the instance contains every
// Figure 2 tuple. includeR01 controls whether the R01 atoms are included
// (Proposition 4.5's variant drops them).
func QcAtoms(includeR01 bool) []cq.Atom {
	k := cq.Cst
	var atoms []cq.Atom
	if includeR01 {
		atoms = append(atoms,
			cq.NewAtom("R01", k("0")),
			cq.NewAtom("R01", k("1")),
		)
	}
	atoms = append(atoms,
		cq.NewAtom("Ror", k("0"), k("0"), k("0")),
		cq.NewAtom("Ror", k("1"), k("0"), k("1")),
		cq.NewAtom("Ror", k("1"), k("1"), k("0")),
		cq.NewAtom("Ror", k("1"), k("1"), k("1")),
		cq.NewAtom("Rand", k("0"), k("0"), k("0")),
		cq.NewAtom("Rand", k("0"), k("0"), k("1")),
		cq.NewAtom("Rand", k("0"), k("1"), k("0")),
		cq.NewAtom("Rand", k("1"), k("1"), k("1")),
		cq.NewAtom("Rneg", k("0"), k("1")),
		cq.NewAtom("Rneg", k("1"), k("0")),
	)
	return atoms
}

// circuit appends CQ atoms evaluating the CNF over the Boolean-encoding
// relations: for each clause a chain of Ror gates (with Rneg for negated
// literals), then a chain of Rand gates conjoining the clause outputs.
// It returns the variable holding the formula's truth value and the
// auxiliary variables introduced.
type circuit struct {
	atoms []cq.Atom
	aux   []string
	n     int
}

func (c *circuit) freshVar() cq.Term {
	c.n++
	v := "g" + itoa(c.n)
	c.aux = append(c.aux, v)
	return cq.Var(v)
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

// literal returns a term holding the literal's value, adding a Rneg gate
// for negated literals.
func (c *circuit) literal(l Lit) cq.Term {
	if !l.Neg {
		return cq.Var(l.Var)
	}
	out := c.freshVar()
	c.atoms = append(c.atoms, cq.NewAtom("Rneg", cq.Var(l.Var), out))
	return out
}

// or2 emits o = a ∨ b.
func (c *circuit) or2(a, b cq.Term) cq.Term {
	out := c.freshVar()
	c.atoms = append(c.atoms, cq.NewAtom("Ror", out, a, b))
	return out
}

// and2 emits o = a ∧ b.
func (c *circuit) and2(a, b cq.Term) cq.Term {
	out := c.freshVar()
	c.atoms = append(c.atoms, cq.NewAtom("Rand", out, a, b))
	return out
}

// build encodes the whole CNF, returning the output term.
func (c *circuit) build(f *CNF) cq.Term {
	var clauseOuts []cq.Term
	for _, cl := range f.Clauses {
		v1 := c.literal(cl[0])
		v2 := c.literal(cl[1])
		v3 := c.literal(cl[2])
		clauseOuts = append(clauseOuts, c.or2(c.or2(v1, v2), v3))
	}
	out := clauseOuts[0]
	for _, co := range clauseOuts[1:] {
		out = c.and2(out, co)
	}
	return out
}
