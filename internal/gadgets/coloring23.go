package gadgets

import (
	"fmt"

	"repro/internal/access"
	"repro/internal/cq"
	"repro/internal/schema"
)

// Theorem 4.1 cases (2) and (3): VBRP(ACQ) stays coNP-hard under two more
// restricted access-schema forms. As in case (1), the core the validation
// suite checks is A-satisfiability of the constructed query: Q ≡_A ∅ iff
// the source instance is negative.

// ThreeColorReduction is Theorem 4.1(2): A = {R(A→B,1), R'(∅→(E,F),6)}.
// The binary relation R' holds the 6-tuple color clique; the FD on R ties
// the renamed edge endpoints to node variables. Q is A-satisfiable iff the
// graph is 3-colorable.
type ThreeColorReduction struct {
	S *schema.Schema
	A *access.Schema
	Q *cq.CQ
}

// NewThreeColorReduction builds the reduction for graph g.
func NewThreeColorReduction(g *Graph) *ThreeColorReduction {
	s := schema.New(
		schema.NewRelation("R", "A", "B"),
		schema.NewRelation("Rp", "E", "F"),
	)
	a := access.NewSchema(
		access.NewConstraint("R", []string{"A"}, []string{"B"}, 1),
		access.NewConstraint("Rp", nil, []string{"E", "F"}, 6),
	)
	v := func(name string) cq.Term { return cq.Var("v_" + name) }
	var atoms []cq.Atom

	// QE: each edge in both directions over renamed endpoint variables,
	// stored in R'.
	edgeVar := func(e [2]string, end int) cq.Term {
		return cq.Var(fmt.Sprintf("x%d_%s_%s", end, e[0], e[1]))
	}
	for _, e := range g.Edges {
		atoms = append(atoms,
			cq.NewAtom("Rp", edgeVar(e, 1), edgeVar(e, 2)),
			cq.NewAtom("Rp", edgeVar(e, 2), edgeVar(e, 1)),
		)
	}
	// QV: the FD R(A → B, 1) forces each edge variable to equal its node
	// variable: R(id_node_edge, v_node) and R(id_node_edge, x_edge) share
	// the key.
	for _, e := range g.Edges {
		for end, node := range []string{e[0], e[1]} {
			id := cq.Cst(fmt.Sprintf("id_%s_%s_%s", node, e[0], e[1]))
			atoms = append(atoms,
				cq.NewAtom("R", id, v(node)),
				cq.NewAtom("R", id, edgeVar(e, end+1)),
			)
		}
	}
	// Q1: the 6-tuple color clique in R'; with the global bound 6, the
	// instance of R' is exactly the clique, so edges are proper colorings.
	for _, p := range [][2]string{{"r", "g"}, {"r", "b"}, {"g", "r"}, {"g", "b"}, {"b", "r"}, {"b", "g"}} {
		atoms = append(atoms, cq.NewAtom("Rp", cq.Cst(p[0]), cq.Cst(p[1])))
	}
	q := cq.NewCQ(nil, atoms)
	q.Name = "Q3col"
	return &ThreeColorReduction{S: s, A: a, Q: q}
}

// ThreeColorable decides 3-colorability by brute force (ground truth).
func (g *Graph) ThreeColorable() bool {
	return g.ExtendableTo3Coloring(Precoloring{})
}

// SAT3KeyReduction is Theorem 4.1(3): A = {R((A,B)→C,1), R'(∅→E,2)}.
// R' pins the Boolean domain {0,1}; the composite-key FD on the ternary
// relation R ties variable copies together and evaluates the formula's
// gates. Q is A-satisfiable iff ψ is satisfiable.
type SAT3KeyReduction struct {
	S *schema.Schema
	A *access.Schema
	Q *cq.CQ
}

// NewSAT3KeyReduction builds the reduction for the 3SAT instance f.
func NewSAT3KeyReduction(f *CNF) *SAT3KeyReduction {
	s := schema.New(
		schema.NewRelation("R", "A", "B", "C"),
		schema.NewRelation("Rp", "E"),
	)
	a := access.NewSchema(
		access.NewConstraint("R", []string{"A", "B"}, []string{"C"}, 1),
		access.NewConstraint("Rp", nil, []string{"E"}, 2),
	)
	k := cq.Cst
	var atoms []cq.Atom

	// Boolean domain: R'(0), R'(1) plus R'(x) per variable; the global
	// bound 2 forces every variable to 0 or 1.
	atoms = append(atoms, cq.NewAtom("Rp", k("0")), cq.NewAtom("Rp", k("1")))
	for _, v := range f.Vars {
		atoms = append(atoms, cq.NewAtom("Rp", cq.Var(v)))
	}

	// Gate tables in R, keyed by (gate-name, inputs-encoding): the
	// composite-key FD makes outputs functional. We materialize OR and NOT
	// truth tables with constant keys, and wire gate atoms whose keys are
	// (opcode, input) pairs.
	//
	// NOT: R("not", a, out): rows ("not","0","1"), ("not","1","0").
	atoms = append(atoms,
		cq.NewAtom("R", k("not"), k("0"), k("1")),
		cq.NewAtom("R", k("not"), k("1"), k("0")),
	)
	// OR via implication chains: out_i = lit_i ∨ acc_{i-1} is encoded with
	// one binary-OR table per pair position: R("orX", a, t) where the key
	// (orX, a) maps a to a∨X for X the other (variable) input folded by
	// chaining: we instead encode clause satisfaction directly — for each
	// clause, a chain of derived variables using the two-row table
	// R(("imp",acc), lit, acc') is unnecessary; a simpler complete
	// encoding uses the 4-row OR table keyed by both inputs packed into
	// (A,B):
	atoms = append(atoms,
		cq.NewAtom("R", k("or0"), k("0"), k("0")),
		cq.NewAtom("R", k("or0"), k("1"), k("1")),
		cq.NewAtom("R", k("or1"), k("0"), k("1")),
		cq.NewAtom("R", k("or1"), k("1"), k("1")),
	)
	// A variable-keyed OR needs the left input in the key position A:
	// R(orL, r, out) where orL ∈ {"or0","or1"} is selected by a helper
	// atom R("sel", l, orL): sel maps 0↦or0, 1↦or1.
	atoms = append(atoms,
		cq.NewAtom("R", k("sel"), k("0"), k("or0")),
		cq.NewAtom("R", k("sel"), k("1"), k("or1")),
	)
	gate := 0
	fresh := func(prefix string) cq.Term {
		gate++
		return cq.Var(fmt.Sprintf("%s%d", prefix, gate))
	}
	// lit resolves a literal to a term (adding a NOT gate for negations).
	lit := func(l Lit) cq.Term {
		if !l.Neg {
			return cq.Var(l.Var)
		}
		out := fresh("n")
		atoms = append(atoms, cq.NewAtom("R", k("not"), cq.Var(l.Var), out))
		return out
	}
	or2 := func(a1, a2 cq.Term) cq.Term {
		selector := fresh("s")
		out := fresh("o")
		atoms = append(atoms,
			cq.NewAtom("R", k("sel"), a1, selector),
			cq.NewAtom("R", selector, a2, out),
		)
		return out
	}
	// Pinning: atoms sharing the composite key ("pin","a") must share the
	// C value by the FD, so every clause output is forced equal to "1";
	// if the gate tables force it to "0" instead, the element-query chase
	// hits 0 = 1 and the branch dies.
	atoms = append(atoms, cq.NewAtom("R", k("pin"), k("a"), k("1")))
	for _, cl := range f.Clauses {
		v1, v2, v3 := lit(cl[0]), lit(cl[1]), lit(cl[2])
		out := or2(or2(v1, v2), v3)
		atoms = append(atoms, cq.NewAtom("R", k("pin"), k("a"), out))
	}
	q := cq.NewCQ(nil, atoms)
	q.Name = "Qsat3"
	return &SAT3KeyReduction{S: s, A: a, Q: q}
}
