package gadgets

import (
	"repro/internal/access"
	"repro/internal/cq"
	"repro/internal/schema"
)

// FDVBRPReduction is the 3SAT → VBRP(CQ) reduction of Proposition 4.5:
// under FD-shaped constraints only, with fixed R, A, M = 1 and a single
// view V() = Qc(), the Boolean query Q() = Qc() ∧ Qψ(x̄,1) has a 1-bounded
// rewriting in CQ using V iff ψ is satisfiable (the only candidate plans
// are the empty plan and V itself, and Q ≡_A V iff ψ is satisfiable).
type FDVBRPReduction struct {
	S     *schema.Schema
	A     *access.Schema
	Q     *cq.CQ
	Views map[string]*cq.UCQ
	M     int
}

// NewFDVBRPReduction builds the reduction. R drops R01 (its instance
// cannot be pinned by FDs); the Boolean domain is extracted from Rneg.
func NewFDVBRPReduction(f *CNF) *FDVBRPReduction {
	s := schema.New(
		schema.NewRelation("Ror", "B", "A1", "A2"),
		schema.NewRelation("Rand", "B", "A1", "A2"),
		schema.NewRelation("Rneg", "A", "NA"),
	)
	a := access.NewSchema(
		access.NewConstraint("Ror", []string{"A1", "A2"}, []string{"B"}, 1),
		access.NewConstraint("Rand", []string{"A1", "A2"}, []string{"B"}, 1),
		access.NewConstraint("Rneg", []string{"A"}, []string{"NA"}, 1),
	)

	// Qc without the R01 atoms.
	qcAtoms := QcAtoms(false)

	// Q() = Qc ∧ Qψ(x̄, 1): the circuit output is pinned to 1; variables
	// range over the Boolean domain via Rneg (each x has a complement).
	atoms := append([]cq.Atom(nil), qcAtoms...)
	ckt := &circuit{}
	for _, v := range f.Vars {
		nv := ckt.freshVar()
		atoms = append(atoms, cq.NewAtom("Rneg", cq.Var(v), nv))
	}
	out := ckt.build(f)
	atoms = append(atoms, ckt.atoms...)
	q := cq.NewCQ(nil, atoms, cq.Equality{L: out, R: cq.Cst("1")})
	q.Name = "Qfd"

	// The single view V() = Qc().
	v := cq.NewCQ(nil, qcAtoms)
	v.Name = "Vc"

	return &FDVBRPReduction{
		S: s, A: a, Q: q,
		Views: map[string]*cq.UCQ{"Vc": cq.NewUCQ(v)},
		M:     1,
	}
}
