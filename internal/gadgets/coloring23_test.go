package gadgets

import (
	"testing"

	"repro/internal/boundedness"
)

// Theorem 4.1(2): Q A-satisfiable iff the graph is 3-colorable.
func TestThreeColorReduction(t *testing.T) {
	cases := []struct {
		name string
		g    *Graph
		want bool
	}{
		{"triangle", &Graph{Nodes: []string{"a", "b", "c"},
			Edges: [][2]string{{"a", "b"}, {"b", "c"}, {"c", "a"}}}, true},
		{"k4", &Graph{Nodes: []string{"a", "b", "c", "d"},
			Edges: [][2]string{{"a", "b"}, {"a", "c"}, {"a", "d"}, {"b", "c"}, {"b", "d"}, {"c", "d"}}}, false},
		{"path", &Graph{Nodes: []string{"a", "b", "c"},
			Edges: [][2]string{{"a", "b"}, {"b", "c"}}}, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := tc.g.ThreeColorable(); got != tc.want {
				t.Fatalf("brute force says %v, fixture expects %v", got, tc.want)
			}
			r := NewThreeColorReduction(tc.g)
			got := boundedness.ASatisfiable(r.Q, r.S, r.A)
			if got != tc.want {
				t.Fatalf("A-satisfiability %v, want 3-colorability %v", got, tc.want)
			}
		})
	}
}

// Theorem 4.1(3): Q A-satisfiable iff ψ is satisfiable, with only
// R((A,B)→C,1) and R'(∅→E,2).
func TestSAT3KeyReduction(t *testing.T) {
	cases := []struct {
		name string
		f    *CNF
	}{
		{"sat", &CNF{Vars: []string{"x", "y"}, Clauses: []Clause{
			{Pos("x"), Pos("y"), Pos("y")},
			{Neg("x"), Pos("y"), Pos("y")},
		}}},
		{"unsat", &CNF{Vars: []string{"x"}, Clauses: []Clause{
			{Pos("x"), Pos("x"), Pos("x")},
			{Neg("x"), Neg("x"), Neg("x")},
		}}},
		{"sat_three_vars", &CNF{Vars: []string{"x", "y", "z"}, Clauses: []Clause{
			{Pos("x"), Neg("y"), Pos("z")},
			{Neg("x"), Pos("y"), Neg("z")},
			{Pos("x"), Pos("y"), Pos("z")},
		}}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, want := tc.f.Satisfiable()
			r := NewSAT3KeyReduction(tc.f)
			got := boundedness.ASatisfiable(r.Q, r.S, r.A)
			if got != want {
				t.Fatalf("A-satisfiability %v, want SAT %v", got, want)
			}
		})
	}
}
