package gadgets

import (
	"fmt"

	"repro/internal/access"
	"repro/internal/cq"
	"repro/internal/schema"
)

// Graph is an undirected graph with string-named nodes.
type Graph struct {
	Nodes []string
	Edges [][2]string
}

// Precoloring assigns colors in {r,g,b} to a subset of nodes (the proof
// restricts it to leaves).
type Precoloring map[string]string

// ExtendableTo3Coloring decides by brute force whether the precoloring
// extends to a proper 3-coloring (ground truth for the reduction).
func (g *Graph) ExtendableTo3Coloring(pre Precoloring) bool {
	colors := []string{"r", "g", "b"}
	asn := map[string]string{}
	for n, c := range pre {
		asn[n] = c
	}
	var free []string
	for _, n := range g.Nodes {
		if _, fixed := pre[n]; !fixed {
			free = append(free, n)
		}
	}
	ok := func() bool {
		for _, e := range g.Edges {
			if asn[e[0]] == asn[e[1]] {
				return false
			}
		}
		return true
	}
	var rec func(i int) bool
	rec = func(i int) bool {
		if i == len(free) {
			return ok()
		}
		for _, c := range colors {
			asn[free[i]] = c
			if rec(i + 1) {
				return true
			}
		}
		delete(asn, free[i])
		return false
	}
	return rec(0)
}

// ColoringReduction is the precoloring-extension → VBRP(ACQ) reduction of
// Theorem 4.1(1): over a single binary relation R(A,B) with the single
// access constraint R(A → B, 2) (fixed A), an acyclic Boolean CQ Q such
// that Q ≡_A ∅ iff the precoloring does not extend — and, by the Qf
// padding argument, Q has an M-bounded rewriting iff Q ≡_A ∅.
//
// The core of the reduction (what the validation suite checks against
// ground truth) is the A-satisfiability of Q; the Qf padding only rules
// out non-empty plans and is controlled by PadConstants.
type ColoringReduction struct {
	S *schema.Schema
	A *access.Schema
	Q *cq.CQ
}

// NewColoringReduction builds the reduction for graph g and precoloring
// pre (which must color only leaves, and every connected component must
// contain a precolored leaf, as the proof requires). padConstants adds the
// Qf atoms R(y_i, i) for i ≤ padConstants.
func NewColoringReduction(g *Graph, pre Precoloring, padConstants int) (*ColoringReduction, error) {
	s := schema.New(schema.NewRelation("R", "A", "B"))
	a := access.NewSchema(access.NewConstraint("R", []string{"A"}, []string{"B"}, 2))

	deg := map[string]int{}
	for _, e := range g.Edges {
		deg[e[0]]++
		deg[e[1]]++
	}
	for n := range pre {
		if deg[n] != 1 {
			return nil, fmt.Errorf("gadgets: precolored node %s is not a leaf", n)
		}
	}

	nodeIdx := map[string]int{}
	for i, n := range g.Nodes {
		nodeIdx[n] = i + 1
	}
	nn := len(g.Nodes)
	v := func(name string) cq.Term { return cq.Var("v_" + name) }
	idc := func(i int) cq.Term { return cq.Cst("id" + itoa(i)) }

	var atoms []cq.Atom

	// QE: each edge, in both directions, over renamed endpoint variables.
	edgeVar := func(e [2]string, end int) cq.Term {
		return cq.Var(fmt.Sprintf("x%d_%s_%s", end, e[0], e[1]))
	}
	for _, e := range g.Edges {
		atoms = append(atoms,
			cq.NewAtom("R", edgeVar(e, 1), edgeVar(e, 2)),
			cq.NewAtom("R", edgeVar(e, 2), edgeVar(e, 1)),
		)
	}

	// Q1V/Q2V: tie the renamed endpoint variables back to the node
	// variables using the fan-out-2 constraint: for node index i and an
	// incident edge variable xe, the atom groups {R(id,c), R(id,v), R(id,xe)}
	// for c = 1, 2, 3 force v = xe.
	tie := func(node string, xe cq.Term) {
		i := nodeIdx[node]
		for c := 1; c <= 3; c++ {
			id := idc(i + (c-1)*nn)
			atoms = append(atoms,
				cq.NewAtom("R", id, cq.Cst(itoa(c))),
				cq.NewAtom("R", id, v(node)),
				cq.NewAtom("R", id, xe),
			)
		}
	}
	for _, e := range g.Edges {
		tie(e[0], edgeVar(e, 1))
		tie(e[1], edgeVar(e, 2))
	}

	// QL: precolored leaves are pinned to their colors via the same
	// three-group trick against the color constant.
	for node, color := range pre {
		i := nodeIdx[node]
		for c := 1; c <= 3; c++ {
			id := idc(3*nn + i + (c-1)*nn)
			atoms = append(atoms,
				cq.NewAtom("R", id, cq.Cst(itoa(c))),
				cq.NewAtom("R", id, v(node)),
				cq.NewAtom("R", id, cq.Cst(color)),
			)
		}
	}

	// Q1: the color cliques.
	for _, p := range [][2]string{{"r", "g"}, {"r", "b"}, {"g", "r"}, {"g", "b"}, {"b", "r"}, {"b", "g"}} {
		atoms = append(atoms, cq.NewAtom("R", cq.Cst(p[0]), cq.Cst(p[1])))
	}

	// Qf: padding constants.
	for i := 1; i <= padConstants; i++ {
		atoms = append(atoms, cq.NewAtom("R", cq.Var("yf"+itoa(i)), cq.Cst("pad"+itoa(i))))
	}

	q := cq.NewCQ(nil, atoms)
	q.Name = "Qcol"
	return &ColoringReduction{S: s, A: a, Q: q}, nil
}
