package gadgets

import (
	"testing"

	"repro/internal/boundedness"
	"repro/internal/cq"
	"repro/internal/instance"
	"repro/internal/plan"
	"repro/internal/vbrp"
)

func TestFig2InstancesSatisfyGadgetConstraints(t *testing.T) {
	r := NewBOPReduction(&CNF{Vars: []string{"x"}, Clauses: []Clause{{Pos("x"), Pos("x"), Pos("x")}}})
	db := instance.NewDatabase(r.S)
	FillBool(db)
	db.MustInsert("Ro", "k", "1")
	ok, err := db.SatisfiesAll(r.A)
	if err != nil || !ok {
		t.Fatalf("Figure 2 instances must satisfy the gadget access schema (err=%v, violations=%v)", err, db.Violations(r.A))
	}
}

func TestCNFBruteForce(t *testing.T) {
	sat := &CNF{Vars: []string{"x", "y"}, Clauses: []Clause{
		{Pos("x"), Pos("y"), Pos("y")},
		{Neg("x"), Pos("y"), Pos("y")},
	}}
	if _, ok := sat.Satisfiable(); !ok {
		t.Fatal("formula is satisfiable (y=1)")
	}
	unsat := &CNF{Vars: []string{"x"}, Clauses: []Clause{
		{Pos("x"), Pos("x"), Pos("x")},
		{Neg("x"), Neg("x"), Neg("x")},
	}}
	if _, ok := unsat.Satisfiable(); ok {
		t.Fatal("formula is unsatisfiable")
	}
}

// Theorem 3.4: Q(w) has bounded output iff ψ is unsatisfiable.
func TestBOPReductionAgreesWithSAT(t *testing.T) {
	cases := []struct {
		name string
		f    *CNF
	}{
		{"sat_single", &CNF{Vars: []string{"x"}, Clauses: []Clause{{Pos("x"), Pos("x"), Pos("x")}}}},
		{"unsat_single", &CNF{Vars: []string{"x"}, Clauses: []Clause{
			{Pos("x"), Pos("x"), Pos("x")}, {Neg("x"), Neg("x"), Neg("x")},
		}}},
		{"sat_two", &CNF{Vars: []string{"x", "y"}, Clauses: []Clause{
			{Pos("x"), Neg("y"), Pos("y")},
			{Neg("x"), Pos("y"), Pos("y")},
		}}},
		{"unsat_two", &CNF{Vars: []string{"x", "y"}, Clauses: []Clause{
			{Pos("x"), Pos("y"), Pos("y")},
			{Pos("x"), Neg("y"), Neg("y")},
			{Neg("x"), Pos("y"), Pos("y")},
			{Neg("x"), Neg("y"), Neg("y")},
		}}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, sat := tc.f.Satisfiable()
			r := NewBOPReduction(tc.f)
			bounded, _ := boundedness.BoundedOutputCQ(r.Q, r.S, r.A)
			if bounded != !sat {
				t.Fatalf("BOP verdict %v, want %v (sat=%v)", bounded, !sat, sat)
			}
		})
	}
}

// Proposition 4.5: under FDs with M=1 and V={Qc}, Q has a 1-bounded
// rewriting iff ψ is satisfiable.
func TestFDVBRPReductionAgreesWithSAT(t *testing.T) {
	cases := []struct {
		name string
		f    *CNF
	}{
		{"sat", &CNF{Vars: []string{"x", "y"}, Clauses: []Clause{
			{Pos("x"), Pos("y"), Pos("y")},
			{Neg("x"), Pos("y"), Pos("y")},
		}}},
		{"unsat", &CNF{Vars: []string{"x"}, Clauses: []Clause{
			{Pos("x"), Pos("x"), Pos("x")}, {Neg("x"), Neg("x"), Neg("x")},
		}}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, sat := tc.f.Satisfiable()
			r := NewFDVBRPReduction(tc.f)
			prob := &vbrp.Problem{
				S: r.S, A: r.A, Views: r.Views, M: r.M,
				Lang:   plan.LangCQ,
				Consts: r.Q.Constants(),
			}
			dec, err := vbrp.DecideBoolean(cq.NewUCQ(r.Q), prob)
			if err != nil {
				t.Fatal(err)
			}
			if dec.Has != sat {
				t.Fatalf("VBRP verdict %v, want %v", dec.Has, sat)
			}
		})
	}
}

// Theorem 4.1(1): Q ≡_A ∅ iff the precoloring does not extend to a proper
// 3-coloring.
func TestColoringReductionAgreesWithBruteForce(t *testing.T) {
	// Path a–b–c with leaves a, c.
	path := &Graph{Nodes: []string{"a", "b", "c"}, Edges: [][2]string{{"a", "b"}, {"b", "c"}}}
	// Triangle with pendant leaves on each corner.
	triangle := &Graph{
		Nodes: []string{"u", "v", "w", "lu", "lv", "lw"},
		Edges: [][2]string{{"u", "v"}, {"v", "w"}, {"w", "u"}, {"u", "lu"}, {"v", "lv"}, {"w", "lw"}},
	}
	cases := []struct {
		name string
		g    *Graph
		pre  Precoloring
	}{
		{"path_extendable", path, Precoloring{"a": "r", "c": "r"}},
		{"path_extendable2", path, Precoloring{"a": "r", "c": "g"}},
		{"triangle_extendable", triangle, Precoloring{"lu": "r", "lv": "r", "lw": "r"}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			want := tc.g.ExtendableTo3Coloring(tc.pre)
			r, err := NewColoringReduction(tc.g, tc.pre, 0)
			if err != nil {
				t.Fatal(err)
			}
			got := boundedness.ASatisfiable(r.Q, r.S, r.A)
			if got != want {
				t.Fatalf("A-satisfiability %v, want extendability %v", got, want)
			}
		})
	}
}

// Theorem 3.1: the Σp3 construction decides ∃∀∃ 3CNF through VBRP.
func TestSigma3ReductionAgreesWithQBF(t *testing.T) {
	cases := []struct {
		name string
		phi  *QBF3
	}{
		{"true_simple", &QBF3{
			X: []string{"x1", "x2"}, Y: []string{"y1"}, Z: []string{"z1"},
			// ψ = (x1 ∨ y1 ∨ z1) ∧ (x1 ∨ ¬y1 ∨ ¬z1): x1=1 satisfies both
			// for every y1, so ∃X∀Y∃Z ψ is true.
			Psi: &CNF{Vars: []string{"x1", "x2", "y1", "z1"}, Clauses: []Clause{
				{Pos("x1"), Pos("y1"), Pos("z1")},
				{Pos("x1"), Neg("y1"), Neg("z1")},
			}},
		}},
		{"false_simple", &QBF3{
			X: []string{"x1", "x2"}, Y: []string{"y1"}, Z: []string{"z1"},
			// ψ = (y1 ∨ y1 ∨ y1): fails for y1=0 whatever X, Z are.
			Psi: &CNF{Vars: []string{"x1", "x2", "y1", "z1"}, Clauses: []Clause{
				{Pos("y1"), Pos("y1"), Pos("y1")},
			}},
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			want := tc.phi.Eval()
			r, err := NewSigma3Reduction(tc.phi)
			if err != nil {
				t.Fatal(err)
			}
			got, _, err := r.Decide()
			if err != nil {
				t.Fatal(err)
			}
			if got != want {
				t.Fatalf("VBRP verdict %v, want QBF value %v", got, want)
			}
		})
	}
}
