// Package gadgets implements the reductions from the paper's hardness
// proofs as executable instance generators: the Boolean-encoding relations
// of Figure 2, the 3SAT→BOP reduction (Theorem 3.4), the 3SAT→VBRP(CQ)
// reduction under FDs (Proposition 4.5), the precoloring-extension→
// VBRP(ACQ) reduction (Theorem 4.1(1)), and the ∃*∀*∃*3CNF→VBRP(CQ)
// construction (Theorem 3.1). Each generator is paired with a brute-force
// ground-truth solver, so the deciders of packages boundedness and vbrp
// can be validated on labelled instance families (Table I).
package gadgets

import "fmt"

// Lit is a propositional literal.
type Lit struct {
	Var string
	Neg bool
}

// Clause is a disjunction of exactly three literals.
type Clause [3]Lit

// CNF is a 3SAT instance.
type CNF struct {
	Vars    []string
	Clauses []Clause
}

// Validate checks that every literal references a declared variable.
func (c *CNF) Validate() error {
	vars := map[string]bool{}
	for _, v := range c.Vars {
		vars[v] = true
	}
	for i, cl := range c.Clauses {
		for _, l := range cl {
			if !vars[l.Var] {
				return fmt.Errorf("gadgets: clause %d uses undeclared variable %s", i, l.Var)
			}
		}
	}
	return nil
}

// Eval evaluates the formula under the assignment.
func (c *CNF) Eval(asn map[string]bool) bool {
	for _, cl := range c.Clauses {
		ok := false
		for _, l := range cl {
			if asn[l.Var] != l.Neg {
				ok = true
				break
			}
		}
		if !ok {
			return false
		}
	}
	return true
}

// Satisfiable decides satisfiability by brute force (ground truth for the
// reduction tests; fine for the ≤20-variable instances the benches use).
func (c *CNF) Satisfiable() (map[string]bool, bool) {
	n := len(c.Vars)
	if n > 24 {
		panic("gadgets: brute-force SAT limited to 24 variables")
	}
	asn := map[string]bool{}
	for mask := 0; mask < 1<<n; mask++ {
		for i, v := range c.Vars {
			asn[v] = mask&(1<<i) != 0
		}
		if c.Eval(asn) {
			out := make(map[string]bool, n)
			for k, v := range asn {
				out[k] = v
			}
			return out, true
		}
	}
	return nil, false
}

// Pos and Neg are literal constructors.
func Pos(v string) Lit { return Lit{Var: v} }

// Neg builds a negated literal.
func Neg(v string) Lit { return Lit{Var: v, Neg: true} }
