package access

import (
	"testing"

	"repro/internal/schema"
)

func TestConstraintNormalization(t *testing.T) {
	c := NewConstraint("R", []string{"b", "a", "b"}, []string{"z", "y"}, 3)
	if len(c.X) != 2 || c.X[0] != "a" || c.X[1] != "b" {
		t.Fatalf("X not normalized: %v", c.X)
	}
	if len(c.Y) != 2 || c.Y[0] != "y" {
		t.Fatalf("Y not normalized: %v", c.Y)
	}
	xy := c.XY()
	if len(xy) != 4 {
		t.Fatalf("XY: %v", xy)
	}
}

func TestCovers(t *testing.T) {
	c := NewConstraint("R", []string{"a"}, []string{"b", "c"}, 5)
	if !c.Covers("R", []string{"a"}, []string{"b"}) {
		t.Fatal("Y ⊆ X∪Y' must be covered")
	}
	if !c.Covers("R", []string{"a"}, []string{"a", "c"}) {
		t.Fatal("fetching X attributes back is covered")
	}
	if c.Covers("R", []string{"a"}, []string{"d"}) {
		t.Fatal("attributes outside X∪Y' are not covered")
	}
	if c.Covers("R", []string{"b"}, []string{"c"}) {
		t.Fatal("different X is not covered")
	}
	if c.Covers("S", []string{"a"}, []string{"b"}) {
		t.Fatal("different relation is not covered")
	}
}

func TestValidate(t *testing.T) {
	s := schema.New(schema.NewRelation("R", "a", "b", "c"))
	good := NewConstraint("R", []string{"a"}, []string{"b"}, 1)
	if err := good.Validate(s); err != nil {
		t.Fatal(err)
	}
	for _, bad := range []*Constraint{
		NewConstraint("S", []string{"a"}, []string{"b"}, 1),  // unknown relation
		NewConstraint("R", []string{"zz"}, []string{"b"}, 1), // unknown X attr
		NewConstraint("R", []string{"a"}, []string{"zz"}, 1), // unknown Y attr
		NewConstraint("R", []string{"a"}, nil, 1),            // empty Y
		NewConstraint("R", []string{"a"}, []string{"b"}, 0),  // N < 1
	} {
		if err := bad.Validate(s); err == nil {
			t.Fatalf("constraint %v must be invalid", bad)
		}
	}
}

func TestSchemaHelpers(t *testing.T) {
	fd := NewConstraint("R", []string{"a"}, []string{"b"}, 1)
	wide := NewConstraint("R", []string{"a"}, []string{"c"}, 9)
	a := NewSchema(fd, wide)
	if a.AllFDs() {
		t.Fatal("N=9 is not an FD")
	}
	if !NewSchema(fd).AllFDs() {
		t.Fatal("N=1 is an FD")
	}
	if got := a.OnRelation("R"); len(got) != 2 {
		t.Fatalf("OnRelation: %v", got)
	}
	if a.Covering("R", []string{"a"}, []string{"c"}) != wide {
		t.Fatal("Covering must find the matching constraint")
	}
	if a.Covering("R", []string{"c"}, []string{"a"}) != nil {
		t.Fatal("Covering must fail on mismatched X")
	}
}
