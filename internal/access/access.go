// Package access implements access schemas: sets of access constraints
// R(X -> Y, N) combining a cardinality bound with an index (Section 2).
//
// An instance D satisfies R(X -> Y, N) when every X-value in D matches at
// most N distinct Y-projections, and an index exists that, given an X-value
// a̅, returns D_{R:XY}(X = a̅) in O(N) time. The index side is realized by
// instance.Indexed in package instance; this package carries the declarative
// part and schema-level validation.
package access

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/schema"
)

// Constraint is a single access constraint R(X -> Y, N).
//
// X may be empty (constraining the whole relation's Y-projection, as in
// R(∅ -> A, 2) from Figure 2's gadgets). Y must be non-empty. N >= 1.
type Constraint struct {
	Rel string   // relation name
	X   []string // input attributes (possibly empty)
	Y   []string // output attributes
	N   int      // cardinality bound
}

// NewConstraint builds a constraint, normalizing the attribute lists
// (sorted, de-duplicated) so that equality of constraints is syntactic.
func NewConstraint(rel string, x, y []string, n int) *Constraint {
	return &Constraint{Rel: rel, X: normalize(x), Y: normalize(y), N: n}
}

func normalize(attrs []string) []string {
	out := append([]string(nil), attrs...)
	sort.Strings(out)
	w := 0
	for i, a := range out {
		if i == 0 || out[i-1] != a {
			out[w] = a
			w++
		}
	}
	return out[:w]
}

// IsFD reports whether the constraint has the functional-dependency form
// R(X -> Y, 1) used by Corollary 4.4 and Proposition 4.5.
func (c *Constraint) IsFD() bool { return c.N == 1 }

// XY returns the union X ∪ Y, sorted and de-duplicated. Fetch operations
// over this constraint return XY-projections of tuples.
func (c *Constraint) XY() []string {
	return normalize(append(append([]string(nil), c.X...), c.Y...))
}

// Covers reports whether a fetch retrieving attributes y over input
// attributes x is covered by this constraint, i.e. the constraint is on the
// same relation, x equals X, and y ⊆ X ∪ Y (conformance condition (a), §2).
func (c *Constraint) Covers(rel string, x, y []string) bool {
	if rel != c.Rel {
		return false
	}
	nx := normalize(x)
	if len(nx) != len(c.X) {
		return false
	}
	for i := range nx {
		if nx[i] != c.X[i] {
			return false
		}
	}
	xy := c.XY()
	for _, a := range normalize(y) {
		if !contains(xy, a) {
			return false
		}
	}
	return true
}

func contains(sorted []string, a string) bool {
	i := sort.SearchStrings(sorted, a)
	return i < len(sorted) && sorted[i] == a
}

// Validate checks the constraint against a database schema: the relation
// must exist, X and Y must be attributes of it, Y non-empty, N >= 1.
func (c *Constraint) Validate(s *schema.Schema) error {
	r := s.Relation(c.Rel)
	if r == nil {
		return fmt.Errorf("access: constraint on unknown relation %s", c.Rel)
	}
	if !r.HasAttrs(c.X) {
		return fmt.Errorf("access: constraint %s: X attributes %v not all in %s", c, c.X, r)
	}
	if !r.HasAttrs(c.Y) {
		return fmt.Errorf("access: constraint %s: Y attributes %v not all in %s", c, c.Y, r)
	}
	if len(c.Y) == 0 {
		return fmt.Errorf("access: constraint %s: Y must be non-empty", c)
	}
	if c.N < 1 {
		return fmt.Errorf("access: constraint %s: N must be >= 1, got %d", c, c.N)
	}
	return nil
}

// Key returns a canonical identifier for the constraint, used for index
// lookup and de-duplication.
func (c *Constraint) Key() string {
	return c.Rel + "(" + strings.Join(c.X, ",") + "->" + strings.Join(c.Y, ",") + ")"
}

// String renders the constraint in the paper's notation R(X -> Y, N).
func (c *Constraint) String() string {
	x := strings.Join(c.X, ",")
	if x == "" {
		x = "∅"
	}
	return fmt.Sprintf("%s((%s) -> (%s), %d)", c.Rel, x, strings.Join(c.Y, ","), c.N)
}

// Schema is an access schema: a set of access constraints over one database
// schema.
type Schema struct {
	Constraints []*Constraint
}

// NewSchema builds an access schema from constraints.
func NewSchema(cs ...*Constraint) *Schema {
	return &Schema{Constraints: cs}
}

// Add appends a constraint.
func (a *Schema) Add(c *Constraint) { a.Constraints = append(a.Constraints, c) }

// Validate validates all constraints against the database schema.
func (a *Schema) Validate(s *schema.Schema) error {
	for _, c := range a.Constraints {
		if err := c.Validate(s); err != nil {
			return err
		}
	}
	return nil
}

// OnRelation returns the constraints declared on the named relation.
func (a *Schema) OnRelation(rel string) []*Constraint {
	if a == nil {
		return nil
	}
	var out []*Constraint
	for _, c := range a.Constraints {
		if c.Rel == rel {
			out = append(out, c)
		}
	}
	return out
}

// Covering returns a constraint covering a fetch with input attributes x
// and output attributes y on relation rel, or nil if none exists.
func (a *Schema) Covering(rel string, x, y []string) *Constraint {
	if a == nil {
		return nil
	}
	for _, c := range a.Constraints {
		if c.Covers(rel, x, y) {
			return c
		}
	}
	return nil
}

// AllFDs reports whether every constraint is an FD (N = 1), the regime of
// Corollary 4.4 and Proposition 4.5.
func (a *Schema) AllFDs() bool {
	for _, c := range a.Constraints {
		if !c.IsFD() {
			return false
		}
	}
	return true
}

// String renders the access schema, one constraint per line.
func (a *Schema) String() string {
	parts := make([]string, len(a.Constraints))
	for i, c := range a.Constraints {
		parts[i] = c.String()
	}
	sort.Strings(parts)
	return strings.Join(parts, "\n")
}
