package schema

import "testing"

func TestRelationBasics(t *testing.T) {
	r := NewRelation("R", "a", "b", "c")
	if r.Arity() != 3 {
		t.Fatalf("arity %d", r.Arity())
	}
	if r.AttrPos("b") != 1 || r.AttrPos("zz") != -1 {
		t.Fatal("AttrPos")
	}
	if !r.HasAttrs([]string{"a", "c"}) || r.HasAttrs([]string{"a", "zz"}) {
		t.Fatal("HasAttrs")
	}
	pos, err := r.Positions([]string{"c", "a"})
	if err != nil || pos[0] != 2 || pos[1] != 0 {
		t.Fatalf("Positions: %v %v", pos, err)
	}
	if _, err := r.Positions([]string{"zz"}); err == nil {
		t.Fatal("unknown attribute must error")
	}
}

func TestRelationPanics(t *testing.T) {
	for name, f := range map[string]func(){
		"empty name":   func() { NewRelation("", "a") },
		"no attrs":     func() { NewRelation("R") },
		"dup attrs":    func() { NewRelation("R", "a", "a") },
		"empty attr":   func() { NewRelation("R", "") },
		"dup relation": func() { New(NewRelation("R", "a"), NewRelation("R", "b")) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s: expected panic", name)
				}
			}()
			f()
		}()
	}
}

func TestSchemaLookup(t *testing.T) {
	s := New(NewRelation("B", "x"), NewRelation("A", "y"))
	if s.Relation("A") == nil || s.Relation("C") != nil {
		t.Fatal("Relation lookup")
	}
	names := s.Names()
	if len(names) != 2 || names[0] != "A" || names[1] != "B" {
		t.Fatalf("Names must be sorted: %v", names)
	}
	if !s.Has("B") || s.Has("Z") {
		t.Fatal("Has")
	}
}
