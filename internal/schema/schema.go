// Package schema defines relational database schemas: named relations with
// fixed attribute lists, per Section 2 of the paper.
package schema

import (
	"fmt"
	"sort"
	"strings"
)

// Relation is a relation schema R(A1, ..., Ak) with a name and an ordered,
// duplicate-free attribute list.
type Relation struct {
	Name  string
	Attrs []string

	pos map[string]int // attribute name -> position, built lazily by NewRelation
}

// NewRelation constructs a relation schema. It panics on an empty name,
// an empty attribute list, or duplicate attributes, since schemas are
// programmer-supplied constants in this library.
func NewRelation(name string, attrs ...string) *Relation {
	if name == "" {
		panic("schema: relation name must be non-empty")
	}
	if len(attrs) == 0 {
		panic(fmt.Sprintf("schema: relation %s must have at least one attribute", name))
	}
	pos := make(map[string]int, len(attrs))
	for i, a := range attrs {
		if a == "" {
			panic(fmt.Sprintf("schema: relation %s has an empty attribute name", name))
		}
		if _, dup := pos[a]; dup {
			panic(fmt.Sprintf("schema: relation %s has duplicate attribute %s", name, a))
		}
		pos[a] = i
	}
	return &Relation{Name: name, Attrs: append([]string(nil), attrs...), pos: pos}
}

// Arity returns the number of attributes of the relation.
func (r *Relation) Arity() int { return len(r.Attrs) }

// AttrPos returns the position of attribute a, or -1 if a is not an
// attribute of the relation.
func (r *Relation) AttrPos(a string) int {
	if r.pos != nil {
		if i, ok := r.pos[a]; ok {
			return i
		}
		return -1
	}
	for i, x := range r.Attrs {
		if x == a {
			return i
		}
	}
	return -1
}

// HasAttrs reports whether every attribute in attrs belongs to the relation.
func (r *Relation) HasAttrs(attrs []string) bool {
	for _, a := range attrs {
		if r.AttrPos(a) < 0 {
			return false
		}
	}
	return true
}

// Positions maps a list of attribute names to their positions. It returns an
// error if any attribute is unknown.
func (r *Relation) Positions(attrs []string) ([]int, error) {
	out := make([]int, len(attrs))
	for i, a := range attrs {
		p := r.AttrPos(a)
		if p < 0 {
			return nil, fmt.Errorf("schema: relation %s has no attribute %s", r.Name, a)
		}
		out[i] = p
	}
	return out, nil
}

// String renders the schema as R(A1,...,Ak).
func (r *Relation) String() string {
	return r.Name + "(" + strings.Join(r.Attrs, ",") + ")"
}

// Schema is a database schema: a collection of relation schemas with
// distinct names.
type Schema struct {
	Relations []*Relation
	byName    map[string]*Relation
}

// New constructs a database schema from relation schemas. It panics on
// duplicate relation names.
func New(rels ...*Relation) *Schema {
	s := &Schema{byName: make(map[string]*Relation, len(rels))}
	for _, r := range rels {
		s.Add(r)
	}
	return s
}

// Add appends a relation schema; it panics if the name is already taken.
func (s *Schema) Add(r *Relation) {
	if s.byName == nil {
		s.byName = make(map[string]*Relation)
	}
	if _, dup := s.byName[r.Name]; dup {
		panic(fmt.Sprintf("schema: duplicate relation %s", r.Name))
	}
	s.Relations = append(s.Relations, r)
	s.byName[r.Name] = r
}

// Relation returns the relation schema named name, or nil if absent.
func (s *Schema) Relation(name string) *Relation {
	if s == nil {
		return nil
	}
	return s.byName[name]
}

// Has reports whether the schema contains a relation named name.
func (s *Schema) Has(name string) bool { return s.Relation(name) != nil }

// Names returns the sorted relation names.
func (s *Schema) Names() []string {
	out := make([]string, 0, len(s.Relations))
	for _, r := range s.Relations {
		out = append(out, r.Name)
	}
	sort.Strings(out)
	return out
}

// String renders all relation schemas, sorted by name, one per line.
func (s *Schema) String() string {
	names := s.Names()
	parts := make([]string, len(names))
	for i, n := range names {
		parts[i] = s.Relation(n).String()
	}
	return strings.Join(parts, "\n")
}
