package workload

import (
	"fmt"
	"math/rand"

	"repro/internal/access"
	"repro/internal/cq"
	"repro/internal/fo"
	"repro/internal/instance"
	"repro/internal/schema"
)

// CDR models the paper's industrial evaluation domain: call detail records
// from a telco. The schema, constraints and query shapes follow the
// description in Sections 1 and 5.1 (the real data is proprietary; this
// synthetic generator preserves the access-constraint structure — see
// DESIGN.md "Substitutions").
//
//	customer(phone, name, plan)                 — phone is a key
//	calls(caller, callee, day, dur)             — a caller makes ≤ FanOut calls/day
//	cell(phone, day, tower)                     — a phone visits ≤ Towers towers/day
//	vip(phone)                                  — small marketing list (global bound)
type CDR struct {
	Schema *schema.Schema
	Access *access.Schema

	FanOut int // calls per caller per day
	Towers int // towers per phone per day
	VIPCap int // global size bound on vip

	CustKey, CallFan, CellFan, VIPBound *access.Constraint
}

// NewCDR builds the CDR fixture.
func NewCDR(fanOut, towers, vipCap int) *CDR {
	s := schema.New(
		schema.NewRelation("customer", "phone", "name", "plan"),
		schema.NewRelation("calls", "caller", "callee", "day", "dur"),
		schema.NewRelation("cell", "phone", "day", "tower"),
		schema.NewRelation("vip", "phone"),
	)
	custKey := access.NewConstraint("customer", []string{"phone"}, []string{"name", "plan"}, 1)
	callFan := access.NewConstraint("calls", []string{"caller", "day"}, []string{"callee", "dur"}, fanOut)
	cellFan := access.NewConstraint("cell", []string{"phone", "day"}, []string{"tower"}, towers)
	vipBound := access.NewConstraint("vip", nil, []string{"phone"}, vipCap)
	a := access.NewSchema(custKey, callFan, cellFan, vipBound)
	return &CDR{
		Schema: s, Access: a,
		FanOut: fanOut, Towers: towers, VIPCap: vipCap,
		CustKey: custKey, CallFan: callFan, CellFan: cellFan, VIPBound: vipBound,
	}
}

// CDRParams sizes a generated CDR instance.
type CDRParams struct {
	Customers int
	Days      int
	Seed      int64
}

// Generate builds an instance satisfying the access schema: every customer
// makes up to FanOut calls on each of a few active days and visits up to
// Towers towers.
func (c *CDR) Generate(p CDRParams) *instance.Database {
	rng := rand.New(rand.NewSource(p.Seed))
	db := instance.NewDatabase(c.Schema)
	if p.Days < 1 {
		p.Days = 30
	}
	phone := func(i int) string { return fmt.Sprintf("p%07d", i) }
	day := func(i int) string { return fmt.Sprintf("d%02d", i) }
	plans := []string{"basic", "silver", "gold"}
	for i := 0; i < p.Customers; i++ {
		db.MustInsert("customer", phone(i), fmt.Sprintf("Customer %d", i), plans[rng.Intn(len(plans))])
		activeDays := 1 + rng.Intn(3)
		usedDays := map[string]bool{}
		for d := 0; d < activeDays; d++ {
			dy := day(rng.Intn(p.Days))
			if d == 0 && i%3 == 0 && p.Days > 7 {
				// A third of customers are deterministically active on day
				// d07, so parameterized workload queries have answers.
				dy = day(7)
			}
			if usedDays[dy] {
				continue // one batch per (customer, day) keeps the fan-outs exact
			}
			usedDays[dy] = true
			nCalls := 1 + rng.Intn(c.FanOut)
			seenCallee := map[string]bool{}
			for k := 0; k < nCalls; k++ {
				callee := phone(rng.Intn(p.Customers))
				if seenCallee[callee] {
					continue
				}
				seenCallee[callee] = true
				db.MustInsert("calls", phone(i), callee, dy, fmt.Sprintf("%d", 10+rng.Intn(600)))
			}
			nTowers := 1 + rng.Intn(c.Towers)
			seenTower := map[string]bool{}
			for k := 0; k < nTowers; k++ {
				tw := fmt.Sprintf("t%04d", rng.Intn(2000))
				if seenTower[tw] {
					continue
				}
				seenTower[tw] = true
				db.MustInsert("cell", phone(i), dy, tw)
			}
		}
	}
	for i := 0; i < c.VIPCap && i < p.Customers; i++ {
		db.MustInsert("vip", phone(i*7%max(1, p.Customers)))
	}
	return db
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// CDRQuery is one workload query with its FO form (for the topped checker)
// and CQ form when it is a CQ (for the baseline evaluator).
type CDRQuery struct {
	Name    string
	Descr   string
	FO      *fo.Query
	CQ      *cq.CQ // nil for non-CQ queries
	IsBound bool   // expected: has a bounded rewriting (topped)
}

// Queries returns the 10-query CDR workload. Queries take a parameter
// phone p0 and day d0, mirroring the parameterized Graph-Search queries of
// the paper; 9 of 10 are expected to be topped (the paper reports > 90%
// improved).
func (c *CDR) Queries(p0, d0 string) []CDRQuery {
	v := cq.Var
	k := cq.Cst
	mk := func(name, descr string, q *cq.CQ, bound bool) CDRQuery {
		fq := fo.FromCQ(q)
		fq.Name = name
		return CDRQuery{Name: name, Descr: descr, FO: fq, CQ: q, IsBound: bound}
	}
	var out []CDRQuery

	// Q1: who did p0 call on d0?
	out = append(out, mk("Q1", "callees of p0 on d0",
		cq.NewCQ([]cq.Term{v("callee")}, []cq.Atom{
			cq.NewAtom("calls", k(p0), v("callee"), k(d0), v("dur")),
		}), true))

	// Q2: names of people p0 called on d0.
	out = append(out, mk("Q2", "names of callees of p0 on d0",
		cq.NewCQ([]cq.Term{v("name")}, []cq.Atom{
			cq.NewAtom("calls", k(p0), v("callee"), k(d0), v("dur")),
			cq.NewAtom("customer", v("callee"), v("name"), v("plan")),
		}), true))

	// Q3: two-hop calls from p0 on d0 (callees of callees).
	out = append(out, mk("Q3", "2-hop callees of p0 on d0",
		cq.NewCQ([]cq.Term{v("c2")}, []cq.Atom{
			cq.NewAtom("calls", k(p0), v("c1"), k(d0), v("dur1")),
			cq.NewAtom("calls", v("c1"), v("c2"), k(d0), v("dur2")),
		}), true))

	// Q4: towers visited by people p0 called on d0.
	out = append(out, mk("Q4", "towers of p0's callees on d0",
		cq.NewCQ([]cq.Term{v("tower")}, []cq.Atom{
			cq.NewAtom("calls", k(p0), v("c1"), k(d0), v("dur")),
			cq.NewAtom("cell", v("c1"), k(d0), v("tower")),
		}), true))

	// Q5: gold-plan callees of p0 on d0.
	out = append(out, mk("Q5", "gold-plan callees of p0 on d0",
		cq.NewCQ([]cq.Term{v("callee")}, []cq.Atom{
			cq.NewAtom("calls", k(p0), v("callee"), k(d0), v("dur")),
			cq.NewAtom("customer", v("callee"), v("name"), k("gold")),
		}), true))

	// Q6: VIPs called by p0 on d0 (validation against a cached view-like
	// small relation).
	out = append(out, mk("Q6", "VIP callees of p0 on d0",
		cq.NewCQ([]cq.Term{v("callee")}, []cq.Atom{
			cq.NewAtom("calls", k(p0), v("callee"), k(d0), v("dur")),
			cq.NewAtom("vip", v("callee")),
		}), true))

	// Q7: 3-hop reachability from p0 on d0.
	out = append(out, mk("Q7", "3-hop callees of p0 on d0",
		cq.NewCQ([]cq.Term{v("c3")}, []cq.Atom{
			cq.NewAtom("calls", k(p0), v("c1"), k(d0), v("d1")),
			cq.NewAtom("calls", v("c1"), v("c2"), k(d0), v("d2")),
			cq.NewAtom("calls", v("c2"), v("c3"), k(d0), v("d3")),
		}), true))

	// Q8: callees of p0 on d0 that p0 did NOT call on another fixed day
	// (FO with negation).
	q8body := &fo.And{
		L: &fo.Exists{Vars: []string{"du1"}, E: fo.NewAtom("calls", k(p0), v("callee"), k(d0), v("du1"))},
		R: &fo.Not{E: &fo.Exists{Vars: []string{"du2"}, E: fo.NewAtom("calls", k(p0), v("callee"), k("d01"), v("du2"))}},
	}
	out = append(out, CDRQuery{
		Name: "Q8", Descr: "callees on d0 not called on d01",
		FO:      &fo.Query{Name: "Q8", Head: []string{"callee"}, Body: q8body},
		IsBound: true,
	})

	// Q9: co-located callees — callees of p0 on d0 seen at the same tower
	// as p0 that day.
	out = append(out, mk("Q9", "callees co-located with p0 on d0",
		cq.NewCQ([]cq.Term{v("callee")}, []cq.Atom{
			cq.NewAtom("calls", k(p0), v("callee"), k(d0), v("dur")),
			cq.NewAtom("cell", k(p0), k(d0), v("tw")),
			cq.NewAtom("cell", v("callee"), k(d0), v("tw")),
		}), true))

	// Q10: all pairs of customers who called each other on d0 — genuinely
	// unbounded: no constraint keys calls by day alone.
	out = append(out, mk("Q10", "all call pairs on d0 (unbounded)",
		cq.NewCQ([]cq.Term{v("a"), v("b")}, []cq.Atom{
			cq.NewAtom("calls", v("a"), v("b"), k(d0), v("dur")),
		}), false))

	return out
}
