package workload

import (
	"testing"
)

// TestChurnKeepsAccessSchemaSatisfied drives a few thousand churn ops into
// a small Movies instance and checks the invariants the live-update
// experiments rely on: D keeps satisfying A0, deletes hit existing rows,
// and the stream is not append-only.
func TestChurnKeepsAccessSchemaSatisfied(t *testing.T) {
	m := NewMovies(20)
	db := m.Generate(MoviesParams{Persons: 300, Movies: 300, LikesPerPerson: 4, NASAShare: 10, Seed: 2})
	ch := NewChurn(m, db, ChurnParams{Seed: 7})
	insTotal, delTotal := 0, 0
	for b := 0; b < 40; b++ {
		ins, del := ch.Batch(100)
		applied, err := db.ApplyDelta(ins, del)
		if err != nil {
			t.Fatal(err)
		}
		if len(applied.Deleted) != len(del) {
			t.Fatalf("batch %d: %d of %d deletes hit nothing (generator out of sync)", b, len(del)-len(applied.Deleted), len(del))
		}
		insTotal += len(applied.Inserted)
		delTotal += len(applied.Deleted)
	}
	if delTotal == 0 || insTotal == 0 {
		t.Fatalf("stream must mix inserts and deletes: %d ins, %d del", insTotal, delTotal)
	}
	ok, err := db.SatisfiesAll(m.Access)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatalf("churned instance violates A0: %v", db.Violations(m.Access))
	}
}
