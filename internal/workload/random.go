package workload

import (
	"fmt"
	"math/rand"

	"repro/internal/access"
	"repro/internal/cq"
	"repro/internal/instance"
	"repro/internal/schema"
)

// RandomCQParams controls the random conjunctive-query generator used by
// the coverage experiment (EXP-PCT): the paper's intro reports that under
// a few hundred access constraints ~77% of randomly generated SPC queries
// are boundedly evaluable; we regenerate the shape of that curve.
type RandomCQParams struct {
	Atoms        int     // number of relation atoms
	ConstProb    float64 // probability an argument position is a constant
	JoinProb     float64 // probability an argument reuses an earlier variable
	HeadVars     int     // number of head variables (capped by available vars)
	ParamAnchors int     // number of "parameter" constants seeding selective positions
	Seed         int64
}

// RandomCQ draws a random conjunctive query over the schema. Constants are
// drawn from a small pool ("c0".."c9") so selections are meaningful.
func RandomCQ(s *schema.Schema, p RandomCQParams) *cq.CQ {
	rng := rand.New(rand.NewSource(p.Seed))
	rels := s.Relations
	var atoms []cq.Atom
	var vars []string
	freshVar := func() cq.Term {
		v := fmt.Sprintf("v%d", len(vars))
		vars = append(vars, v)
		return cq.Var(v)
	}
	for i := 0; i < p.Atoms; i++ {
		rel := rels[rng.Intn(len(rels))]
		args := make([]cq.Term, rel.Arity())
		for j := range args {
			switch {
			case rng.Float64() < p.ConstProb:
				args[j] = cq.Cst(fmt.Sprintf("c%d", rng.Intn(10)))
			case len(vars) > 0 && rng.Float64() < p.JoinProb:
				args[j] = cq.Var(vars[rng.Intn(len(vars))])
			default:
				args[j] = freshVar()
			}
		}
		atoms = append(atoms, cq.Atom{Rel: rel.Name, Args: args})
	}
	nh := p.HeadVars
	if nh > len(vars) {
		nh = len(vars)
	}
	head := make([]cq.Term, 0, nh)
	perm := rng.Perm(len(vars))
	for i := 0; i < nh; i++ {
		head = append(head, cq.Var(vars[perm[i]]))
	}
	return cq.NewCQ(head, atoms)
}

// RandomInstance generates an instance of the schema satisfying the access
// schema, by inserting random tuples and rejecting those that would tip a
// cardinality bound. Values are drawn from a pool of the given size.
func RandomInstance(s *schema.Schema, a *access.Schema, tuplesPerRelation, pool int, seed int64) *instance.Database {
	rng := rand.New(rand.NewSource(seed))
	db := instance.NewDatabase(s)
	val := func() string { return fmt.Sprintf("%d", rng.Intn(pool)) }
	for _, rel := range s.Relations {
		cons := a.OnRelation(rel.Name)
		// Track distinct Y-projections per X-value per constraint.
		counters := make([]map[string]map[string]struct{}, len(cons))
		for i := range counters {
			counters[i] = map[string]map[string]struct{}{}
		}
		for t := 0; t < tuplesPerRelation; t++ {
			row := make(instance.Tuple, rel.Arity())
			for j := range row {
				row[j] = val()
			}
			ok := true
			var keys []struct {
				i        int
				xk, yk   string
				inserted bool
			}
			for i, c := range cons {
				xpos, err1 := rel.Positions(c.X)
				ypos, err2 := rel.Positions(c.Y)
				if err1 != nil || err2 != nil {
					continue
				}
				xk := row.Project(xpos).Key()
				yk := row.Project(ypos).Key()
				g := counters[i][xk]
				if g == nil {
					g = map[string]struct{}{}
					counters[i][xk] = g
				}
				if _, dup := g[yk]; !dup && len(g) >= c.N {
					ok = false
					break
				}
				keys = append(keys, struct {
					i        int
					xk, yk   string
					inserted bool
				}{i, xk, yk, false})
			}
			if !ok {
				continue
			}
			for _, k := range keys {
				counters[k.i][k.xk][k.yk] = struct{}{}
			}
			db.Tables[rel.Name].Tuples = append(db.Tables[rel.Name].Tuples, row)
		}
	}
	return db
}
