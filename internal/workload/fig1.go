package workload

import (
	"repro/internal/plan"
)

// Fig1Plan constructs the 11-node query plan ξ0 of Figure 1 for Q0 using
// view V1 under A0 (Examples 2.1-2.3):
//
//	S1 = {"Universal"}             (constant, attribute studio)
//	S2 = {"2014"}                  (constant, attribute release)
//	S3 = S1 × S2
//	S4 = fetch((studio,release) ∈ S3, movie, mid)
//	S5 = V1                        (cached view, column mid2)
//	S6 = S4 × S5
//	S7 = σ[mid=mid2](S6)           (filter fetched movies by V1)
//	S8 = π[mid](S7)
//	S9 = fetch(mid ∈ S8, rating, rank)
//	S10 = σ[rank="5"](S9)
//	S11 = π[mid](S10)
//
// The plan conforms to A0 and fetches at most 2·N0 tuples from D: |S4| ≤ N0
// by ϕ1 and |S9| ≤ N0 by S8 ⊆ S4 and ϕ2 (Example 2.2).
func (m *Movies) Fig1Plan() plan.Node {
	s1 := &plan.Const{Attr: "studio", Val: "Universal"}
	s2 := &plan.Const{Attr: "release", Val: "2014"}
	s3 := &plan.Product{L: s1, R: s2}
	s4 := &plan.Fetch{Child: s3, C: m.Phi1}
	s5 := &plan.View{Name: "V1", Cols: []string{"mid2"}}
	s6 := &plan.Product{L: s4, R: s5}
	s7 := &plan.Select{Child: s6, Cond: []plan.CondItem{{L: "mid", R: "mid2"}}}
	s8 := &plan.Project{Child: s7, Cols: []string{"mid"}}
	s9 := &plan.Fetch{Child: s8, C: m.Phi2}
	s10 := &plan.Select{Child: s9, Cond: []plan.CondItem{{L: "rank", RConst: true, R: "5"}}}
	return &plan.Project{Child: s10, Cols: []string{"mid"}}
}
