package workload

import (
	"fmt"
	"math/rand"

	"repro/internal/access"
	"repro/internal/cq"
	"repro/internal/fo"
	"repro/internal/instance"
	"repro/internal/schema"
)

// Social models the introduction's Facebook Graph-Search example: find
// restaurants in a city which person p0 has not been to, but in which
// friends of p0 dined on a given date. The production constraints are the
// 5000-friend cap and the one-dinner-per-person-per-day rule; the fixture
// scales the caps down so experiments run on a laptop while exercising the
// identical code paths.
type Social struct {
	Schema *schema.Schema
	Access *access.Schema

	FriendCap int // friends per person (Facebook: 5000)

	FriendFan, DineKey, DineHist, RestCity *access.Constraint
}

// NewSocial builds the social fixture.
func NewSocial(friendCap, restPerCity int) *Social {
	s := schema.New(
		schema.NewRelation("friend", "pid", "fid"),
		schema.NewRelation("dine", "pid", "date", "rid"),
		schema.NewRelation("restaurant", "rid", "city"),
	)
	friendFan := access.NewConstraint("friend", []string{"pid"}, []string{"fid"}, friendCap)
	dineKey := access.NewConstraint("dine", []string{"pid", "date"}, []string{"rid"}, 1)
	// One dinner per day over the (bounded) query window: at most 60
	// dinners per person in total — the fourth constraint the
	// introduction's example relies on.
	dineHist := access.NewConstraint("dine", []string{"pid"}, []string{"date", "rid"}, 60)
	restCity := access.NewConstraint("restaurant", []string{"rid"}, []string{"city"}, 1)
	a := access.NewSchema(friendFan, dineKey, dineHist, restCity)
	return &Social{
		Schema: s, Access: a, FriendCap: friendCap,
		FriendFan: friendFan, DineKey: dineKey, DineHist: dineHist, RestCity: restCity,
	}
}

// SocialParams sizes a generated social instance.
type SocialParams struct {
	Persons     int
	Restaurants int
	Dates       int
	Seed        int64
}

// Generate builds an instance satisfying the constraints.
func (so *Social) Generate(p SocialParams) *instance.Database {
	rng := rand.New(rand.NewSource(p.Seed))
	db := instance.NewDatabase(so.Schema)
	if p.Dates < 1 {
		p.Dates = 30
	}
	pid := func(i int) string { return fmt.Sprintf("u%06d", i) }
	rid := func(i int) string { return fmt.Sprintf("r%05d", i) }
	date := func(i int) string { return fmt.Sprintf("2015-05-%02d", 1+i%28) }
	for i := 0; i < p.Restaurants; i++ {
		db.MustInsert("restaurant", rid(i), fmt.Sprintf("city%d", i%50))
	}
	for i := 0; i < p.Persons; i++ {
		nf := rng.Intn(so.FriendCap)
		seen := map[string]bool{}
		for f := 0; f < nf; f++ {
			fid := pid(rng.Intn(p.Persons))
			if seen[fid] {
				continue
			}
			seen[fid] = true
			db.MustInsert("friend", pid(i), fid)
		}
		// One dinner on up to 3 distinct dates (respects the key).
		dates := map[string]bool{}
		for d := 0; d < 1+rng.Intn(3); d++ {
			dt := date(rng.Intn(p.Dates))
			if dates[dt] || p.Restaurants == 0 {
				continue
			}
			dates[dt] = true
			db.MustInsert("dine", pid(i), dt, rid(rng.Intn(p.Restaurants)))
		}
	}
	return db
}

// GraphSearchQuery returns the introduction's query as FO (with the "not
// been to" negation), parameterized by person p0, date d0 and city c0:
//
//	Q(rid) = ∃f ( friend(p0,f) ∧ dine(f,d0,rid) ) ∧ restaurant(rid,c0)
//	         ∧ ¬ ∃d2 dine(p0,d2,rid)
func (so *Social) GraphSearchQuery(p0, d0, c0 string) *fo.Query {
	v := cq.Var
	k := cq.Cst
	positive := &fo.And{
		L: &fo.Exists{Vars: []string{"f"}, E: &fo.And{
			L: fo.NewAtom("friend", k(p0), v("f")),
			R: fo.NewAtom("dine", v("f"), k(d0), v("rid")),
		}},
		R: fo.NewAtom("restaurant", v("rid"), k(c0)),
	}
	neg := &fo.Exists{Vars: []string{"d2"}, E: fo.NewAtom("dine", k(p0), v("d2"), v("rid"))}
	return &fo.Query{
		Name: "GraphSearch",
		Head: []string{"rid"},
		Body: &fo.And{L: positive, R: &fo.Not{E: neg}},
	}
}
