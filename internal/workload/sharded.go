package workload

import (
	"fmt"
	"math/rand"

	"repro/internal/access"
	"repro/internal/cq"
	"repro/internal/instance"
	"repro/internal/schema"
)

// Sharded is the horizontal-partitioning fixture: an account/transaction
// domain whose access schema makes every relation partition cleanly by
// uid, whose view joins are co-partitioned (shard-local maintenance), and
// whose serving traffic is per-uid point queries (single-shard routed
// fetches). It drives the scatter-gather scaling experiment (benchrun
// -exp shard) and the sharded differential tests.
//
//	acct(uid, region)       with acct(uid -> region, 1)        — key
//	txn(uid, item, amt)     with txn(uid -> (item, amt), NTxn) — fan-out cap
//
// View VSpend(u, i) = acct(u, "emea") ⋈ txn(u, i, a): both atoms bind the
// partition key u, so each shard maintains its slice of the view
// independently. The point query Q_u(i, a) = txn(u, i, a) has an M-bounded
// rewriting through the txn constraint fetching at most NTxn tuples — a
// bounded plan that stays a single-shard point read at any shard count.
type Sharded struct {
	Schema *schema.Schema
	Access *access.Schema
	M      int
	NTxn   int

	Acct *access.Constraint // acct(uid -> region, 1)
	Txn  *access.Constraint // txn(uid -> (item, amt), NTxn)
}

// NewSharded builds the fixture with the given per-uid transaction cap.
func NewSharded(nTxn int) *Sharded {
	s := schema.New(
		schema.NewRelation("acct", "uid", "region"),
		schema.NewRelation("txn", "uid", "item", "amt"),
	)
	acct := access.NewConstraint("acct", []string{"uid"}, []string{"region"}, 1)
	txn := access.NewConstraint("txn", []string{"uid"}, []string{"item", "amt"}, nTxn)
	return &Sharded{
		Schema: s,
		Access: access.NewSchema(acct, txn),
		M:      4,
		NTxn:   nTxn,
		Acct:   acct,
		Txn:    txn,
	}
}

// Views returns the co-partitioned views: the two-way join VSpend and the
// heavier three-way self-join VPairs. Every atom binds the partition key
// u, so both views are maintained shard-locally; VPairs makes each txn
// delta enumerate up to NTxn residual valuations — the serious per-op
// join maintenance the scaling experiment stresses.
func (w *Sharded) Views() map[string]*cq.UCQ {
	v := cq.NewCQ([]cq.Term{cq.Var("u"), cq.Var("i")}, []cq.Atom{
		cq.NewAtom("acct", cq.Var("u"), cq.Cst("emea")),
		cq.NewAtom("txn", cq.Var("u"), cq.Var("i"), cq.Var("a")),
	})
	v.Name = "VSpend"
	v2 := cq.NewCQ([]cq.Term{cq.Var("u")}, []cq.Atom{
		cq.NewAtom("acct", cq.Var("u"), cq.Cst("emea")),
		cq.NewAtom("txn", cq.Var("u"), cq.Var("i"), cq.Var("a")),
		cq.NewAtom("txn", cq.Var("u"), cq.Var("i2"), cq.Var("a2")),
	})
	v2.Name = "VPairs"
	return map[string]*cq.UCQ{"VSpend": cq.NewUCQ(v), "VPairs": cq.NewUCQ(v2)}
}

// Query returns the per-uid point query Q_u(a, i) = txn(u, i, a) — the
// serving traffic. Its bounded plan fetches at most NTxn tuples through
// the txn constraint, routed to uid's shard. (The head lists amt before
// item, matching the fetch output's sorted attribute order, which is the
// projection order the plan enumeration generates.)
func (w *Sharded) Query(uid string) *cq.CQ {
	q := cq.NewCQ([]cq.Term{cq.Var("a"), cq.Var("i")}, []cq.Atom{
		cq.NewAtom("txn", cq.Cst(uid), cq.Var("i"), cq.Var("a")),
	})
	q.Name = "Q_" + uid
	return q
}

// UID renders the i-th generated account id.
func (w *Sharded) UID(i int) string { return fmt.Sprintf("u%d", i) }

// Generate builds an instance: `users` accounts (every other one in
// "emea", the rest spread over other regions) with txnsPerUser
// transactions each (capped at NTxn so D |= A).
func (w *Sharded) Generate(users, txnsPerUser int, seed int64) *instance.Database {
	rng := rand.New(rand.NewSource(seed))
	if txnsPerUser > w.NTxn {
		txnsPerUser = w.NTxn
	}
	db := instance.NewDatabase(w.Schema)
	for i := 0; i < users; i++ {
		uid := w.UID(i)
		region := "emea"
		if i%2 == 1 {
			region = fmt.Sprintf("r%d", rng.Intn(6))
		}
		db.MustInsert("acct", uid, region)
		for j := 0; j < txnsPerUser; j++ {
			db.MustInsert("txn", uid, fmt.Sprintf("it%d", rng.Intn(200)), fmt.Sprintf("%d", 1+rng.Intn(99)))
		}
	}
	return db
}

// ShardedChurn generates batched deltas against a Sharded instance:
// transaction inserts/deletes on existing accounts (respecting the NTxn
// cap) plus occasional new accounts and region flips, so both relations —
// and therefore the co-partitioned view — churn.
type ShardedChurn struct {
	w   *Sharded
	rng *rand.Rand

	txns    map[string][]instance.Tuple // live txn rows per uid
	uids    []string
	regions map[string]string
	nextUID int
}

// NewChurn seeds the generator from db's current contents. The database
// must be an instance of w.Schema (snapshot it before a sharded handle
// consumes it).
func (w *Sharded) NewChurn(db *instance.Database, seed int64) *ShardedChurn {
	c := &ShardedChurn{
		w:       w,
		rng:     rand.New(rand.NewSource(seed)),
		txns:    make(map[string][]instance.Tuple),
		regions: make(map[string]string),
	}
	for _, tu := range db.Table("acct").Tuples {
		c.uids = append(c.uids, tu[0])
		c.regions[tu[0]] = tu[1]
	}
	for _, tu := range db.Table("txn").Tuples {
		c.txns[tu[0]] = append(c.txns[tu[0]], tu.Clone())
	}
	c.nextUID = len(c.uids)
	return c
}

// Batch draws the next n operations, ready for ApplyDelta (deletes target
// only rows live before the batch, so delete-before-insert order holds).
func (c *ShardedChurn) Batch(n int) (inserts, deletes []instance.Op) {
	// Region flips delete-then-insert an acct row; restricting them to
	// pre-batch uids, at most once each, keeps the key constraint (one
	// region per uid) intact under the batch's deletes-first semantics.
	base := len(c.uids)
	flipped := make(map[string]bool)
	// Deletes must target rows live BEFORE the batch: the batch's deletes
	// apply first, so deleting a same-batch insert would no-op and drift
	// the generator's fan-out tracking off the database (eventually
	// violating the NTxn bound). txnLim lazily captures each uid's
	// pre-batch pool length; deletes only draw below it.
	txnLim := make(map[string]int)
	limOf := func(uid string) int {
		lim, ok := txnLim[uid]
		if !ok {
			lim = len(c.txns[uid])
			txnLim[uid] = lim
		}
		return lim
	}
	for spent := 0; spent < n; spent++ {
		uid := c.uids[c.rng.Intn(len(c.uids))]
		switch r := c.rng.Float64(); {
		case r < 0.45:
			// Insert a txn if the uid has headroom, else retire one. The
			// pre-batch pool length is captured before the append, so later
			// deletes in this batch can never target the new row.
			limOf(uid)
			if len(c.txns[uid]) < c.w.NTxn {
				row := instance.Tuple{uid, fmt.Sprintf("it%d", c.rng.Intn(200)), fmt.Sprintf("%d", 1+c.rng.Intn(99))}
				c.txns[uid] = append(c.txns[uid], row)
				inserts = append(inserts, instance.Op{Rel: "txn", Row: row.Clone()})
				continue
			}
			fallthrough
		case r < 0.80:
			// Delete a pre-batch txn of the uid (or of anyone, as fallback).
			if limOf(uid) == 0 {
				for _, u := range c.uids {
					if limOf(u) > 0 {
						uid = u
						break
					}
				}
			}
			lim := limOf(uid)
			if lim == 0 {
				spent--
				continue
			}
			pool := c.txns[uid]
			i := c.rng.Intn(lim)
			row := pool[i]
			// Two-step swap keeps the pre-batch prefix invariant: the last
			// pre-batch row fills the hole, the last row fills its slot.
			pool[i] = pool[lim-1]
			pool[lim-1] = pool[len(pool)-1]
			c.txns[uid] = pool[:len(pool)-1]
			txnLim[uid] = lim - 1
			deletes = append(deletes, instance.Op{Rel: "txn", Row: row})
		case r < 0.92:
			// A fresh account (alternating regions keeps the view selective).
			nu := fmt.Sprintf("cu%d", c.nextUID)
			region := "emea"
			if c.nextUID%2 == 1 {
				region = fmt.Sprintf("r%d", c.rng.Intn(6))
			}
			c.nextUID++
			c.uids = append(c.uids, nu)
			c.regions[nu] = region
			inserts = append(inserts, instance.Op{Rel: "acct", Row: instance.Tuple{nu, region}})
		default:
			// Region flip: replace the account row (key constraint N=1 —
			// the delete lands before the insert inside the batch).
			uid = c.uids[c.rng.Intn(base)]
			if flipped[uid] {
				// Already flipped this batch: spend the op on a fresh
				// account instead (keeps Batch total-n and loop-free).
				nu := fmt.Sprintf("cu%d", c.nextUID)
				c.nextUID++
				c.uids = append(c.uids, nu)
				c.regions[nu] = "emea"
				inserts = append(inserts, instance.Op{Rel: "acct", Row: instance.Tuple{nu, "emea"}})
				continue
			}
			flipped[uid] = true
			old := c.regions[uid]
			next := "emea"
			if old == "emea" {
				next = fmt.Sprintf("r%d", c.rng.Intn(6))
			}
			c.regions[uid] = next
			deletes = append(deletes, instance.Op{Rel: "acct", Row: instance.Tuple{uid, old}})
			inserts = append(inserts, instance.Op{Rel: "acct", Row: instance.Tuple{uid, next}})
		}
	}
	return inserts, deletes
}
