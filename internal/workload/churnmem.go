package workload

import (
	"fmt"
	"math/rand"

	"repro/internal/instance"
)

// SwapChurnParams controls the bounded-domain churn generator behind the
// memory experiments. Unlike Churn — which mints fresh pids/mids forever,
// growing the value dictionary without bound — SwapChurn draws every row
// from a CLOSED universe fixed at construction: each delete retracts a
// live row and each insert re-adds a previously retracted one, so |D| and
// the dictionary plateau while epochs keep churning. That makes it the
// right driver for asserting bounded steady-state memory: any heap growth
// past warmup is retained epoch state, not workload growth.
type SwapChurnParams struct {
	// SparePersons / SpareLikes size the initially-retracted half of the
	// universe (rows mintable by inserts before any delete). Defaults:
	// half the corresponding live pool, plus one.
	SparePersons int
	SpareLikes   int
	DeleteShare  float64 // fraction of ops that delete (default 0.5 — steady state)
	Seed         int64
}

// swapPool is one relation's row universe: live rows (currently in D) and
// dead rows (retracted, available for re-insertion).
type swapPool struct {
	rel  string
	live [][]string
	dead [][]string
}

// SwapChurn produces batches of instance.Op mutations over the movie
// schema's person and like relations (the relations V1's maintenance
// reads), swapping rows between live and dead pools. Movies and ratings
// are never touched, so ϕ1/ϕ2 stay satisfied by construction.
type SwapChurn struct {
	rng   *rand.Rand
	p     SwapChurnParams
	pools [2]*swapPool
}

// NewSwapChurn seeds the universe from db's current person and like rows
// plus freshly minted spares. Call it BEFORE handing db to System.Open —
// the sharded engine consumes the database's row storage.
func NewSwapChurn(m *Movies, db *instance.Database, p SwapChurnParams) *SwapChurn {
	c := &SwapChurn{rng: rand.New(rand.NewSource(p.Seed)), p: p}
	persons := &swapPool{rel: "person"}
	for _, tu := range db.Table("person").Tuples {
		persons.live = append(persons.live, tu.Clone())
	}
	likes := &swapPool{rel: "like"}
	for _, tu := range db.Table("like").Tuples {
		likes.live = append(likes.live, tu.Clone())
	}
	if c.p.DeleteShare <= 0 {
		c.p.DeleteShare = 0.5
	}
	if c.p.SparePersons <= 0 {
		c.p.SparePersons = len(persons.live)/2 + 1
	}
	if c.p.SpareLikes <= 0 {
		c.p.SpareLikes = len(likes.live)/2 + 1
	}
	// Spare persons; every 10th is at NASA so their insert/delete cycles
	// drive V1 deltas, not just base-table churn.
	for i := 0; i < c.p.SparePersons; i++ {
		aff := fmt.Sprintf("org%d", c.rng.Intn(500))
		if i%10 == 0 {
			aff = "NASA"
		}
		persons.dead = append(persons.dead, []string{
			fmt.Sprintf("sp%d", i), fmt.Sprintf("Spare Person %d", i), aff,
		})
	}
	// Spare likes reference pids from the person universe (live or spare)
	// and pre-existing movies, so re-inserting one can complete a V1 join.
	nMovies := db.Table("movie").Len()
	pidOf := func() string {
		u := len(persons.live) + len(persons.dead)
		i := c.rng.Intn(u)
		if i < len(persons.live) {
			return persons.live[i][0]
		}
		return persons.dead[i-len(persons.live)][0]
	}
	for i := 0; i < c.p.SpareLikes && nMovies > 0; i++ {
		likes.dead = append(likes.dead, []string{
			pidOf(), fmt.Sprintf("m%d", c.rng.Intn(nMovies)), "movie",
		})
	}
	// Intern the whole universe now (the database interns lazily, so even
	// live rows may not be in the dictionary yet): the universe is closed,
	// so after this the dictionary NEVER grows under churn — measured heap
	// motion is epoch state, not dictionary growth (and the closed-universe
	// test can assert an exact plateau).
	for _, pl := range [2]*swapPool{persons, likes} {
		for _, rows := range [2][][]string{pl.live, pl.dead} {
			for _, row := range rows {
				for _, s := range row {
					db.Dict.ID(s)
				}
			}
		}
	}
	c.pools = [2]*swapPool{persons, likes}
	return c
}

// Batch draws the next n operations. Deletes only target rows live before
// the batch and inserts only revive rows dead before it (per-pool limits
// captured at batch start), so with ApplyDelta's deletes-first order no
// op within one batch can invert another: every delete retracts a row
// genuinely in D and every insert adds one genuinely absent.
func (c *SwapChurn) Batch(n int) (inserts, deletes []instance.Op) {
	var delLim, insLim [2]int
	for i, pl := range c.pools {
		delLim[i], insLim[i] = len(pl.live), len(pl.dead)
	}
	// take removes rows[i] for i < *lim, preserving the pre-batch prefix:
	// the slot is filled from the prefix's end, which is in turn filled
	// from the slice's end (rows appended THIS batch stay beyond *lim).
	take := func(rows [][]string, lim *int) ([]string, [][]string) {
		i := c.rng.Intn(*lim)
		row := rows[i]
		rows[i] = rows[*lim-1]
		rows[*lim-1] = rows[len(rows)-1]
		rows[len(rows)-1] = nil
		*lim--
		return row, rows[:len(rows)-1]
	}
	for spent := 0; spent < n; spent++ {
		// Weight pool choice by universe size so the busier relation (likes,
		// usually) sees proportionally more churn.
		u0 := len(c.pools[0].live) + len(c.pools[0].dead)
		u1 := len(c.pools[1].live) + len(c.pools[1].dead)
		if u0+u1 == 0 {
			break
		}
		pi := 0
		if c.rng.Intn(u0+u1) >= u0 {
			pi = 1
		}
		pl := c.pools[pi]
		del := c.rng.Float64() < c.p.DeleteShare
		if del && delLim[pi] == 0 {
			del = false
		}
		if !del && insLim[pi] == 0 {
			if delLim[pi] == 0 {
				continue // pool exhausted both ways this batch
			}
			del = true
		}
		if del {
			row, rest := take(pl.live, &delLim[pi])
			pl.live = rest
			pl.dead = append(pl.dead, row)
			deletes = append(deletes, instance.Op{Rel: pl.rel, Row: instance.Tuple(row)})
		} else {
			row, rest := take(pl.dead, &insLim[pi])
			pl.dead = rest
			pl.live = append(pl.live, row)
			inserts = append(inserts, instance.Op{Rel: pl.rel, Row: instance.Tuple(row)})
		}
	}
	return inserts, deletes
}

// UniverseSize returns the fixed total number of rows (live + dead) in
// each churned relation, person then like.
func (c *SwapChurn) UniverseSize() (persons, likes int) {
	return len(c.pools[0].live) + len(c.pools[0].dead),
		len(c.pools[1].live) + len(c.pools[1].dead)
}
