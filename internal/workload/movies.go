// Package workload provides the paper's three motivating domains as
// generators — the movie/Graph-Search schema of Example 1.1, a CDR
// (call-detail-record) telco schema standing in for the paper's industrial
// evaluation, and a Facebook-style social schema from the introduction —
// plus seeded random query/constraint generators for the coverage
// experiment.
package workload

import (
	"fmt"
	"math/rand"

	"repro/internal/access"
	"repro/internal/cq"
	"repro/internal/instance"
	"repro/internal/schema"
)

// Movies bundles the fixture of Example 1.1: schema R0, access schema A0,
// query Q0, and view V1.
type Movies struct {
	Schema *schema.Schema
	Access *access.Schema
	N0     int // the constant in ϕ1 (movies per studio per year)

	Q0 *cq.CQ
	V1 *cq.CQ

	Phi1, Phi2 *access.Constraint
}

// NewMovies builds the Example 1.1 fixture with the given N0 (the paper
// observes N0 ≤ 100 in practice).
func NewMovies(n0 int) *Movies {
	s := schema.New(
		schema.NewRelation("person", "pid", "name", "affiliation"),
		schema.NewRelation("movie", "mid", "mname", "studio", "release"),
		schema.NewRelation("rating", "mid", "rank"),
		schema.NewRelation("like", "pid", "id", "type"),
	)
	phi1 := access.NewConstraint("movie", []string{"studio", "release"}, []string{"mid"}, n0)
	phi2 := access.NewConstraint("rating", []string{"mid"}, []string{"rank"}, 1)
	a := access.NewSchema(phi1, phi2)

	// Q0(mid) = ∃xp,xp2,ym ( person(xp,xp2,"NASA") ∧ movie(mid,ym,"Universal","2014")
	//                        ∧ like(xp,mid,"movie") ∧ rating(mid,"5") )
	q0 := cq.NewCQ([]cq.Term{cq.Var("mid")}, []cq.Atom{
		cq.NewAtom("person", cq.Var("xp"), cq.Var("xp2"), cq.Cst("NASA")),
		cq.NewAtom("movie", cq.Var("mid"), cq.Var("ym"), cq.Cst("Universal"), cq.Cst("2014")),
		cq.NewAtom("like", cq.Var("xp"), cq.Var("mid"), cq.Cst("movie")),
		cq.NewAtom("rating", cq.Var("mid"), cq.Cst("5")),
	})
	q0.Name = "Q0"

	// V1(mid) = ∃xp,xp2,ym2,z1,z2 ( person(xp,xp2,"NASA") ∧ movie(mid,ym2,z1,z2)
	//                               ∧ like(xp,mid,"movie") )
	v1 := cq.NewCQ([]cq.Term{cq.Var("mid")}, []cq.Atom{
		cq.NewAtom("person", cq.Var("xp"), cq.Var("xp2"), cq.Cst("NASA")),
		cq.NewAtom("movie", cq.Var("mid"), cq.Var("ym2"), cq.Var("z1"), cq.Var("z2")),
		cq.NewAtom("like", cq.Var("xp"), cq.Var("mid"), cq.Cst("movie")),
	})
	v1.Name = "V1"

	return &Movies{Schema: s, Access: a, N0: n0, Q0: q0, V1: v1, Phi1: phi1, Phi2: phi2}
}

// Views returns the view definitions map used by unfolding and rewriting.
func (m *Movies) Views() map[string]*cq.UCQ {
	return map[string]*cq.UCQ{"V1": cq.NewUCQ(m.V1)}
}

// MoviesParams sizes a generated movie instance.
type MoviesParams struct {
	Persons        int
	Movies         int
	LikesPerPerson int
	Studios        int
	Years          int
	NASAShare      int // one in NASAShare persons is at NASA
	Seed           int64
}

// Generate builds an instance of R0 satisfying A0: movie mids are assigned
// round-robin over (studio, year) groups capped at N0, and each movie gets
// exactly one rating. A slice of "Universal"/"2014" movies is always
// present so Q0 has answers.
func (m *Movies) Generate(p MoviesParams) *instance.Database {
	rng := rand.New(rand.NewSource(p.Seed))
	db := instance.NewDatabase(m.Schema)

	if p.Studios < 1 {
		p.Studios = 8
	}
	if p.Years < 1 {
		p.Years = 12
	}
	groupCount := make(map[string]int)
	overflow := 0
	pick := func(si, yi int) (string, string, bool) {
		studio, year := studioName(si), yearName(yi)
		key := studio + "|" + year
		if groupCount[key] < m.N0 {
			groupCount[key]++
			return studio, year, true
		}
		return "", "", false
	}
	for i := 0; i < p.Movies; i++ {
		mid := fmt.Sprintf("m%d", i)
		var studio, year string
		ok := false
		// Keep the (studio, release) -> mid fan-out within N0. Every 37th
		// movie tries bucket 0 = ("Universal","2014") so Q0 has answers.
		if i%37 == 0 {
			studio, year, ok = pick(0, 0)
		}
		for tries := 0; !ok && tries < 20; tries++ {
			studio, year, ok = pick(rng.Intn(p.Studios), rng.Intn(p.Years))
		}
		for si := 0; !ok && si < p.Studios; si++ {
			for yi := 0; !ok && yi < p.Years; yi++ {
				studio, year, ok = pick(si, yi)
			}
		}
		if !ok {
			// All buckets full: open a fresh overflow studio (new group).
			overflow++
			studio, year, _ = pick(p.Studios+overflow, 0)
		}
		db.MustInsert("movie", mid, fmt.Sprintf("Movie %d", i), studio, year)
		rank := fmt.Sprintf("%d", 1+rng.Intn(5))
		if i%3 == 0 {
			rank = "5"
		}
		db.MustInsert("rating", mid, rank)
	}
	for i := 0; i < p.Persons; i++ {
		pid := fmt.Sprintf("p%d", i)
		aff := fmt.Sprintf("org%d", rng.Intn(500))
		if p.NASAShare > 0 && i%p.NASAShare == 0 {
			aff = "NASA"
		}
		db.MustInsert("person", pid, fmt.Sprintf("Person %d", i), aff)
		for l := 0; l < p.LikesPerPerson; l++ {
			if p.Movies == 0 {
				break
			}
			mid := fmt.Sprintf("m%d", rng.Intn(p.Movies))
			db.MustInsert("like", pid, mid, "movie")
		}
	}
	return db
}

func studioName(i int) string {
	if i == 0 {
		return "Universal"
	}
	return fmt.Sprintf("Studio%d", i)
}

func yearName(i int) string {
	if i == 0 {
		return "2014"
	}
	return fmt.Sprintf("%d", 2000+i)
}
