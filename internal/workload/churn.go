package workload

import (
	"fmt"
	"math/rand"

	"repro/internal/instance"
)

// ChurnParams controls the movie-domain churn generator that drives the
// live-update experiments: a seeded stream of batched inserts and deletes
// against an instance of the Movies schema that keeps A0 satisfied while
// D grows.
type ChurnParams struct {
	DeleteShare float64 // fraction of each batch that deletes live rows (default 0.4)
	Seed        int64
}

// Churn produces batches of instance.Op mutations. Inserts add persons,
// likes, and movies (each movie with its one rating, in fresh
// (studio, release) groups so ϕ1's fan-out bound never tips); deletes
// retract random live persons and likes — the relations Q0's plan reads
// through the views, so churn exercises incremental view maintenance, not
// just appends.
type Churn struct {
	m   *Movies
	rng *rand.Rand
	p   ChurnParams

	persons    [][]string // live person rows
	likes      [][]string // live like rows
	baseMovies int        // movies pre-existing in db (ids "m<i>")
	newMovies  int        // movies inserted by the churn (ids "cm<i>")
	nextPID    int        // person ids ever created (for fresh pids)
	grp        int        // churn (studio, release) groups opened
	grpUsed    int        // movies placed in the current group
}

// NewChurn seeds the generator's live-row pools from db's current
// contents. The database must be an instance of m.Schema.
func NewChurn(m *Movies, db *instance.Database, p ChurnParams) *Churn {
	if p.DeleteShare <= 0 {
		p.DeleteShare = 0.4
	}
	c := &Churn{m: m, rng: rand.New(rand.NewSource(p.Seed)), p: p}
	for _, tu := range db.Table("person").Tuples {
		c.persons = append(c.persons, tu.Clone())
	}
	for _, tu := range db.Table("like").Tuples {
		c.likes = append(c.likes, tu.Clone())
	}
	c.baseMovies = db.Table("movie").Len()
	c.nextPID = len(c.persons)
	return c
}

// randMID draws a movie id that exists: a pre-existing "m<i>" or a
// churn-inserted "cm<i>".
func (c *Churn) randMID() string {
	i := c.rng.Intn(c.baseMovies + c.newMovies)
	if i < c.baseMovies {
		return fmt.Sprintf("m%d", i)
	}
	return fmt.Sprintf("cm%d", i-c.baseMovies)
}

// Batch draws the next batch of n operations (a movie insert spends two:
// the movie and its rating). The returned ops are ready for
// Database.ApplyDelta / Live.ApplyDelta, which applies deletes first —
// so the batch's deletes only target rows that existed before the batch.
func (c *Churn) Batch(n int) (inserts, deletes []instance.Op) {
	likeLim, personLim := len(c.likes), len(c.persons)
	for spent := 0; spent < n; {
		if c.rng.Float64() < c.p.DeleteShare && likeLim+personLim > 0 {
			var op instance.Op
			op, likeLim, personLim = c.deleteOne(likeLim, personLim)
			deletes = append(deletes, op)
			spent++
			continue
		}
		ins := c.insertSome()
		inserts = append(inserts, ins...)
		spent += len(ins)
	}
	return inserts, deletes
}

// deleteOne retracts a pool row with index below the pre-batch limit,
// keeping the pre-batch prefix invariant intact across the swap-removes.
func (c *Churn) deleteOne(likeLim, personLim int) (instance.Op, int, int) {
	remove := func(pool [][]string, lim int) ([]string, [][]string, int) {
		i := c.rng.Intn(lim)
		row := pool[i]
		pool[i] = pool[lim-1]
		pool[lim-1] = pool[len(pool)-1]
		pool[len(pool)-1] = nil
		return row, pool[:len(pool)-1], lim - 1
	}
	// Prefer likes (the busiest relation), fall back to persons.
	if likeLim > 0 && (c.rng.Intn(4) > 0 || personLim == 0) {
		row, pool, lim := remove(c.likes, likeLim)
		c.likes = pool
		return instance.Op{Rel: "like", Row: instance.Tuple(row)}, lim, personLim
	}
	row, pool, lim := remove(c.persons, personLim)
	c.persons = pool
	return instance.Op{Rel: "person", Row: instance.Tuple(row)}, likeLim, lim
}

func (c *Churn) insertSome() []instance.Op {
	switch r := c.rng.Float64(); {
	case r < 0.55 && c.baseMovies+c.newMovies > 0 && len(c.persons) > 0:
		// A like from a live person to a random movie.
		p := c.persons[c.rng.Intn(len(c.persons))]
		row := []string{p[0], c.randMID(), "movie"}
		c.likes = append(c.likes, row)
		return []instance.Op{{Rel: "like", Row: instance.Tuple(row)}}
	case r < 0.85 || c.baseMovies+c.newMovies == 0:
		// A fresh person; every 10th joins NASA so view deltas fire.
		aff := fmt.Sprintf("org%d", c.rng.Intn(500))
		if c.nextPID%10 == 0 {
			aff = "NASA"
		}
		row := []string{fmt.Sprintf("cp%d", c.nextPID), fmt.Sprintf("Churn Person %d", c.nextPID), aff}
		c.nextPID++
		c.persons = append(c.persons, row)
		return []instance.Op{{Rel: "person", Row: instance.Tuple(row)}}
	default:
		// A fresh movie (+ its single rating) in a churn-owned
		// (studio, release) group, capped at N0 so D ⊨ ϕ1 stays true.
		if c.grpUsed >= c.m.N0 {
			c.grp++
			c.grpUsed = 0
		}
		c.grpUsed++
		mid := fmt.Sprintf("cm%d", c.newMovies)
		c.newMovies++
		movie := []string{mid, "Churn Movie", fmt.Sprintf("ChurnStudio%d", c.grp), "2016"}
		rank := fmt.Sprintf("%d", 1+c.rng.Intn(5))
		return []instance.Op{
			{Rel: "movie", Row: instance.Tuple(movie)},
			{Rel: "rating", Row: instance.Tuple([]string{mid, rank})},
		}
	}
}
