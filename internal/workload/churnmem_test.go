package workload

import (
	"testing"
)

// TestSwapChurnClosedUniverse drives many swap-churn batches into a
// Movies instance and checks the properties the memory experiments rely
// on: every delete retracts a row actually in D and every insert adds an
// absent one (no intra-batch inversions), the value dictionary plateaus
// (the universe is closed — no fresh strings, ever), |D| stays within
// the fixed universe bounds, and A0 keeps holding.
func TestSwapChurnClosedUniverse(t *testing.T) {
	m := NewMovies(20)
	db := m.Generate(MoviesParams{Persons: 300, Movies: 300, LikesPerPerson: 4, NASAShare: 10, Seed: 3})
	ch := NewSwapChurn(m, db, SwapChurnParams{Seed: 11})
	persons, likes := ch.UniverseSize()
	maxSize := db.Size() - db.Table("person").Len() - db.Table("like").Len() + persons + likes

	// NewSwapChurn interns the whole universe up front, so the dictionary
	// must not grow by even one string from here on.
	dictLen := db.Dict.Len()

	insTotal, delTotal := 0, 0
	for b := 0; b < 60; b++ {
		ins, del := ch.Batch(200)
		applied, err := db.ApplyDelta(ins, del)
		if err != nil {
			t.Fatal(err)
		}
		if len(applied.Deleted) != len(del) {
			t.Fatalf("batch %d: %d of %d deletes hit nothing (generator out of sync)", b, len(del)-len(applied.Deleted), len(del))
		}
		if len(applied.Inserted) != len(ins) {
			t.Fatalf("batch %d: %d of %d inserts rejected", b, len(ins)-len(applied.Inserted), len(ins))
		}
		insTotal += len(ins)
		delTotal += len(del)
		if db.Size() > maxSize {
			t.Fatalf("batch %d: |D| = %d exceeds the closed universe bound %d", b, db.Size(), maxSize)
		}
	}
	if got := db.Dict.Len(); got != dictLen {
		t.Fatalf("dictionary grew from %d to %d — the universe is not closed", dictLen, got)
	}
	if delTotal == 0 || insTotal == 0 {
		t.Fatalf("stream must mix inserts and deletes: %d ins, %d del", insTotal, delTotal)
	}
	ok, err := db.SatisfiesAll(m.Access)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatalf("churned instance violates A0: %v", db.Violations(m.Access))
	}
}
