package workload

import (
	"testing"
)

// TestShardedFixtureSatisfiesAccessSchema: the generator and the churn
// stream must keep D |= A (the key and fan-out constraints) — otherwise
// the fetch bounds the scaling experiment asserts are meaningless.
func TestShardedFixtureSatisfiesAccessSchema(t *testing.T) {
	// The small-pool case (50 users, 300-op batches) is the regression
	// pin for deletes targeting same-batch inserts: batches much larger
	// than the per-uid pools force the generator onto its limit-tracking
	// paths, where a phantom delete would drift the fan-out over NTxn.
	for _, tc := range []struct{ users, txns, batch, rounds int }{
		{300, 5, 120, 20},
		{50, 5, 300, 12},
	} {
		w := NewSharded(8)
		db := w.Generate(tc.users, tc.txns, 42)
		if ok, err := db.SatisfiesAll(w.Access); err != nil || !ok {
			t.Fatalf("generated instance violates A: ok=%v err=%v (violations %v)", ok, err, db.Violations(w.Access))
		}
		ch := w.NewChurn(db, 7)
		for b := 0; b < tc.rounds; b++ {
			ins, del := ch.Batch(tc.batch)
			if _, err := db.ApplyDelta(ins, del); err != nil {
				t.Fatalf("%d users, batch %d: %v", tc.users, b, err)
			}
			if ok, err := db.SatisfiesAll(w.Access); err != nil || !ok {
				t.Fatalf("%d users, batch %d drove D out of A: ok=%v err=%v (violations %v)",
					tc.users, b, ok, err, db.Violations(w.Access))
			}
		}
		if db.Size() == 0 {
			t.Fatal("churn emptied the instance")
		}
	}
}
