package workload

import (
	"fmt"
	"math/rand"

	"repro/internal/access"
	"repro/internal/cq"
	"repro/internal/instance"
	"repro/internal/schema"
)

// PlanPick is a fixture built so the full VBRP enumeration yields several
// A-equivalent bounded plans whose realized fetch volumes differ by orders
// of magnitude — the plan-selection experiment. One relation R(A,B), a
// whole-view V(a,b) = R(a,b), and two ways to reach the data:
//
//   - Sel: R(A -> B, NSel) — the selective index path; fetching the "k"
//     group reads at most NSel tuples;
//   - All: R(∅ -> (A,B), NAll) — the "small table" constraint; an
//     input-free fetch reads the whole relation.
//
// The query Q(b) :- R("k", b) then has (at least) three candidates at
// M = 3: σ_{a="k"}(V) (zero fetches), a fetch through Sel (≤ NSel), and
// σ_{a="k"} over an input-free fetch through All (the whole table). All
// answer Q; only the cost model tells them apart.
type PlanPick struct {
	Schema *schema.Schema
	Access *access.Schema
	Q      *cq.CQ
	M      int

	Sel *access.Constraint
	All *access.Constraint
}

// NewPlanPick builds the fixture. nsel bounds the per-A-value fan-out,
// nall bounds the whole table (every generated instance stays within
// both).
func NewPlanPick(nsel, nall int) *PlanPick {
	s := schema.New(schema.NewRelation("R", "A", "B"))
	sel := access.NewConstraint("R", []string{"A"}, []string{"B"}, nsel)
	all := access.NewConstraint("R", nil, []string{"A", "B"}, nall)
	q := cq.NewCQ([]cq.Term{cq.Var("b")}, []cq.Atom{
		cq.NewAtom("R", cq.Cst("k"), cq.Var("b")),
	})
	q.Name = "Q"
	return &PlanPick{
		Schema: s,
		Access: access.NewSchema(sel, all),
		Q:      q, M: 3,
		Sel: sel, All: all,
	}
}

// Views returns the single whole-table view V(a,b) = R(a,b).
func (p *PlanPick) Views() map[string]*cq.UCQ {
	v := cq.NewCQ([]cq.Term{cq.Var("a"), cq.Var("b")}, []cq.Atom{
		cq.NewAtom("R", cq.Var("a"), cq.Var("b")),
	})
	v.Name = "V"
	return map[string]*cq.UCQ{"V": cq.NewUCQ(v)}
}

// Generate builds an instance satisfying the access schema: `rows` tuples
// total (capped at NAll), kGroup of them (capped at NSel) in the "k"
// group so Q has answers, the rest spread over distinct A-values with
// per-group fan-out within NSel.
func (p *PlanPick) Generate(rows, kGroup int, seed int64) *instance.Database {
	rng := rand.New(rand.NewSource(seed))
	if rows > p.All.N {
		rows = p.All.N
	}
	if kGroup > p.Sel.N {
		kGroup = p.Sel.N
	}
	if kGroup > rows {
		kGroup = rows
	}
	db := instance.NewDatabase(p.Schema)
	for i := 0; i < kGroup; i++ {
		db.MustInsert("R", "k", fmt.Sprintf("kb%d", i))
	}
	perGroup := p.Sel.N
	if perGroup > 4 {
		perGroup = 4 // many groups: makes the A-column distinct count high
	}
	for i := kGroup; i < rows; i++ {
		g := (i - kGroup) / perGroup
		db.MustInsert("R", fmt.Sprintf("a%d", g), fmt.Sprintf("b%d", rng.Intn(rows)))
	}
	return db
}
