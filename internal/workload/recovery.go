package workload

import "repro/internal/cq"

// Recovery is the durability fixture: the acct/txn domain of Sharded
// (same schema, access constraints, generator and churn stream), with a
// view set chosen so that restart cost measures real recomputation.
//
// A checkpoint's size tracks the STATE (tables + view extents); a cold
// rebuild's cost tracks the view DERIVATIONS. The two are decoupled by
// VTriple(u) = acct(u,"emea") ⋈ txn³ — a four-way self-join whose
// derivation count grows cubically in the per-user transaction fan-out
// while its extent stays one row per emea account. At the experiment's
// fixture size a cold open re-derives tens of millions of valuations to
// count, while the checkpointed restart decodes a few hundred rows with
// their counts and serves. VSpend rides along as the linear-extent view
// so recovery is also checked against a view with real row payloads.
type Recovery struct{ *Sharded }

// NewRecovery builds the fixture with the given per-uid transaction cap.
func NewRecovery(nTxn int) *Recovery { return &Recovery{NewSharded(nTxn)} }

// Views returns VSpend (linear extent) and VTriple (cubic derivations,
// one-row-per-user extent).
func (w *Recovery) Views() map[string]*cq.UCQ {
	v := cq.NewCQ([]cq.Term{cq.Var("u"), cq.Var("i")}, []cq.Atom{
		cq.NewAtom("acct", cq.Var("u"), cq.Cst("emea")),
		cq.NewAtom("txn", cq.Var("u"), cq.Var("i"), cq.Var("a")),
	})
	v.Name = "VSpend"
	v3 := cq.NewCQ([]cq.Term{cq.Var("u")}, []cq.Atom{
		cq.NewAtom("acct", cq.Var("u"), cq.Cst("emea")),
		cq.NewAtom("txn", cq.Var("u"), cq.Var("i1"), cq.Var("a1")),
		cq.NewAtom("txn", cq.Var("u"), cq.Var("i2"), cq.Var("a2")),
		cq.NewAtom("txn", cq.Var("u"), cq.Var("i3"), cq.Var("a3")),
	})
	v3.Name = "VTriple"
	return map[string]*cq.UCQ{"VSpend": cq.NewUCQ(v), "VTriple": cq.NewUCQ(v3)}
}
