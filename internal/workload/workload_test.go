package workload

import (
	"testing"

	"repro/internal/cq"
	"repro/internal/eval"
	"repro/internal/fo"
	"repro/internal/instance"
	"repro/internal/plan"
	"repro/internal/topped"
)

func TestMoviesInstanceSatisfiesA0(t *testing.T) {
	m := NewMovies(15)
	for _, p := range []MoviesParams{
		{Persons: 100, Movies: 100, LikesPerPerson: 3, NASAShare: 5, Seed: 1},
		{Persons: 1000, Movies: 5000, LikesPerPerson: 5, NASAShare: 9, Seed: 2},
	} {
		db := m.Generate(p)
		ok, err := db.SatisfiesAll(m.Access)
		if err != nil || !ok {
			t.Fatalf("params %+v: instance violates A0: %v / %v", p, err, db.Violations(m.Access))
		}
	}
}

func TestCDRInstanceSatisfiesConstraints(t *testing.T) {
	c := NewCDR(12, 4, 50)
	db := c.Generate(CDRParams{Customers: 400, Days: 20, Seed: 3})
	ok, err := db.SatisfiesAll(c.Access)
	if err != nil || !ok {
		t.Fatalf("CDR instance violates constraints: %v / %v", err, db.Violations(c.Access))
	}
}

func TestCDRWorkloadToppedness(t *testing.T) {
	c := NewCDR(12, 4, 50)
	checker := topped.NewChecker(c.Schema, c.Access, nil)
	queries := c.Queries("p0000007", "d05")
	boundCount := 0
	for _, q := range queries {
		res := checker.Check(q.FO, 64)
		if res.Topped != q.IsBound {
			t.Errorf("%s (%s): topped=%v want %v (%s)", q.Name, q.Descr, res.Topped, q.IsBound, res.Reason)
			continue
		}
		if res.Topped {
			boundCount++
			rep := plan.Conforms(res.Plan, c.Schema, c.Access, nil)
			if !rep.Conforms {
				t.Errorf("%s: generated plan does not conform: %s", q.Name, rep.Reason)
			}
		}
	}
	// The paper reports > 90% of the CDR workload improved; our workload
	// has 9/10 topped by construction.
	if boundCount != 9 {
		t.Fatalf("expected 9/10 topped queries, got %d", boundCount)
	}
}

func TestCDRPlansMatchBaseline(t *testing.T) {
	c := NewCDR(8, 3, 30)
	db := c.Generate(CDRParams{Customers: 500, Days: 15, Seed: 11})
	checker := topped.NewChecker(c.Schema, c.Access, nil)
	ix, err := instance.BuildIndexes(db, c.Access)
	if err != nil {
		t.Fatal(err)
	}
	src := &eval.Source{DB: db}
	for _, q := range c.Queries("p0000003", "d03") {
		res := checker.Check(q.FO, 64)
		if !res.Topped {
			continue
		}
		ix.ResetCounters()
		got, err := plan.Run(res.Plan, ix, nil)
		if err != nil {
			t.Fatalf("%s: run: %v", q.Name, err)
		}
		var want [][]string
		if q.CQ != nil {
			want, err = eval.CQOnDB(q.CQ, src)
		} else {
			want, err = eval.FOOnDB(q.FO, src)
		}
		if err != nil {
			t.Fatalf("%s: baseline: %v", q.Name, err)
		}
		if !cq.RowsEqual(got, want) {
			eval.SortRows(got)
			eval.SortRows(want)
			t.Fatalf("%s: plan %d rows vs baseline %d rows\nplan:\n%s", q.Name, len(got), len(want), plan.Render(res.Plan))
		}
		if ix.FetchedTuples() > 20000 {
			t.Fatalf("%s: fetched %d tuples; plans must touch a bounded slice", q.Name, ix.FetchedTuples())
		}
	}
}

func TestCDRFetchCountScaleIndependent(t *testing.T) {
	c := NewCDR(8, 3, 30)
	checker := topped.NewChecker(c.Schema, c.Access, nil)
	q := c.Queries("p0000003", "d03")[2] // Q3: 2-hop
	res := checker.Check(q.FO, 64)
	if !res.Topped {
		t.Fatalf("Q3 must be topped: %s", res.Reason)
	}
	var fetched [2]int
	for i, n := range []int{300, 3000} {
		db := c.Generate(CDRParams{Customers: n, Days: 15, Seed: 4})
		ix, err := instance.BuildIndexes(db, c.Access)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := plan.Run(res.Plan, ix, nil); err != nil {
			t.Fatal(err)
		}
		fetched[i] = ix.FetchedTuples()
	}
	// The fetch bound is a constant (≤ FanOut + FanOut²·...) regardless of
	// |D|; allow equality or small variation from data sparsity.
	bound := c.FanOut + c.FanOut*c.FanOut + 10
	for i, f := range fetched {
		if f > bound {
			t.Fatalf("instance %d fetched %d > bound %d", i, f, bound)
		}
	}
}

func TestGraphSearchTopped(t *testing.T) {
	so := NewSocial(40, 20)
	checker := topped.NewChecker(so.Schema, so.Access, nil)
	q := so.GraphSearchQuery("u000001", "2015-05-03", "city7")
	res := checker.Check(q, 64)
	if !res.Topped {
		t.Fatalf("the Graph Search query must be topped (intro example): %s", res.Reason)
	}
	rep := plan.Conforms(res.Plan, so.Schema, so.Access, nil)
	if !rep.Conforms {
		t.Fatalf("plan must conform: %s", rep.Reason)
	}
	// The paper's bound: friends·(dines + ratings checks) — with caps 40
	// friends, 1 dinner key and 60-dinner history: constant in |D|.
	db := so.Generate(SocialParams{Persons: 2000, Restaurants: 300, Dates: 28, Seed: 9})
	if ok, _ := db.SatisfiesAll(so.Access); !ok {
		t.Fatalf("instance violates constraints: %v", db.Violations(so.Access))
	}
	ix, err := instance.BuildIndexes(db, so.Access)
	if err != nil {
		t.Fatal(err)
	}
	got, err := plan.Run(res.Plan, ix, nil)
	if err != nil {
		t.Fatal(err)
	}
	want, err := eval.FOOnDB(q, &eval.Source{DB: db})
	if err != nil {
		t.Fatal(err)
	}
	if !cq.RowsEqual(got, want) {
		t.Fatalf("plan %d rows vs FO baseline %d rows\n%s", len(got), len(want), plan.Render(res.Plan))
	}
	maxFetch := so.FriendCap * 3 * 2 // friends × (dine key + history + city)
	if ix.FetchedTuples() > maxFetch {
		t.Fatalf("fetched %d > structural bound %d", ix.FetchedTuples(), maxFetch)
	}
}

func TestRandomInstanceSatisfiesConstraints(t *testing.T) {
	c := NewCDR(5, 2, 10)
	db := RandomInstance(c.Schema, c.Access, 500, 60, 17)
	ok, err := db.SatisfiesAll(c.Access)
	if err != nil || !ok {
		t.Fatalf("random instance violates constraints: %v / %v", err, db.Violations(c.Access))
	}
	if db.Size() == 0 {
		t.Fatal("random instance should not be empty")
	}
}

func TestRandomCQGeneration(t *testing.T) {
	c := NewCDR(5, 2, 10)
	seen := map[string]bool{}
	for seed := int64(0); seed < 20; seed++ {
		q := RandomCQ(c.Schema, RandomCQParams{
			Atoms: 3, ConstProb: 0.3, JoinProb: 0.4, HeadVars: 2, Seed: seed,
		})
		if len(q.Atoms) != 3 {
			t.Fatalf("expected 3 atoms, got %d", len(q.Atoms))
		}
		if err := q.Validate(c.Schema, nil); err != nil {
			t.Fatalf("invalid random query: %v", err)
		}
		seen[q.Canonical()] = true
	}
	if len(seen) < 10 {
		t.Fatalf("random queries not diverse enough: %d distinct of 20", len(seen))
	}
}

func TestFOFromCQRoundTripOnWorkload(t *testing.T) {
	// The FO embedding of each CQ workload query evaluates identically to
	// the CQ itself.
	c := NewCDR(6, 2, 20)
	db := c.Generate(CDRParams{Customers: 150, Days: 10, Seed: 23})
	src := &eval.Source{DB: db}
	for _, q := range c.Queries("p0000002", "d02") {
		if q.CQ == nil {
			continue
		}
		fq := fo.FromCQ(q.CQ)
		gotFO, err := eval.FOOnDB(fq, src)
		if err != nil {
			t.Fatalf("%s: FO eval: %v", q.Name, err)
		}
		gotCQ, err := eval.CQOnDB(q.CQ, src)
		if err != nil {
			t.Fatalf("%s: CQ eval: %v", q.Name, err)
		}
		if !cq.RowsEqual(gotFO, gotCQ) {
			t.Fatalf("%s: FO/CQ evaluation mismatch: %d vs %d rows", q.Name, len(gotFO), len(gotCQ))
		}
	}
}
