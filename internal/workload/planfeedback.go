package workload

import (
	"fmt"

	"repro/internal/access"
	"repro/internal/cq"
	"repro/internal/instance"
	"repro/internal/schema"
)

// PlanFeedback is the adversarial fixture for the observed-cost feedback
// loop: a skewed instance on which the collected statistics misestimate
// the best candidate's fetch volume by orders of magnitude, so open-loop
// selection pins a plan that fetches ~1000x more than a rival in its own
// frontier. One relation R(A,B,C) and three ways to reach the data:
//
//   - ByA: R(A -> (B,C), NProbe) — probe by A. The A column is almost all
//     singletons (~Singletons distinct values) PLUS one hot group "k" of
//     HotGroup rows: the estimator's |R|/distinct(A) average says a probe
//     returns ~1.5 tuples, but probing "k" actually fetches HotGroup.
//   - ByB: R(B -> (A,C), NProbe) — probe by B. Only ~BValues distinct B
//     values, so the same average says ~|R|/BValues tuples per probe; the
//     probed group "j" actually holds just JGroup rows.
//   - All: R(∅ -> (A,B,C), NAll) — the scan fallback.
//
// The query Q(c) :- R("k", "j", c) admits candidates through all three:
// the estimates rank ByA (≈1.5) far below ByB (≈360) below All (≈|R|),
// while the realized fetch volumes are HotGroup (3000) vs JGroup (8) vs
// |R| — the estimate-vs-realized ranking inversion the feedback loop must
// detect and correct. Misestimate factor on ByA: HotGroup/(|R|/#A) —
// >1000x at the defaults, far past the 10x the convergence gate needs.
type PlanFeedback struct {
	Schema *schema.Schema
	Access *access.Schema
	Q      *cq.CQ
	M      int

	ByA *access.Constraint
	ByB *access.Constraint
	All *access.Constraint

	HotGroup   int // rows in the hot A-group "k" (realized ByA fetch)
	JGroup     int // rows with B = "j" (realized ByB fetch); half are answers
	Singletons int // singleton A-values outside the hot group
	BValues    int // distinct B-values besides "j"
}

// NewPlanFeedback builds the fixture at the default scale: a ~9k-row
// instance whose hot group misestimates ByA by >1000x.
func NewPlanFeedback() *PlanFeedback {
	s := schema.New(schema.NewRelation("R", "A", "B", "C"))
	byA := access.NewConstraint("R", []string{"A"}, []string{"B", "C"}, 4096)
	byB := access.NewConstraint("R", []string{"B"}, []string{"A", "C"}, 4096)
	all := access.NewConstraint("R", nil, []string{"A", "B", "C"}, 1_000_000)
	q := cq.NewCQ([]cq.Term{cq.Var("c")}, []cq.Atom{
		cq.NewAtom("R", cq.Cst("k"), cq.Cst("j"), cq.Var("c")),
	})
	q.Name = "Q"
	return &PlanFeedback{
		Schema: s,
		Access: access.NewSchema(byA, byB, all),
		Q:      q, M: 4,
		ByA: byA, ByB: byB, All: all,
		HotGroup: 3000, JGroup: 8, Singletons: 6000, BValues: 20,
	}
}

// Views returns no views: every candidate reaches the data through a
// fetch, so realized fetch volumes alone separate the frontier.
func (p *PlanFeedback) Views() map[string]*cq.UCQ {
	return map[string]*cq.UCQ{}
}

// Generate builds the skewed instance:
//
//   - JGroup/2 answer rows ("k", "j", c...) — in the hot group AND "j";
//   - HotGroup-JGroup/2 rows ("k", b_i, ...) spread over the other
//     B-values — the hot A-group the estimator cannot see;
//   - JGroup/2 rows (singleton A, "j", ...) — "j" rows outside "k";
//   - Singletons rows (singleton A, b_i, ...) — the distinct-count mass
//     that drives the ByA width estimate to ~1.
func (p *PlanFeedback) Generate() *instance.Database {
	db := instance.NewDatabase(p.Schema)
	answers := p.JGroup / 2
	for i := 0; i < answers; i++ {
		db.MustInsert("R", "k", "j", fmt.Sprintf("ans%d", i))
	}
	for i := answers; i < p.HotGroup; i++ {
		db.MustInsert("R", "k", fmt.Sprintf("b%d", i%p.BValues), fmt.Sprintf("hc%d", i))
	}
	for i := 0; i < p.JGroup-answers; i++ {
		db.MustInsert("R", fmt.Sprintf("j%d", i), "j", fmt.Sprintf("jc%d", i))
	}
	for i := 0; i < p.Singletons; i++ {
		db.MustInsert("R", fmt.Sprintf("s%d", i), fmt.Sprintf("b%d", i%p.BValues), fmt.Sprintf("sc%d", i))
	}
	return db
}

// ChurnBatch returns a batch of inserts that preserves the fixture's skew
// shape (fresh singleton A-values, recycled B-values) — enough physical
// ops to trip a statistics drift rebuild without changing which candidate
// is realized-cheapest.
func (p *PlanFeedback) ChurnBatch(round, size int) []instance.Op {
	ops := make([]instance.Op, 0, size)
	for i := 0; i < size; i++ {
		ops = append(ops, instance.Op{Rel: "R", Row: instance.Tuple{
			fmt.Sprintf("x%d_%d", round, i),
			fmt.Sprintf("b%d", i%p.BValues),
			fmt.Sprintf("xc%d_%d", round, i),
		}})
	}
	return ops
}
