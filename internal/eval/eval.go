// Package eval is the direct query-evaluation engine: it computes Q(D) by
// scanning and joining full relations, the way an engine without access
// constraints must. It serves two roles: (1) the baseline that bounded
// plans are compared against in the experiments, and (2) the reference
// semantics for correctness tests of plans and rewritings.
//
// CQ/UCQ evaluation uses constant pushdown and left-deep hash joins over
// interned rows: every value is a dense uint32 ID from the database
// dictionary, join keys are 64-bit hashes of packed ID rows, and strings
// reappear only at the API boundary. UCQ disjuncts and view
// materialization run on the bounded worker pool of internal/par. FO
// evaluation is structural over safe-range formulas (RANF-style): positive
// conjuncts are joined first, comparisons filter or extend, negated
// conjuncts anti-join, disjuncts union, quantifiers project.
package eval

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/cq"
	"repro/internal/fo"
	"repro/internal/instance"
	"repro/internal/intern"
	"repro/internal/par"
)

// Source resolves relation (or view) names to row sets. It carries the
// interning state of one evaluation context; the zero value with DB and/or
// Views set is ready to use, and one Source may be shared by concurrent
// evaluations.
type Source struct {
	DB    *instance.Database
	Views map[string][][]string

	mu      sync.Mutex
	dict    *intern.Dict
	viewIDs *intern.RowCache
}

// Rows returns the rows of a relation or materialized view as strings.
func (s *Source) Rows(rel string) ([][]string, bool) {
	if s.DB != nil {
		if t := s.DB.Table(rel); t != nil {
			rows := make([][]string, len(t.Tuples))
			for i, tu := range t.Tuples {
				rows[i] = tu
			}
			return rows, true
		}
	}
	if s.Views != nil {
		if rows, ok := s.Views[rel]; ok {
			return rows, true
		}
	}
	return nil, false
}

// Dict returns the interning dictionary of this evaluation context: the
// database's when present, a private one otherwise.
func (s *Source) Dict() *intern.Dict {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.dictLocked()
}

func (s *Source) dictLocked() *intern.Dict {
	if s.dict == nil {
		if s.DB != nil && s.DB.Dict != nil {
			s.dict = s.DB.Dict
		} else {
			s.dict = intern.NewDict()
		}
	}
	return s.dict
}

// IDRows returns the ID-encoded rows of a relation or view. View extents
// are interned once per Source and cached. The result must not be mutated.
func (s *Source) IDRows(rel string) ([][]uint32, bool) {
	if s.DB != nil {
		if t := s.DB.Table(rel); t != nil {
			return t.IDRows(), true
		}
	}
	if s.Views != nil {
		if rows, ok := s.Views[rel]; ok {
			s.mu.Lock()
			if s.viewIDs == nil {
				s.viewIDs = intern.NewRowCache(s.dictLocked())
			}
			cache := s.viewIDs
			s.mu.Unlock()
			return cache.Encode(rel, rows), true
		}
	}
	return nil, false
}

// relSize returns the row count of a relation or view without
// materializing anything, for the atom-ordering heuristic.
func (s *Source) relSize(rel string) (int, bool) {
	if s.DB != nil {
		if t := s.DB.Table(rel); t != nil {
			return t.Len(), true
		}
	}
	if rows, ok := s.Views[rel]; ok {
		return len(rows), true
	}
	return 0, false
}

// CQOnDB evaluates a conjunctive query over the source with set semantics.
func CQOnDB(q *cq.CQ, src *Source) ([][]string, error) {
	rows, err := cqIDRows(q, src)
	if err != nil {
		return nil, err
	}
	return src.Dict().DecodeAll(rows), nil
}

// cqIDRows is the interned CQ pipeline: it returns the distinct ID-encoded
// head rows of q over src.
func cqIDRows(q *cq.CQ, src *Source) ([][]uint32, error) {
	n, err := q.Normalize()
	if err != nil {
		return nil, nil // unsatisfiable
	}
	d := src.Dict()
	if len(n.Atoms) == 0 {
		// Pure constant query: the head must be all-constant.
		row := make([]uint32, len(n.Head))
		for i, t := range n.Head {
			if !t.Const {
				return nil, fmt.Errorf("eval: unsafe query, unbound head variable %s", t.Val)
			}
			row[i] = d.ID(t.Val)
		}
		return [][]uint32{row}, nil
	}
	atoms := orderAtoms(n.Atoms, src)

	// Bindings are ID rows over varOrder.
	var varOrder []string
	varPos := map[string]int{}
	bindings := [][]uint32{{}}

	for _, at := range atoms {
		rows, ok := src.IDRows(at.Rel)
		if !ok {
			return nil, fmt.Errorf("eval: unknown relation %s", at.Rel)
		}
		// Classify argument positions.
		consts := make([]uint32, len(at.Args)) // interned constant per position
		var joinAtom []int                     // atom positions of already-bound variables
		var joinBind []int                     // matching binding positions
		var selfAtom, selfFirst []int          // intra-atom repeated new variables
		var newUses []varUse                   // first occurrence of a variable in this atom
		newSeen := map[string]int{}
		for i, t := range at.Args {
			if t.Const {
				consts[i] = d.ID(t.Val)
				continue
			}
			if p, bound := varPos[t.Val]; bound {
				joinAtom = append(joinAtom, i)
				joinBind = append(joinBind, p)
			} else if p, dup := newSeen[t.Val]; dup {
				// Repeated new variable within the atom: equality filter.
				selfAtom = append(selfAtom, i)
				selfFirst = append(selfFirst, p)
			} else {
				newSeen[t.Val] = i
				newUses = append(newUses, varUse{i, t.Val})
			}
		}
		// Filter rows by constants and intra-atom repeats, index by join
		// key. No size hint: constants typically filter most rows away,
		// and presizing to the unfiltered count would dominate the cost.
		index := intern.NewIndex(0)
	rowLoop:
		for _, r := range rows {
			if len(r) != len(at.Args) {
				continue
			}
			for i, t := range at.Args {
				if t.Const && r[i] != consts[i] {
					continue rowLoop
				}
			}
			for k, i := range selfAtom {
				if r[i] != r[selfFirst[k]] {
					continue rowLoop
				}
			}
			index.AddAt(r, joinAtom)
		}
		// Extend bindings.
		next := make([][]uint32, 0, len(bindings))
		for _, b := range bindings {
			for _, r := range index.GetAt(b, joinBind) {
				nb := make([]uint32, len(b), len(b)+len(newUses))
				copy(nb, b)
				for _, nu := range newUses {
					nb = append(nb, r[nu.pos])
				}
				next = append(next, nb)
			}
		}
		for _, nu := range newUses {
			varPos[nu.name] = len(varOrder)
			varOrder = append(varOrder, nu.name)
		}
		bindings = next
		if len(bindings) == 0 {
			return nil, nil
		}
	}

	// Project the head.
	headPos := make([]int, len(n.Head))
	headConst := make([]uint32, len(n.Head))
	for i, t := range n.Head {
		if t.Const {
			headPos[i] = -1
			headConst[i] = d.ID(t.Val)
			continue
		}
		p, ok := varPos[t.Val]
		if !ok {
			return nil, fmt.Errorf("eval: unsafe query, unbound head variable %s", t.Val)
		}
		headPos[i] = p
	}
	seen := intern.NewSet(len(bindings))
	var out [][]uint32
	for _, b := range bindings {
		row := make([]uint32, len(n.Head))
		for i, p := range headPos {
			if p < 0 {
				row[i] = headConst[i]
			} else {
				row[i] = b[p]
			}
		}
		if seen.Add(row) {
			out = append(out, row)
		}
	}
	return out, nil
}

// varUse records that an atom argument position uses a named variable.
type varUse struct {
	pos  int
	name string
}

// orderAtoms greedily orders atoms to maximize already-bound variables and
// prefer smaller relations, the same heuristic as the containment engine.
func orderAtoms(atoms []cq.Atom, src *Source) []cq.Atom {
	remaining := append([]cq.Atom(nil), atoms...)
	bound := map[string]bool{}
	var out []cq.Atom
	for len(remaining) > 0 {
		best, bestScore := -1, -1<<60
		for i, a := range remaining {
			score := 0
			for _, t := range a.Args {
				if t.Const || bound[t.Val] {
					score += 1 << 20
				}
			}
			if n, ok := src.relSize(a.Rel); ok {
				score -= n
			}
			if score > bestScore {
				best, bestScore = i, score
			}
		}
		a := remaining[best]
		remaining = append(remaining[:best], remaining[best+1:]...)
		for _, t := range a.Args {
			if !t.Const {
				bound[t.Val] = true
			}
		}
		out = append(out, a)
	}
	return out
}

// UCQOnDB evaluates a union of conjunctive queries with set semantics. The
// disjuncts are evaluated concurrently on the worker pool; the result is
// merged in disjunct order, so output order is deterministic.
func UCQOnDB(u *cq.UCQ, src *Source) ([][]string, error) {
	results := make([][][]uint32, len(u.Disjuncts))
	err := par.ForEach(len(u.Disjuncts), func(i int) error {
		rows, err := cqIDRows(u.Disjuncts[i], src)
		results[i] = rows
		return err
	})
	if err != nil {
		return nil, err
	}
	total := 0
	for _, rows := range results {
		total += len(rows)
	}
	seen := intern.NewSet(total)
	var out [][]uint32
	for _, rows := range results {
		for _, r := range rows {
			if seen.Add(r) {
				out = append(out, r)
			}
		}
	}
	return src.Dict().DecodeAll(out), nil
}

// SortRows sorts rows lexicographically, for deterministic output.
func SortRows(rows [][]string) {
	sort.Slice(rows, func(i, j int) bool {
		a, b := rows[i], rows[j]
		for k := 0; k < len(a) && k < len(b); k++ {
			if a[k] != b[k] {
				return a[k] < b[k]
			}
		}
		return len(a) < len(b)
	})
}

// Materialize computes the extents of a set of views (UCQ definitions) over
// the database, for caching as plan inputs. The views are evaluated
// concurrently on the worker pool.
func Materialize(views map[string]*cq.UCQ, db *instance.Database) (map[string][][]string, error) {
	names := make([]string, 0, len(views))
	for name := range views {
		names = append(names, name)
	}
	sort.Strings(names)
	src := &Source{DB: db}
	extents := make([][][]string, len(names))
	err := par.ForEach(len(names), func(i int) error {
		rows, err := UCQOnDB(views[names[i]], src)
		if err != nil {
			return fmt.Errorf("eval: view %s: %w", names[i], err)
		}
		extents[i] = rows
		return nil
	})
	if err != nil {
		return nil, err
	}
	out := make(map[string][][]string, len(names))
	for i, name := range names {
		out[name] = extents[i]
	}
	return out, nil
}

var _ = fo.Query{} // fo evaluation lives in fo_eval.go
