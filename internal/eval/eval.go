// Package eval is the direct query-evaluation engine: it computes Q(D) by
// scanning and joining full relations, the way an engine without access
// constraints must. It serves two roles: (1) the baseline that bounded
// plans are compared against in the experiments, and (2) the reference
// semantics for correctness tests of plans and rewritings.
//
// CQ/UCQ evaluation uses constant pushdown and left-deep hash joins. FO
// evaluation is structural over safe-range formulas (RANF-style): positive
// conjuncts are joined first, comparisons filter or extend, negated
// conjuncts anti-join, disjuncts union, quantifiers project.
package eval

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/cq"
	"repro/internal/fo"
	"repro/internal/instance"
)

// Source resolves relation (or view) names to row sets.
type Source struct {
	DB    *instance.Database
	Views map[string][][]string
}

// Rows returns the rows of a relation or materialized view.
func (s *Source) Rows(rel string) ([][]string, bool) {
	if s.DB != nil {
		if t := s.DB.Table(rel); t != nil {
			rows := make([][]string, len(t.Tuples))
			for i, tu := range t.Tuples {
				rows[i] = tu
			}
			return rows, true
		}
	}
	if s.Views != nil {
		if rows, ok := s.Views[rel]; ok {
			return rows, true
		}
	}
	return nil, false
}

// CQOnDB evaluates a conjunctive query over the source with set semantics.
func CQOnDB(q *cq.CQ, src *Source) ([][]string, error) {
	n, err := q.Normalize()
	if err != nil {
		return nil, nil // unsatisfiable
	}
	if len(n.Atoms) == 0 {
		// Pure constant query: the head must be all-constant.
		row := make([]string, len(n.Head))
		for i, t := range n.Head {
			if !t.Const {
				return nil, fmt.Errorf("eval: unsafe query, unbound head variable %s", t.Val)
			}
			row[i] = t.Val
		}
		return [][]string{row}, nil
	}
	atoms := orderAtoms(n.Atoms, src)

	// Bindings are rows over varOrder.
	var varOrder []string
	varPos := map[string]int{}
	bindings := [][]string{{}}

	for _, at := range atoms {
		rows, ok := src.Rows(at.Rel)
		if !ok {
			return nil, fmt.Errorf("eval: unknown relation %s", at.Rel)
		}
		// Classify argument positions.
		var joinUses []varUse // variables already bound
		var newUses []varUse  // first occurrence of a variable in this atom
		newSeen := map[string]int{}
		for i, t := range at.Args {
			if t.Const {
				continue
			}
			if _, bound := varPos[t.Val]; bound {
				joinUses = append(joinUses, varUse{i, t.Val})
			} else if p, dup := newSeen[t.Val]; dup {
				// Repeated new variable within the atom: equality filter.
				joinUses = append(joinUses, varUse{i, "\x00self:" + fmt.Sprint(p)})
			} else {
				newSeen[t.Val] = i
				newUses = append(newUses, varUse{i, t.Val})
			}
		}
		// Filter rows by constants and intra-atom repeats, index by join key.
		index := map[string][][]string{}
	rowLoop:
		for _, r := range rows {
			if len(r) != len(at.Args) {
				continue
			}
			for i, t := range at.Args {
				if t.Const && r[i] != t.Val {
					continue rowLoop
				}
			}
			for v, first := range newSeen {
				for i, t := range at.Args {
					if !t.Const && t.Val == v && r[i] != r[first] {
						continue rowLoop
					}
				}
			}
			key := joinKeyRow(r, joinUses)
			index[key] = append(index[key], r)
		}
		// Extend bindings.
		next := make([][]string, 0, len(bindings))
		for _, b := range bindings {
			key := joinKeyBinding(b, varPos, joinUses)
			for _, r := range index[key] {
				nb := make([]string, len(b), len(b)+len(newUses))
				copy(nb, b)
				for _, nu := range newUses {
					nb = append(nb, r[nu.pos])
				}
				next = append(next, nb)
			}
		}
		for _, nu := range newUses {
			varPos[nu.name] = len(varOrder)
			varOrder = append(varOrder, nu.name)
		}
		bindings = next
		if len(bindings) == 0 {
			return nil, nil
		}
	}

	// Project the head.
	seen := map[string]bool{}
	var out [][]string
	for _, b := range bindings {
		row := make([]string, len(n.Head))
		for i, t := range n.Head {
			if t.Const {
				row[i] = t.Val
				continue
			}
			p, ok := varPos[t.Val]
			if !ok {
				return nil, fmt.Errorf("eval: unsafe query, unbound head variable %s", t.Val)
			}
			row[i] = b[p]
		}
		k := instance.Tuple(row).Key()
		if !seen[k] {
			seen[k] = true
			out = append(out, row)
		}
	}
	return out, nil
}

// varUse records that an atom argument position uses a named variable.
type varUse struct {
	pos  int
	name string
}

// joinKeyRow keys a candidate row by its join positions. Self-join markers
// ("\x00self:p") compare against position p of the same row, so they do not
// participate in the cross-binding key; they were filtered already.
func joinKeyRow(r []string, uses []varUse) string {
	var b strings.Builder
	for _, u := range uses {
		if strings.HasPrefix(u.name, "\x00self:") {
			continue
		}
		b.WriteString(r[u.pos])
		b.WriteByte(0x1f)
	}
	return b.String()
}

func joinKeyBinding(bnd []string, varPos map[string]int, uses []varUse) string {
	var b strings.Builder
	for _, u := range uses {
		if strings.HasPrefix(u.name, "\x00self:") {
			continue
		}
		b.WriteString(bnd[varPos[u.name]])
		b.WriteByte(0x1f)
	}
	return b.String()
}

// orderAtoms greedily orders atoms to maximize already-bound variables and
// prefer smaller relations, the same heuristic as the containment engine.
func orderAtoms(atoms []cq.Atom, src *Source) []cq.Atom {
	remaining := append([]cq.Atom(nil), atoms...)
	bound := map[string]bool{}
	var out []cq.Atom
	for len(remaining) > 0 {
		best, bestScore := -1, -1<<60
		for i, a := range remaining {
			score := 0
			for _, t := range a.Args {
				if t.Const || bound[t.Val] {
					score += 1 << 20
				}
			}
			if rows, ok := src.Rows(a.Rel); ok {
				score -= len(rows)
			}
			if score > bestScore {
				best, bestScore = i, score
			}
		}
		a := remaining[best]
		remaining = append(remaining[:best], remaining[best+1:]...)
		for _, t := range a.Args {
			if !t.Const {
				bound[t.Val] = true
			}
		}
		out = append(out, a)
	}
	return out
}

// UCQOnDB evaluates a union of conjunctive queries with set semantics.
func UCQOnDB(u *cq.UCQ, src *Source) ([][]string, error) {
	seen := map[string]bool{}
	var out [][]string
	for _, d := range u.Disjuncts {
		rows, err := CQOnDB(d, src)
		if err != nil {
			return nil, err
		}
		for _, r := range rows {
			k := instance.Tuple(r).Key()
			if !seen[k] {
				seen[k] = true
				out = append(out, r)
			}
		}
	}
	return out, nil
}

// SortRows sorts rows lexicographically, for deterministic output.
func SortRows(rows [][]string) {
	sort.Slice(rows, func(i, j int) bool {
		a, b := rows[i], rows[j]
		for k := 0; k < len(a) && k < len(b); k++ {
			if a[k] != b[k] {
				return a[k] < b[k]
			}
		}
		return len(a) < len(b)
	})
}

// Materialize computes the extents of a set of views (UCQ definitions) over
// the database, for caching as plan inputs.
func Materialize(views map[string]*cq.UCQ, db *instance.Database) (map[string][][]string, error) {
	src := &Source{DB: db}
	out := make(map[string][][]string, len(views))
	for name, def := range views {
		rows, err := UCQOnDB(def, src)
		if err != nil {
			return nil, fmt.Errorf("eval: view %s: %w", name, err)
		}
		out[name] = rows
	}
	return out, nil
}

var _ = fo.Query{} // fo evaluation lives in fo_eval.go
