package eval

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/cq"
	"repro/internal/instance"
	"repro/internal/schema"
)

func maintFixture() (*schema.Schema, map[string]*cq.UCQ) {
	s := schema.New(
		schema.NewRelation("E", "A", "B"),
		schema.NewRelation("L", "X"),
	)
	// V1(x,z): 2-paths; V2(x): labeled nodes with an out-edge.
	v1 := cq.NewCQ([]cq.Term{cq.Var("x"), cq.Var("z")}, []cq.Atom{
		cq.NewAtom("E", cq.Var("x"), cq.Var("y")),
		cq.NewAtom("E", cq.Var("y"), cq.Var("z")),
	})
	v2 := cq.NewCQ([]cq.Term{cq.Var("x")}, []cq.Atom{
		cq.NewAtom("L", cq.Var("x")),
		cq.NewAtom("E", cq.Var("x"), cq.Var("y")),
	})
	return s, map[string]*cq.UCQ{"V1": cq.NewUCQ(v1), "V2": cq.NewUCQ(v2)}
}

func TestMaintainerInsertMatchesRecompute(t *testing.T) {
	s, views := maintFixture()
	db := instance.NewDatabase(s)
	m, err := NewMaintainer(db, views)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	node := func() string { return fmt.Sprintf("n%d", rng.Intn(8)) }
	for i := 0; i < 120; i++ {
		if rng.Intn(4) == 0 {
			if err := m.Insert("L", node()); err != nil {
				t.Fatal(err)
			}
		} else {
			if err := m.Insert("E", node(), node()); err != nil {
				t.Fatal(err)
			}
		}
		if i%17 == 0 {
			assertFresh(t, m, views)
		}
	}
	assertFresh(t, m, views)
}

func TestMaintainerDeleteRefreshes(t *testing.T) {
	s, views := maintFixture()
	db := instance.NewDatabase(s)
	m, err := NewMaintainer(db, views)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range [][2]string{{"a", "b"}, {"b", "c"}, {"c", "d"}} {
		if err := m.Insert("E", e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	if err := m.Insert("L", "a"); err != nil {
		t.Fatal(err)
	}
	assertFresh(t, m, views)
	if err := m.Delete("E", "b", "c"); err != nil {
		t.Fatal(err)
	}
	assertFresh(t, m, views)
	if len(m.Views()["V1"]) != 0 {
		t.Fatalf("after deleting b→c no 2-path remains, got %v", m.Views()["V1"])
	}
	// Deleting a non-existent tuple is a no-op.
	if err := m.Delete("E", "zz", "zz"); err != nil {
		t.Fatal(err)
	}
	assertFresh(t, m, views)
	// Deleting with the wrong arity is a no-op too, not a panic.
	if err := m.Delete("E", "a"); err != nil {
		t.Fatal(err)
	}
	assertFresh(t, m, views)
}

func TestMaintainerConstantAtomBinding(t *testing.T) {
	// Views with constants in atoms must only react to matching inserts.
	s := schema.New(schema.NewRelation("E", "A", "B"))
	v := cq.NewCQ([]cq.Term{cq.Var("x")}, []cq.Atom{cq.NewAtom("E", cq.Cst("hub"), cq.Var("x"))})
	views := map[string]*cq.UCQ{"V": cq.NewUCQ(v)}
	db := instance.NewDatabase(s)
	m, err := NewMaintainer(db, views)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Insert("E", "other", "1"); err != nil {
		t.Fatal(err)
	}
	if len(m.Views()["V"]) != 0 {
		t.Fatal("non-matching insert must not affect the view")
	}
	if err := m.Insert("E", "hub", "1"); err != nil {
		t.Fatal(err)
	}
	if !cq.RowsEqual(m.Views()["V"], [][]string{{"1"}}) {
		t.Fatalf("got %v", m.Views()["V"])
	}
}

func assertFresh(t *testing.T, m *Maintainer, views map[string]*cq.UCQ) {
	t.Helper()
	for name, def := range views {
		want, err := UCQOnDB(def, &Source{DB: m.DB})
		if err != nil {
			t.Fatal(err)
		}
		if !cq.RowsEqual(m.Views()[name], want) {
			SortRows(want)
			got := append([][]string{}, m.Views()[name]...)
			SortRows(got)
			t.Fatalf("view %s stale:\ngot  %v\nwant %v", name, got, want)
		}
	}
}
