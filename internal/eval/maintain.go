package eval

import (
	"fmt"

	"repro/internal/cq"
	"repro/internal/instance"
)

// Maintainer keeps a set of cached views incrementally consistent with a
// database under tuple insertions and deletions — the "incremental
// precomputation" the paper's practical story builds on (Armbrust et al.,
// cited in §1/§7): views are selected and cached once, then maintained as
// D changes, so bounded plans always read fresh V(D) without
// recomputation.
//
// It is a convenience wrapper over DeltaEngine, the counting-based
// (multiset) maintenance core: both insertions and deletions apply
// incremental deltas through join indexes, so a deletion costs what the
// retracted tuple's residual joins touch — not a full refresh. For batched
// updates and the always-fresh serving path use the facade's Live handle,
// which drives the same engine together with the fetch indices and
// prepared plan views.
type Maintainer struct {
	DB     *instance.Database
	engine *DeltaEngine
}

// NewMaintainer materializes the views once and begins maintaining them.
func NewMaintainer(db *instance.Database, views map[string]*cq.UCQ) (*Maintainer, error) {
	e, err := NewDeltaEngine(db, views)
	if err != nil {
		return nil, err
	}
	return &Maintainer{DB: db, engine: e}, nil
}

// Engine exposes the underlying delta engine (interned extents, batch
// Apply).
func (m *Maintainer) Engine() *DeltaEngine { return m.engine }

// Views returns the current extents, usable directly as plan.Materialized.
// The maps and rows are fresh decodes; mutating them does not affect the
// maintainer.
func (m *Maintainer) Views() map[string][][]string { return m.engine.Views() }

// Insert adds a tuple to the database and applies the view deltas.
func (m *Maintainer) Insert(rel string, row ...string) error {
	a, err := m.DB.ApplyDelta([]instance.Op{{Rel: rel, Row: instance.Tuple(row)}}, nil)
	if err != nil {
		return err
	}
	_, err = m.engine.Apply(a)
	return err
}

// Delete removes all copies of a tuple from the database and incrementally
// retracts the view rows that lost their last derivation. Counting-based:
// no view refresh, no matter how large D is.
func (m *Maintainer) Delete(rel string, row ...string) error {
	tbl := m.DB.Table(rel)
	if tbl == nil {
		return fmt.Errorf("eval: no relation %s", rel)
	}
	n := tbl.Count(row...)
	if n == 0 {
		return nil // nothing to delete
	}
	dels := make([]instance.Op, n)
	for i := range dels {
		dels[i] = instance.Op{Rel: rel, Row: instance.Tuple(row)}
	}
	a, err := m.DB.ApplyDelta(nil, dels)
	if err != nil {
		return err
	}
	_, err = m.engine.Apply(a)
	return err
}
