package eval

import (
	"fmt"

	"repro/internal/cq"
	"repro/internal/instance"
)

// Maintainer keeps a set of cached views incrementally consistent with a
// database under tuple insertions — the "incremental precomputation" the
// paper's practical story builds on (Armbrust et al., cited in §1/§7):
// views are selected and cached once, then maintained as D grows, so
// bounded plans always read fresh V(D) without recomputation.
//
// Insertions use the standard delta rule for set semantics: when t enters
// relation R, each view atom over R is bound to t in turn and the
// residual query is evaluated over the updated database; the union of the
// residual answers is the view delta. Deletions are supported by full
// refresh of the affected views (counting-based deletion is not needed by
// the append-mostly workloads the paper targets; Refresh documents the
// cost honestly instead of hiding it).
type Maintainer struct {
	DB    *instance.Database
	defs  map[string]*cq.UCQ
	rows  map[string][][]string      // view name -> extent
	index map[string]map[string]bool // view name -> row-key set
}

// NewMaintainer materializes the views once and begins maintaining them.
func NewMaintainer(db *instance.Database, views map[string]*cq.UCQ) (*Maintainer, error) {
	m := &Maintainer{
		DB:    db,
		defs:  make(map[string]*cq.UCQ, len(views)),
		rows:  map[string][][]string{},
		index: map[string]map[string]bool{},
	}
	for name, def := range views {
		m.defs[name] = def
	}
	for name := range m.defs {
		if err := m.refreshOne(name); err != nil {
			return nil, err
		}
	}
	return m, nil
}

// Views returns the current extents, usable directly as plan.Materialized.
func (m *Maintainer) Views() map[string][][]string { return m.rows }

// Insert adds a tuple to the database and applies the view deltas.
func (m *Maintainer) Insert(rel string, row ...string) error {
	if err := m.DB.Insert(rel, row...); err != nil {
		return err
	}
	t := instance.Tuple(row)
	for name, def := range m.defs {
		for _, d := range def.Disjuncts {
			delta, err := m.deltaCQ(d, rel, t)
			if err != nil {
				return fmt.Errorf("eval: maintaining %s: %w", name, err)
			}
			for _, r := range delta {
				k := instance.Tuple(r).Key()
				if !m.index[name][k] {
					m.index[name][k] = true
					m.rows[name] = append(m.rows[name], r)
				}
			}
		}
	}
	return nil
}

// Delete removes (all copies of) a tuple from the database and refreshes
// the views whose definitions mention the relation. O(eval) — documented
// cost of deletions under set semantics without counting.
func (m *Maintainer) Delete(rel string, row ...string) error {
	tbl := m.DB.Table(rel)
	if tbl == nil {
		return fmt.Errorf("eval: no relation %s", rel)
	}
	if tbl.DeleteAll(row...) == 0 {
		return nil // nothing deleted
	}
	for name, def := range m.defs {
		if mentions(def, rel) {
			if err := m.refreshOne(name); err != nil {
				return err
			}
		}
	}
	return nil
}

// deltaCQ evaluates the disjunct with each rel-atom bound to the new
// tuple. Binding an atom specializes its variables to t's values (constant
// mismatches kill the branch); the residual query runs over the already
// updated database, which realizes the set-semantics delta rule.
func (m *Maintainer) deltaCQ(d *cq.CQ, rel string, t instance.Tuple) ([][]string, error) {
	var out [][]string
	for i, a := range d.Atoms {
		if a.Rel != rel || len(a.Args) != len(t) {
			continue
		}
		bound := d.Clone()
		ok := true
		for j, term := range a.Args {
			if term.Const {
				if term.Val != t[j] {
					ok = false
					break
				}
				continue
			}
			bound.Eqs = append(bound.Eqs, cq.Equality{L: term, R: cq.Cst(t[j])})
		}
		if !ok {
			continue
		}
		// Drop the bound atom? No: keep it — the tuple is in the database
		// already, and repeated variables inside the atom must still be
		// checked. (Keeping it is correct and simpler; it matches t only.)
		_ = i
		rows, err := CQOnDB(bound, &Source{DB: m.DB})
		if err != nil {
			return nil, err
		}
		out = append(out, rows...)
	}
	return out, nil
}

func (m *Maintainer) refreshOne(name string) error {
	rows, err := UCQOnDB(m.defs[name], &Source{DB: m.DB})
	if err != nil {
		return err
	}
	m.rows[name] = rows
	ix := make(map[string]bool, len(rows))
	for _, r := range rows {
		ix[instance.Tuple(r).Key()] = true
	}
	m.index[name] = ix
	return nil
}

func mentions(def *cq.UCQ, rel string) bool {
	for _, d := range def.Disjuncts {
		for _, a := range d.Atoms {
			if a.Rel == rel {
				return true
			}
		}
	}
	return false
}
