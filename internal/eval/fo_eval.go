package eval

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/cq"
	"repro/internal/fo"
	"repro/internal/intern"
)

// relation is an intermediate FO-evaluation result: a set of ID-encoded
// rows over named columns (sorted column order).
type relation struct {
	cols []string
	rows [][]uint32
}

// FOOnDB evaluates a safe-range FO query over the source with set
// semantics. Universal quantifiers and implications are desugared first.
// It returns an error when the formula falls outside the supported
// safe-range discipline (e.g. a negation whose free variables are not
// bound by a positive conjunct).
func FOOnDB(q *fo.Query, src *Source) ([][]string, error) {
	body := fo.Desugar(fo.Rectify(q.Body))
	rel, err := evalExpr(body, src)
	if err != nil {
		return nil, err
	}
	// Align columns to the head order.
	pos := make([]int, len(q.Head))
	for i, h := range q.Head {
		p := indexOfStr(rel.cols, h)
		if p < 0 {
			return nil, fmt.Errorf("eval: head variable %s not produced by the body", h)
		}
		pos[i] = p
	}
	seen := intern.NewSet(len(rel.rows))
	var out [][]uint32
	for _, r := range rel.rows {
		row := intern.Project(r, pos)
		if seen.Add(row) {
			out = append(out, row)
		}
	}
	return src.Dict().DecodeAll(out), nil
}

func evalExpr(e fo.Expr, src *Source) (*relation, error) {
	switch x := e.(type) {
	case *fo.Atom:
		return evalAtom(x, src)
	case *fo.Or:
		l, err := evalExpr(x.L, src)
		if err != nil {
			return nil, err
		}
		r, err := evalExpr(x.R, src)
		if err != nil {
			return nil, err
		}
		return unionRel(l, r)
	case *fo.Exists:
		inner, err := evalExpr(x.E, src)
		if err != nil {
			return nil, err
		}
		return projectOut(inner, x.Vars), nil
	case *fo.And:
		return evalAnd(conjunctList(x), src)
	case *fo.Cmp:
		// A bare comparison: only const=const is domain-independent.
		if x.L.Const && x.R.Const {
			ok := (x.L.Val == x.R.Val) != x.Neq
			rel := &relation{}
			if ok {
				rel.rows = [][]uint32{{}}
			}
			return rel, nil
		}
		return nil, fmt.Errorf("eval: comparison %s is not range-restricted outside a conjunction", x)
	case *fo.Not:
		// A bare negation of a closed formula.
		if len(x.E.FreeVars()) == 0 {
			inner, err := evalExpr(x.E, src)
			if err != nil {
				return nil, err
			}
			rel := &relation{}
			if len(inner.rows) == 0 {
				rel.rows = [][]uint32{{}}
			}
			return rel, nil
		}
		// Negation with free variables outside a conjunction: complement
		// relative to the active domain (classical active-domain
		// semantics; sound for domain-independent formulas such as the
		// size-bounded guards of Section 5.3).
		return complementRel(x.E, src)
	default:
		return nil, fmt.Errorf("eval: unsupported formula %T (desugar first)", e)
	}
}

// evalAnd evaluates a conjunction with the RANF discipline: positive
// relational conjuncts join first; equalities extend or filter;
// inequalities filter; negations anti-join once their variables are bound.
func evalAnd(conj []fo.Expr, src *Source) (*relation, error) {
	var positives []fo.Expr
	var cmps []*fo.Cmp
	var negs []fo.Expr
	for _, c := range conj {
		switch y := c.(type) {
		case *fo.Cmp:
			cmps = append(cmps, y)
		case *fo.Not:
			negs = append(negs, y.E)
		default:
			positives = append(positives, c)
		}
	}
	cur := &relation{rows: [][]uint32{{}}}
	var err error
	for _, p := range positives {
		var rel *relation
		rel, err = evalExpr(p, src)
		if err != nil {
			return nil, err
		}
		cur = joinRel(cur, rel)
	}
	// Apply equality extensions repeatedly until fixpoint, then filters.
	pending := append([]*fo.Cmp(nil), cmps...)
	for {
		progressed := false
		var rest []*fo.Cmp
		for _, c := range pending {
			applied, err2 := applyCmp(cur, c, src)
			if err2 != nil {
				return nil, err2
			}
			if applied {
				progressed = true
			} else {
				rest = append(rest, c)
			}
		}
		pending = rest
		if len(pending) == 0 {
			break
		}
		if !progressed {
			return nil, fmt.Errorf("eval: comparison %s over unbound variables", pending[0])
		}
	}
	for _, neg := range negs {
		cur, err = antiJoin(cur, neg, src)
		if err != nil {
			return nil, err
		}
	}
	return cur, nil
}

// applyCmp applies one comparison to the relation if its variables permit:
// filter when both sides are bound (or constants); extend when an equality
// has exactly one bound/constant side. Returns false when neither side is
// available yet.
func applyCmp(cur *relation, c *fo.Cmp, src *Source) (bool, error) {
	d := src.Dict()
	lBound := c.L.Const || indexOfStr(cur.cols, c.L.Val) >= 0
	rBound := c.R.Const || indexOfStr(cur.cols, c.R.Val) >= 0
	val := func(row []uint32, t cq.Term) uint32 {
		if t.Const {
			return d.ID(t.Val)
		}
		return row[indexOfStr(cur.cols, t.Val)]
	}
	switch {
	case lBound && rBound:
		var kept [][]uint32
		for _, r := range cur.rows {
			if (val(r, c.L) == val(r, c.R)) != c.Neq {
				kept = append(kept, r)
			}
		}
		cur.rows = kept
		return true, nil
	case c.Neq:
		return false, nil // ≠ can only filter
	case lBound && !rBound:
		cur.cols = append(cur.cols, c.R.Val)
		for i, r := range cur.rows {
			cur.rows[i] = append(r, val(r, c.L))
		}
		return true, nil
	case rBound && !lBound:
		cur.cols = append(cur.cols, c.L.Val)
		for i, r := range cur.rows {
			cur.rows[i] = append(r, val(r, c.R))
		}
		return true, nil
	default:
		return false, nil
	}
}

// antiJoin removes rows for which the negated formula holds. The negated
// formula's free variables must all be bound by cur (safe-range condition).
func antiJoin(cur *relation, neg fo.Expr, src *Source) (*relation, error) {
	fv := neg.FreeVars()
	pos := make([]int, len(fv))
	for i, v := range fv {
		p := indexOfStr(cur.cols, v)
		if p < 0 {
			return nil, fmt.Errorf("eval: negation variable %s not bound by positive part", v)
		}
		pos[i] = p
	}
	rel, err := evalExpr(neg, src)
	if err != nil {
		return nil, err
	}
	// Key the negated relation on fv order.
	npos := make([]int, len(fv))
	for i, v := range fv {
		p := indexOfStr(rel.cols, v)
		if p < 0 {
			return nil, fmt.Errorf("eval: negated formula does not produce variable %s", v)
		}
		npos[i] = p
	}
	bad := intern.NewSet(len(rel.rows))
	for _, r := range rel.rows {
		bad.AddProj(r, npos)
	}
	var kept [][]uint32
	for _, r := range cur.rows {
		if !bad.HasAt(r, pos) {
			kept = append(kept, r)
		}
	}
	return &relation{cols: cur.cols, rows: kept}, nil
}

// maxComplementRows caps the size of active-domain complements.
const maxComplementRows = 4_000_000

// complementRel evaluates ¬E over the active domain: it enumerates all
// assignments of E's free variables over the active domain and keeps those
// under which E is false, deciding E by direct model checking. This is the
// classical active-domain semantics; it is sound for domain-independent
// formulas such as the size-bounded guards of Section 5.3.
func complementRel(e fo.Expr, src *Source) (*relation, error) {
	fv := e.FreeVars()
	dom := activeDomain(src)
	total := 1
	for range fv {
		if total > maxComplementRows/max(1, len(dom)) {
			return nil, fmt.Errorf("eval: active-domain complement of %s too large", e)
		}
		total *= max(1, len(dom))
	}
	mc := newModelChecker(src, dom)
	out := &relation{cols: fv}
	bind := map[string]uint32{}
	row := make([]uint32, len(fv))
	var rec func(i int) error
	rec = func(i int) error {
		if i == len(fv) {
			ok, err := mc.holds(e, bind)
			if err != nil {
				return err
			}
			if !ok {
				out.rows = append(out.rows, append([]uint32(nil), row...))
			}
			return nil
		}
		for _, v := range dom {
			row[i] = v
			bind[fv[i]] = v
			if err := rec(i + 1); err != nil {
				return err
			}
		}
		delete(bind, fv[i])
		return nil
	}
	if err := rec(0); err != nil {
		return nil, err
	}
	return out, nil
}

// modelChecker decides FO formulas under complete variable bindings over
// the active domain. Values are interned IDs throughout.
type modelChecker struct {
	src  *Source
	dom  []uint32
	rels map[string]*intern.Set // relation -> ID-row set
}

func newModelChecker(src *Source, dom []uint32) *modelChecker {
	return &modelChecker{src: src, dom: dom, rels: map[string]*intern.Set{}}
}

func (m *modelChecker) rowSet(rel string) (*intern.Set, error) {
	if s, ok := m.rels[rel]; ok {
		return s, nil
	}
	rows, ok := m.src.IDRows(rel)
	if !ok {
		return nil, fmt.Errorf("eval: unknown relation %s", rel)
	}
	s := intern.NewSet(len(rows))
	for _, r := range rows {
		s.Add(r)
	}
	m.rels[rel] = s
	return s, nil
}

// holds decides e under bind; every free variable of e must be bound.
func (m *modelChecker) holds(e fo.Expr, bind map[string]uint32) (bool, error) {
	resolve := func(t cq.Term) (uint32, error) {
		if t.Const {
			return m.src.Dict().ID(t.Val), nil
		}
		v, ok := bind[t.Val]
		if !ok {
			return 0, fmt.Errorf("eval: unbound variable %s in model check", t.Val)
		}
		return v, nil
	}
	switch x := e.(type) {
	case *fo.Atom:
		set, err := m.rowSet(x.Rel)
		if err != nil {
			return false, err
		}
		row := make([]uint32, len(x.Args))
		for i, t := range x.Args {
			v, err := resolve(t)
			if err != nil {
				return false, err
			}
			row[i] = v
		}
		return set.Has(row), nil
	case *fo.Cmp:
		l, err := resolve(x.L)
		if err != nil {
			return false, err
		}
		r, err := resolve(x.R)
		if err != nil {
			return false, err
		}
		return (l == r) != x.Neq, nil
	case *fo.And:
		ok, err := m.holds(x.L, bind)
		if err != nil || !ok {
			return false, err
		}
		return m.holds(x.R, bind)
	case *fo.Or:
		ok, err := m.holds(x.L, bind)
		if err != nil || ok {
			return ok, err
		}
		return m.holds(x.R, bind)
	case *fo.Not:
		ok, err := m.holds(x.E, bind)
		return !ok, err
	case *fo.Implies:
		ok, err := m.holds(x.A, bind)
		if err != nil {
			return false, err
		}
		if !ok {
			return true, nil
		}
		return m.holds(x.B, bind)
	case *fo.Exists:
		return m.quant(x.Vars, x.E, bind, false)
	case *fo.Forall:
		return m.quant(x.Vars, x.E, bind, true)
	default:
		return false, fmt.Errorf("eval: unknown formula %T", e)
	}
}

// quant enumerates assignments for the quantified variables; forall=false
// searches for a witness, forall=true for a counterexample.
func (m *modelChecker) quant(vars []string, e fo.Expr, bind map[string]uint32, forall bool) (bool, error) {
	var rec func(i int) (bool, error)
	rec = func(i int) (bool, error) {
		if i == len(vars) {
			ok, err := m.holds(e, bind)
			if err != nil {
				return false, err
			}
			return ok != forall, nil // witness (∃) or counterexample (∀)
		}
		saved, had := bind[vars[i]]
		for _, v := range m.dom {
			bind[vars[i]] = v
			found, err := rec(i + 1)
			if err != nil {
				return false, err
			}
			if found {
				if had {
					bind[vars[i]] = saved
				} else {
					delete(bind, vars[i])
				}
				return true, nil
			}
		}
		if had {
			bind[vars[i]] = saved
		} else {
			delete(bind, vars[i])
		}
		return false, nil
	}
	found, err := rec(0)
	if err != nil {
		return false, err
	}
	return found != forall, nil // ∃: found witness; ∀: no counterexample
}

// activeDomain collects every value in the source (database and views) as
// interned IDs, sorted by string value for deterministic enumeration.
func activeDomain(src *Source) []uint32 {
	d := src.Dict()
	seen := map[uint32]bool{}
	var out []uint32
	add := func(rows [][]uint32) {
		for _, r := range rows {
			for _, v := range r {
				if !seen[v] {
					seen[v] = true
					out = append(out, v)
				}
			}
		}
	}
	if src.DB != nil {
		for _, t := range src.DB.Tables {
			add(t.IDRows())
		}
	}
	for name := range src.Views {
		if rows, ok := src.IDRows(name); ok {
			add(rows)
		}
	}
	// Decode once (a single lock acquisition) and sort by the cached
	// strings instead of hitting the shared dictionary per comparison.
	names := d.Decode(out)
	sort.Sort(&domainSorter{ids: out, names: names})
	return out
}

// domainSorter sorts interned domain IDs by their string values, keeping
// the two slices aligned.
type domainSorter struct {
	ids   []uint32
	names []string
}

func (s *domainSorter) Len() int           { return len(s.ids) }
func (s *domainSorter) Less(i, j int) bool { return s.names[i] < s.names[j] }
func (s *domainSorter) Swap(i, j int) {
	s.ids[i], s.ids[j] = s.ids[j], s.ids[i]
	s.names[i], s.names[j] = s.names[j], s.names[i]
}

func evalAtom(a *fo.Atom, src *Source) (*relation, error) {
	rows, ok := src.IDRows(a.Rel)
	if !ok {
		return nil, fmt.Errorf("eval: unknown relation %s", a.Rel)
	}
	d := src.Dict()
	// Distinct variables in order of first occurrence.
	var cols []string
	var colPos []int
	first := map[string]int{}
	consts := make([]uint32, len(a.Args))
	for i, t := range a.Args {
		if t.Const {
			consts[i] = d.ID(t.Val)
			continue
		}
		if _, dup := first[t.Val]; !dup {
			first[t.Val] = i
			cols = append(cols, t.Val)
			colPos = append(colPos, i)
		}
	}
	out := &relation{cols: cols}
	seen := intern.NewSet(0) // constants typically filter most rows away
rowLoop:
	for _, r := range rows {
		if len(r) != len(a.Args) {
			continue
		}
		for i, t := range a.Args {
			if t.Const {
				if r[i] != consts[i] {
					continue rowLoop
				}
			} else if r[i] != r[first[t.Val]] {
				continue rowLoop
			}
		}
		row := intern.Project(r, colPos)
		if seen.Add(row) {
			out.rows = append(out.rows, row)
		}
	}
	return out, nil
}

func joinRel(l, r *relation) *relation {
	// Natural join on shared columns.
	var lpos, rpos []int
	for i, c := range r.cols {
		if p := indexOfStr(l.cols, c); p >= 0 {
			lpos = append(lpos, p)
			rpos = append(rpos, i)
		}
	}
	var extraCols []string
	var extraPos []int
	for i, c := range r.cols {
		if indexOfStr(l.cols, c) < 0 {
			extraCols = append(extraCols, c)
			extraPos = append(extraPos, i)
		}
	}
	index := intern.NewIndex(len(r.rows))
	for _, row := range r.rows {
		index.AddAt(row, rpos)
	}
	out := &relation{cols: append(append([]string{}, l.cols...), extraCols...)}
	for _, lrow := range l.rows {
		for _, rrow := range index.GetAt(lrow, lpos) {
			row := make([]uint32, 0, len(lrow)+len(extraPos))
			row = append(row, lrow...)
			for _, p := range extraPos {
				row = append(row, rrow[p])
			}
			out.rows = append(out.rows, row)
		}
	}
	return out
}

func unionRel(l, r *relation) (*relation, error) {
	ls := append([]string(nil), l.cols...)
	rs := append([]string(nil), r.cols...)
	sort.Strings(ls)
	sort.Strings(rs)
	if strings.Join(ls, ",") != strings.Join(rs, ",") {
		return nil, fmt.Errorf("eval: union of incompatible column sets %v and %v", l.cols, r.cols)
	}
	pos := make([]int, len(l.cols))
	for i, c := range l.cols {
		pos[i] = indexOfStr(r.cols, c)
	}
	seen := intern.NewSet(len(l.rows) + len(r.rows))
	out := &relation{cols: l.cols}
	for _, row := range l.rows {
		if seen.Add(row) {
			out.rows = append(out.rows, row)
		}
	}
	for _, rr := range r.rows {
		row := intern.Project(rr, pos)
		if seen.Add(row) {
			out.rows = append(out.rows, row)
		}
	}
	return out, nil
}

func projectOut(rel *relation, vars []string) *relation {
	drop := map[string]bool{}
	for _, v := range vars {
		drop[v] = true
	}
	var cols []string
	var pos []int
	for i, c := range rel.cols {
		if !drop[c] {
			cols = append(cols, c)
			pos = append(pos, i)
		}
	}
	out := &relation{cols: cols}
	seen := intern.NewSet(len(rel.rows))
	for _, r := range rel.rows {
		row := intern.Project(r, pos)
		if seen.Add(row) {
			out.rows = append(out.rows, row)
		}
	}
	return out
}

func conjunctList(e fo.Expr) []fo.Expr {
	if a, ok := e.(*fo.And); ok {
		return append(conjunctList(a.L), conjunctList(a.R)...)
	}
	return []fo.Expr{e}
}

func indexOfStr(xs []string, s string) int {
	for i, x := range xs {
		if x == s {
			return i
		}
	}
	return -1
}
