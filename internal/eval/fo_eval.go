package eval

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/cq"
	"repro/internal/fo"
	"repro/internal/instance"
)

// relation is an intermediate FO-evaluation result: a set of rows over
// named columns (sorted column order).
type relation struct {
	cols []string
	rows [][]string
}

func (r *relation) key(row []string) string { return instance.Tuple(row).Key() }

// FOOnDB evaluates a safe-range FO query over the source with set
// semantics. Universal quantifiers and implications are desugared first.
// It returns an error when the formula falls outside the supported
// safe-range discipline (e.g. a negation whose free variables are not
// bound by a positive conjunct).
func FOOnDB(q *fo.Query, src *Source) ([][]string, error) {
	body := fo.Desugar(fo.Rectify(q.Body))
	rel, err := evalExpr(body, src)
	if err != nil {
		return nil, err
	}
	// Align columns to the head order.
	pos := make([]int, len(q.Head))
	for i, h := range q.Head {
		p := indexOfStr(rel.cols, h)
		if p < 0 {
			return nil, fmt.Errorf("eval: head variable %s not produced by the body", h)
		}
		pos[i] = p
	}
	seen := map[string]bool{}
	var out [][]string
	for _, r := range rel.rows {
		row := make([]string, len(pos))
		for i, p := range pos {
			row[i] = r[p]
		}
		k := instance.Tuple(row).Key()
		if !seen[k] {
			seen[k] = true
			out = append(out, row)
		}
	}
	return out, nil
}

func evalExpr(e fo.Expr, src *Source) (*relation, error) {
	switch x := e.(type) {
	case *fo.Atom:
		return evalAtom(x, src)
	case *fo.Or:
		l, err := evalExpr(x.L, src)
		if err != nil {
			return nil, err
		}
		r, err := evalExpr(x.R, src)
		if err != nil {
			return nil, err
		}
		return unionRel(l, r)
	case *fo.Exists:
		inner, err := evalExpr(x.E, src)
		if err != nil {
			return nil, err
		}
		return projectOut(inner, x.Vars), nil
	case *fo.And:
		return evalAnd(conjunctList(x), src)
	case *fo.Cmp:
		// A bare comparison: only const=const is domain-independent.
		if x.L.Const && x.R.Const {
			ok := (x.L.Val == x.R.Val) != x.Neq
			rel := &relation{}
			if ok {
				rel.rows = [][]string{{}}
			}
			return rel, nil
		}
		return nil, fmt.Errorf("eval: comparison %s is not range-restricted outside a conjunction", x)
	case *fo.Not:
		// A bare negation of a closed formula.
		if len(x.E.FreeVars()) == 0 {
			inner, err := evalExpr(x.E, src)
			if err != nil {
				return nil, err
			}
			rel := &relation{}
			if len(inner.rows) == 0 {
				rel.rows = [][]string{{}}
			}
			return rel, nil
		}
		// Negation with free variables outside a conjunction: complement
		// relative to the active domain (classical active-domain
		// semantics; sound for domain-independent formulas such as the
		// size-bounded guards of Section 5.3).
		return complementRel(x.E, src)
	default:
		return nil, fmt.Errorf("eval: unsupported formula %T (desugar first)", e)
	}
}

// evalAnd evaluates a conjunction with the RANF discipline: positive
// relational conjuncts join first; equalities extend or filter;
// inequalities filter; negations anti-join once their variables are bound.
func evalAnd(conj []fo.Expr, src *Source) (*relation, error) {
	var positives []fo.Expr
	var cmps []*fo.Cmp
	var negs []fo.Expr
	for _, c := range conj {
		switch y := c.(type) {
		case *fo.Cmp:
			cmps = append(cmps, y)
		case *fo.Not:
			negs = append(negs, y.E)
		default:
			positives = append(positives, c)
		}
	}
	cur := &relation{rows: [][]string{{}}}
	var err error
	for _, p := range positives {
		var rel *relation
		rel, err = evalExpr(p, src)
		if err != nil {
			return nil, err
		}
		cur = joinRel(cur, rel)
	}
	// Apply equality extensions repeatedly until fixpoint, then filters.
	pending := append([]*fo.Cmp(nil), cmps...)
	for {
		progressed := false
		var rest []*fo.Cmp
		for _, c := range pending {
			applied, err2 := applyCmp(cur, c)
			if err2 != nil {
				return nil, err2
			}
			if applied {
				progressed = true
			} else {
				rest = append(rest, c)
			}
		}
		pending = rest
		if len(pending) == 0 {
			break
		}
		if !progressed {
			return nil, fmt.Errorf("eval: comparison %s over unbound variables", pending[0])
		}
	}
	for _, neg := range negs {
		cur, err = antiJoin(cur, neg, src)
		if err != nil {
			return nil, err
		}
	}
	return cur, nil
}

// applyCmp applies one comparison to the relation if its variables permit:
// filter when both sides are bound (or constants); extend when an equality
// has exactly one bound/constant side. Returns false when neither side is
// available yet.
func applyCmp(cur *relation, c *fo.Cmp) (bool, error) {
	lBound := c.L.Const || indexOfStr(cur.cols, c.L.Val) >= 0
	rBound := c.R.Const || indexOfStr(cur.cols, c.R.Val) >= 0
	val := func(row []string, t cq.Term) string {
		if t.Const {
			return t.Val
		}
		return row[indexOfStr(cur.cols, t.Val)]
	}
	switch {
	case lBound && rBound:
		var kept [][]string
		for _, r := range cur.rows {
			if (val(r, c.L) == val(r, c.R)) != c.Neq {
				kept = append(kept, r)
			}
		}
		cur.rows = kept
		return true, nil
	case c.Neq:
		return false, nil // ≠ can only filter
	case lBound && !rBound:
		cur.cols = append(cur.cols, c.R.Val)
		for i, r := range cur.rows {
			cur.rows[i] = append(r, val(r, c.L))
		}
		return true, nil
	case rBound && !lBound:
		cur.cols = append(cur.cols, c.L.Val)
		for i, r := range cur.rows {
			cur.rows[i] = append(r, val(r, c.R))
		}
		return true, nil
	default:
		return false, nil
	}
}

// antiJoin removes rows for which the negated formula holds. The negated
// formula's free variables must all be bound by cur (safe-range condition).
func antiJoin(cur *relation, neg fo.Expr, src *Source) (*relation, error) {
	fv := neg.FreeVars()
	pos := make([]int, len(fv))
	for i, v := range fv {
		p := indexOfStr(cur.cols, v)
		if p < 0 {
			return nil, fmt.Errorf("eval: negation variable %s not bound by positive part", v)
		}
		pos[i] = p
	}
	rel, err := evalExpr(neg, src)
	if err != nil {
		return nil, err
	}
	// Key the negated relation on fv order.
	npos := make([]int, len(fv))
	for i, v := range fv {
		p := indexOfStr(rel.cols, v)
		if p < 0 {
			return nil, fmt.Errorf("eval: negated formula does not produce variable %s", v)
		}
		npos[i] = p
	}
	bad := map[string]bool{}
	for _, r := range rel.rows {
		var b strings.Builder
		for _, p := range npos {
			b.WriteString(r[p])
			b.WriteByte(0x1f)
		}
		bad[b.String()] = true
	}
	var kept [][]string
	for _, r := range cur.rows {
		var b strings.Builder
		for _, p := range pos {
			b.WriteString(r[p])
			b.WriteByte(0x1f)
		}
		if !bad[b.String()] {
			kept = append(kept, r)
		}
	}
	return &relation{cols: cur.cols, rows: kept}, nil
}

// maxComplementRows caps the size of active-domain complements.
const maxComplementRows = 4_000_000

// complementRel evaluates ¬E over the active domain: it enumerates all
// assignments of E's free variables over the active domain and keeps those
// under which E is false, deciding E by direct model checking. This is the
// classical active-domain semantics; it is sound for domain-independent
// formulas such as the size-bounded guards of Section 5.3.
func complementRel(e fo.Expr, src *Source) (*relation, error) {
	fv := e.FreeVars()
	dom := activeDomain(src)
	total := 1
	for range fv {
		if total > maxComplementRows/max(1, len(dom)) {
			return nil, fmt.Errorf("eval: active-domain complement of %s too large", e)
		}
		total *= max(1, len(dom))
	}
	mc := newModelChecker(src, dom)
	out := &relation{cols: fv}
	bind := map[string]string{}
	row := make([]string, len(fv))
	var rec func(i int) error
	rec = func(i int) error {
		if i == len(fv) {
			ok, err := mc.holds(e, bind)
			if err != nil {
				return err
			}
			if !ok {
				out.rows = append(out.rows, append([]string(nil), row...))
			}
			return nil
		}
		for _, v := range dom {
			row[i] = v
			bind[fv[i]] = v
			if err := rec(i + 1); err != nil {
				return err
			}
		}
		delete(bind, fv[i])
		return nil
	}
	if err := rec(0); err != nil {
		return nil, err
	}
	return out, nil
}

// modelChecker decides FO formulas under complete variable bindings over
// the active domain.
type modelChecker struct {
	src  *Source
	dom  []string
	rels map[string]map[string]bool // relation -> row-key set
}

func newModelChecker(src *Source, dom []string) *modelChecker {
	return &modelChecker{src: src, dom: dom, rels: map[string]map[string]bool{}}
}

func (m *modelChecker) rowSet(rel string) (map[string]bool, error) {
	if s, ok := m.rels[rel]; ok {
		return s, nil
	}
	rows, ok := m.src.Rows(rel)
	if !ok {
		return nil, fmt.Errorf("eval: unknown relation %s", rel)
	}
	s := make(map[string]bool, len(rows))
	for _, r := range rows {
		s[instance.Tuple(r).Key()] = true
	}
	m.rels[rel] = s
	return s, nil
}

// holds decides e under bind; every free variable of e must be bound.
func (m *modelChecker) holds(e fo.Expr, bind map[string]string) (bool, error) {
	resolve := func(t cq.Term) (string, error) {
		if t.Const {
			return t.Val, nil
		}
		v, ok := bind[t.Val]
		if !ok {
			return "", fmt.Errorf("eval: unbound variable %s in model check", t.Val)
		}
		return v, nil
	}
	switch x := e.(type) {
	case *fo.Atom:
		set, err := m.rowSet(x.Rel)
		if err != nil {
			return false, err
		}
		row := make([]string, len(x.Args))
		for i, t := range x.Args {
			v, err := resolve(t)
			if err != nil {
				return false, err
			}
			row[i] = v
		}
		return set[instance.Tuple(row).Key()], nil
	case *fo.Cmp:
		l, err := resolve(x.L)
		if err != nil {
			return false, err
		}
		r, err := resolve(x.R)
		if err != nil {
			return false, err
		}
		return (l == r) != x.Neq, nil
	case *fo.And:
		ok, err := m.holds(x.L, bind)
		if err != nil || !ok {
			return false, err
		}
		return m.holds(x.R, bind)
	case *fo.Or:
		ok, err := m.holds(x.L, bind)
		if err != nil || ok {
			return ok, err
		}
		return m.holds(x.R, bind)
	case *fo.Not:
		ok, err := m.holds(x.E, bind)
		return !ok, err
	case *fo.Implies:
		ok, err := m.holds(x.A, bind)
		if err != nil {
			return false, err
		}
		if !ok {
			return true, nil
		}
		return m.holds(x.B, bind)
	case *fo.Exists:
		return m.quant(x.Vars, x.E, bind, false)
	case *fo.Forall:
		return m.quant(x.Vars, x.E, bind, true)
	default:
		return false, fmt.Errorf("eval: unknown formula %T", e)
	}
}

// quant enumerates assignments for the quantified variables; forall=false
// searches for a witness, forall=true for a counterexample.
func (m *modelChecker) quant(vars []string, e fo.Expr, bind map[string]string, forall bool) (bool, error) {
	var rec func(i int) (bool, error)
	rec = func(i int) (bool, error) {
		if i == len(vars) {
			ok, err := m.holds(e, bind)
			if err != nil {
				return false, err
			}
			return ok != forall, nil // witness (∃) or counterexample (∀)
		}
		saved, had := bind[vars[i]]
		for _, v := range m.dom {
			bind[vars[i]] = v
			found, err := rec(i + 1)
			if err != nil {
				return false, err
			}
			if found {
				if had {
					bind[vars[i]] = saved
				} else {
					delete(bind, vars[i])
				}
				return true, nil
			}
		}
		if had {
			bind[vars[i]] = saved
		} else {
			delete(bind, vars[i])
		}
		return false, nil
	}
	found, err := rec(0)
	if err != nil {
		return false, err
	}
	return found != forall, nil // ∃: found witness; ∀: no counterexample
}

// activeDomain collects every value in the source (database and views).
func activeDomain(src *Source) []string {
	seen := map[string]bool{}
	var out []string
	add := func(rows [][]string) {
		for _, r := range rows {
			for _, v := range r {
				if !seen[v] {
					seen[v] = true
					out = append(out, v)
				}
			}
		}
	}
	if src.DB != nil {
		for _, t := range src.DB.Tables {
			rows := make([][]string, len(t.Tuples))
			for i, tu := range t.Tuples {
				rows[i] = tu
			}
			add(rows)
		}
	}
	for _, rows := range src.Views {
		add(rows)
	}
	sort.Strings(out)
	return out
}

func evalAtom(a *fo.Atom, src *Source) (*relation, error) {
	rows, ok := src.Rows(a.Rel)
	if !ok {
		return nil, fmt.Errorf("eval: unknown relation %s", a.Rel)
	}
	// Distinct variables in order of first occurrence.
	var cols []string
	first := map[string]int{}
	for i, t := range a.Args {
		if !t.Const {
			if _, dup := first[t.Val]; !dup {
				first[t.Val] = i
				cols = append(cols, t.Val)
			}
		}
	}
	out := &relation{cols: cols}
rowLoop:
	for _, r := range rows {
		if len(r) != len(a.Args) {
			continue
		}
		for i, t := range a.Args {
			if t.Const {
				if r[i] != t.Val {
					continue rowLoop
				}
			} else if r[i] != r[first[t.Val]] {
				continue rowLoop
			}
		}
		row := make([]string, len(cols))
		for j, c := range cols {
			row[j] = r[first[c]]
		}
		out.rows = append(out.rows, row)
	}
	out.rows = dedupeRows(out.rows)
	return out, nil
}

func joinRel(l, r *relation) *relation {
	// Natural join on shared columns.
	var shared []string
	for _, c := range r.cols {
		if indexOfStr(l.cols, c) >= 0 {
			shared = append(shared, c)
		}
	}
	lpos := make([]int, len(shared))
	rpos := make([]int, len(shared))
	for i, c := range shared {
		lpos[i] = indexOfStr(l.cols, c)
		rpos[i] = indexOfStr(r.cols, c)
	}
	var extraCols []string
	var extraPos []int
	for i, c := range r.cols {
		if indexOfStr(l.cols, c) < 0 {
			extraCols = append(extraCols, c)
			extraPos = append(extraPos, i)
		}
	}
	index := map[string][][]string{}
	for _, row := range r.rows {
		var b strings.Builder
		for _, p := range rpos {
			b.WriteString(row[p])
			b.WriteByte(0x1f)
		}
		index[b.String()] = append(index[b.String()], row)
	}
	out := &relation{cols: append(append([]string{}, l.cols...), extraCols...)}
	for _, lrow := range l.rows {
		var b strings.Builder
		for _, p := range lpos {
			b.WriteString(lrow[p])
			b.WriteByte(0x1f)
		}
		for _, rrow := range index[b.String()] {
			row := make([]string, 0, len(lrow)+len(extraPos))
			row = append(row, lrow...)
			for _, p := range extraPos {
				row = append(row, rrow[p])
			}
			out.rows = append(out.rows, row)
		}
	}
	return out
}

func unionRel(l, r *relation) (*relation, error) {
	ls := append([]string(nil), l.cols...)
	rs := append([]string(nil), r.cols...)
	sort.Strings(ls)
	sort.Strings(rs)
	if strings.Join(ls, ",") != strings.Join(rs, ",") {
		return nil, fmt.Errorf("eval: union of incompatible column sets %v and %v", l.cols, r.cols)
	}
	pos := make([]int, len(l.cols))
	for i, c := range l.cols {
		pos[i] = indexOfStr(r.cols, c)
	}
	out := &relation{cols: l.cols, rows: append([][]string{}, l.rows...)}
	for _, rr := range r.rows {
		row := make([]string, len(pos))
		for i, p := range pos {
			row[i] = rr[p]
		}
		out.rows = append(out.rows, row)
	}
	out.rows = dedupeRows(out.rows)
	return out, nil
}

func projectOut(rel *relation, vars []string) *relation {
	drop := map[string]bool{}
	for _, v := range vars {
		drop[v] = true
	}
	var cols []string
	var pos []int
	for i, c := range rel.cols {
		if !drop[c] {
			cols = append(cols, c)
			pos = append(pos, i)
		}
	}
	out := &relation{cols: cols}
	for _, r := range rel.rows {
		row := make([]string, len(pos))
		for i, p := range pos {
			row[i] = r[p]
		}
		out.rows = append(out.rows, row)
	}
	out.rows = dedupeRows(out.rows)
	return out
}

func dedupeRows(rows [][]string) [][]string {
	seen := make(map[string]bool, len(rows))
	out := rows[:0:0]
	for _, r := range rows {
		k := instance.Tuple(r).Key()
		if !seen[k] {
			seen[k] = true
			out = append(out, r)
		}
	}
	return out
}

func conjunctList(e fo.Expr) []fo.Expr {
	if a, ok := e.(*fo.And); ok {
		return append(conjunctList(a.L), conjunctList(a.R)...)
	}
	return []fo.Expr{e}
}

func indexOfStr(xs []string, s string) int {
	for i, x := range xs {
		if x == s {
			return i
		}
	}
	return -1
}
