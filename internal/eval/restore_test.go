package eval

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/cq"
	"repro/internal/instance"
	"repro/internal/intern"
)

// TestDeltaEngineRestoreDifferential is the checkpoint/restore harness for
// the engine's recovery fast path: build an engine, churn it, serialize
// exactly what a WAL checkpoint stores (dictionary strings, table ID
// shadows, counted extents), rebuild a second engine from that alone via
// NewDeltaEngineWithExtents, then drive BOTH engines with the identical
// remaining op stream — extents must agree batch for batch, and the
// restored engine must also agree with full recomputation at the end.
func TestDeltaEngineRestoreDifferential(t *testing.T) {
	const pool = 9
	for trial := 0; trial < 3; trial++ {
		rng := rand.New(rand.NewSource(int64(7700 + trial)))
		s := randViewSchema(rng)
		views := map[string]*cq.UCQ{}
		for v := 0; v < 2+rng.Intn(2); v++ {
			name := fmt.Sprintf("W%d", v)
			views[name] = randView(rng, s, name, pool)
		}
		db := instance.NewDatabase(s)
		for i := 0; i < 80; i++ {
			rel := s.Relations[rng.Intn(len(s.Relations))]
			db.MustInsert(rel.Name, randRow(rng, rel.Arity(), pool)...)
		}
		e, err := NewDeltaEngine(db, views)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}

		// Pre-generate the whole op stream so the two engines can replay
		// the identical suffix after the checkpoint.
		type batch struct{ ins, del []instance.Op }
		live := map[string][]instance.Tuple{}
		for _, rel := range s.Relations {
			for _, tu := range db.Table(rel.Name).Tuples {
				live[rel.Name] = append(live[rel.Name], tu.Clone())
			}
		}
		var batches []batch
		for op := 0; op < 600; op++ {
			rel := s.Relations[rng.Intn(len(s.Relations))]
			var b batch
			wantDelete := rng.Float64() < 0.45 || len(live[rel.Name]) > 160
			switch {
			case wantDelete && len(live[rel.Name]) > 0 && rng.Float64() < 0.9:
				i := rng.Intn(len(live[rel.Name]))
				row := live[rel.Name][i]
				live[rel.Name][i] = live[rel.Name][len(live[rel.Name])-1]
				live[rel.Name] = live[rel.Name][:len(live[rel.Name])-1]
				b.del = append(b.del, instance.Op{Rel: rel.Name, Row: row})
			case wantDelete:
				b.del = append(b.del, instance.Op{Rel: rel.Name, Row: randRow(rng, rel.Arity(), pool)})
			default:
				row := instance.Tuple(randRow(rng, rel.Arity(), pool))
				live[rel.Name] = append(live[rel.Name], row)
				b.ins = append(b.ins, instance.Op{Rel: rel.Name, Row: row})
			}
			batches = append(batches, b)
		}
		apply := func(db *instance.Database, e *DeltaEngine, b batch) {
			t.Helper()
			a, err := db.ApplyDelta(b.ins, b.del)
			if err != nil {
				t.Fatalf("trial %d: %v", trial, err)
			}
			if _, err := e.Apply(a); err != nil {
				t.Fatalf("trial %d: %v", trial, err)
			}
		}
		half := len(batches) / 2
		for _, b := range batches[:half] {
			apply(db, e, b)
		}

		// Checkpoint: dictionary prefix, ID shadows, counted extents — and
		// restore into a fresh database sharing nothing with the original.
		dict2, ok := intern.FromStrings(db.Dict.StringsRange(0, db.Dict.Len()))
		if !ok {
			t.Fatalf("trial %d: dictionary serialization has duplicates", trial)
		}
		db2 := instance.NewDatabaseWith(s, dict2)
		for _, rel := range s.Relations {
			if err := db2.RestoreRows(rel.Name, db.Table(rel.Name).IDRows()); err != nil {
				t.Fatalf("trial %d: restore %s: %v", trial, rel.Name, err)
			}
		}
		e2, err := NewDeltaEngineWithExtents(db2, views, e.CheckpointExtents())
		if err != nil {
			t.Fatalf("trial %d: restore engine: %v", trial, err)
		}
		if db2.Size() != db.Size() {
			t.Fatalf("trial %d: restored |D| = %d, want %d", trial, db2.Size(), db.Size())
		}
		compare := func(when string) {
			t.Helper()
			got, want := e2.Views(), e.Views()
			for name := range views {
				if !cq.RowsEqual(got[name], want[name]) {
					t.Fatalf("trial %d %s: view %s diverged: restored %d rows, original %d",
						trial, when, name, len(got[name]), len(want[name]))
				}
			}
		}
		compare("after restore")

		// Identical suffix into both engines: divergence anywhere means the
		// restored join state (indexes, supports, counts) is not equivalent.
		for i, b := range batches[half:] {
			apply(db, e, b)
			apply(db2, e2, b)
			if i%50 == 0 || i == len(batches[half:])-1 {
				compare(fmt.Sprintf("suffix batch %d", i))
			}
		}
		assertEngineFresh(t, e2, db2, views, true)
	}
}

// TestDeltaEngineRestoreRejectsCorruptExtents pins the cheap validation of
// the restore constructor: missing views, row/count length skew, arity
// drift, non-positive counts and repeated rows are all hard errors, never
// a silently wrong engine.
func TestDeltaEngineRestoreRejectsCorruptExtents(t *testing.T) {
	s := randViewSchema(rand.New(rand.NewSource(1)))
	rng := rand.New(rand.NewSource(2))
	views := map[string]*cq.UCQ{"W0": randView(rng, s, "W0", 4)}
	db := instance.NewDatabase(s)
	for i := 0; i < 40; i++ {
		rel := s.Relations[rng.Intn(len(s.Relations))]
		db.MustInsert(rel.Name, randRow(rng, rel.Arity(), 4)...)
	}
	e, err := NewDeltaEngine(db, views)
	if err != nil {
		t.Fatal(err)
	}
	good := e.CheckpointExtents()
	if len(good["W0"].Rows) == 0 {
		t.Skip("extent empty for this seed; corruption cases need rows")
	}
	mutate := func(name string, f func(ext *Extent)) map[string]Extent {
		out := make(map[string]Extent)
		for n, ext := range good {
			c := Extent{Rows: append([][]uint32(nil), ext.Rows...), Counts: append([]int(nil), ext.Counts...)}
			out[n] = c
		}
		ext := out[name]
		f(&ext)
		out[name] = ext
		return out
	}
	cases := map[string]map[string]Extent{
		"missing view": {},
		"count skew":   mutate("W0", func(x *Extent) { x.Counts = x.Counts[:len(x.Counts)-1] }),
		"zero count":   mutate("W0", func(x *Extent) { x.Counts[0] = 0 }),
		"arity drift":  mutate("W0", func(x *Extent) { x.Rows[0] = x.Rows[0][:0] }),
	}
	if len(good["W0"].Rows) > 1 {
		cases["repeated row"] = mutate("W0", func(x *Extent) {
			x.Rows[len(x.Rows)-1] = x.Rows[0]
			x.Counts[len(x.Counts)-1] = 1
		})
	}
	for what, ext := range cases {
		if _, err := NewDeltaEngineWithExtents(db, views, ext); err == nil {
			t.Errorf("%s: restore accepted a corrupt checkpoint", what)
		}
	}
}
