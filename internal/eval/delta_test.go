package eval

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/cq"
	"repro/internal/instance"
	"repro/internal/schema"
)

// randViewSchema draws a small random schema: 2-3 relations of arity 1-3.
func randViewSchema(rng *rand.Rand) *schema.Schema {
	nRel := 2 + rng.Intn(2)
	rels := make([]*schema.Relation, nRel)
	for i := range rels {
		arity := 1 + rng.Intn(3)
		attrs := make([]string, arity)
		for j := range attrs {
			attrs[j] = fmt.Sprintf("a%d", j)
		}
		rels[i] = schema.NewRelation(fmt.Sprintf("R%d", i), attrs...)
	}
	return schema.New(rels...)
}

// randView draws a random UCQ view over the schema: 1-2 disjuncts of 1-3
// atoms, with shared variables, repeated variables, and constants from the
// same small pool the instance draws values from (so selections fire).
func randView(rng *rand.Rand, s *schema.Schema, name string, pool int) *cq.UCQ {
	arity := 1 + rng.Intn(2)
	u := &cq.UCQ{Name: name}
	for d := 0; d < 1+rng.Intn(2); d++ {
		var atoms []cq.Atom
		var vars []string
		for a := 0; a < 1+rng.Intn(3); a++ {
			rel := s.Relations[rng.Intn(len(s.Relations))]
			args := make([]cq.Term, rel.Arity())
			for i := range args {
				switch {
				case rng.Float64() < 0.15:
					args[i] = cq.Cst(fmt.Sprintf("v%d", rng.Intn(pool)))
				case len(vars) > 0 && rng.Float64() < 0.5:
					args[i] = cq.Var(vars[rng.Intn(len(vars))])
				default:
					v := fmt.Sprintf("x%d", len(vars))
					vars = append(vars, v)
					args[i] = cq.Var(v)
				}
			}
			atoms = append(atoms, cq.Atom{Rel: rel.Name, Args: args})
		}
		// Head: `arity` terms drawn from the body's variables (safe by
		// construction) with an occasional constant.
		head := make([]cq.Term, arity)
		for i := range head {
			if len(vars) == 0 || rng.Float64() < 0.1 {
				head[i] = cq.Cst(fmt.Sprintf("v%d", rng.Intn(pool)))
			} else {
				head[i] = cq.Var(vars[rng.Intn(len(vars))])
			}
		}
		// Occasional equality, to exercise normalization in the engine.
		var eqs []cq.Equality
		if len(vars) > 1 && rng.Float64() < 0.3 {
			eqs = append(eqs, cq.Equality{L: cq.Var(vars[rng.Intn(len(vars))]), R: cq.Var(vars[rng.Intn(len(vars))])})
		}
		u.Disjuncts = append(u.Disjuncts, cq.NewCQ(head, atoms, eqs...))
	}
	return u
}

// TestDeltaEngineDifferentialRandom is the live-update differential
// harness: randomized schemas and views, randomized insert/delete streams
// (>= 10k ops in total across trials), with the incremental maintainer's
// extents checked against full recomputation — frequently against the
// interned evaluator (UCQOnDB) and, at sparser checkpoints, against the
// independent naive nested-loop evaluator of equiv_test.go. CI runs this
// under the race detector.
func TestDeltaEngineDifferentialRandom(t *testing.T) {
	const (
		trials          = 4
		opsPerTrial     = 2600 // 4 * 2600 = 10400 ops >= 10k
		pool            = 9    // value pool: small, so joins and deletes hit
		maxLive         = 160  // soft cap per relation, keeps the naive oracle fast
		fastCheckEvery  = 250
		naiveCheckEvery = 1300
	)
	totalOps := 0
	for trial := 0; trial < trials; trial++ {
		rng := rand.New(rand.NewSource(int64(100 + trial)))
		s := randViewSchema(rng)
		views := map[string]*cq.UCQ{}
		for v := 0; v < 2+rng.Intn(2); v++ {
			name := fmt.Sprintf("W%d", v)
			views[name] = randView(rng, s, name, pool)
		}
		db := instance.NewDatabase(s)
		// Seed some contents before the engine opens, so the initial
		// counted extents are non-trivial.
		for i := 0; i < 60; i++ {
			rel := s.Relations[rng.Intn(len(s.Relations))]
			db.MustInsert(rel.Name, randRow(rng, rel.Arity(), pool)...)
		}
		e, err := NewDeltaEngine(db, views)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		assertEngineFresh(t, e, db, views, true)

		// live tracks the multiset of rows per relation so deletes mostly
		// hit existing rows (absent deletes are exercised too).
		live := map[string][]instance.Tuple{}
		for _, rel := range s.Relations {
			for _, tu := range db.Table(rel.Name).Tuples {
				live[rel.Name] = append(live[rel.Name], tu.Clone())
			}
		}
		for op := 1; op <= opsPerTrial; op++ {
			totalOps++
			rel := s.Relations[rng.Intn(len(s.Relations))]
			var ins, del []instance.Op
			wantDelete := rng.Float64() < 0.45 || len(live[rel.Name]) > maxLive
			switch {
			case wantDelete && len(live[rel.Name]) > 0 && rng.Float64() < 0.9:
				// Delete a row that exists.
				i := rng.Intn(len(live[rel.Name]))
				row := live[rel.Name][i]
				live[rel.Name][i] = live[rel.Name][len(live[rel.Name])-1]
				live[rel.Name] = live[rel.Name][:len(live[rel.Name])-1]
				del = append(del, instance.Op{Rel: rel.Name, Row: row})
			case wantDelete:
				// Delete a row that may not exist (no-op path).
				del = append(del, instance.Op{Rel: rel.Name, Row: randRow(rng, rel.Arity(), pool)})
			default:
				row := instance.Tuple(randRow(rng, rel.Arity(), pool))
				live[rel.Name] = append(live[rel.Name], row)
				ins = append(ins, instance.Op{Rel: rel.Name, Row: row})
			}
			// Occasionally batch several ops at once (incl. delete+insert
			// of the same row within one batch).
			if rng.Float64() < 0.1 && len(live[rel.Name]) > 0 {
				row := live[rel.Name][rng.Intn(len(live[rel.Name]))]
				del = append(del, instance.Op{Rel: rel.Name, Row: row.Clone()})
				ins = append(ins, instance.Op{Rel: rel.Name, Row: row.Clone()})
			}
			a, err := db.ApplyDelta(ins, del)
			if err != nil {
				t.Fatalf("trial %d op %d: %v", trial, op, err)
			}
			if _, err := e.Apply(a); err != nil {
				t.Fatalf("trial %d op %d: %v", trial, op, err)
			}
			if op%fastCheckEvery == 0 {
				assertEngineFresh(t, e, db, views, false)
			}
			if op%naiveCheckEvery == 0 {
				assertEngineFresh(t, e, db, views, true)
			}
		}
		assertEngineFresh(t, e, db, views, true)
	}
	if totalOps < 10000 {
		t.Fatalf("stream too short: %d ops", totalOps)
	}
}

// assertEngineFresh checks every view extent against full recomputation:
// the interned evaluator always, and additionally the independent naive
// evaluator when naive is set.
func assertEngineFresh(t *testing.T, e *DeltaEngine, db *instance.Database, views map[string]*cq.UCQ, naive bool) {
	t.Helper()
	got := e.Views()
	src := &Source{DB: db}
	for name, def := range views {
		want, err := UCQOnDB(def, src)
		if err != nil {
			t.Fatal(err)
		}
		if !cq.RowsEqual(got[name], want) {
			SortRows(want)
			g := append([][]string{}, got[name]...)
			SortRows(g)
			t.Fatalf("view %s (|D|=%d) incremental != recompute\ngot  %d rows: %v\nwant %d rows: %v",
				name, db.Size(), len(g), g, len(want), want)
		}
		if naive {
			ref := naiveUCQ(t, def, src)
			if !cq.RowsEqual(got[name], ref) {
				t.Fatalf("view %s: interned recompute and naive reference disagree (%d vs %d rows)",
					name, len(got[name]), len(ref))
			}
		}
	}
}

func randRow(rng *rand.Rand, arity, pool int) []string {
	row := make([]string, arity)
	for i := range row {
		row[i] = fmt.Sprintf("v%d", rng.Intn(pool))
	}
	return row
}

// TestDeltaEngineConstantAndEmptyDisjuncts pins the edge cases the random
// harness hits rarely: constant heads, unsatisfiable disjuncts, and
// cross-product steps with no bound columns.
func TestDeltaEngineConstantAndEmptyDisjuncts(t *testing.T) {
	s := schema.New(schema.NewRelation("E", "A", "B"), schema.NewRelation("L", "X"))
	// W1: cross product with constant head column.
	w1 := cq.NewCQ([]cq.Term{cq.Var("x"), cq.Cst("k")}, []cq.Atom{
		cq.NewAtom("L", cq.Var("x")),
		cq.NewAtom("E", cq.Var("y"), cq.Var("z")),
	})
	// W2 second disjunct is unsatisfiable ("a"="b").
	w2a := cq.NewCQ([]cq.Term{cq.Var("x")}, []cq.Atom{cq.NewAtom("L", cq.Var("x"))})
	w2b := cq.NewCQ([]cq.Term{cq.Var("x")}, []cq.Atom{cq.NewAtom("L", cq.Var("x"))},
		cq.Equality{L: cq.Cst("a"), R: cq.Cst("b")})
	views := map[string]*cq.UCQ{"W1": cq.NewUCQ(w1), "W2": {Name: "W2", Disjuncts: []*cq.CQ{w2a, w2b}}}
	db := instance.NewDatabase(s)
	e, err := NewDeltaEngine(db, views)
	if err != nil {
		t.Fatal(err)
	}
	step := func(ins, del []instance.Op) {
		t.Helper()
		a, err := db.ApplyDelta(ins, del)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := e.Apply(a); err != nil {
			t.Fatal(err)
		}
		assertEngineFresh(t, e, db, views, true)
	}
	step([]instance.Op{{Rel: "L", Row: instance.Tuple{"n1"}}}, nil)
	if len(e.Views()["W1"]) != 0 {
		t.Fatal("W1 must stay empty without E rows")
	}
	step([]instance.Op{{Rel: "E", Row: instance.Tuple{"n1", "n2"}}}, nil)
	if !cq.RowsEqual(e.Views()["W1"], [][]string{{"n1", "k"}}) {
		t.Fatalf("W1 = %v", e.Views()["W1"])
	}
	// Duplicate insert: set semantics, no change; then remove one copy
	// (still supported), then the last copy (retracted).
	step([]instance.Op{{Rel: "E", Row: instance.Tuple{"n1", "n2"}}}, nil)
	step(nil, []instance.Op{{Rel: "E", Row: instance.Tuple{"n1", "n2"}}})
	if len(e.Views()["W1"]) != 1 {
		t.Fatal("one E copy remains: W1 must still hold")
	}
	step(nil, []instance.Op{{Rel: "E", Row: instance.Tuple{"n1", "n2"}}})
	if len(e.Views()["W1"]) != 0 {
		t.Fatal("last E copy gone: W1 must be empty")
	}
}
