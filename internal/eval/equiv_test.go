package eval

import (
	"reflect"
	"strings"
	"testing"

	"repro/internal/cq"
	"repro/internal/instance"
	"repro/internal/plan"
	"repro/internal/topped"
	"repro/internal/workload"
)

// naiveCQ is an independent reference evaluator: plain string comparisons,
// nested-loop backtracking, no interning, no indexes. The interned
// pipeline must return row-for-row identical results (after SortRows).
func naiveCQ(t *testing.T, q *cq.CQ, src *Source) [][]string {
	t.Helper()
	n, err := q.Normalize()
	if err != nil {
		return nil
	}
	var out [][]string
	seen := map[string]bool{}
	bind := map[string]string{}
	var rec func(i int)
	rec = func(i int) {
		if i == len(n.Atoms) {
			row := make([]string, len(n.Head))
			for j, tm := range n.Head {
				if tm.Const {
					row[j] = tm.Val
				} else {
					v, ok := bind[tm.Val]
					if !ok {
						t.Fatalf("unsafe query: unbound head variable %s", tm.Val)
					}
					row[j] = v
				}
			}
			k := strings.Join(row, "\x1f")
			if !seen[k] {
				seen[k] = true
				out = append(out, row)
			}
			return
		}
		a := n.Atoms[i]
		rows, ok := src.Rows(a.Rel)
		if !ok {
			t.Fatalf("unknown relation %s", a.Rel)
		}
	rowLoop:
		for _, r := range rows {
			if len(r) != len(a.Args) {
				continue
			}
			var newly []string
			for j, tm := range a.Args {
				if tm.Const {
					if r[j] != tm.Val {
						for _, v := range newly {
							delete(bind, v)
						}
						continue rowLoop
					}
					continue
				}
				if cur, bound := bind[tm.Val]; bound {
					if cur != r[j] {
						for _, v := range newly {
							delete(bind, v)
						}
						continue rowLoop
					}
					continue
				}
				bind[tm.Val] = r[j]
				newly = append(newly, tm.Val)
			}
			rec(i + 1)
			for _, v := range newly {
				delete(bind, v)
			}
		}
	}
	rec(0)
	return out
}

func naiveUCQ(t *testing.T, u *cq.UCQ, src *Source) [][]string {
	t.Helper()
	seen := map[string]bool{}
	var out [][]string
	for _, d := range u.Disjuncts {
		for _, r := range naiveCQ(t, d, src) {
			k := strings.Join(r, "\x1f")
			if !seen[k] {
				seen[k] = true
				out = append(out, r)
			}
		}
	}
	return out
}

func assertSameRows(t *testing.T, name string, got, want [][]string) {
	t.Helper()
	SortRows(got)
	SortRows(want)
	if len(got) == 0 && len(want) == 0 {
		return
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("%s: interned evaluator disagrees with reference\ngot  %d rows: %v\nwant %d rows: %v",
			name, len(got), got, len(want), want)
	}
}

// TestInternedMatchesReferenceMovies checks CQOnDB, UCQOnDB (views) and
// plan execution against the naive reference on the Movies fixture.
func TestInternedMatchesReferenceMovies(t *testing.T) {
	m := workload.NewMovies(50)
	db := m.Generate(workload.MoviesParams{Persons: 300, Movies: 300, LikesPerPerson: 5, NASAShare: 10, Seed: 7})
	src := &Source{DB: db}

	got, err := CQOnDB(m.Q0, src)
	if err != nil {
		t.Fatal(err)
	}
	assertSameRows(t, "Q0", got, naiveCQ(t, m.Q0, src))

	for name, def := range m.Views() {
		got, err := UCQOnDB(def, src)
		if err != nil {
			t.Fatal(err)
		}
		assertSameRows(t, "view "+name, got, naiveUCQ(t, def, src))
	}

	// The Figure 1 plan must agree with the direct evaluation, both via
	// lazy views and via the prepared-views fast path.
	views, err := Materialize(m.Views(), db)
	if err != nil {
		t.Fatal(err)
	}
	ix, err := instance.BuildIndexes(db, m.Access)
	if err != nil {
		t.Fatal(err)
	}
	want := naiveCQ(t, m.Q0, src)
	planRows, err := plan.Run(m.Fig1Plan(), ix, views)
	if err != nil {
		t.Fatal(err)
	}
	assertSameRows(t, "fig1 plan", planRows, want)
	prepRows, err := plan.RunPrepared(m.Fig1Plan(), ix, plan.PrepareViews(ix, views))
	if err != nil {
		t.Fatal(err)
	}
	assertSameRows(t, "fig1 plan (prepared)", prepRows, want)
}

// TestInternedMatchesReferenceCDR checks every CQ of the CDR workload, and
// every topped plan against the direct evaluator.
func TestInternedMatchesReferenceCDR(t *testing.T) {
	c := workload.NewCDR(20, 5, 100)
	db := c.Generate(workload.CDRParams{Customers: 500, Days: 30, Seed: 1})
	src := &Source{DB: db}
	ix, err := instance.BuildIndexes(db, c.Access)
	if err != nil {
		t.Fatal(err)
	}
	checker := topped.NewChecker(c.Schema, c.Access, nil)
	for _, q := range c.Queries("p0000042", "d07") {
		if q.CQ != nil {
			got, err := CQOnDB(q.CQ, src)
			if err != nil {
				t.Fatal(err)
			}
			assertSameRows(t, q.Name, got, naiveCQ(t, q.CQ, src))
		}
		if res := checker.Check(q.FO, 128); res.Topped {
			planRows, err := plan.Run(res.Plan, ix, nil)
			if err != nil {
				t.Fatal(err)
			}
			direct, err := FOOnDB(q.FO, src)
			if err != nil {
				t.Fatal(err)
			}
			assertSameRows(t, q.Name+" plan", planRows, direct)
		}
	}
}

// TestInternedMatchesReferenceGraphSearch checks the FO evaluator against
// the bounded plan on the social-network fixture (negation + views-free
// FO path).
func TestInternedMatchesReferenceGraphSearch(t *testing.T) {
	so := workload.NewSocial(60, 25)
	q := so.GraphSearchQuery("u000007", "2015-05-03", "city3")
	checker := topped.NewChecker(so.Schema, so.Access, nil)
	res := checker.Check(q, 64)
	if !res.Topped {
		t.Fatal(res.Reason)
	}
	db := so.Generate(workload.SocialParams{Persons: 2000, Restaurants: 100, Dates: 28, Seed: 3})
	ix, err := instance.BuildIndexes(db, so.Access)
	if err != nil {
		t.Fatal(err)
	}
	planRows, err := plan.Run(res.Plan, ix, nil)
	if err != nil {
		t.Fatal(err)
	}
	direct, err := FOOnDB(q, &Source{DB: db})
	if err != nil {
		t.Fatal(err)
	}
	assertSameRows(t, "graph search", planRows, direct)
}
