package eval

import (
	"fmt"
	"testing"

	"repro/internal/cq"
	"repro/internal/instance"
	"repro/internal/schema"
)

// TestPublishExtentIDsCopyOnWrite pins the COW contract epoch publication
// relies on: a published extent header is never mutated by later Apply
// calls — appends land beyond its length, removals privatize the header
// first — while the engine's own extent keeps tracking the database.
func TestPublishExtentIDsCopyOnWrite(t *testing.T) {
	s := schema.New(schema.NewRelation("R", "A", "B"))
	db := instance.NewDatabase(s)
	db.MustInsert("R", "a", "1")
	db.MustInsert("R", "b", "2")
	db.MustInsert("R", "c", "3")
	views := map[string]*cq.UCQ{
		"V": cq.NewUCQ(cq.NewCQ([]cq.Term{cq.Var("x")}, []cq.Atom{cq.NewAtom("R", cq.Var("x"), cq.Var("y"))})),
	}
	eng, err := NewDeltaEngine(db, views)
	if err != nil {
		t.Fatal(err)
	}
	fingerprint := func(rows [][]uint32) string { return fmt.Sprint(rows) }

	pub1 := eng.PublishExtentIDs("V")
	want1 := fingerprint(pub1)
	if len(pub1) != 3 {
		t.Fatalf("initial extent has %d rows", len(pub1))
	}

	apply := func(ins, del []instance.Op) {
		t.Helper()
		a, err := db.ApplyDelta(ins, del)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := eng.Apply(a); err != nil {
			t.Fatal(err)
		}
	}

	// Append-only batch: the published header must not see the new row.
	apply([]instance.Op{{Rel: "R", Row: instance.Tuple{"d", "4"}}}, nil)
	if fingerprint(pub1) != want1 || len(pub1) != 3 {
		t.Fatal("published header mutated by an append")
	}
	pub2 := eng.PublishExtentIDs("V")
	if len(pub2) != 4 {
		t.Fatalf("second publication has %d rows, want 4", len(pub2))
	}
	want2 := fingerprint(pub2)

	// Removal batch: both published headers must survive the swap-remove
	// (the engine privatizes its header before patching).
	apply(nil, []instance.Op{{Rel: "R", Row: instance.Tuple{"a", "1"}}})
	if fingerprint(pub1) != want1 {
		t.Fatal("first published header mutated by a removal")
	}
	if fingerprint(pub2) != want2 {
		t.Fatal("second published header mutated by a removal")
	}
	if got := len(eng.PublishExtentIDs("V")); got != 3 {
		t.Fatalf("engine extent has %d rows after the delete, want 3", got)
	}

	// Churn after a removal-privatized header: still no leakage.
	apply([]instance.Op{{Rel: "R", Row: instance.Tuple{"e", "5"}}},
		[]instance.Op{{Rel: "R", Row: instance.Tuple{"b", "2"}}})
	if fingerprint(pub1) != want1 || fingerprint(pub2) != want2 {
		t.Fatal("published headers drifted under mixed churn")
	}
}
