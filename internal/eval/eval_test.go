package eval

import (
	"fmt"
	"testing"
	"testing/quick"

	"repro/internal/cq"
	"repro/internal/fo"
	"repro/internal/instance"
	"repro/internal/schema"
)

func graphDB() (*schema.Schema, *instance.Database) {
	s := schema.New(schema.NewRelation("E", "A", "B"))
	db := instance.NewDatabase(s)
	for _, e := range [][2]string{{"a", "b"}, {"b", "c"}, {"c", "a"}, {"a", "c"}} {
		db.MustInsert("E", e[0], e[1])
	}
	return s, db
}

func TestCQOnDBPaths(t *testing.T) {
	_, db := graphDB()
	q := cq.NewCQ([]cq.Term{cq.Var("x"), cq.Var("z")}, []cq.Atom{
		cq.NewAtom("E", cq.Var("x"), cq.Var("y")),
		cq.NewAtom("E", cq.Var("y"), cq.Var("z")),
	})
	got, err := CQOnDB(q, &Source{DB: db})
	if err != nil {
		t.Fatal(err)
	}
	// 2-paths over a→b, b→c, c→a, a→c.
	want := [][]string{{"a", "c"}, {"a", "a"}, {"b", "a"}, {"c", "b"}, {"c", "c"}}
	if !cq.RowsEqual(got, want) {
		SortRows(got)
		t.Fatalf("got %v", got)
	}
}

func TestCQOnDBSelfJoinRepeatedVar(t *testing.T) {
	s := schema.New(schema.NewRelation("R", "A", "B"))
	db := instance.NewDatabase(s)
	db.MustInsert("R", "a", "a")
	db.MustInsert("R", "a", "b")
	q := cq.NewCQ([]cq.Term{cq.Var("x")}, []cq.Atom{cq.NewAtom("R", cq.Var("x"), cq.Var("x"))})
	got, err := CQOnDB(q, &Source{DB: db})
	if err != nil {
		t.Fatal(err)
	}
	if !cq.RowsEqual(got, [][]string{{"a"}}) {
		t.Fatalf("got %v", got)
	}
}

func TestCQOnDBConstantQuery(t *testing.T) {
	q := cq.NewCQ([]cq.Term{cq.Cst("k")}, nil)
	got, err := CQOnDB(q, &Source{})
	if err != nil || len(got) != 1 || got[0][0] != "k" {
		t.Fatalf("constant query: %v %v", got, err)
	}
	unsafe := cq.NewCQ([]cq.Term{cq.Var("x")}, nil)
	if _, err := CQOnDB(unsafe, &Source{}); err == nil {
		t.Fatal("unsafe constant query must fail")
	}
}

// Property: CQOnDB agrees with the reference homomorphism evaluator on
// random small graphs and the 2-path query.
func TestCQOnDBAgreesWithHomSearch(t *testing.T) {
	s := schema.New(schema.NewRelation("E", "A", "B"))
	q := cq.NewCQ([]cq.Term{cq.Var("x"), cq.Var("z")}, []cq.Atom{
		cq.NewAtom("E", cq.Var("x"), cq.Var("y")),
		cq.NewAtom("E", cq.Var("y"), cq.Var("z")),
	})
	f := func(edges [][2]byte) bool {
		db := instance.NewDatabase(s)
		rows := map[string][][]string{}
		for _, e := range edges {
			a, b := dom(e[0]), dom(e[1])
			db.MustInsert("E", a, b)
			rows["E"] = append(rows["E"], []string{a, b})
		}
		fast, err := CQOnDB(q, &Source{DB: db})
		if err != nil {
			return false
		}
		ref, complete := cq.EvalOnRows(q, rows)
		return complete && cq.RowsEqual(fast, ref)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestFOOnDBNegation(t *testing.T) {
	_, db := graphDB()
	// Nodes with an out-edge but no self-loop 2-path back: x with E(x,y) ∧ ¬E(y,x).
	q := &fo.Query{Head: []string{"x"}, Body: &fo.Exists{Vars: []string{"y"}, E: &fo.And{
		L: fo.NewAtom("E", cq.Var("x"), cq.Var("y")),
		R: &fo.Not{E: fo.NewAtom("E", cq.Var("y"), cq.Var("x"))},
	}}}
	got, err := FOOnDB(q, &Source{DB: db})
	if err != nil {
		t.Fatal(err)
	}
	// Edges: a→b (no b→a): a qualifies; b→c (no c→b): b qualifies;
	// c→a but a→c exists, c↛... c→a has back-edge a→c, so c does not
	// qualify via a; a→c has back c→a: no. So {a, b}.
	if !cq.RowsEqual(got, [][]string{{"a"}, {"b"}}) {
		t.Fatalf("got %v", got)
	}
}

func TestFOOnDBUniversal(t *testing.T) {
	_, db := graphDB()
	// Nodes whose every out-neighbor has an out-edge back to "a":
	// Q(x) = ∃y E(x,y) ∧ ∀z (E(x,z) → E(z,"a")).
	q := &fo.Query{Head: []string{"x"}, Body: &fo.And{
		L: &fo.Exists{Vars: []string{"y"}, E: fo.NewAtom("E", cq.Var("x"), cq.Var("y"))},
		R: &fo.Forall{Vars: []string{"z"}, E: &fo.Implies{
			A: fo.NewAtom("E", cq.Var("x"), cq.Var("z")),
			B: fo.NewAtom("E", cq.Var("z"), cq.Cst("a")),
		}},
	}}
	got, err := FOOnDB(q, &Source{DB: db})
	if err != nil {
		t.Fatal(err)
	}
	// a→{b,c}: b→c? b's edge to a? b→c only... E(b,a)? no → a fails.
	// b→{c}: E(c,a) yes → b qualifies. c→{a}: E(a,?a)... E(a,a)? no → c fails.
	if !cq.RowsEqual(got, [][]string{{"b"}}) {
		t.Fatalf("got %v", got)
	}
}

func TestFOOnDBEqualityExtension(t *testing.T) {
	_, db := graphDB()
	// Q(x, w) = E(x, y) ∧ y = "b" ∧ w = "tag": equality both filters and
	// extends.
	q := &fo.Query{Head: []string{"x", "w"}, Body: &fo.Exists{Vars: []string{"y"}, E: fo.Conj(
		fo.NewAtom("E", cq.Var("x"), cq.Var("y")),
		fo.Eq(cq.Var("y"), cq.Cst("b")),
		fo.Eq(cq.Var("w"), cq.Cst("tag")),
	)}}
	got, err := FOOnDB(q, &Source{DB: db})
	if err != nil {
		t.Fatal(err)
	}
	if !cq.RowsEqual(got, [][]string{{"a", "tag"}}) {
		t.Fatalf("got %v", got)
	}
}

func TestFOOnDBInequality(t *testing.T) {
	_, db := graphDB()
	q := &fo.Query{Head: []string{"x", "y"}, Body: &fo.And{
		L: fo.NewAtom("E", cq.Var("x"), cq.Var("y")),
		R: fo.Neq(cq.Var("x"), cq.Cst("a")),
	}}
	got, err := FOOnDB(q, &Source{DB: db})
	if err != nil {
		t.Fatal(err)
	}
	if !cq.RowsEqual(got, [][]string{{"b", "c"}, {"c", "a"}}) {
		t.Fatalf("got %v", got)
	}
}

// Property: FO evaluation of an embedded CQ agrees with CQ evaluation.
func TestFOAgreesWithCQOnRandomGraphs(t *testing.T) {
	s := schema.New(schema.NewRelation("E", "A", "B"))
	q := cq.NewCQ([]cq.Term{cq.Var("x")}, []cq.Atom{
		cq.NewAtom("E", cq.Var("x"), cq.Var("y")),
		cq.NewAtom("E", cq.Var("y"), cq.Var("x")),
	})
	fq := fo.FromCQ(q)
	f := func(edges [][2]byte) bool {
		db := instance.NewDatabase(s)
		for _, e := range edges {
			db.MustInsert("E", dom(e[0]), dom(e[1]))
		}
		a, err1 := CQOnDB(q, &Source{DB: db})
		b, err2 := FOOnDB(fq, &Source{DB: db})
		if err1 != nil || err2 != nil {
			return false
		}
		return cq.RowsEqual(a, b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestMaterialize(t *testing.T) {
	_, db := graphDB()
	v := cq.NewCQ([]cq.Term{cq.Var("x")}, []cq.Atom{cq.NewAtom("E", cq.Cst("a"), cq.Var("x"))})
	views, err := Materialize(map[string]*cq.UCQ{"V": cq.NewUCQ(v)}, db)
	if err != nil {
		t.Fatal(err)
	}
	if !cq.RowsEqual(views["V"], [][]string{{"b"}, {"c"}}) {
		t.Fatalf("got %v", views["V"])
	}
	// Views are visible as relations to later queries via Source.
	q := cq.NewCQ([]cq.Term{cq.Var("x")}, []cq.Atom{cq.NewAtom("V", cq.Var("x"))})
	rows, err := CQOnDB(q, &Source{DB: db, Views: views})
	if err != nil || len(rows) != 2 {
		t.Fatalf("views must be queryable: %v %v", rows, err)
	}
}

func dom(b byte) string {
	return fmt.Sprintf("%c", 'a'+b%4)
}
