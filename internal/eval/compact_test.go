package eval

import (
	"fmt"
	"testing"

	"repro/internal/cq"
	"repro/internal/instance"
	"repro/internal/schema"
)

// TestCompactExtents pins the repack contract: a view that grew large and
// then shrank gets its backing array repacked to ~live size, the content
// is untouched, published headers keep serving their old (fat) arrays,
// and views above the live-fraction threshold or below the size floor are
// left alone.
func TestCompactExtents(t *testing.T) {
	s := schema.New(schema.NewRelation("R", "A", "B"))
	db := instance.NewDatabase(s)
	views := map[string]*cq.UCQ{
		"V": cq.NewUCQ(cq.NewCQ([]cq.Term{cq.Var("x")}, []cq.Atom{cq.NewAtom("R", cq.Var("x"), cq.Var("y"))})),
	}
	eng, err := NewDeltaEngine(db, views)
	if err != nil {
		t.Fatal(err)
	}
	apply := func(ins, del []instance.Op) {
		t.Helper()
		a, err := db.ApplyDelta(ins, del)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := eng.Apply(a); err != nil {
			t.Fatal(err)
		}
	}
	row := func(i int) instance.Tuple { return instance.Tuple{fmt.Sprintf("a%d", i), fmt.Sprintf("b%d", i)} }

	const n = 4096
	var ins []instance.Op
	for i := 0; i < n; i++ {
		ins = append(ins, instance.Op{Rel: "R", Row: row(i)})
	}
	apply(ins, nil)
	pub := eng.PublishExtentIDs("V")
	pubWant := fmt.Sprint(pub)

	// Below-threshold state: live fraction is 1, nothing to do.
	if names := eng.CompactExtents(1024, 0.5); len(names) != 0 {
		t.Fatalf("compacted a full extent: %v", names)
	}

	// Shrink to an eighth; the engine's array keeps its old capacity.
	var del []instance.Op
	for i := n / 8; i < n; i++ {
		del = append(del, instance.Op{Rel: "R", Row: row(i)})
	}
	apply(nil, del)
	v := eng.views["V"]
	if cap(v.rows) < n/2 {
		t.Fatalf("precondition: expected stranded capacity, have cap %d for len %d", cap(v.rows), len(v.rows))
	}
	liveWant := fmt.Sprint(eng.ExtentIDs("V"))

	names := eng.CompactExtents(1024, 0.5)
	if len(names) != 1 || names[0] != "V" {
		t.Fatalf("CompactExtents = %v, want [V]", names)
	}
	if got := cap(eng.views["V"].rows); got >= n/2 {
		t.Fatalf("repack kept cap %d for %d live rows", got, n/8)
	}
	if got := fmt.Sprint(eng.ExtentIDs("V")); got != liveWant {
		t.Fatal("repack changed the extent's content")
	}
	if got := fmt.Sprint(pub); got != pubWant {
		t.Fatal("repack mutated a published header")
	}

	// The repacked state is compact: a second pass is a no-op, and churn
	// through it stays consistent.
	if names := eng.CompactExtents(1024, 0.5); len(names) != 0 {
		t.Fatalf("second compaction repacked again: %v", names)
	}
	apply([]instance.Op{{Rel: "R", Row: row(n)}}, []instance.Op{{Rel: "R", Row: row(0)}})
	if got := len(eng.ExtentIDs("V")); got != n/8 {
		t.Fatalf("extent has %d rows after churn, want %d", got, n/8)
	}

	// Tiny extents never repack, whatever their live fraction.
	var del2 []instance.Op
	for i := 1; i < n/8; i++ {
		del2 = append(del2, instance.Op{Rel: "R", Row: row(i)})
	}
	apply(nil, del2)
	if names := eng.CompactExtents(1024, 0.5); len(names) != 0 {
		t.Fatalf("repacked below the minCap floor: %v", names)
	}
}
