package eval

import (
	"fmt"
	"sort"

	"repro/internal/cq"
	"repro/internal/instance"
	"repro/internal/intern"
)

// DeltaEngine keeps a set of UCQ views incrementally consistent with a
// database under batched insertions AND deletions — the counting-based
// (multiset) view maintenance that the paper's incremental-precomputation
// story (Armbrust et al., §1/§7) needs once workloads stop being
// append-only. For every view row it tracks the number of derivations
// (valuations of the disjunct bodies producing it); a row is in the extent
// iff its count is positive, so a deletion retracts exactly the rows that
// lost their last derivation — no full refresh.
//
// Per delta tuple t the engine enumerates only the valuations that use t,
// through join indexes (intern.DynIndex) on exactly the column sets the
// compiled residual plans probe. The indexes are themselves maintained
// incrementally, so per-op cost depends on the data touched by t's
// residual joins, not on |D|. Base relations are treated with set
// semantics: a per-row support count turns physical multiset churn into
// 0↔1 support transitions, and only transitions trigger view work.
//
// The engine is not safe for concurrent use; the facade's Live handle
// serializes Apply against readers. Extents are exposed interned
// (ExtentIDs) for zero-copy patching of plan.PreparedViews, and decoded
// (Views) for the Materialized interface.
type DeltaEngine struct {
	db    *instance.Database
	dict  *intern.Dict
	views map[string]*viewState
	names []string // sorted view names
	rels  map[string]*relState
}

// relState is the per-relation live state: support counts and the join
// indexes the compiled plans probe.
type relState struct {
	arity   int
	support *intern.Grouper[int]
	indexes map[string]*intern.DynIndex // key: packed position set
	plans   []*deltaPlan                // plans triggered by this relation
}

// viewState is one view's counted extent.
//
// sharedLen supports epoch publication (PublishExtentIDs): row slots below
// it belong to a published immutable header and are never overwritten —
// the first removal that would touch the shared region copies the header
// first (copy-on-write per view, paid at most once per epoch and only by
// views that shrink). Appends are always safe: they write at indexes no
// published header can see.
type viewState struct {
	name      string
	arity     int
	counts    *intern.Grouper[rowStat]
	rows      [][]uint32
	sharedLen int
}

type rowStat struct {
	count int
	pos   int
}

// deltaPlan is the compiled residual of one (disjunct, atom-occurrence)
// pair: when a tuple t enters/leaves the occurrence's relation, binding
// the occurrence to t and enumerating the steps yields exactly the
// valuations gained/lost through this occurrence.
type deltaPlan struct {
	view    *viewState
	trigger triggerSpec
	steps   []joinStep
	head    []valSrc
	nslots  int
}

// triggerSpec matches the delta tuple against the trigger atom.
type triggerSpec struct {
	arity  int
	consts []posConst // argument positions that must equal a constant
	dups   [][2]int   // argument position pairs that must agree
	binds  []posSlot  // argument position -> slot bindings
}

type posConst struct {
	pos int
	id  uint32
}

type posSlot struct {
	pos  int
	slot int
}

// joinStep probes one atom: the key (constants + already-bound slots) is
// looked up in the atom's DynIndex; surviving rows bind the atom's new
// variables. exclude implements the delta decomposition: occurrences of
// the trigger relation that precede the trigger atom must not re-use the
// delta tuple itself (each gained/lost valuation is counted at its FIRST
// occurrence of t).
type joinStep struct {
	index   *intern.DynIndex
	key     []valSrc
	binds   []posSlot
	post    [][2]int // argument position pairs (repeated new variable)
	exclude bool
}

// valSrc produces one value: a constant ID or a slot read.
type valSrc struct {
	isConst bool
	id      uint32
	slot    int
}

// NewDeltaEngine compiles the views' delta plans, builds the join indexes
// and support counts over db's current contents, and computes the initial
// counted extents. Unsatisfiable disjuncts (inconsistent equalities) are
// dropped; unsafe disjuncts (unbound head variable) and atoms over unknown
// relations are errors, mirroring UCQOnDB.
func NewDeltaEngine(db *instance.Database, views map[string]*cq.UCQ) (*DeltaEngine, error) {
	e, inits, err := newEngine(db, views, true)
	if err != nil {
		return nil, err
	}
	// Initial extents: enumerate every derivation through the full plans.
	for _, p := range inits {
		if err := e.enumerate(p, nil, +1); err != nil {
			return nil, err
		}
	}
	return e, nil
}

// Extent is one view's checkpointed counted extent: the extent rows in
// publication order, each paired with its derivation count. It is the unit
// the write-ahead log's checkpointer serializes and the restore path
// (NewDeltaEngineWithExtents) seeds from, skipping the initial full-plan
// enumeration.
type Extent struct {
	Rows   [][]uint32
	Counts []int
}

// CheckpointExtents returns every view's current counted extent. Row
// slices are shared (rows are immutable); the outer slices are fresh
// copies, so the result stays valid across later Apply calls. Call with
// the same exclusion Apply requires (the facade's write lock).
func (e *DeltaEngine) CheckpointExtents() map[string]Extent {
	out := make(map[string]Extent, len(e.views))
	for name, v := range e.views {
		ext := Extent{
			Rows:   append([][]uint32(nil), v.rows...),
			Counts: make([]int, len(v.rows)),
		}
		for i, r := range ext.Rows {
			ext.Counts[i] = v.counts.At(r).count
		}
		out[name] = ext
	}
	return out
}

// NewDeltaEngineWithExtents builds an engine whose counted extents are
// seeded from a checkpoint instead of enumerated from scratch: delta plans
// are compiled and the join indexes / support counts are rebuilt by a
// linear scan of db's tables (deterministic from the rows), but the
// expensive initial full-plan enumeration is skipped entirely — the
// recovery fast path. The extents MUST be the ones a CheckpointExtents
// call produced against the same database state and view set; mismatches
// that are cheap to detect (unknown view, arity, duplicate or non-positive
// counts) are errors.
func NewDeltaEngineWithExtents(db *instance.Database, views map[string]*cq.UCQ, extents map[string]Extent) (*DeltaEngine, error) {
	e, _, err := newEngine(db, views, false)
	if err != nil {
		return nil, err
	}
	for _, name := range e.names {
		v := e.views[name]
		ext, ok := extents[name]
		if !ok {
			return nil, fmt.Errorf("eval: restore: no checkpointed extent for view %s", name)
		}
		if len(ext.Rows) != len(ext.Counts) {
			return nil, fmt.Errorf("eval: restore: view %s has %d rows but %d counts", name, len(ext.Rows), len(ext.Counts))
		}
		v.rows = make([][]uint32, len(ext.Rows))
		for i, r := range ext.Rows {
			if len(r) != v.arity {
				return nil, fmt.Errorf("eval: restore: view %s row has arity %d, want %d", name, len(r), v.arity)
			}
			if ext.Counts[i] <= 0 {
				return nil, fmt.Errorf("eval: restore: view %s row with non-positive derivation count %d", name, ext.Counts[i])
			}
			row := append([]uint32(nil), r...)
			v.rows[i] = row
			st := v.counts.At(row)
			if st.count != 0 {
				return nil, fmt.Errorf("eval: restore: view %s extent repeats a row", name)
			}
			st.count = ext.Counts[i]
			st.pos = i
		}
	}
	return e, nil
}

// newEngine compiles the views over db and rebuilds the join indexes and
// support counts from the current tables. With withInits it also compiles
// one full plan per disjunct (for NewDeltaEngine's initial enumeration);
// the restore path skips them — their indexes and enumeration are exactly
// the work a checkpoint avoids.
func newEngine(db *instance.Database, views map[string]*cq.UCQ, withInits bool) (*DeltaEngine, []*deltaPlan, error) {
	e := &DeltaEngine{
		db:    db,
		dict:  db.Dict,
		views: make(map[string]*viewState, len(views)),
		rels:  make(map[string]*relState),
	}
	for name := range views {
		e.names = append(e.names, name)
	}
	sort.Strings(e.names)

	// Compile one delta plan per (disjunct, atom occurrence); compilation
	// registers the DynIndexes the steps probe.
	var inits []*deltaPlan
	for _, name := range e.names {
		def := views[name]
		v := &viewState{name: name, arity: ucqArity(def)}
		idpos := make([]int, v.arity)
		for i := range idpos {
			idpos[i] = i
		}
		v.counts = intern.NewGrouper[rowStat](idpos)
		e.views[name] = v
		for _, d := range def.Disjuncts {
			n, err := d.Normalize()
			if err != nil {
				continue // unsatisfiable: contributes nothing, ever
			}
			if withInits {
				full, err := e.compile(v, n, -1)
				if err != nil {
					return nil, nil, fmt.Errorf("eval: view %s: %w", name, err)
				}
				inits = append(inits, full)
			}
			for i := range n.Atoms {
				p, err := e.compile(v, n, i)
				if err != nil {
					return nil, nil, fmt.Errorf("eval: view %s: %w", name, err)
				}
				e.rels[n.Atoms[i].Rel].plans = append(e.rels[n.Atoms[i].Rel].plans, p)
			}
		}
	}

	// Populate support counts and join indexes from the current tables.
	for rel, rs := range e.rels {
		t := db.Table(rel)
		for _, r := range t.IDRows() {
			cnt := rs.support.At(r)
			*cnt++
			if *cnt == 1 {
				for _, ix := range rs.indexes {
					ix.Add(r)
				}
			}
		}
	}
	return e, inits, nil
}

// relFor returns (creating on first use) the live state of a relation,
// erroring on names the database does not know.
func (e *DeltaEngine) relFor(rel string) (*relState, error) {
	if rs, ok := e.rels[rel]; ok {
		return rs, nil
	}
	t := e.db.Table(rel)
	if t == nil {
		return nil, fmt.Errorf("unknown relation %s", rel)
	}
	arity := t.Rel.Arity()
	idpos := make([]int, arity)
	for i := range idpos {
		idpos[i] = i
	}
	rs := &relState{
		arity:   arity,
		support: intern.NewGrouper[int](idpos),
		indexes: make(map[string]*intern.DynIndex),
	}
	e.rels[rel] = rs
	return rs, nil
}

// indexOn returns (creating and registering on first use) the DynIndex of
// rel keyed by the argument positions pos.
func (e *DeltaEngine) indexOn(rel string, pos []int) (*intern.DynIndex, error) {
	rs, err := e.relFor(rel)
	if err != nil {
		return nil, err
	}
	key := fmt.Sprint(pos)
	if ix, ok := rs.indexes[key]; ok {
		return ix, nil
	}
	ix := intern.NewDynIndex(append([]int(nil), pos...))
	rs.indexes[key] = ix
	return ix, nil
}

// compile builds the delta plan of disjunct n triggered by atom occurrence
// trig (trig == -1 compiles the full plan over all atoms, used once to
// seed the initial counts). Steps are ordered greedily to maximize bound
// argument positions, mirroring orderAtoms.
func (e *DeltaEngine) compile(v *viewState, n *cq.CQ, trig int) (*deltaPlan, error) {
	p := &deltaPlan{view: v}
	slotOf := map[string]int{}
	slot := func(name string) (int, bool) {
		s, ok := slotOf[name]
		return s, ok
	}
	newSlot := func(name string) int {
		s := p.nslots
		slotOf[name] = s
		p.nslots++
		return s
	}

	trigRel := ""
	if trig >= 0 {
		a := n.Atoms[trig]
		trigRel = a.Rel
		rs, err := e.relFor(a.Rel)
		if err != nil {
			return nil, err
		}
		if len(a.Args) != rs.arity {
			return nil, fmt.Errorf("atom %s has %d arguments, relation has %d", a, len(a.Args), rs.arity)
		}
		p.trigger.arity = rs.arity
		seen := map[string]int{}
		for i, t := range a.Args {
			if t.Const {
				p.trigger.consts = append(p.trigger.consts, posConst{pos: i, id: e.dict.ID(t.Val)})
				continue
			}
			if first, dup := seen[t.Val]; dup {
				p.trigger.dups = append(p.trigger.dups, [2]int{first, i})
				continue
			}
			seen[t.Val] = i
			p.trigger.binds = append(p.trigger.binds, posSlot{pos: i, slot: newSlot(t.Val)})
		}
	}

	// Remaining atoms, greedily ordered: most bound argument positions
	// first, then fewer new variables.
	var remaining []int
	for i := range n.Atoms {
		if i != trig {
			remaining = append(remaining, i)
		}
	}
	for len(remaining) > 0 {
		best, bestScore := -1, -1<<30
		for ri, ai := range remaining {
			score := 0
			for _, t := range n.Atoms[ai].Args {
				if t.Const {
					score += 2
				} else if _, ok := slot(t.Val); ok {
					score += 2
				} else {
					score--
				}
			}
			if score > bestScore {
				best, bestScore = ri, score
			}
		}
		ai := remaining[best]
		remaining = append(remaining[:best], remaining[best+1:]...)
		a := n.Atoms[ai]
		rs, err := e.relFor(a.Rel)
		if err != nil {
			return nil, err
		}
		if len(a.Args) != rs.arity {
			return nil, fmt.Errorf("atom %s has %d arguments, relation has %d", a, len(a.Args), rs.arity)
		}
		st := joinStep{exclude: trig >= 0 && a.Rel == trigRel && ai < trig}
		var keyPos []int
		seen := map[string]int{}
		for i, t := range a.Args {
			if t.Const {
				keyPos = append(keyPos, i)
				st.key = append(st.key, valSrc{isConst: true, id: e.dict.ID(t.Val)})
				continue
			}
			// A repeat of a variable FIRST bound by this very atom cannot
			// go into the lookup key (its slot is only filled by this
			// step's own binds); it becomes an intra-row equality check.
			if first, dup := seen[t.Val]; dup {
				st.post = append(st.post, [2]int{first, i})
				continue
			}
			if s, bound := slot(t.Val); bound {
				keyPos = append(keyPos, i)
				st.key = append(st.key, valSrc{slot: s})
				continue
			}
			seen[t.Val] = i
			st.binds = append(st.binds, posSlot{pos: i, slot: newSlot(t.Val)})
		}
		st.index, err = e.indexOn(a.Rel, keyPos)
		if err != nil {
			return nil, err
		}
		p.steps = append(p.steps, st)
	}

	for _, t := range n.Head {
		if t.Const {
			p.head = append(p.head, valSrc{isConst: true, id: e.dict.ID(t.Val)})
			continue
		}
		s, ok := slot(t.Val)
		if !ok {
			return nil, fmt.Errorf("unsafe query, unbound head variable %s", t.Val)
		}
		p.head = append(p.head, valSrc{slot: s})
	}
	return p, nil
}

// enumerate walks a plan's steps for delta tuple t (nil for the full
// plan), applying sign to the view count of every valuation's head row.
func (e *DeltaEngine) enumerate(p *deltaPlan, t []uint32, sign int) error {
	slots := make([]uint32, p.nslots)
	if t != nil {
		for _, c := range p.trigger.consts {
			if t[c.pos] != c.id {
				return nil
			}
		}
		for _, d := range p.trigger.dups {
			if t[d[0]] != t[d[1]] {
				return nil
			}
		}
		for _, b := range p.trigger.binds {
			slots[b.slot] = t[b.pos]
		}
	}
	key := make([]uint32, 0, 8)
	head := make([]uint32, len(p.head))
	var rec func(i int) error
	rec = func(i int) error {
		if i == len(p.steps) {
			for j, h := range p.head {
				if h.isConst {
					head[j] = h.id
				} else {
					head[j] = slots[h.slot]
				}
			}
			return e.bump(p.view, head, sign)
		}
		st := &p.steps[i]
		key = key[:0]
		for _, k := range st.key {
			if k.isConst {
				key = append(key, k.id)
			} else {
				key = append(key, slots[k.slot])
			}
		}
	rows:
		for _, r := range st.index.Get(key) {
			if st.exclude && intern.RowsEq(r, t) {
				continue
			}
			for _, d := range st.post {
				if r[d[0]] != r[d[1]] {
					continue rows
				}
			}
			for _, b := range st.binds {
				slots[b.slot] = r[b.pos]
			}
			if err := rec(i + 1); err != nil {
				return err
			}
		}
		return nil
	}
	return rec(0)
}

// bump applies a derivation-count change to one view row, patching the
// extent on 0↔positive transitions.
func (e *DeltaEngine) bump(v *viewState, row []uint32, sign int) error {
	st := v.counts.At(row)
	old := st.count
	st.count += sign
	switch {
	case st.count < 0:
		return fmt.Errorf("eval: view %s: negative derivation count for a row — delta out of sync with the database", v.name)
	case old == 0 && st.count > 0:
		st.pos = len(v.rows)
		v.rows = append(v.rows, append([]uint32(nil), row...))
	case old > 0 && st.count == 0:
		last := len(v.rows) - 1
		if st.pos < v.sharedLen || last < v.sharedLen {
			// The swap-remove would overwrite a slot a published epoch
			// header still reads: privatize the header first. Rows (the
			// []uint32 elements) are immutable and stay shared.
			v.rows = append(make([][]uint32, 0, len(v.rows)+8), v.rows...)
			v.sharedLen = 0
		}
		moved := v.rows[last]
		v.rows[st.pos] = moved
		v.rows[last] = nil
		v.rows = v.rows[:last]
		if st.pos != last {
			v.counts.At(moved).pos = st.pos
		}
		// Drop the spent entry: a long-running server's memory must track
		// the live extent, not every row ever derived.
		v.counts.Remove(row)
	}
	return nil
}

// Apply folds a physically applied batch delta into the counted extents
// and join indexes, in the database's application order (deletes, then
// inserts). It returns the names of the views whose extents changed, for
// patching prepared plan inputs.
func (e *DeltaEngine) Apply(a *instance.Applied) ([]string, error) {
	// A view is reported changed when any transition triggered its plans —
	// a cheap over-approximation (the extent header may also move on
	// append), which is exactly what prepared-view patching needs.
	dirty := make(map[string]bool)
	for _, op := range a.Deleted {
		rs, ok := e.rels[op.Rel]
		if !ok {
			continue // relation not referenced by any view: nothing to maintain
		}
		cnt := rs.support.At(op.IDs)
		if *cnt <= 0 {
			return nil, fmt.Errorf("eval: delta engine out of sync: delete of unsupported row in %s", op.Rel)
		}
		*cnt--
		if *cnt > 0 {
			continue // another physical copy remains: no set-level change
		}
		// Enumerate lost valuations while the row is still indexed, then
		// retract it from the join state (dropping the spent support
		// entry, so memory tracks live rows, not churn volume).
		for _, p := range rs.plans {
			if err := e.enumerate(p, op.IDs, -1); err != nil {
				return nil, err
			}
			dirty[p.view.name] = true
		}
		for _, ix := range rs.indexes {
			if !ix.Remove(op.IDs) {
				// Same class of misuse the support-count check catches:
				// fail fast rather than serve stale joins.
				return nil, fmt.Errorf("eval: delta engine out of sync: retracted row missing from a join index of %s", op.Rel)
			}
		}
		rs.support.Remove(op.IDs)
	}
	for _, op := range a.Inserted {
		rs, ok := e.rels[op.Rel]
		if !ok {
			continue // relation not referenced by any view: nothing to maintain
		}
		cnt := rs.support.At(op.IDs)
		*cnt++
		if *cnt > 1 {
			continue // duplicate of a supported row: no set-level change
		}
		// Index the row first, then count the gained valuations: the
		// decomposition's exclude filters keep occurrences before the
		// trigger from double-counting t.
		row := append([]uint32(nil), op.IDs...)
		for _, ix := range rs.indexes {
			ix.Add(row)
		}
		for _, p := range rs.plans {
			if err := e.enumerate(p, row, +1); err != nil {
				return nil, err
			}
			dirty[p.view.name] = true
		}
	}

	var changed []string
	for _, name := range e.names {
		if dirty[name] {
			changed = append(changed, name)
		}
	}
	return changed, nil
}

// ExtentIDs returns a view's current interned extent. The slice is owned
// by the engine: it is patched in place by Apply and must only be read
// while no Apply is running (the Live handle's read lock).
func (e *DeltaEngine) ExtentIDs(name string) [][]uint32 {
	v, ok := e.views[name]
	if !ok {
		return nil
	}
	return v.rows
}

// PublishExtentIDs returns an immutable header of the view's current
// extent and marks it shared: the slice (capped at its length) is never
// mutated by later Apply calls — maintenance copies the header on write
// instead — so epoch-based readers may keep serving it without locks for
// as long as they hold it. Each call publishes the CURRENT state; callers
// snapshot once per epoch.
func (e *DeltaEngine) PublishExtentIDs(name string) [][]uint32 {
	v, ok := e.views[name]
	if !ok {
		return nil
	}
	v.sharedLen = len(v.rows)
	return v.rows[:len(v.rows):len(v.rows)]
}

// CompactExtents repacks the backing arrays of views whose live fraction
// dropped below frac: swap-remove deletions shrink an extent's length but
// never its capacity, and the copy-on-write privatization in bump sizes
// its copy for the then-current length — so a view that grew large and
// then shrank strands the difference until repacked. Arrays below minCap
// are skipped (the copy costs more than the slack is worth).
//
// Repacking only replaces the engine's PRIVATE header; any published
// headers keep aliasing the old array, which stays alive as long as an
// epoch pins it. The caller must therefore re-publish the returned views
// on its next epoch, or all later epochs keep pinning the fat array
// through their inherited headers.
func (e *DeltaEngine) CompactExtents(minCap int, frac float64) []string {
	var repacked []string
	for _, name := range e.names {
		v := e.views[name]
		if cap(v.rows) < minCap || float64(len(v.rows)) >= frac*float64(cap(v.rows)) {
			continue
		}
		fresh := make([][]uint32, len(v.rows), len(v.rows)+len(v.rows)/8+8)
		copy(fresh, v.rows)
		v.rows, v.sharedLen = fresh, 0
		repacked = append(repacked, name)
	}
	return repacked
}

// ExtentsIDs returns all interned extents, keyed by view name.
func (e *DeltaEngine) ExtentsIDs() map[string][][]uint32 {
	out := make(map[string][][]uint32, len(e.views))
	for name, v := range e.views {
		out[name] = v.rows
	}
	return out
}

// Views decodes the current extents, usable directly as plan.Materialized.
func (e *DeltaEngine) Views() map[string][][]string {
	out := make(map[string][][]string, len(e.views))
	for name, v := range e.views {
		out[name] = e.dict.DecodeAll(v.rows)
		if out[name] == nil {
			out[name] = [][]string{}
		}
	}
	return out
}

// ucqArity returns the head arity of a UCQ (0 for an empty union).
func ucqArity(u *cq.UCQ) int {
	if len(u.Disjuncts) == 0 {
		return 0
	}
	return len(u.Disjuncts[0].Head)
}
