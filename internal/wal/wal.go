// Package wal is the durability subsystem: a write-ahead log that journals
// every accepted ApplyDelta batch keyed by its epoch sequence number, plus
// checkpoints that serialize a whole epoch (dictionary, ID shadows, view
// extents, statistics) so a restart is "load latest checkpoint, replay the
// log suffix" instead of re-interning and re-materializing everything.
//
// On-disk layout (one directory per durable handle):
//
//	wal-<firstSeq>.log    segments of CRC-framed records (see Record)
//	ckpt-<seq>.ckpt       checkpoints, written atomically (tmp + rename)
//
// Both file kinds carry a header with the schema and view-set fingerprints
// of the system that wrote them; opening with a different system is an
// error, never a silent misreplay.
//
// The log relies on an ID-determinism invariant: interned IDs are dense
// and assigned in first-intern order, so journaling each batch's
// dictionary GROWTH (the strings in [hwm, len) at append time, where hwm
// is the journal's high-water mark) lets replay re-assign the exact same
// IDs by re-interning those strings in journal order. Checkpoints store
// the prefix [0, hwm) only — strings interned by readers after the last
// append are re-journaled by the next record instead.
package wal

import (
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/instance"
	"repro/internal/intern"
	"repro/internal/obs"
)

// Options configure a durable directory.
type Options struct {
	SchemaFP uint64 // fingerprint of the schema the log serializes IDs for
	ViewsFP  uint64 // fingerprint of the maintained view set

	// GroupCommit is the fsync batching window. Zero syncs inline on every
	// Append — each acked batch is durable. A positive window acks after
	// the buffered write and fsyncs at most once per window: a crash may
	// lose up to the last window of acked batches, but recovery still
	// lands on a consistent epoch prefix (never a torn batch).
	GroupCommit time.Duration
}

// Fingerprint hashes the given parts into the header fingerprints.
func Fingerprint(parts ...string) uint64 {
	h := fnv.New64a()
	for _, p := range parts {
		h.Write([]byte(p))
		h.Write([]byte{0})
	}
	return h.Sum64()
}

// Recovered is what Open found in a non-fresh directory: the newest valid
// checkpoint and the contiguous record suffix after it, ready to replay.
type Recovered struct {
	Checkpoint *Checkpoint
	Records    []*Record // seq Checkpoint.Seq+1 .. Checkpoint.Seq+len, in order
	TornTail   bool      // an incomplete tail was discarded (and truncated)
}

// Log is an open write-ahead log. One writer at a time: the serving
// handle's write lock already serializes ApplyDelta, and Append/
// WriteCheckpoint/Close take the log's own mutex against the group-commit
// syncer.
type Log struct {
	dir  string
	opts Options

	mu     sync.Mutex
	f      *os.File // active segment
	seq    uint64   // next record sequence number
	base   uint64   // newest installed checkpoint's sequence number
	hwm    int      // dictionary IDs < hwm are durably journaled
	fresh  bool     // no checkpoint written yet (Append disallowed)
	dirty  bool     // active segment has unsynced writes
	err    error    // first write/sync failure; poisons the log
	closed bool
	buf    []byte

	stop chan struct{} // closes the group-commit syncer
	wg   sync.WaitGroup

	met *obs.WALMetrics // durability instruments (nil when disabled)
}

// SetMetrics installs the durability instruments: append/fsync and
// checkpoint latency histograms, plus the fence-event counter bumped
// when a write failure poisons the log. Call before the first Append
// (the serving layer installs them at open, under its write lock).
func (l *Log) SetMetrics(m *obs.WALMetrics) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.met = m
}

// poisonLocked records the log's FIRST poison error and counts the
// fence event; later calls keep the original error. Callers hold l.mu.
func (l *Log) poisonLocked(err error) error {
	if l.err == nil {
		l.err = err
		if l.met != nil {
			l.met.Fences.Add(1)
		}
	}
	return l.err
}

func segName(firstSeq uint64) string { return fmt.Sprintf("wal-%016x.log", firstSeq) }
func ckptName(seq uint64) string     { return fmt.Sprintf("ckpt-%016x.ckpt", seq) }

func parseSeq(name, prefix, suffix string) (uint64, bool) {
	if !strings.HasPrefix(name, prefix) || !strings.HasSuffix(name, suffix) {
		return 0, false
	}
	mid := name[len(prefix) : len(name)-len(suffix)]
	var seq uint64
	if _, err := fmt.Sscanf(mid, "%016x", &seq); err != nil || len(mid) != 16 {
		return 0, false
	}
	return seq, true
}

func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}

// Open opens (or initializes) a durable directory. A directory with no
// checkpoint is fresh: Recovered is nil and the caller MUST write the
// initial checkpoint (the opening epoch) before the first Append. A
// non-fresh directory yields the newest valid checkpoint plus the record
// suffix to replay; the log resumes appending after the last good record.
func Open(dir string, o Options) (*Log, *Recovered, error) {
	if err := os.MkdirAll(dir, 0o777); err != nil {
		return nil, nil, err
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, err
	}
	var ckptSeqs, segSeqs []uint64
	for _, e := range entries {
		if seq, ok := parseSeq(e.Name(), "ckpt-", ".ckpt"); ok {
			ckptSeqs = append(ckptSeqs, seq)
		}
		if seq, ok := parseSeq(e.Name(), "wal-", ".log"); ok {
			segSeqs = append(segSeqs, seq)
		}
	}
	l := &Log{dir: dir, opts: o, stop: make(chan struct{})}

	if len(ckptSeqs) == 0 {
		if len(segSeqs) > 0 {
			return nil, nil, fmt.Errorf("wal: %s has log segments but no checkpoint", dir)
		}
		l.fresh = true
		l.startSyncer()
		return l, nil, nil
	}

	// Newest structurally valid checkpoint wins; a corrupt newest (torn
	// machine, bad disk) falls back to the previous one, whose log suffix
	// is still present until the NEXT checkpoint prunes it.
	sort.Slice(ckptSeqs, func(i, j int) bool { return ckptSeqs[i] > ckptSeqs[j] })
	var ck *Checkpoint
	var ckErr error
	for _, seq := range ckptSeqs {
		c, err := readCheckpointFile(filepath.Join(dir, ckptName(seq)), o)
		if err == nil {
			ck = c
			break
		}
		if ckErr == nil {
			ckErr = err
		}
	}
	if ck == nil {
		return nil, nil, fmt.Errorf("wal: %s has no usable checkpoint: %w", dir, ckErr)
	}

	// Read every segment in firstSeq order and concatenate their records.
	// Only the final segment may end in a torn or corrupt tail (earlier
	// segments are fsynced before the roll); it is truncated to the last
	// complete record so resumed appends continue from a clean boundary.
	sort.Slice(segSeqs, func(i, j int) bool { return segSeqs[i] < segSeqs[j] })
	rec := &Recovered{Checkpoint: ck}
	var lastPath string
	var lastGood int
	for i, first := range segSeqs {
		path := filepath.Join(dir, segName(first))
		b, err := os.ReadFile(path)
		if err != nil {
			return nil, nil, err
		}
		if _, err := parseFileHeader(b, walMagic, o); err != nil {
			return nil, nil, fmt.Errorf("wal: segment %s: %w", path, err)
		}
		recs, good := ScanRecords(b[fileHeader:])
		if fileHeader+good != len(b) {
			if i != len(segSeqs)-1 {
				return nil, nil, fmt.Errorf("wal: non-final segment %s is corrupt at offset %d", path, fileHeader+good)
			}
			rec.TornTail = true
		}
		for _, r := range recs {
			if r.Seq <= ck.Seq {
				continue // already folded into the checkpoint
			}
			if want := ck.Seq + uint64(len(rec.Records)) + 1; r.Seq != want {
				return nil, nil, fmt.Errorf("wal: record gap: got seq %d, want %d", r.Seq, want)
			}
			rec.Records = append(rec.Records, r)
		}
		lastPath, lastGood = path, fileHeader+good
	}
	if rec.TornTail {
		if err := os.Truncate(lastPath, int64(lastGood)); err != nil {
			return nil, nil, err
		}
	}

	l.seq = ck.Seq + uint64(len(rec.Records)) + 1
	l.base = ck.Seq
	l.hwm = len(ck.Dict)
	for _, r := range rec.Records {
		l.hwm += len(r.Dict)
	}
	if lastPath != "" {
		f, err := os.OpenFile(lastPath, os.O_WRONLY|os.O_APPEND, 0o666)
		if err != nil {
			return nil, nil, err
		}
		l.f = f
	}
	l.startSyncer()
	return l, rec, nil
}

// startSyncer launches the group-commit goroutine when a window is set.
func (l *Log) startSyncer() {
	if l.opts.GroupCommit <= 0 {
		return
	}
	l.wg.Add(1)
	go func() {
		defer l.wg.Done()
		t := time.NewTicker(l.opts.GroupCommit)
		defer t.Stop()
		for {
			select {
			case <-l.stop:
				return
			case <-t.C:
				l.mu.Lock()
				l.syncLocked()
				l.mu.Unlock()
			}
		}
	}()
}

// syncLocked flushes the active segment if dirty, recording the first
// failure as the log's poison error.
func (l *Log) syncLocked() {
	if !l.dirty || l.err != nil || l.f == nil {
		return
	}
	var t0 time.Time
	if l.met != nil {
		t0 = time.Now()
	}
	if err := l.f.Sync(); err != nil {
		l.poisonLocked(fmt.Errorf("wal: fsync: %w", err))
		return
	}
	if l.met != nil {
		l.met.Fsyncs.Add(1)
		l.met.FsyncLatency.Observe(time.Since(t0))
	}
	l.dirty = false
}

// Append journals one accepted batch: the epoch sequence number it will
// publish, the dictionary growth since the previous append, and the
// physically applied ops. seq must be exactly the next sequence number —
// the log and the handle's epoch counter advance in lockstep. With a zero
// group-commit window the record is fsynced before Append returns.
func (l *Log) Append(dict *intern.Dict, seq uint64, a *instance.Applied) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	switch {
	case l.err != nil:
		return l.err
	case l.closed:
		return fmt.Errorf("wal: log is closed")
	case l.fresh:
		return fmt.Errorf("wal: append before the initial checkpoint")
	case seq != l.seq:
		return fmt.Errorf("wal: append out of order: got seq %d, want %d", seq, l.seq)
	}
	var t0 time.Time
	if l.met != nil {
		t0 = time.Now()
	}
	n := dict.Len()
	r := &Record{Seq: seq, Dict: dict.StringsRange(l.hwm, n)}
	relIdx := make(map[string]int)
	relOf := func(op instance.AppliedOp) int {
		i, ok := relIdx[op.Rel]
		if !ok {
			i = len(r.Rels)
			relIdx[op.Rel] = i
			r.Rels = append(r.Rels, RelMeta{Name: op.Rel, Arity: len(op.IDs)})
		}
		return i
	}
	for _, op := range a.Deleted {
		r.Deletes = append(r.Deletes, Op{Rel: relOf(op), Row: op.IDs})
	}
	for _, op := range a.Inserted {
		r.Inserts = append(r.Inserts, Op{Rel: relOf(op), Row: op.IDs})
	}
	l.buf = AppendFrame(l.buf[:0], EncodeRecord(nil, r))
	if _, err := l.f.Write(l.buf); err != nil {
		return l.poisonLocked(fmt.Errorf("wal: append: %w", err))
	}
	l.dirty = true
	l.seq++
	l.hwm = n
	if l.opts.GroupCommit <= 0 {
		l.syncLocked()
	}
	if l.met != nil && l.err == nil {
		// Append latency covers encode + write + the inline fsync of a
		// zero group-commit window; with a window armed the fsync cost
		// lands in the fsync histogram from the syncer goroutine instead.
		l.met.Appends.Add(1)
		l.met.AppendLatency.Observe(time.Since(t0))
	}
	return l.err
}

// WriteCheckpoint durably serializes the CURRENT epoch (ck.Seq must be the
// last appended sequence number; on a fresh log it seeds the sequence) and
// installs it as the recovery base: the active segment is flushed, the
// checkpoint is written atomically (tmp + rename + dir fsync), a new
// segment is rolled, and superseded segments and checkpoints are pruned.
// ck.Dict is filled by the log with the journaled prefix [0, hwm).
func (l *Log) WriteCheckpoint(dict *intern.Dict, ck *Checkpoint) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.err != nil {
		return l.err
	}
	if l.closed {
		return fmt.Errorf("wal: log is closed")
	}
	if l.fresh {
		l.hwm = dict.Len()
		l.seq = ck.Seq + 1
	} else if ck.Seq != l.seq-1 {
		return fmt.Errorf("wal: checkpoint at seq %d, log is at %d", ck.Seq, l.seq-1)
	}
	ck.Dict = dict.StringsRange(0, l.hwm)
	var t0 time.Time
	if l.met != nil {
		t0 = time.Now()
	}
	if err := l.writeCheckpointLocked(ck); err != nil {
		return l.poisonLocked(err)
	}
	if l.met != nil {
		l.met.Checkpoints.Add(1)
		l.met.CheckpointDur.Observe(time.Since(t0))
	}
	l.fresh = false
	return nil
}

func (l *Log) writeCheckpointLocked(ck *Checkpoint) error {
	// 1. Everything the checkpoint supersedes must be durable first, so a
	// crash at any point below still recovers (from the old base if the
	// new checkpoint is not fully installed, from the new one after).
	if l.f != nil {
		if err := l.f.Sync(); err != nil {
			return fmt.Errorf("wal: fsync before checkpoint: %w", err)
		}
		l.dirty = false
	}

	// 2. Atomic checkpoint install.
	b, err := encodeCheckpoint(ck, l.opts)
	if err != nil {
		return err
	}
	final := filepath.Join(l.dir, ckptName(ck.Seq))
	tmp := final + ".tmp"
	if err := writeFileSync(tmp, b); err != nil {
		return err
	}
	if err := os.Rename(tmp, final); err != nil {
		return err
	}
	if err := syncDir(l.dir); err != nil {
		return err
	}

	// 3. Roll a fresh segment for the records after the checkpoint.
	seg := filepath.Join(l.dir, segName(ck.Seq+1))
	f, err := os.OpenFile(seg, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o666)
	if err != nil {
		return err
	}
	if _, err := f.Write(fileHeaderBytes(walMagic, l.opts.SchemaFP, l.opts.ViewsFP, ck.Seq+1)); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if l.f != nil {
		l.f.Close()
	}
	l.f = f

	// 4. Prune with one generation of slack: the PREVIOUS base checkpoint
	// and the segments covering its suffix stay until the next checkpoint,
	// so recovery can fall back if the newest checkpoint file is ever
	// unreadable (bit rot — installs themselves are atomic). Pruning is
	// best-effort: leftovers are re-pruned by later checkpoints.
	prevBase := l.base
	l.base = ck.Seq
	entries, err := os.ReadDir(l.dir)
	if err == nil {
		for _, e := range entries {
			if seq, ok := parseSeq(e.Name(), "wal-", ".log"); ok && seq <= prevBase {
				os.Remove(filepath.Join(l.dir, e.Name()))
			}
			if seq, ok := parseSeq(e.Name(), "ckpt-", ".ckpt"); ok && seq < prevBase {
				os.Remove(filepath.Join(l.dir, e.Name()))
			}
		}
	}
	return syncDir(l.dir)
}

func writeFileSync(path string, b []byte) error {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o666)
	if err != nil {
		return err
	}
	if _, err := f.Write(b); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// Sync forces any buffered records to disk (a group-commit window flush on
// demand). Returns the log's poison error if writes have failed.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.syncLocked()
	return l.err
}

// Err returns the log's poison error, if any write or sync has failed.
func (l *Log) Err() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.err
}

// NextSeq returns the sequence number the next Append must carry.
func (l *Log) NextSeq() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.seq
}

// Close stops the group-commit syncer, flushes, and closes the active
// segment. The caller typically writes a final checkpoint first.
func (l *Log) Close() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil
	}
	l.closed = true
	close(l.stop)
	l.syncLocked()
	err := l.err
	if l.f != nil {
		if cerr := l.f.Close(); err == nil {
			err = cerr
		}
		l.f = nil
	}
	l.mu.Unlock()
	l.wg.Wait()
	return err
}
