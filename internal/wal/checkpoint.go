package wal

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"hash/crc32"
	"os"

	"repro/internal/plan"
)

// Checkpoint is a serialized epoch: everything needed to rebuild a serving
// handle at sequence Seq without replaying history before it.
//
// Dict holds the dictionary prefix [0, hwm) — the strings the journal had
// durably assigned IDs to when the checkpoint was taken. Every ID the
// tables, views and replayable log suffix reference is below hwm or is
// assigned by a suffix record's own growth section, so restoring this
// prefix and replaying reproduces identical IDs. Strings interned after
// hwm (reader-side interning not yet journaled) are deliberately excluded:
// the record that journals them re-assigns the same IDs on replay.
//
// Views is the unsharded engine's counted extents; the sharded engine
// writes a logical checkpoint (no Views) and rebuilds its per-shard
// extents from the restored tables on open.
type Checkpoint struct {
	Seq        uint64
	StatsVer   uint64
	StatsChurn int
	Dict       []string
	Tables     []TableRows
	Views      []ViewExtent
	Stats      *plan.Stats
}

// TableRows is one relation's ID shadow in storage order.
type TableRows struct {
	Rel  string
	Rows [][]uint32
}

// ViewExtent is one view's counted extent (rows aligned with their
// derivation counts), mirroring eval.Extent.
type ViewExtent struct {
	Name   string
	Rows   [][]uint32
	Counts []int
}

// Checkpoint files: fixed header, gob-encoded Checkpoint, trailing CRC32
// over everything before it. Written to a temp file, fsynced, renamed —
// a checkpoint either exists completely or not at all.
const (
	ckptMagic   = "REPROCKP"
	walMagic    = "REPROWAL"
	walVersion  = 1
	fileHeader  = 8 + 4 + 8 + 8 + 8 // magic, version, schemaFP, viewsFP, firstSeq/seq
	ckptTrailer = 4
)

// fileHeaderBytes renders the shared segment/checkpoint header.
func fileHeaderBytes(magic string, schemaFP, viewsFP, seq uint64) []byte {
	b := make([]byte, fileHeader)
	copy(b, magic)
	binary.LittleEndian.PutUint32(b[8:], walVersion)
	binary.LittleEndian.PutUint64(b[12:], schemaFP)
	binary.LittleEndian.PutUint64(b[20:], viewsFP)
	binary.LittleEndian.PutUint64(b[28:], seq)
	return b
}

// parseFileHeader validates the magic/version and checks the fingerprints
// against the opener's: a schema or view-set mismatch means the durable
// state belongs to a different system and must not be replayed into this
// one (IDs and plan constants would not line up).
func parseFileHeader(b []byte, magic string, o Options) (seq uint64, err error) {
	if len(b) < fileHeader {
		return 0, fmt.Errorf("wal: file shorter than its header")
	}
	if string(b[:8]) != magic {
		return 0, fmt.Errorf("wal: bad magic %q", b[:8])
	}
	if v := binary.LittleEndian.Uint32(b[8:]); v != walVersion {
		return 0, fmt.Errorf("wal: unsupported version %d", v)
	}
	if fp := binary.LittleEndian.Uint64(b[12:]); fp != o.SchemaFP {
		return 0, fmt.Errorf("wal: durable state was written for a different schema (fingerprint %x, want %x)", fp, o.SchemaFP)
	}
	if fp := binary.LittleEndian.Uint64(b[20:]); fp != o.ViewsFP {
		return 0, fmt.Errorf("wal: durable state was written for a different view set (fingerprint %x, want %x)", fp, o.ViewsFP)
	}
	return binary.LittleEndian.Uint64(b[28:]), nil
}

// encodeCheckpoint renders the complete checkpoint file contents.
func encodeCheckpoint(ck *Checkpoint, o Options) ([]byte, error) {
	var buf bytes.Buffer
	buf.Write(fileHeaderBytes(ckptMagic, o.SchemaFP, o.ViewsFP, ck.Seq))
	if err := gob.NewEncoder(&buf).Encode(ck); err != nil {
		return nil, fmt.Errorf("wal: encode checkpoint: %w", err)
	}
	sum := crc32.Checksum(buf.Bytes(), crcTable)
	b := buf.Bytes()
	return binary.LittleEndian.AppendUint32(b, sum), nil
}

// readCheckpointFile loads and fully validates one checkpoint file.
func readCheckpointFile(path string, o Options) (*Checkpoint, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if len(b) < fileHeader+ckptTrailer {
		return nil, fmt.Errorf("wal: checkpoint %s truncated", path)
	}
	body, tail := b[:len(b)-ckptTrailer], b[len(b)-ckptTrailer:]
	if crc32.Checksum(body, crcTable) != binary.LittleEndian.Uint32(tail) {
		return nil, fmt.Errorf("wal: checkpoint %s fails its checksum", path)
	}
	seq, err := parseFileHeader(body, ckptMagic, o)
	if err != nil {
		return nil, fmt.Errorf("wal: checkpoint %s: %w", path, err)
	}
	ck := &Checkpoint{}
	if err := gob.NewDecoder(bytes.NewReader(body[fileHeader:])).Decode(ck); err != nil {
		return nil, fmt.Errorf("wal: checkpoint %s: decode: %w", path, err)
	}
	if ck.Seq != seq {
		return nil, fmt.Errorf("wal: checkpoint %s: header seq %d != body seq %d", path, seq, ck.Seq)
	}
	return ck, nil
}
