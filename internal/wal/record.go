package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
)

// Record is one journaled ApplyDelta batch: the epoch sequence number it
// published, the dictionary growth since the previous record (strings whose
// IDs are implicitly [hwm, hwm+len) in journal order — see Log), and the
// PHYSICALLY applied operations in application order (deletes first), each
// row already interned. Replaying records through the normal apply path in
// sequence order reproduces the exact same epochs, IDs included.
type Record struct {
	Seq     uint64
	Dict    []string // dictionary growth, IDs assigned densely from the journal hwm
	Rels    []RelMeta
	Deletes []Op
	Inserts []Op
}

// RelMeta names a relation referenced by this record's ops, with its arity
// (rows of the relation carry exactly Arity IDs).
type RelMeta struct {
	Name  string
	Arity int
}

// Op is one applied operation: Rel indexes the record's Rels table.
type Op struct {
	Rel int
	Row []uint32
}

// Record framing: each record is length-prefixed and CRC-guarded so a torn
// or corrupted tail is detected, never silently half-applied.
//
//	magic u16 | payloadLen u32 | crc32(payload) u32 | payload
const (
	frameMagic  = 0x57A1
	frameHeader = 2 + 4 + 4
	// maxPayload bounds a single record frame (and therefore the allocation
	// a hostile length prefix can demand). A batch journals its ops and
	// dictionary growth only, so even huge batches sit far below this.
	maxPayload = 1 << 30
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// appendUvarint / appendString are the payload primitives: uvarints for
// all counts and IDs, length-prefixed bytes for strings.
func appendUvarint(dst []byte, v uint64) []byte { return binary.AppendUvarint(dst, v) }

func appendString(dst []byte, s string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

// EncodeRecord appends r's payload (unframed) to dst.
func EncodeRecord(dst []byte, r *Record) []byte {
	dst = appendUvarint(dst, r.Seq)
	dst = appendUvarint(dst, uint64(len(r.Dict)))
	for _, s := range r.Dict {
		dst = appendString(dst, s)
	}
	dst = appendUvarint(dst, uint64(len(r.Rels)))
	for _, rm := range r.Rels {
		dst = appendString(dst, rm.Name)
		dst = appendUvarint(dst, uint64(rm.Arity))
	}
	for _, ops := range [2][]Op{r.Deletes, r.Inserts} {
		dst = appendUvarint(dst, uint64(len(ops)))
		for _, op := range ops {
			dst = appendUvarint(dst, uint64(op.Rel))
			for _, id := range op.Row {
				dst = appendUvarint(dst, uint64(id))
			}
		}
	}
	return dst
}

// payloadReader decodes a record payload with strict bounds: every read is
// validated against the remaining bytes, so corrupt frames produce errors,
// never panics or oversized allocations.
type payloadReader struct {
	b   []byte
	off int
}

func (p *payloadReader) uvarint() (uint64, error) {
	v, n := binary.Uvarint(p.b[p.off:])
	if n <= 0 {
		return 0, fmt.Errorf("wal: truncated uvarint at offset %d", p.off)
	}
	p.off += n
	return v, nil
}

func (p *payloadReader) count(elemMin int) (int, error) {
	v, err := p.uvarint()
	if err != nil {
		return 0, err
	}
	if elemMin < 1 {
		elemMin = 1
	}
	if v > uint64((len(p.b)-p.off)/elemMin) {
		return 0, fmt.Errorf("wal: count %d exceeds remaining payload", v)
	}
	return int(v), nil
}

func (p *payloadReader) str() (string, error) {
	n, err := p.uvarint()
	if err != nil {
		return "", err
	}
	if n > uint64(len(p.b)-p.off) {
		return "", fmt.Errorf("wal: string length %d exceeds remaining payload", n)
	}
	s := string(p.b[p.off : p.off+int(n)])
	p.off += int(n)
	return s, nil
}

// DecodeRecord parses one record payload. It is strict: every field is
// bounds-checked, relation indexes must resolve, arities bound the row
// reads, and trailing garbage is an error — a successfully decoded record
// is exactly what EncodeRecord wrote.
func DecodeRecord(payload []byte) (*Record, error) {
	p := &payloadReader{b: payload}
	r := &Record{}
	var err error
	if r.Seq, err = p.uvarint(); err != nil {
		return nil, err
	}
	nd, err := p.count(1)
	if err != nil {
		return nil, err
	}
	r.Dict = make([]string, nd)
	for i := range r.Dict {
		if r.Dict[i], err = p.str(); err != nil {
			return nil, err
		}
	}
	nr, err := p.count(2)
	if err != nil {
		return nil, err
	}
	r.Rels = make([]RelMeta, nr)
	for i := range r.Rels {
		if r.Rels[i].Name, err = p.str(); err != nil {
			return nil, err
		}
		a, err := p.uvarint()
		if err != nil {
			return nil, err
		}
		if a > 1<<16 {
			return nil, fmt.Errorf("wal: implausible arity %d", a)
		}
		r.Rels[i].Arity = int(a)
	}
	for k := 0; k < 2; k++ {
		n, err := p.count(1)
		if err != nil {
			return nil, err
		}
		ops := make([]Op, n)
		for i := range ops {
			rel, err := p.uvarint()
			if err != nil {
				return nil, err
			}
			if rel >= uint64(len(r.Rels)) {
				return nil, fmt.Errorf("wal: op references relation %d of %d", rel, len(r.Rels))
			}
			ops[i].Rel = int(rel)
			arity := r.Rels[rel].Arity
			ops[i].Row = make([]uint32, arity)
			for j := 0; j < arity; j++ {
				id, err := p.uvarint()
				if err != nil {
					return nil, err
				}
				if id > 1<<32-1 {
					return nil, fmt.Errorf("wal: ID %d overflows uint32", id)
				}
				ops[i].Row[j] = uint32(id)
			}
		}
		if k == 0 {
			r.Deletes = ops
		} else {
			r.Inserts = ops
		}
	}
	if p.off != len(payload) {
		return nil, fmt.Errorf("wal: %d trailing bytes after record", len(payload)-p.off)
	}
	return r, nil
}

// AppendFrame frames a payload for the log: magic, length, CRC, payload.
func AppendFrame(dst, payload []byte) []byte {
	var hdr [frameHeader]byte
	binary.LittleEndian.PutUint16(hdr[0:], frameMagic)
	binary.LittleEndian.PutUint32(hdr[2:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[6:], crc32.Checksum(payload, crcTable))
	dst = append(dst, hdr[:]...)
	return append(dst, payload...)
}

// nextFrame extracts the first framed payload of data. ok=false means data
// holds no complete valid frame at offset 0 (torn or corrupt).
func nextFrame(data []byte) (payload []byte, advance int, ok bool) {
	if len(data) < frameHeader {
		return nil, 0, false
	}
	if binary.LittleEndian.Uint16(data[0:]) != frameMagic {
		return nil, 0, false
	}
	n := binary.LittleEndian.Uint32(data[2:])
	if n > maxPayload || int(n) > len(data)-frameHeader {
		return nil, 0, false
	}
	payload = data[frameHeader : frameHeader+int(n)]
	if crc32.Checksum(payload, crcTable) != binary.LittleEndian.Uint32(data[6:]) {
		return nil, 0, false
	}
	return payload, frameHeader + int(n), true
}

// ScanRecords decodes consecutive framed records from data, stopping at
// the first torn or corrupt frame. goodLen is the byte offset just past
// the last fully valid record: recovery truncates the segment there. A
// frame whose payload fails record decoding also stops the scan — a CRC
// collision or a record from a newer writer — the suffix is discarded the
// same way a torn tail is.
func ScanRecords(data []byte) (recs []*Record, goodLen int) {
	off := 0
	for {
		payload, adv, ok := nextFrame(data[off:])
		if !ok {
			return recs, off
		}
		r, err := DecodeRecord(payload)
		if err != nil {
			return recs, off
		}
		recs = append(recs, r)
		off += adv
	}
}
