package wal

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/instance"
	"repro/internal/intern"
	"repro/internal/plan"
)

var testOpts = Options{SchemaFP: Fingerprint("schema"), ViewsFP: Fingerprint("views")}

// mkApplied builds a physical batch over rel "R" with the given ID rows.
func mkApplied(deletes, inserts [][]uint32) *instance.Applied {
	a := &instance.Applied{}
	for _, r := range deletes {
		a.Deleted = append(a.Deleted, instance.AppliedOp{Rel: "R", IDs: r})
	}
	for _, r := range inserts {
		a.Inserted = append(a.Inserted, instance.AppliedOp{Rel: "R", IDs: r})
	}
	return a
}

func TestRecordRoundTrip(t *testing.T) {
	r := &Record{
		Seq:  42,
		Dict: []string{"", "a", "weird \x00 value"},
		Rels: []RelMeta{{Name: "R", Arity: 2}, {Name: "S", Arity: 0}},
		Deletes: []Op{
			{Rel: 0, Row: []uint32{7, 9}},
			{Rel: 1, Row: nil},
		},
		Inserts: []Op{{Rel: 0, Row: []uint32{0, 1 << 31}}},
	}
	payload := EncodeRecord(nil, r)
	got, err := DecodeRecord(payload)
	if err != nil {
		t.Fatal(err)
	}
	if got.Seq != r.Seq || len(got.Dict) != 3 || got.Dict[2] != r.Dict[2] {
		t.Fatalf("decoded %+v", got)
	}
	if len(got.Deletes) != 2 || len(got.Inserts) != 1 || got.Inserts[0].Row[1] != 1<<31 {
		t.Fatalf("decoded ops %+v / %+v", got.Deletes, got.Inserts)
	}
	if got.Rels[1].Arity != 0 || len(got.Deletes[1].Row) != 0 {
		t.Fatal("zero-arity op lost")
	}
	// Trailing garbage after a valid record is an error.
	if _, err := DecodeRecord(append(payload, 0)); err == nil {
		t.Fatal("trailing bytes must fail")
	}
}

// writeFixture creates a durable dir with an initial checkpoint and n
// appended records (each growing the dictionary and touching R), and
// returns the dict used.
func writeFixture(t *testing.T, dir string, n int, o Options) *intern.Dict {
	t.Helper()
	l, rec, err := Open(dir, o)
	if err != nil {
		t.Fatal(err)
	}
	if rec != nil {
		t.Fatal("fresh dir must have nil Recovered")
	}
	dict := intern.NewDict()
	dict.ID("base0")
	dict.ID("base1")
	ck := &Checkpoint{
		Seq:    0,
		Tables: []TableRows{{Rel: "R", Rows: [][]uint32{{0, 1}}}},
		Stats:  &plan.Stats{RelRows: map[string]int{"R": 1}},
	}
	if err := l.WriteCheckpoint(dict, ck); err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= n; i++ {
		a := dict.ID(fmt.Sprintf("v%d", i)) // per-batch dictionary growth
		if err := l.Append(dict, uint64(i), mkApplied(nil, [][]uint32{{0, a}})); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	return dict
}

func TestLogRoundTripAndResume(t *testing.T) {
	dir := t.TempDir()
	writeFixture(t, dir, 5, testOpts)

	l, rec, err := Open(dir, testOpts)
	if err != nil {
		t.Fatal(err)
	}
	if rec == nil || rec.Checkpoint.Seq != 0 || rec.TornTail {
		t.Fatalf("recovered %+v", rec)
	}
	if len(rec.Checkpoint.Dict) != 2 || rec.Checkpoint.Stats.RelRows["R"] != 1 {
		t.Fatalf("checkpoint contents %+v", rec.Checkpoint)
	}
	if len(rec.Records) != 5 {
		t.Fatalf("recovered %d records, want 5", len(rec.Records))
	}
	for i, r := range rec.Records {
		if r.Seq != uint64(i+1) || len(r.Dict) != 1 || r.Dict[0] != fmt.Sprintf("v%d", i+1) {
			t.Fatalf("record %d: %+v", i, r)
		}
		if len(r.Inserts) != 1 || r.Rels[r.Inserts[0].Rel].Name != "R" {
			t.Fatalf("record %d ops: %+v", i, r)
		}
	}

	// Resume: rebuild the dict exactly as a replayer would, append more.
	dict, ok := intern.FromStrings(rec.Checkpoint.Dict)
	if !ok {
		t.Fatal("checkpoint dict corrupt")
	}
	for _, r := range rec.Records {
		for _, s := range r.Dict {
			dict.ID(s)
		}
	}
	if l.NextSeq() != 6 {
		t.Fatalf("NextSeq = %d, want 6", l.NextSeq())
	}
	if err := l.Append(dict, 6, mkApplied([][]uint32{{0, 1}}, nil)); err != nil {
		t.Fatal(err)
	}
	// Out-of-order appends are rejected.
	if err := l.Append(dict, 9, mkApplied(nil, nil)); err == nil {
		t.Fatal("out-of-order append must fail")
	}
	// Checkpoint at the tip, then one more record; reopen sees exactly them.
	ck := &Checkpoint{Seq: 6, Tables: []TableRows{{Rel: "R", Rows: nil}}, Stats: &plan.Stats{}}
	if err := l.WriteCheckpoint(dict, ck); err != nil {
		t.Fatal(err)
	}
	if len(ck.Dict) != dict.Len() {
		t.Fatalf("checkpoint dict hwm %d, want %d", len(ck.Dict), dict.Len())
	}
	if err := l.Append(dict, 7, mkApplied(nil, nil)); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	_, rec, err = Open(dir, testOpts)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Checkpoint.Seq != 6 || len(rec.Records) != 1 || rec.Records[0].Seq != 7 {
		t.Fatalf("after re-checkpoint: ck %d, %d records", rec.Checkpoint.Seq, len(rec.Records))
	}
	// Empty batches journal too (epoch numbering never drifts).
	if len(rec.Records[0].Inserts)+len(rec.Records[0].Deletes) != 0 {
		t.Fatal("empty batch must journal as empty")
	}
}

func TestFingerprintMismatch(t *testing.T) {
	dir := t.TempDir()
	writeFixture(t, dir, 1, testOpts)
	bad := testOpts
	bad.SchemaFP++
	if _, _, err := Open(dir, bad); err == nil {
		t.Fatal("schema fingerprint mismatch must fail")
	}
	bad = testOpts
	bad.ViewsFP++
	if _, _, err := Open(dir, bad); err == nil {
		t.Fatal("view fingerprint mismatch must fail")
	}
}

func TestGroupCommitWindow(t *testing.T) {
	dir := t.TempDir()
	o := testOpts
	o.GroupCommit = time.Hour // syncer effectively off: Close must flush
	l, _, err := Open(dir, o)
	if err != nil {
		t.Fatal(err)
	}
	dict := intern.NewDict()
	if err := l.WriteCheckpoint(dict, &Checkpoint{Seq: 0, Stats: &plan.Stats{}}); err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 3; i++ {
		if err := l.Append(dict, uint64(i), mkApplied(nil, nil)); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Sync(); err != nil { // on-demand flush inside the window
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	_, rec, err := Open(dir, o)
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Records) != 3 {
		t.Fatalf("recovered %d records, want 3", len(rec.Records))
	}
}

// TestTornTailEveryOffset is the satellite-mandated exhaustive torn-tail
// check: the final segment truncated at EVERY possible byte offset must
// recover to exactly the last record fully contained in the prefix —
// never an error, never a partial batch.
func TestTornTailEveryOffset(t *testing.T) {
	base := t.TempDir()
	writeFixture(t, base, 4, testOpts)

	entries, err := os.ReadDir(base)
	if err != nil {
		t.Fatal(err)
	}
	files := map[string][]byte{}
	var seg string
	for _, e := range entries {
		b, err := os.ReadFile(filepath.Join(base, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		files[e.Name()] = b
		if _, ok := parseSeq(e.Name(), "wal-", ".log"); ok {
			if seg != "" {
				t.Fatalf("fixture has several segments: %s and %s", seg, e.Name())
			}
			seg = e.Name()
		}
	}
	segBytes := files[seg]

	// Record boundaries inside the segment, for the expected-count oracle.
	var bounds []int // bounds[i] = offset just past record i
	{
		recs, good := ScanRecords(segBytes[fileHeader:])
		if len(recs) != 4 || fileHeader+good != len(segBytes) {
			t.Fatalf("fixture segment: %d records, good %d of %d", len(recs), good, len(segBytes))
		}
		off := fileHeader
		for _, r := range recs {
			off += frameHeader + len(EncodeRecord(nil, r))
			bounds = append(bounds, off)
		}
	}
	expect := func(cut int) int {
		n := 0
		for _, b := range bounds {
			if cut >= b {
				n++
			}
		}
		return n
	}

	for cut := fileHeader; cut <= len(segBytes); cut++ {
		dir := t.TempDir()
		for name, b := range files {
			if name == seg {
				b = b[:cut]
			}
			if err := os.WriteFile(filepath.Join(dir, name), b, 0o666); err != nil {
				t.Fatal(err)
			}
		}
		l, rec, err := Open(dir, testOpts)
		if err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}
		want := expect(cut)
		if len(rec.Records) != want {
			t.Fatalf("cut %d: recovered %d records, want %d", cut, len(rec.Records), want)
		}
		lastGood := fileHeader
		if want > 0 {
			lastGood = bounds[want-1]
		}
		wantTorn := cut != lastGood
		if rec.TornTail != wantTorn {
			t.Fatalf("cut %d: TornTail = %v, want %v", cut, rec.TornTail, wantTorn)
		}
		// The tail was truncated: appending and reopening stays contiguous.
		dict, _ := intern.FromStrings(rec.Checkpoint.Dict)
		for _, r := range rec.Records {
			for _, s := range r.Dict {
				dict.ID(s)
			}
		}
		if err := l.Append(dict, uint64(want)+1, mkApplied(nil, nil)); err != nil {
			t.Fatalf("cut %d: resume append: %v", cut, err)
		}
		if err := l.Close(); err != nil {
			t.Fatal(err)
		}
		_, rec2, err := Open(dir, testOpts)
		if err != nil {
			t.Fatalf("cut %d: reopen: %v", cut, err)
		}
		if len(rec2.Records) != want+1 || rec2.TornTail {
			t.Fatalf("cut %d: after resume, %d records (torn=%v), want %d", cut, len(rec2.Records), rec2.TornTail, want+1)
		}
	}
}

// TestCheckpointFallback: a bit-rotted newest checkpoint falls back to the
// previous generation, whose log suffix is retained by the pruner.
func TestCheckpointFallback(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(dir, testOpts)
	if err != nil {
		t.Fatal(err)
	}
	dict := intern.NewDict()
	if err := l.WriteCheckpoint(dict, &Checkpoint{Seq: 0, Stats: &plan.Stats{}}); err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 2; i++ {
		if err := l.Append(dict, uint64(i), mkApplied(nil, nil)); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.WriteCheckpoint(dict, &Checkpoint{Seq: 2, Stats: &plan.Stats{}}); err != nil {
		t.Fatal(err)
	}
	if err := l.Append(dict, 3, mkApplied(nil, nil)); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// One generation of slack: ckpt-0 and its suffix must still exist.
	if _, err := os.Stat(filepath.Join(dir, ckptName(0))); err != nil {
		t.Fatal("previous checkpoint generation was pruned")
	}
	// Rot the newest checkpoint: recovery falls back to seq 0 and replays
	// the full suffix.
	path := filepath.Join(dir, ckptName(2))
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	b[len(b)/2] ^= 0xff
	if err := os.WriteFile(path, b, 0o666); err != nil {
		t.Fatal(err)
	}
	_, rec, err := Open(dir, testOpts)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Checkpoint.Seq != 0 || len(rec.Records) != 3 {
		t.Fatalf("fallback recovered ck %d with %d records", rec.Checkpoint.Seq, len(rec.Records))
	}
	// Rot the only remaining checkpoint too: now unrecoverable, loudly.
	if err := os.Remove(filepath.Join(dir, ckptName(0))); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Open(dir, testOpts); err == nil {
		t.Fatal("no usable checkpoint must fail")
	}
}
