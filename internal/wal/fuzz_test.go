package wal

import (
	"reflect"
	"testing"
)

// FuzzWALDecode drives arbitrary bytes through both decoding layers: the
// record payload decoder and the framed segment scanner. The contract the
// recovery path depends on: corrupt or truncated input must produce an
// error (or a shorter good prefix) — never a panic, an oversized
// allocation, or a partially decoded batch.
func FuzzWALDecode(f *testing.F) {
	r := &Record{
		Seq:     3,
		Dict:    []string{"a", "bb"},
		Rels:    []RelMeta{{Name: "R", Arity: 2}},
		Deletes: []Op{{Rel: 0, Row: []uint32{1, 2}}},
		Inserts: []Op{{Rel: 0, Row: []uint32{0, 3}}},
	}
	payload := EncodeRecord(nil, r)
	f.Add(payload)
	stream := AppendFrame(nil, payload)
	stream = AppendFrame(stream, EncodeRecord(nil, &Record{Seq: 4}))
	f.Add(stream)
	f.Add(stream[:len(stream)-3]) // torn tail
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff})

	f.Fuzz(func(t *testing.T, data []byte) {
		if r, err := DecodeRecord(data); err == nil {
			// A successful decode is complete and self-consistent: it must
			// survive a re-encode/re-decode round trip unchanged.
			b := EncodeRecord(nil, r)
			r2, err := DecodeRecord(b)
			if err != nil {
				t.Fatalf("re-decode of re-encoded record failed: %v", err)
			}
			if !reflect.DeepEqual(r, r2) {
				t.Fatalf("round trip changed the record:\n%+v\n%+v", r, r2)
			}
		}
		recs, good := ScanRecords(data)
		if good < 0 || good > len(data) {
			t.Fatalf("goodLen %d out of range [0, %d]", good, len(data))
		}
		// Everything the scanner accepted must itself round-trip: no
		// partial batches can escape a torn or corrupted segment.
		rescan, regood := ScanRecords(data[:good])
		if regood != good || len(rescan) != len(recs) {
			t.Fatalf("rescan of good prefix: %d records/%d bytes, want %d/%d",
				len(rescan), regood, len(recs), good)
		}
	})
}
