package fo

import (
	"strings"
	"testing"

	"repro/internal/cq"
)

func atom(rel string, args ...cq.Term) *Atom { return NewAtom(rel, args...) }

func TestFreeVars(t *testing.T) {
	e := &Exists{Vars: []string{"y"}, E: &And{
		L: atom("R", cq.Var("x"), cq.Var("y")),
		R: Eq(cq.Var("z"), cq.Cst("c")),
	}}
	fv := e.FreeVars()
	if len(fv) != 2 || fv[0] != "x" || fv[1] != "z" {
		t.Fatalf("free vars: %v", fv)
	}
}

func TestRectifyMakesBoundVarsDistinct(t *testing.T) {
	// ∃x R(x) ∧ ∃x S(x): the two x's must get distinct names.
	e := &And{
		L: &Exists{Vars: []string{"x"}, E: atom("R", cq.Var("x"))},
		R: &Exists{Vars: []string{"x"}, E: atom("S", cq.Var("x"))},
	}
	r := Rectify(e).(*And)
	l := r.L.(*Exists)
	rr := r.R.(*Exists)
	if l.Vars[0] == rr.Vars[0] {
		t.Fatalf("bound variables not rectified: %s", r)
	}
	// A bound variable shadowing a free one must be renamed away from it.
	e2 := &And{
		L: atom("R", cq.Var("x")),
		R: &Exists{Vars: []string{"x"}, E: atom("S", cq.Var("x"))},
	}
	r2 := Rectify(e2).(*And)
	if r2.R.(*Exists).Vars[0] == "x" {
		t.Fatal("shadowing bound variable must be renamed")
	}
	if r2.L.(*Atom).Args[0].Val != "x" {
		t.Fatal("free occurrence must be untouched")
	}
}

func TestSubstituteShadowing(t *testing.T) {
	// Substituting x inside ∃x must be a no-op.
	e := &Exists{Vars: []string{"x"}, E: atom("R", cq.Var("x"))}
	s := Substitute(e, map[string]cq.Term{"x": cq.Cst("c")})
	if strings.Contains(s.String(), "\"c\"") {
		t.Fatalf("bound occurrence substituted: %s", s)
	}
	e2 := atom("R", cq.Var("x"))
	s2 := Substitute(e2, map[string]cq.Term{"x": cq.Cst("c")})
	if !s2.(*Atom).Args[0].Const {
		t.Fatal("free occurrence must be substituted")
	}
}

func TestDesugar(t *testing.T) {
	// ∀x (A → B) becomes ¬∃x ¬(¬A ∨ B).
	e := &Forall{Vars: []string{"x"}, E: &Implies{
		A: atom("R", cq.Var("x")),
		B: atom("S", cq.Var("x")),
	}}
	d := Desugar(e)
	if _, ok := d.(*Not); !ok {
		t.Fatalf("expected ¬∃¬ shape, got %s", d)
	}
	hasForall := false
	Walk(d, func(x Expr) {
		switch x.(type) {
		case *Forall, *Implies:
			hasForall = true
		}
	})
	if hasForall {
		t.Fatal("desugared formula must not contain ∀ or →")
	}
}

func TestIsPositiveExistential(t *testing.T) {
	pos := &Exists{Vars: []string{"x"}, E: &Or{
		L: atom("R", cq.Var("x"), cq.Var("y")),
		R: &And{L: atom("S", cq.Var("y")), R: Eq(cq.Var("y"), cq.Cst("1"))},
	}}
	if !IsPositiveExistential(pos) {
		t.Fatal("formula is ∃FO+")
	}
	if IsPositiveExistential(&Not{E: pos}) {
		t.Fatal("negation is not ∃FO+")
	}
	if IsPositiveExistential(Neq(cq.Var("x"), cq.Cst("1"))) {
		t.Fatal("≠ is not ∃FO+")
	}
}

func TestToUCQDistributes(t *testing.T) {
	// (R(a,x) ∨ R(b,x)) ∧ S(x) => two disjuncts.
	e := &And{
		L: &Or{
			L: atom("R", cq.Cst("a"), cq.Var("x")),
			R: atom("R", cq.Cst("b"), cq.Var("x")),
		},
		R: atom("S", cq.Var("x")),
	}
	u, err := ToUCQ([]string{"x"}, e)
	if err != nil {
		t.Fatal(err)
	}
	if len(u.Disjuncts) != 2 {
		t.Fatalf("expected 2 disjuncts, got %d", len(u.Disjuncts))
	}
	for _, d := range u.Disjuncts {
		if len(d.Atoms) != 2 {
			t.Fatalf("each disjunct has R and S: %s", d)
		}
	}
}

func TestToUCQRejectsUnsafe(t *testing.T) {
	// Head variable x unbound in the disjunct.
	e := Eq(cq.Var("y"), cq.Var("z"))
	if _, err := ToUCQ([]string{"x"}, e); err == nil {
		t.Fatal("unsafe formula must be rejected")
	}
}

func TestToUCQDropsInconsistentDisjuncts(t *testing.T) {
	e := &Or{
		L: &And{L: atom("R", cq.Var("x")), R: Eq(cq.Cst("a"), cq.Cst("b"))},
		R: atom("R", cq.Var("x")),
	}
	u, err := ToUCQ([]string{"x"}, e)
	if err != nil {
		t.Fatal(err)
	}
	if len(u.Disjuncts) != 1 {
		t.Fatalf("inconsistent disjunct must be dropped, got %d", len(u.Disjuncts))
	}
}

func TestFromCQ(t *testing.T) {
	q := cq.NewCQ([]cq.Term{cq.Var("x"), cq.Cst("k")},
		[]cq.Atom{cq.NewAtom("R", cq.Var("x"), cq.Var("y"))})
	fq := FromCQ(q)
	if len(fq.Head) != 2 {
		t.Fatalf("head: %v", fq.Head)
	}
	if err := fq.Validate(); err != nil {
		t.Fatalf("embedded query invalid: %v", err)
	}
}

func TestSafeRange(t *testing.T) {
	safe := &Query{Head: []string{"x"}, Body: &And{
		L: &Exists{Vars: []string{"y"}, E: atom("R", cq.Var("x"), cq.Var("y"))},
		R: &Not{E: atom("S", cq.Var("x"))},
	}}
	if !SafeRange(safe) {
		t.Fatal("guarded negation is safe-range")
	}
	unsafe := &Query{Head: []string{"x"}, Body: &Not{E: atom("S", cq.Var("x"))}}
	if SafeRange(unsafe) {
		t.Fatal("bare negation is not safe-range")
	}
	unsafeOr := &Query{Head: []string{"x", "y"}, Body: &Or{
		L: atom("R", cq.Var("x"), cq.Var("x")),
		R: atom("R", cq.Var("y"), cq.Var("y")),
	}}
	if SafeRange(unsafeOr) {
		t.Fatal("disjunction with mismatched variables is not safe-range")
	}
}

func TestExpandViews(t *testing.T) {
	v := cq.NewCQ([]cq.Term{cq.Var("a")}, []cq.Atom{
		cq.NewAtom("R", cq.Var("a"), cq.Var("b")),
		cq.NewAtom("S", cq.Var("b")),
	})
	views := map[string]*cq.UCQ{"V": cq.NewUCQ(v)}
	e := atom("V", cq.Cst("k"))
	x := ExpandViews(e, views)
	sawR, sawS, sawV := false, false, false
	Walk(x, func(sub Expr) {
		if a, ok := sub.(*Atom); ok {
			switch a.Rel {
			case "R":
				sawR = true
			case "S":
				sawS = true
			case "V":
				sawV = true
			}
		}
	})
	if !sawR || !sawS || sawV {
		t.Fatalf("view must be replaced by its definition: %s", x)
	}
}

func TestPositiveApproxDropsNegation(t *testing.T) {
	e := &And{
		L: atom("R", cq.Var("x")),
		R: &Not{E: atom("S", cq.Var("x"))},
	}
	p := PositiveApprox(e)
	if !IsPositiveExistential(p) {
		t.Fatalf("approximation must be ∃FO+: %s", p)
	}
	sawS := false
	Walk(p, func(sub Expr) {
		if a, ok := sub.(*Atom); ok && a.Rel == "S" {
			sawS = true
		}
	})
	if sawS {
		t.Fatal("negated atom must be dropped")
	}
}

func TestConstants(t *testing.T) {
	e := &And{
		L: atom("R", cq.Cst("a"), cq.Var("x")),
		R: Eq(cq.Var("x"), cq.Cst("b")),
	}
	cs := Constants(e)
	if len(cs) != 2 || cs[0] != "a" || cs[1] != "b" {
		t.Fatalf("constants: %v", cs)
	}
}
