package fo

import (
	"fmt"
	"strconv"

	"repro/internal/cq"
)

// Rectify renames bound variables so that every quantifier binds a distinct
// variable name, disjoint from every free variable. Required before the
// DNF expansion to UCQ, which merges variable scopes.
func Rectify(e Expr) Expr {
	used := map[string]bool{}
	for _, v := range e.FreeVars() {
		used[v] = true
	}
	counter := 0
	fresh := func(base string) string {
		for {
			counter++
			cand := base + "#" + strconv.Itoa(counter)
			if !used[cand] {
				used[cand] = true
				return cand
			}
		}
	}
	var rec func(e Expr, ren map[string]string) Expr
	rec = func(e Expr, ren map[string]string) Expr {
		switch x := e.(type) {
		case *Atom:
			out := &Atom{Rel: x.Rel, Args: make([]cq.Term, len(x.Args))}
			for i, t := range x.Args {
				out.Args[i] = renameTerm(t, ren)
			}
			return out
		case *Cmp:
			return &Cmp{L: renameTerm(x.L, ren), R: renameTerm(x.R, ren), Neq: x.Neq}
		case *And:
			return &And{L: rec(x.L, ren), R: rec(x.R, ren)}
		case *Or:
			return &Or{L: rec(x.L, ren), R: rec(x.R, ren)}
		case *Not:
			return &Not{E: rec(x.E, ren)}
		case *Implies:
			return &Implies{A: rec(x.A, ren), B: rec(x.B, ren)}
		case *Exists:
			ren2, vars := pushScope(x.Vars, ren, used, fresh)
			return &Exists{Vars: vars, E: rec(x.E, ren2)}
		case *Forall:
			ren2, vars := pushScope(x.Vars, ren, used, fresh)
			return &Forall{Vars: vars, E: rec(x.E, ren2)}
		default:
			panic(fmt.Sprintf("fo: unknown expression %T", e))
		}
	}
	return rec(e, map[string]string{})
}

func pushScope(vars []string, ren map[string]string, used map[string]bool, fresh func(string) string) (map[string]string, []string) {
	ren2 := make(map[string]string, len(ren)+len(vars))
	for k, v := range ren {
		ren2[k] = v
	}
	out := make([]string, len(vars))
	for i, v := range vars {
		nv := v
		if used[v] {
			nv = fresh(v)
		} else {
			used[v] = true
		}
		ren2[v] = nv
		out[i] = nv
	}
	return ren2, out
}

func renameTerm(t cq.Term, ren map[string]string) cq.Term {
	if t.Const {
		return t
	}
	if nv, ok := ren[t.Val]; ok {
		return cq.Var(nv)
	}
	return t
}

// Substitute replaces free occurrences of variables per sub (variable name
// -> replacement term). Bound variables shadow substitutions. The formula
// should be rectified if the replacement terms contain variables, to avoid
// capture.
func Substitute(e Expr, sub map[string]cq.Term) Expr {
	switch x := e.(type) {
	case *Atom:
		out := &Atom{Rel: x.Rel, Args: make([]cq.Term, len(x.Args))}
		for i, t := range x.Args {
			out.Args[i] = subTerm(t, sub)
		}
		return out
	case *Cmp:
		return &Cmp{L: subTerm(x.L, sub), R: subTerm(x.R, sub), Neq: x.Neq}
	case *And:
		return &And{L: Substitute(x.L, sub), R: Substitute(x.R, sub)}
	case *Or:
		return &Or{L: Substitute(x.L, sub), R: Substitute(x.R, sub)}
	case *Not:
		return &Not{E: Substitute(x.E, sub)}
	case *Implies:
		return &Implies{A: Substitute(x.A, sub), B: Substitute(x.B, sub)}
	case *Exists:
		return &Exists{Vars: x.Vars, E: Substitute(x.E, shadow(sub, x.Vars))}
	case *Forall:
		return &Forall{Vars: x.Vars, E: Substitute(x.E, shadow(sub, x.Vars))}
	default:
		panic(fmt.Sprintf("fo: unknown expression %T", e))
	}
}

func subTerm(t cq.Term, sub map[string]cq.Term) cq.Term {
	if t.Const {
		return t
	}
	if r, ok := sub[t.Val]; ok {
		return r
	}
	return t
}

func shadow(sub map[string]cq.Term, vars []string) map[string]cq.Term {
	out := make(map[string]cq.Term, len(sub))
	for k, v := range sub {
		out[k] = v
	}
	for _, v := range vars {
		delete(out, v)
	}
	return out
}

// Desugar eliminates Implies (→ ¬A ∨ B) and Forall (→ ¬∃¬), producing a
// formula over the kernel connectives only.
func Desugar(e Expr) Expr {
	switch x := e.(type) {
	case *Atom, *Cmp:
		return e.clone()
	case *And:
		return &And{L: Desugar(x.L), R: Desugar(x.R)}
	case *Or:
		return &Or{L: Desugar(x.L), R: Desugar(x.R)}
	case *Not:
		return &Not{E: Desugar(x.E)}
	case *Implies:
		return &Or{L: &Not{E: Desugar(x.A)}, R: Desugar(x.B)}
	case *Exists:
		return &Exists{Vars: append([]string(nil), x.Vars...), E: Desugar(x.E)}
	case *Forall:
		return &Not{E: &Exists{Vars: append([]string(nil), x.Vars...), E: &Not{E: Desugar(x.E)}}}
	default:
		panic(fmt.Sprintf("fo: unknown expression %T", e))
	}
}

// FromCQ embeds a conjunctive query into the FO AST: existential closure of
// the conjunction of its atoms and equalities.
func FromCQ(q *cq.CQ) *Query {
	headVars := map[string]bool{}
	var head []string
	var eqHead []Expr
	for i, t := range q.Head {
		if t.Const {
			// Constant head positions become an equality with a fresh
			// variable so the FO head is all-variable.
			v := "h#" + strconv.Itoa(i)
			head = append(head, v)
			eqHead = append(eqHead, Eq(cq.Var(v), t))
			continue
		}
		head = append(head, t.Val)
		headVars[t.Val] = true
	}
	var conj []Expr
	for _, a := range q.Atoms {
		conj = append(conj, NewAtom(a.Rel, append([]cq.Term(nil), a.Args...)...))
	}
	for _, e := range q.Eqs {
		conj = append(conj, Eq(e.L, e.R))
	}
	conj = append(conj, eqHead...)
	if len(conj) == 0 {
		panic("fo: cannot embed an empty CQ")
	}
	body := Conj(conj...)
	var exVars []string
	for _, v := range q.Vars() {
		if !headVars[v] {
			exVars = append(exVars, v)
		}
	}
	var full Expr = body
	if len(exVars) > 0 {
		full = &Exists{Vars: exVars, E: body}
	}
	return &Query{Name: q.Name, Head: head, Body: full}
}

// ToUCQ converts a positive-existential formula to a UCQ with the given
// head variables. It returns an error if the formula is not in ∃FO+ or if
// some disjunct does not bind all head variables (unsafe).
func ToUCQ(head []string, e Expr) (*cq.UCQ, error) {
	if !IsPositiveExistential(e) {
		return nil, fmt.Errorf("fo: formula is not positive-existential: %s", e)
	}
	r := Rectify(e)
	type partial struct {
		atoms []cq.Atom
		eqs   []cq.Equality
	}
	var rec func(e Expr) []partial
	rec = func(e Expr) []partial {
		switch x := e.(type) {
		case *Atom:
			return []partial{{atoms: []cq.Atom{{Rel: x.Rel, Args: append([]cq.Term(nil), x.Args...)}}}}
		case *Cmp:
			return []partial{{eqs: []cq.Equality{{L: x.L, R: x.R}}}}
		case *And:
			ls, rs := rec(x.L), rec(x.R)
			var out []partial
			for _, l := range ls {
				for _, rr := range rs {
					out = append(out, partial{
						atoms: append(append([]cq.Atom(nil), l.atoms...), rr.atoms...),
						eqs:   append(append([]cq.Equality(nil), l.eqs...), rr.eqs...),
					})
				}
			}
			return out
		case *Or:
			return append(rec(x.L), rec(x.R)...)
		case *Exists:
			// After rectification bound variables are globally fresh, so
			// the quantifier prefix can simply be dropped: any variable not
			// in the head is existential in CQ form.
			return rec(x.E)
		default:
			panic(fmt.Sprintf("fo: unexpected %T in positive-existential formula", e))
		}
	}
	parts := rec(r)
	u := &cq.UCQ{}
	headTerms := make([]cq.Term, len(head))
	for i, h := range head {
		headTerms[i] = cq.Var(h)
	}
	for _, p := range parts {
		q := &cq.CQ{Head: append([]cq.Term(nil), headTerms...), Atoms: p.atoms, Eqs: p.eqs}
		n, err := q.Normalize()
		if err != nil {
			continue // unsatisfiable disjunct: drop
		}
		// Safety: every head variable must be bound by an atom or equated
		// to a constant after normalization.
		bound := map[string]bool{}
		for _, a := range n.Atoms {
			for _, t := range a.Args {
				if !t.Const {
					bound[t.Val] = true
				}
			}
		}
		for _, t := range n.Head {
			if !t.Const && !bound[t.Val] {
				return nil, fmt.Errorf("fo: head variable %s unbound in disjunct %s", t.Val, q)
			}
		}
		u.Disjuncts = append(u.Disjuncts, q)
	}
	return u, nil
}

// SafeRange reports whether the formula is safe-range with respect to its
// free variables: every free variable is range-restricted. This is the
// classical syntactic safety condition (Abiteboul-Hull-Vianu ch. 5) that
// topped queries refine.
func SafeRange(q *Query) bool {
	rr, ok := rangeRestricted(Desugar(Rectify(q.Body)))
	if !ok {
		return false
	}
	for _, v := range q.Body.FreeVars() {
		if !rr[v] {
			return false
		}
	}
	return true
}

// rangeRestricted returns the set of range-restricted variables of e and
// whether every subformula satisfies its own safety condition.
func rangeRestricted(e Expr) (map[string]bool, bool) {
	switch x := e.(type) {
	case *Atom:
		out := map[string]bool{}
		for _, t := range x.Args {
			if !t.Const {
				out[t.Val] = true
			}
		}
		return out, true
	case *Cmp:
		out := map[string]bool{}
		if !x.Neq {
			if !x.L.Const && x.R.Const {
				out[x.L.Val] = true
			}
			if !x.R.Const && x.L.Const {
				out[x.R.Val] = true
			}
		}
		return out, true
	case *And:
		l, okL := rangeRestricted(x.L)
		r, okR := rangeRestricted(x.R)
		if !okL || !okR {
			return nil, false
		}
		out := map[string]bool{}
		for v := range l {
			out[v] = true
		}
		for v := range r {
			out[v] = true
		}
		// Propagate through top-level variable equalities.
		changed := true
		for changed {
			changed = false
			for _, c := range conjuncts(x) {
				if cmp, ok := c.(*Cmp); ok && !cmp.Neq && !cmp.L.Const && !cmp.R.Const {
					if out[cmp.L.Val] && !out[cmp.R.Val] {
						out[cmp.R.Val] = true
						changed = true
					}
					if out[cmp.R.Val] && !out[cmp.L.Val] {
						out[cmp.L.Val] = true
						changed = true
					}
				}
			}
		}
		// A negated conjunct is safe only if its free variables are
		// restricted by the positive part.
		for _, c := range conjuncts(x) {
			if n, ok := c.(*Not); ok {
				for _, v := range n.FreeVars() {
					if !out[v] {
						return nil, false
					}
				}
			}
		}
		return out, true
	case *Or:
		l, okL := rangeRestricted(x.L)
		r, okR := rangeRestricted(x.R)
		if !okL || !okR {
			return nil, false
		}
		out := map[string]bool{}
		for v := range l {
			if r[v] {
				out[v] = true
			}
		}
		return out, true
	case *Not:
		_, ok := rangeRestricted(x.E)
		return map[string]bool{}, ok
	case *Exists:
		inner, ok := rangeRestricted(x.E)
		if !ok {
			return nil, false
		}
		for _, v := range x.Vars {
			if !inner[v] {
				return nil, false
			}
		}
		out := map[string]bool{}
		for v := range inner {
			out[v] = true
		}
		for _, v := range x.Vars {
			delete(out, v)
		}
		return out, true
	default:
		// Desugared input has no Forall/Implies.
		return nil, false
	}
}

// conjuncts flattens nested conjunctions into a list.
func conjuncts(e Expr) []Expr {
	if a, ok := e.(*And); ok {
		return append(conjuncts(a.L), conjuncts(a.R)...)
	}
	return []Expr{e}
}
