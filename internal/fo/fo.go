// Package fo implements first-order (relational calculus) queries: the full
// FO AST with conjunction, disjunction, negation, quantifiers and
// (in)equalities, plus free-variable analysis, substitution, the safe-range
// restriction, and the translation of ∃FO+ queries to UCQ (Section 2).
//
// The effective syntax of Section 5 (topped and size-bounded queries) is
// defined over this AST in package topped.
package fo

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/cq"
)

// Expr is an FO formula. Implementations: Atom, Cmp, And, Or, Not, Exists,
// Forall, Implies.
type Expr interface {
	// FreeVars returns the sorted free variables of the formula.
	FreeVars() []string
	// String renders the formula.
	String() string
	// clone deep-copies the formula.
	clone() Expr
}

// Atom is a relation (or view) atom R(t1,...,tk).
type Atom struct {
	Rel  string
	Args []cq.Term
}

// Cmp is a comparison t1 = t2 or t1 ≠ t2.
type Cmp struct {
	L, R cq.Term
	Neq  bool // true for ≠
}

// And is conjunction.
type And struct{ L, R Expr }

// Or is disjunction.
type Or struct{ L, R Expr }

// Not is negation.
type Not struct{ E Expr }

// Exists is existential quantification over Vars.
type Exists struct {
	Vars []string
	E    Expr
}

// Forall is universal quantification over Vars.
type Forall struct {
	Vars []string
	E    Expr
}

// Implies is material implication A → B, syntactic sugar for ¬A ∨ B kept
// explicit so the size-bounded pattern of Section 5.3 is recognizable.
type Implies struct{ A, B Expr }

// ---- constructors ----

// NewAtom builds a relation atom.
func NewAtom(rel string, args ...cq.Term) *Atom { return &Atom{Rel: rel, Args: args} }

// Eq builds t1 = t2.
func Eq(l, r cq.Term) *Cmp { return &Cmp{L: l, R: r} }

// Neq builds t1 ≠ t2.
func Neq(l, r cq.Term) *Cmp { return &Cmp{L: l, R: r, Neq: true} }

// Conj folds a conjunction left-associatively; it panics on empty input.
func Conj(es ...Expr) Expr {
	if len(es) == 0 {
		panic("fo: Conj of zero formulas")
	}
	out := es[0]
	for _, e := range es[1:] {
		out = &And{L: out, R: e}
	}
	return out
}

// Disj folds a disjunction left-associatively; it panics on empty input.
func Disj(es ...Expr) Expr {
	if len(es) == 0 {
		panic("fo: Disj of zero formulas")
	}
	out := es[0]
	for _, e := range es[1:] {
		out = &Or{L: out, R: e}
	}
	return out
}

// ---- FreeVars ----

func (a *Atom) FreeVars() []string {
	set := map[string]struct{}{}
	for _, t := range a.Args {
		if !t.Const {
			set[t.Val] = struct{}{}
		}
	}
	return sorted(set)
}

func (c *Cmp) FreeVars() []string {
	set := map[string]struct{}{}
	if !c.L.Const {
		set[c.L.Val] = struct{}{}
	}
	if !c.R.Const {
		set[c.R.Val] = struct{}{}
	}
	return sorted(set)
}

func (e *And) FreeVars() []string     { return unionVars(e.L.FreeVars(), e.R.FreeVars()) }
func (e *Or) FreeVars() []string      { return unionVars(e.L.FreeVars(), e.R.FreeVars()) }
func (e *Not) FreeVars() []string     { return e.E.FreeVars() }
func (e *Implies) FreeVars() []string { return unionVars(e.A.FreeVars(), e.B.FreeVars()) }

func (e *Exists) FreeVars() []string { return minus(e.E.FreeVars(), e.Vars) }
func (e *Forall) FreeVars() []string { return minus(e.E.FreeVars(), e.Vars) }

func sorted(set map[string]struct{}) []string {
	out := make([]string, 0, len(set))
	for v := range set {
		out = append(out, v)
	}
	sort.Strings(out)
	return out
}

func unionVars(a, b []string) []string {
	set := map[string]struct{}{}
	for _, v := range a {
		set[v] = struct{}{}
	}
	for _, v := range b {
		set[v] = struct{}{}
	}
	return sorted(set)
}

func minus(a, drop []string) []string {
	d := map[string]struct{}{}
	for _, v := range drop {
		d[v] = struct{}{}
	}
	var out []string
	for _, v := range a {
		if _, del := d[v]; !del {
			out = append(out, v)
		}
	}
	return out
}

// ---- String ----

func (a *Atom) String() string {
	parts := make([]string, len(a.Args))
	for i, t := range a.Args {
		parts[i] = t.String()
	}
	return a.Rel + "(" + strings.Join(parts, ",") + ")"
}

func (c *Cmp) String() string {
	op := "="
	if c.Neq {
		op = "≠"
	}
	return c.L.String() + op + c.R.String()
}

func (e *And) String() string     { return "(" + e.L.String() + " ∧ " + e.R.String() + ")" }
func (e *Or) String() string      { return "(" + e.L.String() + " ∨ " + e.R.String() + ")" }
func (e *Not) String() string     { return "¬" + e.E.String() }
func (e *Implies) String() string { return "(" + e.A.String() + " → " + e.B.String() + ")" }

func (e *Exists) String() string {
	return "∃" + strings.Join(e.Vars, ",") + " " + e.E.String()
}

func (e *Forall) String() string {
	return "∀" + strings.Join(e.Vars, ",") + " " + e.E.String()
}

// ---- clone ----

func (a *Atom) clone() Expr {
	return &Atom{Rel: a.Rel, Args: append([]cq.Term(nil), a.Args...)}
}
func (c *Cmp) clone() Expr     { cc := *c; return &cc }
func (e *And) clone() Expr     { return &And{L: e.L.clone(), R: e.R.clone()} }
func (e *Or) clone() Expr      { return &Or{L: e.L.clone(), R: e.R.clone()} }
func (e *Not) clone() Expr     { return &Not{E: e.E.clone()} }
func (e *Implies) clone() Expr { return &Implies{A: e.A.clone(), B: e.B.clone()} }
func (e *Exists) clone() Expr {
	return &Exists{Vars: append([]string(nil), e.Vars...), E: e.E.clone()}
}
func (e *Forall) clone() Expr {
	return &Forall{Vars: append([]string(nil), e.Vars...), E: e.E.clone()}
}

// Clone deep-copies a formula.
func Clone(e Expr) Expr { return e.clone() }

// Query is an FO query: a formula with an explicit ordered list of free
// (answer) variables. Head variables must be exactly the free variables of
// Body (checked by Validate).
type Query struct {
	Name string
	Head []string
	Body Expr
}

// NewQuery builds an FO query.
func NewQuery(name string, head []string, body Expr) *Query {
	return &Query{Name: name, Head: head, Body: body}
}

// Validate checks that Head matches the body's free variables as a set.
func (q *Query) Validate() error {
	fv := q.Body.FreeVars()
	if len(fv) != len(q.Head) {
		return fmt.Errorf("fo: head %v does not match free variables %v", q.Head, fv)
	}
	hs := append([]string(nil), q.Head...)
	sort.Strings(hs)
	for i := range hs {
		if hs[i] != fv[i] {
			return fmt.Errorf("fo: head %v does not match free variables %v", q.Head, fv)
		}
	}
	return nil
}

// String renders the query.
func (q *Query) String() string {
	name := q.Name
	if name == "" {
		name = "Q"
	}
	return name + "(" + strings.Join(q.Head, ",") + ") := " + q.Body.String()
}

// IsPositiveExistential reports whether the formula is in ∃FO+: no
// negation, no universal quantification, no ≠, no implication.
func IsPositiveExistential(e Expr) bool {
	switch x := e.(type) {
	case *Atom:
		return true
	case *Cmp:
		return !x.Neq
	case *And:
		return IsPositiveExistential(x.L) && IsPositiveExistential(x.R)
	case *Or:
		return IsPositiveExistential(x.L) && IsPositiveExistential(x.R)
	case *Exists:
		return IsPositiveExistential(x.E)
	case *Not, *Forall, *Implies:
		return false
	default:
		return false
	}
}

// HasViews reports whether the formula mentions any atom whose relation
// name is in views.
func HasViews(e Expr, views map[string]bool) bool {
	found := false
	Walk(e, func(x Expr) {
		if a, ok := x.(*Atom); ok && views[a.Rel] {
			found = true
		}
	})
	return found
}

// Walk visits every subformula in preorder.
func Walk(e Expr, visit func(Expr)) {
	visit(e)
	switch x := e.(type) {
	case *And:
		Walk(x.L, visit)
		Walk(x.R, visit)
	case *Or:
		Walk(x.L, visit)
		Walk(x.R, visit)
	case *Not:
		Walk(x.E, visit)
	case *Implies:
		Walk(x.A, visit)
		Walk(x.B, visit)
	case *Exists:
		Walk(x.E, visit)
	case *Forall:
		Walk(x.E, visit)
	}
}

// Constants returns the sorted constants mentioned in the formula.
func Constants(e Expr) []string {
	set := map[string]struct{}{}
	Walk(e, func(x Expr) {
		switch a := x.(type) {
		case *Atom:
			for _, t := range a.Args {
				if t.Const {
					set[t.Val] = struct{}{}
				}
			}
		case *Cmp:
			if a.L.Const {
				set[a.L.Val] = struct{}{}
			}
			if a.R.Const {
				set[a.R.Val] = struct{}{}
			}
		}
	})
	return sorted(set)
}
