package fo

import (
	"fmt"
	"strconv"

	"repro/internal/cq"
)

// ExpandViews replaces every atom naming a view by the view's definition
// (a UCQ), with head positions bound to the atom's arguments and bound
// variables freshened. The result mentions only base relations.
func ExpandViews(e Expr, views map[string]*cq.UCQ) Expr {
	counter := 0
	fresh := func() string {
		counter++
		return "!v" + strconv.Itoa(counter)
	}
	var rec func(e Expr) Expr
	rec = func(e Expr) Expr {
		switch x := e.(type) {
		case *Atom:
			def, isView := views[x.Rel]
			if !isView {
				return x.clone()
			}
			var branches []Expr
			for _, d := range def.Disjuncts {
				branches = append(branches, expandDisjunct(d, x.Args, fresh))
			}
			if len(branches) == 0 {
				// Empty view: unsatisfiable atom.
				return Eq(cq.Cst("0"), cq.Cst("1"))
			}
			return Disj(branches...)
		case *Cmp:
			return x.clone()
		case *And:
			return &And{L: rec(x.L), R: rec(x.R)}
		case *Or:
			return &Or{L: rec(x.L), R: rec(x.R)}
		case *Not:
			return &Not{E: rec(x.E)}
		case *Implies:
			return &Implies{A: rec(x.A), B: rec(x.B)}
		case *Exists:
			return &Exists{Vars: append([]string(nil), x.Vars...), E: rec(x.E)}
		case *Forall:
			return &Forall{Vars: append([]string(nil), x.Vars...), E: rec(x.E)}
		default:
			panic(fmt.Sprintf("fo: unknown expression %T", e))
		}
	}
	return rec(e)
}

// expandDisjunct instantiates one CQ disjunct of a view definition with the
// call-site arguments: all variables of the disjunct are freshened, head
// variables are equated with the argument terms, and body variables are
// existentially quantified.
func expandDisjunct(d *cq.CQ, args []cq.Term, fresh func() string) Expr {
	sub := map[string]cq.Term{}
	var exVars []string
	for _, v := range d.Vars() {
		nv := fresh()
		sub[v] = cq.Var(nv)
		exVars = append(exVars, nv)
	}
	var conj []Expr
	for _, a := range d.Atoms {
		na := &Atom{Rel: a.Rel, Args: make([]cq.Term, len(a.Args))}
		for i, t := range a.Args {
			na.Args[i] = applySub(t, sub)
		}
		conj = append(conj, na)
	}
	for _, e := range d.Eqs {
		conj = append(conj, Eq(applySub(e.L, sub), applySub(e.R, sub)))
	}
	// Bind head positions to the call-site arguments.
	for i, h := range d.Head {
		if i >= len(args) {
			break
		}
		conj = append(conj, Eq(applySub(h, sub), args[i]))
	}
	if len(conj) == 0 {
		return Eq(cq.Cst("0"), cq.Cst("1"))
	}
	body := Conj(conj...)
	if len(exVars) == 0 {
		return body
	}
	return &Exists{Vars: exVars, E: body}
}

func applySub(t cq.Term, sub map[string]cq.Term) cq.Term {
	if t.Const {
		return t
	}
	if r, ok := sub[t.Val]; ok {
		return r
	}
	return t
}

// PositiveApprox returns an ∃FO+ over-approximation of the formula: each
// negated subformula is replaced by true (so the result's answers contain
// the original's on every instance). Forall and Implies are desugared
// first. Used for sound bounded-output checks on FO contexts.
func PositiveApprox(e Expr) Expr {
	t := func() Expr { return Eq(cq.Cst("⊤"), cq.Cst("⊤")) }
	var rec func(e Expr) Expr
	rec = func(e Expr) Expr {
		switch x := e.(type) {
		case *Atom, *Cmp:
			if c, ok := e.(*Cmp); ok && c.Neq {
				return t()
			}
			return e.clone()
		case *And:
			return &And{L: rec(x.L), R: rec(x.R)}
		case *Or:
			return &Or{L: rec(x.L), R: rec(x.R)}
		case *Not:
			return t()
		case *Exists:
			return &Exists{Vars: append([]string(nil), x.Vars...), E: rec(x.E)}
		default:
			panic(fmt.Sprintf("fo: PositiveApprox expects a desugared formula, got %T", e))
		}
	}
	return rec(Desugar(e))
}
