package boundedness

import (
	"fmt"
	"sort"

	"repro/internal/access"
	"repro/internal/chase"
	"repro/internal/cq"
	"repro/internal/schema"
)

// An element query of Q under A is Q ∧ ψ for a conjunction ψ of equalities
// such that the tableau of Q ∧ ψ satisfies A (Section 3.1). Q is
// A-equivalent to the union of its element queries, which is what turns
// A-reasoning into classical reasoning.
//
// Two enumerators are provided:
//
//   - ExhaustiveElementQueries enumerates every equality-augmentation (all
//     partitions of the query's terms) and keeps the satisfiable ones whose
//     tableau satisfies A. This is the textbook definition; it is
//     exponential (Bell numbers) and guarded by a size limit. It serves as
//     ground truth in property tests.
//
//   - MinimalElementQueries runs a violation-driven disjunctive chase:
//     while some access constraint is violated by the tableau, branch over
//     the ways of unifying two offending Y-projections. The results are the
//     ⊑-minimal element queries; every element query refines one of them.
//     Since variable coverage and classical containment are monotone under
//     further unification, the minimal set suffices for both BOP and
//     A-containment.

// ExhaustiveLimit is the maximum number of distinct terms for which the
// exhaustive enumerator will run.
const ExhaustiveLimit = 10

// ErrTooLarge is returned when the exhaustive enumerator would exceed its
// search limit.
var ErrTooLarge = fmt.Errorf("boundedness: query too large for exhaustive element-query enumeration")

// ExhaustiveElementQueries returns all element queries of q under a, i.e.
// all normalized satisfiable Q ∧ ψ whose tableau satisfies A, deduplicated
// by canonical form.
func ExhaustiveElementQueries(q *cq.CQ, s *schema.Schema, a *access.Schema) ([]*cq.CQ, error) {
	n, err := q.Normalize()
	if err != nil {
		return nil, nil // unsatisfiable: no element queries
	}
	vars := n.Vars()
	consts := n.Constants()
	if len(vars) > ExhaustiveLimit {
		return nil, ErrTooLarge
	}
	// Classes: each constant is its own fixed class; variables are assigned
	// to either a constant's class, an existing variable class, or a new
	// class (restricted-growth enumeration).
	type class struct {
		constVal string // "" when the class has no constant
		members  []string
	}
	var out []*cq.CQ
	seen := map[string]struct{}{}
	var classes []class
	for _, c := range consts {
		classes = append(classes, class{constVal: c})
	}
	nConstClasses := len(classes)
	var rec func(i int)
	rec = func(i int) {
		if i == len(vars) {
			var eqs []cq.Equality
			for _, cl := range classes {
				if cl.constVal != "" {
					for _, m := range cl.members {
						eqs = append(eqs, cq.Equality{L: cq.Var(m), R: cq.Cst(cl.constVal)})
					}
					continue
				}
				for _, m := range cl.members[1:] {
					eqs = append(eqs, cq.Equality{L: cq.Var(cl.members[0]), R: cq.Var(m)})
				}
			}
			cand := n.Clone()
			cand.Eqs = append(cand.Eqs, eqs...)
			norm, err := cand.Normalize()
			if err != nil {
				return
			}
			if !chase.TableauSatisfies(norm, s, a) {
				return
			}
			key := norm.Canonical()
			if _, dup := seen[key]; dup {
				return
			}
			seen[key] = struct{}{}
			out = append(out, norm)
			return
		}
		v := vars[i]
		for j := range classes {
			classes[j].members = append(classes[j].members, v)
			rec(i + 1)
			classes[j].members = classes[j].members[:len(classes[j].members)-1]
		}
		classes = append(classes, class{members: []string{v}})
		rec(i + 1)
		classes = classes[:len(classes)-1]
	}
	_ = nConstClasses
	rec(0)
	return out, nil
}

// MinimalElementQueries returns the ⊑-minimal element queries of q under a
// via the violation-driven disjunctive chase. The empty slice means q is
// A-unsatisfiable (no unification makes the tableau satisfy A, or q itself
// is inconsistent).
func MinimalElementQueries(q *cq.CQ, s *schema.Schema, a *access.Schema) []*cq.CQ {
	n, err := q.Normalize()
	if err != nil {
		return nil
	}
	var out []*cq.CQ
	seen := map[string]struct{}{}
	var rec func(cur *cq.CQ)
	rec = func(cur *cq.CQ) {
		key := cur.Canonical()
		if _, dup := seen[key]; dup {
			return
		}
		seen[key] = struct{}{}
		pairs, violated := findViolation(cur, s, a)
		if !violated {
			out = append(out, cur)
			return
		}
		for _, eqs := range pairs {
			cand := cur.Clone()
			cand.Eqs = append(cand.Eqs, eqs...)
			norm, err := cand.Normalize()
			if err != nil {
				continue // this branch equates distinct constants
			}
			rec(norm)
		}
	}
	rec(n)
	// Drop non-minimal results (a branch may overshoot another's fixpoint).
	return minimalOnly(out)
}

// findViolation locates the violated constraint group with the fewest
// consistent repair branches (fail-first) and returns, for each unordered
// pair of distinct Y-projections in the group, the equalities unifying
// that pair. violated is false when the tableau satisfies every
// constraint; a violated group with an empty branch list is a dead end
// (only distinct constants could be unified).
func findViolation(q *cq.CQ, s *schema.Schema, a *access.Schema) (branches [][]cq.Equality, violated bool) {
	first := true
	for _, b := range allViolations(q, s, a) {
		if first || len(b) < len(branches) {
			branches, violated, first = b, true, false
		}
		if len(branches) == 0 {
			break
		}
	}
	return branches, violated
}

// allViolations returns, per violated group, its consistent repair
// branches. Branches equating two distinct constants are dropped
// immediately; a violated group with no consistent repair yields an empty
// branch list, which callers treat as a dead end.
func allViolations(q *cq.CQ, s *schema.Schema, a *access.Schema) [][][]cq.Equality {
	var out [][][]cq.Equality
	for _, c := range a.Constraints {
		rel := s.Relation(c.Rel)
		if rel == nil {
			continue
		}
		xpos, errX := rel.Positions(c.X)
		ypos, errY := rel.Positions(c.Y)
		if errX != nil || errY != nil {
			continue
		}
		groups := make(map[string][][]cq.Term) // xkey -> distinct y-projections
		groupSeen := make(map[string]map[string]struct{})
		for _, at := range q.Atoms {
			if at.Rel != c.Rel {
				continue
			}
			xkey, ykey := "", ""
			yproj := make([]cq.Term, len(ypos))
			for _, p := range xpos {
				xkey += at.Args[p].String() + "\x1f"
			}
			for i, p := range ypos {
				yproj[i] = at.Args[p]
				ykey += at.Args[p].String() + "\x1f"
			}
			gs := groupSeen[xkey]
			if gs == nil {
				gs = make(map[string]struct{})
				groupSeen[xkey] = gs
			}
			if _, dup := gs[ykey]; dup {
				continue
			}
			gs[ykey] = struct{}{}
			groups[xkey] = append(groups[xkey], yproj)
		}
		for _, projs := range groups {
			if len(projs) <= c.N {
				continue
			}
			var branches [][]cq.Equality
			for i := 0; i < len(projs); i++ {
			pair:
				for j := i + 1; j < len(projs); j++ {
					var eqs []cq.Equality
					for k := range projs[i] {
						l, r := projs[i][k], projs[j][k]
						if l == r {
							continue
						}
						if l.Const && r.Const {
							continue pair // equates distinct constants
						}
						eqs = append(eqs, cq.Equality{L: l, R: r})
					}
					if len(eqs) > 0 {
						branches = append(branches, eqs)
					}
				}
			}
			out = append(out, branches)
		}
	}
	return out
}

// ASatisfiableSearch reports whether some unification makes q's tableau
// satisfy A, by depth-first search with early exit (the satisfiability
// side of the element-query machinery; NP-hard in general, per the
// Theorem 4.1 reductions). budget caps the number of search states; when
// exhausted the second result is false (verdict unreliable).
func ASatisfiableSearch(q *cq.CQ, s *schema.Schema, a *access.Schema, budget int) (bool, bool) {
	n, err := q.Normalize()
	if err != nil {
		return false, true
	}
	seen := map[string]struct{}{}
	steps := 0
	var rec func(cur *cq.CQ) (bool, bool)
	rec = func(cur *cq.CQ) (bool, bool) {
		key := cur.Canonical()
		if _, dup := seen[key]; dup {
			return false, true
		}
		seen[key] = struct{}{}
		steps++
		if budget > 0 && steps > budget {
			return false, false
		}
		branches, violated := findViolation(cur, s, a)
		if !violated {
			return true, true
		}
		exact := true
		for _, eqs := range branches {
			cand := cur.Clone()
			cand.Eqs = append(cand.Eqs, eqs...)
			norm, err := cand.Normalize()
			if err != nil {
				continue
			}
			ok, ex := rec(norm)
			if ok {
				return true, true
			}
			exact = exact && ex
		}
		return false, exact
	}
	return rec(n)
}

// minimalOnly removes results that are strict refinements of another
// result, using homomorphic containment both ways as the refinement test.
func minimalOnly(qs []*cq.CQ) []*cq.CQ {
	// Sort by size so that coarser (fewer merged terms = more distinct
	// terms) candidates come first; then keep q unless an earlier kept r
	// has q ⊑ r and r ⋢ q (q strictly refines r) — those q are redundant
	// for both BOP and containment checks.
	sort.Slice(qs, func(i, j int) bool {
		return len(qs[i].Vars())+len(qs[i].Constants()) > len(qs[j].Vars())+len(qs[j].Constants())
	})
	var kept []*cq.CQ
	for _, q := range qs {
		redundant := false
		for _, r := range kept {
			if cq.Contained(q, r) {
				redundant = true
				break
			}
		}
		if !redundant {
			kept = append(kept, q)
		}
	}
	return kept
}
