package boundedness

import (
	"testing"

	"repro/internal/access"
	"repro/internal/cq"
	"repro/internal/schema"
)

// Fixture from Section 3.1 / Example 3.5: schema R(X,Y) with access
// constraint R(X -> Y, 2), query
//
//	Q(x) = R(y,x1) ∧ R(y,x2) ∧ R(y,x3) ∧ R(x3,x) ∧ x1=1 ∧ x2=2 ∧ y=k.
func example35() (*schema.Schema, *access.Schema, *cq.CQ) {
	s := schema.New(schema.NewRelation("R", "X", "Y"))
	a := access.NewSchema(access.NewConstraint("R", []string{"X"}, []string{"Y"}, 2))
	q := cq.NewCQ([]cq.Term{cq.Var("x")},
		[]cq.Atom{
			cq.NewAtom("R", cq.Var("y"), cq.Var("x1")),
			cq.NewAtom("R", cq.Var("y"), cq.Var("x2")),
			cq.NewAtom("R", cq.Var("y"), cq.Var("x3")),
			cq.NewAtom("R", cq.Var("x3"), cq.Var("x")),
		},
		cq.Equality{L: cq.Var("x1"), R: cq.Cst("1")},
		cq.Equality{L: cq.Var("x2"), R: cq.Cst("2")},
		cq.Equality{L: cq.Var("y"), R: cq.Cst("k")},
	)
	return s, a, q
}

func TestExample35ElementQueries(t *testing.T) {
	s, a, q := example35()
	elems := MinimalElementQueries(q, s, a)
	// The X=k group has Y-projections {1, 2, x3}: three distinct values
	// against bound 2. Unifying 1 with 2 is inconsistent; the satisfiable
	// repairs are x3=1 and x3=2 (the paper's Q3 and Q2).
	if len(elems) != 2 {
		t.Fatalf("expected 2 minimal element queries, got %d: %v", len(elems), elems)
	}
	// Each element query must now have a constant x3.
	sawOne, sawTwo := false, false
	for _, e := range elems {
		for _, at := range e.Atoms {
			if at.Args[0].Const && at.Args[0].Val == "1" {
				sawOne = true
			}
			if at.Args[0].Const && at.Args[0].Val == "2" {
				sawTwo = true
			}
		}
	}
	if !sawOne || !sawTwo {
		t.Fatalf("expected x3 bound to 1 in one branch and 2 in the other: %v", elems)
	}
}

func TestExample35Cov(t *testing.T) {
	s, a, _ := example35()
	// Element query Q2: x3 = 2; the only non-constant variable is x, and
	// R("2", x) with constraint R(X -> Y, 2) covers it (Example 3.5).
	q2 := cq.NewCQ([]cq.Term{cq.Var("x")},
		[]cq.Atom{cq.NewAtom("R", cq.Cst("2"), cq.Var("x"))})
	covered := Cov(q2, s, a)
	if b, ok := covered["x"]; !ok || b != 2 {
		t.Fatalf("cov(Q2) should cover x with bound 2, got %v", covered)
	}
}

func TestExample35BoundedOutput(t *testing.T) {
	s, a, q := example35()
	ok, bound := BoundedOutputCQ(q, s, a)
	if !ok {
		t.Fatal("Q of Example 3.5 has bounded output")
	}
	if bound <= 0 || bound > 8 {
		t.Fatalf("unexpected bound %d", bound)
	}
}

func TestUnboundedOutput(t *testing.T) {
	// Q(x) :- R(y,x) with only R(X -> Y, 2): x is a Y of an uncovered X.
	s := schema.New(schema.NewRelation("R", "X", "Y"))
	a := access.NewSchema(access.NewConstraint("R", []string{"X"}, []string{"Y"}, 2))
	q := cq.NewCQ([]cq.Term{cq.Var("x")},
		[]cq.Atom{cq.NewAtom("R", cq.Var("y"), cq.Var("x"))})
	if ok, _ := BoundedOutputCQ(q, s, a); ok {
		t.Fatal("Q(x) :- R(y,x) must have unbounded output")
	}
	// With R(∅ -> (X,Y), 5) everything is bounded.
	a2 := access.NewSchema(access.NewConstraint("R", nil, []string{"X", "Y"}, 5))
	ok, bound := BoundedOutputCQ(q, s, a2)
	if !ok || bound != 5 {
		t.Fatalf("under R(∅ -> XY, 5) output must be bounded by 5, got ok=%v bound=%d", ok, bound)
	}
}

func TestBooleanQueryBounded(t *testing.T) {
	s := schema.New(schema.NewRelation("R", "X", "Y"))
	a := access.NewSchema() // no constraints at all
	q := cq.NewCQ(nil, []cq.Atom{cq.NewAtom("R", cq.Var("x"), cq.Var("y"))})
	ok, bound := BoundedOutputCQ(q, s, a)
	if !ok || bound != 1 {
		t.Fatalf("boolean queries always have bounded output, got ok=%v bound=%d", ok, bound)
	}
}

func TestExhaustiveAgreesWithMinimal(t *testing.T) {
	cases := []struct {
		name string
		mk   func() (*schema.Schema, *access.Schema, *cq.CQ)
	}{
		{"example35", example35},
		{"twoAtoms", func() (*schema.Schema, *access.Schema, *cq.CQ) {
			s := schema.New(schema.NewRelation("R", "X", "Y"))
			a := access.NewSchema(access.NewConstraint("R", []string{"X"}, []string{"Y"}, 1))
			q := cq.NewCQ([]cq.Term{cq.Var("u"), cq.Var("v")}, []cq.Atom{
				cq.NewAtom("R", cq.Var("x"), cq.Var("u")),
				cq.NewAtom("R", cq.Var("x"), cq.Var("v")),
			})
			return s, a, q
		}},
		{"groupOfThree", func() (*schema.Schema, *access.Schema, *cq.CQ) {
			s := schema.New(schema.NewRelation("R", "X", "Y"))
			a := access.NewSchema(access.NewConstraint("R", []string{"X"}, []string{"Y"}, 2))
			q := cq.NewCQ([]cq.Term{cq.Var("u")}, []cq.Atom{
				cq.NewAtom("R", cq.Cst("c"), cq.Var("u")),
				cq.NewAtom("R", cq.Cst("c"), cq.Var("v")),
				cq.NewAtom("R", cq.Cst("c"), cq.Var("w")),
			})
			return s, a, q
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s, a, q := tc.mk()
			exh, err := ExhaustiveElementQueries(q, s, a)
			if err != nil {
				t.Fatalf("exhaustive: %v", err)
			}
			minimal := MinimalElementQueries(q, s, a)
			// Verdict agreement on satisfiability.
			if (len(exh) == 0) != (len(minimal) == 0) {
				t.Fatalf("satisfiability disagreement: exhaustive %d, minimal %d", len(exh), len(minimal))
			}
			// Every exhaustive element query must refine (be contained in)
			// some minimal one.
			for _, e := range exh {
				found := false
				for _, m := range minimal {
					if cq.Contained(e, m) {
						found = true
						break
					}
				}
				if !found {
					t.Fatalf("element query %v refines no minimal element query", e)
				}
			}
			// Bounded-output verdicts must agree between the two
			// characterizations.
			minVerdict, _ := BoundedOutputCQ(q, s, a)
			exhVerdict := true
			for _, e := range exh {
				if ok, _ := HeadCovered(e, s, a); !ok {
					exhVerdict = false
					break
				}
			}
			if minVerdict != exhVerdict {
				t.Fatalf("BOP verdict disagreement: minimal=%v exhaustive=%v", minVerdict, exhVerdict)
			}
		})
	}
}

func TestAContainmentViaFD(t *testing.T) {
	// Under FD R(A -> B, 1): Q1(x,y) :- R(a,x), R(a,y) forces x = y,
	// so Q1 ⊑_A Qd where Qd(x,y) :- R(a,x), x=y; classically it is not.
	s := schema.New(schema.NewRelation("R", "A", "B"))
	a := access.NewSchema(access.NewConstraint("R", []string{"A"}, []string{"B"}, 1))
	q1 := cq.NewCQ([]cq.Term{cq.Var("x"), cq.Var("y")}, []cq.Atom{
		cq.NewAtom("R", cq.Var("a"), cq.Var("x")),
		cq.NewAtom("R", cq.Var("a"), cq.Var("y")),
	})
	qd := cq.NewCQ([]cq.Term{cq.Var("x"), cq.Var("y")},
		[]cq.Atom{cq.NewAtom("R", cq.Var("a"), cq.Var("x"))},
		cq.Equality{L: cq.Var("x"), R: cq.Var("y")})
	if cq.Contained(q1, qd) {
		t.Fatal("classical containment should fail")
	}
	if !AContainedCQ(q1, qd, s, a) {
		t.Fatal("A-containment should hold under the FD")
	}
	if !AEquivalentCQ(q1, qd, s, a) {
		t.Fatal("the two queries are A-equivalent under the FD")
	}
}

func TestASatisfiability(t *testing.T) {
	s := schema.New(schema.NewRelation("R", "X", "Y"))
	a := access.NewSchema(access.NewConstraint("R", []string{"X"}, []string{"Y"}, 1))
	// Q() :- R(c,"1"), R(c,"2") is unsatisfiable under the FD.
	q := cq.NewCQ(nil, []cq.Atom{
		cq.NewAtom("R", cq.Var("c"), cq.Cst("1")),
		cq.NewAtom("R", cq.Var("c"), cq.Cst("2")),
	})
	if ASatisfiable(q, s, a) {
		t.Fatal("query should be A-unsatisfiable")
	}
	if ok, bound := BoundedOutputCQ(q, s, a); !ok || bound != 0 {
		t.Fatalf("A-unsatisfiable query has (trivially) bounded empty output, got %v %d", ok, bound)
	}
	// Without the constraint it is satisfiable.
	if !ASatisfiable(q, s, access.NewSchema()) {
		t.Fatal("query should be satisfiable without constraints")
	}
}

func TestAEquivalenceStricterThanClassical(t *testing.T) {
	// Classical equivalence implies A-equivalence (but not conversely).
	s := schema.New(schema.NewRelation("R", "X", "Y"))
	a := access.NewSchema(access.NewConstraint("R", []string{"X"}, []string{"Y"}, 3))
	q1 := cq.NewCQ([]cq.Term{cq.Var("x")}, []cq.Atom{
		cq.NewAtom("R", cq.Var("x"), cq.Var("y")),
		cq.NewAtom("R", cq.Var("x"), cq.Var("z")),
	})
	q2 := cq.NewCQ([]cq.Term{cq.Var("x")},
		[]cq.Atom{cq.NewAtom("R", cq.Var("x"), cq.Var("y"))})
	if !cq.Equivalent(q1, q2) {
		t.Fatal("q1 and q2 are classically equivalent")
	}
	if !AEquivalentCQ(q1, q2, s, a) {
		t.Fatal("classical equivalence must imply A-equivalence")
	}
}
