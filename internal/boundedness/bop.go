package boundedness

import (
	"repro/internal/access"
	"repro/internal/cq"
	"repro/internal/schema"
)

// BoundedOutputCQ decides BOP for a CQ (Theorem 3.4 / Lemma 3.7): Q has
// bounded output under A iff for every element query Qe of Q, every
// non-constant head variable of Qe belongs to cov(Qe, A). It returns the
// verdict and, when bounded, a derived upper bound on |Q(D)| over all
// D |= A (capped at MaxBound).
//
// The check runs over the ⊑-minimal element queries; by Lemma 3.6 an
// uncovered refinement forces an uncovered minimal element query, so the
// minimal set decides the problem (see element.go).
func BoundedOutputCQ(q *cq.CQ, s *schema.Schema, a *access.Schema) (bool, int64) {
	elems := MinimalElementQueries(q, s, a)
	if len(elems) == 0 {
		return true, 0 // A-unsatisfiable: output is empty on every D |= A
	}
	total := int64(0)
	for _, e := range elems {
		ok, b := HeadCovered(e, s, a)
		if !ok {
			return false, 0
		}
		total = addCap(total, b)
	}
	return true, total
}

func addCap(a, b int64) int64 {
	if a > MaxBound-b {
		return MaxBound
	}
	return a + b
}

// BoundedOutputUCQ decides BOP for a UCQ: bounded iff every disjunct is.
func BoundedOutputUCQ(u *cq.UCQ, s *schema.Schema, a *access.Schema) (bool, int64) {
	total := int64(0)
	for _, d := range u.Disjuncts {
		ok, b := BoundedOutputCQ(d, s, a)
		if !ok {
			return false, 0
		}
		total = addCap(total, b)
	}
	return true, total
}

// AContainedCQ decides Q1 ⊑_A Q2 for CQs (Lemma 3.2 machinery): Q1 is
// A-equivalent to the union of its element queries, and each element query
// Qe satisfies A, so its tableau is a legal counterexample candidate;
// Q1 ⊑_A Q2 iff every minimal element query of Q1 is classically contained
// in Q2.
func AContainedCQ(q1, q2 *cq.CQ, s *schema.Schema, a *access.Schema) bool {
	return AContainedUCQ(cq.NewUCQ(q1), cq.NewUCQ(q2), s, a)
}

// AContainedUCQ decides U1 ⊑_A U2 for UCQs.
func AContainedUCQ(u1, u2 *cq.UCQ, s *schema.Schema, a *access.Schema) bool {
	for _, d := range u1.Disjuncts {
		for _, e := range MinimalElementQueries(d, s, a) {
			if !cq.ContainedInUCQ(e, u2) {
				return false
			}
		}
	}
	return true
}

// AEquivalentUCQ decides U1 ≡_A U2.
func AEquivalentUCQ(u1, u2 *cq.UCQ, s *schema.Schema, a *access.Schema) bool {
	return AContainedUCQ(u1, u2, s, a) && AContainedUCQ(u2, u1, s, a)
}

// AEquivalentCQ decides Q1 ≡_A Q2 for CQs.
func AEquivalentCQ(q1, q2 *cq.CQ, s *schema.Schema, a *access.Schema) bool {
	return AContainedCQ(q1, q2, s, a) && AContainedCQ(q2, q1, s, a)
}

// ASatisfiable reports whether Q has any element query under A, i.e.
// whether Q(D) can be non-empty for some D |= A. It uses the early-exit
// search (unbounded budget).
func ASatisfiable(q *cq.CQ, s *schema.Schema, a *access.Schema) bool {
	ok, _ := ASatisfiableSearch(q, s, a, 0)
	return ok
}

// AEmptyUCQ reports whether U ≡_A ∅ (every disjunct A-unsatisfiable).
func AEmptyUCQ(u *cq.UCQ, s *schema.Schema, a *access.Schema) bool {
	for _, d := range u.Disjuncts {
		if ASatisfiable(d, s, a) {
			return false
		}
	}
	return true
}
