// Package boundedness implements the boundedness theory of Section 3:
// covered variables cov(Q,A), element queries (Lemma 3.6/3.7), the bounded
// output problem BOP, and A-containment / A-equivalence for CQ, UCQ and
// ∃FO+ queries (Lemma 3.2).
package boundedness

import (
	"math"

	"repro/internal/access"
	"repro/internal/cq"
	"repro/internal/schema"
)

// MaxBound caps derived cardinality bounds to avoid overflow; any bound at
// or above this value should be read as "astronomically large but finite".
const MaxBound = math.MaxInt64 / 4

// Cov computes the covered variables cov(Q, A) of a normalized CQ together
// with a derived cardinality bound per covered variable (the constant the
// constraint arithmetic of Lemma 3.6 yields). Constant terms do not appear
// in the result: they are bounded by definition.
//
// The fixpoint follows Section 3.1: a variable y is added when some atom
// R(x̄, ȳ, z̄) and constraint R(X -> Y, N) have all non-constant X-position
// variables already covered; then bound(y) <= N * Π bound(x).
func Cov(q *cq.CQ, s *schema.Schema, a *access.Schema) map[string]int64 {
	n, err := q.Normalize()
	if err != nil {
		return map[string]int64{}
	}
	covered := make(map[string]int64)
	for {
		changed := false
		for _, c := range a.Constraints {
			rel := s.Relation(c.Rel)
			if rel == nil {
				continue
			}
			xpos, errX := rel.Positions(c.X)
			ypos, errY := rel.Positions(c.Y)
			if errX != nil || errY != nil {
				continue
			}
			for _, at := range n.Atoms {
				if at.Rel != c.Rel {
					continue
				}
				// All non-constant X-position terms must be covered.
				inBound := int64(1)
				ok := true
				for _, p := range xpos {
					t := at.Args[p]
					if t.Const {
						continue
					}
					b, cov := covered[t.Val]
					if !cov {
						ok = false
						break
					}
					inBound = mulCap(inBound, b)
				}
				if !ok {
					continue
				}
				yb := mulCap(inBound, int64(c.N))
				for _, p := range ypos {
					t := at.Args[p]
					if t.Const {
						continue
					}
					if cur, cov := covered[t.Val]; !cov || yb < cur {
						covered[t.Val] = yb
						changed = true
					}
				}
			}
		}
		if !changed {
			return covered
		}
	}
}

func mulCap(a, b int64) int64 {
	if a <= 0 || b <= 0 {
		return 0
	}
	if a > MaxBound/b {
		return MaxBound
	}
	return a * b
}

// HeadCovered reports whether every head term of the normalized query is a
// constant or a covered variable, and the product bound over the head
// (Lemma 3.6's characterization of bounded output for queries satisfying A).
func HeadCovered(q *cq.CQ, s *schema.Schema, a *access.Schema) (bool, int64) {
	n, err := q.Normalize()
	if err != nil {
		return true, 0 // unsatisfiable: empty output
	}
	covered := Cov(n, s, a)
	bound := int64(1)
	for _, t := range n.Head {
		if t.Const {
			continue
		}
		b, ok := covered[t.Val]
		if !ok {
			return false, 0
		}
		bound = mulCap(bound, b)
	}
	return true, bound
}
