package boundedness

import (
	"fmt"
	"testing"
	"testing/quick"

	"repro/internal/access"
	"repro/internal/cq"
	"repro/internal/schema"
)

// randomSmallCQ builds a tiny query over R(X,Y) from fuzz bytes, with at
// most 3 atoms and 4 variables so the exhaustive enumeration stays cheap.
func randomSmallCQ(data []byte) *cq.CQ {
	term := func(b byte) cq.Term {
		if b%4 == 0 {
			return cq.Cst(fmt.Sprintf("c%d", b%2))
		}
		return cq.Var(fmt.Sprintf("v%d", b%4))
	}
	q := &cq.CQ{}
	for i := 0; i+1 < len(data) && len(q.Atoms) < 3; i += 2 {
		q.Atoms = append(q.Atoms, cq.NewAtom("R", term(data[i]), term(data[i+1])))
	}
	if len(q.Atoms) == 0 {
		q.Atoms = []cq.Atom{cq.NewAtom("R", cq.Var("v0"), cq.Var("v1"))}
	}
	for _, a := range q.Atoms {
		for _, t := range a.Args {
			if !t.Const {
				q.Head = []cq.Term{t}
				return q
			}
		}
	}
	return q
}

// Property (the minimal-element-query correctness argument): on random
// small queries and constraints, the exhaustive and violation-driven
// enumerations agree on (a) A-satisfiability, (b) the refinement relation
// (every exhaustive element query is contained in some minimal one), and
// (c) the bounded-output verdict.
func TestQuickMinimalVsExhaustive(t *testing.T) {
	s := schema.New(schema.NewRelation("R", "X", "Y"))
	f := func(data []byte, nRaw byte) bool {
		n := 1 + int(nRaw%3)
		a := access.NewSchema(access.NewConstraint("R", []string{"X"}, []string{"Y"}, n))
		q := randomSmallCQ(data)

		exh, err := ExhaustiveElementQueries(q, s, a)
		if err != nil {
			return true // too large; skip
		}
		minimal := MinimalElementQueries(q, s, a)
		if (len(exh) == 0) != (len(minimal) == 0) {
			return false
		}
		for _, e := range exh {
			found := false
			for _, m := range minimal {
				if cq.Contained(e, m) {
					found = true
					break
				}
			}
			if !found {
				return false
			}
		}
		minVerdict, _ := BoundedOutputCQ(q, s, a)
		exhVerdict := true
		for _, e := range exh {
			if ok, _ := HeadCovered(e, s, a); !ok {
				exhVerdict = false
				break
			}
		}
		return minVerdict == exhVerdict
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 250}); err != nil {
		t.Fatal(err)
	}
}

// Property: A-containment is sound on the canonical instances — if
// Q1 ⊑_A Q2, then on the tableau of each element query of Q1 (an instance
// satisfying A) Q2 answers whatever Q1 answers.
func TestQuickAContainmentReflexiveAndSound(t *testing.T) {
	s := schema.New(schema.NewRelation("R", "X", "Y"))
	a := access.NewSchema(access.NewConstraint("R", []string{"X"}, []string{"Y"}, 2))
	f := func(data []byte) bool {
		q := randomSmallCQ(data)
		if !AContainedCQ(q, q, s, a) {
			return false
		}
		// A-containment in a strictly more general query.
		gen := &cq.CQ{Head: q.Head, Atoms: q.Atoms[:1]}
		if len(gen.Head) > 0 && !gen.Head[0].Const {
			found := false
			for _, t := range gen.Atoms[0].Args {
				if t == gen.Head[0] {
					found = true
				}
			}
			if !found {
				return true // head not bound by first atom; skip
			}
		}
		return AContainedCQ(q, gen, s, a)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 250}); err != nil {
		t.Fatal(err)
	}
}

// Property: ASatisfiableSearch agrees with the full enumeration.
func TestQuickSatisfiabilityAgreement(t *testing.T) {
	s := schema.New(schema.NewRelation("R", "X", "Y"))
	f := func(data []byte, nRaw byte) bool {
		n := 1 + int(nRaw%2)
		a := access.NewSchema(access.NewConstraint("R", []string{"X"}, []string{"Y"}, n))
		q := randomSmallCQ(data)
		fast, exact := ASatisfiableSearch(q, s, a, 0)
		if !exact {
			return false
		}
		full := MinimalElementQueries(q, s, a)
		return fast == (len(full) > 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 250}); err != nil {
		t.Fatal(err)
	}
}
