// Package chase implements the classical tableau chase with FD-shaped
// access constraints R(X -> Y, 1), the engine behind the PTIME results of
// Corollary 4.4 and Proposition 4.5: chasing the tableau of Q by the FDs in
// A yields a query Q_A with Q_A ≡_A Q whose tableau satisfies A, reducing
// A-containment to classical containment.
package chase

import (
	"repro/internal/access"
	"repro/internal/cq"
	"repro/internal/schema"
)

// Chase chases the tableau of q with the FD-shaped constraints of a
// (constraints with N > 1 are ignored — callers in the FD-only regimes
// guarantee there are none). It returns the chased query and ok=true, or
// ok=false when the chase equates two distinct constants, in which case
// q ≡_A ∅ (no instance satisfying A embeds the tableau).
func Chase(q *cq.CQ, s *schema.Schema, a *access.Schema) (*cq.CQ, bool) {
	cur, err := q.Normalize()
	if err != nil {
		return nil, false
	}
	for {
		eqs := step(cur, s, a)
		if len(eqs) == 0 {
			return cur, true
		}
		next := cur.Clone()
		next.Eqs = append(next.Eqs, eqs...)
		n, err := next.Normalize()
		if err != nil {
			return nil, false
		}
		cur = n
	}
}

// step finds one FD violation in the (normalized) query's atoms and returns
// the equalities that repair it; nil when no FD is violated.
func step(q *cq.CQ, s *schema.Schema, a *access.Schema) []cq.Equality {
	for _, c := range a.Constraints {
		if !c.IsFD() {
			continue
		}
		rel := s.Relation(c.Rel)
		if rel == nil {
			continue
		}
		xpos, err := rel.Positions(c.X)
		if err != nil {
			continue
		}
		ypos, err := rel.Positions(c.Y)
		if err != nil {
			continue
		}
		// Group atoms of this relation by their X-projection.
		groups := make(map[string][]cq.Atom)
		for _, at := range q.Atoms {
			if at.Rel != c.Rel {
				continue
			}
			key := ""
			for _, p := range xpos {
				key += at.Args[p].String() + "\x1f"
			}
			groups[key] = append(groups[key], at)
		}
		for _, g := range groups {
			if len(g) < 2 {
				continue
			}
			base := g[0]
			for _, other := range g[1:] {
				var eqs []cq.Equality
				for _, p := range ypos {
					if base.Args[p] != other.Args[p] {
						eqs = append(eqs, cq.Equality{L: base.Args[p], R: other.Args[p]})
					}
				}
				if len(eqs) > 0 {
					return eqs
				}
			}
		}
	}
	return nil
}

// AContainedFD decides q1 ⊑_A q2 when A consists of FDs only, per
// Corollary 4.4: chase q1 by A, then test classical containment of the
// chased query in q2.
func AContainedFD(q1, q2 *cq.CQ, s *schema.Schema, a *access.Schema) bool {
	c1, ok := Chase(q1, s, a)
	if !ok {
		return true // q1 ≡_A ∅ is contained in everything
	}
	return cq.Contained(c1, q2)
}

// AEquivalentFD decides q1 ≡_A q2 in the FD-only regime.
func AEquivalentFD(q1, q2 *cq.CQ, s *schema.Schema, a *access.Schema) bool {
	c1, ok1 := Chase(q1, s, a)
	c2, ok2 := Chase(q2, s, a)
	if !ok1 || !ok2 {
		return ok1 == ok2 // both A-empty, or one empty and one not
	}
	return cq.Contained(c1, c2) && cq.Contained(c2, c1)
}

// TableauSatisfies reports whether the tableau of q (variables viewed as
// constants) satisfies every cardinality constraint in a; this is the
// "Q satisfies A" notion used to define element queries (Section 3.1).
func TableauSatisfies(q *cq.CQ, s *schema.Schema, a *access.Schema) bool {
	n, err := q.Normalize()
	if err != nil {
		return false
	}
	for _, c := range a.Constraints {
		rel := s.Relation(c.Rel)
		if rel == nil {
			continue
		}
		xpos, err := rel.Positions(c.X)
		if err != nil {
			return false
		}
		ypos, err := rel.Positions(c.Y)
		if err != nil {
			return false
		}
		groups := make(map[string]map[string]struct{})
		for _, at := range n.Atoms {
			if at.Rel != c.Rel {
				continue
			}
			xkey, ykey := "", ""
			for _, p := range xpos {
				xkey += at.Args[p].String() + "\x1f"
			}
			for _, p := range ypos {
				ykey += at.Args[p].String() + "\x1f"
			}
			g := groups[xkey]
			if g == nil {
				g = make(map[string]struct{})
				groups[xkey] = g
			}
			g[ykey] = struct{}{}
			if len(g) > c.N {
				return false
			}
		}
	}
	return true
}
