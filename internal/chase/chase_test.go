package chase

import (
	"testing"

	"repro/internal/access"
	"repro/internal/cq"
	"repro/internal/schema"
)

func fixture() (*schema.Schema, *access.Schema) {
	s := schema.New(schema.NewRelation("R", "A", "B", "C"))
	a := access.NewSchema(access.NewConstraint("R", []string{"A"}, []string{"B"}, 1))
	return s, a
}

func TestChaseUnifies(t *testing.T) {
	s, a := fixture()
	// R(x,y1,z1), R(x,y2,z2) with A -> B forces y1 = y2.
	q := cq.NewCQ([]cq.Term{cq.Var("y1"), cq.Var("y2")}, []cq.Atom{
		cq.NewAtom("R", cq.Var("x"), cq.Var("y1"), cq.Var("z1")),
		cq.NewAtom("R", cq.Var("x"), cq.Var("y2"), cq.Var("z2")),
	})
	c, ok := Chase(q, s, a)
	if !ok {
		t.Fatal("chase must succeed")
	}
	if c.Head[0] != c.Head[1] {
		t.Fatalf("chase must unify y1 and y2: %s", c)
	}
	if len(c.Atoms) != 2 {
		t.Fatalf("z1 and z2 stay distinct, expect 2 atoms: %s", c)
	}
}

func TestChaseTransitive(t *testing.T) {
	s, a := fixture()
	// Unification can cascade: first B's unify, making the two "c"-keyed
	// atoms collide next.
	q := cq.NewCQ(nil, []cq.Atom{
		cq.NewAtom("R", cq.Cst("k"), cq.Var("b1"), cq.Var("z")),
		cq.NewAtom("R", cq.Cst("k"), cq.Var("b2"), cq.Var("z")),
		cq.NewAtom("R", cq.Var("b1"), cq.Cst("u"), cq.Var("z")),
		cq.NewAtom("R", cq.Var("b2"), cq.Cst("v"), cq.Var("z")),
	})
	_, ok := Chase(q, s, a)
	// After b1 = b2, the atoms R(b1,"u",z) and R(b1,"v",z) force u = v —
	// two distinct constants: the chase must fail (Q ≡_A ∅).
	if ok {
		t.Fatal("cascading chase must detect the constant clash")
	}
}

func TestChaseInconsistent(t *testing.T) {
	s, a := fixture()
	q := cq.NewCQ(nil, []cq.Atom{
		cq.NewAtom("R", cq.Cst("k"), cq.Cst("1"), cq.Var("z")),
		cq.NewAtom("R", cq.Cst("k"), cq.Cst("2"), cq.Var("z")),
	})
	if _, ok := Chase(q, s, a); ok {
		t.Fatal("two distinct constants under an FD must be inconsistent")
	}
}

func TestAContainedFD(t *testing.T) {
	s, a := fixture()
	q1 := cq.NewCQ([]cq.Term{cq.Var("y1"), cq.Var("y2")}, []cq.Atom{
		cq.NewAtom("R", cq.Var("x"), cq.Var("y1"), cq.Var("z1")),
		cq.NewAtom("R", cq.Var("x"), cq.Var("y2"), cq.Var("z2")),
	})
	qd := cq.NewCQ([]cq.Term{cq.Var("y"), cq.Var("y")}, []cq.Atom{
		cq.NewAtom("R", cq.Var("x"), cq.Var("y"), cq.Var("z")),
	})
	if cq.Contained(q1, qd) {
		t.Fatal("not classically contained")
	}
	if !AContainedFD(q1, qd, s, a) {
		t.Fatal("A-contained under the FD")
	}
	if !AEquivalentFD(q1, qd, s, a) {
		t.Fatal("A-equivalent under the FD")
	}
	// Containment must still fail when genuinely different.
	other := cq.NewCQ([]cq.Term{cq.Var("y"), cq.Var("y")}, []cq.Atom{
		cq.NewAtom("R", cq.Cst("fixed"), cq.Var("y"), cq.Var("z")),
	})
	if AContainedFD(q1, other, s, a) {
		t.Fatal("containment into a constant-restricted query must fail")
	}
}

func TestTableauSatisfies(t *testing.T) {
	s := schema.New(schema.NewRelation("R", "A", "B"))
	a := access.NewSchema(access.NewConstraint("R", []string{"A"}, []string{"B"}, 2))
	ok := cq.NewCQ(nil, []cq.Atom{
		cq.NewAtom("R", cq.Cst("k"), cq.Var("x")),
		cq.NewAtom("R", cq.Cst("k"), cq.Var("y")),
	})
	if !TableauSatisfies(ok, s, a) {
		t.Fatal("two Y-values within bound 2 satisfy A")
	}
	bad := cq.NewCQ(nil, []cq.Atom{
		cq.NewAtom("R", cq.Cst("k"), cq.Var("x")),
		cq.NewAtom("R", cq.Cst("k"), cq.Var("y")),
		cq.NewAtom("R", cq.Cst("k"), cq.Var("z")),
	})
	if TableauSatisfies(bad, s, a) {
		t.Fatal("three distinct Y-values exceed bound 2")
	}
}
