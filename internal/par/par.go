// Package par provides a tiny bounded-parallelism harness for the
// evaluation engines: UCQ disjuncts, view materialization and independent
// plan subtrees run concurrently on a GOMAXPROCS-sized token pool.
//
// The pool is global and admission is try-acquire: when no token is free
// the work runs inline on the caller's goroutine. That keeps the total
// number of extra goroutines bounded and makes nesting (a parallel plan
// subtree inside a parallel view materialization) deadlock-free by
// construction.
package par

import (
	"runtime"
	"sync"
)

// The caller's goroutine is itself a worker, so the pool holds
// GOMAXPROCS-1 tokens: on a single-CPU machine everything runs inline and
// parallel evaluation degrades gracefully to the sequential order. The
// pool size is captured at package init; if GOMAXPROCS is lowered later
// (e.g. go test -cpu sweeps), the admission gate below still prevents
// spawning, though a raised value will not grow the pool.
var tokens = make(chan struct{}, runtime.GOMAXPROCS(0)-1)

// Workers returns the total worker count (the token pool plus the caller).
func Workers() int { return min(cap(tokens), runtime.GOMAXPROCS(0)-1) + 1 }

// Do runs the functions, in parallel when tokens are free, and returns the
// first error (by argument order). Every function has completed when Do
// returns.
func Do(fns ...func() error) error {
	if len(fns) == 0 {
		return nil
	}
	spawn := runtime.GOMAXPROCS(0) > 1
	errs := make([]error, len(fns))
	var wg sync.WaitGroup
	for i, fn := range fns[1:] {
		if !spawn {
			errs[i+1] = fn()
			continue
		}
		select {
		case tokens <- struct{}{}:
			wg.Add(1)
			go func(i int, fn func() error) {
				defer func() { <-tokens; wg.Done() }()
				errs[i] = fn()
			}(i+1, fn)
		default:
			errs[i+1] = fn()
		}
	}
	errs[0] = fns[0]()
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// ForEach runs f(0..n-1), in parallel when tokens are free, and returns
// the first error (by index order).
func ForEach(n int, f func(i int) error) error {
	fns := make([]func() error, n)
	for i := range fns {
		i := i
		fns[i] = func() error { return f(i) }
	}
	return Do(fns...)
}
