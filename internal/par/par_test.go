package par

import (
	"errors"
	"sync/atomic"
	"testing"
)

func TestDoRunsAll(t *testing.T) {
	var n atomic.Int64
	fns := make([]func() error, 50)
	for i := range fns {
		fns[i] = func() error { n.Add(1); return nil }
	}
	if err := Do(fns...); err != nil {
		t.Fatal(err)
	}
	if n.Load() != 50 {
		t.Fatalf("want 50 executions, got %d", n.Load())
	}
	if err := Do(); err != nil {
		t.Fatal("empty Do must succeed")
	}
}

func TestDoFirstErrorByOrder(t *testing.T) {
	e1, e2 := errors.New("first"), errors.New("second")
	err := Do(
		func() error { return nil },
		func() error { return e1 },
		func() error { return e2 },
	)
	if err != e1 {
		t.Fatalf("want the first error by argument order, got %v", err)
	}
}

func TestForEachNested(t *testing.T) {
	// Nesting must not deadlock: inner calls fall back to inline execution
	// when the token pool is exhausted.
	var n atomic.Int64
	err := ForEach(8, func(int) error {
		return ForEach(8, func(int) error { n.Add(1); return nil })
	})
	if err != nil {
		t.Fatal(err)
	}
	if n.Load() != 64 {
		t.Fatalf("want 64 executions, got %d", n.Load())
	}
}
