// Package shard implements horizontal partitioning of a live instance: a
// Database is hash-partitioned into P shards, each owning its own fetch
// indices (instance.Indexed), incremental view-maintenance engine with its
// join indexes (eval.DeltaEngine over intern.DynIndex), materialized-view
// partitions and cost-model statistics. Plan execution is scatter-gather —
// a fetch whose access constraint binds the partition key routes to the
// single owning shard, everything else gathers across shards and dedups —
// and batched deltas are routed per shard and maintained concurrently on
// the internal/par pool, replacing the single global writer stall of the
// facade's Live handle with per-shard locking.
//
// The paper's scale-independence story composes with partitioning: a
// bounded plan touches cached views plus a constant-size slice of D, and
// the partitioning rule keeps every routed fetch a single-shard point
// read, so |Dξ| does not grow with the shard count.
package shard

import (
	"sort"
	"strings"

	"repro/internal/access"
	"repro/internal/cq"
	"repro/internal/schema"
)

// fnv64 parameters, matching intern's row hashing.
const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// hashVals hashes a sequence of domain values byte-wise. Routing hashes
// string values (not interned IDs) so rows can be placed without touching
// the dictionary and probes can be routed from either representation.
func hashVals(vals []string) uint64 {
	h := uint64(fnvOffset64)
	for _, v := range vals {
		for i := 0; i < len(v); i++ {
			h ^= uint64(v[i])
			h *= fnvPrime64
		}
		h ^= 0x1f // value separator, so ("ab","c") != ("a","bc")
		h *= fnvPrime64
	}
	return h
}

// relRoute is one relation's partitioning rule: rows are placed by the
// hash of their projection onto Attrs (sorted attribute order).
type relRoute struct {
	Attrs []string // partition attributes, sorted
	Pos   []int    // their positions in the relation
}

// conRoute is the routing decision for one access constraint: when the
// constraint's X covers the relation's partition attributes, a fetch for
// an X-value is answered entirely by one shard and XPos gives the
// positions of the partition attributes within the X-value (c.X order);
// otherwise the fetch broadcasts to every shard and gathers.
type conRoute struct {
	XPos []int // nil => broadcast
}

// Partition is the routing metadata of one sharded instance: the number of
// shards, the per-relation partitioning rule and the per-constraint fetch
// route. It is immutable after construction.
type Partition struct {
	P    int
	rels map[string]*relRoute
	cons map[string]*conRoute
}

// NewPartition derives the partitioning rule from the schema and access
// schema. Per relation the partition attributes are chosen among the
// non-empty X-sets of its access constraints — the set covered by the most
// constraints wins (ties: fewer attributes, then lexicographic), so as
// many fetches as possible become single-shard point reads. A relation
// with no usable constraint partitions by its full row; every fetch on it
// broadcasts.
func NewPartition(s *schema.Schema, a *access.Schema, p int) *Partition {
	pt := &Partition{P: p, rels: make(map[string]*relRoute), cons: make(map[string]*conRoute)}
	for _, r := range s.Relations {
		attrs := choosePartitionAttrs(r, a.OnRelation(r.Name))
		pos, err := r.Positions(attrs)
		if err != nil {
			// Attrs come from validated constraints or the relation itself;
			// fall back to the full row on the impossible path.
			attrs = append([]string(nil), r.Attrs...)
			sort.Strings(attrs)
			pos, _ = r.Positions(attrs)
		}
		pt.rels[r.Name] = &relRoute{Attrs: attrs, Pos: pos}
	}
	for _, c := range a.Constraints {
		rr := pt.rels[c.Rel]
		if rr == nil {
			continue
		}
		route := &conRoute{}
		if covered, xpos := subsetPositions(rr.Attrs, c.X); covered {
			route.XPos = xpos
		}
		pt.cons[c.Key()] = route
	}
	return pt
}

// choosePartitionAttrs picks the partition attribute set for one relation.
func choosePartitionAttrs(r *schema.Relation, cons []*access.Constraint) []string {
	type cand struct {
		attrs []string
		key   string
		score int
	}
	byKey := map[string]*cand{}
	for _, c := range cons {
		if len(c.X) == 0 {
			continue
		}
		k := strings.Join(c.X, "\x1f")
		if _, ok := byKey[k]; !ok {
			byKey[k] = &cand{attrs: c.X, key: k}
		}
	}
	if len(byKey) == 0 {
		attrs := append([]string(nil), r.Attrs...)
		sort.Strings(attrs)
		return attrs
	}
	for _, cd := range byKey {
		for _, c := range cons {
			if ok, _ := subsetPositions(cd.attrs, c.X); ok {
				cd.score++
			}
		}
	}
	var best *cand
	for _, cd := range byKey {
		switch {
		case best == nil,
			cd.score > best.score,
			cd.score == best.score && len(cd.attrs) < len(best.attrs),
			cd.score == best.score && len(cd.attrs) == len(best.attrs) && cd.key < best.key:
			best = cd
		}
	}
	return best.attrs
}

// subsetPositions reports whether sub ⊆ super (both sorted, deduplicated)
// and returns the position of each sub element within super.
func subsetPositions(sub, super []string) (bool, []int) {
	pos := make([]int, len(sub))
	for i, a := range sub {
		j := sort.SearchStrings(super, a)
		if j >= len(super) || super[j] != a {
			return false, nil
		}
		pos[i] = j
	}
	return true, pos
}

// ShardOfRow returns the shard owning a row of the named relation.
func (pt *Partition) ShardOfRow(rel string, row []string) int {
	rr := pt.rels[rel]
	vals := make([]string, len(rr.Pos))
	for i, p := range rr.Pos {
		vals[i] = row[p]
	}
	return int(hashVals(vals) % uint64(pt.P))
}

// Route returns the fetch route of a constraint (nil for unknown ones).
func (pt *Partition) Route(c *access.Constraint) *conRoute { return pt.cons[c.Key()] }

// Rel returns the partitioning rule of a relation (nil for unknown ones).
func (pt *Partition) Rel(name string) *relRoute { return pt.rels[name] }

// LocalView reports whether a UCQ view is co-partitioned: every
// satisfiable disjunct, after normalization, binds the partition
// attributes of all its atoms to the same term sequence, so every
// valuation draws all of its rows from a single shard. For such views
// V(D) = ∪_p V(D_p) (as sets) and maintenance stays entirely shard-local;
// anything else is maintained by the global engine instead.
func (pt *Partition) LocalView(def *cq.UCQ) bool {
	for _, d := range def.Disjuncts {
		n, err := d.Normalize()
		if err != nil {
			continue // unsatisfiable: contributes nothing on any shard
		}
		var sig []cq.Term
		for i, at := range n.Atoms {
			rr := pt.rels[at.Rel]
			if rr == nil || len(at.Args) < len(rr.Pos) {
				return false // unknown relation / malformed atom: play safe
			}
			s := make([]cq.Term, len(rr.Pos))
			for j, p := range rr.Pos {
				s[j] = at.Args[p]
			}
			if i == 0 {
				sig = s
				continue
			}
			if !termsEq(sig, s) {
				return false
			}
		}
	}
	return true
}

func termsEq(a, b []cq.Term) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Const != b[i].Const || a[i].Val != b[i].Val {
			return false
		}
	}
	return true
}
