package shard

import (
	"fmt"
	"testing"

	"repro/internal/access"
	"repro/internal/cq"
	"repro/internal/instance"
	"repro/internal/schema"
)

func fixtureSchema() (*schema.Schema, *access.Schema) {
	s := schema.New(
		schema.NewRelation("acct", "uid", "region"),
		schema.NewRelation("txn", "uid", "item", "amt"),
		schema.NewRelation("misc", "a", "b"),
	)
	a := access.NewSchema(
		access.NewConstraint("acct", []string{"uid"}, []string{"region"}, 1),
		access.NewConstraint("txn", []string{"uid"}, []string{"item", "amt"}, 8),
		access.NewConstraint("txn", []string{"uid", "item"}, []string{"amt"}, 2),
		access.NewConstraint("misc", nil, []string{"a", "b"}, 1000),
	)
	return s, a
}

// TestPartitionAttrsAndRoutes pins the partition-key choice (the X-set
// covered by the most constraints) and the per-constraint routing: X ⊇
// partition key routes, anything else broadcasts.
func TestPartitionAttrsAndRoutes(t *testing.T) {
	s, a := fixtureSchema()
	pt := NewPartition(s, a, 4)
	if got := pt.Rel("acct").Attrs; len(got) != 1 || got[0] != "uid" {
		t.Fatalf("acct partition attrs = %v, want [uid]", got)
	}
	// {uid} is a subset of both txn constraints' X-sets, {uid,item} only of
	// one: {uid} wins.
	if got := pt.Rel("txn").Attrs; len(got) != 1 || got[0] != "uid" {
		t.Fatalf("txn partition attrs = %v, want [uid]", got)
	}
	// misc has no constraint with non-empty X: full-row partitioning.
	if got := pt.Rel("misc").Attrs; len(got) != 2 {
		t.Fatalf("misc partition attrs = %v, want the full row", got)
	}
	if r := pt.Route(a.Constraints[0]); r == nil || r.XPos == nil {
		t.Fatal("acct(uid->region) must route")
	}
	if r := pt.Route(a.Constraints[2]); r == nil || r.XPos == nil {
		t.Fatal("txn(uid,item->amt) must route: X covers the partition key")
	}
	if r := pt.Route(a.Constraints[3]); r == nil || r.XPos != nil {
		t.Fatal("misc(∅->a,b) must broadcast")
	}
}

// TestRoutingConsistency checks the load-bearing invariant: the shard a
// row is placed on equals the shard every routed fetch key for that row
// hashes to, and co-partitioned atoms land together.
func TestRoutingConsistency(t *testing.T) {
	s, a := fixtureSchema()
	pt := NewPartition(s, a, 7)
	for i := 0; i < 200; i++ {
		uid := fmt.Sprintf("u%d", i)
		accRow := []string{uid, "emea"}
		txnRow := []string{uid, fmt.Sprintf("it%d", i%13), "9"}
		sa := pt.ShardOfRow("acct", accRow)
		st := pt.ShardOfRow("txn", txnRow)
		if sa != st {
			t.Fatalf("uid %s: acct on shard %d, txn on shard %d — co-partitioning broken", uid, sa, st)
		}
		// The routed fetch key for txn(uid,item -> amt) is (item, uid) in
		// sorted-X order; XPos must pick out uid.
		r := pt.Route(a.Constraints[2])
		xval := []string{txnRow[1], uid} // c.X = [item, uid] sorted
		vals := make([]string, len(r.XPos))
		for j, p := range r.XPos {
			vals[j] = xval[p]
		}
		if got := int(hashVals(vals) % 7); got != st {
			t.Fatalf("uid %s: fetch routes to shard %d, row lives on %d", uid, got, st)
		}
	}
}

// TestLocalViewAnalysis pins the co-partition analysis: joins on the
// partition key are shard-local, anything else is global.
func TestLocalViewAnalysis(t *testing.T) {
	s, a := fixtureSchema()
	pt := NewPartition(s, a, 4)
	mk := func(head []cq.Term, atoms ...cq.Atom) *cq.UCQ { return cq.NewUCQ(cq.NewCQ(head, atoms)) }

	// Single atom: always local.
	if !pt.LocalView(mk([]cq.Term{cq.Var("u")}, cq.NewAtom("acct", cq.Var("u"), cq.Var("r")))) {
		t.Fatal("single-atom view must be local")
	}
	// Join on the shared partition key: local.
	coPart := mk([]cq.Term{cq.Var("u"), cq.Var("i")},
		cq.NewAtom("acct", cq.Var("u"), cq.Cst("emea")),
		cq.NewAtom("txn", cq.Var("u"), cq.Var("i"), cq.Var("x")))
	if !pt.LocalView(coPart) {
		t.Fatal("join on the partition key must be local")
	}
	// Join on a non-partition column: global.
	crossPart := mk([]cq.Term{cq.Var("u")},
		cq.NewAtom("acct", cq.Var("u"), cq.Var("r")),
		cq.NewAtom("txn", cq.Var("v"), cq.Var("r"), cq.Var("x")))
	if pt.LocalView(crossPart) {
		t.Fatal("join across partition keys must be global")
	}
	// An equality that unifies the keys makes it local again (analysis
	// runs on the normalized disjunct).
	unified := cq.NewUCQ(cq.NewCQ([]cq.Term{cq.Var("u")},
		[]cq.Atom{
			cq.NewAtom("acct", cq.Var("u"), cq.Var("r")),
			cq.NewAtom("txn", cq.Var("v"), cq.Var("i"), cq.Var("x")),
		},
		cq.Equality{L: cq.Var("u"), R: cq.Var("v")}))
	if !pt.LocalView(unified) {
		t.Fatal("normalization must make the unified join local")
	}
}

// TestShardedOpenAndPointReads drives the engine directly: rows land on
// their shards, routed fetches answer from exactly one partition, and the
// gathered answer matches the per-shard contents.
func TestShardedOpenAndPointReads(t *testing.T) {
	s, a := fixtureSchema()
	db := instance.NewDatabase(s)
	const users = 50
	for i := 0; i < users; i++ {
		uid := fmt.Sprintf("u%d", i)
		db.MustInsert("acct", uid, "emea")
		for j := 0; j < 3; j++ {
			db.MustInsert("txn", uid, fmt.Sprintf("it%d", j), fmt.Sprintf("%d", j))
		}
	}
	views := map[string]*cq.UCQ{}
	sh, err := Open(db, s, a, views, Config{Shards: 4, StatsDriftFrac: 0.2, StatsMinChurn: 256})
	if err != nil {
		t.Fatal(err)
	}
	if got := sh.Size(); got != users*4 {
		t.Fatalf("size %d, want %d", got, users*4)
	}
	sizes := sh.ShardSizes()
	nonEmpty := 0
	for _, n := range sizes {
		if n > 0 {
			nonEmpty++
		}
	}
	if nonEmpty < 2 {
		t.Fatalf("hash partitioning left the data on %d shard(s): %v", nonEmpty, sizes)
	}
	// Routed probe per uid against the current epoch: exactly the 3 txns.
	e := sh.Current()
	for i := 0; i < users; i++ {
		uid := sh.dict.ID(fmt.Sprintf("u%d", i))
		rows, err := e.FetchIDs(a.Constraints[1], []uint32{uid})
		if err != nil {
			t.Fatal(err)
		}
		if len(rows) != 3 {
			t.Fatalf("u%d: fetched %d txns, want 3", i, len(rows))
		}
	}
	// Broadcast probe on misc (empty X): the gathered whole-relation scan.
	// The pinned epoch e must NOT see the delta; the new epoch must.
	if _, err := sh.ApplyDelta([]instance.Op{
		{Rel: "misc", Row: instance.Tuple{"x", "y"}},
		{Rel: "misc", Row: instance.Tuple{"p", "q"}},
		{Rel: "misc", Row: instance.Tuple{"x", "y"}}, // duplicate: one projection
	}, nil); err != nil {
		t.Fatal(err)
	}
	if rows, err := e.FetchIDs(a.Constraints[3], nil); err != nil || len(rows) != 0 {
		t.Fatalf("pinned epoch observed a later batch: %v rows, err %v", len(rows), err)
	}
	rows, err := sh.Current().FetchIDs(a.Constraints[3], nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("broadcast fetch gathered %d distinct projections, want 2", len(rows))
	}
}
