package shard

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/access"
	"repro/internal/cq"
	"repro/internal/eval"
	"repro/internal/instance"
	"repro/internal/intern"
	"repro/internal/par"
	"repro/internal/plan"
	"repro/internal/schema"
)

// state is one shard: a partition of the database with its own fetch
// indices and its own incremental maintenance engine for the co-partitioned
// (shard-local) views. The RWMutex serializes that shard's maintenance
// against readers touching the shard — the whole point of partitioning is
// that a writer patching shard i never stalls a reader served by shard j.
type state struct {
	mu  sync.RWMutex
	db  *instance.Database
	ix  *instance.Indexed
	eng *eval.DeltaEngine
}

// globalEngine maintains the views that are NOT co-partitioned: their
// joins cross shards, so they are fed every applied op and keep their own
// join state, exactly like an unsharded Live would. It has its own lock,
// ordered after all shard locks.
type globalEngine struct {
	mu  sync.RWMutex
	eng *eval.DeltaEngine
}

// DeltaStats summarizes one applied batch (mirrors the facade's).
// MaxShardHold is the longest contiguous exclusive-lock window any single
// shard saw while the batch was maintained — the stall bound a concurrent
// point read can collide with. The unsharded Live handle's equivalent is
// the whole batch's maintenance; partitioning shrinks it ~P-fold.
type DeltaStats struct {
	Inserted       int
	Deleted        int
	ViewsChanged   int
	StatsRefreshed bool
	MaxShardHold   time.Duration
}

// Statistics drift policy, matching the facade's Live handle.
const (
	statsDriftFrac = 0.2
	statsMinChurn  = 256
)

// Sharded is a partitioned live instance: P shards, the routing metadata,
// the global engine for non-co-partitioned views, the gathered view
// extents served to plan execution, and merged cost-model statistics.
//
// Concurrency: any number of Execute/Views/Size calls may run in parallel
// with each other and with ApplyDelta. ApplyDelta batches serialize among
// themselves, but inside a batch the shards are maintained concurrently,
// each under its own write lock. A plan whose fetches all route (and that
// reads no views) locks only the shards its probes actually hit; other
// plans take every shard's read lock for the duration of the call. There
// is no cross-shard snapshot: a read overlapping a delta may observe the
// batch applied on some shards and not yet on others (each shard is
// individually consistent). Readers that need a frozen global state must
// not overlap ApplyDelta; see ROADMAP's snapshot-isolation item.
type Sharded struct {
	schema *schema.Schema
	access *access.Schema
	views  map[string]*cq.UCQ
	part   *Partition
	dict   *intern.Dict

	shards []*state
	g      *globalEngine // nil when every view is co-partitioned
	local  map[string]bool

	batchMu sync.Mutex // serializes ApplyDelta batches

	// Gathered extents: per view, the concatenation of the shard extents
	// (local views) or the global engine's extent. Entries are rebuilt
	// lazily by readers when a batch dirtied them; mergeMu orders strictly
	// after every shard lock and the global lock.
	mergeMu sync.Mutex
	merged  map[string][][]uint32
	dirty   map[string]bool

	// Merged cost-model statistics over all shards.
	statsMu    sync.RWMutex
	stats      *plan.Stats
	statsVer   uint64
	statsChurn int

	fetchedTuples atomic.Int64
	fetchCalls    atomic.Int64
	lockStall     atomic.Int64 // ns readers spent blocked behind writer locks
}

// rlockTimed takes a read lock, accounting the time spent actually
// blocked (a free lock costs nothing). The counter is how the serving
// experiments measure the writer-induced stall partitioning removes: at
// P shards a point read can only collide with the one shard the writer
// is currently patching, not with the whole batch.
func (s *Sharded) rlockTimed(mu *sync.RWMutex) {
	if mu.TryRLock() {
		return
	}
	t0 := time.Now()
	mu.RLock()
	s.lockStall.Add(int64(time.Since(t0)))
}

// LockStall returns the cumulative time readers spent blocked on shard
// (or global-engine) locks across the handle's lifetime.
func (s *Sharded) LockStall() time.Duration { return time.Duration(s.lockStall.Load()) }

// Open partitions db into p shards and builds the per-shard state. The
// database is consumed: its rows are moved into the shard partitions and
// its tables are emptied; route all further reads and writes through the
// returned handle. The views must already be validated against the schema.
func Open(db *instance.Database, s *schema.Schema, a *access.Schema, views map[string]*cq.UCQ, p int) (*Sharded, error) {
	if p < 1 {
		return nil, fmt.Errorf("shard: need at least 1 shard, got %d", p)
	}
	pt := NewPartition(s, a, p)
	localViews := make(map[string]*cq.UCQ)
	globalViews := make(map[string]*cq.UCQ)
	local := make(map[string]bool, len(views))
	for name, def := range views {
		if pt.LocalView(def) {
			localViews[name] = def
			local[name] = true
		} else {
			globalViews[name] = def
		}
	}
	sh := &Sharded{
		schema: s,
		access: a,
		views:  views,
		part:   pt,
		dict:   db.Dict,
		local:  local,
		merged: make(map[string][][]uint32, len(views)),
		dirty:  make(map[string]bool, len(views)),
	}

	// The global engine seeds its join state from the full instance, so it
	// must be built before the rows move out.
	if len(globalViews) > 0 {
		eng, err := eval.NewDeltaEngine(db, globalViews)
		if err != nil {
			return nil, err
		}
		sh.g = &globalEngine{eng: eng}
	}

	// Route every row to its shard. Row slices are moved, not copied: the
	// source database hands its storage over to the partitions.
	sh.shards = make([]*state, p)
	for i := range sh.shards {
		sh.shards[i] = &state{db: instance.NewDatabaseWith(s, db.Dict)}
	}
	for name, t := range db.Tables {
		for _, tu := range t.Tuples {
			sdb := sh.shards[pt.ShardOfRow(name, tu)].db
			st := sdb.Tables[name]
			st.Tuples = append(st.Tuples, tu)
		}
		t.Tuples = nil // consumed; lazy shadows re-encode to empty
	}

	// Per-shard indices and maintenance engines, built concurrently.
	if err := par.ForEach(p, func(i int) error {
		st := sh.shards[i]
		ix, err := instance.BuildIndexes(st.db, a)
		if err != nil {
			return err
		}
		eng, err := eval.NewDeltaEngine(st.db, localViews)
		if err != nil {
			return err
		}
		st.ix, st.eng = ix, eng
		return nil
	}); err != nil {
		return nil, err
	}

	for name := range views {
		sh.dirty[name] = true
	}
	sh.rebuildStats()
	return sh, nil
}

// ShardCount returns P.
func (s *Sharded) ShardCount() int { return len(s.shards) }

// Partition exposes the routing metadata (read-only).
func (s *Sharded) Partition() *Partition { return s.part }

// Dict returns the shared dictionary, making the handle a plan.Source.
func (s *Sharded) Dict() *intern.Dict { return s.dict }

// LocalViews reports which views are maintained shard-locally (the
// co-partitioned ones) vs by the global engine.
func (s *Sharded) LocalViews() (local, global []string) {
	for name := range s.views {
		if s.local[name] {
			local = append(local, name)
		} else {
			global = append(global, name)
		}
	}
	return local, global
}

// ShardSizes returns |D_p| per shard.
func (s *Sharded) ShardSizes() []int {
	out := make([]int, len(s.shards))
	for i, st := range s.shards {
		st.mu.RLock()
		out[i] = st.db.Size()
		st.mu.RUnlock()
	}
	return out
}

// Size returns |D| across all shards.
func (s *Sharded) Size() int {
	n := 0
	for _, p := range s.ShardSizes() {
		n += p
	}
	return n
}

// FetchedTuples returns the tuples fetched from the shards so far (the
// |Dξ| accounting, deduplicated exactly like the unsharded index's).
func (s *Sharded) FetchedTuples() int { return int(s.fetchedTuples.Load()) }

// FetchCalls returns the number of fetch probes so far.
func (s *Sharded) FetchCalls() int { return int(s.fetchCalls.Load()) }

// ApplyDelta validates and routes a batch per shard, then maintains every
// touched shard concurrently (database, fetch indices, local views) and
// feeds the applied ops to the global engine. Semantics match the
// unsharded path: deletes first (each removing one occurrence, absent
// deletes are no-ops), then inserts; all copies of a row live on one
// shard, so per-shard application preserves the batch's outcome exactly.
func (s *Sharded) ApplyDelta(inserts, deletes []instance.Op) (DeltaStats, error) {
	s.batchMu.Lock()
	defer s.batchMu.Unlock()
	validate := func(ops []instance.Op, kind string) error {
		for _, op := range ops {
			r := s.schema.Relation(op.Rel)
			if r == nil {
				return fmt.Errorf("shard: %s into unknown relation %s", kind, op.Rel)
			}
			if len(op.Row) != r.Arity() {
				return fmt.Errorf("shard: %s %s expects %d values, got %d", kind, op.Rel, r.Arity(), len(op.Row))
			}
		}
		return nil
	}
	if err := validate(deletes, "delete"); err != nil {
		return DeltaStats{}, err
	}
	if err := validate(inserts, "insert"); err != nil {
		return DeltaStats{}, err
	}

	p := len(s.shards)
	delBy := make([][]instance.Op, p)
	insBy := make([][]instance.Op, p)
	for _, op := range deletes {
		i := s.part.ShardOfRow(op.Rel, op.Row)
		delBy[i] = append(delBy[i], op)
	}
	for _, op := range inserts {
		i := s.part.ShardOfRow(op.Rel, op.Row)
		insBy[i] = append(insBy[i], op)
	}

	applied := make([]*instance.Applied, p)
	changed := make([][]string, p)
	holds := make([]time.Duration, p)
	if err := par.ForEach(p, func(i int) error {
		if len(delBy[i]) == 0 && len(insBy[i]) == 0 {
			return nil
		}
		st := s.shards[i]
		st.mu.Lock()
		t0 := time.Now()
		defer func() {
			holds[i] = time.Since(t0)
			st.mu.Unlock()
		}()
		a, err := st.db.ApplyDelta(insBy[i], delBy[i])
		if err != nil {
			return err
		}
		if err := st.ix.Apply(a); err != nil {
			return err
		}
		ch, err := st.eng.Apply(a)
		if err != nil {
			return err
		}
		// Mark the changed views dirty while still holding this shard's
		// write lock: the extents were just patched in place, and the
		// merged-extent cache holds references into their old headers. A
		// reader acquiring this shard after the unlock must already see
		// the dirty flag, or it would serve the mutated stale cache.
		s.markDirty(ch)
		applied[i], changed[i] = a, ch
		return nil
	}); err != nil {
		return DeltaStats{}, err
	}

	stats := DeltaStats{}
	dirty := make(map[string]bool)
	for i := 0; i < p; i++ {
		if holds[i] > stats.MaxShardHold {
			stats.MaxShardHold = holds[i]
		}
		if applied[i] == nil {
			continue
		}
		stats.Inserted += len(applied[i].Inserted)
		stats.Deleted += len(applied[i].Deleted)
		for _, name := range changed[i] {
			dirty[name] = true
		}
	}

	// Non-co-partitioned views see the whole batch, deletes first. Their
	// maintenance runs after the shard scatter: a read overlapping this
	// window sees the new base rows with the global views one batch
	// behind — the same absence of a cross-batch snapshot documented on
	// the type (each engine stays individually consistent throughout).
	if s.g != nil && stats.Inserted+stats.Deleted > 0 {
		combined := &instance.Applied{}
		for i := 0; i < p; i++ {
			if applied[i] != nil {
				combined.Deleted = append(combined.Deleted, applied[i].Deleted...)
			}
		}
		for i := 0; i < p; i++ {
			if applied[i] != nil {
				combined.Inserted = append(combined.Inserted, applied[i].Inserted...)
			}
		}
		s.g.mu.Lock()
		t0 := time.Now()
		gch, err := s.g.eng.Apply(combined)
		// Dirty-mark before releasing the engine lock, for the same
		// in-place patching reason as the per-shard marking above.
		s.markDirty(gch)
		// The global engine's hold is an exclusive window readers of
		// non-co-partitioned views block on: it counts toward the bound.
		if hold := time.Since(t0); hold > stats.MaxShardHold {
			stats.MaxShardHold = hold
		}
		s.g.mu.Unlock()
		if err != nil {
			return DeltaStats{}, err
		}
		for _, name := range gch {
			dirty[name] = true
		}
	}

	stats.ViewsChanged = len(dirty)

	s.statsMu.Lock()
	s.statsChurn += stats.Inserted + stats.Deleted
	churn := s.statsChurn
	s.statsMu.Unlock()
	if float64(churn) >= statsDriftFrac*float64(s.Size()) && churn >= statsMinChurn {
		s.rebuildStats()
		stats.StatsRefreshed = true
	}
	return stats, nil
}

// rebuildStats collects per-shard statistics concurrently and installs the
// merged result. Relation row counts sum exactly; distinct counts sum
// (exact for partition columns, whose values never repeat across shards,
// and an upper bound the cost model clamps for the rest); view rows sum
// per-shard extents, an upper bound when a view's head does not bind the
// partition key (cross-shard duplicate heads). Callers must exclude
// concurrent writers (ApplyDelta holds batchMu; Open has exclusive use).
func (s *Sharded) rebuildStats() {
	p := len(s.shards)
	rels := make([]*instance.RelStats, p)
	_ = par.ForEach(p, func(i int) error {
		rels[i] = instance.CollectStats(s.shards[i].db)
		return nil
	})
	st := &plan.Stats{
		RelRows:      make(map[string]int),
		RelDistinct:  make(map[string]map[string]int),
		ViewRows:     make(map[string]int),
		ViewDistinct: make(map[string][]int),
	}
	for _, rs := range rels {
		for name, n := range rs.Rows {
			st.RelRows[name] += n
		}
		for name, counts := range rs.Distinct {
			rel := s.schema.Relation(name)
			if rel == nil {
				continue
			}
			byAttr := st.RelDistinct[name]
			if byAttr == nil {
				byAttr = make(map[string]int, len(counts))
				st.RelDistinct[name] = byAttr
			}
			for i, a := range rel.Attrs {
				if i < len(counts) {
					byAttr[a] += counts[i]
				}
			}
		}
	}
	addView := func(name string, rows [][]uint32) {
		st.ViewRows[name] += len(rows)
		d := intern.DistinctCols(rows)
		if len(d) > len(st.ViewDistinct[name]) {
			grown := make([]int, len(d))
			copy(grown, st.ViewDistinct[name])
			st.ViewDistinct[name] = grown
		}
		for i, n := range d {
			st.ViewDistinct[name][i] += n
		}
	}
	for name := range s.views {
		st.ViewRows[name] = 0
		if s.local[name] {
			for _, sh := range s.shards {
				addView(name, sh.eng.ExtentIDs(name))
			}
		} else {
			addView(name, s.g.eng.ExtentIDs(name))
		}
	}
	s.statsMu.Lock()
	s.stats = st
	s.statsVer++
	s.statsChurn = 0
	s.statsMu.Unlock()
}

// Stats returns the merged cost-model statistics and their version. The
// returned Stats is immutable once published; treat it as read-only.
func (s *Sharded) Stats() (*plan.Stats, uint64) {
	s.statsMu.RLock()
	defer s.statsMu.RUnlock()
	return s.stats, s.statsVer
}

// routedOnly reports whether every leaf of the plan is a fetch that routes
// to a single shard (and the plan reads no views): such plans run in
// point-read mode, locking only the shards their probes hit.
func (s *Sharded) routedOnly(n plan.Node) bool {
	switch x := n.(type) {
	case *plan.View:
		return false
	case *plan.Fetch:
		r := s.part.Route(x.C)
		if r == nil || r.XPos == nil {
			return false
		}
	}
	for _, c := range n.Children() {
		if !s.routedOnly(c) {
			return false
		}
	}
	return true
}

// Execute runs a plan scatter-gather over the shards, returning the answer
// rows and the tuples this call fetched from the partitions (exact when
// calls do not overlap; the counters themselves are always exact).
func (s *Sharded) Execute(p plan.Node) ([][]string, int, error) {
	before := s.fetchedTuples.Load()
	var rows [][]string
	var err error
	if s.routedOnly(p) {
		// Point-read mode: no global locking at all. Each probe takes its
		// owning shard's read lock just long enough to copy the group.
		rows, err = plan.RunOn(p, &lockedSource{s: s}, nil)
	} else {
		// Gather mode: freeze every shard (readers never block readers)
		// and serve views from the gathered extents.
		for _, st := range s.shards {
			s.rlockTimed(&st.mu)
		}
		if s.g != nil {
			s.rlockTimed(&s.g.mu)
		}
		pv := s.refreshMerged()
		rows, err = plan.RunOn(p, &frozenSource{s: s}, pv)
		if s.g != nil {
			s.g.mu.RUnlock()
		}
		for i := len(s.shards) - 1; i >= 0; i-- {
			s.shards[i].mu.RUnlock()
		}
	}
	if err != nil {
		return nil, 0, err
	}
	return rows, int(s.fetchedTuples.Load() - before), nil
}

// markDirty flags views whose extents were just patched in place, so the
// next reader rebuilds their gathered form instead of serving the stale
// merged cache. Callers hold the lock of the engine they patched; mergeMu
// is the leaf of the lock order, so this never deadlocks.
func (s *Sharded) markDirty(names []string) {
	if len(names) == 0 {
		return
	}
	s.mergeMu.Lock()
	for _, n := range names {
		s.dirty[n] = true
	}
	s.mergeMu.Unlock()
}

// gatherLocked rebuilds the gathered extent of every view dirtied since
// the last read. Callers hold mergeMu plus every shard's (and the global
// engine's) read lock. Shard extents of a co-partitioned view can overlap
// when the view's head does not bind the partition key (the same row
// derived on two shards), so the gather deduplicates — the merged extent
// is exactly the set the unsharded engine would serve.
func (s *Sharded) gatherLocked() {
	for name := range s.dirty {
		delete(s.dirty, name)
		if !s.local[name] {
			s.merged[name] = s.g.eng.ExtentIDs(name)
			continue
		}
		total := 0
		for _, st := range s.shards {
			total += len(st.eng.ExtentIDs(name))
		}
		out := make([][]uint32, 0, total)
		seen := intern.NewSet(total)
		for _, st := range s.shards {
			for _, r := range st.eng.ExtentIDs(name) {
				if seen.Add(r) {
					out = append(out, r)
				}
			}
		}
		s.merged[name] = out
	}
}

// refreshMerged refreshes the dirty gathered extents and returns a
// consistent PreparedViews snapshot. Callers hold every shard's (and the
// global engine's) read lock.
func (s *Sharded) refreshMerged() *plan.PreparedViews {
	s.mergeMu.Lock()
	defer s.mergeMu.Unlock()
	s.gatherLocked()
	return plan.NewPreparedViews(s.dict, s.merged)
}

// fetchRouted answers a fetch whose constraint binds the partition key:
// every matching row lives on one shard, so this is a point read and the
// group is already the distinct XY-projection set the unsharded index
// would return.
func (s *Sharded) fetchRouted(c *access.Constraint, r *conRoute, xval []uint32, lock bool) ([][]uint32, error) {
	vals := make([]string, len(r.XPos))
	for i, p := range r.XPos {
		vals[i] = s.dict.Str(xval[p])
	}
	st := s.shards[hashVals(vals)%uint64(len(s.shards))]
	if !lock {
		rows, err := st.ix.FetchIDs(c, xval)
		if err == nil {
			s.fetchedTuples.Add(int64(len(rows)))
		}
		return rows, err
	}
	s.rlockTimed(&st.mu)
	rows, err := st.ix.FetchIDs(c, xval)
	if err == nil && len(rows) > 0 {
		// The group header is swap-patched in place by maintenance; copy it
		// before releasing the shard. The rows themselves are immutable.
		rows = append([][]uint32(nil), rows...)
	}
	st.mu.RUnlock()
	if err == nil {
		s.fetchedTuples.Add(int64(len(rows)))
	}
	return rows, err
}

// fetchBroadcast scatters a probe to every shard and gathers the distinct
// XY-projections. Deduplication across shards keeps the result — and the
// fetch accounting — identical to the unsharded index's.
func (s *Sharded) fetchBroadcast(c *access.Constraint, xval []uint32) ([][]uint32, error) {
	p := len(s.shards)
	parts := make([][][]uint32, p)
	if err := par.ForEach(p, func(i int) error {
		rows, err := s.shards[i].ix.FetchIDs(c, xval)
		parts[i] = rows
		return err
	}); err != nil {
		return nil, err
	}
	nonEmpty, total := 0, 0
	last := -1
	for i, rows := range parts {
		if len(rows) > 0 {
			nonEmpty++
			total += len(rows)
			last = i
		}
	}
	if nonEmpty == 0 {
		return nil, nil
	}
	if nonEmpty == 1 {
		s.fetchedTuples.Add(int64(len(parts[last])))
		return parts[last], nil
	}
	seen := intern.NewSet(total)
	out := make([][]uint32, 0, total)
	for _, rows := range parts {
		for _, r := range rows {
			if seen.Add(r) {
				out = append(out, r)
			}
		}
	}
	s.fetchedTuples.Add(int64(len(out)))
	return out, nil
}

// frozenSource serves plan execution while the caller holds every shard's
// read lock: no per-probe locking is needed.
type frozenSource struct{ s *Sharded }

func (f *frozenSource) Dict() *intern.Dict { return f.s.dict }

func (f *frozenSource) FetchIDs(c *access.Constraint, xval []uint32) ([][]uint32, error) {
	s := f.s
	r := s.part.Route(c)
	if r == nil {
		return nil, fmt.Errorf("shard: no index for constraint %s", c)
	}
	if len(xval) != len(c.X) {
		return nil, fmt.Errorf("shard: fetch on %s expects %d input values, got %d", c, len(c.X), len(xval))
	}
	s.fetchCalls.Add(1)
	if r.XPos != nil {
		return s.fetchRouted(c, r, xval, false)
	}
	return s.fetchBroadcast(c, xval)
}

// lockedSource serves point-read plans: each probe locks only the owning
// shard, so readers and the per-shard maintenance workers only ever
// collide on the one partition they share.
type lockedSource struct{ s *Sharded }

func (l *lockedSource) Dict() *intern.Dict { return l.s.dict }

func (l *lockedSource) FetchIDs(c *access.Constraint, xval []uint32) ([][]uint32, error) {
	s := l.s
	r := s.part.Route(c)
	if r == nil || r.XPos == nil {
		// routedOnly vetted the plan; reaching here is a bug.
		return nil, fmt.Errorf("shard: unroutable fetch %s in point-read mode", c)
	}
	if len(xval) != len(c.X) {
		return nil, fmt.Errorf("shard: fetch on %s expects %d input values, got %d", c, len(c.X), len(xval))
	}
	s.fetchCalls.Add(1)
	return s.fetchRouted(c, r, xval, true)
}

// Views returns a decoded snapshot of every view's gathered extent,
// served from the merged cache (rebuilt only for views dirtied since the
// last read). The returned map and rows are fresh copies owned by the
// caller.
func (s *Sharded) Views() map[string][][]string {
	for _, st := range s.shards {
		st.mu.RLock()
	}
	if s.g != nil {
		s.g.mu.RLock()
	}
	s.mergeMu.Lock()
	s.gatherLocked()
	out := make(map[string][][]string, len(s.views))
	for name := range s.views {
		out[name] = s.dict.DecodeAll(s.merged[name])
		if out[name] == nil {
			out[name] = [][]string{}
		}
	}
	s.mergeMu.Unlock()
	if s.g != nil {
		s.g.mu.RUnlock()
	}
	for i := len(s.shards) - 1; i >= 0; i-- {
		s.shards[i].mu.RUnlock()
	}
	return out
}
