package shard

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/access"
	"repro/internal/cq"
	"repro/internal/eval"
	"repro/internal/instance"
	"repro/internal/intern"
	"repro/internal/obs"
	"repro/internal/par"
	"repro/internal/plan"
	"repro/internal/schema"
)

// ErrTorn wraps every ApplyDelta error raised AFTER some shard may have
// mutated its writer-side state: the per-shard maintenance runs
// concurrently, so a mid-batch failure leaves the batch applied on some
// shards and not others (the published epoch is untouched — readers never
// see the tear — but the writer-side state no longer matches it). Callers
// must fence further writes on it. Errors raised by the pre-mutation
// validation pass are NOT wrapped: they leave every shard intact.
var ErrTorn = errors.New("shard: writer state torn by a partial apply")

// state is one shard's WRITER-SIDE machinery: its database partition, the
// incremental maintenance engine for the co-partitioned (shard-local)
// views, and the latest version of its fetch indices. Readers never touch
// it — they read the immutable per-epoch versions published in Epoch.
type state struct {
	db  *instance.Database
	eng *eval.DeltaEngine
	vix *instance.VIndex
}

// Config tunes a sharded instance.
type Config struct {
	Shards         int
	StatsDriftFrac float64 // churn fraction of |D| before a stats rebuild
	StatsMinChurn  int     // minimum ops before a rebuild is considered

	// Probes, when non-nil, holds one counter per shard bumped on every
	// fetch-index probe routed to (or scattered over) that shard — the
	// per-shard load telemetry the serving layer exports. len(Probes)
	// must equal Shards when set; nil disables the accounting.
	Probes []*obs.Counter

	// Restart state, set by the durability layer when reopening a
	// journaled directory: the initial epoch sequence number (the restored
	// checkpoint's, so replayed batches publish the same epochs they did
	// originally) and the checkpointed statistics trajectory (skipping the
	// open-time stats collection AND making later drift decisions replay
	// identically to the original run).
	InitialSeq uint64
	Restored   *RestoredStats
}

// RestoredStats is a checkpointed statistics trajectory. Copying the
// struct shares the underlying *plan.Stats, which is immutable once
// checkpointed.
type RestoredStats struct {
	Stats      *plan.Stats
	StatsVer   uint64
	StatsChurn int
}

// DeltaStats summarizes one applied batch (mirrors the facade's).
// MaxShardHold is the longest single-shard maintenance window of the
// batch. Under epoch reads it blocks nobody — readers stay on the
// previous epoch until the new one is published — but it still bounds the
// batch's publication lag, and its ~P-fold shrink is the per-shard
// parallelism signal the scaling experiment gates. DeltaStats is a
// plain value — safe to copy, retains no reference to shard state.
type DeltaStats struct {
	Inserted       int
	Deleted        int
	ViewsChanged   int
	StatsRefreshed bool
	MaxShardHold   time.Duration
}

// Epoch is one published, immutable version of the whole sharded state:
// every shard's fetch-index version, the gathered view extents and the
// merged statistics, all installed by a single atomic pointer swap — so a
// reader pinning an Epoch sees one cross-shard-consistent state and a
// batch can never be observed applied on some shards and not others.
//
// Epoch implements plan.Source (accounting-free): fetches whose
// constraint binds the partition key probe the one owning shard's index
// version, everything else scatters over all versions and deduplicates.
type Epoch struct {
	seq        uint64
	part       *Partition
	dict       *intern.Dict
	vixes      []*instance.VIndex
	views      map[string]*gatheredView // per-view pinned (lazily merged) extents
	pv         *plan.PreparedViews
	stats      *plan.Stats
	statsVer   uint64
	size       int
	shardSizes []int
	probes     []*obs.Counter // per-shard probe telemetry (nil when disabled)
}

// probe bumps shard i's probe counter. A nil probes slice (metrics
// disabled) costs one bounds check; the counter add itself is a striped
// lock-free atomic, so probing stays allocation-free on the read path.
func (e *Epoch) probe(i int) {
	if i < len(e.probes) {
		e.probes[i].Add(1)
	}
}

// gatheredView is one view's extent as pinned by an epoch. Views whose
// merged form is cheap (global engine, single shard) are published
// eagerly; a co-partitioned view at P > 1 pins the P immutable per-shard
// headers at publish time and merges them on FIRST read, memoized — so a
// write-heavy epoch never pays for views nobody reads, and an unchanged
// view shares its gatheredView (and memo) with every later epoch until
// it next changes.
type gatheredView struct {
	once    sync.Once
	rows    [][]uint32
	compute func() [][]uint32 // nil when published eagerly
}

func (g *gatheredView) get() [][]uint32 {
	g.once.Do(func() {
		if g.compute != nil {
			g.rows = g.compute()
			g.compute = nil
		}
	})
	return g.rows
}

// Seq returns the epoch's sequence number.
func (e *Epoch) Seq() uint64 { return e.seq }

// Dict returns the shared dictionary, making the epoch a plan.Source.
func (e *Epoch) Dict() *intern.Dict { return e.dict }

// ViewIDs returns one view's gathered extent as of this epoch (merging
// lazily on first read). The rows are immutable; treat them as read-only.
func (e *Epoch) ViewIDs(name string) ([][]uint32, bool) {
	gv, ok := e.views[name]
	if !ok {
		return nil, false
	}
	return gv.get(), true
}

// AllViewIDs returns every view's gathered extent as of this epoch,
// forcing any pending merges. The map is fresh; the row sets are
// immutable.
func (e *Epoch) AllViewIDs() map[string][][]uint32 {
	out := make(map[string][][]uint32, len(e.views))
	for name, gv := range e.views {
		out[name] = gv.get()
	}
	return out
}

// Prepared returns the epoch's prepared plan inputs.
func (e *Epoch) Prepared() *plan.PreparedViews { return e.pv }

// Stats returns the epoch's merged statistics and their version.
func (e *Epoch) Stats() (*plan.Stats, uint64) { return e.stats, e.statsVer }

// Size returns |D| across all shards as of this epoch.
func (e *Epoch) Size() int { return e.size }

// ShardSizes returns |D_p| per shard as of this epoch.
func (e *Epoch) ShardSizes() []int { return e.shardSizes }

// FetchIDs answers a fetch against this epoch: a point read on the owning
// shard when the constraint binds the partition key, a scatter over every
// shard's pinned index version (deduplicated) otherwise. No accounting
// happens here; serving layers wrap the epoch in a counting source.
func (e *Epoch) FetchIDs(c *access.Constraint, xval []uint32) ([][]uint32, error) {
	r := e.part.Route(c)
	if r == nil {
		return nil, fmt.Errorf("shard: no index for constraint %s", c)
	}
	if len(xval) != len(c.X) {
		return nil, fmt.Errorf("shard: fetch on %s expects %d input values, got %d", c, len(c.X), len(xval))
	}
	if r.XPos != nil {
		vals := make([]string, len(r.XPos))
		for i, p := range r.XPos {
			vals[i] = e.dict.Str(xval[p])
		}
		si := int(hashVals(vals) % uint64(len(e.vixes)))
		e.probe(si)
		return e.vixes[si].FetchIDs(c, xval)
	}
	// Broadcast: gather the distinct XY-projections across all shards.
	// Deduplication keeps the result — and the fetch accounting layered
	// above — identical to the unsharded index's.
	p := len(e.vixes)
	parts := make([][][]uint32, p)
	if err := par.ForEach(p, func(i int) error {
		e.probe(i)
		rows, err := e.vixes[i].FetchIDs(c, xval)
		parts[i] = rows
		return err
	}); err != nil {
		return nil, err
	}
	nonEmpty, total := 0, 0
	last := -1
	for i, rows := range parts {
		if len(rows) > 0 {
			nonEmpty++
			total += len(rows)
			last = i
		}
	}
	if nonEmpty == 0 {
		return nil, nil
	}
	if nonEmpty == 1 {
		return parts[last], nil
	}
	seen := intern.NewSet(total)
	out := make([][]uint32, 0, total)
	for _, rows := range parts {
		for _, r := range rows {
			if seen.Add(r) {
				out = append(out, r)
			}
		}
	}
	return out, nil
}

// Sharded is a partitioned live instance: P shards, the routing metadata,
// the global maintenance engine for non-co-partitioned views, and the
// atomically published current Epoch.
//
// Concurrency: readers load the current epoch (Current) and serve from
// its immutable structures — they take no locks and are never blocked by
// ApplyDelta, which maintains the writer-side shards concurrently and
// publishes the combined next epoch with one atomic swap. There is no
// torn-batch window: either an epoch contains all of a batch's effects on
// every shard (and on the global views) or none of them.
type Sharded struct {
	schema *schema.Schema
	access *access.Schema
	views  map[string]*cq.UCQ
	part   *Partition
	dict   *intern.Dict
	cfg    Config

	batchMu    sync.Mutex // serializes ApplyDelta batches
	shards     []*state
	g          *eval.DeltaEngine // global engine; nil when every view is co-partitioned
	local      map[string]bool
	repub      map[string]bool // views repacked by Compact, to re-pin next publish
	statsChurn int
	statsVer   uint64
	seq        uint64

	// journal, when set (SetJournal), receives every accepted batch — its
	// epoch sequence number and the combined physically applied ops across
	// all shards, deletes then inserts in shard order — BEFORE the epoch
	// publishes. A journal error aborts publication (the writer-side state
	// is already mutated; the caller must fence further writes).
	journal func(seq uint64, a *instance.Applied) error

	cur atomic.Pointer[Epoch]
}

// Open partitions db into cfg.Shards shards and builds the per-shard
// state plus the initial epoch. The database is consumed: its rows are
// moved into the shard partitions and its tables are emptied; route all
// further reads and writes through the returned handle. The views must
// already be validated against the schema.
func Open(db *instance.Database, s *schema.Schema, a *access.Schema, views map[string]*cq.UCQ, cfg Config) (*Sharded, error) {
	p := cfg.Shards
	if p < 1 {
		return nil, fmt.Errorf("shard: need at least 1 shard, got %d", p)
	}
	pt := NewPartition(s, a, p)
	localViews := make(map[string]*cq.UCQ)
	globalViews := make(map[string]*cq.UCQ)
	local := make(map[string]bool, len(views))
	for name, def := range views {
		if pt.LocalView(def) {
			localViews[name] = def
			local[name] = true
		} else {
			globalViews[name] = def
		}
	}
	sh := &Sharded{
		schema: s,
		access: a,
		views:  views,
		part:   pt,
		dict:   db.Dict,
		cfg:    cfg,
		local:  local,
	}

	// The global engine seeds its join state from the full instance, so it
	// must be built before the rows move out.
	if len(globalViews) > 0 {
		eng, err := eval.NewDeltaEngine(db, globalViews)
		if err != nil {
			return nil, err
		}
		sh.g = eng
	}

	// Route every row to its shard. Row slices are moved, not copied: the
	// source database hands its storage over to the partitions.
	sh.shards = make([]*state, p)
	for i := range sh.shards {
		sh.shards[i] = &state{db: instance.NewDatabaseWith(s, db.Dict)}
	}
	for name, t := range db.Tables {
		for _, tu := range t.Tuples {
			sdb := sh.shards[pt.ShardOfRow(name, tu)].db
			st := sdb.Tables[name]
			st.Tuples = append(st.Tuples, tu)
		}
		t.Tuples = nil // consumed; lazy shadows re-encode to empty
	}

	// Per-shard indices and maintenance engines, built concurrently.
	if err := par.ForEach(p, func(i int) error {
		st := sh.shards[i]
		vix, err := instance.BuildVIndex(st.db, a)
		if err != nil {
			return err
		}
		eng, err := eval.NewDeltaEngine(st.db, localViews)
		if err != nil {
			return err
		}
		st.vix, st.eng = vix, eng
		return nil
	}); err != nil {
		return nil, err
	}

	dirty := make(map[string]bool, len(views))
	for name := range views {
		dirty[name] = true
	}
	sh.seq = cfg.InitialSeq
	if cfg.Restored != nil {
		sh.statsVer = cfg.Restored.StatsVer
		sh.statsChurn = cfg.Restored.StatsChurn
		sh.publish(nil, dirty, cfg.Restored.Stats)
	} else {
		sh.publish(nil, dirty, sh.collectStats())
	}
	return sh, nil
}

// SetJournal installs (or clears) the batch journal hook. The durability
// layer sets it AFTER any recovery replay, so replayed batches are not
// re-journaled.
func (s *Sharded) SetJournal(fn func(seq uint64, a *instance.Applied) error) {
	s.batchMu.Lock()
	s.journal = fn
	s.batchMu.Unlock()
}

// Seq returns the current epoch's sequence number.
func (s *Sharded) Seq() uint64 { return s.cur.Load().seq }

// StatsState returns the writer-side statistics trajectory — the current
// merged statistics, their version and the churn since the last rebuild —
// for checkpointing. Callers must exclude writers.
func (s *Sharded) StatsState() (*plan.Stats, uint64, int) {
	e := s.cur.Load()
	return e.stats, s.statsVer, s.statsChurn
}

// CheckpointTables returns every relation's ID shadow, concatenated in
// shard order — the logical table serialization a checkpoint stores.
// Restoring the rows into one database and re-opening with the same
// partition function reproduces the same per-shard contents in the same
// per-shard order (all copies of a row hash to one shard). Callers must
// exclude writers.
func (s *Sharded) CheckpointTables() map[string][][]uint32 {
	out := make(map[string][][]uint32, len(s.schema.Relations))
	for _, rel := range s.schema.Relations {
		rows := [][]uint32{}
		for _, st := range s.shards {
			rows = append(rows, st.db.Table(rel.Name).IDRows()...)
		}
		out[rel.Name] = rows
	}
	return out
}

// ShardCount returns P.
func (s *Sharded) ShardCount() int { return len(s.shards) }

// Partition exposes the routing metadata (read-only).
func (s *Sharded) Partition() *Partition { return s.part }

// Dict returns the shared dictionary.
func (s *Sharded) Dict() *intern.Dict { return s.dict }

// Current returns the current epoch. Successive calls may return newer
// epochs as batches land; every returned epoch stays valid (and
// immutable) for as long as the caller holds it.
func (s *Sharded) Current() *Epoch { return s.cur.Load() }

// LocalViews reports which views are maintained shard-locally (the
// co-partitioned ones) vs by the global engine.
func (s *Sharded) LocalViews() (local, global []string) {
	for name := range s.views {
		if s.local[name] {
			local = append(local, name)
		} else {
			global = append(global, name)
		}
	}
	return local, global
}

// publish pins the next epoch's views (re-pinning only the dirty ones,
// reusing the rest — including their merge memo — from prev) and
// installs it. stats == nil carries the previous epoch's statistics
// forward. Callers hold batchMu (or have exclusive access, as in Open).
func (s *Sharded) publish(prev *Epoch, dirty map[string]bool, stats *plan.Stats) {
	views := make(map[string]*gatheredView, len(s.views))
	if prev != nil {
		for name, gv := range prev.views {
			views[name] = gv
		}
		if stats == nil {
			stats = prev.stats
		}
	}
	for name := range dirty {
		views[name] = s.pinView(name)
	}
	vixes := make([]*instance.VIndex, len(s.shards))
	sizes := make([]int, len(s.shards))
	size := 0
	for i, st := range s.shards {
		vixes[i] = st.vix
		sizes[i] = st.db.Size()
		size += sizes[i]
	}
	e := &Epoch{
		seq:        s.seq,
		part:       s.part,
		dict:       s.dict,
		vixes:      vixes,
		views:      views,
		stats:      stats,
		statsVer:   s.statsVer,
		size:       size,
		shardSizes: sizes,
		probes:     s.cfg.Probes,
	}
	e.pv = plan.NewLazyPreparedViews(s.dict, e.ViewIDs)
	s.seq++
	s.cur.Store(e)
}

// pinView pins one view's extent for the next epoch: the global engine's
// COW header for non-co-partitioned views, the single shard's header at
// P=1, and otherwise the P immutable per-shard COW headers with a lazy
// deduplicating merge (shard extents of a co-partitioned view can
// overlap when the view's head does not bind the partition key — the
// same row derived on two shards — so the merge dedups; the merged
// extent is exactly the set the unsharded engine would serve).
func (s *Sharded) pinView(name string) *gatheredView {
	if !s.local[name] {
		return &gatheredView{rows: s.g.PublishExtentIDs(name)}
	}
	if len(s.shards) == 1 {
		return &gatheredView{rows: s.shards[0].eng.PublishExtentIDs(name)}
	}
	headers := make([][][]uint32, len(s.shards))
	for i, st := range s.shards {
		headers[i] = st.eng.PublishExtentIDs(name)
	}
	return &gatheredView{compute: func() [][]uint32 {
		total := 0
		for _, h := range headers {
			total += len(h)
		}
		out := make([][]uint32, 0, total)
		seen := intern.NewSet(total)
		for _, h := range headers {
			for _, r := range h {
				if seen.Add(r) {
					out = append(out, r)
				}
			}
		}
		return out
	}}
}

// Size returns |D| across all shards as of the current epoch.
func (s *Sharded) Size() int { return s.cur.Load().size }

// ShardSizes returns |D_p| per shard as of the current epoch.
func (s *Sharded) ShardSizes() []int { return s.cur.Load().shardSizes }

// Stats returns the current epoch's merged statistics and their version.
// The returned Stats is immutable once published; treat it as read-only.
func (s *Sharded) Stats() (*plan.Stats, uint64) {
	e := s.cur.Load()
	return e.stats, e.statsVer
}

// ApplyDelta validates and routes a batch per shard, maintains every
// touched shard concurrently (database, fetch-index versions, local
// views), feeds the applied ops to the global engine, and publishes the
// combined state as the next epoch. Readers are never blocked and never
// see a torn batch: they stay on the previous epoch until the single
// atomic publication. Semantics match the unsharded path: deletes first
// (each removing one occurrence, absent deletes are no-ops), then
// inserts; all copies of a row live on one shard, so per-shard
// application preserves the batch's outcome exactly.
func (s *Sharded) ApplyDelta(inserts, deletes []instance.Op) (DeltaStats, error) {
	s.batchMu.Lock()
	defer s.batchMu.Unlock()
	validate := func(ops []instance.Op, kind string) error {
		for _, op := range ops {
			r := s.schema.Relation(op.Rel)
			if r == nil {
				return fmt.Errorf("shard: %s into unknown relation %s", kind, op.Rel)
			}
			if len(op.Row) != r.Arity() {
				return fmt.Errorf("shard: %s %s expects %d values, got %d", kind, op.Rel, r.Arity(), len(op.Row))
			}
		}
		return nil
	}
	if err := validate(deletes, "delete"); err != nil {
		return DeltaStats{}, err
	}
	if err := validate(inserts, "insert"); err != nil {
		return DeltaStats{}, err
	}

	p := len(s.shards)
	delBy := make([][]instance.Op, p)
	insBy := make([][]instance.Op, p)
	for _, op := range deletes {
		i := s.part.ShardOfRow(op.Rel, op.Row)
		delBy[i] = append(delBy[i], op)
	}
	for _, op := range inserts {
		i := s.part.ShardOfRow(op.Rel, op.Row)
		insBy[i] = append(insBy[i], op)
	}

	applied := make([]*instance.Applied, p)
	changed := make([][]string, p)
	holds := make([]time.Duration, p)
	if err := par.ForEach(p, func(i int) error {
		if len(delBy[i]) == 0 && len(insBy[i]) == 0 {
			return nil
		}
		st := s.shards[i]
		t0 := time.Now()
		defer func() { holds[i] = time.Since(t0) }()
		a, err := st.db.ApplyDelta(insBy[i], delBy[i])
		if err != nil {
			return err
		}
		vix, err := st.vix.Apply(a)
		if err != nil {
			return err
		}
		st.vix = vix
		ch, err := st.eng.Apply(a)
		if err != nil {
			return err
		}
		applied[i], changed[i] = a, ch
		return nil
	}); err != nil {
		// Even a per-shard validation failure is torn here: the other
		// shards ran concurrently and may have applied their slices.
		return DeltaStats{}, fmt.Errorf("%w: %w", ErrTorn, err)
	}

	stats := DeltaStats{}
	dirty := make(map[string]bool)
	for i := 0; i < p; i++ {
		if holds[i] > stats.MaxShardHold {
			stats.MaxShardHold = holds[i]
		}
		if applied[i] == nil {
			continue
		}
		stats.Inserted += len(applied[i].Inserted)
		stats.Deleted += len(applied[i].Deleted)
		for _, name := range changed[i] {
			dirty[name] = true
		}
	}

	// The combined physical batch (deletes first, then inserts, each in
	// shard order) feeds both the global engine and the journal; build it
	// once when either needs it.
	var combined *instance.Applied
	if (s.g != nil && stats.Inserted+stats.Deleted > 0) || s.journal != nil {
		combined = &instance.Applied{}
		for i := 0; i < p; i++ {
			if applied[i] != nil {
				combined.Deleted = append(combined.Deleted, applied[i].Deleted...)
			}
		}
		for i := 0; i < p; i++ {
			if applied[i] != nil {
				combined.Inserted = append(combined.Inserted, applied[i].Inserted...)
			}
		}
	}

	// Non-co-partitioned views see the whole batch, deletes first. Their
	// maintenance lands in the SAME epoch as the base rows — the atomic
	// publication below removes the old "global views one batch behind"
	// read window.
	if s.g != nil && stats.Inserted+stats.Deleted > 0 {
		t0 := time.Now()
		gch, err := s.g.Apply(combined)
		if err != nil {
			return DeltaStats{}, fmt.Errorf("%w: %w", ErrTorn, err)
		}
		if hold := time.Since(t0); hold > stats.MaxShardHold {
			stats.MaxShardHold = hold
		}
		for _, name := range gch {
			dirty[name] = true
		}
	}

	stats.ViewsChanged = len(dirty)
	// Views a compaction repacked since the last batch re-pin even when
	// unchanged: a published header pins its whole pre-repack backing
	// array, so only a fresh header moves later epochs off it. They do not
	// count toward ViewsChanged — their contents are identical.
	for name := range s.repub {
		dirty[name] = true
	}
	s.repub = nil
	prev := s.cur.Load()
	// The drift decision is COMPUTED before the journal append but ACTED
	// ON only after it succeeds: a journal failure must leave the stats
	// trajectory (version, churn counter) exactly as the last durable
	// epoch knew it, or a checkpoint written later could disagree with the
	// log. The decision is a pure read, so recovery — replaying with the
	// journal detached — reproduces it identically.
	batch := stats.Inserted + stats.Deleted
	needStats := float64(s.statsChurn+batch) >= s.cfg.StatsDriftFrac*float64(s.sizeNow()) &&
		s.statsChurn+batch >= s.cfg.StatsMinChurn
	// Journal before publication: an epoch is never visible to readers
	// unless its batch reached the log. EVERY accepted batch journals,
	// even an all-no-op one — the epoch number advances unconditionally,
	// and replay must reproduce the exact numbering.
	if s.journal != nil {
		if err := s.journal(s.seq, combined); err != nil {
			return DeltaStats{}, fmt.Errorf("%w: journal: %w", ErrTorn, err)
		}
	}
	s.statsChurn += batch
	var st *plan.Stats
	if needStats {
		st = s.collectStats()
		stats.StatsRefreshed = true
	}
	s.publish(prev, dirty, st)
	return stats, nil
}

// Compact repacks writer-side copy-on-write storage whose live fraction
// dropped: every shard's view extents (plus the global engine's) below
// the (minCap, frac) thresholds, and — when repackIndexes is set — each
// shard's fetch-index slack buckets. It returns the repacked extent and
// bucket counts and queues the repacked views for re-pinning on the next
// publish (see the repub merge in ApplyDelta). Safe to call between
// batches; a no-op after Close.
func (s *Sharded) Compact(minCap int, frac float64, repackIndexes bool) (extents, groups int) {
	s.batchMu.Lock()
	defer s.batchMu.Unlock()
	if s.shards == nil {
		return 0, 0
	}
	mark := func(names []string) {
		for _, n := range names {
			if s.repub == nil {
				s.repub = make(map[string]bool)
			}
			s.repub[n] = true
		}
	}
	for _, st := range s.shards {
		names := st.eng.CompactExtents(minCap, frac)
		extents += len(names)
		mark(names)
		if repackIndexes {
			vix, n := st.vix.Compact()
			st.vix = vix
			groups += n
		}
	}
	if s.g != nil {
		names := s.g.CompactExtents(minCap, frac)
		extents += len(names)
		mark(names)
	}
	return extents, groups
}

// sizeNow sums the writer-side shard sizes (callers hold batchMu).
func (s *Sharded) sizeNow() int {
	n := 0
	for _, st := range s.shards {
		n += st.db.Size()
	}
	return n
}

// collectStats collects per-shard statistics concurrently and returns the
// merged result. Relation row counts sum exactly; distinct counts sum
// (exact for partition columns, whose values never repeat across shards,
// and an upper bound the cost model clamps for the rest); view rows sum
// per-shard extents, an upper bound when a view's head does not bind the
// partition key (cross-shard duplicate heads). Callers must exclude
// concurrent writers (ApplyDelta holds batchMu; Open has exclusive use).
func (s *Sharded) collectStats() *plan.Stats {
	p := len(s.shards)
	rels := make([]*instance.RelStats, p)
	_ = par.ForEach(p, func(i int) error {
		rels[i] = instance.CollectStats(s.shards[i].db)
		return nil
	})
	st := &plan.Stats{
		RelRows:      make(map[string]int),
		RelDistinct:  make(map[string]map[string]int),
		ViewRows:     make(map[string]int),
		ViewDistinct: make(map[string][]int),
	}
	for _, rs := range rels {
		for name, n := range rs.Rows {
			st.RelRows[name] += n
		}
		for name, counts := range rs.Distinct {
			rel := s.schema.Relation(name)
			if rel == nil {
				continue
			}
			byAttr := st.RelDistinct[name]
			if byAttr == nil {
				byAttr = make(map[string]int, len(counts))
				st.RelDistinct[name] = byAttr
			}
			for i, a := range rel.Attrs {
				if i < len(counts) {
					byAttr[a] += counts[i]
				}
			}
		}
	}
	addView := func(name string, rows [][]uint32) {
		st.ViewRows[name] += len(rows)
		d := intern.DistinctCols(rows)
		if len(d) > len(st.ViewDistinct[name]) {
			grown := make([]int, len(d))
			copy(grown, st.ViewDistinct[name])
			st.ViewDistinct[name] = grown
		}
		for i, n := range d {
			st.ViewDistinct[name][i] += n
		}
	}
	for name := range s.views {
		st.ViewRows[name] = 0
		if s.local[name] {
			for _, sh := range s.shards {
				addView(name, sh.eng.ExtentIDs(name))
			}
		} else {
			addView(name, s.g.ExtentIDs(name))
		}
	}
	s.statsVer++
	s.statsChurn = 0
	return st
}

// Close releases the writer-side maintenance machinery — the shard
// databases, maintenance engines and global engine. The current epoch
// (and any pinned one) keeps serving reads; callers must fence
// ApplyDelta beforehand (the facade's closed flag).
func (s *Sharded) Close() {
	s.batchMu.Lock()
	s.shards, s.g = nil, nil
	s.batchMu.Unlock()
}

// Views returns a decoded snapshot of every view's gathered extent as of
// the current epoch. The returned map and rows are fresh copies owned by
// the caller.
func (s *Sharded) Views() map[string][][]string {
	e := s.cur.Load()
	out := make(map[string][][]string, len(e.views))
	for name, gv := range e.views {
		out[name] = s.dict.DecodeAll(gv.get())
		if out[name] == nil {
			out[name] = [][]string{}
		}
	}
	return out
}
