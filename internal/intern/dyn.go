package intern

// DynIndex is a multimap from a fixed projection of ID rows to the rows
// themselves, supporting removal — the incrementally maintained join state
// of the live-update subsystem. Where Index is build-once (hash joins build
// it per execution), a DynIndex lives as long as the database it mirrors:
// rows are added when a tuple gains support and removed when it loses it.
//
// Rows are retained by reference and must not be mutated while indexed.
// An empty position set is allowed: every row lands in one bucket, which
// turns Get(nil) into a full scan — the degenerate case a cross-product
// join step needs. Not safe for concurrent use; the live handle serializes
// writers against readers.
type DynIndex struct {
	pos     []int
	buckets map[uint64][]indexEntry
}

// NewDynIndex creates an index keyed by the projection at pos.
func NewDynIndex(pos []int) *DynIndex {
	return &DynIndex{pos: pos, buckets: make(map[uint64][]indexEntry)}
}

// Pos returns the key positions the index was created with.
func (ix *DynIndex) Pos() []int { return ix.pos }

// Add indexes row under its projection at the index's key positions.
func (ix *DynIndex) Add(row []uint32) {
	h := HashAt(row, ix.pos)
	es := ix.buckets[h]
outer:
	for i := range es {
		for j, p := range ix.pos {
			if es[i].key[j] != row[p] {
				continue outer
			}
		}
		es[i].rows = append(es[i].rows, row)
		return
	}
	ix.buckets[h] = append(es, indexEntry{key: Project(row, ix.pos), rows: [][]uint32{row}})
}

// Remove deletes one row equal to row from its group, reporting whether a
// row was found. The group's row order is not preserved (swap-delete).
func (ix *DynIndex) Remove(row []uint32) bool {
	h := HashAt(row, ix.pos)
	es := ix.buckets[h]
	for i := range es {
		ok := true
		for j, p := range ix.pos {
			if es[i].key[j] != row[p] {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		rows := es[i].rows
		for k, r := range rows {
			if RowsEq(r, row) {
				last := len(rows) - 1
				rows[k] = rows[last]
				rows[last] = nil
				es[i].rows = rows[:last]
				if len(es[i].rows) == 0 {
					es[i] = es[len(es)-1]
					es[len(es)-1] = indexEntry{}
					ix.buckets[h] = es[:len(es)-1]
					if len(ix.buckets[h]) == 0 {
						delete(ix.buckets, h)
					}
				}
				return true
			}
		}
		return false
	}
	return false
}

// Get returns the rows whose projection equals key (nil when absent). The
// returned slice is invalidated by the next Add/Remove and must not be
// mutated.
func (ix *DynIndex) Get(key []uint32) [][]uint32 {
	for _, e := range ix.buckets[Hash(key)] {
		if RowsEq(e.key, key) {
			return e.rows
		}
	}
	return nil
}
