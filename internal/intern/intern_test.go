package intern

import (
	"fmt"
	"sync"
	"testing"
)

func TestDictRoundTrip(t *testing.T) {
	d := NewDict()
	words := []string{"a", "b", "", "a", "\x1f", "b", "long value with spaces"}
	ids := make([]uint32, len(words))
	for i, w := range words {
		ids[i] = d.ID(w)
	}
	if ids[0] != ids[3] || ids[1] != ids[5] {
		t.Fatal("re-interning must return the same ID")
	}
	if d.Len() != 5 {
		t.Fatalf("want 5 distinct values, got %d", d.Len())
	}
	for i, w := range words {
		if got := d.Str(ids[i]); got != w {
			t.Fatalf("Str(ID(%q)) = %q", w, got)
		}
	}
	if _, ok := d.Lookup("absent"); ok {
		t.Fatal("Lookup must not intern")
	}
	row := []string{"x", "y", "x"}
	enc := d.Encode(row)
	if enc[0] != enc[2] || enc[0] == enc[1] {
		t.Fatal("Encode must preserve equality structure")
	}
	dec := d.Decode(enc)
	for i := range row {
		if dec[i] != row[i] {
			t.Fatalf("Decode mismatch at %d: %q != %q", i, dec[i], row[i])
		}
	}
	all := d.DecodeAll([][]uint32{enc, enc})
	if len(all) != 2 || all[1][1] != "y" {
		t.Fatal("DecodeAll mismatch")
	}
	if d.DecodeAll(nil) != nil {
		t.Fatal("DecodeAll(nil) must be nil")
	}
}

func TestDictConcurrent(t *testing.T) {
	d := NewDict()
	const workers, values = 8, 500
	var wg sync.WaitGroup
	got := make([][]uint32, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			ids := make([]uint32, values)
			for i := 0; i < values; i++ {
				ids[i] = d.ID(fmt.Sprintf("v%03d", i))
			}
			got[w] = ids
		}(w)
	}
	wg.Wait()
	if d.Len() != values {
		t.Fatalf("want %d distinct values, got %d", values, d.Len())
	}
	for w := 1; w < workers; w++ {
		for i := range got[w] {
			if got[w][i] != got[0][i] {
				t.Fatalf("worker %d disagrees on ID of v%03d", w, i)
			}
		}
	}
}

func TestSet(t *testing.T) {
	s := NewSet(0)
	if !s.Add([]uint32{1, 2}) || s.Add([]uint32{1, 2}) {
		t.Fatal("Add must report first insertion only")
	}
	if !s.Add([]uint32{2, 1}) {
		t.Fatal("order matters")
	}
	if !s.Add([]uint32{1, 2, 3}) {
		t.Fatal("length matters")
	}
	if s.Len() != 3 || !s.Has([]uint32{1, 2}) || s.Has([]uint32{9}) {
		t.Fatal("membership wrong")
	}
	if !s.HasAt([]uint32{9, 2, 1, 9}, []int{2, 1}) {
		t.Fatal("HasAt must test the projection")
	}
	if s.HasAt([]uint32{9, 2, 1, 9}, []int{0, 1}) {
		t.Fatal("HasAt must miss projections that were never added")
	}
	if proj, fresh := s.AddProj([]uint32{9, 2, 1, 9}, []int{2, 1}); fresh || proj[0] != 1 || proj[1] != 2 {
		t.Fatal("AddProj must find the existing projection")
	}
	if _, fresh := s.AddProj([]uint32{9, 2, 1, 9}, []int{0, 1}); !fresh {
		t.Fatal("AddProj must add new projections")
	}
}

func TestIndex(t *testing.T) {
	ix := NewIndex(0)
	ix.Add([]uint32{1}, []uint32{1, 10})
	ix.Add([]uint32{1}, []uint32{1, 11})
	ix.Add([]uint32{2}, []uint32{2, 20})
	if got := ix.Get([]uint32{1}); len(got) != 2 {
		t.Fatalf("want 2 rows under key 1, got %d", len(got))
	}
	if got := ix.Get([]uint32{3}); got != nil {
		t.Fatal("missing key must yield nil")
	}
	if got := ix.GetAt([]uint32{5, 2, 9}, []int{1}); len(got) != 1 || got[0][1] != 20 {
		t.Fatal("GetAt must probe the projection")
	}
	// Empty keys (cross products) are a single group.
	ix2 := NewIndex(0)
	ix2.Add(nil, []uint32{1})
	ix2.Add([]uint32{}, []uint32{2})
	if got := ix2.Get(nil); len(got) != 2 {
		t.Fatalf("empty key group: want 2 rows, got %d", len(got))
	}
}

func TestHashAtMatchesHash(t *testing.T) {
	row := []uint32{7, 8, 9, 10}
	pos := []int{2, 0}
	if HashAt(row, pos) != Hash(Project(row, pos)) {
		t.Fatal("HashAt must agree with Hash of the projection")
	}
	if Hash(nil) != Hash([]uint32{}) {
		t.Fatal("nil and empty rows must hash alike")
	}
}

func TestDictStringsRangeFromStrings(t *testing.T) {
	d := NewDict()
	words := []string{"a", "b", "", "c d", "\x00weird"}
	for _, w := range words {
		d.ID(w)
	}
	if got := d.StringsRange(0, d.Len()); len(got) != len(words) {
		t.Fatalf("full range has %d strings, want %d", len(got), len(words))
	}
	if got := d.StringsRange(2, 4); len(got) != 2 || got[0] != "" || got[1] != "c d" {
		t.Fatalf("StringsRange(2,4) = %q", got)
	}
	// Out-of-bounds and inverted ranges clamp to nil/shorter, never panic.
	if d.StringsRange(4, 2) != nil || d.StringsRange(-3, -1) != nil {
		t.Fatal("degenerate ranges must be empty")
	}
	if got := d.StringsRange(3, 99); len(got) != 2 {
		t.Fatalf("clamped range has %d strings, want 2", len(got))
	}
	// The recovery inverse: FromStrings assigns ID i to the i-th string.
	r, ok := FromStrings(d.StringsRange(0, d.Len()))
	if !ok {
		t.Fatal("FromStrings rejected a valid serialization")
	}
	for i, w := range words {
		if id := r.ID(w); id != uint32(i) {
			t.Fatalf("restored ID(%q) = %d, want %d", w, id, i)
		}
	}
	if r.Len() != len(words) {
		t.Fatalf("restored Len = %d, want %d", r.Len(), len(words))
	}
	// New interning continues past the restored prefix.
	if id := r.ID("fresh"); id != uint32(len(words)) {
		t.Fatalf("post-restore intern got ID %d, want %d", id, len(words))
	}
	if _, ok := FromStrings([]string{"x", "y", "x"}); ok {
		t.Fatal("FromStrings must reject duplicates")
	}
}
