// Package intern implements the interned-value execution core: a
// dictionary mapping domain strings to dense uint32 IDs, plus hash
// containers (Set, Index) keyed by packed []uint32 rows through a cheap
// FNV-style 64-bit key with collision verification.
//
// The evaluation engines (internal/eval, internal/plan, internal/cq)
// operate on ID-encoded rows end-to-end and decode back to strings only at
// the API boundary, so hash joins, deduplication and homomorphism checks
// compare machine words instead of joining strings. The dictionary is safe
// for concurrent use; Set and Index are not (each worker builds its own).
package intern

import "sync"

// Dict is a bidirectional string <-> uint32 dictionary. IDs are dense,
// starting at 0, assigned in first-intern order. The zero value is not
// usable; call NewDict.
type Dict struct {
	mu   sync.RWMutex
	ids  map[string]uint32
	strs []string
}

// NewDict creates an empty dictionary.
func NewDict() *Dict { return &Dict{ids: make(map[string]uint32)} }

// ID interns s and returns its ID, assigning the next dense ID when s is
// new. Safe for concurrent use.
func (d *Dict) ID(s string) uint32 {
	d.mu.RLock()
	id, ok := d.ids[s]
	d.mu.RUnlock()
	if ok {
		return id
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if id, ok := d.ids[s]; ok {
		return id
	}
	id = uint32(len(d.strs))
	d.ids[s] = id
	d.strs = append(d.strs, s)
	return id
}

// Lookup returns the ID of s without interning it.
func (d *Dict) Lookup(s string) (uint32, bool) {
	d.mu.RLock()
	id, ok := d.ids[s]
	d.mu.RUnlock()
	return id, ok
}

// Str returns the string for an interned ID.
func (d *Dict) Str(id uint32) string {
	d.mu.RLock()
	s := d.strs[id]
	d.mu.RUnlock()
	return s
}

// Len returns the number of interned strings.
func (d *Dict) Len() int {
	d.mu.RLock()
	n := len(d.strs)
	d.mu.RUnlock()
	return n
}

// StringsRange returns a copy of the strings with IDs in [lo, hi), in ID
// order. IDs are dense and assignment is append-only, so the slice is a
// stable prefix delta: the write-ahead log uses it to journal dictionary
// growth per batch, and checkpoints use [0, hwm) to serialize the part of
// the dictionary the durable state may reference.
func (d *Dict) StringsRange(lo, hi int) []string {
	d.mu.RLock()
	defer d.mu.RUnlock()
	if lo < 0 {
		lo = 0
	}
	if hi > len(d.strs) {
		hi = len(d.strs)
	}
	if lo >= hi {
		return nil
	}
	return append([]string(nil), d.strs[lo:hi]...)
}

// FromStrings rebuilds a dictionary whose IDs are exactly the positions of
// strs — the recovery inverse of StringsRange(0, n). Duplicate strings are
// rejected by returning false (a corrupt serialization: dense IDs are
// assigned to distinct strings only).
func FromStrings(strs []string) (*Dict, bool) {
	d := &Dict{ids: make(map[string]uint32, len(strs)), strs: append([]string(nil), strs...)}
	for i, s := range d.strs {
		if _, dup := d.ids[s]; dup {
			return nil, false
		}
		d.ids[s] = uint32(i)
	}
	return d, true
}

// Encode interns every value of row and returns the ID-encoded row.
func (d *Dict) Encode(row []string) []uint32 {
	out := make([]uint32, len(row))
	for i, v := range row {
		out[i] = d.ID(v)
	}
	return out
}

// Decode maps an ID-encoded row back to strings.
func (d *Dict) Decode(ids []uint32) []string {
	d.mu.RLock()
	defer d.mu.RUnlock()
	out := make([]string, len(ids))
	for i, id := range ids {
		out[i] = d.strs[id]
	}
	return out
}

// DecodeAll decodes a row set under a single lock acquisition.
func (d *Dict) DecodeAll(rows [][]uint32) [][]string {
	if rows == nil {
		return nil
	}
	d.mu.RLock()
	defer d.mu.RUnlock()
	out := make([][]string, len(rows))
	for i, r := range rows {
		row := make([]string, len(r))
		for j, id := range r {
			row[j] = d.strs[id]
		}
		out[i] = row
	}
	return out
}

// Local is an unlocked string <-> uint32 dictionary for single-goroutine
// interning contexts (e.g. one homomorphism search). Same contract as
// Dict, without the synchronization cost.
type Local struct {
	ids  map[string]uint32
	strs []string
}

// NewLocal creates an empty unlocked dictionary.
func NewLocal() *Local { return &Local{ids: make(map[string]uint32)} }

// ID interns s and returns its ID.
func (d *Local) ID(s string) uint32 {
	if id, ok := d.ids[s]; ok {
		return id
	}
	id := uint32(len(d.strs))
	d.ids[s] = id
	d.strs = append(d.strs, s)
	return id
}

// Str returns the string for an interned ID.
func (d *Local) Str(id uint32) string { return d.strs[id] }

// Encode interns every value of row and returns the ID-encoded row.
func (d *Local) Encode(row []string) []uint32 {
	out := make([]uint32, len(row))
	for i, v := range row {
		out[i] = d.ID(v)
	}
	return out
}

// DecodeAll decodes a row set.
func (d *Local) DecodeAll(rows [][]uint32) [][]string {
	if rows == nil {
		return nil
	}
	out := make([][]string, len(rows))
	for i, r := range rows {
		row := make([]string, len(r))
		for j, id := range r {
			row[j] = d.strs[id]
		}
		out[i] = row
	}
	return out
}

// FNV-1a parameters; Hash consumes 32 bits per step, which keeps the
// distribution property we need (distinct short ID rows almost never
// collide) at a quarter of the multiply count of byte-wise FNV.
const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// Hash returns the 64-bit key of an ID row.
func Hash(row []uint32) uint64 {
	h := uint64(fnvOffset64)
	for _, v := range row {
		h ^= uint64(v)
		h *= fnvPrime64
	}
	return h
}

// HashAt hashes the projection of row at positions pos without allocating
// the projection.
func HashAt(row []uint32, pos []int) uint64 {
	h := uint64(fnvOffset64)
	for _, p := range pos {
		h ^= uint64(row[p])
		h *= fnvPrime64
	}
	return h
}

// RowsEq reports element-wise equality of two ID rows.
func RowsEq(a, b []uint32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Project returns the sub-row of row at positions pos.
func Project(row []uint32, pos []int) []uint32 {
	out := make([]uint32, len(pos))
	for i, p := range pos {
		out[i] = row[p]
	}
	return out
}

// DistinctCols returns, for each column position, the number of distinct
// IDs among the rows — the per-column statistics the cost model consumes.
// All rows must share the arity of the first; nil for an empty input.
func DistinctCols(rows [][]uint32) []int {
	if len(rows) == 0 {
		return nil
	}
	arity := len(rows[0])
	seen := make([]map[uint32]struct{}, arity)
	for i := range seen {
		seen[i] = make(map[uint32]struct{})
	}
	for _, r := range rows {
		for i, v := range r {
			seen[i][v] = struct{}{}
		}
	}
	out := make([]int, arity)
	for i, s := range seen {
		out[i] = len(s)
	}
	return out
}

// Set is a set of ID rows keyed by Hash with collision verification.
// Added rows are retained by reference and must not be mutated afterwards.
// The zero value is an empty set ready to use. Not safe for concurrent
// use.
type Set struct {
	buckets map[uint64][][]uint32
	n       int
}

// NewSet creates a set with a size hint.
func NewSet(hint int) *Set {
	return &Set{buckets: make(map[uint64][][]uint32, hint)}
}

// Add inserts row, reporting whether it was newly added.
func (s *Set) Add(row []uint32) bool {
	if s.buckets == nil {
		s.buckets = make(map[uint64][][]uint32)
	}
	h := Hash(row)
	b := s.buckets[h]
	for _, r := range b {
		if RowsEq(r, row) {
			return false
		}
	}
	s.buckets[h] = append(b, row)
	s.n++
	return true
}

// Has reports membership of row.
func (s *Set) Has(row []uint32) bool {
	for _, r := range s.buckets[Hash(row)] {
		if RowsEq(r, row) {
			return true
		}
	}
	return false
}

// HasAt reports membership of the projection of row at positions pos,
// without allocating the projection.
func (s *Set) HasAt(row []uint32, pos []int) bool {
	for _, r := range s.buckets[HashAt(row, pos)] {
		if len(r) != len(pos) {
			continue
		}
		eq := true
		for i, p := range pos {
			if r[i] != row[p] {
				eq = false
				break
			}
		}
		if eq {
			return true
		}
	}
	return false
}

// AddProj adds the projection of row at positions pos, allocating the
// projection only when it is new. It returns the stored projection and
// whether it was newly added.
func (s *Set) AddProj(row []uint32, pos []int) ([]uint32, bool) {
	if s.buckets == nil {
		s.buckets = make(map[uint64][][]uint32)
	}
	h := HashAt(row, pos)
	b := s.buckets[h]
outer:
	for _, r := range b {
		if len(r) != len(pos) {
			continue
		}
		for i, p := range pos {
			if r[i] != row[p] {
				continue outer
			}
		}
		return r, false
	}
	proj := Project(row, pos)
	s.buckets[h] = append(b, proj)
	s.n++
	return proj, true
}

// Len returns the number of distinct rows added.
func (s *Set) Len() int { return s.n }

// Index is a multimap from ID-row keys to ID rows, keyed by Hash with
// collision verification — the interned replacement for
// map[string][][]string join indexes. Keys and rows are retained by
// reference. Not safe for concurrent use.
type Index struct {
	buckets map[uint64][]indexEntry
}

type indexEntry struct {
	key  []uint32
	rows [][]uint32
}

// NewIndex creates an index with a size hint.
func NewIndex(hint int) *Index {
	return &Index{buckets: make(map[uint64][]indexEntry, hint)}
}

// Add appends row under key.
func (ix *Index) Add(key, row []uint32) {
	h := Hash(key)
	es := ix.buckets[h]
	for i := range es {
		if RowsEq(es[i].key, key) {
			es[i].rows = append(es[i].rows, row)
			return
		}
	}
	ix.buckets[h] = append(es, indexEntry{key: key, rows: [][]uint32{row}})
}

// AddAt appends row under the projection of row at positions pos,
// allocating the key only for the first row of each group.
func (ix *Index) AddAt(row []uint32, pos []int) {
	h := HashAt(row, pos)
	es := ix.buckets[h]
outer:
	for i := range es {
		if len(es[i].key) != len(pos) {
			continue
		}
		for j, p := range pos {
			if es[i].key[j] != row[p] {
				continue outer
			}
		}
		es[i].rows = append(es[i].rows, row)
		return
	}
	ix.buckets[h] = append(es, indexEntry{key: Project(row, pos), rows: [][]uint32{row}})
}

// Get returns the rows stored under key (nil when absent). The returned
// slice must not be mutated.
func (ix *Index) Get(key []uint32) [][]uint32 {
	for _, e := range ix.buckets[Hash(key)] {
		if RowsEq(e.key, key) {
			return e.rows
		}
	}
	return nil
}

// GetAt returns the rows stored under the projection of row at positions
// pos, without allocating the projection.
func (ix *Index) GetAt(row []uint32, pos []int) [][]uint32 {
	for _, e := range ix.buckets[HashAt(row, pos)] {
		if len(e.key) != len(pos) {
			continue
		}
		eq := true
		for i, p := range pos {
			if e.key[i] != row[p] {
				eq = false
				break
			}
		}
		if eq {
			return e.rows
		}
	}
	return nil
}

// Grouper groups ID rows by their projection at fixed positions, with
// collision verification: each distinct projection owns one value of type
// T (zero-initialized on first sight). Not safe for concurrent use.
type Grouper[T any] struct {
	pos     []int
	buckets map[uint64][]groupEntry[T]
}

type groupEntry[T any] struct {
	key []uint32
	val *T
}

// NewGrouper creates a grouper keyed by the projection at pos.
func NewGrouper[T any](pos []int) *Grouper[T] {
	return &Grouper[T]{pos: pos, buckets: make(map[uint64][]groupEntry[T])}
}

// At returns the group value for row's projection, allocating a zero T
// for a projection seen for the first time.
func (g *Grouper[T]) At(row []uint32) *T {
	h := HashAt(row, g.pos)
	es := g.buckets[h]
outer:
	for i := range es {
		for j, p := range g.pos {
			if es[i].key[j] != row[p] {
				continue outer
			}
		}
		return es[i].val
	}
	e := groupEntry[T]{key: Project(row, g.pos), val: new(T)}
	g.buckets[h] = append(g.buckets[h], e)
	return e.val
}

// Remove deletes the group of row's projection, reporting whether it
// existed. Long-lived incremental state (support counts, extent
// positions) uses this to keep memory proportional to live data rather
// than total churn.
func (g *Grouper[T]) Remove(row []uint32) bool {
	h := HashAt(row, g.pos)
	es := g.buckets[h]
outer:
	for i := range es {
		for j, p := range g.pos {
			if es[i].key[j] != row[p] {
				continue outer
			}
		}
		es[i] = es[len(es)-1]
		es[len(es)-1] = groupEntry[T]{}
		g.buckets[h] = es[:len(es)-1]
		if len(g.buckets[h]) == 0 {
			delete(g.buckets, h)
		}
		return true
	}
	return false
}

// Each calls f for every group, in unspecified order.
func (g *Grouper[T]) Each(f func(key []uint32, val *T)) {
	for _, es := range g.buckets {
		for _, e := range es {
			f(e.key, e.val)
		}
	}
}

// RowCache is a concurrency-safe, name-keyed cache of ID-encoded row sets
// over one dictionary — the shared machinery behind lazy view interning
// in the evaluators.
type RowCache struct {
	d  *Dict
	mu sync.Mutex
	m  map[string][][]uint32
}

// NewRowCache creates a cache encoding through d.
func NewRowCache(d *Dict) *RowCache {
	return &RowCache{d: d, m: make(map[string][][]uint32)}
}

// Encode returns the ID-encoded form of rows under the given name,
// encoding on first use and serving the cache afterwards. The rows for a
// name must not change between calls.
func (c *RowCache) Encode(name string, rows [][]string) [][]uint32 {
	c.mu.Lock()
	defer c.mu.Unlock()
	if enc, ok := c.m[name]; ok {
		return enc
	}
	enc := make([][]uint32, len(rows))
	for i, r := range rows {
		enc[i] = c.d.Encode(r)
	}
	c.m[name] = enc
	return enc
}
